file(REMOVE_RECURSE
  "CMakeFiles/feature_matrix_test.dir/integration/feature_matrix_test.cpp.o"
  "CMakeFiles/feature_matrix_test.dir/integration/feature_matrix_test.cpp.o.d"
  "feature_matrix_test"
  "feature_matrix_test.pdb"
  "feature_matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feature_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
