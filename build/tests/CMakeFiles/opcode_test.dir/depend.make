# Empty dependencies file for opcode_test.
# This may be replaced when dependencies are built.
