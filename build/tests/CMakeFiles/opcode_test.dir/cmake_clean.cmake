file(REMOVE_RECURSE
  "CMakeFiles/opcode_test.dir/isa/opcode_test.cpp.o"
  "CMakeFiles/opcode_test.dir/isa/opcode_test.cpp.o.d"
  "opcode_test"
  "opcode_test.pdb"
  "opcode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opcode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
