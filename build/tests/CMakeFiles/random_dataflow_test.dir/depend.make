# Empty dependencies file for random_dataflow_test.
# This may be replaced when dependencies are built.
