file(REMOVE_RECURSE
  "CMakeFiles/random_dataflow_test.dir/integration/random_dataflow_test.cpp.o"
  "CMakeFiles/random_dataflow_test.dir/integration/random_dataflow_test.cpp.o.d"
  "random_dataflow_test"
  "random_dataflow_test.pdb"
  "random_dataflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_dataflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
