
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/mmul_test.cpp" "tests/CMakeFiles/mmul_test.dir/workloads/mmul_test.cpp.o" "gcc" "tests/CMakeFiles/mmul_test.dir/workloads/mmul_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dta_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dta_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/dta_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/xform/CMakeFiles/dta_xform.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dta_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/dma/CMakeFiles/dta_dma.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/dta_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dta_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dta_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dta_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
