# Empty dependencies file for mmul_test.
# This may be replaced when dependencies are built.
