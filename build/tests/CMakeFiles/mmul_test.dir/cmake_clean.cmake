file(REMOVE_RECURSE
  "CMakeFiles/mmul_test.dir/workloads/mmul_test.cpp.o"
  "CMakeFiles/mmul_test.dir/workloads/mmul_test.cpp.o.d"
  "mmul_test"
  "mmul_test.pdb"
  "mmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
