# Empty compiler generated dependencies file for mfc_test.
# This may be replaced when dependencies are built.
