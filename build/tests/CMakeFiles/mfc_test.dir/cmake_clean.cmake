file(REMOVE_RECURSE
  "CMakeFiles/mfc_test.dir/dma/mfc_test.cpp.o"
  "CMakeFiles/mfc_test.dir/dma/mfc_test.cpp.o.d"
  "mfc_test"
  "mfc_test.pdb"
  "mfc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mfc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
