file(REMOVE_RECURSE
  "CMakeFiles/zoom_test.dir/workloads/zoom_test.cpp.o"
  "CMakeFiles/zoom_test.dir/workloads/zoom_test.cpp.o.d"
  "zoom_test"
  "zoom_test.pdb"
  "zoom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
