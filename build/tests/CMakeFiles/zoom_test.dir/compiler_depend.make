# Empty compiler generated dependencies file for zoom_test.
# This may be replaced when dependencies are built.
