# Empty dependencies file for lse_virtual_test.
# This may be replaced when dependencies are built.
