file(REMOVE_RECURSE
  "CMakeFiles/lse_virtual_test.dir/sched/lse_virtual_test.cpp.o"
  "CMakeFiles/lse_virtual_test.dir/sched/lse_virtual_test.cpp.o.d"
  "lse_virtual_test"
  "lse_virtual_test.pdb"
  "lse_virtual_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lse_virtual_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
