# Empty dependencies file for lse_test.
# This may be replaced when dependencies are built.
