file(REMOVE_RECURSE
  "CMakeFiles/lse_test.dir/sched/lse_test.cpp.o"
  "CMakeFiles/lse_test.dir/sched/lse_test.cpp.o.d"
  "lse_test"
  "lse_test.pdb"
  "lse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
