file(REMOVE_RECURSE
  "CMakeFiles/zoom_writeback_test.dir/workloads/zoom_writeback_test.cpp.o"
  "CMakeFiles/zoom_writeback_test.dir/workloads/zoom_writeback_test.cpp.o.d"
  "zoom_writeback_test"
  "zoom_writeback_test.pdb"
  "zoom_writeback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zoom_writeback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
