# Empty dependencies file for bitcnt_test.
# This may be replaced when dependencies are built.
