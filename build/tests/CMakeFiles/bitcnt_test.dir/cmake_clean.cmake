file(REMOVE_RECURSE
  "CMakeFiles/bitcnt_test.dir/workloads/bitcnt_test.cpp.o"
  "CMakeFiles/bitcnt_test.dir/workloads/bitcnt_test.cpp.o.d"
  "bitcnt_test"
  "bitcnt_test.pdb"
  "bitcnt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitcnt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
