# Empty dependencies file for asmtext_test.
# This may be replaced when dependencies are built.
