file(REMOVE_RECURSE
  "CMakeFiles/asmtext_test.dir/isa/asmtext_test.cpp.o"
  "CMakeFiles/asmtext_test.dir/isa/asmtext_test.cpp.o.d"
  "asmtext_test"
  "asmtext_test.pdb"
  "asmtext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asmtext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
