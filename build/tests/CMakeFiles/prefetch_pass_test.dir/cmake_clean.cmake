file(REMOVE_RECURSE
  "CMakeFiles/prefetch_pass_test.dir/xform/prefetch_pass_test.cpp.o"
  "CMakeFiles/prefetch_pass_test.dir/xform/prefetch_pass_test.cpp.o.d"
  "prefetch_pass_test"
  "prefetch_pass_test.pdb"
  "prefetch_pass_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
