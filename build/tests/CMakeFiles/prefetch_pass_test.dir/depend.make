# Empty dependencies file for prefetch_pass_test.
# This may be replaced when dependencies are built.
