# Empty dependencies file for prefetch_exec_test.
# This may be replaced when dependencies are built.
