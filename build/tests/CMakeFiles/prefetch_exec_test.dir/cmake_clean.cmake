file(REMOVE_RECURSE
  "CMakeFiles/prefetch_exec_test.dir/core/prefetch_exec_test.cpp.o"
  "CMakeFiles/prefetch_exec_test.dir/core/prefetch_exec_test.cpp.o.d"
  "prefetch_exec_test"
  "prefetch_exec_test.pdb"
  "prefetch_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
