# Empty compiler generated dependencies file for dual_issue_test.
# This may be replaced when dependencies are built.
