file(REMOVE_RECURSE
  "CMakeFiles/dual_issue_test.dir/core/dual_issue_test.cpp.o"
  "CMakeFiles/dual_issue_test.dir/core/dual_issue_test.cpp.o.d"
  "dual_issue_test"
  "dual_issue_test.pdb"
  "dual_issue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dual_issue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
