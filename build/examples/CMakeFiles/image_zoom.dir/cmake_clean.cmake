file(REMOVE_RECURSE
  "CMakeFiles/image_zoom.dir/image_zoom.cpp.o"
  "CMakeFiles/image_zoom.dir/image_zoom.cpp.o.d"
  "image_zoom"
  "image_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
