# Empty compiler generated dependencies file for image_zoom.
# This may be replaced when dependencies are built.
