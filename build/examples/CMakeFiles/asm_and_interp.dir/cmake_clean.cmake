file(REMOVE_RECURSE
  "CMakeFiles/asm_and_interp.dir/asm_and_interp.cpp.o"
  "CMakeFiles/asm_and_interp.dir/asm_and_interp.cpp.o.d"
  "asm_and_interp"
  "asm_and_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_and_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
