# Empty dependencies file for asm_and_interp.
# This may be replaced when dependencies are built.
