file(REMOVE_RECURSE
  "CMakeFiles/mmul_demo.dir/mmul_demo.cpp.o"
  "CMakeFiles/mmul_demo.dir/mmul_demo.cpp.o.d"
  "mmul_demo"
  "mmul_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmul_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
