# Empty dependencies file for mmul_demo.
# This may be replaced when dependencies are built.
