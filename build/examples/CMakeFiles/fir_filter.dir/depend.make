# Empty dependencies file for fir_filter.
# This may be replaced when dependencies are built.
