# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[dta_run_dot4]=] "/root/repo/build/tools/dta_run" "/root/repo/examples/programs/dot4.dta" "--spes" "2" "--profile" "--dump" "0x8000" "1")
set_tests_properties([=[dta_run_dot4]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[dta_run_prefetch_sum]=] "/root/repo/build/tools/dta_run" "/root/repo/examples/programs/prefetch_sum.dta" "--spes" "2" "--breakdown" "--dump" "0x8000" "1")
set_tests_properties([=[dta_run_prefetch_sum]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[dta_run_interp_mode]=] "/root/repo/build/tools/dta_run" "/root/repo/examples/programs/dot4.dta" "--interp" "--dump" "0x8000" "1")
set_tests_properties([=[dta_run_interp_mode]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test([=[dta_run_vfp_multinode]=] "/root/repo/build/tools/dta_run" "/root/repo/examples/programs/dot4.dta" "--spes" "2" "--nodes" "2" "--frames" "4" "--vfp" "--dump" "0x8000" "1")
set_tests_properties([=[dta_run_vfp_multinode]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
