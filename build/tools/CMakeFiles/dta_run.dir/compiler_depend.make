# Empty compiler generated dependencies file for dta_run.
# This may be replaced when dependencies are built.
