# Empty dependencies file for dta_run.
# This may be replaced when dependencies are built.
