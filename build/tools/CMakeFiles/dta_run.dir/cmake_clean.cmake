file(REMOVE_RECURSE
  "CMakeFiles/dta_run.dir/dta_run.cpp.o"
  "CMakeFiles/dta_run.dir/dta_run.cpp.o.d"
  "dta_run"
  "dta_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
