file(REMOVE_RECURSE
  "libdta_xform.a"
)
