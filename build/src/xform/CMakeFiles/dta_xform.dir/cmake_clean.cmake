file(REMOVE_RECURSE
  "CMakeFiles/dta_xform.dir/prefetch_pass.cpp.o"
  "CMakeFiles/dta_xform.dir/prefetch_pass.cpp.o.d"
  "libdta_xform.a"
  "libdta_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
