# Empty dependencies file for dta_xform.
# This may be replaced when dependencies are built.
