file(REMOVE_RECURSE
  "CMakeFiles/dta_sched.dir/dse.cpp.o"
  "CMakeFiles/dta_sched.dir/dse.cpp.o.d"
  "CMakeFiles/dta_sched.dir/lse.cpp.o"
  "CMakeFiles/dta_sched.dir/lse.cpp.o.d"
  "libdta_sched.a"
  "libdta_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
