file(REMOVE_RECURSE
  "libdta_sched.a"
)
