# Empty dependencies file for dta_sched.
# This may be replaced when dependencies are built.
