
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/dse.cpp" "src/sched/CMakeFiles/dta_sched.dir/dse.cpp.o" "gcc" "src/sched/CMakeFiles/dta_sched.dir/dse.cpp.o.d"
  "/root/repo/src/sched/lse.cpp" "src/sched/CMakeFiles/dta_sched.dir/lse.cpp.o" "gcc" "src/sched/CMakeFiles/dta_sched.dir/lse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dta_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dta_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/dta_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
