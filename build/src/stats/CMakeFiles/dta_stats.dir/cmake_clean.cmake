file(REMOVE_RECURSE
  "CMakeFiles/dta_stats.dir/report.cpp.o"
  "CMakeFiles/dta_stats.dir/report.cpp.o.d"
  "libdta_stats.a"
  "libdta_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
