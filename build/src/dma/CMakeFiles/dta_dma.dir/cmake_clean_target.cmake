file(REMOVE_RECURSE
  "libdta_dma.a"
)
