# Empty compiler generated dependencies file for dta_dma.
# This may be replaced when dependencies are built.
