file(REMOVE_RECURSE
  "CMakeFiles/dta_dma.dir/mfc.cpp.o"
  "CMakeFiles/dta_dma.dir/mfc.cpp.o.d"
  "libdta_dma.a"
  "libdta_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
