file(REMOVE_RECURSE
  "libdta_core.a"
)
