file(REMOVE_RECURSE
  "CMakeFiles/dta_core.dir/breakdown.cpp.o"
  "CMakeFiles/dta_core.dir/breakdown.cpp.o.d"
  "CMakeFiles/dta_core.dir/interpreter.cpp.o"
  "CMakeFiles/dta_core.dir/interpreter.cpp.o.d"
  "CMakeFiles/dta_core.dir/machine.cpp.o"
  "CMakeFiles/dta_core.dir/machine.cpp.o.d"
  "CMakeFiles/dta_core.dir/pe.cpp.o"
  "CMakeFiles/dta_core.dir/pe.cpp.o.d"
  "CMakeFiles/dta_core.dir/trace.cpp.o"
  "CMakeFiles/dta_core.dir/trace.cpp.o.d"
  "libdta_core.a"
  "libdta_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
