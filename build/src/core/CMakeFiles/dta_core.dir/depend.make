# Empty dependencies file for dta_core.
# This may be replaced when dependencies are built.
