file(REMOVE_RECURSE
  "libdta_noc.a"
)
