file(REMOVE_RECURSE
  "CMakeFiles/dta_noc.dir/interconnect.cpp.o"
  "CMakeFiles/dta_noc.dir/interconnect.cpp.o.d"
  "CMakeFiles/dta_noc.dir/link.cpp.o"
  "CMakeFiles/dta_noc.dir/link.cpp.o.d"
  "libdta_noc.a"
  "libdta_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
