# Empty compiler generated dependencies file for dta_noc.
# This may be replaced when dependencies are built.
