# Empty dependencies file for dta_mem.
# This may be replaced when dependencies are built.
