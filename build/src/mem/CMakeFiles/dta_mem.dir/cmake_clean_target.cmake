file(REMOVE_RECURSE
  "libdta_mem.a"
)
