file(REMOVE_RECURSE
  "CMakeFiles/dta_mem.dir/local_store.cpp.o"
  "CMakeFiles/dta_mem.dir/local_store.cpp.o.d"
  "CMakeFiles/dta_mem.dir/main_memory.cpp.o"
  "CMakeFiles/dta_mem.dir/main_memory.cpp.o.d"
  "libdta_mem.a"
  "libdta_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
