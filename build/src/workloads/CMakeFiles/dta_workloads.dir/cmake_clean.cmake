file(REMOVE_RECURSE
  "CMakeFiles/dta_workloads.dir/bitcnt.cpp.o"
  "CMakeFiles/dta_workloads.dir/bitcnt.cpp.o.d"
  "CMakeFiles/dta_workloads.dir/fir.cpp.o"
  "CMakeFiles/dta_workloads.dir/fir.cpp.o.d"
  "CMakeFiles/dta_workloads.dir/mmul.cpp.o"
  "CMakeFiles/dta_workloads.dir/mmul.cpp.o.d"
  "CMakeFiles/dta_workloads.dir/zoom.cpp.o"
  "CMakeFiles/dta_workloads.dir/zoom.cpp.o.d"
  "libdta_workloads.a"
  "libdta_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
