file(REMOVE_RECURSE
  "CMakeFiles/dta_sim.dir/check.cpp.o"
  "CMakeFiles/dta_sim.dir/check.cpp.o.d"
  "CMakeFiles/dta_sim.dir/log.cpp.o"
  "CMakeFiles/dta_sim.dir/log.cpp.o.d"
  "libdta_sim.a"
  "libdta_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
