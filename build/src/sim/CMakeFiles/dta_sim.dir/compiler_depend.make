# Empty compiler generated dependencies file for dta_sim.
# This may be replaced when dependencies are built.
