file(REMOVE_RECURSE
  "libdta_sim.a"
)
