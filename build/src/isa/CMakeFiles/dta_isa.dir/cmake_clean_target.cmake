file(REMOVE_RECURSE
  "libdta_isa.a"
)
