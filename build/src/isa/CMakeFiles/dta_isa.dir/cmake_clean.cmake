file(REMOVE_RECURSE
  "CMakeFiles/dta_isa.dir/asmtext.cpp.o"
  "CMakeFiles/dta_isa.dir/asmtext.cpp.o.d"
  "CMakeFiles/dta_isa.dir/builder.cpp.o"
  "CMakeFiles/dta_isa.dir/builder.cpp.o.d"
  "CMakeFiles/dta_isa.dir/disasm.cpp.o"
  "CMakeFiles/dta_isa.dir/disasm.cpp.o.d"
  "CMakeFiles/dta_isa.dir/opcode.cpp.o"
  "CMakeFiles/dta_isa.dir/opcode.cpp.o.d"
  "CMakeFiles/dta_isa.dir/program.cpp.o"
  "CMakeFiles/dta_isa.dir/program.cpp.o.d"
  "CMakeFiles/dta_isa.dir/validate.cpp.o"
  "CMakeFiles/dta_isa.dir/validate.cpp.o.d"
  "libdta_isa.a"
  "libdta_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dta_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
