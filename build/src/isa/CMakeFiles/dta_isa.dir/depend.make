# Empty dependencies file for dta_isa.
# This may be replaced when dependencies are built.
