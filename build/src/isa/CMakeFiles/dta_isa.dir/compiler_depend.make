# Empty compiler generated dependencies file for dta_isa.
# This may be replaced when dependencies are built.
