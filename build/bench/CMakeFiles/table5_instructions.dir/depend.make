# Empty dependencies file for table5_instructions.
# This may be replaced when dependencies are built.
