file(REMOVE_RECURSE
  "CMakeFiles/table5_instructions.dir/table5_instructions.cpp.o"
  "CMakeFiles/table5_instructions.dir/table5_instructions.cpp.o.d"
  "table5_instructions"
  "table5_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
