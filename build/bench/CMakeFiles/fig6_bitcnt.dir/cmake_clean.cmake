file(REMOVE_RECURSE
  "CMakeFiles/fig6_bitcnt.dir/fig6_bitcnt.cpp.o"
  "CMakeFiles/fig6_bitcnt.dir/fig6_bitcnt.cpp.o.d"
  "fig6_bitcnt"
  "fig6_bitcnt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bitcnt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
