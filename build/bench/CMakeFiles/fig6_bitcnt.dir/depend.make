# Empty dependencies file for fig6_bitcnt.
# This may be replaced when dependencies are built.
