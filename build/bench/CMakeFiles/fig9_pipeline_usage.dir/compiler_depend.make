# Empty compiler generated dependencies file for fig9_pipeline_usage.
# This may be replaced when dependencies are built.
