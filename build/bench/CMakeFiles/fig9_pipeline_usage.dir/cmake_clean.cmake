file(REMOVE_RECURSE
  "CMakeFiles/fig9_pipeline_usage.dir/fig9_pipeline_usage.cpp.o"
  "CMakeFiles/fig9_pipeline_usage.dir/fig9_pipeline_usage.cpp.o.d"
  "fig9_pipeline_usage"
  "fig9_pipeline_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_pipeline_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
