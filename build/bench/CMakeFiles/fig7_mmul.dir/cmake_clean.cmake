file(REMOVE_RECURSE
  "CMakeFiles/fig7_mmul.dir/fig7_mmul.cpp.o"
  "CMakeFiles/fig7_mmul.dir/fig7_mmul.cpp.o.d"
  "fig7_mmul"
  "fig7_mmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_mmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
