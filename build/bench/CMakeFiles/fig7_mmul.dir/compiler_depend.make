# Empty compiler generated dependencies file for fig7_mmul.
# This may be replaced when dependencies are built.
