file(REMOVE_RECURSE
  "CMakeFiles/fig8_zoom.dir/fig8_zoom.cpp.o"
  "CMakeFiles/fig8_zoom.dir/fig8_zoom.cpp.o.d"
  "fig8_zoom"
  "fig8_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
