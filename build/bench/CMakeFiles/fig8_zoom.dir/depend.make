# Empty dependencies file for fig8_zoom.
# This may be replaced when dependencies are built.
