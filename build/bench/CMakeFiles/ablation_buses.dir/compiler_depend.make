# Empty compiler generated dependencies file for ablation_buses.
# This may be replaced when dependencies are built.
