file(REMOVE_RECURSE
  "CMakeFiles/ablation_buses.dir/ablation_buses.cpp.o"
  "CMakeFiles/ablation_buses.dir/ablation_buses.cpp.o.d"
  "ablation_buses"
  "ablation_buses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_buses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
