# Empty compiler generated dependencies file for ablation_writeback.
# This may be replaced when dependencies are built.
