file(REMOVE_RECURSE
  "CMakeFiles/lat1_perfect_cache.dir/lat1_perfect_cache.cpp.o"
  "CMakeFiles/lat1_perfect_cache.dir/lat1_perfect_cache.cpp.o.d"
  "lat1_perfect_cache"
  "lat1_perfect_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lat1_perfect_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
