# Empty dependencies file for lat1_perfect_cache.
# This may be replaced when dependencies are built.
