file(REMOVE_RECURSE
  "CMakeFiles/ablation_mfc.dir/ablation_mfc.cpp.o"
  "CMakeFiles/ablation_mfc.dir/ablation_mfc.cpp.o.d"
  "ablation_mfc"
  "ablation_mfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
