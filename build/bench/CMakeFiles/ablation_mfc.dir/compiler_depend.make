# Empty compiler generated dependencies file for ablation_mfc.
# This may be replaced when dependencies are built.
