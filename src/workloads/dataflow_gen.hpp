/// \file dataflow_gen.hpp
/// \brief Seeded random-dataflow program generator for differential fuzzing.
///
/// Generates a random allocation tree of DTA threads with optional diamond
/// joins: every internal node forks a set of children, and may additionally
/// allocate a *join* thread whose Synchronisation Counter equals the number
/// of children; each child then stores its result into a distinct word of
/// the join's frame.  That exercises the full frame protocol — FALLOC
/// fan-out, cross-thread STOREs, SC count-down, handle forwarding through
/// frame memory — with a shape that varies per seed.
///
/// Every thread writes its 32-bit result to a distinct output word exactly
/// once, so the program is deterministic: memory after a cycle-level
/// Machine run must match the functional Interpreter and the host-side
/// replica in \ref expected.  The optional table-READ axis gives each
/// thread an annotated global-table read (xor-folded into its result),
/// which makes the program a valid input to the prefetch pass
/// (xform::add_prefetch) and so lets the fuzzer sweep the prefetch
/// dimension too.
///
/// Deadlock-freedom: when the target machine runs without virtual frame
/// pointers, a parked FALLOC can deadlock a program whose live-thread peak
/// exceeds one node's frame capacity; callers must clamp
/// \ref DataflowGenParams::max_threads to spes_per_node * frames_per_pe
/// (one node's capacity) in that case.  With virtual frames on, FALLOC
/// never fails and any thread count is safe.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "sim/types.hpp"
#include "xform/prefetch_pass.hpp"

namespace dta::workloads {

/// Shape parameters of one generated program (all consumed deterministically
/// from \ref seed).
struct DataflowGenParams {
    std::uint64_t seed = 1;
    /// Hard cap on total generated threads (tree nodes plus joins).  See the
    /// file comment for the no-virtual-frames deadlock-freedom bound.
    std::uint32_t max_threads = 48;
    /// Maximum children per node (also bounds join fan-in).
    std::uint32_t max_fanout = 4;
    /// Percent chance that a node with >= 2 children also allocates a join.
    std::uint32_t join_percent = 40;
    /// Give every thread an annotated global-table READ (prefetch axis).
    bool table_reads = false;
    sim::MemAddr out_base = 0x10000;
    sim::MemAddr table_base = 0x40000;
    std::uint32_t table_words = 64;
};

/// One generated random-dataflow program plus its host-side oracle.
class DataflowGen {
public:
    explicit DataflowGen(const DataflowGenParams& p);

    [[nodiscard]] const isa::Program& program() const { return prog_; }
    /// The same program with PF blocks synthesised by the prefetch pass
    /// (only meaningful when params().table_reads; otherwise returns the
    /// program unchanged).  \p staging_bytes must match the machine's
    /// LseConfig::staging_bytes_per_frame.
    [[nodiscard]] isa::Program prefetch_program(
        std::uint32_t staging_bytes) const {
        xform::PrefetchOptions opt;
        opt.staging_bytes = staging_bytes;
        return xform::add_prefetch(prog_, opt);
    }

    [[nodiscard]] std::vector<std::uint64_t> entry_args() const {
        return {p_.seed & 0xffff};
    }
    /// Seeds the global table the annotated READs consume (no-op layout-wise
    /// when table_reads is off, but always safe to call).
    void init_memory(mem::MainMemory& mem) const;

    /// Total generated threads (== thread codes; ids are dense from 0).
    [[nodiscard]] std::uint32_t thread_count() const {
        return static_cast<std::uint32_t>(nodes_.size());
    }
    /// Frame words any generated code touches (>= join fan-in); the target
    /// LseConfig::frame_words must be at least this.
    [[nodiscard]] std::uint32_t min_frame_words() const {
        return min_frame_words_;
    }
    /// Expected output word per thread id (host-side replica).
    [[nodiscard]] const std::vector<std::uint32_t>& expected() const {
        return expected_;
    }
    /// Compares every output word of \p mem against \ref expected; on
    /// mismatch fills \p why (if non-null) and returns false.
    [[nodiscard]] bool check(const mem::MainMemory& mem,
                             std::string* why) const;

    [[nodiscard]] const DataflowGenParams& params() const { return p_; }

private:
    struct Node {
        std::uint32_t id = 0;
        std::vector<std::uint32_t> children;  ///< regular children (fallocd)
        std::int64_t join = -1;       ///< join this node allocates, or -1
        std::int64_t join_word = -1;  ///< word of the parent's join we fill
        bool is_join = false;
        std::uint32_t arity = 0;      ///< join fan-in (is_join only)
    };

    void generate_shape();
    void emit_code();
    void fill_expected(std::uint32_t id, std::uint64_t input);
    [[nodiscard]] std::uint32_t table_at(std::uint32_t word) const;
    [[nodiscard]] std::uint32_t transform(std::uint64_t input,
                                          std::uint32_t id) const;

    DataflowGenParams p_;
    std::vector<Node> nodes_;
    std::uint32_t min_frame_words_ = 2;
    isa::Program prog_;
    std::vector<std::uint32_t> expected_;
};

}  // namespace dta::workloads
