#include "workloads/mmul.hpp"

#include <cstring>
#include <span>

#include "isa/builder.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"
#include "xform/prefetch_pass.hpp"

namespace dta::workloads {

using isa::CodeBlock;
using isa::CodeBuilder;
using isa::r;

MatMul::MatMul(const Params& p) : p_(p) {
    DTA_SIM_REQUIRE(p.n > 0, "mmul: n must be positive");
    DTA_SIM_REQUIRE(p.threads > 0 && p.n % p.threads == 0,
                    "mmul: thread count must divide n");
    DTA_SIM_REQUIRE((p.unroll == 1 || p.unroll == 2 || p.unroll == 4) &&
                        p.n % p.unroll == 0,
                    "mmul: unroll must be 1, 2 or 4 and divide n");
    // Input data and host reference.
    sim::Xoshiro256 rng(p.seed);
    a_.resize(p.n * p.n);
    b_.resize(p.n * p.n);
    for (auto& v : a_) v = static_cast<std::uint32_t>(rng.next_below(64));
    for (auto& v : b_) v = static_cast<std::uint32_t>(rng.next_below(64));
    ref_.assign(p.n * p.n, 0);
    for (std::uint32_t i = 0; i < p.n; ++i) {
        for (std::uint32_t k = 0; k < p.n; ++k) {
            const std::uint64_t av = a_[i * p.n + k];
            for (std::uint32_t j = 0; j < p.n; ++j) {
                ref_[i * p.n + j] += static_cast<std::uint32_t>(
                    av * b_[k * p.n + j]);
            }
        }
    }
    prog_ = build();
    xform::PrefetchOptions opt;
    opt.staging_bytes = lse_config().staging_bytes_per_frame;
    prog_pf_ = xform::add_prefetch(prog_, opt);
}

isa::Program MatMul::build() const {
    const std::uint32_t n = p_.n;
    const std::uint32_t rows_per_thread = n / p_.threads;
    const std::int64_t row_bytes = static_cast<std::int64_t>(n) * 4;

    isa::Program prog;
    prog.name = "mmul(" + std::to_string(n) + ")";

    // ---- worker: computes C rows [row_begin, row_end) ---------------------
    CodeBuilder w("mmul_worker", /*num_inputs=*/2);

    // Prefetch annotations (consumed by the PF pass):
    // region 0 — this worker's band of A rows.
    isa::RegionAnnotation band;
    {
        CodeBuilder ab("regA_addr", 0);
        ab.block(CodeBlock::kPf)
            .load(r(28), 0)                     // row_begin
            .muli(r(28), r(28), row_bytes)      // * n * 4
            .addi(r(30), r(28), static_cast<std::int64_t>(a_base()));
        isa::ThreadCode addr = std::move(ab).build_unchecked();
        band.addr_code = addr.code;
        band.addr_reg = 30;
        band.bytes = rows_per_thread * n * 4;
    }
    const std::int16_t reg_a = w.annotate(band);
    // region 1 — the whole of B.
    isa::RegionAnnotation whole_b;
    {
        CodeBuilder ab("regB_addr", 0);
        ab.block(CodeBlock::kPf)
            .movi(r(30), static_cast<std::int64_t>(b_base()));
        isa::ThreadCode addr = std::move(ab).build_unchecked();
        whole_b.addr_code = addr.code;
        whole_b.addr_reg = 30;
        whole_b.bytes = n * n * 4;
    }
    const std::int16_t reg_b = w.annotate(whole_b);

    w.block(CodeBlock::kPl)
        .load(r(1), 0)   // row_begin
        .load(r(2), 1);  // row_end
    w.block(CodeBlock::kEx)
        .movi(r(3), n)
        .movi(r(4), static_cast<std::int64_t>(a_base()))
        .movi(r(5), static_cast<std::int64_t>(b_base()))
        .movi(r(6), static_cast<std::int64_t>(c_base()))
        .movi(r(16), row_bytes)
        .mov(r(7), r(1));  // i = row_begin
    auto li = w.new_label();
    auto li_done = w.new_label();
    auto lj = w.new_label();
    auto lj_done = w.new_label();
    auto lk = w.new_label();
    w.bind(li)
        .bge(r(7), r(2), li_done)
        .mul(r(17), r(7), r(16))   // i * n * 4
        .add(r(17), r(17), r(4))   // a_row = A + i*n*4
        .sub(r(20), r(17), r(4))
        .add(r(20), r(20), r(6))   // c_row = C + i*n*4
        .movi(r(8), 0);            // j = 0
    w.bind(lj)
        .bge(r(8), r(3), lj_done)
        .movi(r(9), 0)             // acc = 0
        .movi(r(10), 0)            // k = 0
        .mov(r(11), r(17))         // a_ptr
        .shli(r(12), r(8), 2)
        .add(r(12), r(12), r(5));  // b_ptr = B + j*4
    // Unrolled multiply-accumulate over k: independent READ pairs first
    // (they overlap in the memory pipe), then the multiplies, then the
    // accumulation chain — the paper's hand-unrolled inner loop.
    const std::uint32_t u_count = p_.unroll;
    static constexpr std::uint8_t kRegsA[4] = {13, 22, 24, 26};
    static constexpr std::uint8_t kRegsB[4] = {14, 23, 25, 27};
    static constexpr std::uint8_t kRegsP[4] = {15, 28, 29, 30};
    w.bind(lk);
    for (std::uint32_t u = 0; u < u_count; ++u) {
        w.read(r(kRegsA[u]), r(11), 4 * static_cast<std::int64_t>(u), reg_a)
            .read(r(kRegsB[u]), r(12),
                  row_bytes * static_cast<std::int64_t>(u), reg_b);
    }
    for (std::uint32_t u = 0; u < u_count; ++u) {
        w.mul(r(kRegsP[u]), r(kRegsA[u]), r(kRegsB[u]));
    }
    for (std::uint32_t u = 0; u < u_count; ++u) {
        w.add(r(9), r(9), r(kRegsP[u]));
    }
    w.addi(r(11), r(11), 4 * static_cast<std::int64_t>(u_count))
        .addi(r(12), r(12),
              row_bytes * static_cast<std::int64_t>(u_count))
        .addi(r(10), r(10), u_count)
        .blt(r(10), r(3), lk)
        .shli(r(19), r(8), 2)
        .add(r(21), r(20), r(19))
        .write(r(9), r(21), 0)          // C[i,j]
        .addi(r(8), r(8), 1)
        .jmp(lj);
    w.bind(lj_done)
        .addi(r(7), r(7), 1)
        .jmp(li);
    w.bind(li_done);
    w.block(CodeBlock::kPs).ffree().stop();
    const sim::ThreadCodeId worker = prog.add(std::move(w).build());

    // ---- main thread: forks the workers ------------------------------------
    CodeBuilder m("mmul_main", /*num_inputs=*/0);
    m.block(CodeBlock::kPs)
        .movi(r(1), 0)                // row cursor
        .movi(r(2), rows_per_thread)
        .movi(r(3), p_.threads)
        .movi(r(4), 0);               // t
    auto loop = m.new_label();
    auto done = m.new_label();
    m.bind(loop)
        .bge(r(4), r(3), done)
        .falloc(r(5), worker)
        .store(r(1), r(5), 0)         // row_begin
        .add(r(6), r(1), r(2))
        .store(r(6), r(5), 1)         // row_end
        .mov(r(1), r(6))
        .addi(r(4), r(4), 1)
        .jmp(loop);
    m.bind(done).ffree().stop();
    prog.entry = prog.add(std::move(m).build());
    return prog;
}

void MatMul::init_memory(mem::MainMemory& mem) const {
    const auto bytes = [](const std::vector<std::uint32_t>& v) {
        return std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(v.data()), v.size() * 4);
    };
    mem.write_bytes(a_base(), bytes(a_));
    mem.write_bytes(b_base(), bytes(b_));
}

bool MatMul::check(const mem::MainMemory& mem, std::string* why) const {
    for (std::uint32_t i = 0; i < p_.n * p_.n; ++i) {
        const std::uint32_t got = mem.read_u32(c_base() + i * 4);
        if (got != ref_[i]) {
            if (why) {
                *why = "C[" + std::to_string(i / p_.n) + "," +
                       std::to_string(i % p_.n) + "] = " +
                       std::to_string(got) + ", expected " +
                       std::to_string(ref_[i]);
            }
            return false;
        }
    }
    return true;
}

}  // namespace dta::workloads
