/// \file fir.hpp
/// \brief A fourth workload beyond the paper's three: a 1-D FIR filter —
///        the streaming-stencil flavour of the media kernels (H.264
///        deblocking) the DTA authors studied for TLP in their companion
///        work.  y[i] = sum_k c[k] * x[i+k].
///
/// Each worker filters a band of output samples.  The original version
/// READs the signal and the coefficients from main memory per tap; the
/// prefetch variant stages the worker's input window (band + taps samples)
/// and the coefficient vector, both through the standard annotation + pass
/// route — demonstrating that the mechanism generalises past the paper's
/// hand-picked kernels.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "sim/types.hpp"

namespace dta::workloads {

/// FIR-filter workload generator.
class Fir {
public:
    struct Params {
        std::uint32_t samples = 4096;  ///< output length
        std::uint32_t taps = 8;        ///< filter order
        std::uint32_t threads = 32;    ///< must divide samples
        std::uint64_t seed = 3;
    };

    explicit Fir(const Params& p);

    [[nodiscard]] const isa::Program& program() const { return prog_; }
    [[nodiscard]] const isa::Program& prefetch_program() const {
        return prog_pf_;
    }
    void init_memory(mem::MainMemory& mem) const;
    [[nodiscard]] std::vector<std::uint64_t> entry_args() const { return {}; }
    [[nodiscard]] bool check(const mem::MainMemory& mem,
                             std::string* why) const;

    [[nodiscard]] static sched::LseConfig lse_config() {
        return sched::LseConfig::with(/*frames=*/32, /*staging=*/4 * 1024);
    }
    [[nodiscard]] static std::uint32_t threads_for(std::uint16_t spes) {
        const std::uint32_t t = 8u * spes;
        return t > 32 ? 32 : t;
    }
    [[nodiscard]] static core::MachineConfig machine_config(
        std::uint16_t spes) {
        auto cfg = core::MachineConfig::cell_dta(spes);
        cfg.lse = lse_config();
        return cfg;
    }

    [[nodiscard]] const Params& params() const { return p_; }
    [[nodiscard]] sim::MemAddr x_base() const { return kDataBase; }
    [[nodiscard]] sim::MemAddr c_base() const {
        return kDataBase + (p_.samples + p_.taps) * 4ull;
    }
    [[nodiscard]] sim::MemAddr y_base() const {
        return c_base() + p_.taps * 4ull;
    }
    [[nodiscard]] const std::vector<std::uint32_t>& reference() const {
        return ref_;
    }

private:
    static constexpr sim::MemAddr kDataBase = 0x600000;

    [[nodiscard]] isa::Program build() const;

    Params p_;
    std::vector<std::uint32_t> x_;
    std::vector<std::uint32_t> c_;
    std::vector<std::uint32_t> ref_;
    isa::Program prog_;
    isa::Program prog_pf_;
};

}  // namespace dta::workloads
