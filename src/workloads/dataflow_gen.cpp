#include "workloads/dataflow_gen.hpp"

#include <utility>

#include "isa/builder.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"

namespace dta::workloads {

using isa::CodeBlock;
using isa::CodeBuilder;
using isa::r;

namespace {
constexpr std::uint64_t kMix = 0x85EBCA6Bull;
}  // namespace

DataflowGen::DataflowGen(const DataflowGenParams& p) : p_(p) {
    DTA_SIM_REQUIRE(p_.max_threads >= 1, "dataflow_gen needs >= 1 thread");
    DTA_SIM_REQUIRE(p_.max_fanout >= 1, "dataflow_gen needs fanout >= 1");
    DTA_SIM_REQUIRE(p_.table_words >= 1, "dataflow_gen needs a table word");
    generate_shape();
    emit_code();
    expected_.assign(nodes_.size(), 0);
    fill_expected(0, p_.seed & 0xffff);
}

void DataflowGen::generate_shape() {
    sim::Xoshiro256 rng(p_.seed);
    nodes_.push_back(Node{});
    std::vector<std::uint32_t> frontier = {0};
    std::size_t head = 0;
    while (head < frontier.size() && nodes_.size() < p_.max_threads) {
        const std::uint32_t id = frontier[head++];
        const auto remaining =
            static_cast<std::uint32_t>(p_.max_threads - nodes_.size());
        std::uint32_t kids =
            static_cast<std::uint32_t>(rng.next_below(p_.max_fanout + 1));
        // The root always forks at least once so single-thread programs only
        // occur when max_threads itself is 1.
        if (id == 0 && kids == 0) {
            kids = 1;
        }
        // A join consumes one extra slot of the thread budget.
        bool join = kids >= 2 && rng.next_below(100) < p_.join_percent;
        if (kids + (join ? 1u : 0u) > remaining) {
            join = false;
            kids = std::min(kids, remaining);
        }
        for (std::uint32_t k = 0; k < kids; ++k) {
            const auto cid = static_cast<std::uint32_t>(nodes_.size());
            nodes_.push_back(Node{});
            nodes_.back().id = cid;
            nodes_[id].children.push_back(cid);
            frontier.push_back(cid);
        }
        if (join) {
            const auto jid = static_cast<std::uint32_t>(nodes_.size());
            nodes_.push_back(Node{});
            Node& j = nodes_.back();
            j.id = jid;
            j.is_join = true;
            j.arity = kids;
            nodes_[id].join = jid;
            for (std::uint32_t k = 0; k < kids; ++k) {
                nodes_[nodes_[id].children[k]].join_word = k;
            }
            if (kids > min_frame_words_) {
                min_frame_words_ = kids;
            }
        }
    }
}

std::uint32_t DataflowGen::table_at(std::uint32_t word) const {
    // Its own SplitMix stream so table contents and tree shape are
    // independent draws of the same seed.
    sim::SplitMix64 sm(p_.seed ^ 0x7ab1eULL ^ word);
    return static_cast<std::uint32_t>(sm.next() & 0xffffffffULL);
}

void DataflowGen::init_memory(mem::MainMemory& mem) const {
    for (std::uint32_t w = 0; w < p_.table_words; ++w) {
        mem.write_u32(p_.table_base + 4ull * w, table_at(w));
    }
}

std::uint32_t DataflowGen::transform(std::uint64_t input,
                                     std::uint32_t id) const {
    auto v = static_cast<std::uint32_t>(((input + id) * kMix) & 0xffffffffULL);
    if (p_.table_reads) {
        v ^= table_at(id % p_.table_words);
    }
    return v;
}

void DataflowGen::fill_expected(std::uint32_t id, std::uint64_t input) {
    const Node& n = nodes_[id];
    const std::uint32_t v = transform(input, id);
    expected_[id] = v;
    for (std::size_t i = 0; i < n.children.size(); ++i) {
        fill_expected(n.children[i], v + static_cast<std::uint64_t>(i));
    }
    if (n.join >= 0) {
        // The join sums its input words (the children's results) in 64-bit
        // register arithmetic before the common transform.
        std::uint64_t sum = 0;
        for (const std::uint32_t cid : n.children) {
            sum += expected_[cid];
        }
        const auto jid = static_cast<std::uint32_t>(n.join);
        expected_[jid] = transform(sum, jid);
    }
}

void DataflowGen::emit_code() {
    prog_.name = "dataflow_gen(seed=" + std::to_string(p_.seed) + ")";
    for (const Node& n : nodes_) {
        const std::uint32_t num_inputs =
            n.is_join ? n.arity : (n.join_word >= 0 ? 2u : 1u);
        CodeBuilder b((n.is_join ? "join" : "node") + std::to_string(n.id),
                      num_inputs);

        std::int16_t region = isa::kNoRegion;
        if (p_.table_reads) {
            isa::RegionAnnotation ann;
            CodeBuilder ab("table_addr", 0);
            ab.block(CodeBlock::kPf)
                .movi(r(30), static_cast<std::int64_t>(p_.table_base));
            ann.addr_code = std::move(ab).build_unchecked().code;
            ann.addr_reg = 30;
            ann.bytes = p_.table_words * 4;
            region = b.annotate(std::move(ann));
        }

        // PL: fold the input words into r1 (joins sum all of theirs), and
        // fetch the parent-provided join handle if we feed one.
        b.block(CodeBlock::kPl).load(r(1), 0);
        if (n.is_join) {
            for (std::uint32_t w = 1; w < n.arity; ++w) {
                b.load(r(2), w).add(r(1), r(1), r(2));
            }
        } else if (n.join_word >= 0) {
            b.load(r(10), 1);
        }

        // EX: the common transform, then the single output WRITE.
        b.block(CodeBlock::kEx)
            .addi(r(2), r(1), n.id)
            .muli(r(2), r(2), static_cast<std::int64_t>(kMix))
            .andi(r(2), r(2), 0xffffffff);
        if (p_.table_reads) {
            b.movi(r(3), static_cast<std::int64_t>(p_.table_base))
                .read(r(4), r(3), 4ll * (n.id % p_.table_words), region)
                .xor_(r(2), r(2), r(4));
        }
        b.movi(r(5), static_cast<std::int64_t>(p_.out_base + 4ull * n.id))
            .write(r(2), r(5), 0);

        // PS: allocate the join (if any) and the children, feed them, then
        // count down the parent's join if we participate in one.
        b.block(CodeBlock::kPs);
        if (n.join >= 0) {
            b.falloc(r(7), static_cast<sim::ThreadCodeId>(n.join));
        }
        for (std::size_t i = 0; i < n.children.size(); ++i) {
            b.falloc(r(6), n.children[i])
                .addi(r(8), r(2), static_cast<std::int64_t>(i))
                .store(r(8), r(6), 0);
            if (n.join >= 0) {
                b.store(r(7), r(6), 1);
            }
        }
        if (n.join_word >= 0) {
            b.store(r(2), r(10), n.join_word);
        }
        b.ffree().stop();
        prog_.add(std::move(b).build());
    }
    prog_.entry = 0;
}

bool DataflowGen::check(const mem::MainMemory& mem, std::string* why) const {
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
        const std::uint32_t got = mem.read_u32(p_.out_base + 4ull * id);
        if (got != expected_[id]) {
            if (why != nullptr) {
                *why = "thread " + std::to_string(id) + " wrote " +
                       std::to_string(got) + ", expected " +
                       std::to_string(expected_[id]);
            }
            return false;
        }
    }
    return true;
}

}  // namespace dta::workloads
