#include "workloads/bitcnt.hpp"

#include <bit>

#include "isa/builder.hpp"
#include "sim/check.hpp"
#include "xform/prefetch_pass.hpp"

namespace dta::workloads {

using isa::CodeBlock;
using isa::CodeBuilder;
using isa::r;

// ---- host replicas ---------------------------------------------------------

std::uint32_t BitCount::mix(std::uint64_t x) {
    return static_cast<std::uint32_t>(((x * 0x9E3779B1ull) ^ (x >> 13)) &
                                      0xffffffffull);
}

std::uint32_t BitCount::fn_kern(std::uint32_t v) {
    return static_cast<std::uint32_t>(std::popcount(v));
}

std::uint32_t BitCount::fn_btbl(std::uint32_t v) {
    std::uint32_t s = 0;
    for (int i = 0; i < 4; ++i) {
        s += static_cast<std::uint32_t>(std::popcount((v >> (8 * i)) & 0xffu));
    }
    return s;
}

std::uint32_t BitCount::fn_ntbl(std::uint32_t v) {
    std::uint32_t s = 0;
    for (int i = 0; i < 4; ++i) {
        s += static_cast<std::uint32_t>(std::popcount((v >> (4 * i)) & 0xfu));
    }
    return s;
}

std::uint32_t BitCount::fn_masks(std::uint32_t v) {
    std::uint32_t s = 0;
    for (std::uint32_t i = 0; i < kNumMasks; ++i) {
        s += ((v & mask_value(i)) >> (i % 8)) & 0xffu;
    }
    return s;
}

// ---- construction ----------------------------------------------------------

BitCount::BitCount(const Params& p) : p_(p) {
    DTA_SIM_REQUIRE(p.iterations > 0 && p.iterations % kGroup == 0,
                    "bitcnt: iterations must be a positive multiple of 16");
    ref_.assign(blocks(), 0);
    for (std::uint32_t b = 0; b < blocks(); ++b) {
        for (std::uint32_t i = 0; i < kGroup; ++i) {
            const std::uint32_t v = mix(b * kGroup + i);
            ref_[b] += fn_kern(v) + fn_btbl(v) + fn_ntbl(v) + fn_masks(v);
        }
    }
    prog_ = build();
    xform::PrefetchOptions opt;
    opt.staging_bytes = lse_config().staging_bytes_per_frame;
    prog_pf_ = xform::add_prefetch(prog_, opt);
}

isa::Program BitCount::build() const {
    isa::Program prog;
    prog.name = "bitcnt(" + std::to_string(p_.iterations) + ")";

    // ---- fn_kern: Kernighan's loop (pure ALU, no global data) --------------
    sim::ThreadCodeId kern_id;
    {
        CodeBuilder b("bc_kern", 2);
        b.block(CodeBlock::kPl).load(r(1), 0).load(r(2), 1);
        b.block(CodeBlock::kEx).movi(r(3), 0).mov(r(4), r(1));
        auto lp = b.new_label();
        auto done = b.new_label();
        b.bind(lp)
            .beq(r(4), r(0), done)
            .addi(r(5), r(4), -1)
            .and_(r(4), r(4), r(5))
            .addi(r(3), r(3), 1)
            .jmp(lp);
        b.bind(done);
        b.block(CodeBlock::kPs).store(r(3), r(2), 0).ffree().stop();
        kern_id = prog.add(std::move(b).build());
    }

    // ---- fn_btbl: four byte-table lookups (data-dependent index => the
    //      READs are deliberately NOT annotated; they stay in the thread) ----
    sim::ThreadCodeId btbl_id;
    {
        CodeBuilder b("bc_btbl", 2);
        b.block(CodeBlock::kPl).load(r(1), 0).load(r(2), 1);
        b.block(CodeBlock::kEx)
            .movi(r(5), static_cast<std::int64_t>(kTable8))
            .movi(r(3), 0);
        for (int i = 0; i < 4; ++i) {
            b.shri(r(6), r(1), 8 * i)
                .andi(r(6), r(6), 0xff)
                .shli(r(6), r(6), 2)
                .add(r(6), r(6), r(5))
                .read(r(7), r(6), 0)
                .add(r(3), r(3), r(7));
        }
        b.block(CodeBlock::kPs).store(r(3), r(2), 1).ffree().stop();
        btbl_id = prog.add(std::move(b).build());
    }

    // ---- fn_ntbl: four nibble-table lookups of the low 16 bits --------------
    sim::ThreadCodeId ntbl_id;
    {
        CodeBuilder b("bc_ntbl", 2);
        b.block(CodeBlock::kPl).load(r(1), 0).load(r(2), 1);
        b.block(CodeBlock::kEx)
            .movi(r(5), static_cast<std::int64_t>(kTable4))
            .movi(r(3), 0);
        for (int i = 0; i < 4; ++i) {
            b.shri(r(6), r(1), 4 * i)
                .andi(r(6), r(6), 0xf)
                .shli(r(6), r(6), 2)
                .add(r(6), r(6), r(5))
                .read(r(7), r(6), 0)
                .add(r(3), r(3), r(7));
        }
        b.block(CodeBlock::kPs).store(r(3), r(2), 2).ffree().stop();
        ntbl_id = prog.add(std::move(b).build());
    }

    // ---- fn_masks: linear scan of the coefficient array (prefetchable) ------
    sim::ThreadCodeId masks_id;
    {
        CodeBuilder b("bc_masks", 2);
        isa::RegionAnnotation ann;
        {
            CodeBuilder ab("bc_masks_addr", 0);
            ab.block(CodeBlock::kPf)
                .movi(r(30), static_cast<std::int64_t>(kMasks));
            ann.addr_code = std::move(ab).build_unchecked().code;
            ann.addr_reg = 30;
            ann.bytes = kNumMasks * 4;
        }
        const std::int16_t reg0 = b.annotate(ann);
        b.block(CodeBlock::kPl).load(r(1), 0).load(r(2), 1);
        b.block(CodeBlock::kEx)
            .movi(r(5), static_cast<std::int64_t>(kMasks))
            .movi(r(3), 0);
        for (std::uint32_t i = 0; i < kNumMasks; ++i) {
            b.read(r(6), r(5), static_cast<std::int64_t>(i) * 4, reg0)
                .and_(r(7), r(1), r(6))
                .shri(r(7), r(7), i % 8)
                .andi(r(7), r(7), 0xff)
                .add(r(3), r(3), r(7));
        }
        b.block(CodeBlock::kPs).store(r(3), r(2), 3).ffree().stop();
        masks_id = prog.add(std::move(b).build());
    }

    // ---- combiner: sums the four partial counts, forwards to the group
    //      accumulator at a register-indexed frame word ----------------------
    sim::ThreadCodeId comb_id;
    {
        CodeBuilder b("bc_comb", 6);
        b.block(CodeBlock::kPl)
            .load(r(1), 0)
            .load(r(2), 1)
            .load(r(3), 2)
            .load(r(4), 3)
            .load(r(5), 4)   // accumulator handle
            .load(r(6), 5);  // word index within the accumulator frame
        b.block(CodeBlock::kEx)
            .add(r(7), r(1), r(2))
            .add(r(7), r(7), r(3))
            .add(r(7), r(7), r(4));
        b.block(CodeBlock::kPs)
            .storex(r(7), r(5), r(6), 0)
            .ffree()
            .stop();
        comb_id = prog.add(std::move(b).build());
    }

    // ---- group accumulator: 16 partial sums + block index, one WRITE --------
    sim::ThreadCodeId acc_id;
    {
        CodeBuilder b("bc_acc", kGroup + 1);
        b.block(CodeBlock::kPl);
        for (std::uint32_t i = 0; i < kGroup; ++i) {
            b.load(r(static_cast<std::uint8_t>(1 + i)), i);
        }
        b.load(r(17), kGroup);  // block index
        b.block(CodeBlock::kEx).mov(r(20), r(1));
        for (std::uint32_t i = 1; i < kGroup; ++i) {
            b.add(r(20), r(20), r(static_cast<std::uint8_t>(1 + i)));
        }
        b.shli(r(21), r(17), 2)
            .addi(r(21), r(21), static_cast<std::int64_t>(kOut))
            .write(r(20), r(21), 0);
        b.block(CodeBlock::kPs).ffree().stop();
        acc_id = prog.add(std::move(b).build());
    }

    // ---- iteration thread: derives the value, forks the four functions
    //      plus the combiner --------------------------------------------------
    sim::ThreadCodeId iter_id;
    {
        CodeBuilder b("bc_iter", 3);
        b.block(CodeBlock::kPl)
            .load(r(1), 0)   // iteration index x
            .load(r(2), 1)   // accumulator handle
            .load(r(3), 2);  // word index
        b.block(CodeBlock::kEx)
            .muli(r(4), r(1), 0x9E3779B1)
            .shri(r(5), r(1), 13)
            .xor_(r(4), r(4), r(5))
            .andi(r(4), r(4), 0xffffffff);  // v = mix(x)
        b.block(CodeBlock::kPs)
            .falloc(r(6), comb_id)
            .store(r(2), r(6), 4)
            .store(r(3), r(6), 5)
            .falloc(r(7), kern_id)
            .store(r(4), r(7), 0)
            .store(r(6), r(7), 1)
            .falloc(r(8), btbl_id)
            .store(r(4), r(8), 0)
            .store(r(6), r(8), 1)
            .falloc(r(9), ntbl_id)
            .store(r(4), r(9), 0)
            .store(r(6), r(9), 1)
            .falloc(r(10), masks_id)
            .store(r(4), r(10), 0)
            .store(r(6), r(10), 1)
            .ffree()
            .stop();
        iter_id = prog.add(std::move(b).build());
    }

    // ---- spawner: unrolls the main loop in groups of 16; forks its own
    //      continuation (the paper's "forking a vast amount of threads") ------
    {
        CodeBuilder b("bc_spawner", 1);
        b.block(CodeBlock::kPl).load(r(1), 0);  // start
        b.block(CodeBlock::kEx).movi(r(2), p_.iterations);
        auto done = b.new_label();
        auto lp = b.new_label();
        b.block(CodeBlock::kPs)
            .bge(r(1), r(2), done)
            .falloc(r(3), acc_id)
            .shri(r(4), r(1), 4)     // block index = start / 16
            .store(r(4), r(3), kGroup)
            .movi(r(5), 0)
            .movi(r(10), kGroup);
        b.bind(lp)
            .falloc(r(6), iter_id)
            .add(r(7), r(1), r(5))
            .store(r(7), r(6), 0)
            .store(r(3), r(6), 1)
            .store(r(5), r(6), 2)
            .addi(r(5), r(5), 1)
            .blt(r(5), r(10), lp)
            .addi(r(8), r(1), kGroup)
            .falloc(r(9), 7 /*self: spawner is the 8th code added*/)
            .store(r(8), r(9), 0);
        b.bind(done).ffree().stop();
        prog.entry = prog.add(std::move(b).build());
        DTA_SIM_REQUIRE(prog.entry == 7,
                        "bitcnt: spawner self-reference id drifted");
    }
    return prog;
}

void BitCount::init_memory(mem::MainMemory& mem) const {
    for (std::uint32_t i = 0; i < 256; ++i) {
        mem.write_u32(kTable8 + i * 4,
                      static_cast<std::uint32_t>(std::popcount(i)));
    }
    for (std::uint32_t i = 0; i < 16; ++i) {
        mem.write_u32(kTable4 + i * 4,
                      static_cast<std::uint32_t>(std::popcount(i)));
    }
    for (std::uint32_t i = 0; i < kNumMasks; ++i) {
        mem.write_u32(kMasks + i * 4, mask_value(i));
    }
}

bool BitCount::check(const mem::MainMemory& mem, std::string* why) const {
    for (std::uint32_t b = 0; b < blocks(); ++b) {
        const std::uint32_t got = mem.read_u32(kOut + b * 4ull);
        if (got != ref_[b]) {
            if (why) {
                *why = "block " + std::to_string(b) + " = " +
                       std::to_string(got) + ", expected " +
                       std::to_string(ref_[b]);
            }
            return false;
        }
    }
    return true;
}

}  // namespace dta::workloads
