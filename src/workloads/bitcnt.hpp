/// \file bitcnt.hpp
/// \brief The paper's bitcount benchmark (Section 4.2, after MiBench
///        bitcount): "counts bits for a certain number of iterations [...]
///        Its parallelization has been performed by unrolling both the main
///        loop and the loops inside each function.  Global data that is
///        used by some of the functions in the program is prefetched in the
///        threads where it was needed."
///
/// Structure: a chain of *spawner* threads unrolls the main loop in groups
/// of 16 iterations.  Every iteration forks four bit-counting function
/// threads (Kernighan loop, byte-table, nibble-table, mask-coefficient) plus
/// a combiner; per-group accumulator threads gather the combiner results
/// through frame stores and WRITE one partial sum per group to memory.
/// This reproduces bitcnt's character in the paper: data exchanged mostly
/// through frame memory, a vast forking rate that pressures the LSE, and
/// global-table READs of which only the linearly-scanned coefficient array
/// is worth prefetching — the byte/nibble table lookups have data-dependent
/// indices and stay as READs ("it is faster to leave one memory access
/// inside the thread rather than prefetch all elements of the array when
/// only one will be used"), so only ~60 % of READs are decoupled, as in the
/// paper (62 %).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "sim/types.hpp"

namespace dta::workloads {

/// Bit-count workload generator.
class BitCount {
public:
    struct Params {
        std::uint32_t iterations = 10000;  ///< paper: bitcnt(10000)
    };

    /// Iterations per spawner group / accumulator fan-in.
    static constexpr std::uint32_t kGroup = 16;

    explicit BitCount(const Params& p);

    [[nodiscard]] const isa::Program& program() const { return prog_; }
    [[nodiscard]] const isa::Program& prefetch_program() const {
        return prog_pf_;
    }
    void init_memory(mem::MainMemory& mem) const;
    [[nodiscard]] std::vector<std::uint64_t> entry_args() const {
        return {0};  // first iteration index
    }
    [[nodiscard]] bool check(const mem::MainMemory& mem,
                             std::string* why) const;

    /// LSE layout: bitcnt forks a vast number of tiny threads, so it wants
    /// many frames and almost no staging (only the 48-byte mask table).
    /// 192 frames covers the live-thread peak of two overlapping spawner
    /// groups even on a single SPE, where one parked FALLOC is fatal.
    [[nodiscard]] static sched::LseConfig lse_config() {
        return sched::LseConfig::with(/*frames=*/192, /*staging=*/512);
    }
    /// The paper's CellDTA machine configuration tuned for this workload.
    [[nodiscard]] static core::MachineConfig machine_config(
        std::uint16_t spes) {
        auto cfg = core::MachineConfig::cell_dta(spes);
        cfg.lse = lse_config();
        return cfg;
    }

    [[nodiscard]] const Params& params() const { return p_; }
    [[nodiscard]] std::uint32_t blocks() const {
        return p_.iterations / kGroup;
    }

    // Host-side replicas of the four counting functions (used by tests).
    [[nodiscard]] static std::uint32_t mix(std::uint64_t x);
    [[nodiscard]] static std::uint32_t fn_kern(std::uint32_t v);
    [[nodiscard]] static std::uint32_t fn_btbl(std::uint32_t v);
    [[nodiscard]] static std::uint32_t fn_ntbl(std::uint32_t v);
    [[nodiscard]] static std::uint32_t fn_masks(std::uint32_t v);

private:
    static constexpr sim::MemAddr kBase = 0x400000;
    static constexpr sim::MemAddr kTable8 = kBase;            // 256 x u32
    static constexpr sim::MemAddr kTable4 = kBase + 0x400;    // 16 x u32
    static constexpr sim::MemAddr kMasks = kBase + 0x440;     // 12 x u32
    static constexpr sim::MemAddr kOut = kBase + 0x1000;
    static constexpr std::uint32_t kNumMasks = 12;

    [[nodiscard]] static std::uint32_t mask_value(std::uint32_t i) {
        return 0xffffffffu >> i;
    }
    [[nodiscard]] isa::Program build() const;

    Params p_;
    std::vector<std::uint32_t> ref_;  ///< expected OUT per block
    isa::Program prog_;
    isa::Program prog_pf_;
};

}  // namespace dta::workloads
