/// \file harness.hpp
/// \brief One-call runner for a workload on a configured machine.
///
/// Every workload class exposes the same duck-typed surface:
///   * `const isa::Program& program() const`          — original DTA code
///   * `const isa::Program& prefetch_program() const` — after the PF pass
///   * `void init_memory(mem::MainMemory&) const`     — place input data
///   * `std::vector<std::uint64_t> entry_args() const`
///   * `bool check(const mem::MainMemory&, std::string* why) const`
#pragma once

#include <chrono>
#include <string>
#include <utility>

#include "core/machine.hpp"

namespace dta::workloads {

/// A finished run plus its correctness verdict.
struct RunOutcome {
    core::RunResult result;
    bool correct = false;
    std::string detail;  ///< mismatch description when !correct
    double host_seconds = 0.0;  ///< wall clock spent inside Machine::run()
    sim::Cycle cycles_fast_forwarded = 0;
};

/// Builds a machine for \p cfg, loads the workload's memory image, runs the
/// requested program variant, and checks the outputs against the host
/// reference.
template <typename Workload>
[[nodiscard]] RunOutcome run_workload(const Workload& w,
                                      const core::MachineConfig& cfg,
                                      bool prefetch) {
    core::Machine machine(cfg, prefetch ? w.prefetch_program() : w.program());
    w.init_memory(machine.memory());
    const auto args = w.entry_args();
    machine.launch(args);
    RunOutcome out;
    const auto t0 = std::chrono::steady_clock::now();
    out.result = machine.run();
    const auto t1 = std::chrono::steady_clock::now();
    out.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    out.cycles_fast_forwarded = machine.cycles_fast_forwarded();
    out.correct = w.check(machine.memory(), &out.detail);
    return out;
}

}  // namespace dta::workloads
