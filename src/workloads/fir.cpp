#include "workloads/fir.hpp"

#include <span>

#include "isa/builder.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"
#include "xform/prefetch_pass.hpp"

namespace dta::workloads {

using isa::CodeBlock;
using isa::CodeBuilder;
using isa::r;

Fir::Fir(const Params& p) : p_(p) {
    DTA_SIM_REQUIRE(p.samples > 0 && p.taps > 0, "fir: empty problem");
    DTA_SIM_REQUIRE(p.threads > 0 && p.samples % p.threads == 0,
                    "fir: thread count must divide the sample count");
    const std::uint32_t band = p.samples / p.threads;
    DTA_SIM_REQUIRE((band + p.taps + 2) * 4 + p.taps * 4 <=
                        lse_config().staging_bytes_per_frame,
                    "fir: band + taps exceeds the staging area");

    sim::Xoshiro256 rng(p.seed);
    x_.resize(p.samples + p.taps);
    for (auto& v : x_) v = static_cast<std::uint32_t>(rng.next_below(256));
    c_.resize(p.taps);
    for (auto& v : c_) v = static_cast<std::uint32_t>(rng.next_below(16));
    ref_.assign(p.samples, 0);
    for (std::uint32_t i = 0; i < p.samples; ++i) {
        std::uint32_t acc = 0;
        for (std::uint32_t k = 0; k < p.taps; ++k) {
            acc += x_[i + k] * c_[k];
        }
        ref_[i] = acc;
    }
    prog_ = build();
    xform::PrefetchOptions opt;
    opt.staging_bytes = lse_config().staging_bytes_per_frame;
    prog_pf_ = xform::add_prefetch(prog_, opt);
}

isa::Program Fir::build() const {
    const std::uint32_t band = p_.samples / p_.threads;

    isa::Program prog;
    prog.name = "fir(" + std::to_string(p_.samples) + "," +
                std::to_string(p_.taps) + ")";

    CodeBuilder w("fir_worker", /*num_inputs=*/2);
    // region 0: this worker's input window (band + taps samples).
    isa::RegionAnnotation win;
    {
        CodeBuilder ab("fir_x_addr", 0);
        ab.block(CodeBlock::kPf)
            .load(r(28), 0)
            .shli(r(28), r(28), 2)
            .addi(r(30), r(28), static_cast<std::int64_t>(x_base()));
        win.addr_code = std::move(ab).build_unchecked().code;
        win.addr_reg = 30;
        win.bytes = (band + p_.taps) * 4;
    }
    const std::int16_t reg_x = w.annotate(win);
    // region 1: the coefficient vector.
    isa::RegionAnnotation coeff;
    {
        CodeBuilder ab("fir_c_addr", 0);
        ab.block(CodeBlock::kPf)
            .movi(r(30), static_cast<std::int64_t>(c_base()));
        coeff.addr_code = std::move(ab).build_unchecked().code;
        coeff.addr_reg = 30;
        coeff.bytes = p_.taps * 4;
    }
    const std::int16_t reg_c = w.annotate(coeff);

    w.block(CodeBlock::kPl)
        .load(r(1), 0)   // band_begin
        .load(r(2), 1);  // band_end
    w.block(CodeBlock::kEx)
        .movi(r(3), static_cast<std::int64_t>(x_base()))
        .movi(r(4), static_cast<std::int64_t>(c_base()))
        .movi(r(5), static_cast<std::int64_t>(y_base()))
        .movi(r(6), p_.taps)
        .mov(r(7), r(1));  // i
    auto li = w.new_label();
    auto li_done = w.new_label();
    auto lk = w.new_label();
    w.bind(li)
        .bge(r(7), r(2), li_done)
        .movi(r(9), 0)             // acc
        .movi(r(10), 0)            // k
        .shli(r(11), r(7), 2)
        .add(r(11), r(11), r(3));  // &x[i]
    w.bind(lk)
        .read(r(13), r(11), 0, reg_x)          // x[i+k]
        .shli(r(12), r(10), 2)
        .add(r(12), r(12), r(4))
        .read(r(14), r(12), 0, reg_c)          // c[k]
        .mul(r(15), r(13), r(14))
        .add(r(9), r(9), r(15))
        .addi(r(11), r(11), 4)
        .addi(r(10), r(10), 1)
        .blt(r(10), r(6), lk)
        .shli(r(16), r(7), 2)
        .add(r(16), r(16), r(5))
        .write(r(9), r(16), 0)                 // y[i]
        .addi(r(7), r(7), 1)
        .jmp(li);
    w.bind(li_done);
    w.block(CodeBlock::kPs).ffree().stop();
    const sim::ThreadCodeId worker = prog.add(std::move(w).build());

    CodeBuilder m("fir_main", /*num_inputs=*/0);
    m.block(CodeBlock::kPs)
        .movi(r(1), 0)
        .movi(r(2), band)
        .movi(r(3), p_.threads)
        .movi(r(4), 0);
    auto loop = m.new_label();
    auto done = m.new_label();
    m.bind(loop)
        .bge(r(4), r(3), done)
        .falloc(r(5), worker)
        .store(r(1), r(5), 0)
        .add(r(6), r(1), r(2))
        .store(r(6), r(5), 1)
        .mov(r(1), r(6))
        .addi(r(4), r(4), 1)
        .jmp(loop);
    m.bind(done).ffree().stop();
    prog.entry = prog.add(std::move(m).build());
    return prog;
}

void Fir::init_memory(mem::MainMemory& mem) const {
    const auto bytes = [](const std::vector<std::uint32_t>& v) {
        return std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(v.data()), v.size() * 4);
    };
    mem.write_bytes(x_base(), bytes(x_));
    mem.write_bytes(c_base(), bytes(c_));
}

bool Fir::check(const mem::MainMemory& mem, std::string* why) const {
    for (std::uint32_t i = 0; i < p_.samples; ++i) {
        const std::uint32_t got = mem.read_u32(y_base() + i * 4ull);
        if (got != ref_[i]) {
            if (why) {
                *why = "y[" + std::to_string(i) + "] = " + std::to_string(got) +
                       ", expected " + std::to_string(ref_[i]);
            }
            return false;
        }
    }
    return true;
}

}  // namespace dta::workloads
