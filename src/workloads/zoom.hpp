/// \file zoom.hpp
/// \brief The paper's zoom benchmark (Section 4.2): "a program that zooms
///        into one part of the input picture.  It is parallelized by sending
///        different parts of the picture to different PEs. [...] Parts of
///        the input image are prefetched in the threads that are calculating
///        the zoom."
///
/// The n x n input picture's top-left (n/2 x n/2)-ish region is magnified by
/// a power-of-two factor with two-tap horizontal interpolation: every output
/// pixel READs two neighbouring input pixels (for n = 32, factor 8 and a
/// 16 x 16 source region this gives exactly the 32768 READs and 16384 WRITEs
/// of Table 5).  Each worker produces a band of output rows; the prefetch
/// variant DMAs the input rows that band samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "sim/types.hpp"

namespace dta::workloads {

/// Image-zoom workload generator.
class Zoom {
public:
    struct Params {
        std::uint32_t n = 32;       ///< input picture is n x n (paper: 32)
        std::uint32_t factor = 8;   ///< zoom factor (power of two)
        std::uint32_t threads = 64; ///< worker count; must divide output rows
        std::uint32_t unroll = 4;   ///< x-loop unrolling (must divide factor)
        std::uint64_t seed = 2;
    };

    explicit Zoom(const Params& p);

    [[nodiscard]] const isa::Program& program() const { return prog_; }
    [[nodiscard]] const isa::Program& prefetch_program() const {
        return prog_pf_;
    }
    /// This repository's extension of the paper's mechanism: outputs are
    /// staged in the LS via REGSET + LSSTORE and written back with a single
    /// DMAPUT per worker (a DMA *post-store*), instead of one posted WRITE
    /// per pixel.  Fully non-blocking on both ends: the thread suspends in
    /// Wait-for-DMA for the prefetch AND for the write-back drain.
    [[nodiscard]] const isa::Program& writeback_program() const;
    /// Whether the write-back variant exists for these parameters (each
    /// worker's output band must fit its LS staging window).
    [[nodiscard]] bool has_writeback() const { return !prog_wb_.codes.empty(); }
    void init_memory(mem::MainMemory& mem) const;
    [[nodiscard]] std::vector<std::uint64_t> entry_args() const { return {}; }
    [[nodiscard]] bool check(const mem::MainMemory& mem,
                             std::string* why) const;

    /// LSE layout: medium frame count, 4 KB staging (a worker stages a
    /// couple of input rows).
    [[nodiscard]] static sched::LseConfig lse_config() {
        return sched::LseConfig::with(/*frames=*/32, /*staging=*/4 * 1024);
    }
    /// Worker count for \p spes SPEs (see MatMul::threads_for).
    [[nodiscard]] static std::uint32_t threads_for(std::uint16_t spes) {
        const std::uint32_t t = 16u * spes;
        return t > 64 ? 64 : t;
    }
    /// The paper's CellDTA machine configuration tuned for this workload.
    [[nodiscard]] static core::MachineConfig machine_config(
        std::uint16_t spes) {
        auto cfg = core::MachineConfig::cell_dta(spes);
        cfg.lse = lse_config();
        return cfg;
    }

    [[nodiscard]] const Params& params() const { return p_; }
    /// Output picture edge length (factor * n/2).
    [[nodiscard]] std::uint32_t out_n() const {
        return p_.factor * (p_.n / 2);
    }
    [[nodiscard]] sim::MemAddr in_base() const { return kDataBase; }
    [[nodiscard]] sim::MemAddr out_base() const {
        return kDataBase + static_cast<sim::MemAddr>(p_.n) * p_.n * 4;
    }
    /// Host view of the expected output (for the image_zoom example).
    [[nodiscard]] const std::vector<std::uint32_t>& reference() const {
        return ref_;
    }
    [[nodiscard]] const std::vector<std::uint32_t>& input() const {
        return in_;
    }

private:
    static constexpr sim::MemAddr kDataBase = 0x200000;

    [[nodiscard]] isa::Program build() const;
    [[nodiscard]] isa::Program build_writeback() const;

    Params p_;
    std::vector<std::uint32_t> in_;
    std::vector<std::uint32_t> ref_;
    isa::Program prog_;
    isa::Program prog_pf_;
    isa::Program prog_wb_;
};

}  // namespace dta::workloads
