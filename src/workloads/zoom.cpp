#include "workloads/zoom.hpp"

#include <bit>
#include <span>

#include "isa/builder.hpp"
#include "sim/check.hpp"
#include "sim/rng.hpp"
#include "xform/prefetch_pass.hpp"

namespace dta::workloads {

using isa::CodeBlock;
using isa::CodeBuilder;
using isa::r;

Zoom::Zoom(const Params& p) : p_(p) {
    DTA_SIM_REQUIRE(p.n >= 4 && p.n % 2 == 0, "zoom: n must be even and >= 4");
    DTA_SIM_REQUIRE(p.factor >= 2 && std::has_single_bit(p.factor),
                    "zoom: factor must be a power of two >= 2");
    const std::uint32_t out = out_n();
    DTA_SIM_REQUIRE(p.threads > 0 && out % p.threads == 0,
                    "zoom: thread count must divide the output rows");
    DTA_SIM_REQUIRE(p.unroll >= 1 && p.factor % p.unroll == 0,
                    "zoom: unroll must divide the zoom factor");
    DTA_SIM_REQUIRE(p.unroll <= 4, "zoom: unroll is at most 4");

    sim::Xoshiro256 rng(p.seed);
    in_.resize(p.n * p.n);
    for (auto& v : in_) v = static_cast<std::uint32_t>(rng.next_below(256));
    ref_.assign(static_cast<std::size_t>(out) * out, 0);
    for (std::uint32_t y = 0; y < out; ++y) {
        const std::uint32_t sy = y / p.factor;
        for (std::uint32_t x = 0; x < out; ++x) {
            const std::uint32_t sx = x / p.factor;
            const std::uint32_t p1 = in_[sy * p.n + sx];
            const std::uint32_t p2 = in_[sy * p.n + sx + 1];
            ref_[static_cast<std::size_t>(y) * out + x] = (p1 + p2) >> 1;
        }
    }
    prog_ = build();
    xform::PrefetchOptions opt;
    opt.staging_bytes = lse_config().staging_bytes_per_frame;
    prog_pf_ = xform::add_prefetch(prog_, opt);
    // The write-back variant stages a whole output band per worker; it only
    // exists when that band fits the staging area (more threads = smaller
    // bands).  writeback_program() reports the constraint if violated.
    const std::uint32_t band_bytes = (out / p.threads) * out * 4;
    const std::uint32_t in_bytes =
        ((out / p.threads) / p.factor + 2) * p.n * 4;
    const std::uint32_t out_off = (in_bytes + 127) / 128 * 128;
    if (out_off + band_bytes <= lse_config().staging_bytes_per_frame) {
        prog_wb_ = build_writeback();
    }
}

isa::Program Zoom::build() const {
    const std::uint32_t n = p_.n;
    const std::uint32_t out = out_n();
    const std::uint32_t rows_per_thread = out / p_.threads;
    const auto log2f =
        static_cast<std::int64_t>(std::countr_zero(p_.factor));
    const std::int64_t in_row_bytes = static_cast<std::int64_t>(n) * 4;

    isa::Program prog;
    prog.name = "zoom(" + std::to_string(n) + ")";

    // ---- worker: output rows [row_begin, row_end) ---------------------------
    CodeBuilder w("zoom_worker", /*num_inputs=*/2);

    // region 0 — the band of input rows this worker samples.
    isa::RegionAnnotation rows;
    {
        CodeBuilder ab("zoom_addr", 0);
        ab.block(CodeBlock::kPf)
            .load(r(28), 0)                 // row_begin
            .shri(r(28), r(28), log2f)      // first source row
            .muli(r(28), r(28), in_row_bytes)
            .addi(r(30), r(28), static_cast<std::int64_t>(in_base()));
        rows.addr_code = std::move(ab).build_unchecked().code;
        rows.addr_reg = 30;
        // Static worst case: the band's source rows plus one of slack for
        // unaligned band boundaries.
        rows.bytes =
            (rows_per_thread / p_.factor + 2) * static_cast<std::uint32_t>(n) *
            4;
    }
    const std::int16_t reg0 = w.annotate(rows);

    w.block(CodeBlock::kPl)
        .load(r(1), 0)   // row_begin
        .load(r(2), 1);  // row_end
    w.block(CodeBlock::kEx)
        .movi(r(3), out)
        .movi(r(4), static_cast<std::int64_t>(in_base()))
        .movi(r(5), static_cast<std::int64_t>(out_base()))
        .movi(r(6), in_row_bytes)
        .mov(r(7), r(1));  // y
    auto ly = w.new_label();
    auto ly_done = w.new_label();
    auto lx = w.new_label();
    w.bind(ly)
        .bge(r(7), r(2), ly_done)
        .shri(r(20), r(7), log2f)     // sy
        .mul(r(21), r(20), r(6))
        .add(r(21), r(21), r(4))      // &in[sy][0]
        .mul(r(22), r(7), r(3))
        .shli(r(22), r(22), 2)
        .add(r(22), r(22), r(5))      // &out[y][0]
        .movi(r(8), 0);               // x
    // Unrolled pixel group (the paper unrolls its benchmark loops).  The
    // group never crosses a source-pixel boundary because unroll divides
    // the zoom factor, so sx is computed once; the two-tap READs are still
    // issued per output pixel, as in the naive source.
    const std::uint32_t u_count = p_.unroll;
    static constexpr std::uint8_t kRegsA[4] = {13, 25, 27, 29};
    static constexpr std::uint8_t kRegsB[4] = {14, 26, 28, 30};
    static constexpr std::uint8_t kRegsS[4] = {15, 9, 10, 11};
    w.bind(lx)
        .shri(r(23), r(8), log2f)     // sx (shared by the whole group)
        .shli(r(23), r(23), 2)
        .add(r(24), r(21), r(23));    // &in[sy][sx]
    for (std::uint32_t u = 0; u < u_count; ++u) {
        w.read(r(kRegsA[u]), r(24), 0, reg0)
            .read(r(kRegsB[u]), r(24), 4, reg0);
    }
    for (std::uint32_t u = 0; u < u_count; ++u) {
        w.add(r(kRegsS[u]), r(kRegsA[u]), r(kRegsB[u]))
            .shri(r(kRegsS[u]), r(kRegsS[u]), 1)
            .write(r(kRegsS[u]), r(22), 4 * static_cast<std::int64_t>(u));
    }
    w.addi(r(22), r(22), 4 * static_cast<std::int64_t>(u_count))
        .addi(r(8), r(8), u_count)
        .blt(r(8), r(3), lx)
        .addi(r(7), r(7), 1)
        .jmp(ly);
    w.bind(ly_done);
    w.block(CodeBlock::kPs).ffree().stop();
    const sim::ThreadCodeId worker = prog.add(std::move(w).build());

    // ---- main thread: forks the workers -------------------------------------
    CodeBuilder m("zoom_main", /*num_inputs=*/0);
    m.block(CodeBlock::kPs)
        .movi(r(1), 0)
        .movi(r(2), rows_per_thread)
        .movi(r(3), p_.threads)
        .movi(r(4), 0);
    auto loop = m.new_label();
    auto done = m.new_label();
    m.bind(loop)
        .bge(r(4), r(3), done)
        .falloc(r(5), worker)
        .store(r(1), r(5), 0)
        .add(r(6), r(1), r(2))
        .store(r(6), r(5), 1)
        .mov(r(1), r(6))
        .addi(r(4), r(4), 1)
        .jmp(loop);
    m.bind(done).ffree().stop();
    prog.entry = prog.add(std::move(m).build());
    return prog;
}

const isa::Program& Zoom::writeback_program() const {
    DTA_SIM_REQUIRE(has_writeback(),
                    "zoom write-back variant unavailable: the per-worker "
                    "output band exceeds the LS staging area (raise the "
                    "thread count)");
    return prog_wb_;
}

isa::Program Zoom::build_writeback() const {
    const std::uint32_t n = p_.n;
    const std::uint32_t out = out_n();
    const std::uint32_t rows_per_thread = out / p_.threads;
    const auto log2f = static_cast<std::int64_t>(std::countr_zero(p_.factor));
    const std::int64_t in_row_bytes = static_cast<std::int64_t>(n) * 4;
    const std::uint32_t in_bytes =
        (rows_per_thread / p_.factor + 2) * static_cast<std::uint32_t>(n) * 4;
    const std::uint32_t out_bytes = rows_per_thread * out * 4;
    // Staging layout: [0, in_bytes) input copy, then the output window.
    const std::uint32_t out_off = (in_bytes + 127) / 128 * 128;
    DTA_SIM_REQUIRE(out_off + out_bytes <=
                        lse_config().staging_bytes_per_frame,
                    "zoom writeback staging does not fit; use more threads");

    isa::Program prog;
    prog.name = "zoom(" + std::to_string(n) + ")+wb";

    CodeBuilder w("zoom_worker+wb", /*num_inputs=*/2);
    w.block(CodeBlock::kPf)
        // region 0: the sampled input rows (as in the prefetch variant).
        .load(r(28), 0)
        .shri(r(28), r(28), log2f)
        .muli(r(28), r(28), in_row_bytes)
        .addi(r(30), r(28), static_cast<std::int64_t>(in_base()));
    isa::DmaArgs in_args;
    in_args.region = 0;
    in_args.ls_offset = 0;
    in_args.bytes = in_bytes;
    w.dmaget(r(30), in_args);
    // region 1: the output band, staged in the LS (no transfer yet).  The
    // base lands in r27, which survives the Wait-for-DMA suspension and is
    // reused by the PS DMAPUT.
    w.load(r(28), 0)
        .muli(r(28), r(28), static_cast<std::int64_t>(out) * 4)
        .addi(r(27), r(28), static_cast<std::int64_t>(out_base()));
    isa::DmaArgs out_args;
    out_args.region = 1;
    out_args.ls_offset = out_off;
    out_args.bytes = out_bytes;
    w.regset(r(27), out_args).dmawait();

    w.block(CodeBlock::kPl).load(r(1), 0).load(r(2), 1);
    w.block(CodeBlock::kEx)
        .movi(r(3), out)
        .movi(r(4), static_cast<std::int64_t>(in_base()))
        .movi(r(5), static_cast<std::int64_t>(out_base()))
        .movi(r(6), in_row_bytes)
        .mov(r(7), r(1));
    auto ly = w.new_label();
    auto ly_done = w.new_label();
    auto lx = w.new_label();
    w.bind(ly)
        .bge(r(7), r(2), ly_done)
        .shri(r(20), r(7), log2f)
        .mul(r(21), r(20), r(6))
        .add(r(21), r(21), r(4))
        .mul(r(22), r(7), r(3))
        .shli(r(22), r(22), 2)
        .add(r(22), r(22), r(5))
        .movi(r(8), 0);
    const std::uint32_t u_count = p_.unroll;
    static constexpr std::uint8_t kRegsA[4] = {13, 25, 16, 17};
    static constexpr std::uint8_t kRegsB[4] = {14, 26, 18, 19};
    static constexpr std::uint8_t kRegsS[4] = {15, 9, 10, 11};
    w.bind(lx)
        .shri(r(23), r(8), log2f)
        .shli(r(23), r(23), 2)
        .add(r(24), r(21), r(23));
    for (std::uint32_t u = 0; u < u_count; ++u) {
        w.lsload(r(kRegsA[u]), r(24), 0, 0)
            .lsload(r(kRegsB[u]), r(24), 4, 0);
    }
    for (std::uint32_t u = 0; u < u_count; ++u) {
        w.add(r(kRegsS[u]), r(kRegsA[u]), r(kRegsB[u]))
            .shri(r(kRegsS[u]), r(kRegsS[u]), 1)
            // Stage the pixel instead of posting a main-memory WRITE.
            .lsstore(r(kRegsS[u]), r(22),
                     4 * static_cast<std::int64_t>(u), 1);
    }
    w.addi(r(22), r(22), 4 * static_cast<std::int64_t>(u_count))
        .addi(r(8), r(8), u_count)
        .blt(r(8), r(3), lx)
        .addi(r(7), r(7), 1)
        .jmp(ly);
    w.bind(ly_done);
    w.block(CodeBlock::kPs);
    // One DMA post-store ships the whole band, then the thread drains it in
    // Wait-for-DMA before releasing its frame.
    w.dmaput(r(27), out_args).dmawait().ffree().stop();
    const sim::ThreadCodeId worker = prog.add(std::move(w).build());

    CodeBuilder m("zoom_main", /*num_inputs=*/0);
    m.block(CodeBlock::kPs)
        .movi(r(1), 0)
        .movi(r(2), rows_per_thread)
        .movi(r(3), p_.threads)
        .movi(r(4), 0);
    auto loop = m.new_label();
    auto done = m.new_label();
    m.bind(loop)
        .bge(r(4), r(3), done)
        .falloc(r(5), worker)
        .store(r(1), r(5), 0)
        .add(r(6), r(1), r(2))
        .store(r(6), r(5), 1)
        .mov(r(1), r(6))
        .addi(r(4), r(4), 1)
        .jmp(loop);
    m.bind(done).ffree().stop();
    prog.entry = prog.add(std::move(m).build());
    return prog;
}

void Zoom::init_memory(mem::MainMemory& mem) const {
    mem.write_bytes(in_base(),
                    std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(in_.data()),
                        in_.size() * 4));
}

bool Zoom::check(const mem::MainMemory& mem, std::string* why) const {
    const std::uint32_t out = out_n();
    for (std::uint32_t i = 0; i < out * out; ++i) {
        const std::uint32_t got = mem.read_u32(out_base() + i * 4ull);
        if (got != ref_[i]) {
            if (why) {
                *why = "out[" + std::to_string(i / out) + "," +
                       std::to_string(i % out) + "] = " + std::to_string(got) +
                       ", expected " + std::to_string(ref_[i]);
            }
            return false;
        }
    }
    return true;
}

}  // namespace dta::workloads
