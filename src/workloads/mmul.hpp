/// \file mmul.hpp
/// \brief The paper's matrix-multiply benchmark (Section 4.2): "threads that
///        run in parallel are calculating parts of the output matrix [...]
///        Prefetching of the parts of the input matrices is performed in the
///        threads that are calculating the output matrix."
///
/// Each worker thread computes a contiguous band of rows of C = A x B.  In
/// the original version the inner loop READs A and B elements from main
/// memory (two READs per multiply-accumulate — with n = 32 exactly the
/// 65536 READs of Table 5); the prefetch variant DMAs the worker's band of
/// A and the whole of B into its staging area.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "sim/types.hpp"

namespace dta::workloads {

/// Matrix-multiply workload generator.
class MatMul {
public:
    struct Params {
        std::uint32_t n = 32;        ///< matrices are n x n (paper: 32)
        std::uint32_t threads = 32;  ///< worker count; must divide n
        std::uint32_t unroll = 2;    ///< inner-loop unrolling (1, 2 or 4) —
                                     ///< the paper unrolls its benchmark loops;
                                     ///< 2 calibrates the prefetch speedup to
                                     ///< the paper's 11.18x at 8 SPEs

        std::uint64_t seed = 1;      ///< input data seed
    };

    explicit MatMul(const Params& p);

    [[nodiscard]] const isa::Program& program() const { return prog_; }
    [[nodiscard]] const isa::Program& prefetch_program() const {
        return prog_pf_;
    }
    void init_memory(mem::MainMemory& mem) const;
    [[nodiscard]] std::vector<std::uint64_t> entry_args() const { return {}; }
    [[nodiscard]] bool check(const mem::MainMemory& mem,
                             std::string* why) const;

    /// LSE layout this workload needs: few frames, 8 KB staging each
    /// (a worker stages its band of A plus the whole of B).
    [[nodiscard]] static sched::LseConfig lse_config() {
        return sched::LseConfig::with(/*frames=*/16, /*staging=*/8 * 1024);
    }
    /// Worker count appropriate for a machine with \p spes SPEs (the paper
    /// sizes its power-of-two thread counts per configuration); bounded so
    /// the live-thread peak fits the frame supply even on one SPE.
    [[nodiscard]] static std::uint32_t threads_for(std::uint16_t spes) {
        const std::uint32_t t = 8u * spes;
        return t > 32 ? 32 : t;
    }
    /// The paper's CellDTA machine configuration tuned for this workload.
    [[nodiscard]] static core::MachineConfig machine_config(
        std::uint16_t spes) {
        auto cfg = core::MachineConfig::cell_dta(spes);
        cfg.lse = lse_config();
        return cfg;
    }

    [[nodiscard]] const Params& params() const { return p_; }
    [[nodiscard]] sim::MemAddr a_base() const { return kDataBase; }
    [[nodiscard]] sim::MemAddr b_base() const {
        return kDataBase + matrix_bytes();
    }
    [[nodiscard]] sim::MemAddr c_base() const {
        return kDataBase + 2 * static_cast<sim::MemAddr>(matrix_bytes());
    }

private:
    static constexpr sim::MemAddr kDataBase = 0x10000;

    [[nodiscard]] std::uint32_t matrix_bytes() const {
        return p_.n * p_.n * 4;
    }
    [[nodiscard]] isa::Program build() const;

    Params p_;
    std::vector<std::uint32_t> a_;
    std::vector<std::uint32_t> b_;
    std::vector<std::uint32_t> ref_;
    isa::Program prog_;
    isa::Program prog_pf_;
};

}  // namespace dta::workloads
