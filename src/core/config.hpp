/// \file config.hpp
/// \brief Machine configuration: Tables 2, 3 and 4 of the paper in one place.
#pragma once

#include <cstdint>

#include "dma/mfc.hpp"
#include "mem/local_store.hpp"
#include "mem/main_memory.hpp"
#include "noc/interconnect.hpp"
#include "noc/link.hpp"
#include "sched/lse.hpp"
#include "sim/audit.hpp"
#include "sim/log.hpp"
#include "sim/telemetry.hpp"
#include "sim/types.hpp"

namespace dta::core {

/// SPU pipeline timing (the simple in-order, dual-issue, no-branch-predictor
/// core DTA assumes; latencies follow the Cell SPU's fixed-point pipes).
struct SpuConfig {
    std::uint32_t alu_latency = 1;
    std::uint32_t mul_latency = 7;
    std::uint32_t div_latency = 20;
    std::uint32_t branch_penalty = 10;  ///< taken-branch flush (no predictor)
    std::uint32_t thread_start_overhead = 4;  ///< bind-to-first-issue cycles
    std::uint32_t dma_program_cycles = 6;  ///< SPU cycles per MFC command setup
    std::uint32_t outbox_depth = 8;        ///< posted READ/WRITE buffer slots

    /// Concurrent main-memory READs one SPU may have in flight.  On the Cell
    /// an SPU has no load path to main memory at all; CellDTA's READ is a
    /// synchronous MFC channel operation, so the paper's no-prefetch runs
    /// serialise on it ("in case of no prefetching the CellDTA is not using
    /// all available bandwidth, since each READ instruction fetches only 4
    /// bytes").  2 models the pair of atomic channels.
    std::uint32_t max_outstanding_reads = 2;

    /// The paper's proposed mechanism: DMAWAIT releases the pipeline
    /// (Wait-for-DMA is a scheduler state).  When false, the thread spins on
    /// the pipeline until its tags complete — the degenerate blocking design
    /// the paper argues against; kept for the ablation benchmarks.
    bool non_blocking_dma = true;

    /// Classify cycles in which the SPU has no ready thread *because* every
    /// local thread is parked in Wait-for-DMA as prefetching overhead rather
    /// than idleness (this matches the paper's accounting, where prefetching
    /// cost that cannot be overlapped shows up as "Prefetching").
    bool count_dma_idle_as_prefetch = true;
};

/// Everything needed to build a Machine.
struct MachineConfig {
    std::uint16_t nodes = 1;
    std::uint16_t spes_per_node = 8;

    mem::MainMemoryConfig memory;      ///< Table 2 (512 MB, 150 cycles, 1 port)
    mem::LocalStoreConfig local_store; ///< Table 2 (6 cycles, 3 ports)
    noc::InterconnectConfig noc;       ///< Table 4 (4 buses, 8 B/cycle)
    noc::LinkConfig link;              ///< inter-node link (multi-node only)
    dma::MfcConfig mfc;                ///< Table 4 (16 commands, 30 cycles)
    sched::LseConfig lse;              ///< frames + staging layout
    SpuConfig spu;

    std::uint64_t max_cycles = 2'000'000'000ull;  ///< runaway guard
    /// If no instruction issues, packet delivers, or memory access completes
    /// for this many cycles while the machine is not quiescent, the run is
    /// declared deadlocked (every architectural latency is orders of
    /// magnitude smaller).  Blocking FALLOCs *can* deadlock a DTA machine
    /// when a program's live-thread peak exceeds the frame supply — the
    /// virtual-frame-pointer fix is cited but explicitly not implemented in
    /// the paper's CellDTA, and neither is it here.
    std::uint64_t no_progress_limit = 1'000'000;
    sim::LogLevel log_level = sim::LogLevel::kOff;
    /// Record one ThreadSpan per SPU occupancy (for Chrome-trace timelines
    /// and scheduling analysis).  Off by default: long runs produce many
    /// spans.
    bool capture_spans = false;
    /// Collect run-wide metrics (latency histograms, sampled gauges, DMA
    /// spans) into RunResult::metrics.  Off by default; when off the
    /// instrumented hot paths cost a single null check each.
    bool collect_metrics = false;
    /// Cycles between gauge samples (queue depths, in-flight counts) when
    /// collect_metrics is on.  Must be non-zero.
    std::uint32_t metrics_sample_interval = 256;
    /// Record the thread-lifecycle event log (sim/events.hpp) into
    /// RunResult::events for offline critical-path analysis.  Off by
    /// default; when off each instrumented site costs one null check.
    bool collect_events = false;
    /// Machine-wide invariant audits (sim/audit.hpp): cross-component
    /// checks over SC conservation, the frame-slot lifecycle FSM, MFC
    /// line/tag accounting, NoC packet conservation, and address-range
    /// validity, swept at audit.effective_interval() and once more after
    /// quiescence.  Off by default; a violation raises sim::SimError naming
    /// the component, invariant, cycle, and thread uid.
    sim::AuditConfig audit;
    /// Live telemetry (sim/telemetry.hpp): periodic machine-wide occupancy
    /// frames into RunResult::telemetry (+ an optional NDJSON stream for
    /// tools/dta_top, + the progress/stall watchdog).  Off by default; when
    /// off the run loop pays one null check per cycle.  An observer knob:
    /// excluded from the structural config echo / snapshot fingerprint, so
    /// a snapshot may be replayed with telemetry turned on.
    sim::TelemetryConfig telemetry;
    /// Host-time profiler (sim/prof.hpp): attribute host nanoseconds per
    /// (shard, component, phase) into RunResult::host_profile.  Off by
    /// default; when off every instrumentation site costs one null check.
    /// Profiling only reads the host clock — simulated results, fingerprints
    /// and the rest of RunResult are byte-identical either way.
    bool profile = false;
    /// Jump over cycles in which no component can change state (see
    /// sim::Component::next_activity).  Results are cycle-exact either way;
    /// this only trades host time.  The DTA_NO_FASTFORWARD environment
    /// variable force-disables it (escape hatch for A/B debugging).
    bool fast_forward = true;
    /// Drive the run loop from the event-driven timing wheel (sim/wheel.hpp):
    /// each component is visited only at its declared next_activity() cycle,
    /// with inbound traffic re-arming sleepers.  Results are byte-identical
    /// either way; off falls back to the dense per-cycle loop (the
    /// differential oracle for tests and fuzzing).  The DTA_NO_WHEEL
    /// environment variable force-disables it, mirroring DTA_NO_FASTFORWARD.
    bool use_wheel = true;
    /// Host threads for the sharded run loop: each node (DSE, PEs, MFCs,
    /// local stores, router) is a shard, and shards are distributed over
    /// this many threads synchronised by an epoch barrier whose lookahead
    /// is the inter-node link latency (see docs/ARCHITECTURE.md).  0 means
    /// auto (hardware_concurrency); the effective count is capped at the
    /// node count.  1 (the default) runs the single-threaded reference
    /// loop.  RunResult, breakdown buckets, and the JSON report are
    /// bit-identical for every value.
    std::uint32_t host_threads = 1;

    [[nodiscard]] std::uint32_t total_pes() const {
        return static_cast<std::uint32_t>(nodes) * spes_per_node;
    }

    /// The paper's headline configuration: 8 SPEs, one node, memory latency
    /// 150 (Section 4.1).
    [[nodiscard]] static MachineConfig cell_dta(std::uint16_t num_spes = 8) {
        MachineConfig cfg;
        cfg.nodes = 1;
        cfg.spes_per_node = num_spes;
        return cfg;
    }

    /// The Section 4.3 "perfect cache" variant: every latency in the memory
    /// system set to one cycle.
    [[nodiscard]] static MachineConfig perfect_cache(std::uint16_t num_spes = 8) {
        MachineConfig cfg = cell_dta(num_spes);
        cfg.memory.latency = 1;
        cfg.memory.bank_busy = 1;
        cfg.noc.hop_latency = 1;
        // The local store keeps its hardware latency (Table 2): the
        // experiment models main-memory accesses always *hitting a cache*,
        // not a faster LS.  The MFC command latency likewise is controller
        // decode time, not a memory latency, and stays at its Table-4 value.
        return cfg;
    }
};

}  // namespace dta::core
