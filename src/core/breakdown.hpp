/// \file breakdown.hpp
/// \brief Per-SPU cycle accounting (the Fig. 5 categories) and dynamic
///        instruction statistics (the Table 5 columns).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "isa/opcode.hpp"
#include "sim/types.hpp"

namespace dta::core {

/// Exactly one bucket is charged per SPU per cycle.  The first six are the
/// paper's Fig. 5 categories; kPipeStall (intra-thread hazards: long-latency
/// ALU results, taken-branch flushes) has no category of its own in the
/// paper and is folded into Working by \ref Breakdown::paper_view.
enum class CycleBucket : std::uint8_t {
    kWorking,    ///< issued at least one non-PF instruction
    kIdle,       ///< no ready thread anywhere
    kMemStall,   ///< waiting on a main-memory READ/WRITE
    kLsStall,    ///< waiting on a local-store access (frame LOAD, LSLOAD)
    kLseStall,   ///< waiting on the LSE (FALLOC, dispatch handshake)
    kPrefetch,   ///< PF-block work, DMA programming, unoverlapped DMA waits
    kPipeStall,  ///< ALU-latency / branch-flush hazard cycles
};
inline constexpr std::size_t kNumBuckets = 7;

[[nodiscard]] constexpr std::string_view bucket_name(CycleBucket b) {
    switch (b) {
        case CycleBucket::kWorking: return "Working";
        case CycleBucket::kIdle: return "Idle";
        case CycleBucket::kMemStall: return "MemoryStalls";
        case CycleBucket::kLsStall: return "LSStalls";
        case CycleBucket::kLseStall: return "LSEStalls";
        case CycleBucket::kPrefetch: return "Prefetching";
        case CycleBucket::kPipeStall: return "PipelineStalls";
    }
    return "?";
}

/// Cycle-bucket histogram of one SPU (or an aggregate of several).
struct Breakdown {
    std::array<std::uint64_t, kNumBuckets> cycles{};

    void charge(CycleBucket b) { ++cycles[static_cast<std::size_t>(b)]; }
    /// Bulk charge for a fast-forwarded span of \p n identical cycles.
    void charge(CycleBucket b, std::uint64_t n) {
        cycles[static_cast<std::size_t>(b)] += n;
    }
    [[nodiscard]] std::uint64_t operator[](CycleBucket b) const {
        return cycles[static_cast<std::size_t>(b)];
    }
    [[nodiscard]] std::uint64_t total() const;
    Breakdown& operator+=(const Breakdown& o);

    /// The paper's six-way view: pipeline-hazard cycles count as Working.
    [[nodiscard]] std::array<std::uint64_t, 6> paper_view() const;
    /// Fraction (0..1) of \p b in the paper view.
    [[nodiscard]] double fraction(CycleBucket b) const;
};

/// Dynamic instruction counters of one SPU (or aggregate).
struct InstrStats {
    std::array<std::uint64_t, 64> by_opcode{};  ///< indexed by Opcode value

    void count(isa::Opcode op) {
        ++by_opcode[static_cast<std::size_t>(op)];
    }
    [[nodiscard]] std::uint64_t of(isa::Opcode op) const {
        return by_opcode[static_cast<std::size_t>(op)];
    }
    [[nodiscard]] std::uint64_t total() const;
    InstrStats& operator+=(const InstrStats& o);

    // Table 5 columns.  The paper's LOAD column is frame reads, STORE is
    // frame writes; prefetched local-store accesses are reported separately
    // so the prefetch variant can be compared.
    [[nodiscard]] std::uint64_t loads() const {
        return of(isa::Opcode::kLoad) + of(isa::Opcode::kLoadX);
    }
    [[nodiscard]] std::uint64_t stores() const {
        return of(isa::Opcode::kStore) + of(isa::Opcode::kStoreX);
    }
    [[nodiscard]] std::uint64_t reads() const { return of(isa::Opcode::kRead); }
    [[nodiscard]] std::uint64_t writes() const { return of(isa::Opcode::kWrite); }
    [[nodiscard]] std::uint64_t ls_accesses() const {
        return of(isa::Opcode::kLsLoad) + of(isa::Opcode::kLsStore);
    }
    [[nodiscard]] std::uint64_t dma_commands() const {
        return of(isa::Opcode::kDmaGet);
    }
};

}  // namespace dta::core
