/// \file pe.hpp
/// \brief One processing element: the SPU pipeline plus its local store,
///        LSE and MFC, and the glue that speaks the NoC protocol.
///
/// The SPU is the simple core DTA assumes (Section 1: "in-order pipelines,
/// no branch predictors, no ROBs"), modelled after the Cell SPU: dual issue
/// with one compute pipe and one memory pipe per cycle, a register
/// scoreboard with per-register ready times, fixed ALU/MUL/DIV latencies, a
/// flush penalty on taken branches, and no caches — only the local store.
///
/// Every SPU cycle is charged to exactly one CycleBucket, reproducing the
/// Fig. 5 accounting; the mapping is documented on \ref CycleBucket.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>

#include "core/breakdown.hpp"
#include "core/trace.hpp"
#include "core/config.hpp"
#include "core/topology.hpp"
#include "dma/mfc.hpp"
#include "isa/program.hpp"
#include "mem/local_store.hpp"
#include "noc/packet.hpp"
#include "sched/lse.hpp"
#include "sim/component.hpp"
#include "sim/events.hpp"
#include "sim/log.hpp"
#include "sim/port.hpp"

namespace dta::core {

/// One SPE of the machine.
class Pe final : public sim::Component {
public:
    Pe(const MachineConfig& cfg, const sched::Topology& topo,
       sim::GlobalPeId self, const isa::Program& prog,
       const sim::Logger& log);

    Pe(const Pe&) = delete;
    Pe& operator=(const Pe&) = delete;

    // ---- packet I/O (machine glue) --------------------------------------
    /// The fabric endpoint of this PE binds here.
    [[nodiscard]] sim::Port<noc::Packet>& rx_port() { return inbox_; }
    /// Fabric delivered a packet addressed to this PE.
    void deliver(noc::Packet pkt);
    /// Pops the next packet this PE wants to inject, if any.
    [[nodiscard]] bool pop_outgoing(noc::Packet& out);
    [[nodiscard]] bool has_outgoing() const { return !outgoing_.empty(); }
    /// The outgoing queue as a port, so the event-driven scheduler can bind
    /// a waker to it (the node router sleeps until a packet shows up).
    [[nodiscard]] sim::Port<noc::Packet>& outgoing_port() { return outgoing_; }

    // ---- component interface ---------------------------------------------
    /// One full PE cycle: local store, then units, then the SPU pipeline.
    /// PEs share no intra-cycle state, so fusing the three seed phases
    /// per-PE is cycle-equivalent to the seed's three machine-wide loops.
    ///
    /// A stalled PE *parks*: after a quiet cycle it computes its own
    /// next_activity() once and, until that horizon expires or a packet
    /// arrives in its inbox, each tick reduces to the one-cycle skip()
    /// bookkeeping.  This is the per-component analogue of the machine's
    /// idle-cycle fast-forward and relies on the same horizon contract, so
    /// it is only enabled alongside it (see set_parking()).
    void tick(sim::Cycle now) override {
        if (now < park_until_ && inbox_.empty()) {
            skip(now, now + 1);
            return;
        }
        const std::uint64_t issued = cycles_with_issue_;
        tick_local_store(now);
        tick_units(now);
        tick_spu(now);
        if (parking_ && cycles_with_issue_ == issued && inbox_.empty() &&
            outgoing_.empty()) {
            park_until_ = next_activity(now);
        } else {
            park_until_ = 0;
        }
    }

    /// Enables the parked fast path (Machine turns it off together with
    /// fast-forward so DTA_NO_FASTFORWARD stays a pure per-cycle reference).
    void set_parking(bool on) {
        parking_ = on;
        park_until_ = 0;
    }

    /// Earliest cycle this PE (SPU + LS + LSE + MFC) could change state.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const override;

    /// Bulk-applies the per-cycle accounting the seed loop would have
    /// produced for the skipped cycles [from, to): exactly one Breakdown
    /// bucket per cycle (the stall/idle reason is invariant across a
    /// skipped span by construction of next_activity), per-code cycle
    /// attribution, and the stale-by-one event clocks of the MFC and LSE.
    void skip(sim::Cycle from, sim::Cycle to) override;

    // ---- per-cycle phases (in tick() order; split for unit tests) --------
    /// Services the local store's ports.
    void tick_local_store(sim::Cycle now);
    /// Decodes inbox packets, advances the MFC and LSE, applies completions.
    void tick_units(sim::Cycle now);
    /// Advances the SPU pipeline by one cycle (issue + accounting).
    void tick_spu(sim::Cycle now);

    // ---- component access (bootstrap, stats, tests) -----------------------
    [[nodiscard]] sched::Lse& lse() { return lse_; }
    [[nodiscard]] const sched::Lse& lse() const { return lse_; }
    [[nodiscard]] mem::LocalStore& local_store() { return ls_; }
    [[nodiscard]] const mem::LocalStore& local_store() const { return ls_; }
    [[nodiscard]] dma::Mfc& mfc() { return mfc_; }
    [[nodiscard]] const dma::Mfc& mfc() const { return mfc_; }

    [[nodiscard]] const Breakdown& breakdown() const { return breakdown_; }
    [[nodiscard]] const InstrStats& instr_stats() const { return instrs_; }
    /// Issue slots actually used (for the Fig. 9 pipeline-usage metric; the
    /// SPU has two slots per cycle).
    [[nodiscard]] std::uint64_t issue_slots_used() const { return slots_used_; }
    [[nodiscard]] std::uint64_t cycles_with_issue() const {
        return cycles_with_issue_;
    }
    [[nodiscard]] std::uint64_t threads_executed() const {
        return threads_executed_;
    }
    /// Per-thread-code counters (indexed by ThreadCodeId).
    [[nodiscard]] const std::vector<std::uint64_t>& code_cycles() const {
        return code_cycles_;
    }
    [[nodiscard]] const std::vector<std::uint64_t>& code_instrs() const {
        return code_instrs_;
    }
    [[nodiscard]] const std::vector<std::uint64_t>& code_starts() const {
        return code_starts_;
    }
    [[nodiscard]] const std::vector<std::uint64_t>& code_dispatches() const {
        return code_dispatches_;
    }
    /// Installs a sink that receives one ThreadSpan per SPU occupancy.
    void set_span_sink(std::vector<ThreadSpan>* sink) { spans_ = sink; }
    /// Resolves this PE's LSE and MFC instruments against \p reg and points
    /// the MFC's span recorder at \p dma_sink (machine-owned, may be null).
    void attach_metrics(sim::MetricsRegistry& reg,
                        std::vector<dma::DmaSpan>* dma_sink) {
        lse_.attach_metrics(reg);
        mfc_.attach_metrics(reg);
        mfc_.set_span_sink(dma_sink, self_);
    }
    /// Points this PE's (and its LSE's) lifecycle-event emission at \p log
    /// (nullptr keeps it off at one cached-pointer test per site).
    void attach_events(sim::EventLog* log) {
        events_ = log;
        lse_.attach_events(log);
    }

    [[nodiscard]] bool spu_bound() const { return bound_; }
    /// True when nothing on this PE is live or in flight.
    [[nodiscard]] bool quiescent() const override;

    // --- checkpoint/restore -------------------------------------------------
    /// Serializes the whole PE: local store, LSE, MFC, both packet ports,
    /// the SPU architectural state (registers, region table, scoreboard,
    /// pipeline control), and every statistic.  The bound thread-code
    /// pointer is re-derived from the program on load.
    void save_state(sim::StateSink& s) const override;
    void load_state(sim::StateSource& s) override;

private:
    /// Why the pipeline's front is blocked this cycle.
    enum class RegSrc : std::uint8_t { kNone, kAlu, kMul, kMem, kLs, kLse };
    /// Why busy_until_ is in the future.
    enum class BusyReason : std::uint8_t {
        kNone,
        kThreadStart,
        kBranch,
        kDmaProgram
    };

    struct IssueCheck {
        bool ok = false;
        CycleBucket stall = CycleBucket::kWorking;
    };

    // pipeline steps
    void handle_dispatch(sim::Cycle now);
    void bind_thread(const sched::Dispatch& d, sim::Cycle now);
    void unbind(sim::Cycle now);
    [[nodiscard]] IssueCheck can_issue(const isa::Instruction& ins,
                                       sim::Cycle now) const;
    /// Executes \p ins; returns false when the pipeline must not look at a
    /// second slot this cycle (branch taken, control op, thread unbound).
    bool execute(const isa::Instruction& ins, sim::Cycle now);
    [[nodiscard]] CycleBucket stall_bucket(RegSrc src) const;
    [[nodiscard]] std::optional<CycleBucket> operand_block(
        const isa::Instruction& ins, sim::Cycle now) const;
    /// Earliest cycle a finite operand ready-time could change the issue
    /// verdict of \p ins (kIdleForever when all blockers are external).
    [[nodiscard]] sim::Cycle operand_horizon(const isa::Instruction& ins,
                                             sim::Cycle now) const;

    // execution helpers
    void exec_compute(const isa::Instruction& ins, sim::Cycle now);
    void exec_branch(const isa::Instruction& ins);
    void exec_load(const isa::Instruction& ins);
    void exec_lsload(const isa::Instruction& ins);
    void exec_lsstore(const isa::Instruction& ins);
    void exec_store(const isa::Instruction& ins, sim::Cycle now);
    void exec_read(const isa::Instruction& ins);
    void exec_write(const isa::Instruction& ins);
    void exec_falloc(const isa::Instruction& ins, sim::Cycle now);
    /// Handles both DMAGET and DMAPUT (direction from the opcode).
    void exec_dmaget(const isa::Instruction& ins, sim::Cycle now);
    void exec_regset(const isa::Instruction& ins);
    /// Returns false when the thread suspended (pipeline released).
    bool exec_dmawait(sim::Cycle now);
    void exec_stop(sim::Cycle now);

    void set_reg(std::uint8_t rd, std::uint64_t value, sim::Cycle ready_at,
                 RegSrc src);
    [[nodiscard]] std::uint64_t reg(std::uint8_t r) const {
        return r == 0 ? 0 : regs_[r];
    }
    /// Resolves an LSLOAD/LSSTORE address: region translation or raw LS.
    [[nodiscard]] std::uint32_t resolve_ls_addr(const isa::Instruction& ins,
                                                std::uint32_t access_bytes) const;

    // packet plumbing
    void push_packet(noc::Packet pkt);
    void send_sched_msg(const sched::SchedMsg& msg);
    void pump_outgoing_producers();
    void apply_read_response(std::uint8_t rd, std::uint64_t value,
                             sim::Cycle now);

    /// Emits a lifecycle event stamped with this SPU's cumulative memory
    /// stall cycles (callers already null-tested events_).
    void emit_event(sim::EventKind kind, sim::Cycle now, std::uint64_t thread,
                    std::uint64_t other, std::uint64_t arg, std::uint8_t aux);

    // configuration / identity
    SpuConfig cfg_;
    sched::LseConfig lse_cfg_;
    sched::Topology topo_;
    FabricLayout layout_;
    sim::GlobalPeId self_;
    const isa::Program& prog_;
    const sim::Logger& log_;

    // components
    mem::LocalStore ls_;
    sched::Lse lse_;
    dma::Mfc mfc_;

    // packet ports (rx bound to the fabric, tx drained by the node router)
    sim::Port<noc::Packet> inbox_;
    sim::Port<noc::Packet> outgoing_;
    static constexpr std::size_t kOutgoingPullCap = 16;

    // SPU architectural state
    bool bound_ = false;
    std::uint32_t slot_ = 0;
    sim::ThreadCodeId code_id_ = 0;
    const isa::ThreadCode* code_ = nullptr;
    std::uint32_t ip_ = 0;
    bool freed_ = false;  ///< FFREE already executed by this thread
    std::array<std::uint64_t, isa::kNumRegs> regs_{};
    std::array<sched::RegionEntry, sched::kNumRegions> regions_{};

    // scoreboard
    std::array<sim::Cycle, isa::kNumRegs> reg_ready_{};
    std::array<RegSrc, isa::kNumRegs> reg_src_{};
    std::uint32_t outstanding_reads_ = 0;
    std::uint32_t outstanding_lsloads_ = 0;
    std::uint32_t outstanding_fallocs_ = 0;

    // pipeline control
    sim::Cycle busy_until_ = 0;
    BusyReason busy_reason_ = BusyReason::kNone;
    std::uint64_t ls_req_seq_ = 1;

    // parked fast path (see tick())
    bool parking_ = false;
    sim::Cycle park_until_ = 0;

    // statistics
    Breakdown breakdown_;
    InstrStats instrs_;
    std::uint64_t slots_used_ = 0;
    std::uint64_t cycles_with_issue_ = 0;
    std::uint64_t threads_executed_ = 0;
    std::vector<std::uint64_t> code_cycles_;
    std::vector<std::uint64_t> code_instrs_;
    std::vector<std::uint64_t> code_starts_;
    std::vector<std::uint64_t> code_dispatches_;
    std::vector<ThreadSpan>* spans_ = nullptr;  ///< optional, machine-owned
    ThreadSpan open_span_;                      ///< valid while bound_
    sim::EventLog* events_ = nullptr;           ///< optional, machine-owned
    std::uint64_t cur_uid_ = 0;     ///< bound thread's uid, cached at bind
                                    ///< (the slot may be re-granted after
                                    ///< FFREE while the thread still runs)
    std::int8_t phase_block_ = -1;  ///< last code block a kPhase was emitted
                                    ///< for (-1 = none yet this binding)
};

}  // namespace dta::core
