#include "core/node_router.hpp"

#include <string>
#include <utility>

#include "sim/check.hpp"

namespace dta::core {

NodeRouter::NodeRouter(std::uint16_t node, std::uint16_t num_nodes,
                       FabricLayout layout, noc::Interconnect& fabric,
                       sched::Dse& dse, std::vector<Pe*> local_pes,
                       MemInterface* memif, noc::Link* link)
    : node_(node),
      num_nodes_(num_nodes),
      layout_(layout),
      fabric_(fabric),
      dse_(dse),
      local_pes_(std::move(local_pes)),
      memif_(memif),
      link_(link) {
    set_name("router" + std::to_string(node));
}

bool NodeRouter::inject(noc::EndpointId src, noc::Packet pkt,
                        sim::Cycle now) {
    pkt.dst = pkt.dst_node == node_ ? pkt.dst_final : layout_.bridge_ep();
    DTA_CHECK_MSG(pkt.dst_node == node_ || num_nodes_ > 1,
                  "cross-node packet in a single-node machine");
    return fabric_.try_inject(src, std::move(pkt), now);
}

void NodeRouter::tick(sim::Cycle now) {
    // (a0) shard-crossing deliveries whose drain cycle has come up; they
    // join arrivals_ exactly when the upstream router would have pushed
    // them in the single-threaded schedule.
    if (in_channel_ != nullptr) {
        const sim::ProfScope ps(prof_, sim::ProfBuffer::kShardSlot,
                                sim::ProfPhase::kChannelDrain);
        sim::Cycle drain_at = 0;
        while (in_channel_->peek_drain(&drain_at) && drain_at <= now) {
            noc::Packet pkt;
            const bool ok = in_channel_->try_pop(pkt);
            DTA_CHECK(ok);  // sole consumer; peek just saw the entry
            arrivals_.push(std::move(pkt));
        }
    }
    // (a) packets that arrived over the inbound link
    while (!arrivals_.empty()) {
        if (arrivals_.front().dst_node == node_) {
            if (!inject(layout_.bridge_ep(), arrivals_.front(), now)) {
                break;
            }
            arrivals_.pop_front();
        } else {
            // keep circling the ring
            noc::Packet pkt;
            (void)arrivals_.pop(pkt);
            bridge_out_.push(std::move(pkt));
        }
    }
    // (b) memory responses (memory node only)
    if (memif_ != nullptr) {
        sim::Port<noc::Packet>& tx = memif_->tx_port();
        while (!tx.empty()) {
            if (!inject(layout_.mem_ep(), tx.front(), now)) {
                break;
            }
            tx.pop_front();
        }
    }
    // (c) DSE messages
    {
        sched::SchedMsg msg;
        while (dse_.has_outgoing() && fabric_.can_inject(layout_.dse_ep()) &&
               dse_.pop_outgoing(msg)) {
            noc::Packet pkt;
            pkt.kind = static_cast<std::uint16_t>(msg.kind);
            pkt.dst_node = msg.dst_node;
            pkt.dst_final = msg.dst_is_dse ? layout_.dse_ep()
                                           : layout_.spe_ep(msg.dst_pe);
            pkt.size_bytes = sched::kCtrlMsgBytes;
            pkt.a = msg.a;
            pkt.b = msg.b;
            pkt.c = msg.c;
            const bool ok = inject(layout_.dse_ep(), std::move(pkt), now);
            DTA_CHECK(ok);  // can_inject was checked
        }
    }
    // (d) PE traffic
    for (std::size_t i = 0; i < local_pes_.size(); ++i) {
        const auto local = static_cast<std::uint16_t>(i);
        Pe& pe = *local_pes_[i];
        noc::Packet pkt;
        while (pe.has_outgoing() && fabric_.can_inject(layout_.spe_ep(local)) &&
               pe.pop_outgoing(pkt)) {
            const bool ok =
                inject(layout_.spe_ep(local), std::move(pkt), now);
            DTA_CHECK(ok);
        }
    }
    // (e) bridge -> outbound ring link
    if (link_ != nullptr) {
        while (!bridge_out_.empty() && link_->can_send()) {
            noc::Packet pkt;
            (void)bridge_out_.pop(pkt);
            if (events_ != nullptr &&
                static_cast<sched::MsgKind>(pkt.kind) ==
                    sched::MsgKind::kRemoteStore) {
                sim::Event e;
                e.cycle = now;
                e.thread = sched::carried_uid(pkt.c);  // producer uid
                e.arg = sim::FrameHandle::unpack(pkt.a).global_pe;
                e.ordinal = ordinal_;
                e.kind = sim::EventKind::kLinkHop;
                events_->push(e);
            }
            const bool ok = link_->try_send(std::move(pkt));
            DTA_CHECK(ok);
        }
        link_->tick(now);
        noc::Packet pkt;
        while (link_->pop_delivered(pkt)) {
            forward_to_->push(std::move(pkt));
        }
    }
}

bool NodeRouter::quiescent() const {
    // An undrained channel entry — even one stamped for a future cycle —
    // counts as in-flight work: from the producer's deliver_at onward this
    // router is the only component vouching for the packet.
    return arrivals_.empty() && bridge_out_.empty() &&
           (link_ == nullptr || link_->quiescent()) &&
           (in_channel_ == nullptr || in_channel_->empty());
}

sim::Cycle NodeRouter::next_activity(sim::Cycle now) const {
    // Queued packets are retried against the fabric every tick; the retry
    // (and the injection once credit frees) is observable activity.  The
    // pull-model producer queues this router drains (memory responses, DSE
    // outbox, PE outgoing) count as its own: tick() is what moves them.
    if (!arrivals_.empty() || !bridge_out_.empty()) {
        return now + 1;
    }
    if (memif_ != nullptr && !memif_->tx_port().empty()) {
        return now + 1;
    }
    if (dse_.has_outgoing()) {
        return now + 1;
    }
    for (const Pe* pe : local_pes_) {
        if (pe->has_outgoing()) {
            return now + 1;
        }
    }
    sim::Cycle h = link_ != nullptr ? link_->next_activity(now)
                                    : sim::kIdleForever;
    sim::Cycle drain_at = 0;
    if (in_channel_ != nullptr && in_channel_->peek_drain(&drain_at)) {
        const sim::Cycle at = drain_at > now ? drain_at : now + 1;
        h = at < h ? at : h;
    }
    return h;
}

void NodeRouter::save_state(sim::StateSink& s) const {
    arrivals_.save_state(s, noc::save_packet);
    bridge_out_.save_state(s, noc::save_packet);
}

void NodeRouter::load_state(sim::StateSource& s) {
    arrivals_.load_state(s, noc::load_packet);
    bridge_out_.load_state(s, noc::load_packet);
}

}  // namespace dta::core
