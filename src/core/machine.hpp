/// \file machine.hpp
/// \brief The whole simulated machine: nodes of PEs, the distributed
///        scheduler, the bus fabric(s), the memory controller, and the run
///        loop (Fig. 2 of the paper).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <vector>

#include "core/breakdown.hpp"
#include "core/config.hpp"
#include "core/pe.hpp"
#include "core/trace.hpp"
#include "core/topology.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "noc/interconnect.hpp"
#include "noc/link.hpp"
#include "sched/dse.hpp"
#include "sim/log.hpp"
#include "sim/metrics.hpp"

namespace dta::core {

/// Per-PE slice of a run's results.
struct PeReport {
    Breakdown breakdown;
    InstrStats instrs;
    std::uint64_t issue_slots_used = 0;
    std::uint64_t cycles_with_issue = 0;
    std::uint64_t threads_executed = 0;
    sched::LseStats lse;
};

/// Everything a finished simulation reports.
struct RunResult {
    sim::Cycle cycles = 0;
    std::vector<PeReport> pes;

    // fabric / memory / scheduler aggregates
    noc::InterconnectStats noc;
    std::uint64_t mem_reads = 0;
    std::uint64_t mem_writes = 0;
    std::uint64_t mem_bytes_read = 0;
    std::uint64_t mem_bytes_written = 0;
    std::size_t mem_peak_queue = 0;
    std::uint64_t dma_commands = 0;
    std::uint64_t dma_bytes = 0;
    std::uint64_t dse_requests = 0;
    std::uint64_t dse_queued = 0;
    std::size_t dse_peak_pending = 0;

    /// Per-thread-code profile (always collected; cheap counters).
    std::vector<CodeProfile> profile;
    /// SPU occupancy spans (only when MachineConfig::capture_spans).
    std::vector<ThreadSpan> spans;
    /// Thread-code names, aligned with span code ids (for trace rendering).
    std::vector<std::string> code_names;
    /// Run-wide histograms, counters and gauge time-series (populated only
    /// when MachineConfig::collect_metrics; otherwise disabled and empty).
    sim::MetricsRegistry metrics;
    /// One span per completed DMA command (only with collect_metrics).
    std::vector<dma::DmaSpan> dma_spans;

    [[nodiscard]] Breakdown total_breakdown() const;
    [[nodiscard]] InstrStats total_instrs() const;
    /// Fig. 9 metric: fraction of SPU cycles with at least one issue.
    [[nodiscard]] double pipeline_usage() const;
    /// Stricter usage: issue slots used over 2-wide capacity.
    [[nodiscard]] double slot_utilisation() const;
};

/// A complete DTA machine.
class Machine {
public:
    /// Validates \p prog and builds the machine; both are copied so the
    /// caller's objects may go away.
    Machine(MachineConfig cfg, isa::Program prog);

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    /// Functional access to main memory for input/output data.
    [[nodiscard]] mem::MainMemory& memory() { return mem_; }
    [[nodiscard]] const mem::MainMemory& memory() const { return mem_; }
    [[nodiscard]] const isa::Program& program() const { return prog_; }
    [[nodiscard]] const MachineConfig& config() const { return cfg_; }

    /// Installs a trace sink (optional; default off).
    void set_log_sink(sim::LogLevel level, sim::Logger::Sink sink) {
        logger_.configure(level, std::move(sink));
    }

    /// Seeds the entry thread (the TLP activity the PPE offloads): a frame
    /// on PE 0 pre-filled with \p args, immediately ready.
    void launch(std::span<const std::uint64_t> args);

    /// Runs the simulation to completion and returns the statistics.
    /// Throws sim::SimError on deadlock or when max_cycles is exceeded.
    [[nodiscard]] RunResult run();

    /// Component access for tests.
    [[nodiscard]] Pe& pe(sim::GlobalPeId id) { return *pes_[id]; }
    [[nodiscard]] std::uint32_t num_pes() const {
        return static_cast<std::uint32_t>(pes_.size());
    }
    [[nodiscard]] sched::Dse& dse(std::uint16_t node) { return dses_[node]; }

private:
    /// Bookkeeping for one outstanding timed memory access.
    struct MemCtx {
        sched::MsgKind resp_kind = sched::MsgKind::kInvalid;
        std::uint16_t node = 0;
        std::uint32_t ep = 0;
        std::uint64_t x = 0;  ///< rd (reads) or DMA line id
        bool in_use = false;
    };

    void tick_cycle(sim::Cycle now);
    void route_fabric_deliveries(sim::Cycle now);
    void handle_dse_packet(std::uint16_t node, const noc::Packet& pkt,
                           sim::Cycle now);
    void sample_gauges(sim::Cycle now);
    void handle_memif_packet(const noc::Packet& pkt);
    void drain_memory_responses();
    void injection_phase(sim::Cycle now);
    [[nodiscard]] bool inject(std::uint16_t node, noc::EndpointId src,
                              noc::Packet pkt);
    [[nodiscard]] bool check_quiescent() const;
    [[nodiscard]] std::size_t alloc_mem_ctx(const MemCtx& ctx);
    [[nodiscard]] RunResult gather(sim::Cycle cycles) const;

    MachineConfig cfg_;
    isa::Program prog_;
    sched::Topology topo_;
    FabricLayout layout_;
    sim::Logger logger_;

    mem::MainMemory mem_;
    std::vector<noc::Interconnect> fabrics_;  ///< one per node
    std::vector<noc::Link> links_;            ///< ring: node i -> (i+1)%n
    std::vector<std::unique_ptr<Pe>> pes_;
    std::vector<sched::Dse> dses_;

    // memory-interface glue (node 0)
    std::vector<MemCtx> mem_ctx_;
    std::deque<std::size_t> mem_ctx_free_;
    std::size_t mem_ctx_outstanding_ = 0;
    std::deque<noc::Packet> memif_outbox_;

    // inter-node glue
    std::vector<std::deque<noc::Packet>> bridge_out_;   ///< to my ring link
    std::vector<std::deque<noc::Packet>> link_arrivals_; ///< from my inbound link

    std::vector<ThreadSpan> spans_;  ///< filled when cfg_.capture_spans

    // metrics (live only when cfg_.collect_metrics)
    sim::MetricsRegistry metrics_;
    std::vector<dma::DmaSpan> dma_spans_;
    sim::GaugeSeries* g_dma_cmds_ = nullptr;
    sim::GaugeSeries* g_dma_lines_ = nullptr;
    sim::GaugeSeries* g_mem_queue_ = nullptr;
    std::vector<sim::GaugeSeries*> g_noc_pending_;  ///< one per fabric

    bool launched_ = false;
    bool ran_ = false;
};

}  // namespace dta::core
