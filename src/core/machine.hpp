/// \file machine.hpp
/// \brief The whole simulated machine: nodes of PEs, the distributed
///        scheduler, the bus fabric(s), the memory controller, and the run
///        loop (Fig. 2 of the paper).
///
/// Every timed part of the machine is a sim::Component registered in one
/// scheduler list; wiring between them is declared once at construction as
/// typed sim::Port bindings.  The run loop drives the list cycle by cycle
/// and — when every component agrees nothing can happen before cycle T —
/// fast-forwards straight to T (cycle-exact; see docs/ARCHITECTURE.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/breakdown.hpp"
#include "core/config.hpp"
#include "core/mem_interface.hpp"
#include "core/node_router.hpp"
#include "core/pe.hpp"
#include "core/trace.hpp"
#include "core/topology.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "noc/interconnect.hpp"
#include "noc/link.hpp"
#include "sched/dse.hpp"
#include "sim/audit.hpp"
#include "sim/channel.hpp"
#include "sim/component.hpp"
#include "sim/log.hpp"
#include "sim/metrics.hpp"
#include "sim/shard.hpp"
#include "sim/telemetry.hpp"
#include "sim/wheel.hpp"

namespace dta::core {

/// Per-PE slice of a run's results.
struct PeReport {
    Breakdown breakdown;
    InstrStats instrs;
    std::uint64_t issue_slots_used = 0;
    std::uint64_t cycles_with_issue = 0;
    std::uint64_t threads_executed = 0;
    sched::LseStats lse;
};

/// Everything a finished simulation reports.
struct RunResult {
    sim::Cycle cycles = 0;
    std::vector<PeReport> pes;

    // fabric / memory / scheduler aggregates
    noc::InterconnectStats noc;
    std::uint64_t mem_reads = 0;
    std::uint64_t mem_writes = 0;
    std::uint64_t mem_bytes_read = 0;
    std::uint64_t mem_bytes_written = 0;
    std::size_t mem_peak_queue = 0;
    std::uint64_t dma_commands = 0;
    std::uint64_t dma_bytes = 0;
    std::uint64_t dse_requests = 0;
    std::uint64_t dse_queued = 0;
    std::size_t dse_peak_pending = 0;

    /// Per-thread-code profile (always collected; cheap counters).
    std::vector<CodeProfile> profile;
    /// SPU occupancy spans (only when MachineConfig::capture_spans).
    std::vector<ThreadSpan> spans;
    /// Thread-code names, aligned with span code ids (for trace rendering).
    std::vector<std::string> code_names;
    /// Run-wide histograms, counters and gauge time-series (populated only
    /// when MachineConfig::collect_metrics; otherwise disabled and empty).
    sim::MetricsRegistry metrics;
    /// One span per completed DMA command (only with collect_metrics).
    std::vector<dma::DmaSpan> dma_spans;
    /// Thread-lifecycle event log in canonical (cycle, ordinal) order (only
    /// when MachineConfig::collect_events; otherwise empty).
    sim::EventLog events;
    /// Host-time profile per (shard, component, phase) (only when
    /// MachineConfig::profile; otherwise disabled and empty).  Host-side
    /// only: every other RunResult field is byte-identical with profiling
    /// on or off.
    sim::HostProfile host_profile;
    /// Event-driven scheduler behaviour (only when MachineConfig::use_wheel;
    /// otherwise disabled and empty).  Host-side only, like host_profile:
    /// excluded from the JSON run report and every byte-identity comparison
    /// — the simulated results are byte-identical with the wheel on or off.
    sim::WheelStats wheel;
    /// Live-telemetry timeline (only when MachineConfig::telemetry.enabled;
    /// otherwise disabled and empty).  The frames' simulated fields are
    /// deterministic — byte-identical across host thread counts and wheel
    /// on/off — and are serialised into the JSON report's `telemetry`
    /// section; the host-side frame tail (host_ns, wheel_*) rides only the
    /// NDJSON stream, exactly like RunResult::wheel.
    sim::TelemetryResult telemetry;

    [[nodiscard]] Breakdown total_breakdown() const;
    [[nodiscard]] InstrStats total_instrs() const;
    /// Fig. 9 metric: fraction of SPU cycles with at least one issue.
    [[nodiscard]] double pipeline_usage() const;
    /// Stricter usage: issue slots used over 2-wide capacity.
    [[nodiscard]] double slot_utilisation() const;
};

/// Serialises the structural parts of a machine description — everything
/// that shapes what the machine *is* (shape, latencies, engine layouts, the
/// resolved shard count) plus a digest of the loaded program — into \p s.
/// Shared by Machine snapshots (the snapshot's `config` section and its
/// fingerprint) and the serve result cache (docs/SERVING.md), which keys
/// memoized runs on the same bytes.  Observer knobs (log level, audits,
/// profiling, fast-forward, the wheel) are deliberately excluded.
void structural_config_echo(sim::StateSink& s, const MachineConfig& cfg,
                            std::uint32_t shard_count,
                            const isa::Program& prog);

/// FNV-1a 64 over structural_config_echo's bytes.  Equals
/// Machine::config_fingerprint() for a machine built from (cfg, prog) whose
/// resolved host-thread count is \p shard_count.
[[nodiscard]] std::uint64_t structural_fingerprint(const MachineConfig& cfg,
                                                   std::uint32_t shard_count,
                                                   const isa::Program& prog);

/// A complete DTA machine.
class Machine {
public:
    /// Validates \p prog and builds the machine; both are copied so the
    /// caller's objects may go away.
    Machine(MachineConfig cfg, isa::Program prog);

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    /// Functional access to main memory for input/output data.
    [[nodiscard]] mem::MainMemory& memory() { return mem_; }
    [[nodiscard]] const mem::MainMemory& memory() const { return mem_; }
    [[nodiscard]] const isa::Program& program() const { return prog_; }
    [[nodiscard]] const MachineConfig& config() const { return cfg_; }

    /// Installs a trace sink (optional; default off).
    void set_log_sink(sim::LogLevel level, sim::Logger::Sink sink) {
        logger_.configure(level, std::move(sink));
    }

    /// Seeds the entry thread (the TLP activity the PPE offloads): a frame
    /// on PE 0 pre-filled with \p args, immediately ready.
    void launch(std::span<const std::uint64_t> args);

    /// One progress heartbeat.  In sharded runs the live-thread count and
    /// the ticked/skipped host-effort split cover shard 0 only (cross-shard
    /// state is not touched mid-run); callers extrapolate.
    struct Progress {
        sim::Cycle cycle = 0;
        std::uint64_t live_threads = 0;
        sim::Cycle ticked = 0;   ///< cycles advanced by per-cycle ticking
        sim::Cycle skipped = 0;  ///< cycles advanced by idle fast-forward
        /// Live-telemetry summary (zero / empty unless telemetry is on and
        /// a frame has been captured): cumulative retired instructions at
        /// the latest sample, its cycle, and the busiest component's name.
        std::uint64_t instrs_retired = 0;
        sim::Cycle sample_cycle = 0;
        std::string busiest;
    };
    /// Periodic progress callback: invoked at most once per \p interval
    /// simulated cycles.  In sharded runs the callback fires on the thread
    /// driving shard 0.  Install before run(); null \p fn disables.
    using ProgressFn = std::function<void(const Progress&)>;
    void set_progress(sim::Cycle interval, ProgressFn fn) {
        progress_interval_ = interval;
        progress_ = std::move(fn);
    }

    /// Command prefix for the telemetry watchdog's `--restore` replay hint
    /// (e.g. "dta_run prog.dta --spes 4"); the nearest pre-stall snapshot
    /// path is appended when the watchdog fires.  Default "dta_run".
    void set_replay_hint(std::string prefix) {
        replay_hint_ = std::move(prefix);
    }
    /// The live-telemetry sampler, or nullptr when telemetry is off (for
    /// tools that stream or inspect mid-run state).
    [[nodiscard]] const sim::TelemetrySampler* telemetry() const {
        return telemetry_.get();
    }
    /// Redirects the telemetry watchdog's diagnostic away from stderr
    /// (tests capture and assert on it).  No-op when telemetry is off.
    void set_telemetry_diag(std::FILE* f) {
        if (telemetry_ != nullptr) {
            telemetry_->set_diag_stream(f);
        }
    }

    /// Runs the simulation to completion and returns the statistics.
    /// Throws sim::SimError on deadlock or when max_cycles is exceeded.
    [[nodiscard]] RunResult run();

    // --- checkpoint/restore (sim/snapshot.hpp) ---------------------------
    /// FNV-1a 64 hash over the serialised structural config echo plus a
    /// digest of the loaded program.  Snapshots carry it; restore refuses a
    /// mismatch.  Observer knobs (log level, audits, profiling,
    /// fast-forward, the wheel) are excluded so a snapshot can be replayed
    /// with extra instrumentation turned on — time-travel debugging.
    [[nodiscard]] std::uint64_t config_fingerprint() const;
    /// Writes a snapshot of the current (launched, not yet run — or
    /// restored) machine state to \p path.
    void checkpoint(const std::string& path);
    /// Restores machine state from \p path into this freshly built machine
    /// (before launch()/run(); restore replaces launch).  Throws SimError
    /// on a version or config-fingerprint mismatch, and runs a full
    /// invariant audit over the restored state when audits are enabled.
    void restore(const std::string& path);
    /// Arms periodic checkpoints during run(): one snapshot at every
    /// multiple of \p every cycles, at `prefix + ".c<cycle>.dtasnap"`.
    void set_checkpoints(sim::Cycle every, std::string prefix);
    /// Ends run() at exactly cycle \p cycle (state as of the cut; the
    /// machine need not be quiescent).  The partial RunResult covers
    /// [start, cycle); final quiescence audits are skipped.
    void set_stop_at(sim::Cycle cycle) { stop_at_ = cycle; }
    /// Cycle/path of the newest snapshot run() wrote (0/"" if none) — the
    /// fuzzer's bisect loop refines from here.
    [[nodiscard]] sim::Cycle last_checkpoint_cycle() const {
        return last_ckpt_cycle_;
    }
    [[nodiscard]] const std::string& last_checkpoint_path() const {
        return last_ckpt_path_;
    }
    /// First simulated cycle of this run (non-zero after restore()).
    [[nodiscard]] sim::Cycle start_cycle() const { return restore_cycle_; }

    /// The machine-wide invariant auditor (live when cfg.audit.enabled).
    /// Tests and the fuzzer may add extra checks before run() — e.g. an
    /// always-failing one to validate the failure-reporting path.
    [[nodiscard]] sim::Auditor& auditor() { return auditor_; }

    /// Component access for tests.
    [[nodiscard]] Pe& pe(sim::GlobalPeId id) { return *pes_[id]; }
    [[nodiscard]] std::uint32_t num_pes() const {
        return static_cast<std::uint32_t>(pes_.size());
    }
    [[nodiscard]] sched::Dse& dse(std::uint16_t node) { return dses_[node]; }
    /// Cycles run() jumped over instead of ticking (0 with fast-forward
    /// off).  Deliberately *not* part of RunResult: results are identical
    /// either way.
    [[nodiscard]] sim::Cycle cycles_fast_forwarded() const { return skipped_; }

    /// Host threads the run loop actually uses (cfg.host_threads resolved:
    /// 0 becomes hardware_concurrency, then capped at the node count; 1 is
    /// the single-threaded reference loop).
    [[nodiscard]] std::uint32_t shard_count() const { return shard_count_; }
    /// Per-shard host-effort split (how many cycles each shard ticked vs
    /// fast-forwarded).  Empty in single-threaded mode.
    struct ShardStat {
        std::string name;
        sim::Cycle ticked = 0;
        sim::Cycle skipped = 0;
    };
    [[nodiscard]] std::vector<ShardStat> shard_stats() const;

private:
    void tick_cycle(sim::Cycle now, std::uint64_t& prof_t);
    void sample_gauges(sim::Cycle now);
    /// The event-driven run loop (single-threaded, use_wheel on): visits
    /// each component only at its scheduled cycle and replays the dense
    /// loop's observable side effects (gauge samples, deadlock checkpoints)
    /// over the jumped spans, so every RunResult byte matches run()'s.
    [[nodiscard]] RunResult run_wheel();
    /// Binds the wake hooks of every port consumed by a component of nodes
    /// [node_lo, node_hi) to \p sched, addressing each by its index in
    /// \p comps (the scheduler list \p sched was attached to).
    void attach_wakers(sim::WheelScheduler& sched,
                       const std::vector<sim::Component*>& comps,
                       std::uint16_t node_lo, std::uint16_t node_hi);
    /// Registers the per-component invariant checks for nodes
    /// [node_lo, node_hi) into \p a (the machine-wide auditor, or one
    /// shard's auditor in sharded mode).
    void register_audit_checks(sim::Auditor& a, std::uint16_t node_lo,
                               std::uint16_t node_hi);
    /// Registers the machine-wide quiescence checks (run once after the
    /// run completes): frame supply back at the DSEs, remote-store
    /// conservation across the NoC, drained engines and fabrics.
    void register_final_checks();
    [[nodiscard]] bool check_quiescent() const;
    /// Activity fingerprint for no-progress (deadlock) detection.
    [[nodiscard]] std::uint64_t fingerprint() const;
    [[nodiscard]] std::string non_quiescent_names(sim::Cycle now) const;
    [[noreturn]] void throw_deadlock(sim::Cycle now, sim::Cycle stalled,
                                     bool idle_forever) const;
    /// Applies the bookkeeping of skipped cycles [from, to): component
    /// skip() hooks, gauge samples, deadlock checkpoints.
    void fast_forward_span(sim::Cycle from, sim::Cycle to,
                           std::uint64_t& last_fp, sim::Cycle& last_progress);
    [[nodiscard]] RunResult gather(sim::Cycle cycles) const;

    // --- checkpoint/restore internals ------------------------------------
    /// Serialises the structural config + program digest (the fingerprint
    /// input and the snapshot's self-description section).
    void config_echo(sim::StateSink& s) const;
    /// Serialises the whole machine state at \p cycle into \p path.
    void save_snapshot_file(sim::Cycle cycle, const std::string& path) const;
    /// Periodic checkpoint at a run-loop cut (derives the path from the
    /// prefix and records it for last_checkpoint_*).
    void write_snapshot(sim::Cycle cycle);
    /// Next cycle the run loop must land on exactly (checkpoint multiple or
    /// stop_at); kCycleNever when neither is armed.  Fast-forward spans are
    /// clamped to it — result-neutral, skipping is accounting-identical.
    [[nodiscard]] sim::Cycle next_cut(sim::Cycle now) const;
    /// The early-exit path of --stop-at: canonicalise what was collected
    /// and gather the partial result (no final quiescence audit).
    [[nodiscard]] RunResult stop_early(sim::Cycle cycle);

    // --- sharded (multi-threaded) run loop -------------------------------
    /// Conservative lookahead: the soonest a packet serialised now can be
    /// observed across a link is latency + 1 cycles later.
    [[nodiscard]] sim::Cycle epoch_length() const {
        return static_cast<sim::Cycle>(cfg_.link.latency) + 1;
    }
    [[nodiscard]] std::uint16_t first_node_of(std::uint32_t shard) const {
        return static_cast<std::uint16_t>(
            static_cast<std::uint32_t>(cfg_.nodes) * shard / shard_count_);
    }
    void build_shards();
    void sample_shard_gauges(std::uint32_t shard, sim::Cycle now);
    /// Captures one machine-wide telemetry frame at \p now (post-tick
    /// state).  No-op unless cfg_.telemetry.enabled.  Called from the
    /// single-threaded loops at sample cycles (and replayed over
    /// fast-forwarded spans), and from the epoch coordinator's completion
    /// step — with every shard parked — under the sharded loop.
    void capture_telemetry(sim::Cycle now);
    [[nodiscard]] RunResult run_sharded();
    /// Fires progress_ if \p now crossed the next reporting threshold; the
    /// live-thread count covers PEs [pe_lo, pe_hi).
    void report_progress(sim::Cycle now, std::uint32_t pe_lo,
                         std::uint32_t pe_hi);

    MachineConfig cfg_;
    isa::Program prog_;
    sched::Topology topo_;
    FabricLayout layout_;
    sim::Logger logger_;
    bool fast_forward_ = true;  ///< cfg_.fast_forward minus env override
    bool use_wheel_ = true;     ///< cfg_.use_wheel minus DTA_NO_WHEEL

    mem::MainMemory mem_;
    std::vector<noc::Interconnect> fabrics_;  ///< one per node
    std::vector<noc::Link> links_;            ///< ring: node i -> (i+1)%n
    std::vector<std::unique_ptr<Pe>> pes_;
    std::vector<sched::Dse> dses_;
    std::unique_ptr<MemInterface> memif_;             ///< node 0
    std::vector<std::unique_ptr<NodeRouter>> routers_;  ///< one per node

    /// Scheduler order: fabrics, DSEs, memif, PEs, routers — the exact
    /// dependency order of the seed's hand-rolled tick_cycle.
    std::vector<sim::Component*> components_;
    sim::Cycle skipped_ = 0;
    /// Event-driven scheduler for the single-threaded loop (sharded runs
    /// carry one per Shard instead, so wakes never cross host threads).
    sim::WheelScheduler wheel_;

    std::vector<ThreadSpan> spans_;  ///< filled when cfg_.capture_spans

    // event log (live only when cfg_.collect_events)
    sim::EventLog events_;
    std::vector<sim::EventLog> shard_events_;  ///< shard-local, merged at end

    // progress reporting (live only when set_progress installed a callback)
    ProgressFn progress_;
    sim::Cycle progress_interval_ = 0;
    sim::Cycle next_progress_ = 0;

    // invariant audits (live only when cfg_.audit.enabled)
    sim::Auditor auditor_;  ///< machine-wide checks + final checks
    /// Shard-local check sets (sharded mode): each shard audits only its
    /// own components mid-run; the machine-wide auditor_ runs once more
    /// after the join.
    std::vector<sim::Auditor> shard_auditors_;
    sim::Cycle audit_interval_ = 0;  ///< 0 = audits off

    // host-time profiler (live only when cfg_.profile): one buffer per
    // shard (exactly one in single-threaded mode), sized once at
    // construction — components and shards hold pointers into it.
    std::vector<sim::ProfBuffer> prof_;

    // live telemetry (live only when cfg_.telemetry.enabled; off = one
    // null check at the run loops' sample sites)
    std::unique_ptr<sim::TelemetrySampler> telemetry_;
    // Next cycle owed a telemetry frame (always a multiple of the
    // interval).  capture_telemetry advances it, so the hot sample sites
    // test equality instead of a per-cycle 64-bit modulo, and the
    // fast-forward replay loops walk it directly with no alignment
    // division.  The sharded loop samples on epoch bounds instead and
    // never consults it.
    sim::Cycle telemetry_next_ = 0;

    // metrics (live only when cfg_.collect_metrics)
    sim::MetricsRegistry metrics_;
    std::vector<dma::DmaSpan> dma_spans_;
    sim::GaugeSeries* g_dma_cmds_ = nullptr;
    sim::GaugeSeries* g_dma_lines_ = nullptr;
    sim::GaugeSeries* g_mem_queue_ = nullptr;
    std::vector<sim::GaugeSeries*> g_noc_pending_;  ///< one per fabric

    // --- sharded mode state (shard_count_ > 1 only) ----------------------
    std::uint32_t shard_count_ = 1;
    std::vector<std::uint16_t> node_shard_;  ///< node -> owning shard
    std::vector<std::unique_ptr<sim::SpscChannel<noc::Packet>>> channels_;
    std::vector<std::unique_ptr<sim::Shard>> shards_;
    /// Shard-local collection sinks; components of shard s write only
    /// here, and run_sharded() merges them deterministically at the end.
    std::vector<sim::MetricsRegistry> shard_metrics_;
    std::vector<std::vector<ThreadSpan>> shard_spans_;
    std::vector<std::vector<dma::DmaSpan>> shard_dma_spans_;
    struct ShardGauges {
        sim::GaugeSeries* dma_cmds = nullptr;
        sim::GaugeSeries* dma_lines = nullptr;
        sim::GaugeSeries* mem_queue = nullptr;  ///< node-0 owner only
        std::vector<sim::GaugeSeries*> noc_pending;  ///< per owned fabric
    };
    std::vector<ShardGauges> shard_gauges_;

    bool launched_ = false;
    bool ran_ = false;

    // --- checkpoint/restore state ----------------------------------------
    sim::Cycle restore_cycle_ = 0;      ///< run starts here after restore()
    sim::Cycle checkpoint_every_ = 0;   ///< 0 = periodic checkpoints off
    std::string checkpoint_prefix_;
    sim::Cycle stop_at_ = 0;            ///< 0 = run to quiescence
    sim::Cycle last_ckpt_cycle_ = 0;
    std::string last_ckpt_path_;
    /// Command prefix for the telemetry watchdog's replay hint; the
    /// nearest pre-stall snapshot path is appended at stall time.
    std::string replay_hint_ = "dta_run";
};

}  // namespace dta::core
