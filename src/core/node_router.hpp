/// \file node_router.hpp
/// \brief Per-node injection engine: drains every local producer (link
///        arrivals, memory responses, DSE messages, PE traffic) into the
///        node's bus fabric, and pumps the outbound ring link.
///
/// This is the seed's Machine::injection_phase, one Component per node
/// with its wiring (fabric, DSE, local PEs, memory interface, ring link,
/// downstream arrivals port) fixed at construction instead of re-derived
/// from machine-global state every cycle.  Routers are registered last and
/// in node order, preserving the seed's same-cycle forwarding of link
/// arrivals to higher-numbered nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mem_interface.hpp"
#include "core/pe.hpp"
#include "core/topology.hpp"
#include "noc/interconnect.hpp"
#include "noc/link.hpp"
#include "sched/dse.hpp"
#include "sim/component.hpp"
#include "sim/events.hpp"
#include "sim/port.hpp"

namespace dta::core {

class NodeRouter final : public sim::Component {
public:
    /// \p memif is non-null only on the memory node; \p link is non-null
    /// only in multi-node machines (the node's *outbound* ring link).
    NodeRouter(std::uint16_t node, std::uint16_t num_nodes,
               FabricLayout layout, noc::Interconnect& fabric,
               sched::Dse& dse, std::vector<Pe*> local_pes,
               MemInterface* memif, noc::Link* link);

    NodeRouter(const NodeRouter&) = delete;
    NodeRouter& operator=(const NodeRouter&) = delete;

    /// The upstream node's link deliveries land here.
    [[nodiscard]] sim::Port<noc::Packet>& arrivals_port() { return arrivals_; }
    /// The fabric's bridge endpoint binds here (packets leaving the node).
    [[nodiscard]] sim::Port<noc::Packet>& bridge_out_port() {
        return bridge_out_;
    }
    /// Wires the ring: this node's link delivers into \p next's arrivals.
    void set_forward_to(sim::Port<noc::Packet>* next) { forward_to_ = next; }
    /// Sharded machines: the upstream link is on another shard and its
    /// deliveries come through \p ch instead of arrivals_.  Entries are
    /// drained into arrivals_ once their stamped cycle comes up, which is
    /// exactly when the upstream router would have pushed them directly.
    void set_inbound_channel(noc::Link::TxChannel* ch) { in_channel_ = ch; }
    /// Charges inbound-channel draining to \p prof (phase channel_drain);
    /// null disables.  The buffer must belong to this router's shard.
    void set_prof(sim::ProfBuffer* prof) { prof_ = prof; }
    /// Points kLinkHop emission (remote frame stores leaving the node) at
    /// \p log; \p ordinal identifies this router in the merged event log
    /// (total PE count + node id, keeping it disjoint from PE ordinals).
    void attach_events(sim::EventLog* log, std::uint32_t ordinal) {
        events_ = log;
        ordinal_ = ordinal;
    }

    void tick(sim::Cycle now) override;
    [[nodiscard]] bool quiescent() const override;
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const override;

    // --- checkpoint/restore -------------------------------------------------
    /// Serializes the two packet ports; everything else is wiring.
    void save_state(sim::StateSink& s) const override;
    void load_state(sim::StateSource& s) override;

private:
    [[nodiscard]] bool inject(noc::EndpointId src, noc::Packet pkt,
                              sim::Cycle now);

    std::uint16_t node_;
    std::uint16_t num_nodes_;
    FabricLayout layout_;
    noc::Interconnect& fabric_;
    sched::Dse& dse_;
    std::vector<Pe*> local_pes_;
    MemInterface* memif_;                      ///< memory node only
    noc::Link* link_;                          ///< multi-node only
    sim::Port<noc::Packet>* forward_to_ = nullptr;
    noc::Link::TxChannel* in_channel_ = nullptr;  ///< shard-crossing inbound
    sim::ProfBuffer* prof_ = nullptr;  ///< host-time profiler (optional)
    sim::EventLog* events_ = nullptr;  ///< optional, machine-owned
    std::uint32_t ordinal_ = 0;        ///< event ordinal (pes + node)

    sim::Port<noc::Packet> arrivals_;
    sim::Port<noc::Packet> bridge_out_;
};

}  // namespace dta::core
