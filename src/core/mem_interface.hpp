/// \file mem_interface.hpp
/// \brief The node-0 memory interface: a clocked component that decodes
///        fabric packets into memory-controller requests, drives the
///        controller, and turns completions back into response packets.
///
/// In the seed this logic lived as free-floating Machine methods
/// (handle_memif_packet / drain_memory_responses) plus a hand-rolled
/// context free-list.  It is now a Component with typed rx/tx ports: the
/// fabric's memory endpoint binds to rx_port(), the node-0 router drains
/// tx_port() into the fabric.
#pragma once

#include <cstdint>

#include "mem/main_memory.hpp"
#include "noc/packet.hpp"
#include "sched/messages.hpp"
#include "sim/component.hpp"
#include "sim/port.hpp"

namespace dta::core {

class MemInterface final : public sim::Component {
public:
    explicit MemInterface(mem::MainMemory& mem);

    MemInterface(const MemInterface&) = delete;
    MemInterface& operator=(const MemInterface&) = delete;

    /// The fabric's memory endpoint delivers here.
    [[nodiscard]] sim::Port<noc::Packet>& rx_port() { return rx_; }
    /// Response packets ready for injection (drained by the node-0 router).
    [[nodiscard]] sim::Port<noc::Packet>& tx_port() { return tx_; }

    /// Decode rx packets into requests, advance the controller, package
    /// completions.  Request decode runs before the controller tick, as in
    /// the seed's route-then-tick ordering, so enqueue-to-service timing is
    /// unchanged.
    void tick(sim::Cycle now) override;
    [[nodiscard]] bool quiescent() const override;
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const override;

    /// Timed accesses in flight (for tests).
    [[nodiscard]] std::uint64_t outstanding() const {
        return ctxs_.outstanding();
    }

    // --- checkpoint/restore -------------------------------------------------
    /// Serializes outstanding access contexts and both packet ports (the
    /// memory controller itself is its own snapshot section).
    void save_state(sim::StateSink& s) const override;
    void load_state(sim::StateSource& s) override;

private:
    /// Bookkeeping for one outstanding timed memory access.
    struct MemCtx {
        sched::MsgKind resp_kind = sched::MsgKind::kInvalid;
        std::uint16_t node = 0;
        std::uint32_t ep = 0;
        std::uint64_t x = 0;  ///< rd (reads) or DMA line id
    };

    void decode(noc::Packet&& pkt);
    void drain_responses();

    mem::MainMemory& mem_;
    sim::Pool<MemCtx> ctxs_;
    sim::Port<noc::Packet> rx_;
    sim::Port<noc::Packet> tx_;
};

}  // namespace dta::core
