#include "core/pe.hpp"

#include <utility>

#include "core/wire.hpp"
#include "isa/alu.hpp"
#include "sim/check.hpp"

namespace dta::core {

using isa::CodeBlock;
using isa::Instruction;
using isa::IssuePort;
using isa::Opcode;

Pe::Pe(const MachineConfig& cfg, const sched::Topology& topo,
       sim::GlobalPeId self, const isa::Program& prog, const sim::Logger& log)
    : cfg_(cfg.spu),
      lse_cfg_(cfg.lse),
      topo_(topo),
      layout_{cfg.spes_per_node, cfg.nodes > 1},
      self_(self),
      prog_(prog),
      log_(log),
      ls_(cfg.local_store),
      lse_(cfg.lse, topo, self, ls_),
      mfc_(cfg.mfc, ls_) {
    reg_ready_.fill(0);
    reg_src_.fill(RegSrc::kNone);
    code_cycles_.assign(prog.codes.size(), 0);
    code_instrs_.assign(prog.codes.size(), 0);
    code_starts_.assign(prog.codes.size(), 0);
    code_dispatches_.assign(prog.codes.size(), 0);
    set_name("pe" + std::to_string(self));
}

// ---------------------------------------------------------------------------
// Packet plumbing
// ---------------------------------------------------------------------------

void Pe::deliver(noc::Packet pkt) { inbox_.push(std::move(pkt)); }

bool Pe::pop_outgoing(noc::Packet& out) { return outgoing_.pop(out); }

void Pe::push_packet(noc::Packet pkt) { outgoing_.push(std::move(pkt)); }

void Pe::send_sched_msg(const sched::SchedMsg& msg) {
    const std::uint16_t own_node = topo_.node_of(self_);
    const std::uint16_t own_pe = topo_.local_pe_of(self_);
    // Self-addressed scheduler messages (e.g. a FALLOC granted to the
    // requesting PE itself) never touch the fabric.
    if (!msg.dst_is_dse && msg.dst_node == own_node && msg.dst_pe == own_pe) {
        switch (msg.kind) {
            case sched::MsgKind::kFallocResp:
                lse_.on_falloc_resp(sim::FrameHandle::unpack(msg.a),
                                    sched::FallocCtx::unpack(msg.c));
                return;
            case sched::MsgKind::kFallocFwd:
                lse_.on_falloc_fwd(sched::carried_low16(msg.a),
                                   static_cast<std::uint32_t>(msg.b),
                                   sched::FallocCtx::unpack(msg.c),
                                   sched::carried_uid(msg.a));
                return;
            default:
                DTA_CHECK_MSG(false, "unexpected self-addressed message");
        }
    }
    noc::Packet pkt;
    pkt.kind = static_cast<std::uint16_t>(msg.kind);
    pkt.dst_node = msg.dst_node;
    pkt.dst_final = msg.dst_is_dse ? layout_.dse_ep()
                                   : layout_.spe_ep(msg.dst_pe);
    pkt.size_bytes = sched::kCtrlMsgBytes;
    pkt.a = msg.a;
    pkt.b = msg.b;
    pkt.c = msg.c;
    push_packet(std::move(pkt));
}

void Pe::pump_outgoing_producers() {
    while (outgoing_.size() < kOutgoingPullCap) {
        sched::SchedMsg msg;
        if (lse_.pop_outgoing(msg)) {
            send_sched_msg(msg);
            continue;
        }
        dma::MfcLineRequest line;
        if (mfc_.pop_line_request(line)) {
            noc::Packet pkt;
            pkt.dst_node = kMemoryNode;
            pkt.dst_final = layout_.mem_ep();
            pkt.a = line.mem_addr;
            pkt.b = line.line_id;
            pkt.c = DmaWireCtx{topo_.node_of(self_),
                               static_cast<std::uint16_t>(layout_.spe_ep(
                                   topo_.local_pe_of(self_))),
                               line.bytes}
                        .pack();
            if (line.op == dma::MfcOp::kGet) {
                pkt.kind = static_cast<std::uint16_t>(
                    sched::MsgKind::kDmaLineReq);
                pkt.size_bytes = sched::kCtrlMsgBytes;
            } else {
                pkt.kind = static_cast<std::uint16_t>(
                    sched::MsgKind::kDmaPutReq);
                pkt.size_bytes = sched::kCtrlMsgBytes + line.bytes;
                pkt.data = std::move(line.data);
            }
            push_packet(std::move(pkt));
            continue;
        }
        break;
    }
}

// ---------------------------------------------------------------------------
// Per-cycle phases
// ---------------------------------------------------------------------------

void Pe::tick_local_store(sim::Cycle now) { ls_.tick(now); }

void Pe::tick_units(sim::Cycle now) {
    // 1. Decode fabric deliveries.
    noc::Packet pkt;
    while (inbox_.pop(pkt)) {
        switch (static_cast<sched::MsgKind>(pkt.kind)) {
            case sched::MsgKind::kFallocFwd:
                lse_.on_falloc_fwd(sched::carried_low16(pkt.a),
                                   static_cast<std::uint32_t>(pkt.b),
                                   sched::FallocCtx::unpack(pkt.c),
                                   sched::carried_uid(pkt.a));
                break;
            case sched::MsgKind::kFallocResp:
                lse_.on_falloc_resp(sim::FrameHandle::unpack(pkt.a),
                                    sched::FallocCtx::unpack(pkt.c));
                break;
            case sched::MsgKind::kRemoteStore:
                lse_.on_remote_store(sim::FrameHandle::unpack(pkt.a),
                                     sched::carried_low16(pkt.c), pkt.b,
                                     sched::carried_uid(pkt.c));
                break;
            case sched::MsgKind::kMemReadResp:
                apply_read_response(static_cast<std::uint8_t>(pkt.c), pkt.b,
                                    now);
                break;
            case sched::MsgKind::kDmaLineResp:
                mfc_.deliver_line_data(pkt.a, pkt.data);
                break;
            case sched::MsgKind::kDmaPutAck:
                mfc_.ack_put_line(pkt.a);
                break;
            default:
                DTA_CHECK_MSG(false, "PE received unexpected packet kind " +
                                         std::to_string(pkt.kind));
        }
    }

    // 2. Advance the MFC and deliver its completions to the LSE.
    mfc_.tick(now);
    dma::MfcCompletion comp;
    while (mfc_.pop_completion(comp)) {
        const auto owner = static_cast<std::uint32_t>(comp.owner);
        if (events_ != nullptr) {
            // Emitted before dma_completed so a same-cycle kReady resume
            // sorts after its cause.
            emit_event(sim::EventKind::kDmaComplete, now, lse_.uid_of(owner),
                       0, 0, static_cast<std::uint8_t>(comp.tag));
        }
        lse_.dma_completed(owner);
    }

    // 3. LSE: frame-write completions decrement SCs.
    lse_.tick(now);

    // 4. SPU-side local-store completions (frame LOAD / LSLOAD data).
    mem::LsResponse resp;
    while (ls_.pop_response(mem::LsClient::kSpu, resp)) {
        if (resp.is_write) {
            continue;  // posted LSSTORE; nothing to apply
        }
        const auto rd = static_cast<std::uint8_t>(resp.meta & 0xff);
        const bool wide = (resp.meta & 0x100) != 0;
        DTA_CHECK_MSG(bound_ && outstanding_lsloads_ > 0,
                      "LS data returned with no load outstanding");
        --outstanding_lsloads_;
        const std::uint64_t value = decode_le(resp.data, wide ? 8 : 4);
        if (rd != 0) {
            regs_[rd] = value;
            reg_ready_[rd] = now;
            reg_src_[rd] = RegSrc::kNone;
        }
    }

    // 5. Completed FALLOCs land in their destination register.
    sched::FallocDone fd;
    while (lse_.pop_falloc_response(fd)) {
        DTA_CHECK_MSG(bound_ && outstanding_fallocs_ > 0,
                      "FALLOC response with none outstanding");
        --outstanding_fallocs_;
        if (fd.rd != 0) {
            regs_[fd.rd] = fd.handle.pack();
            reg_ready_[fd.rd] = now;
            reg_src_[fd.rd] = RegSrc::kNone;
        }
    }

    // 6. Move producer traffic into the outgoing queue.
    pump_outgoing_producers();
}

void Pe::apply_read_response(std::uint8_t rd, std::uint64_t value,
                             sim::Cycle now) {
    DTA_CHECK_MSG(bound_ && outstanding_reads_ > 0,
                  "memory READ response with none outstanding");
    --outstanding_reads_;
    if (rd != 0) {
        regs_[rd] = value;
        reg_ready_[rd] = now;
        reg_src_[rd] = RegSrc::kNone;
    }
}

// ---------------------------------------------------------------------------
// Dispatch / bind
// ---------------------------------------------------------------------------

void Pe::handle_dispatch(sim::Cycle now) {
    if (!lse_.dispatch_requested()) {
        lse_.request_dispatch(now);
    }
    sched::Dispatch d;
    if (lse_.pop_dispatch(now, d)) {
        bind_thread(d, now);
        breakdown_.charge(CycleBucket::kLseStall);
        return;
    }
    if (lse_.ready_count() > 0) {
        // A thread is ready; we are inside the SPU<->LSE handshake.
        breakdown_.charge(CycleBucket::kLseStall);
    } else if (lse_.waitdma_count() > 0 && cfg_.count_dma_idle_as_prefetch) {
        // Only suspended prefetching threads exist: this idleness is the
        // unoverlapped part of the prefetch cost.
        breakdown_.charge(CycleBucket::kPrefetch);
    } else {
        breakdown_.charge(CycleBucket::kIdle);
    }
}

void Pe::bind_thread(const sched::Dispatch& d, sim::Cycle now) {
    DTA_CHECK(!bound_);
    DTA_CHECK(outstanding_reads_ == 0 && outstanding_lsloads_ == 0 &&
              outstanding_fallocs_ == 0);
    bound_ = true;
    slot_ = d.slot;
    code_id_ = d.code;
    code_ = &prog_.at(d.code);
    ip_ = d.resume_ip;
    freed_ = false;
    if (d.has_snapshot) {
        regs_ = d.snapshot.regs;
        regions_ = d.snapshot.regions;
    } else {
        regs_.fill(0);
        regions_.fill(sched::RegionEntry{});
        ++threads_executed_;
        ++code_starts_[code_id_];
    }
    ++code_dispatches_[code_id_];
    if (events_ != nullptr) {
        // Cache the uid for the whole bound stretch: after FFREE the LSE
        // may release the slot and re-materialize a waiting virtual frame
        // into it while this thread is still executing its PS block, so a
        // later uid_of(slot_) lookup would name the new occupant.
        cur_uid_ = lse_.uid_of(slot_);
        emit_event(sim::EventKind::kDispatch, now, cur_uid_, 0,
                   sim::pack_grant(code_id_, false) |
                       (static_cast<std::uint64_t>(slot_) << 40),
                   d.has_snapshot ? 1 : 0);
    }
    phase_block_ = -1;
    if (spans_ != nullptr) {
        open_span_.pe = self_;
        open_span_.begin = now;
        open_span_.code = code_id_;
        open_span_.slot = slot_;
        open_span_.resumed = d.has_snapshot;
    }
    reg_ready_.fill(0);
    reg_src_.fill(RegSrc::kNone);
    busy_until_ = now + cfg_.thread_start_overhead;
    busy_reason_ = BusyReason::kThreadStart;
    lse_.thread_running(slot_);
    if (log_.enabled(sim::LogLevel::kDebug)) {
        log_.log(sim::LogLevel::kDebug, now, "pe" + std::to_string(self_),
                 "bind thread '" + code_->name + "' slot " +
                     std::to_string(slot_) + " ip " + std::to_string(ip_));
    }
}

void Pe::unbind(sim::Cycle now) {
    if (spans_ != nullptr) {
        open_span_.end = now + 1;  // the unbinding cycle still belonged to it
        spans_->push_back(open_span_);
    }
    bound_ = false;
    code_ = nullptr;
    busy_until_ = 0;
    busy_reason_ = BusyReason::kNone;
}

// ---------------------------------------------------------------------------
// Issue
// ---------------------------------------------------------------------------

CycleBucket Pe::stall_bucket(RegSrc src) const {
    switch (src) {
        case RegSrc::kMem: return CycleBucket::kMemStall;
        case RegSrc::kLs: return CycleBucket::kLsStall;
        case RegSrc::kLse: return CycleBucket::kLseStall;
        case RegSrc::kAlu:
        case RegSrc::kMul: return CycleBucket::kPipeStall;
        case RegSrc::kNone: break;
    }
    return CycleBucket::kPipeStall;
}

std::optional<CycleBucket> Pe::operand_block(const Instruction& ins,
                                             sim::Cycle now) const {
    const auto& oi = ins.info();
    const auto blocked = [&](std::uint8_t r) -> bool {
        return r != 0 && reg_ready_[r] > now;
    };
    if (oi.reads_ra && blocked(ins.ra)) return stall_bucket(reg_src_[ins.ra]);
    if (oi.reads_rb && blocked(ins.rb)) return stall_bucket(reg_src_[ins.rb]);
    if ((oi.writes_rd || oi.reads_rd) && blocked(ins.rd)) {
        return stall_bucket(reg_src_[ins.rd]);
    }
    return std::nullopt;
}

Pe::IssueCheck Pe::can_issue(const Instruction& ins, sim::Cycle now) const {
    const bool in_pf = ins.block == CodeBlock::kPf;
    const auto as_pf = [&](CycleBucket b) {
        return in_pf ? CycleBucket::kPrefetch : b;
    };
    if (auto b = operand_block(ins, now)) {
        return {false, as_pf(*b)};
    }
    switch (ins.op) {
        case Opcode::kRead:
            if (outstanding_reads_ >= cfg_.max_outstanding_reads) {
                return {false, as_pf(CycleBucket::kMemStall)};
            }
            [[fallthrough]];
        case Opcode::kWrite:
            if (outgoing_.size() >= cfg_.outbox_depth) {
                return {false, as_pf(CycleBucket::kMemStall)};
            }
            break;
        case Opcode::kStore:
        case Opcode::kStoreX: {
            const auto h = sim::FrameHandle::unpack(reg(ins.rb));
            if (h.global_pe != self_ &&
                outgoing_.size() >= kOutgoingPullCap) {
                return {false, as_pf(CycleBucket::kLseStall)};
            }
            break;
        }
        case Opcode::kDmaGet:
            if (!mfc_.can_enqueue()) {
                return {false, CycleBucket::kPrefetch};
            }
            break;
        case Opcode::kDmaPut:
            if (!mfc_.can_enqueue()) {
                return {false, as_pf(CycleBucket::kMemStall)};
            }
            break;
        case Opcode::kStop:
            if (outstanding_reads_ > 0) {
                return {false, CycleBucket::kMemStall};
            }
            if (outstanding_lsloads_ > 0) {
                return {false, CycleBucket::kLsStall};
            }
            if (outstanding_fallocs_ > 0) {
                return {false, CycleBucket::kLseStall};
            }
            break;
        case Opcode::kDmaWait:
            if (outstanding_lsloads_ > 0 || outstanding_fallocs_ > 0 ||
                outstanding_reads_ > 0) {
                return {false, CycleBucket::kPrefetch};
            }
            if (!cfg_.non_blocking_dma && lse_.dma_pending(slot_) > 0) {
                // Blocking ablation: spin on the pipeline until done.
                return {false, CycleBucket::kPrefetch};
            }
            break;
        default:
            break;
    }
    return {true, CycleBucket::kWorking};
}

void Pe::tick_spu(sim::Cycle now) {
    if (!bound_) {
        handle_dispatch(now);
        return;
    }
    ++code_cycles_[code_id_];
    if (now < busy_until_) {
        switch (busy_reason_) {
            case BusyReason::kThreadStart:
                breakdown_.charge(CycleBucket::kLseStall);
                break;
            case BusyReason::kBranch:
                breakdown_.charge(CycleBucket::kPipeStall);
                break;
            case BusyReason::kDmaProgram:
                breakdown_.charge(CycleBucket::kPrefetch);
                break;
            case BusyReason::kNone:
                breakdown_.charge(CycleBucket::kPipeStall);
                break;
        }
        return;
    }

    std::uint32_t issued = 0;
    CycleBucket first_bucket = CycleBucket::kWorking;
    std::optional<CycleBucket> stall;
    std::optional<IssuePort> first_port;
    for (int pipe = 0; pipe < 2; ++pipe) {
        DTA_CHECK_MSG(ip_ < code_->size(), "instruction pointer ran off code");
        const Instruction& ins = code_->code[ip_];
        const auto& oi = ins.info();
        if (pipe == 1) {
            // Second slot: must use the other pipe; control ops serialise.
            if (oi.port == IssuePort::kControl || !first_port ||
                oi.port == *first_port) {
                break;
            }
        }
        const IssueCheck chk = can_issue(ins, now);
        if (!chk.ok) {
            if (pipe == 0) {
                stall = chk.stall;
            }
            break;
        }
        if (pipe == 0) {
            first_bucket = ins.block == CodeBlock::kPf ? CycleBucket::kPrefetch
                                                       : CycleBucket::kWorking;
            first_port = oi.port;
        }
        if (events_ != nullptr &&
            static_cast<std::int8_t>(ins.block) != phase_block_) {
            phase_block_ = static_cast<std::int8_t>(ins.block);
            emit_event(sim::EventKind::kPhase, now, cur_uid_, 0,
                       static_cast<std::uint64_t>(ins.block),
                       static_cast<std::uint8_t>(ins.block));
        }
        instrs_.count(ins.op);
        ++code_instrs_[code_id_];
        ++issued;
        const bool continue_cycle = execute(ins, now);
        if (!continue_cycle || !bound_ || now < busy_until_) {
            break;
        }
    }

    if (issued > 0) {
        breakdown_.charge(first_bucket);
        slots_used_ += issued;
        ++cycles_with_issue_;
    } else {
        breakdown_.charge(stall.value_or(CycleBucket::kPipeStall));
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

void Pe::set_reg(std::uint8_t rd, std::uint64_t value, sim::Cycle ready_at,
                 RegSrc src) {
    if (rd == 0) {
        return;  // r0 is hard-wired zero
    }
    regs_[rd] = value;
    reg_ready_[rd] = ready_at;
    reg_src_[rd] = src;
}

bool Pe::execute(const Instruction& ins, sim::Cycle now) {
    switch (ins.op) {
        // control flow
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
        case Opcode::kJmp: {
            const bool taken =
                isa::eval_branch(ins, reg(ins.ra), reg(ins.rb));
            if (taken) {
                ip_ = static_cast<std::uint32_t>(ins.imm);
                if (cfg_.branch_penalty > 0) {
                    busy_until_ = now + cfg_.branch_penalty;
                    busy_reason_ = BusyReason::kBranch;
                }
                return false;
            }
            ++ip_;
            return true;
        }
        // memory & threads
        case Opcode::kLoad:
        case Opcode::kLoadX: exec_load(ins); ++ip_; return true;
        case Opcode::kStore:
        case Opcode::kStoreX: exec_store(ins, now); ++ip_; return true;
        case Opcode::kRead: exec_read(ins); ++ip_; return true;
        case Opcode::kWrite: exec_write(ins); ++ip_; return true;
        case Opcode::kLsLoad: exec_lsload(ins); ++ip_; return true;
        case Opcode::kLsStore: exec_lsstore(ins); ++ip_; return true;
        case Opcode::kFalloc:
        case Opcode::kFallocN: exec_falloc(ins, now); ++ip_; return true;
        case Opcode::kFfree:
            lse_.ffree(slot_);
            freed_ = true;
            ++ip_;
            return true;
        case Opcode::kDmaGet:
        case Opcode::kDmaPut:
            exec_dmaget(ins, now);
            ++ip_;
            return true;
        case Opcode::kRegSet:
            exec_regset(ins);
            ++ip_;
            return true;
        case Opcode::kDmaWait:
            return exec_dmawait(now);
        case Opcode::kStop:
            exec_stop(now);
            return false;
        default:
            exec_compute(ins, now);
            ++ip_;
            return true;
    }
}

void Pe::exec_compute(const Instruction& ins, sim::Cycle now) {
    if (ins.op == Opcode::kNop) {
        return;
    }
    // Value semantics are shared with the reference interpreter
    // (isa/alu.hpp); only the latency model lives here.
    const std::uint64_t result =
        isa::eval_compute(ins, reg(ins.ra), reg(ins.rb),
                          sim::FrameHandle{self_, slot_}.pack());
    std::uint32_t latency = cfg_.alu_latency;
    RegSrc src = RegSrc::kAlu;
    switch (ins.op) {
        case Opcode::kMul:
        case Opcode::kMulI:
            latency = cfg_.mul_latency;
            src = RegSrc::kMul;
            break;
        case Opcode::kDiv:
        case Opcode::kRem:
            latency = cfg_.div_latency;
            src = RegSrc::kMul;
            break;
        default:
            break;
    }
    set_reg(ins.rd, result, now + latency, src);
}

void Pe::exec_load(const Instruction& ins) {
    std::int64_t word = ins.imm;
    if (ins.op == Opcode::kLoadX) {
        word += static_cast<std::int64_t>(reg(ins.ra));
    }
    DTA_SIM_REQUIRE(word >= 0 &&
                        word < static_cast<std::int64_t>(lse_cfg_.frame_words),
                    "frame LOAD offset out of range");
    mem::LsRequest rq;
    rq.id = ls_req_seq_++;
    rq.is_write = false;
    rq.addr = lse_.frame_ls_base(slot_) +
              static_cast<std::uint32_t>(word) * 8;
    rq.size = 8;
    rq.meta = static_cast<std::uint64_t>(ins.rd) | 0x100u;  // 64-bit load
    ls_.enqueue(mem::LsClient::kSpu, std::move(rq));
    ++outstanding_lsloads_;
    // r0 never goes pending (set_reg ignores it), but the LS response will
    // still decrement the outstanding counter when it arrives.
    set_reg(ins.rd, 0, sim::kCycleNever, RegSrc::kLs);
}

std::uint32_t Pe::resolve_ls_addr(const Instruction& ins,
                                  std::uint32_t access_bytes) const {
    const std::uint8_t addr_reg =
        ins.op == Opcode::kLsStore ? ins.rb : ins.ra;
    const std::uint64_t vaddr = reg(addr_reg) + static_cast<std::uint64_t>(ins.imm);
    if (ins.region == isa::kNoRegion) {
        // Raw local-store addressing.
        DTA_SIM_REQUIRE(vaddr + access_bytes <= ls_.config().size_bytes,
                        "raw LS access out of bounds");
        return static_cast<std::uint32_t>(vaddr);
    }
    DTA_SIM_REQUIRE(ins.region >= 0 &&
                        static_cast<std::size_t>(ins.region) <
                            sched::kNumRegions,
                    "LS access names an invalid region");
    const sched::RegionEntry& re = regions_[static_cast<std::size_t>(ins.region)];
    DTA_SIM_REQUIRE(re.valid, "LS access through an unfilled region entry");
    DTA_SIM_REQUIRE(vaddr >= re.mem_base,
                    "LS access below its region's base address");
    const std::uint64_t delta = vaddr - re.mem_base;
    if (re.mem_stride == 0) {
        DTA_SIM_REQUIRE(delta + access_bytes <= re.bytes,
                        "LS access past the end of its region");
        return re.ls_base + static_cast<std::uint32_t>(delta);
    }
    const std::uint64_t elem = delta / re.mem_stride;
    const std::uint64_t within = delta % re.mem_stride;
    DTA_SIM_REQUIRE(within + access_bytes <= re.mem_elem_bytes,
                    "strided LS access crosses an element boundary");
    DTA_SIM_REQUIRE(elem < re.bytes / re.mem_elem_bytes,
                    "strided LS access past the last element");
    return re.ls_base +
           static_cast<std::uint32_t>(elem * re.mem_elem_bytes + within);
}

void Pe::exec_lsload(const Instruction& ins) {
    mem::LsRequest rq;
    rq.id = ls_req_seq_++;
    rq.is_write = false;
    rq.addr = resolve_ls_addr(ins, 4);
    rq.size = 4;
    rq.meta = static_cast<std::uint64_t>(ins.rd);  // 32-bit load
    ls_.enqueue(mem::LsClient::kSpu, std::move(rq));
    ++outstanding_lsloads_;
    set_reg(ins.rd, 0, sim::kCycleNever, RegSrc::kLs);
}

void Pe::exec_lsstore(const Instruction& ins) {
    mem::LsRequest rq;
    rq.id = ls_req_seq_++;
    rq.is_write = true;
    rq.addr = resolve_ls_addr(ins, 4);
    rq.size = 4;
    const auto v = static_cast<std::uint32_t>(reg(ins.ra));
    rq.data = {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
               static_cast<std::uint8_t>(v >> 16),
               static_cast<std::uint8_t>(v >> 24)};
    rq.meta = 0;
    ls_.enqueue(mem::LsClient::kSpu, std::move(rq));
}

void Pe::exec_store(const Instruction& ins, sim::Cycle now) {
    const auto h = sim::FrameHandle::unpack(reg(ins.rb));
    DTA_SIM_REQUIRE(h.global_pe < topo_.total_pes(),
                    "STORE to a handle with an invalid PE");
    std::int64_t word = ins.imm;
    if (ins.op == Opcode::kStoreX) {
        word += static_cast<std::int64_t>(reg(ins.rd));
    }
    DTA_SIM_REQUIRE(word >= 0, "frame STORE offset negative");
    const auto off = static_cast<std::uint32_t>(word);
    const bool remote = h.global_pe != self_;
    std::uint64_t producer = 0;
    if (events_ != nullptr) {
        producer = cur_uid_;
        emit_event(sim::EventKind::kStoreIssue, now, producer, 0,
                   sim::pack_store_dest(h.global_pe, h.slot, off),
                   remote ? 1 : 0);
    }
    if (remote) {
        lse_.store_remote(h, off, reg(ins.ra), producer);
    } else {
        lse_.store_local(h, off, reg(ins.ra), producer);
    }
}

void Pe::exec_read(const Instruction& ins) {
    noc::Packet pkt;
    pkt.kind = static_cast<std::uint16_t>(sched::MsgKind::kMemReadReq);
    pkt.dst_node = kMemoryNode;
    pkt.dst_final = layout_.mem_ep();
    pkt.size_bytes = 8;
    pkt.a = reg(ins.ra) + static_cast<std::uint64_t>(ins.imm);
    pkt.b = sched::GlobalEndpoint{topo_.node_of(self_),
                                  layout_.spe_ep(topo_.local_pe_of(self_))}
                .pack();
    pkt.c = ins.rd;
    push_packet(std::move(pkt));
    ++outstanding_reads_;
    set_reg(ins.rd, 0, sim::kCycleNever, RegSrc::kMem);
}

void Pe::exec_write(const Instruction& ins) {
    noc::Packet pkt;
    pkt.kind = static_cast<std::uint16_t>(sched::MsgKind::kMemWriteReq);
    pkt.dst_node = kMemoryNode;
    pkt.dst_final = layout_.mem_ep();
    pkt.size_bytes = 16;
    pkt.a = reg(ins.rb) + static_cast<std::uint64_t>(ins.imm);
    pkt.b = static_cast<std::uint32_t>(reg(ins.ra));
    push_packet(std::move(pkt));
}

void Pe::exec_falloc(const Instruction& ins, sim::Cycle now) {
    const auto code = static_cast<sim::ThreadCodeId>(ins.imm);
    std::uint32_t sc = 0;
    if (ins.op == Opcode::kFalloc) {
        sc = prog_.at(code).num_inputs;
    } else {
        const std::uint64_t v = reg(ins.ra);
        DTA_SIM_REQUIRE(v <= 0xffffffffull, "FALLOCN SC exceeds 32 bits");
        sc = static_cast<std::uint32_t>(v);
    }
    std::uint64_t parent = 0;
    if (events_ != nullptr) {
        parent = cur_uid_;
        emit_event(sim::EventKind::kFallocIssue, now, parent, 0, code,
                   ins.rd);
    }
    lse_.falloc(ins.rd, code, sc, parent);
    ++outstanding_fallocs_;
    set_reg(ins.rd, 0, sim::kCycleNever, RegSrc::kLse);
}

void Pe::exec_regset(const Instruction& ins) {
    DTA_CHECK(ins.dma.has_value());
    const isa::DmaArgs& args = *ins.dma;
    DTA_SIM_REQUIRE(args.region < sched::kNumRegions,
                    "REGSET region index out of range");
    DTA_SIM_REQUIRE(static_cast<std::uint64_t>(args.ls_offset) + args.bytes <=
                        lse_cfg_.staging_bytes_per_frame,
                    "REGSET overflows the thread's staging area");
    sched::RegionEntry re;
    re.valid = true;
    re.mem_base = reg(ins.ra);
    re.mem_stride = args.stride;
    re.mem_elem_bytes = args.elem_bytes;
    re.ls_base = lse_.staging_ls_base(slot_) + args.ls_offset;
    re.bytes = args.bytes;
    regions_[args.region] = re;
}

void Pe::exec_dmaget(const Instruction& ins, sim::Cycle now) {
    DTA_CHECK(ins.dma.has_value());
    const isa::DmaArgs& args = *ins.dma;
    const bool is_put = ins.op == Opcode::kDmaPut;
    DTA_SIM_REQUIRE(args.region < sched::kNumRegions,
                    "DMA region index out of range");
    DTA_SIM_REQUIRE(static_cast<std::uint64_t>(args.ls_offset) + args.bytes <=
                        lse_cfg_.staging_bytes_per_frame,
                    "DMA command overflows the thread's staging area");
    const std::uint32_t ls_addr =
        lse_.staging_ls_base(slot_) + args.ls_offset;
    dma::MfcCommand cmd;
    cmd.op = is_put ? dma::MfcOp::kPut : dma::MfcOp::kGet;
    cmd.tag = args.region;
    cmd.mem_addr = reg(ins.ra);
    cmd.ls_addr = ls_addr;
    cmd.bytes = args.bytes;
    cmd.stride = args.stride;
    cmd.elem_bytes = args.elem_bytes;
    cmd.owner = slot_;
    const bool ok = mfc_.try_enqueue(cmd);
    DTA_CHECK_MSG(ok, "MFC rejected a command can_issue approved");
    lse_.mark_dma_issued(slot_);
    if (!is_put) {
        // GETs additionally fill the runtime region table so LSLOADs can
        // translate main-memory addresses onto the staged copy.
        sched::RegionEntry re;
        re.valid = true;
        re.mem_base = cmd.mem_addr;
        re.mem_stride = args.stride;
        re.mem_elem_bytes = args.elem_bytes;
        re.ls_base = ls_addr;
        re.bytes = args.bytes;
        regions_[args.region] = re;
    }
    // Programming the MFC costs SPU cycles (this is the visible part of the
    // paper's "Prefetching" overhead; write-back programming is charged the
    // same way).
    if (cfg_.dma_program_cycles > 0) {
        busy_until_ = now + cfg_.dma_program_cycles;
        busy_reason_ = BusyReason::kDmaProgram;
    }
    if (events_ != nullptr) {
        emit_event(sim::EventKind::kDmaIssue, now, cur_uid_, 0,
                   args.bytes, static_cast<std::uint8_t>(args.region));
    }
}

bool Pe::exec_dmawait(sim::Cycle now) {
    if (lse_.dma_pending(slot_) == 0) {
        // Every tag already completed: fall straight through to PL
        // (the "Ready" fast path of Fig. 4).
        ++ip_;
        return false;  // control op: serialise the cycle anyway
    }
    DTA_CHECK_MSG(cfg_.non_blocking_dma,
                  "blocking DMAWAIT should spin in can_issue");
    sched::ThreadSnapshot snap;
    snap.regs = regs_;
    snap.regions = regions_;
    lse_.suspend_for_dma(slot_, ip_ + 1, snap);
    if (events_ != nullptr) {
        emit_event(sim::EventKind::kSuspend, now, cur_uid_, 0, 0, 0);
    }
    if (log_.enabled(sim::LogLevel::kDebug)) {
        log_.log(sim::LogLevel::kDebug, now, "pe" + std::to_string(self_),
                 "thread slot " + std::to_string(slot_) +
                     " suspended in Wait-for-DMA");
    }
    unbind(now);
    return false;
}

void Pe::exec_stop(sim::Cycle now) {
    if (events_ != nullptr) {
        // Before stop_thread: the slot's uid is gone once the LSE releases
        // it (and the kFree event must sort after the kStop).
        emit_event(sim::EventKind::kStop, now, cur_uid_, 0, 0, 0);
    }
    lse_.stop_thread(slot_, freed_);
    unbind(now);
}

void Pe::emit_event(sim::EventKind kind, sim::Cycle now, std::uint64_t thread,
                    std::uint64_t other, std::uint64_t arg, std::uint8_t aux) {
    sim::Event e;
    e.cycle = now;
    e.thread = thread;
    e.other = other;
    e.arg = arg;
    e.stall = breakdown_[CycleBucket::kMemStall];
    e.ordinal = self_;
    e.kind = kind;
    e.aux = aux;
    events_->push(e);
}

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

bool Pe::quiescent() const {
    return !bound_ && inbox_.empty() && outgoing_.empty() && ls_.quiescent() &&
           mfc_.quiescent() && lse_.quiescent() && outstanding_reads_ == 0 &&
           outstanding_lsloads_ == 0 && outstanding_fallocs_ == 0;
}

// ---------------------------------------------------------------------------
// Activity horizon / fast-forward
// ---------------------------------------------------------------------------

sim::Cycle Pe::operand_horizon(const Instruction& ins, sim::Cycle now) const {
    sim::Cycle h = sim::kIdleForever;
    const auto consider = [&](std::uint8_t r) {
        // Regs pending on external events (kCycleNever) are woken by the
        // component carrying the request; only finite ready-times schedule
        // a retry here.
        if (r != 0 && reg_ready_[r] > now + 1 &&
            reg_ready_[r] != sim::kCycleNever && reg_ready_[r] < h) {
            h = reg_ready_[r];
        }
    };
    const auto& oi = ins.info();
    if (oi.reads_ra) consider(ins.ra);
    if (oi.reads_rb) consider(ins.rb);
    if (oi.writes_rd || oi.reads_rd) consider(ins.rd);
    return h;
}

sim::Cycle Pe::next_activity(sim::Cycle now) const {
    // Undecoded deliveries, undrained producer traffic, or a completed
    // FALLOC waiting to land in its register: work next cycle.
    if (!inbox_.empty() || !outgoing_.empty() || !lse_.outgoing_empty() ||
        lse_.falloc_response_pending()) {
        return now + 1;
    }
    sim::Cycle h = ls_.next_activity(now);
    const sim::Cycle mfc_h = mfc_.next_activity(now);
    h = mfc_h < h ? mfc_h : h;
    if (bound_) {
        if (busy_until_ > now + 1) {
            h = busy_until_ < h ? busy_until_ : h;
        } else {
            // The pipeline attempts issue next cycle; skippable only while
            // the verdict provably cannot change.
            const IssueCheck chk = can_issue(code_->code[ip_], now + 1);
            if (chk.ok) {
                return now + 1;
            }
            const sim::Cycle op_h = operand_horizon(code_->code[ip_], now);
            h = op_h < h ? op_h : h;
        }
    } else {
        if (!lse_.dispatch_requested()) {
            return now + 1;  // handle_dispatch posts the request (a mutation)
        }
        if (lse_.ready_count() > 0) {
            sim::Cycle d = lse_.dispatch_ready_at();
            d = d > now + 1 ? d : now + 1;
            h = d < h ? d : h;
        }
        // No ready thread: the wake-up (DMA completion, frame store) rides
        // on another component's horizon.
    }
    return h;
}

void Pe::skip(sim::Cycle from, sim::Cycle to) {
    const std::uint64_t n = to - from;
    if (!bound_) {
        // Replicates handle_dispatch's non-dispatching charges; the horizon
        // guarantees no dispatch could have happened in [from, to).
        DTA_CHECK(lse_.dispatch_requested());
        if (lse_.ready_count() > 0) {
            DTA_CHECK(to <= lse_.dispatch_ready_at());
            breakdown_.charge(CycleBucket::kLseStall, n);
        } else if (lse_.waitdma_count() > 0 &&
                   cfg_.count_dma_idle_as_prefetch) {
            breakdown_.charge(CycleBucket::kPrefetch, n);
        } else {
            breakdown_.charge(CycleBucket::kIdle, n);
        }
    } else {
        code_cycles_[code_id_] += n;
        if (from < busy_until_) {
            DTA_CHECK(to <= busy_until_);
            switch (busy_reason_) {
                case BusyReason::kThreadStart:
                    breakdown_.charge(CycleBucket::kLseStall, n);
                    break;
                case BusyReason::kBranch:
                    breakdown_.charge(CycleBucket::kPipeStall, n);
                    break;
                case BusyReason::kDmaProgram:
                    breakdown_.charge(CycleBucket::kPrefetch, n);
                    break;
                case BusyReason::kNone:
                    breakdown_.charge(CycleBucket::kPipeStall, n);
                    break;
            }
        } else {
            // The stall verdict is constant across the span: every finite
            // operand ready-time bounds the horizon, and resource state
            // only mutates inside ticks.
            const IssueCheck chk = can_issue(code_->code[ip_], from);
            DTA_CHECK_MSG(!chk.ok, "fast-forward skipped an issuable cycle");
            breakdown_.charge(chk.stall, n);
        }
    }
    // Sub-units only need their stale-by-one event clocks advanced.
    mfc_.skip(from, to);
    lse_.skip(from, to);
}

namespace {

void save_span(sim::StateSink& s, const ThreadSpan& t) {
    s.u32(t.pe);
    s.u64(t.begin);
    s.u64(t.end);
    s.u32(t.code);
    s.u32(t.slot);
    s.flag(t.resumed);
}

void load_span(sim::StateSource& s, ThreadSpan& t) {
    t.pe = s.u32();
    t.begin = s.u64();
    t.end = s.u64();
    t.code = s.u32();
    t.slot = s.u32();
    t.resumed = s.flag();
}

}  // namespace

void Pe::save_state(sim::StateSink& s) const {
    ls_.save_state(s);
    lse_.save_state(s);
    mfc_.save_state(s);
    inbox_.save_state(s, noc::save_packet);
    outgoing_.save_state(s, noc::save_packet);
    // SPU architectural state
    s.flag(bound_);
    s.u32(slot_);
    s.u32(code_id_);
    s.u32(ip_);
    s.flag(freed_);
    for (const std::uint64_t v : regs_) {
        s.u64(v);
    }
    for (const sched::RegionEntry& r : regions_) {
        sched::save_region(s, r);
    }
    // scoreboard
    for (const sim::Cycle c : reg_ready_) {
        s.u64(c);
    }
    for (const RegSrc src : reg_src_) {
        s.u8(static_cast<std::uint8_t>(src));
    }
    s.u32(outstanding_reads_);
    s.u32(outstanding_lsloads_);
    s.u32(outstanding_fallocs_);
    // pipeline control + parked fast path
    s.u64(busy_until_);
    s.u8(static_cast<std::uint8_t>(busy_reason_));
    s.u64(ls_req_seq_);
    s.u64(park_until_);
    // statistics
    for (const std::uint64_t c : breakdown_.cycles) {
        s.u64(c);
    }
    for (const std::uint64_t c : instrs_.by_opcode) {
        s.u64(c);
    }
    s.u64(slots_used_);
    s.u64(cycles_with_issue_);
    s.u64(threads_executed_);
    for (const auto* vec :
         {&code_cycles_, &code_instrs_, &code_starts_, &code_dispatches_}) {
        sim::save_seq(s, *vec,
                      [](sim::StateSink& k, std::uint64_t v) { k.u64(v); });
    }
    save_span(s, open_span_);
    s.u64(cur_uid_);
    s.u8(static_cast<std::uint8_t>(phase_block_));
}

void Pe::load_state(sim::StateSource& s) {
    ls_.load_state(s);
    lse_.load_state(s);
    mfc_.load_state(s);
    inbox_.load_state(s, noc::load_packet);
    outgoing_.load_state(s, noc::load_packet);
    bound_ = s.flag();
    slot_ = s.u32();
    code_id_ = s.u32();
    ip_ = s.u32();
    freed_ = s.flag();
    for (std::uint64_t& v : regs_) {
        v = s.u64();
    }
    for (sched::RegionEntry& r : regions_) {
        sched::load_region(s, r);
    }
    for (sim::Cycle& c : reg_ready_) {
        c = s.u64();
    }
    for (RegSrc& src : reg_src_) {
        src = static_cast<RegSrc>(s.u8());
    }
    outstanding_reads_ = s.u32();
    outstanding_lsloads_ = s.u32();
    outstanding_fallocs_ = s.u32();
    busy_until_ = s.u64();
    busy_reason_ = static_cast<BusyReason>(s.u8());
    ls_req_seq_ = s.u64();
    park_until_ = s.u64();
    for (std::uint64_t& c : breakdown_.cycles) {
        c = s.u64();
    }
    for (std::uint64_t& c : instrs_.by_opcode) {
        c = s.u64();
    }
    slots_used_ = s.u64();
    cycles_with_issue_ = s.u64();
    threads_executed_ = s.u64();
    for (auto* vec :
         {&code_cycles_, &code_instrs_, &code_starts_, &code_dispatches_}) {
        const std::size_t expect = vec->size();
        sim::load_seq(s, *vec,
                      [](sim::StateSource& k, std::uint64_t& v) { v = k.u64(); });
        DTA_CHECK_MSG(vec->size() == expect,
                      "snapshot per-code counters do not match the program");
    }
    load_span(s, open_span_);
    cur_uid_ = s.u64();
    phase_block_ = static_cast<std::int8_t>(s.u8());
    // The bound thread-code pointer is wiring into the (identical, by
    // config-fingerprint check) program, not serialized state.
    code_ = bound_ ? &prog_.at(code_id_) : nullptr;
}

}  // namespace dta::core
