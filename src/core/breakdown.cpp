#include "core/breakdown.hpp"

namespace dta::core {

std::uint64_t Breakdown::total() const {
    std::uint64_t t = 0;
    for (const auto c : cycles) {
        t += c;
    }
    return t;
}

Breakdown& Breakdown::operator+=(const Breakdown& o) {
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        cycles[i] += o.cycles[i];
    }
    return *this;
}

std::array<std::uint64_t, 6> Breakdown::paper_view() const {
    std::array<std::uint64_t, 6> v{};
    for (std::size_t i = 0; i < 6; ++i) {
        v[i] = cycles[i];
    }
    v[static_cast<std::size_t>(CycleBucket::kWorking)] +=
        cycles[static_cast<std::size_t>(CycleBucket::kPipeStall)];
    return v;
}

double Breakdown::fraction(CycleBucket b) const {
    const std::uint64_t t = total();
    if (t == 0) {
        return 0.0;
    }
    const auto v = paper_view();
    const auto idx = static_cast<std::size_t>(b);
    if (idx >= v.size()) {
        return 0.0;
    }
    return static_cast<double>(v[idx]) / static_cast<double>(t);
}

std::uint64_t InstrStats::total() const {
    std::uint64_t t = 0;
    for (const auto c : by_opcode) {
        t += c;
    }
    return t;
}

InstrStats& InstrStats::operator+=(const InstrStats& o) {
    for (std::size_t i = 0; i < by_opcode.size(); ++i) {
        by_opcode[i] += o.by_opcode[i];
    }
    return *this;
}

}  // namespace dta::core
