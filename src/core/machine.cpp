#include "core/machine.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>

#include "isa/validate.hpp"
#include "sim/check.hpp"
#include "sim/epoch.hpp"
#include "sim/snapshot.hpp"

namespace dta::core {

// ---------------------------------------------------------------------------
// RunResult helpers
// ---------------------------------------------------------------------------

Breakdown RunResult::total_breakdown() const {
    Breakdown b;
    for (const auto& pe : pes) {
        b += pe.breakdown;
    }
    return b;
}

InstrStats RunResult::total_instrs() const {
    InstrStats s;
    for (const auto& pe : pes) {
        s += pe.instrs;
    }
    return s;
}

double RunResult::pipeline_usage() const {
    if (cycles == 0 || pes.empty()) {
        return 0.0;
    }
    std::uint64_t with_issue = 0;
    for (const auto& pe : pes) {
        with_issue += pe.cycles_with_issue;
    }
    return static_cast<double>(with_issue) /
           (static_cast<double>(cycles) * static_cast<double>(pes.size()));
}

double RunResult::slot_utilisation() const {
    if (cycles == 0 || pes.empty()) {
        return 0.0;
    }
    std::uint64_t slots = 0;
    for (const auto& pe : pes) {
        slots += pe.issue_slots_used;
    }
    return static_cast<double>(slots) /
           (2.0 * static_cast<double>(cycles) * static_cast<double>(pes.size()));
}

// ---------------------------------------------------------------------------
// Construction and wiring
// ---------------------------------------------------------------------------

Machine::Machine(MachineConfig cfg, isa::Program prog)
    : cfg_(std::move(cfg)),
      prog_(std::move(prog)),
      topo_{cfg_.nodes, cfg_.spes_per_node},
      layout_{cfg_.spes_per_node, cfg_.nodes > 1},
      mem_(cfg_.memory) {
    DTA_SIM_REQUIRE(cfg_.nodes > 0 && cfg_.spes_per_node > 0,
                    "machine needs at least one node and one SPE");
    isa::validate_program(prog_);
    // FALLOC requests carry the code id in 16 wire bits (the upper bits of
    // the word carry the parent thread uid — see sched::pack_carried_uid).
    DTA_SIM_REQUIRE(prog_.codes.size() <= 0x10000,
                    "programs with more than 65536 thread codes are not "
                    "representable in the FALLOC wire format");
    if (cfg_.collect_events) {
        // Thread uids ride in the upper 48 bits of existing scheduler
        // message words (see sched::pack_carried_uid), which requires the
        // uid's PE half to fit 16 bits while tracing is on.  Checked here —
        // before any PE (and its local store) is allocated — so an
        // out-of-range config fails fast instead of first committing
        // gigabytes of local-store memory.
        DTA_SIM_REQUIRE(cfg_.total_pes() <= 0xffff,
                        "event collection needs total PEs <= 65535 (thread "
                        "uids pack the PE index into 16 wire bits)");
    }
    fast_forward_ =
        cfg_.fast_forward && std::getenv("DTA_NO_FASTFORWARD") == nullptr;
    use_wheel_ = cfg_.use_wheel && std::getenv("DTA_NO_WHEEL") == nullptr;

    // Resolve the host-thread request into a shard count: one shard is a
    // whole node (its DSE, PEs, MFCs, local stores and router), so the
    // useful parallelism is capped at the node count; shards get contiguous
    // node ranges so the intra-node fabric and most ring edges stay
    // thread-local.  shard_count_ == 1 selects the single-threaded
    // reference loop (bit-identical results either way).
    std::uint32_t requested = cfg_.host_threads == 0
                                  ? std::thread::hardware_concurrency()
                                  : cfg_.host_threads;
    if (requested == 0) {
        requested = 1;
    }
    shard_count_ = std::min<std::uint32_t>(requested, cfg_.nodes);
    node_shard_.resize(cfg_.nodes, 0);
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
        for (std::uint16_t n = first_node_of(s); n < first_node_of(s + 1);
             ++n) {
            node_shard_[n] = static_cast<std::uint16_t>(s);
        }
    }
    if (shard_count_ > 1) {
        // Shard-local sinks, sized up front: components keep pointers into
        // these for the machine's lifetime.
        shard_metrics_.resize(shard_count_);
        shard_spans_.resize(shard_count_);
        shard_dma_spans_.resize(shard_count_);
        shard_gauges_.resize(shard_count_);
        shard_events_.resize(shard_count_);
    }

    // Containers that components keep pointers into are sized up front so
    // the port bindings below stay valid.
    fabrics_.reserve(cfg_.nodes);
    dses_.reserve(cfg_.nodes);
    for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
        fabrics_.emplace_back(cfg_.noc, layout_.endpoint_count());
        fabrics_.back().set_name("noc" + std::to_string(n));
        dses_.emplace_back(topo_, n, cfg_.lse.frames,
                           cfg_.lse.virtual_frames);
    }
    if (cfg_.nodes > 1) {
        links_.reserve(cfg_.nodes);
        for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
            links_.emplace_back(cfg_.link);
            links_.back().set_name("link" + std::to_string(n));
        }
    }
    pes_.reserve(cfg_.total_pes());
    for (sim::GlobalPeId id = 0; id < cfg_.total_pes(); ++id) {
        pes_.push_back(std::make_unique<Pe>(cfg_, topo_, id, prog_, logger_));
        // Parking is the PE's own cheap idle shortcut; under the wheel the
        // scheduler makes it moot (a parked PE simply is not visited), but
        // degraded dense stretches still take the parked fast path.
        pes_.back()->set_parking(fast_forward_ || use_wheel_);
        if (cfg_.capture_spans) {
            // Sharded machines write spans into shard-local vectors (no
            // cross-thread sharing); run_sharded() merges them back into
            // spans_ in the single-threaded push order.
            pes_.back()->set_span_sink(
                shard_count_ > 1
                    ? &shard_spans_[node_shard_[id / cfg_.spes_per_node]]
                    : &spans_);
        }
    }
    memif_ = std::make_unique<MemInterface>(mem_);
    routers_.reserve(cfg_.nodes);
    for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
        std::vector<Pe*> local;
        local.reserve(cfg_.spes_per_node);
        for (std::uint16_t l = 0; l < cfg_.spes_per_node; ++l) {
            local.push_back(pes_[topo_.global_pe(n, l)].get());
        }
        routers_.push_back(std::make_unique<NodeRouter>(
            n, cfg_.nodes, layout_, fabrics_[n], dses_[n], std::move(local),
            n == kMemoryNode ? memif_.get() : nullptr,
            cfg_.nodes > 1 ? &links_[n] : nullptr));
    }

    // Wiring, declared once: fabric endpoints deliver straight into the
    // owning component's rx port; ring links deliver into the next node's
    // router.
    for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
        noc::Interconnect& fab = fabrics_[n];
        for (std::uint16_t l = 0; l < cfg_.spes_per_node; ++l) {
            fab.bind_endpoint(layout_.spe_ep(l),
                              &pes_[topo_.global_pe(n, l)]->rx_port());
        }
        fab.bind_endpoint(layout_.dse_ep(), &dses_[n].rx_port());
        if (n == kMemoryNode) {
            fab.bind_endpoint(layout_.mem_ep(), &memif_->rx_port());
        }
        if (cfg_.nodes > 1) {
            fab.bind_endpoint(layout_.bridge_ep(),
                              &routers_[n]->bridge_out_port());
            routers_[n]->set_forward_to(
                &routers_[(n + 1) % cfg_.nodes]->arrivals_port());
        }
    }

    // Scheduler list, in the seed's dependency order: fabric maturation
    // first, then the consumers of its deliveries (DSEs, memory interface,
    // PEs), then the per-node injection engines.  Routers run in node
    // order so a link delivery to a higher-numbered node is forwarded the
    // same cycle, exactly as the seed's injection_phase did.
    components_.reserve(2 * static_cast<std::size_t>(cfg_.nodes) + 1 +
                        pes_.size() + routers_.size());
    for (auto& fab : fabrics_) {
        components_.push_back(&fab);
    }
    for (auto& dse : dses_) {
        components_.push_back(&dse);
    }
    components_.push_back(memif_.get());
    for (auto& pe : pes_) {
        components_.push_back(pe.get());
    }
    for (auto& router : routers_) {
        components_.push_back(router.get());
    }

    if (cfg_.collect_events) {
        // Each emitter writes into its owning shard's private log (the
        // whole machine shares events_ in single-threaded mode);
        // run_sharded() concatenates and canonicalizes at the end.  Router
        // ordinals live above the PE id range so the two never collide.
        for (sim::GlobalPeId id = 0; id < cfg_.total_pes(); ++id) {
            sim::EventLog& log =
                shard_count_ > 1
                    ? shard_events_[node_shard_[id / cfg_.spes_per_node]]
                    : events_;
            pes_[id]->attach_events(&log);
        }
        for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
            sim::EventLog& log =
                shard_count_ > 1 ? shard_events_[node_shard_[n]] : events_;
            routers_[n]->attach_events(&log, cfg_.total_pes() + n);
        }
    }

    if (cfg_.collect_metrics) {
        DTA_SIM_REQUIRE(cfg_.metrics_sample_interval > 0,
                        "metrics_sample_interval must be non-zero");
        if (shard_count_ > 1) {
            // Each shard gets a private registry over its own components;
            // run_sharded() merges them into metrics_ (counters add,
            // histograms merge, gauges sum point-wise — all
            // order-independent, so the merged registry is bit-identical
            // to one shared registry).
            for (std::uint32_t s = 0; s < shard_count_; ++s) {
                sim::MetricsRegistry& reg = shard_metrics_[s];
                ShardGauges& g = shard_gauges_[s];
                reg.enable();
                for (std::uint16_t n = first_node_of(s);
                     n < first_node_of(s + 1); ++n) {
                    for (std::uint16_t l = 0; l < cfg_.spes_per_node; ++l) {
                        pes_[topo_.global_pe(n, l)]->attach_metrics(
                            reg, &shard_dma_spans_[s]);
                    }
                    fabrics_[n].attach_metrics(reg);
                    g.noc_pending.push_back(
                        reg.gauge("noc" + std::to_string(n) + ".pending"));
                    dses_[n].attach_metrics(reg);
                }
                g.dma_cmds = reg.gauge("dma.commands_in_flight");
                g.dma_lines = reg.gauge("dma.lines_in_flight");
                if (node_shard_[kMemoryNode] == s) {
                    g.mem_queue = reg.gauge("mem.queue_depth");
                }
            }
        } else {
            metrics_.enable();
            for (auto& pe : pes_) {
                pe->attach_metrics(metrics_, &dma_spans_);
            }
            g_noc_pending_.reserve(fabrics_.size());
            for (std::size_t n = 0; n < fabrics_.size(); ++n) {
                fabrics_[n].attach_metrics(metrics_);
                g_noc_pending_.push_back(
                    metrics_.gauge("noc" + std::to_string(n) + ".pending"));
            }
            for (auto& dse : dses_) {
                dse.attach_metrics(metrics_);
            }
            g_dma_cmds_ = metrics_.gauge("dma.commands_in_flight");
            g_dma_lines_ = metrics_.gauge("dma.lines_in_flight");
            g_mem_queue_ = metrics_.gauge("mem.queue_depth");
        }
    }

    if (cfg_.audit.enabled) {
        audit_interval_ = cfg_.audit.effective_interval();
        // The machine-wide auditor carries every per-component check plus
        // the final quiescence checks; the single-threaded loop sweeps it
        // at audit_interval_, and both loops run it once more at the end.
        register_audit_checks(auditor_, 0, cfg_.nodes);
        register_final_checks();
        if (shard_count_ > 1) {
            // Mid-run each shard audits only its own components (a check
            // must not read another shard's state from this thread); the
            // machine-wide pass runs after the join.
            shard_auditors_.resize(shard_count_);
            for (std::uint32_t s = 0; s < shard_count_; ++s) {
                register_audit_checks(shard_auditors_[s], first_node_of(s),
                                      first_node_of(s + 1));
            }
        }
    }

    if (cfg_.telemetry.enabled) {
        telemetry_ = std::make_unique<sim::TelemetrySampler>(cfg_.telemetry);
        telemetry_->set_stall_info([this](sim::TelemetryStall& s) {
            s.components = non_quiescent_names(s.cycle);
            if (!last_ckpt_path_.empty()) {
                s.replay = replay_hint_ + " --restore " + last_ckpt_path_;
            }
        });
    }

    if (cfg_.profile) {
        // One buffer per shard, sized once: shards, links and routers keep
        // pointers into prof_ for the machine's lifetime.
        prof_.resize(shard_count_);
        if (shard_count_ == 1) {
            prof_[0].reset(components_.size());
        }
    }

    if (shard_count_ > 1) {
        // Ring edges that cross a shard boundary exchange packets through
        // SPSC channels instead of a direct port push.  Capacity covers the
        // worst burst a free-running sender can stage before the receiver's
        // next drain (a handful of epochs of back-to-back serialisations);
        // overflow is a wiring bug, not backpressure, and trips a check.
        const std::size_t cap =
            static_cast<std::size_t>(4 * epoch_length() + 64);
        for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
            const auto m = static_cast<std::uint16_t>((n + 1) % cfg_.nodes);
            if (node_shard_[n] == node_shard_[m]) {
                continue;
            }
            channels_.push_back(
                std::make_unique<sim::SpscChannel<noc::Packet>>(cap));
            // The wrap edge (receiver node < sender node) drains one cycle
            // later than the stamped delivery: in the single-threaded
            // schedule routers tick in node order, so a forward-edge
            // delivery is forwarded the same cycle but a wrap-edge one only
            // on the next (see docs/ARCHITECTURE.md).
            links_[n].attach_channel(channels_.back().get(), m < n ? 1 : 0);
            routers_[m]->set_inbound_channel(channels_.back().get());
            if (cfg_.profile) {
                // Serialisation is charged to the sending shard (the link
                // ticks inside its node's router), draining to the
                // receiving one; both sites sit inside a component tick and
                // are subtracted from it via the orphan-child mechanism.
                links_[n].set_prof(&prof_[node_shard_[n]]);
                routers_[m]->set_prof(&prof_[node_shard_[m]]);
            }
        }
        build_shards();
    }

    if (use_wheel_) {
        // Event-driven core: one scheduler per run loop.  When the wheel is
        // off (--no-wheel / DTA_NO_WHEEL) no waker is ever bound, so the
        // dense oracle pays nothing and behaves exactly as before.
        if (shard_count_ > 1) {
            // Each inbound cross-shard channel re-arms its consuming router
            // at the entry of every epoch window (Shard::run_until); map
            // each channel to that router's shard-local scheduler index, in
            // the same edge order build_shards used.
            std::vector<std::vector<std::uint32_t>> consumers(shard_count_);
            for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
                const auto m = static_cast<std::uint16_t>((n + 1) % cfg_.nodes);
                if (node_shard_[n] == node_shard_[m]) {
                    continue;
                }
                const std::uint16_t s = node_shard_[m];
                const auto& comps = shards_[s]->components();
                std::uint32_t idx = 0;
                while (idx < comps.size() && comps[idx] != routers_[m].get()) {
                    ++idx;
                }
                DTA_CHECK_MSG(idx < comps.size(),
                              "inbound channel consumer not in its shard");
                consumers[s].push_back(idx);
            }
            for (std::uint32_t s = 0; s < shard_count_; ++s) {
                shards_[s]->enable_wheel(std::move(consumers[s]));
                attach_wakers(*shards_[s]->wheel(), shards_[s]->components(),
                              first_node_of(s), first_node_of(s + 1));
            }
        } else {
            wheel_.attach(components_);
            if (cfg_.profile) {
                wheel_.set_prof(&prof_[0]);
            }
            attach_wakers(wheel_, components_, 0, cfg_.nodes);
        }
    }
}

void Machine::attach_wakers(sim::WheelScheduler& sched,
                            const std::vector<sim::Component*>& comps,
                            std::uint16_t node_lo, std::uint16_t node_hi) {
    const auto index_of = [&comps](const sim::Component* c) {
        for (std::uint32_t i = 0; i < comps.size(); ++i) {
            if (comps[i] == c) {
                return i;
            }
        }
        DTA_CHECK_MSG(false, "wake target not on this scheduler's list");
        return 0u;  // unreachable
    };
    // Every queue a component drains wakes that component when written; the
    // scheduler's dense-order rule decides whether the wake joins the
    // producer's cycle (producer index below consumer index — the dense
    // loop would tick the consumer later the same cycle) or the next one.
    for (std::uint16_t n = node_lo; n < node_hi; ++n) {
        const std::uint32_t router_idx = index_of(routers_[n].get());
        fabrics_[n].set_waker(&sched, index_of(&fabrics_[n]));
        dses_[n].rx_port().set_waker(&sched, index_of(&dses_[n]));
        // Pull-model outboxes: the router drains them, so the router is the
        // component a push must re-arm.
        dses_[n].outbox_port().set_waker(&sched, router_idx);
        routers_[n]->arrivals_port().set_waker(&sched, router_idx);
        routers_[n]->bridge_out_port().set_waker(&sched, router_idx);
        for (std::uint16_t l = 0; l < cfg_.spes_per_node; ++l) {
            Pe& pe = *pes_[topo_.global_pe(n, l)];
            pe.rx_port().set_waker(&sched, index_of(&pe));
            pe.outgoing_port().set_waker(&sched, router_idx);
        }
        if (n == kMemoryNode) {
            memif_->rx_port().set_waker(&sched, index_of(memif_.get()));
            memif_->tx_port().set_waker(&sched, router_idx);
        }
    }
}

void Machine::build_shards() {
    // Per-shard inbound channel lists, in the same edge order the channels
    // were created.
    std::vector<std::vector<sim::ChannelBase*>> inbound(shard_count_);
    std::size_t ci = 0;
    for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
        const auto m = static_cast<std::uint16_t>((n + 1) % cfg_.nodes);
        if (node_shard_[n] == node_shard_[m]) {
            continue;
        }
        inbound[node_shard_[m]].push_back(channels_[ci++].get());
    }
    shards_.reserve(shard_count_);
    for (std::uint32_t s = 0; s < shard_count_; ++s) {
        const std::uint16_t lo = first_node_of(s);
        const std::uint16_t hi = first_node_of(s + 1);
        const std::uint32_t pe_lo =
            static_cast<std::uint32_t>(lo) * cfg_.spes_per_node;
        const std::uint32_t pe_hi =
            static_cast<std::uint32_t>(hi) * cfg_.spes_per_node;
        // Shard-local scheduler list in the same relative order as the
        // global components_ list (fabrics, DSEs, memif, PEs, routers).
        std::vector<sim::Component*> comps;
        for (std::uint16_t n = lo; n < hi; ++n) {
            comps.push_back(&fabrics_[n]);
        }
        for (std::uint16_t n = lo; n < hi; ++n) {
            comps.push_back(&dses_[n]);
        }
        if (node_shard_[kMemoryNode] == s) {
            comps.push_back(memif_.get());
        }
        for (std::uint32_t id = pe_lo; id < pe_hi; ++id) {
            comps.push_back(pes_[id].get());
        }
        for (std::uint16_t n = lo; n < hi; ++n) {
            comps.push_back(routers_[n].get());
        }
        sim::Shard::Hooks hooks;
        hooks.fast_forward = fast_forward_;
        if (cfg_.profile) {
            prof_[s].reset(comps.size());
            hooks.prof = &prof_[s];
        }
        hooks.fingerprint = [this, s, lo, hi, pe_lo, pe_hi] {
            std::uint64_t fp = 0;
            if (node_shard_[kMemoryNode] == s) {
                fp += mem_.reads_served() + mem_.writes_served();
            }
            for (std::uint16_t n = lo; n < hi; ++n) {
                fp += fabrics_[n].stats().packets_delivered;
            }
            for (std::uint32_t id = pe_lo; id < pe_hi; ++id) {
                fp += pes_[id]->issue_slots_used() +
                      pes_[id]->lse().stats().dispatches;
            }
            return fp;
        };
        if (cfg_.collect_metrics) {
            hooks.sample = [this, s](sim::Cycle now) {
                sample_shard_gauges(s, now);
            };
            hooks.sample_interval = cfg_.metrics_sample_interval;
        }
        if (cfg_.audit.enabled) {
            hooks.audit = [this, s](sim::Cycle now) {
                shard_auditors_[s].run(now);
            };
            hooks.audit_interval = audit_interval_;
        }
        if (s == 0) {
            // Shard 0 is driven by the calling thread; its epoch-entry hook
            // carries the user-visible progress heartbeat (scoped to shard
            // 0's PEs — cross-shard state is off limits mid-run).
            hooks.progress = [this, pe_lo, pe_hi](sim::Cycle now) {
                report_progress(now, pe_lo, pe_hi);
            };
        }
        shards_.push_back(std::make_unique<sim::Shard>(
            "shard" + std::to_string(s), std::move(comps),
            std::move(inbound[s]), std::move(hooks)));
    }
}

void Machine::register_audit_checks(sim::Auditor& a, std::uint16_t node_lo,
                                    std::uint16_t node_hi) {
    const std::uint32_t frames = cfg_.lse.frames;
    const bool vf = cfg_.lse.virtual_frames;
    for (std::uint16_t n = node_lo; n < node_hi; ++n) {
        noc::Interconnect* fab = &fabrics_[n];
        a.add(fab->name(),
              [fab](const sim::AuditCtx& ctx) { fab->audit(ctx); });
        // DSE frame books: the conservative message-based view can lag the
        // LSEs but must never exceed the physical supply while the DSE is
        // the only granter (with virtual frames it can run ahead, because
        // grants at free == 0 skip the decrement).
        const sched::Dse* dse = &dses_[n];
        const std::uint16_t spes = cfg_.spes_per_node;
        a.add(dse->name(),
              [dse, spes, frames, vf](const sim::AuditCtx& ctx) {
                  for (std::uint16_t l = 0; l < spes; ++l) {
                      if (!vf && dse->free_frames(l) > frames) {
                          ctx.fail("frame-accounting",
                                   "PE " + std::to_string(l) + " shows " +
                                       std::to_string(dse->free_frames(l)) +
                                       " free frames, over the supply of " +
                                       std::to_string(frames) +
                                       " (double-free of a frame)");
                      }
                  }
              });
        for (std::uint16_t l = 0; l < cfg_.spes_per_node; ++l) {
            const sim::GlobalPeId id = topo_.global_pe(n, l);
            Pe* pe = pes_[id].get();
            a.add("pe" + std::to_string(id) + "/lse",
                  [pe](const sim::AuditCtx& ctx) { pe->lse().audit(ctx); });
            a.add("pe" + std::to_string(id) + "/mfc",
                  [pe](const sim::AuditCtx& ctx) { pe->mfc().audit(ctx); });
        }
    }
}

void Machine::register_final_checks() {
    auditor_.add_final("machine", [this](const sim::AuditCtx& ctx) {
        // Frame supply: at quiescence every frame is back with its DSE.
        // With virtual frames the count may exceed the supply (grants taken
        // at free == 0 skip the decrement) but never undershoot it.
        for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
            for (std::uint16_t l = 0; l < cfg_.spes_per_node; ++l) {
                const std::uint32_t free_frames = dses_[n].free_frames(l);
                const bool bad = cfg_.lse.virtual_frames
                                     ? free_frames < cfg_.lse.frames
                                     : free_frames != cfg_.lse.frames;
                if (bad) {
                    ctx.fail("frame-accounting",
                             "dse" + std::to_string(n) + " ended with " +
                                 std::to_string(free_frames) +
                                 " free frames on local PE " +
                                 std::to_string(l) + " (supply is " +
                                 std::to_string(cfg_.lse.frames) +
                                 "): a frame leaked or double-freed");
                }
            }
        }
        // SC conservation across the NoC: every remote store emitted by
        // some LSE must have been received by another.
        std::uint64_t sent = 0;
        std::uint64_t received = 0;
        for (const auto& pe : pes_) {
            sent += pe->lse().stats().remote_stores_out;
            received += pe->lse().stats().remote_stores_in;
        }
        if (sent != received) {
            ctx.fail("sc-conservation",
                     std::to_string(sent) + " remote stores were sent but " +
                         std::to_string(received) + " arrived");
        }
        // Drained engines, fabrics and memory: quiescence said so; the
        // auditor does not take quiescent()'s word for it.
        for (std::size_t id = 0; id < pes_.size(); ++id) {
            const auto& mfc = pes_[id]->mfc();
            if (mfc.lines_in_flight() != 0 || mfc.commands_in_flight() != 0) {
                ctx.fail("line-accounting",
                         "pe" + std::to_string(id) + "'s MFC ended with " +
                             std::to_string(mfc.commands_in_flight()) +
                             " commands / " +
                             std::to_string(mfc.lines_in_flight()) +
                             " lines still in flight");
            }
        }
        for (const auto& fab : fabrics_) {
            if (fab.pending() != 0) {
                ctx.fail("packet-conservation",
                         fab.name() + " ended with " +
                             std::to_string(fab.pending()) +
                             " packets still in the fabric");
            }
        }
        if (mem_.queue_depth() != 0) {
            ctx.fail("packet-conservation",
                     "main memory ended with " +
                         std::to_string(mem_.queue_depth()) +
                         " requests still queued");
        }
    });
}

void Machine::launch(std::span<const std::uint64_t> args) {
    DTA_SIM_REQUIRE(!launched_, "launch() called twice");
    const isa::ThreadCode& entry = prog_.at(prog_.entry);
    DTA_SIM_REQUIRE(args.size() <= cfg_.lse.frame_words,
                    "entry arguments do not fit in a frame");
    Pe& pe0 = *pes_[0];
    const std::uint32_t slot = pe0.lse().bootstrap_frame(prog_.entry, 0);
    for (std::size_t i = 0; i < args.size(); ++i) {
        pe0.lse().write_frame_word(slot, static_cast<std::uint32_t>(i),
                                   args[i]);
    }
    dses_[0].steal_frame(0);
    launched_ = true;
    logger_.log(sim::LogLevel::kInfo, 0, "machine",
                "launched entry thread '" + entry.name + "' with " +
                    std::to_string(args.size()) + " args");
}

// ---------------------------------------------------------------------------
// Checkpoint / restore
// ---------------------------------------------------------------------------

namespace {

std::string hex64(std::uint64_t v) {
    char buf[19];
    std::snprintf(buf, sizeof(buf), "0x%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

/// Program digest element: every field that affects execution (annotations
/// only steer the offline prefetch pass, so they stay out).
void save_instruction(sim::StateSink& s, const isa::Instruction& ins) {
    s.u8(static_cast<std::uint8_t>(ins.op));
    s.u8(ins.rd);
    s.u8(ins.ra);
    s.u8(ins.rb);
    s.i64(ins.imm);
    s.u8(static_cast<std::uint8_t>(ins.block));
    s.u16(static_cast<std::uint16_t>(ins.region));
    s.flag(ins.dma.has_value());
    if (ins.dma.has_value()) {
        s.u8(ins.dma->region);
        s.u32(ins.dma->ls_offset);
        s.u32(ins.dma->bytes);
        s.u32(ins.dma->stride);
        s.u32(ins.dma->elem_bytes);
    }
}

void save_thread_span(sim::StateSink& s, const ThreadSpan& t) {
    s.u32(t.pe);
    s.u64(t.begin);
    s.u64(t.end);
    s.u32(t.code);
    s.u32(t.slot);
    s.flag(t.resumed);
}

void load_thread_span(sim::StateSource& s, ThreadSpan& t) {
    t.pe = s.u32();
    t.begin = s.u64();
    t.end = s.u64();
    t.code = s.u32();
    t.slot = s.u32();
    t.resumed = s.flag();
}

void save_dma_span(sim::StateSink& s, const dma::DmaSpan& d) {
    s.u32(d.pe);
    s.u32(d.tag);
    s.u8(static_cast<std::uint8_t>(d.op));
    s.u32(d.bytes);
    s.u64(d.begin);
    s.u64(d.end);
}

void load_dma_span(sim::StateSource& s, dma::DmaSpan& d) {
    d.pe = s.u32();
    d.tag = s.u32();
    d.op = static_cast<dma::MfcOp>(s.u8());
    d.bytes = s.u32();
    d.begin = s.u64();
    d.end = s.u64();
}

}  // namespace

void structural_config_echo(sim::StateSink& s, const MachineConfig& cfg,
                            std::uint32_t shard_count,
                            const isa::Program& prog) {
    // Structural knobs only: everything that shapes what the machine *is*
    // (and therefore the snapshot's section layout and semantics).  Observer
    // knobs — audit, log_level, profile, fast_forward, use_wheel — are
    // deliberately absent so a snapshot can be replayed with different
    // instrumentation (the time-travel use case).  Note collect_metrics /
    // collect_events / capture_spans ARE structural: they decide whether
    // the corresponding state exists at all.
    s.u16(cfg.nodes);
    s.u16(cfg.spes_per_node);
    s.u64(cfg.memory.size_bytes);
    s.u32(cfg.memory.latency);
    s.u32(cfg.memory.ports);
    s.u32(cfg.memory.bank_busy);
    s.u32(cfg.memory.max_request_bytes);
    s.u32(cfg.local_store.size_bytes);
    s.u32(cfg.local_store.latency);
    s.u32(cfg.local_store.ports);
    s.u32(cfg.local_store.max_request_bytes);
    s.u32(cfg.noc.num_buses);
    s.u32(cfg.noc.bytes_per_cycle);
    s.u32(cfg.noc.hop_latency);
    s.u32(cfg.noc.inject_queue_depth);
    s.u32(cfg.link.latency);
    s.u32(cfg.link.bytes_per_cycle);
    s.u32(cfg.link.queue_depth);
    s.u32(cfg.mfc.queue_depth);
    s.u32(cfg.mfc.command_latency);
    s.u32(cfg.mfc.line_bytes);
    s.u32(cfg.mfc.max_outstanding_lines);
    s.u32(cfg.lse.frames);
    s.u32(cfg.lse.frame_words);
    s.u32(cfg.lse.dispatch_latency);
    s.u32(cfg.lse.frame_area_base);
    s.u32(cfg.lse.staging_base);
    s.u32(cfg.lse.staging_bytes_per_frame);
    s.flag(cfg.lse.virtual_frames);
    s.u32(cfg.lse.max_virtual_frames);
    s.u32(cfg.spu.alu_latency);
    s.u32(cfg.spu.mul_latency);
    s.u32(cfg.spu.div_latency);
    s.u32(cfg.spu.branch_penalty);
    s.u32(cfg.spu.thread_start_overhead);
    s.u32(cfg.spu.dma_program_cycles);
    s.u32(cfg.spu.outbox_depth);
    s.u32(cfg.spu.max_outstanding_reads);
    s.flag(cfg.spu.non_blocking_dma);
    s.flag(cfg.spu.count_dma_idle_as_prefetch);
    s.u64(cfg.max_cycles);
    s.u64(cfg.no_progress_limit);
    s.flag(cfg.capture_spans);
    s.flag(cfg.collect_metrics);
    s.u32(cfg.metrics_sample_interval);
    s.flag(cfg.collect_events);
    // The *resolved* shard count, not the raw host_threads request:
    // host_threads == 0 resolves per host, and only the resolved count
    // changes the schedule.
    s.u32(shard_count);
    // Program digest: a snapshot must never be resumed under a different
    // program (thread state embeds instruction pointers).
    s.str(prog.name);
    s.u32(prog.entry);
    s.u64(static_cast<std::uint64_t>(prog.codes.size()));
    for (const isa::ThreadCode& tc : prog.codes) {
        s.str(tc.name);
        s.u32(tc.num_inputs);
        s.u32(tc.pl_begin);
        s.u32(tc.ex_begin);
        s.u32(tc.ps_begin);
        sim::save_seq(s, tc.code, save_instruction);
    }
}

std::uint64_t structural_fingerprint(const MachineConfig& cfg,
                                     std::uint32_t shard_count,
                                     const isa::Program& prog) {
    sim::StateSink s;
    structural_config_echo(s, cfg, shard_count, prog);
    return sim::fnv1a64(s.data().data(), s.size());
}

void Machine::config_echo(sim::StateSink& s) const {
    structural_config_echo(s, cfg_, shard_count_, prog_);
}

std::uint64_t Machine::config_fingerprint() const {
    sim::StateSink s;
    config_echo(s);
    return sim::fnv1a64(s.data().data(), s.size());
}

void Machine::save_snapshot_file(sim::Cycle cycle,
                                 const std::string& path) const {
    sim::SnapshotWriter w(config_fingerprint(), cycle);
    config_echo(w.section("config"));
    w.section("machine").u64(skipped_);
    mem_.save_state(w.section("mem"));
    for (const sim::Component* c : components_) {
        c->save_state(w.section(c->name()));
    }
    for (const noc::Link& link : links_) {
        link.save_state(w.section(link.name()));
    }
    for (std::size_t k = 0; k < channels_.size(); ++k) {
        channels_[k]->save_state(w.section("chan" + std::to_string(k)),
                                 noc::save_packet);
    }
    if (shard_count_ > 1) {
        for (std::uint32_t sh = 0; sh < shard_count_; ++sh) {
            sim::StateSink& s = w.section("shard" + std::to_string(sh));
            s.u64(shards_[sh]->cycles_ticked());
            s.u64(shards_[sh]->cycles_skipped());
            sim::StateSink& sp = w.section("spans" + std::to_string(sh));
            sim::save_seq(sp, shard_spans_[sh], save_thread_span);
            sim::save_seq(sp, shard_dma_spans_[sh], save_dma_span);
            shard_events_[sh].save_state(
                w.section("events" + std::to_string(sh)));
            shard_metrics_[sh].save_state(
                w.section("metrics" + std::to_string(sh)));
        }
    } else {
        sim::StateSink& sp = w.section("spans");
        sim::save_seq(sp, spans_, save_thread_span);
        sim::save_seq(sp, dma_spans_, save_dma_span);
        events_.save_state(w.section("events"));
        metrics_.save_state(w.section("metrics"));
    }
    w.write(path);
}

void Machine::write_snapshot(sim::Cycle cycle) {
    if (shards_.empty() && wheel_.started()) {
        // Under the wheel, sleepers lag behind on skip bookkeeping; settle
        // it so the snapshot is the exact dense-loop state at the cut.
        // Wheel entries themselves are untouched (and never serialised —
        // restore re-arms from component horizons).
        wheel_.catch_up(cycle);
    }
    const std::string path =
        checkpoint_prefix_ + ".c" + std::to_string(cycle) + ".dtasnap";
    save_snapshot_file(cycle, path);
    last_ckpt_cycle_ = cycle;
    last_ckpt_path_ = path;
    logger_.log(sim::LogLevel::kInfo, cycle, "machine",
                "checkpoint written to " + path);
}

void Machine::checkpoint(const std::string& path) {
    DTA_SIM_REQUIRE(launched_,
                    "checkpoint() needs a launched (or restored) machine");
    DTA_SIM_REQUIRE(!ran_,
                    "checkpoint() after run(); use set_checkpoints() for "
                    "mid-run snapshots");
    save_snapshot_file(restore_cycle_, path);
}

void Machine::set_checkpoints(sim::Cycle every, std::string prefix) {
    DTA_SIM_REQUIRE(every == 0 || !prefix.empty(),
                    "periodic checkpoints need a path prefix");
    checkpoint_every_ = every;
    checkpoint_prefix_ = std::move(prefix);
}

void Machine::restore(const std::string& path) {
    DTA_SIM_REQUIRE(!launched_ && !ran_,
                    "restore() must target a freshly built machine (before "
                    "launch()/run())");
    const sim::SnapshotReader reader(path);
    const std::uint64_t mine = config_fingerprint();
    if (reader.config_fingerprint() != mine) {
        DTA_SIM_ERROR("snapshot '" + path + "' (format v" +
                      std::to_string(reader.version()) +
                      ", config fingerprint " +
                      hex64(reader.config_fingerprint()) +
                      ") does not match this machine (config fingerprint " +
                      hex64(mine) +
                      "): it was taken on a different machine config or "
                      "program");
    }
    restore_cycle_ = reader.cycle();
    {
        sim::StateSource s = reader.section("machine");
        skipped_ = s.u64();
        s.finish();
    }
    {
        sim::StateSource s = reader.section("mem");
        mem_.load_state(s);
        s.finish();
    }
    for (sim::Component* c : components_) {
        sim::StateSource s = reader.section(c->name());
        c->load_state(s);
        s.finish();
    }
    for (noc::Link& link : links_) {
        sim::StateSource s = reader.section(link.name());
        link.load_state(s);
        s.finish();
    }
    for (std::size_t k = 0; k < channels_.size(); ++k) {
        sim::StateSource s = reader.section("chan" + std::to_string(k));
        channels_[k]->load_state(s, noc::load_packet);
        s.finish();
    }
    if (shard_count_ > 1) {
        for (std::uint32_t sh = 0; sh < shard_count_; ++sh) {
            sim::StateSource s =
                reader.section("shard" + std::to_string(sh));
            const sim::Cycle ticked = s.u64();
            const sim::Cycle skipped = s.u64();
            s.finish();
            shards_[sh]->restore_clock(restore_cycle_, ticked, skipped);
            sim::StateSource sp =
                reader.section("spans" + std::to_string(sh));
            sim::load_seq(sp, shard_spans_[sh], load_thread_span);
            sim::load_seq(sp, shard_dma_spans_[sh], load_dma_span);
            sp.finish();
            sim::StateSource ev =
                reader.section("events" + std::to_string(sh));
            shard_events_[sh].load_state(ev);
            ev.finish();
            sim::StateSource me =
                reader.section("metrics" + std::to_string(sh));
            shard_metrics_[sh].load_state(me);
            me.finish();
        }
    } else {
        sim::StateSource sp = reader.section("spans");
        sim::load_seq(sp, spans_, load_thread_span);
        sim::load_seq(sp, dma_spans_, load_dma_span);
        sp.finish();
        sim::StateSource ev = reader.section("events");
        events_.load_state(ev);
        ev.finish();
        sim::StateSource me = reader.section("metrics");
        metrics_.load_state(me);
        me.finish();
    }
    launched_ = true;
    logger_.log(sim::LogLevel::kInfo, restore_cycle_, "machine",
                "restored from " + path + " at cycle " +
                    std::to_string(restore_cycle_));
    if (cfg_.audit.enabled) {
        // The restored state must satisfy every machine invariant before a
        // single cycle runs; a snapshot that does not is rejected here, not
        // discovered as divergence later.
        auditor_.run(restore_cycle_);
    }
}

sim::Cycle Machine::next_cut(sim::Cycle now) const {
    sim::Cycle cut = sim::kCycleNever;
    if (checkpoint_every_ != 0) {
        cut = (now / checkpoint_every_ + 1) * checkpoint_every_;
    }
    if (stop_at_ > now) {
        cut = std::min(cut, stop_at_);
    }
    return cut;
}

RunResult Machine::stop_early(sim::Cycle cycle) {
    logger_.log(sim::LogLevel::kInfo, cycle, "machine",
                "stopped at cycle " + std::to_string(cycle) +
                    " (stop-at); machine not quiescent");
    if (shards_.empty() && wheel_.started()) {
        wheel_.catch_up(cycle);
    }
    events_.canonicalize();
    return gather(cycle);
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

namespace {

/// One link in a chained profiling timer: charge the span since the last
/// boundary (minus time already claimed by nested scopes) and advance the
/// boundary.  Chaining instead of per-segment RAII scopes leaves no
/// un-attributed gaps inside the run loop (see Shard::run_until).
inline void prof_charge(sim::ProfBuffer* pb, std::uint64_t& t,
                        std::uint32_t slot, sim::ProfPhase phase) {
    const std::uint64_t t2 = sim::prof_now_ns();
    pb->add(slot, phase, t2 - t - pb->take_orphan_child_ns());
    t = t2;
}

}  // namespace

void Machine::tick_cycle(sim::Cycle now, std::uint64_t& t) {
    sim::ProfBuffer* const pb = prof_.empty() ? nullptr : &prof_[0];
    if (pb == nullptr) {
        for (sim::Component* c : components_) {
            c->tick(now);
        }
    } else {
        for (std::size_t i = 0; i < components_.size(); ++i) {
            components_[i]->tick(now);
            prof_charge(pb, t, static_cast<std::uint32_t>(i + 1),
                        sim::ProfPhase::kTick);
        }
    }
    if (metrics_.enabled() && now % cfg_.metrics_sample_interval == 0) {
        sample_gauges(now);
        if (pb != nullptr) {
            prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                        sim::ProfPhase::kSample);
        }
    }
    if (telemetry_ != nullptr && now == telemetry_next_) {
        capture_telemetry(now);
        if (pb != nullptr) {
            prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                        sim::ProfPhase::kSample);
        }
    }
    if (audit_interval_ != 0 && now % audit_interval_ == 0) {
        auditor_.run(now);
        if (pb != nullptr) {
            prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                        sim::ProfPhase::kAudit);
        }
    }
}

void Machine::capture_telemetry(sim::Cycle now) {
    if (telemetry_ == nullptr) {
        return;
    }
    sim::TelemetryFrame f;
    f.cycle = now;
    for (const auto& pe : pes_) {
        f.pes_running += pe->spu_bound() ? 1u : 0u;
        f.threads_ready += pe->lse().ready_count();
        f.threads_waitdma += pe->lse().waitdma_count();
        f.frames_live +=
            pe->lse().live_frames() + pe->lse().virtual_frames_live();
        f.mfc_commands +=
            static_cast<std::uint32_t>(pe->mfc().commands_in_flight());
        f.dma_bytes += static_cast<std::uint64_t>(pe->mfc().lines_in_flight()) *
                       cfg_.mfc.line_bytes;
        f.instrs_retired += pe->instr_stats().total();
    }
    f.mem_queue = static_cast<std::uint32_t>(mem_.queue_depth());
    for (const auto& fab : fabrics_) {
        f.noc_pending += static_cast<std::uint32_t>(fab.pending());
    }
    f.activity_fp = fingerprint();
    telemetry_next_ = now + cfg_.telemetry.interval;
    // Host-side tail (NDJSON stream / Perfetto only; never the JSON report).
    f.host_ns = sim::prof_now_ns();
    if (!shards_.empty()) {
        for (const auto& s : shards_) {
            if (s->wheel() != nullptr && s->wheel()->started()) {
                f.wheel_armed += s->wheel()->armed();
                f.wheel_pops += s->wheel()->stats().pops;
            }
        }
    } else if (wheel_.started()) {
        f.wheel_armed = wheel_.armed();
        f.wheel_pops = wheel_.stats().pops;
    }
    telemetry_->record(f, check_quiescent());
}

void Machine::sample_gauges(sim::Cycle now) {
    std::int64_t cmds = 0;
    std::int64_t lines = 0;
    for (const auto& pe : pes_) {
        cmds += static_cast<std::int64_t>(pe->mfc().commands_in_flight());
        lines += static_cast<std::int64_t>(pe->mfc().lines_in_flight());
    }
    g_dma_cmds_->sample(now, cmds);
    g_dma_lines_->sample(now, lines);
    g_mem_queue_->sample(now, static_cast<std::int64_t>(mem_.queue_depth()));
    for (std::size_t n = 0; n < fabrics_.size(); ++n) {
        g_noc_pending_[n]->sample(
            now, static_cast<std::int64_t>(fabrics_[n].pending()));
    }
    if (!prof_.empty()) {
        // Cumulative phase totals at the gauge cadence: the host counter
        // tracks rendered next to the simulated Perfetto tracks.
        prof_[0].snapshot(now);
    }
    if (wheel_.started()) {
        wheel_.sample(now);
    }
}

bool Machine::check_quiescent() const {
    for (const sim::Component* c : components_) {
        if (!c->quiescent()) {
            return false;
        }
    }
    return true;
}

std::uint64_t Machine::fingerprint() const {
    std::uint64_t fp = mem_.reads_served() + mem_.writes_served();
    for (const auto& fab : fabrics_) {
        fp += fab.stats().packets_delivered;
    }
    for (const auto& pe : pes_) {
        fp += pe->issue_slots_used() + pe->lse().stats().dispatches;
    }
    return fp;
}

std::string Machine::non_quiescent_names(sim::Cycle now) const {
    // Each stuck component is tagged with its owning shard and the epoch
    // that shard's clock is in, so deadlock dumps from a sharded run say
    // which thread was holding what (single-threaded runs are all shard 0).
    const sim::Cycle epoch_len = epoch_length();
    std::string who;
    const auto append = [&who](const sim::Component* c, std::uint32_t shard,
                               sim::Cycle epoch) {
        if (c->quiescent()) {
            return;
        }
        if (!who.empty()) {
            who += ", ";
        }
        who += c->name() + " [shard " + std::to_string(shard) + ", epoch " +
               std::to_string(epoch) + "]";
    };
    if (!shards_.empty()) {
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            for (const sim::Component* c : shards_[s]->components()) {
                append(c, static_cast<std::uint32_t>(s),
                       shards_[s]->epoch_of(epoch_len));
            }
        }
    } else {
        for (const sim::Component* c : components_) {
            append(c, 0, now / epoch_len);
        }
    }
    return who;
}

void Machine::throw_deadlock(sim::Cycle now, sim::Cycle stalled,
                             bool idle_forever) const {
    std::uint64_t parked = 0;
    for (const auto& dse : dses_) {
        parked += dse.pending();
    }
    const std::string tail =
        " (stuck: " + non_quiescent_names(now) + "; " + std::to_string(parked) +
        " FALLOCs parked at DSEs; the program's live-thread "
        "peak likely exceeds the frame supply)";
    if (idle_forever) {
        DTA_SIM_ERROR("deadlock at cycle " + std::to_string(now) +
                      ": every component is idle forever yet the machine is "
                      "not quiescent" +
                      tail);
    }
    DTA_SIM_ERROR("deadlock: no progress for " + std::to_string(stalled) +
                  " cycles" + tail);
}

void Machine::fast_forward_span(sim::Cycle from, sim::Cycle to,
                                std::uint64_t& last_fp,
                                sim::Cycle& last_progress) {
    sim::ProfBuffer* const pb = prof_.empty() ? nullptr : &prof_[0];
    const sim::ProfScope prof(pb, sim::ProfBuffer::kShardSlot,
                              sim::ProfPhase::kFastforwardScan);
    for (sim::Component* c : components_) {
        c->skip(from, to);
    }
    skipped_ += to - from;
    // Replay the gauge samples the per-cycle loop would have taken.  No
    // component state changes on a skipped cycle (that is what the horizon
    // guarantees), so every sample in the span reads the current values.
    if (metrics_.enabled()) {
        const sim::Cycle step = cfg_.metrics_sample_interval;
        for (sim::Cycle c = ((from + step - 1) / step) * step; c < to;
             c += step) {
            const sim::ProfScope ps(pb, sim::ProfBuffer::kShardSlot,
                                    sim::ProfPhase::kSample);
            sample_gauges(c);
        }
    }
    // Telemetry frames follow the same replay rule: state is frozen across
    // the span, so each missed sample cycle reads the current values.
    if (telemetry_ != nullptr) {
        while (telemetry_next_ < to) {
            capture_telemetry(telemetry_next_);
        }
    }
    // Replay the deadlock checkpoints (cycles ending in 0xfff).  The
    // fingerprint is frozen across the span for the same reason.
    const std::uint64_t fp = fingerprint();
    for (sim::Cycle c = from | 0xfff; c < to; c += 0x1000) {
        if (fp != last_fp) {
            last_fp = fp;
            last_progress = c;
        } else if (c - last_progress > cfg_.no_progress_limit) {
            throw_deadlock(c, c - last_progress, false);
        }
    }
}

RunResult Machine::run() {
    DTA_SIM_REQUIRE(launched_, "run() before launch()");
    DTA_SIM_REQUIRE(!ran_, "run() called twice");
    ran_ = true;
    if (telemetry_ != nullptr) {
        // First owed frame: the first interval multiple at or after the
        // starting cycle (cycle 0 on a fresh run, mirroring `% == 0`).
        const sim::Cycle step = cfg_.telemetry.interval;
        telemetry_next_ = ((restore_cycle_ + step - 1) / step) * step;
    }
    if (shard_count_ > 1) {
        return run_sharded();
    }
    if (use_wheel_) {
        return run_wheel();
    }
    sim::ProfBuffer* const pb = prof_.empty() ? nullptr : &prof_[0];
    const std::uint64_t wall0 = pb != nullptr ? sim::prof_now_ns() : 0;
    // Chained timing boundary: starts at the wall-clock origin so the loop
    // has no un-attributed gaps (every span between boundaries is charged
    // to exactly one phase; nested scopes subtract as orphan child time).
    std::uint64_t t = wall0;
    sim::Cycle now = restore_cycle_;
    std::uint64_t last_fp = ~0ull;
    sim::Cycle last_progress = restore_cycle_;
    std::uint64_t prev_fp = ~0ull;  ///< gate: last cycle's fingerprint
    while (now < cfg_.max_cycles) {
        // Checkpoint/stop cuts land at the top of the iteration, before the
        // tick of `now`: all accounting covers exactly [start, now), which
        // is the state a restore resumes from.
        if (checkpoint_every_ != 0 && now != restore_cycle_ &&
            now % checkpoint_every_ == 0) {
            write_snapshot(now);
        }
        if (stop_at_ != 0 && now >= stop_at_) {
            if (pb != nullptr) {
                pb->set_wall_ns(sim::prof_now_ns() - wall0);
            }
            return stop_early(now);
        }
        tick_cycle(now, t);
        if (progress_interval_ != 0) {
            report_progress(now, 0, static_cast<std::uint32_t>(pes_.size()));
        }
        const bool quiet = check_quiescent();
        if (pb != nullptr) {
            prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                        sim::ProfPhase::kQuiescence);
        }
        if (quiet) {
            logger_.log(sim::LogLevel::kInfo, now, "machine",
                        "quiescent; simulation complete");
            if (cfg_.audit.enabled) {
                auditor_.run_final(now);
            }
            events_.canonicalize();
            if (pb != nullptr) {
                pb->set_wall_ns(sim::prof_now_ns() - wall0);
            }
            return gather(now + 1);
        }
        const std::uint64_t fp = fingerprint();
        // No-progress (deadlock) detection.  A live machine issues
        // instructions, delivers packets or completes memory accesses; if
        // the activity fingerprint freezes for longer than any
        // architectural latency, the run is stuck — typically FALLOCs
        // blocking a pipeline while every free-able frame needs that
        // pipeline to finish.
        if ((now & 0xfff) == 0xfff) {
            if (fp != last_fp) {
                last_fp = fp;
                last_progress = now;
            } else if (now - last_progress > cfg_.no_progress_limit) {
                throw_deadlock(now, now - last_progress, false);
            }
        }
        sim::Cycle next = now + 1;
        // Horizons are only worth consulting when the tick just taken made
        // no observable progress: a cycle that issued an instruction,
        // delivered a packet or retired a memory access is the middle of a
        // busy stretch, and some component would report now+1 anyway.  The
        // fingerprint is a dozen counter loads — far cheaper than asking
        // every component for its horizon.
        if (fast_forward_ && fp == prev_fp) {
            sim::Cycle h = sim::kIdleForever;
            for (const sim::Component* c : components_) {
                h = std::min(h, c->next_activity(now));
                if (h <= next) {
                    break;  // can't skip anything; stop asking
                }
            }
            if (h == sim::kIdleForever) {
                // Nothing in flight anywhere can ever change state again:
                // a certain deadlock the fingerprint check would only
                // confirm after no_progress_limit cycles.
                throw_deadlock(now, 0, true);
            }
            DTA_CHECK_MSG(h > now, "component horizon not in the future");
            h = std::min<sim::Cycle>(h, cfg_.max_cycles);
            // Land exactly on checkpoint/stop cuts (result-neutral: by the
            // horizon contract a skipped cycle equals a ticked one).
            h = std::min(h, next_cut(now));
            if (h > next) {
                fast_forward_span(next, h, last_fp, last_progress);
                next = h;
            }
        }
        prev_fp = fp;
        now = next;
        // The fingerprint, the horizon scan, and the loop tail all belong
        // to the idle-detection machinery; a fast-forward span inside (its
        // own scope) was already claimed and subtracts as orphan child
        // time.
        if (pb != nullptr) {
            prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                        sim::ProfPhase::kNextActivity);
        }
    }
    DTA_SIM_ERROR("simulation exceeded max_cycles (" +
                  std::to_string(cfg_.max_cycles) + ")");
}

RunResult Machine::run_wheel() {
    sim::ProfBuffer* const pb = prof_.empty() ? nullptr : &prof_[0];
    const std::uint64_t wall0 = pb != nullptr ? sim::prof_now_ns() : 0;
    std::uint64_t t = wall0;
    wheel_.start(restore_cycle_);
    sim::Cycle now = restore_cycle_;
    std::uint64_t last_fp = ~0ull;
    sim::Cycle last_progress = restore_cycle_;
    std::uint64_t prev_fp = ~0ull;  ///< fingerprint after the previous cycle
    while (now < cfg_.max_cycles) {
        if (checkpoint_every_ != 0 && now != restore_cycle_ &&
            now % checkpoint_every_ == 0) {
            write_snapshot(now);
        }
        if (stop_at_ != 0 && now >= stop_at_) {
            if (pb != nullptr) {
                pb->set_wall_ns(sim::prof_now_ns() - wall0);
            }
            return stop_early(now);
        }
        wheel_.run_cycle(now, pb, t);
        if (metrics_.enabled() && now % cfg_.metrics_sample_interval == 0) {
            sample_gauges(now);
            if (pb != nullptr) {
                prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                            sim::ProfPhase::kSample);
            }
        }
        if (telemetry_ != nullptr && now == telemetry_next_) {
            capture_telemetry(now);
            if (pb != nullptr) {
                prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                            sim::ProfPhase::kSample);
            }
        }
        if (audit_interval_ != 0 && now % audit_interval_ == 0) {
            auditor_.run(now);
            if (pb != nullptr) {
                prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                            sim::ProfPhase::kAudit);
            }
        }
        if (progress_interval_ != 0) {
            report_progress(now, 0, static_cast<std::uint32_t>(pes_.size()));
        }
        const bool quiet = check_quiescent();
        if (pb != nullptr) {
            prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                        sim::ProfPhase::kQuiescence);
        }
        if (quiet) {
            logger_.log(sim::LogLevel::kInfo, now, "machine",
                        "quiescent; simulation complete");
            {
                // Sleepers may still lag behind: apply their deferred skip
                // bookkeeping so breakdowns cover [0, now + 1) exactly.
                const sim::ProfScope ff(pb, sim::ProfBuffer::kShardSlot,
                                        sim::ProfPhase::kFastforwardScan);
                wheel_.catch_up(now + 1);
            }
            if (cfg_.audit.enabled) {
                auditor_.run_final(now);
            }
            events_.canonicalize();
            if (pb != nullptr) {
                pb->set_wall_ns(sim::prof_now_ns() - wall0);
            }
            return gather(now + 1);
        }
        const std::uint64_t fp = fingerprint();
        if ((now & 0xfff) == 0xfff) {
            if (fp != last_fp) {
                last_fp = fp;
                last_progress = now;
            } else if (now - last_progress > cfg_.no_progress_limit) {
                throw_deadlock(now, now - last_progress, false);
            }
        }
        if (!wheel_.dense_mode() && wheel_.idle()) {
            // Every horizon came back kIdleForever with the machine still
            // non-quiescent: certain deadlock.  The dense loop scans
            // horizons only once its fingerprint freezes, so it reports one
            // cycle later when the final tick still made progress — mirror
            // that for byte-identical failure text.
            throw_deadlock(fp == prev_fp ? now : now + 1, 0, true);
        }
        sim::Cycle next = wheel_.next_due(now);
        next = std::min<sim::Cycle>(next, cfg_.max_cycles);
        next = std::min(next, next_cut(now));
        if (next > now + 1) {
            // Inactive span [now + 1, next): no live wheel entry, so by the
            // horizon contract observable state is frozen.  Replay the side
            // effects the dense loop takes per cycle — gauge samples and
            // deadlock checkpoints — against that frozen state; component
            // skip() bookkeeping stays lazy (applied at each next visit).
            const sim::ProfScope ff(pb, sim::ProfBuffer::kShardSlot,
                                    sim::ProfPhase::kFastforwardScan);
            skipped_ += next - (now + 1);
            if (metrics_.enabled()) {
                const sim::Cycle step = cfg_.metrics_sample_interval;
                for (sim::Cycle c = ((now + 1 + step - 1) / step) * step;
                     c < next; c += step) {
                    const sim::ProfScope ps(pb, sim::ProfBuffer::kShardSlot,
                                            sim::ProfPhase::kSample);
                    sample_gauges(c);
                }
            }
            if (telemetry_ != nullptr) {
                while (telemetry_next_ < next) {
                    capture_telemetry(telemetry_next_);
                }
            }
            for (sim::Cycle c = (now + 1) | 0xfff; c < next; c += 0x1000) {
                if (fp != last_fp) {
                    last_fp = fp;
                    last_progress = c;
                } else if (c - last_progress > cfg_.no_progress_limit) {
                    throw_deadlock(c, c - last_progress, false);
                }
            }
        }
        prev_fp = fp;
        now = next;
        if (pb != nullptr) {
            prof_charge(pb, t, sim::ProfBuffer::kShardSlot,
                        sim::ProfPhase::kNextActivity);
        }
    }
    DTA_SIM_ERROR("simulation exceeded max_cycles (" +
                  std::to_string(cfg_.max_cycles) + ")");
}

void Machine::sample_shard_gauges(std::uint32_t shard, sim::Cycle now) {
    ShardGauges& g = shard_gauges_[shard];
    std::int64_t cmds = 0;
    std::int64_t lines = 0;
    const std::uint32_t pe_lo =
        static_cast<std::uint32_t>(first_node_of(shard)) * cfg_.spes_per_node;
    const std::uint32_t pe_hi =
        static_cast<std::uint32_t>(first_node_of(shard + 1)) *
        cfg_.spes_per_node;
    for (std::uint32_t id = pe_lo; id < pe_hi; ++id) {
        cmds += static_cast<std::int64_t>(pes_[id]->mfc().commands_in_flight());
        lines += static_cast<std::int64_t>(pes_[id]->mfc().lines_in_flight());
    }
    g.dma_cmds->sample(now, cmds);
    g.dma_lines->sample(now, lines);
    if (g.mem_queue != nullptr) {
        g.mem_queue->sample(now, static_cast<std::int64_t>(mem_.queue_depth()));
    }
    std::size_t i = 0;
    for (std::uint16_t n = first_node_of(shard); n < first_node_of(shard + 1);
         ++n, ++i) {
        g.noc_pending[i]->sample(
            now, static_cast<std::int64_t>(fabrics_[n].pending()));
    }
    if (!prof_.empty()) {
        prof_[shard].snapshot(now);
    }
    if (shards_[shard]->wheel() != nullptr &&
        shards_[shard]->wheel()->started()) {
        shards_[shard]->wheel()->sample(now);
    }
}

RunResult Machine::run_sharded() {
    std::vector<sim::Shard*> shards;
    shards.reserve(shards_.size());
    for (const auto& s : shards_) {
        shards.push_back(s.get());
    }
    sim::EpochRunner::Config ec;
    ec.epoch = epoch_length();
    ec.max_cycles = cfg_.max_cycles;
    ec.no_progress_limit = cfg_.no_progress_limit;
    ec.start = restore_cycle_;
    ec.stop_at = stop_at_;
    ec.checkpoint_every = checkpoint_every_;
    if (telemetry_ != nullptr) {
        // Telemetry cuts: epoch bounds land one past each sample cycle, so
        // the coordinator captures a machine-wide frame — post-tick state of
        // the sample cycle, every shard parked in the barrier — at exactly
        // the cycles the single-threaded loops sample.  Result-neutral like
        // checkpoint cuts: bound clamping only changes where barriers land.
        ec.sample_every = cfg_.telemetry.interval;
        ec.on_sample = [this](sim::Cycle cycle) { capture_telemetry(cycle); };
    }
    if (checkpoint_every_ != 0) {
        ec.on_cut = [this](sim::Cycle cut) {
            // All shard threads are parked in the barrier.  Settle every
            // shard's accounting to the cut (safe: nothing in flight drains
            // before it, and the machine was not quiescent at or before the
            // cut), then serialise the globally-consistent state.
            for (const auto& shard : shards_) {
                shard->catch_up(cut);
            }
            write_snapshot(cut);
        };
    }
    sim::EpochRunner runner(
        std::move(shards), ec,
        [this](sim::EpochRunner::Fail kind, sim::Cycle now,
               sim::Cycle stalled) {
            if (kind == sim::EpochRunner::Fail::kMaxCycles) {
                DTA_SIM_ERROR("simulation exceeded max_cycles (" +
                              std::to_string(cfg_.max_cycles) + ")");
            }
            throw_deadlock(now, stalled,
                           kind == sim::EpochRunner::Fail::kIdleForever);
        });
    const sim::Cycle cycles = runner.run();
    const bool stopped_early = stop_at_ != 0 && cycles == stop_at_;
    logger_.log(sim::LogLevel::kInfo, cycles == 0 ? 0 : cycles - 1, "machine",
                stopped_early ? "stopped by stop-at; machine not quiescent"
                              : "quiescent; simulation complete");
    for (const auto& shard : shards_) {
        skipped_ += shard->cycles_skipped();
    }
    if (cfg_.audit.enabled && !stopped_early) {
        // The worker threads have joined: a machine-wide pass (including
        // the cross-shard final checks) is safe now.  A stop-at run skips
        // it — the final checks assert quiescence, which an early stop
        // deliberately does not have.
        auditor_.run_final(cycles == 0 ? 0 : cycles - 1);
    }

    // Deterministic merge of the shard-local sinks.  Spans: the
    // single-threaded loop pushes them in (end cycle, PE index) order — a
    // span ends when its PE's tick at end-1 retires it, PEs tick in index
    // order within a cycle, and one PE closes at most one thread span (and
    // pushes DMA spans tag-ascending) per cycle — so a stable sort of the
    // concatenated per-shard vectors by that key reproduces the exact
    // single-threaded push order.
    for (const auto& v : shard_spans_) {
        spans_.insert(spans_.end(), v.begin(), v.end());
    }
    std::stable_sort(spans_.begin(), spans_.end(),
                     [](const ThreadSpan& a, const ThreadSpan& b) {
                         return a.end != b.end ? a.end < b.end : a.pe < b.pe;
                     });
    for (const auto& v : shard_dma_spans_) {
        dma_spans_.insert(dma_spans_.end(), v.begin(), v.end());
    }
    std::stable_sort(dma_spans_.begin(), dma_spans_.end(),
                     [](const dma::DmaSpan& a, const dma::DmaSpan& b) {
                         return a.end != b.end ? a.end < b.end : a.pe < b.pe;
                     });
    if (cfg_.collect_metrics) {
        metrics_.enable();
        for (const sim::MetricsRegistry& reg : shard_metrics_) {
            metrics_.merge_from(reg);
        }
    }
    // Events: concatenate the shard logs, then restore the single-threaded
    // emission order (each (cycle, ordinal) group lives on one shard, so
    // the stable sort reproduces it byte for byte).
    for (const sim::EventLog& log : shard_events_) {
        events_.append_from(log);
    }
    events_.canonicalize();
    return gather(cycles);
}

std::vector<Machine::ShardStat> Machine::shard_stats() const {
    std::vector<ShardStat> out;
    out.reserve(shards_.size());
    for (const auto& s : shards_) {
        out.push_back({s->name(), s->cycles_ticked(), s->cycles_skipped()});
    }
    return out;
}

RunResult Machine::gather(sim::Cycle cycles) const {
    RunResult r;
    r.cycles = cycles;
    r.pes.reserve(pes_.size());
    for (const auto& pe : pes_) {
        PeReport pr;
        pr.breakdown = pe->breakdown();
        pr.instrs = pe->instr_stats();
        pr.issue_slots_used = pe->issue_slots_used();
        pr.cycles_with_issue = pe->cycles_with_issue();
        pr.threads_executed = pe->threads_executed();
        pr.lse = pe->lse().stats();
        r.pes.push_back(pr);
        r.dma_commands += pe->mfc().commands_completed();
        r.dma_bytes += pe->mfc().bytes_transferred();
    }
    for (const auto& fab : fabrics_) {
        const auto& s = fab.stats();
        r.noc.packets_injected += s.packets_injected;
        r.noc.packets_delivered += s.packets_delivered;
        r.noc.bytes_transferred += s.bytes_transferred;
        r.noc.bus_busy_cycles += s.bus_busy_cycles;
        r.noc.inject_stall_events += s.inject_stall_events;
    }
    r.mem_reads = mem_.reads_served();
    r.mem_writes = mem_.writes_served();
    r.mem_bytes_read = mem_.bytes_read();
    r.mem_bytes_written = mem_.bytes_written();
    r.mem_peak_queue = mem_.peak_queue_depth();
    for (const auto& dse : dses_) {
        r.dse_requests += dse.stats().requests;
        r.dse_queued += dse.stats().queued;
        r.dse_peak_pending =
            std::max(r.dse_peak_pending, dse.stats().peak_pending);
    }
    // Per-thread-code profile, aggregated over every PE.
    r.profile.resize(prog_.codes.size());
    r.code_names.reserve(prog_.codes.size());
    for (std::size_t c = 0; c < prog_.codes.size(); ++c) {
        r.profile[c].name = prog_.codes[c].name;
        r.code_names.push_back(prog_.codes[c].name);
        for (const auto& pe : pes_) {
            r.profile[c].threads_started += pe->code_starts()[c];
            r.profile[c].dispatches += pe->code_dispatches()[c];
            r.profile[c].pipeline_cycles += pe->code_cycles()[c];
            r.profile[c].instructions += pe->code_instrs()[c];
        }
    }
    r.spans = spans_;
    r.metrics = metrics_;
    r.dma_spans = dma_spans_;
    r.events = events_;
    if (!prof_.empty()) {
        const auto names_of = [](const std::vector<sim::Component*>& comps) {
            std::vector<std::string> names;
            names.reserve(comps.size());
            for (const sim::Component* c : comps) {
                names.push_back(c->name());
            }
            return names;
        };
        if (!shards_.empty()) {
            for (std::uint32_t s = 0; s < shard_count_; ++s) {
                sim::merge_prof_buffer(r.host_profile, s, shards_[s]->name(),
                                       prof_[s],
                                       names_of(shards_[s]->components()));
            }
        } else {
            sim::merge_prof_buffer(r.host_profile, 0, "shard0", prof_[0],
                                   names_of(components_));
        }
    }
    if (use_wheel_) {
        if (!shards_.empty()) {
            for (std::uint32_t s = 0; s < shard_count_; ++s) {
                r.wheel.merge_from(shards_[s]->wheel()->stats(), s);
            }
        } else {
            r.wheel = wheel_.stats();
        }
    }
    if (telemetry_ != nullptr) {
        r.telemetry = telemetry_->result();
    }
    return r;
}

void Machine::report_progress(sim::Cycle now, std::uint32_t pe_lo,
                              std::uint32_t pe_hi) {
    if (!progress_ || progress_interval_ == 0 || now < next_progress_) {
        return;
    }
    std::uint64_t live = 0;
    for (std::uint32_t id = pe_lo; id < pe_hi; ++id) {
        live += pes_[id]->lse().live_frames() +
                pes_[id]->lse().virtual_frames_live();
    }
    Progress p;
    p.cycle = now;
    p.live_threads = live;
    if (!shards_.empty()) {
        // Shard 0's host-effort split only: its counters are the only ones
        // this thread may read mid-run.
        p.ticked = shards_[0]->cycles_ticked();
        p.skipped = shards_[0]->cycles_skipped();
    } else {
        p.ticked = now > skipped_ ? now - skipped_ : 0;
        p.skipped = skipped_;
    }
    if (telemetry_ != nullptr) {
        // Live-telemetry summary: the latest frame was written either by
        // this thread or by the epoch coordinator with every shard parked,
        // so the barrier's ordering makes this read race-free.
        const sim::TelemetryFrame& f = telemetry_->latest();
        p.instrs_retired = f.instrs_retired;
        p.sample_cycle = f.cycle;
        // Busiest component over the PEs this thread may read (shard 0's
        // range mid-run; everything in single-threaded mode): the deepest
        // combined scheduler + DMA queue.
        std::uint64_t best = 0;
        for (std::uint32_t id = pe_lo; id < pe_hi; ++id) {
            const auto& pe = *pes_[id];
            const std::uint64_t score = pe.lse().ready_count() +
                                        pe.lse().waitdma_count() +
                                        pe.mfc().commands_in_flight();
            if (score > best) {
                best = score;
                p.busiest = pe.name();
            }
        }
    }
    progress_(p);
    next_progress_ = (now / progress_interval_ + 1) * progress_interval_;
}

}  // namespace dta::core
