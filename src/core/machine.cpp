#include "core/machine.hpp"

#include <string>
#include <utility>

#include "core/wire.hpp"
#include "isa/validate.hpp"
#include "sim/check.hpp"

namespace dta::core {

namespace {
constexpr std::uint64_t kNoResponse = ~0ull;
}

// ---------------------------------------------------------------------------
// RunResult helpers
// ---------------------------------------------------------------------------

Breakdown RunResult::total_breakdown() const {
    Breakdown b;
    for (const auto& pe : pes) {
        b += pe.breakdown;
    }
    return b;
}

InstrStats RunResult::total_instrs() const {
    InstrStats s;
    for (const auto& pe : pes) {
        s += pe.instrs;
    }
    return s;
}

double RunResult::pipeline_usage() const {
    if (cycles == 0 || pes.empty()) {
        return 0.0;
    }
    std::uint64_t with_issue = 0;
    for (const auto& pe : pes) {
        with_issue += pe.cycles_with_issue;
    }
    return static_cast<double>(with_issue) /
           (static_cast<double>(cycles) * static_cast<double>(pes.size()));
}

double RunResult::slot_utilisation() const {
    if (cycles == 0 || pes.empty()) {
        return 0.0;
    }
    std::uint64_t slots = 0;
    for (const auto& pe : pes) {
        slots += pe.issue_slots_used;
    }
    return static_cast<double>(slots) /
           (2.0 * static_cast<double>(cycles) * static_cast<double>(pes.size()));
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Machine::Machine(MachineConfig cfg, isa::Program prog)
    : cfg_(std::move(cfg)),
      prog_(std::move(prog)),
      topo_{cfg_.nodes, cfg_.spes_per_node},
      layout_{cfg_.spes_per_node, cfg_.nodes > 1},
      mem_(cfg_.memory) {
    DTA_SIM_REQUIRE(cfg_.nodes > 0 && cfg_.spes_per_node > 0,
                    "machine needs at least one node and one SPE");
    isa::validate_program(prog_);

    fabrics_.reserve(cfg_.nodes);
    for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
        fabrics_.emplace_back(cfg_.noc, layout_.endpoint_count());
        dses_.emplace_back(topo_, n, cfg_.lse.frames,
                           cfg_.lse.virtual_frames);
    }
    if (cfg_.nodes > 1) {
        links_.reserve(cfg_.nodes);
        for (std::uint16_t n = 0; n < cfg_.nodes; ++n) {
            links_.emplace_back(cfg_.link);
        }
    }
    bridge_out_.resize(cfg_.nodes);
    link_arrivals_.resize(cfg_.nodes);
    pes_.reserve(cfg_.total_pes());
    for (sim::GlobalPeId id = 0; id < cfg_.total_pes(); ++id) {
        pes_.push_back(std::make_unique<Pe>(cfg_, topo_, id, prog_, logger_));
        if (cfg_.capture_spans) {
            pes_.back()->set_span_sink(&spans_);
        }
    }

    if (cfg_.collect_metrics) {
        DTA_SIM_REQUIRE(cfg_.metrics_sample_interval > 0,
                        "metrics_sample_interval must be non-zero");
        metrics_.enable();
        for (auto& pe : pes_) {
            pe->attach_metrics(metrics_, &dma_spans_);
        }
        g_noc_pending_.reserve(fabrics_.size());
        for (std::size_t n = 0; n < fabrics_.size(); ++n) {
            fabrics_[n].attach_metrics(metrics_);
            g_noc_pending_.push_back(
                metrics_.gauge("noc" + std::to_string(n) + ".pending"));
        }
        for (auto& dse : dses_) {
            dse.attach_metrics(metrics_);
        }
        g_dma_cmds_ = metrics_.gauge("dma.commands_in_flight");
        g_dma_lines_ = metrics_.gauge("dma.lines_in_flight");
        g_mem_queue_ = metrics_.gauge("mem.queue_depth");
    }
}

void Machine::launch(std::span<const std::uint64_t> args) {
    DTA_SIM_REQUIRE(!launched_, "launch() called twice");
    const isa::ThreadCode& entry = prog_.at(prog_.entry);
    DTA_SIM_REQUIRE(args.size() <= cfg_.lse.frame_words,
                    "entry arguments do not fit in a frame");
    Pe& pe0 = *pes_[0];
    const std::uint32_t slot = pe0.lse().bootstrap_frame(prog_.entry, 0);
    for (std::size_t i = 0; i < args.size(); ++i) {
        pe0.lse().write_frame_word(slot, static_cast<std::uint32_t>(i),
                                   args[i]);
    }
    dses_[0].steal_frame(0);
    launched_ = true;
    logger_.log(sim::LogLevel::kInfo, 0, "machine",
                "launched entry thread '" + entry.name + "' with " +
                    std::to_string(args.size()) + " args");
}

// ---------------------------------------------------------------------------
// Memory interface (node 0)
// ---------------------------------------------------------------------------

std::size_t Machine::alloc_mem_ctx(const MemCtx& ctx) {
    std::size_t idx;
    if (!mem_ctx_free_.empty()) {
        idx = mem_ctx_free_.front();
        mem_ctx_free_.pop_front();
        mem_ctx_[idx] = ctx;
    } else {
        idx = mem_ctx_.size();
        mem_ctx_.push_back(ctx);
    }
    mem_ctx_[idx].in_use = true;
    ++mem_ctx_outstanding_;
    return idx;
}

void Machine::handle_memif_packet(const noc::Packet& pkt) {
    switch (static_cast<sched::MsgKind>(pkt.kind)) {
        case sched::MsgKind::kMemReadReq: {
            const auto req = sched::GlobalEndpoint::unpack(pkt.b);
            MemCtx ctx;
            ctx.resp_kind = sched::MsgKind::kMemReadResp;
            ctx.node = req.node;
            ctx.ep = req.ep;
            ctx.x = pkt.c;  // destination register
            mem::MemRequest mr;
            mr.op = mem::MemOp::kRead;
            mr.addr = pkt.a;
            mr.size = 4;
            mr.meta = alloc_mem_ctx(ctx);
            mem_.enqueue(std::move(mr));
            break;
        }
        case sched::MsgKind::kMemWriteReq: {
            mem::MemRequest mr;
            mr.op = mem::MemOp::kWrite;
            mr.addr = pkt.a;
            mr.size = 4;
            const auto v = static_cast<std::uint32_t>(pkt.b);
            mr.data = {static_cast<std::uint8_t>(v),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 24)};
            mr.meta = kNoResponse;
            mem_.enqueue(std::move(mr));
            break;
        }
        case sched::MsgKind::kDmaLineReq: {
            const DmaWireCtx wire = DmaWireCtx::unpack(pkt.c);
            MemCtx ctx;
            ctx.resp_kind = sched::MsgKind::kDmaLineResp;
            ctx.node = wire.node;
            ctx.ep = wire.ep;
            ctx.x = pkt.b;  // line id
            mem::MemRequest mr;
            mr.op = mem::MemOp::kRead;
            mr.addr = pkt.a;
            mr.size = wire.bytes;
            mr.meta = alloc_mem_ctx(ctx);
            mem_.enqueue(std::move(mr));
            break;
        }
        case sched::MsgKind::kDmaPutReq: {
            const DmaWireCtx wire = DmaWireCtx::unpack(pkt.c);
            MemCtx ctx;
            ctx.resp_kind = sched::MsgKind::kDmaPutAck;
            ctx.node = wire.node;
            ctx.ep = wire.ep;
            ctx.x = pkt.b;  // line id
            mem::MemRequest mr;
            mr.op = mem::MemOp::kWrite;
            mr.addr = pkt.a;
            mr.size = wire.bytes;
            mr.data = pkt.data;
            mr.meta = alloc_mem_ctx(ctx);
            mem_.enqueue(std::move(mr));
            break;
        }
        default:
            DTA_CHECK_MSG(false, "memory interface got unexpected packet kind " +
                                     std::to_string(pkt.kind));
    }
}

void Machine::drain_memory_responses() {
    mem::MemResponse resp;
    while (mem_.pop_response(resp)) {
        if (resp.meta == kNoResponse) {
            continue;  // posted SPU WRITE
        }
        DTA_CHECK(resp.meta < mem_ctx_.size());
        MemCtx& ctx = mem_ctx_[resp.meta];
        DTA_CHECK_MSG(ctx.in_use, "memory response without a live context");
        noc::Packet pkt;
        pkt.kind = static_cast<std::uint16_t>(ctx.resp_kind);
        pkt.dst_node = ctx.node;
        pkt.dst_final = ctx.ep;
        switch (ctx.resp_kind) {
            case sched::MsgKind::kMemReadResp:
                pkt.a = resp.addr;
                pkt.b = decode_le(resp.data, 4);
                pkt.c = ctx.x;
                pkt.size_bytes = sched::kMemReadRespBytes;
                break;
            case sched::MsgKind::kDmaLineResp:
                pkt.a = ctx.x;
                pkt.size_bytes =
                    8 + static_cast<std::uint32_t>(resp.data.size());
                pkt.data = std::move(resp.data);
                break;
            case sched::MsgKind::kDmaPutAck:
                pkt.a = ctx.x;
                pkt.size_bytes = 8;
                break;
            default:
                DTA_CHECK_MSG(false, "bad memory context kind");
        }
        ctx.in_use = false;
        mem_ctx_free_.push_back(resp.meta);
        DTA_CHECK(mem_ctx_outstanding_ > 0);
        --mem_ctx_outstanding_;
        memif_outbox_.push_back(std::move(pkt));
    }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

void Machine::handle_dse_packet(std::uint16_t node, const noc::Packet& pkt,
                                sim::Cycle now) {
    switch (static_cast<sched::MsgKind>(pkt.kind)) {
        case sched::MsgKind::kFallocReq:
            dses_[node].on_falloc_req(static_cast<sim::ThreadCodeId>(pkt.a),
                                      static_cast<std::uint32_t>(pkt.b),
                                      sched::FallocCtx::unpack(pkt.c), now);
            break;
        case sched::MsgKind::kFrameFree:
            dses_[node].on_frame_free(static_cast<sim::GlobalPeId>(pkt.a),
                                      now);
            break;
        default:
            DTA_CHECK_MSG(false, "DSE got unexpected packet kind " +
                                     std::to_string(pkt.kind));
    }
}

void Machine::route_fabric_deliveries(sim::Cycle now) {
    for (std::uint16_t node = 0; node < cfg_.nodes; ++node) {
        noc::Interconnect& fab = fabrics_[node];
        for (noc::EndpointId ep = 0; ep < layout_.endpoint_count(); ++ep) {
            noc::Packet pkt;
            while (fab.pop_delivered(ep, pkt)) {
                if (layout_.is_spe(ep)) {
                    pes_[topo_.global_pe(node, static_cast<std::uint16_t>(ep))]
                        ->deliver(std::move(pkt));
                } else if (ep == layout_.dse_ep()) {
                    handle_dse_packet(node, pkt, now);
                } else if (ep == layout_.mem_ep()) {
                    DTA_CHECK_MSG(node == kMemoryNode,
                                  "memory packet on a memory-less node");
                    handle_memif_packet(pkt);
                } else {  // bridge
                    bridge_out_[node].push_back(std::move(pkt));
                }
            }
        }
    }
}

bool Machine::inject(std::uint16_t node, noc::EndpointId src,
                     noc::Packet pkt) {
    pkt.dst = pkt.dst_node == node ? pkt.dst_final : layout_.bridge_ep();
    DTA_CHECK_MSG(pkt.dst_node == node || cfg_.nodes > 1,
                  "cross-node packet in a single-node machine");
    return fabrics_[node].try_inject(src, std::move(pkt));
}

void Machine::injection_phase(sim::Cycle now) {
    for (std::uint16_t node = 0; node < cfg_.nodes; ++node) {
        // (a) packets that arrived over the inbound link
        auto& arrivals = link_arrivals_[node];
        while (!arrivals.empty()) {
            if (arrivals.front().dst_node == node) {
                if (!inject(node, layout_.bridge_ep(), arrivals.front())) {
                    break;
                }
                arrivals.pop_front();
            } else {
                // keep circling the ring
                bridge_out_[node].push_back(std::move(arrivals.front()));
                arrivals.pop_front();
            }
        }
        // (b) memory responses (node 0 only)
        if (node == kMemoryNode) {
            while (!memif_outbox_.empty()) {
                if (!inject(node, layout_.mem_ep(), memif_outbox_.front())) {
                    break;
                }
                memif_outbox_.pop_front();
            }
        }
        // (c) DSE messages
        {
            sched::SchedMsg msg;
            while (fabrics_[node].can_inject(layout_.dse_ep()) &&
                   dses_[node].pop_outgoing(msg)) {
                noc::Packet pkt;
                pkt.kind = static_cast<std::uint16_t>(msg.kind);
                pkt.dst_node = msg.dst_node;
                pkt.dst_final = msg.dst_is_dse
                                    ? layout_.dse_ep()
                                    : layout_.spe_ep(msg.dst_pe);
                pkt.size_bytes = sched::kCtrlMsgBytes;
                pkt.a = msg.a;
                pkt.b = msg.b;
                pkt.c = msg.c;
                const bool ok = inject(node, layout_.dse_ep(), std::move(pkt));
                DTA_CHECK(ok);  // can_inject was checked
            }
        }
        // (d) PE traffic
        for (std::uint16_t local = 0; local < cfg_.spes_per_node; ++local) {
            Pe& pe = *pes_[topo_.global_pe(node, local)];
            noc::Packet pkt;
            while (fabrics_[node].can_inject(layout_.spe_ep(local)) &&
                   pe.pop_outgoing(pkt)) {
                const bool ok =
                    inject(node, layout_.spe_ep(local), std::move(pkt));
                DTA_CHECK(ok);
            }
        }
        // (e) bridge -> outbound ring link
        if (cfg_.nodes > 1) {
            auto& out = bridge_out_[node];
            while (!out.empty() && links_[node].can_send()) {
                const bool ok = links_[node].try_send(std::move(out.front()));
                DTA_CHECK(ok);
                out.pop_front();
            }
            links_[node].tick(now);
            noc::Packet pkt;
            const std::uint16_t next =
                static_cast<std::uint16_t>((node + 1) % cfg_.nodes);
            while (links_[node].pop_delivered(pkt)) {
                link_arrivals_[next].push_back(std::move(pkt));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Run loop
// ---------------------------------------------------------------------------

void Machine::tick_cycle(sim::Cycle now) {
    for (auto& fab : fabrics_) {
        fab.tick(now);
    }
    route_fabric_deliveries(now);
    mem_.tick(now);
    drain_memory_responses();
    for (auto& pe : pes_) {
        pe->tick_local_store(now);
    }
    for (auto& pe : pes_) {
        pe->tick_units(now);
    }
    for (auto& pe : pes_) {
        pe->tick_spu(now);
    }
    injection_phase(now);
    if (metrics_.enabled() && now % cfg_.metrics_sample_interval == 0) {
        sample_gauges(now);
    }
}

void Machine::sample_gauges(sim::Cycle now) {
    std::int64_t cmds = 0;
    std::int64_t lines = 0;
    for (const auto& pe : pes_) {
        cmds += static_cast<std::int64_t>(pe->mfc().commands_in_flight());
        lines += static_cast<std::int64_t>(pe->mfc().lines_in_flight());
    }
    g_dma_cmds_->sample(now, cmds);
    g_dma_lines_->sample(now, lines);
    g_mem_queue_->sample(now, static_cast<std::int64_t>(mem_.queue_depth()));
    for (std::size_t n = 0; n < fabrics_.size(); ++n) {
        g_noc_pending_[n]->sample(
            now, static_cast<std::int64_t>(fabrics_[n].pending()));
    }
}

bool Machine::check_quiescent() const {
    for (const auto& fab : fabrics_) {
        if (!fab.quiescent()) return false;
    }
    for (const auto& link : links_) {
        if (!link.quiescent()) return false;
    }
    if (!mem_.quiescent() || !memif_outbox_.empty() ||
        mem_ctx_outstanding_ != 0) {
        return false;
    }
    for (const auto& q : bridge_out_) {
        if (!q.empty()) return false;
    }
    for (const auto& q : link_arrivals_) {
        if (!q.empty()) return false;
    }
    for (const auto& dse : dses_) {
        if (!dse.quiescent()) return false;
    }
    for (const auto& pe : pes_) {
        if (!pe->quiescent()) return false;
    }
    return true;
}

RunResult Machine::run() {
    DTA_SIM_REQUIRE(launched_, "run() before launch()");
    DTA_SIM_REQUIRE(!ran_, "run() called twice");
    ran_ = true;
    sim::Cycle now = 0;
    std::uint64_t last_fp = ~0ull;
    sim::Cycle last_progress = 0;
    for (; now < cfg_.max_cycles; ++now) {
        tick_cycle(now);
        if (check_quiescent()) {
            logger_.log(sim::LogLevel::kInfo, now, "machine",
                        "quiescent; simulation complete");
            return gather(now + 1);
        }
        // No-progress (deadlock) detection.  A live machine issues
        // instructions, delivers packets or completes memory accesses; if
        // the activity fingerprint freezes for longer than any
        // architectural latency, the run is stuck — typically FALLOCs
        // blocking a pipeline while every free-able frame needs that
        // pipeline to finish.
        if ((now & 0xfff) == 0xfff) {
            std::uint64_t fp = mem_.reads_served() + mem_.writes_served();
            for (const auto& fab : fabrics_) {
                fp += fab.stats().packets_delivered;
            }
            for (const auto& pe : pes_) {
                fp += pe->issue_slots_used() + pe->lse().stats().dispatches;
            }
            if (fp != last_fp) {
                last_fp = fp;
                last_progress = now;
            } else if (now - last_progress > cfg_.no_progress_limit) {
                std::uint64_t parked = 0;
                for (const auto& dse : dses_) {
                    parked += dse.pending();
                }
                DTA_SIM_ERROR(
                    "deadlock: no progress for " +
                    std::to_string(now - last_progress) + " cycles (" +
                    std::to_string(parked) +
                    " FALLOCs parked at DSEs; the program's live-thread "
                    "peak likely exceeds the frame supply)");
            }
        }
    }
    DTA_SIM_ERROR("simulation exceeded max_cycles (" +
                  std::to_string(cfg_.max_cycles) + ")");
}

RunResult Machine::gather(sim::Cycle cycles) const {
    RunResult r;
    r.cycles = cycles;
    r.pes.reserve(pes_.size());
    for (const auto& pe : pes_) {
        PeReport pr;
        pr.breakdown = pe->breakdown();
        pr.instrs = pe->instr_stats();
        pr.issue_slots_used = pe->issue_slots_used();
        pr.cycles_with_issue = pe->cycles_with_issue();
        pr.threads_executed = pe->threads_executed();
        pr.lse = pe->lse().stats();
        r.pes.push_back(pr);
        r.dma_commands += pe->mfc().commands_completed();
        r.dma_bytes += pe->mfc().bytes_transferred();
    }
    for (const auto& fab : fabrics_) {
        const auto& s = fab.stats();
        r.noc.packets_injected += s.packets_injected;
        r.noc.packets_delivered += s.packets_delivered;
        r.noc.bytes_transferred += s.bytes_transferred;
        r.noc.bus_busy_cycles += s.bus_busy_cycles;
        r.noc.inject_stall_events += s.inject_stall_events;
    }
    r.mem_reads = mem_.reads_served();
    r.mem_writes = mem_.writes_served();
    r.mem_bytes_read = mem_.bytes_read();
    r.mem_bytes_written = mem_.bytes_written();
    r.mem_peak_queue = mem_.peak_queue_depth();
    for (const auto& dse : dses_) {
        r.dse_requests += dse.stats().requests;
        r.dse_queued += dse.stats().queued;
        r.dse_peak_pending =
            std::max(r.dse_peak_pending, dse.stats().peak_pending);
    }
    // Per-thread-code profile, aggregated over every PE.
    r.profile.resize(prog_.codes.size());
    r.code_names.reserve(prog_.codes.size());
    for (std::size_t c = 0; c < prog_.codes.size(); ++c) {
        r.profile[c].name = prog_.codes[c].name;
        r.code_names.push_back(prog_.codes[c].name);
        for (const auto& pe : pes_) {
            r.profile[c].threads_started += pe->code_starts()[c];
            r.profile[c].dispatches += pe->code_dispatches()[c];
            r.profile[c].pipeline_cycles += pe->code_cycles()[c];
            r.profile[c].instructions += pe->code_instrs()[c];
        }
    }
    r.spans = spans_;
    r.metrics = metrics_;
    r.dma_spans = dma_spans_;
    return r;
}

}  // namespace dta::core
