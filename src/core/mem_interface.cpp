#include "core/mem_interface.hpp"

#include <string>
#include <utility>

#include "core/wire.hpp"
#include "sim/check.hpp"

namespace dta::core {

namespace {
constexpr std::uint64_t kNoResponse = ~0ull;
}

MemInterface::MemInterface(mem::MainMemory& mem) : mem_(mem) {
    set_name("memif");
}

void MemInterface::decode(noc::Packet&& pkt) {
    switch (static_cast<sched::MsgKind>(pkt.kind)) {
        case sched::MsgKind::kMemReadReq: {
            const auto req = sched::GlobalEndpoint::unpack(pkt.b);
            mem::MemRequest mr;
            mr.op = mem::MemOp::kRead;
            mr.addr = pkt.a;
            mr.size = 4;
            mr.meta = ctxs_.alloc(
                {sched::MsgKind::kMemReadResp, req.node, req.ep, pkt.c});
            mem_.enqueue(std::move(mr));
            break;
        }
        case sched::MsgKind::kMemWriteReq: {
            mem::MemRequest mr;
            mr.op = mem::MemOp::kWrite;
            mr.addr = pkt.a;
            mr.size = 4;
            const auto v = static_cast<std::uint32_t>(pkt.b);
            mr.data = {static_cast<std::uint8_t>(v),
                       static_cast<std::uint8_t>(v >> 8),
                       static_cast<std::uint8_t>(v >> 16),
                       static_cast<std::uint8_t>(v >> 24)};
            mr.meta = kNoResponse;  // posted SPU WRITE
            mem_.enqueue(std::move(mr));
            break;
        }
        case sched::MsgKind::kDmaLineReq: {
            const DmaWireCtx wire = DmaWireCtx::unpack(pkt.c);
            mem::MemRequest mr;
            mr.op = mem::MemOp::kRead;
            mr.addr = pkt.a;
            mr.size = wire.bytes;
            mr.meta = ctxs_.alloc(
                {sched::MsgKind::kDmaLineResp, wire.node, wire.ep, pkt.b});
            mem_.enqueue(std::move(mr));
            break;
        }
        case sched::MsgKind::kDmaPutReq: {
            const DmaWireCtx wire = DmaWireCtx::unpack(pkt.c);
            mem::MemRequest mr;
            mr.op = mem::MemOp::kWrite;
            mr.addr = pkt.a;
            mr.size = wire.bytes;
            mr.data = std::move(pkt.data);
            mr.meta = ctxs_.alloc(
                {sched::MsgKind::kDmaPutAck, wire.node, wire.ep, pkt.b});
            mem_.enqueue(std::move(mr));
            break;
        }
        default:
            DTA_CHECK_MSG(false, "memory interface got unexpected packet kind " +
                                     std::to_string(pkt.kind));
    }
}

void MemInterface::drain_responses() {
    mem::MemResponse resp;
    while (mem_.pop_response(resp)) {
        if (resp.meta == kNoResponse) {
            continue;  // posted SPU WRITE
        }
        const MemCtx ctx = ctxs_.at(resp.meta);
        noc::Packet pkt;
        pkt.kind = static_cast<std::uint16_t>(ctx.resp_kind);
        pkt.dst_node = ctx.node;
        pkt.dst_final = ctx.ep;
        switch (ctx.resp_kind) {
            case sched::MsgKind::kMemReadResp:
                pkt.a = resp.addr;
                pkt.b = decode_le(resp.data, 4);
                pkt.c = ctx.x;
                pkt.size_bytes = sched::kMemReadRespBytes;
                break;
            case sched::MsgKind::kDmaLineResp:
                pkt.a = ctx.x;
                pkt.size_bytes =
                    8 + static_cast<std::uint32_t>(resp.data.size());
                pkt.data = std::move(resp.data);
                break;
            case sched::MsgKind::kDmaPutAck:
                pkt.a = ctx.x;
                pkt.size_bytes = 8;
                break;
            default:
                DTA_CHECK_MSG(false, "bad memory context kind");
        }
        ctxs_.release(resp.meta);
        tx_.push(std::move(pkt));
    }
}

void MemInterface::tick(sim::Cycle now) {
    noc::Packet pkt;
    while (rx_.pop(pkt)) {
        decode(std::move(pkt));
    }
    mem_.tick(now);
    drain_responses();
}

bool MemInterface::quiescent() const {
    return rx_.empty() && tx_.empty() && ctxs_.outstanding() == 0 &&
           mem_.quiescent();
}

sim::Cycle MemInterface::next_activity(sim::Cycle now) const {
    if (!rx_.empty() || !tx_.empty()) {
        return now + 1;  // decode / injection retry next tick
    }
    return mem_.next_activity(now);
}

void MemInterface::save_state(sim::StateSink& s) const {
    ctxs_.save_state(s, [](sim::StateSink& k, const MemCtx& c) {
        k.u16(static_cast<std::uint16_t>(c.resp_kind));
        k.u16(c.node);
        k.u32(c.ep);
        k.u64(c.x);
    });
    rx_.save_state(s, noc::save_packet);
    tx_.save_state(s, noc::save_packet);
}

void MemInterface::load_state(sim::StateSource& s) {
    ctxs_.load_state(s, [](sim::StateSource& k, MemCtx& c) {
        c.resp_kind = static_cast<sched::MsgKind>(k.u16());
        c.node = k.u16();
        c.ep = k.u32();
        c.x = k.u64();
    });
    rx_.load_state(s, noc::load_packet);
    tx_.load_state(s, noc::load_packet);
}

}  // namespace dta::core
