/// \file wire.hpp
/// \brief Payload packing helpers shared by the PE and Machine glue.
#pragma once

#include <cstdint>

namespace dta::core {

/// Context attached to DMA line requests: who to send the reply to and how
/// many bytes the line carries.
struct DmaWireCtx {
    std::uint16_t node = 0;
    std::uint16_t ep = 0;       ///< fabric endpoint on that node
    std::uint32_t bytes = 0;

    [[nodiscard]] std::uint64_t pack() const {
        return (static_cast<std::uint64_t>(node) << 48) |
               (static_cast<std::uint64_t>(ep) << 32) | bytes;
    }
    [[nodiscard]] static DmaWireCtx unpack(std::uint64_t v) {
        return DmaWireCtx{static_cast<std::uint16_t>(v >> 48),
                          static_cast<std::uint16_t>((v >> 32) & 0xffff),
                          static_cast<std::uint32_t>(v & 0xffffffffu)};
    }
};

/// Little-endian scalar decode from a byte vector.
template <typename Container>
[[nodiscard]] inline std::uint64_t decode_le(const Container& bytes,
                                             std::size_t n) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n && i < bytes.size(); ++i) {
        v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
    }
    return v;
}

}  // namespace dta::core
