#include "core/interpreter.hpp"

#include <string>
#include <utility>

#include <array>

#include "isa/alu.hpp"
#include "isa/validate.hpp"
#include "sched/lse.hpp"
#include "sim/check.hpp"

namespace dta::core {

using isa::Instruction;
using isa::Opcode;

Interpreter::Interpreter(isa::Program prog, const mem::MainMemoryConfig& cfg)
    : prog_(std::move(prog)), mem_(cfg) {
    isa::validate_program(prog_);
}

std::uint64_t Interpreter::create_thread(sim::ThreadCodeId code,
                                         std::uint32_t sc) {
    const std::uint64_t handle = next_handle_++;
    Thread t;
    t.code = code;
    t.sc = sc;
    t.frame.assign(64, 0);  // generous functional frame
    if (sc == 0) {
        ready_.push_back(handle);
    }
    threads_.emplace(handle, std::move(t));
    return handle;
}

void Interpreter::store_to(std::uint64_t handle, std::uint32_t word,
                           std::uint64_t value) {
    const auto it = threads_.find(handle);
    DTA_SIM_REQUIRE(it != threads_.end(),
                    "STORE to an unknown or finished thread");
    Thread& t = it->second;
    DTA_SIM_REQUIRE(t.sc > 0, "more STOREs than the SC expects");
    DTA_SIM_REQUIRE(word < t.frame.size(), "frame STORE offset out of range");
    t.frame[word] = value;
    if (--t.sc == 0) {
        ready_.push_back(handle);
    }
}

void Interpreter::launch(std::span<const std::uint64_t> args) {
    DTA_SIM_REQUIRE(!launched_, "launch() called twice");
    const std::uint64_t handle = create_thread(prog_.entry, 0);
    Thread& t = threads_.at(handle);
    for (std::size_t i = 0; i < args.size(); ++i) {
        t.frame[i] = args[i];
    }
    launched_ = true;
}

InterpStats Interpreter::run(std::uint64_t max_instructions) {
    DTA_SIM_REQUIRE(launched_, "run() before launch()");
    InterpStats stats;
    while (!ready_.empty()) {
        const std::uint64_t handle = ready_.front();
        ready_.pop_front();
        exec_thread(handle, stats, max_instructions);
        ++stats.threads;
    }
    if (!threads_.empty()) {
        DTA_SIM_ERROR("dataflow deadlock: " +
                      std::to_string(threads_.size()) +
                      " threads still waiting for stores");
    }
    return stats;
}

void Interpreter::exec_thread(std::uint64_t handle, InterpStats& stats,
                              std::uint64_t max_instructions) {
    const auto it = threads_.find(handle);
    DTA_CHECK(it != threads_.end());
    Thread thread = std::move(it->second);
    // The frame stays resident (stores to a ready thread are illegal and
    // store_to would report them); erase at the end.
    const isa::ThreadCode& tc = prog_.at(thread.code);

    std::array<std::uint64_t, isa::kNumRegs> regs{};
    std::array<Region, sched::kNumRegions> regions{};
    bool freed = false;
    std::uint32_t ip = 0;
    const auto reg = [&](std::uint8_t r) -> std::uint64_t {
        return r == 0 ? 0 : regs[r];
    };
    const auto set = [&](std::uint8_t r, std::uint64_t v) {
        if (r != 0) {
            regs[r] = v;
        }
    };

    while (true) {
        DTA_SIM_REQUIRE(stats.instructions < max_instructions,
                        "interpreter exceeded max_instructions");
        DTA_CHECK_MSG(ip < tc.size(), "interpreter ran off code");
        const Instruction& ins = tc.code[ip];
        ++stats.instructions;
        switch (ins.op) {
            case Opcode::kStop:
                threads_.erase(handle);
                return;
            case Opcode::kFfree:
                DTA_SIM_REQUIRE(!freed, "FFREE executed twice");
                freed = true;
                ++ip;
                break;
            case Opcode::kBeq:
            case Opcode::kBne:
            case Opcode::kBlt:
            case Opcode::kBge:
            case Opcode::kJmp:
                ip = isa::eval_branch(ins, reg(ins.ra), reg(ins.rb))
                         ? static_cast<std::uint32_t>(ins.imm)
                         : ip + 1;
                break;
            case Opcode::kLoad:
                set(ins.rd, thread.frame.at(static_cast<std::size_t>(ins.imm)));
                ++ip;
                break;
            case Opcode::kLoadX:
                set(ins.rd,
                    thread.frame.at(static_cast<std::size_t>(
                        reg(ins.ra) + static_cast<std::uint64_t>(ins.imm))));
                ++ip;
                break;
            case Opcode::kStore:
                store_to(reg(ins.rb), static_cast<std::uint32_t>(ins.imm),
                         reg(ins.ra));
                ++stats.frame_stores;
                ++ip;
                break;
            case Opcode::kStoreX:
                store_to(reg(ins.rb),
                         static_cast<std::uint32_t>(reg(ins.rd) +
                                                    static_cast<std::uint64_t>(
                                                        ins.imm)),
                         reg(ins.ra));
                ++stats.frame_stores;
                ++ip;
                break;
            case Opcode::kRead:
                set(ins.rd, mem_.read_u32(reg(ins.ra) +
                                          static_cast<std::uint64_t>(ins.imm)));
                ++ip;
                break;
            case Opcode::kWrite:
                mem_.write_u32(reg(ins.rb) +
                                   static_cast<std::uint64_t>(ins.imm),
                               static_cast<std::uint32_t>(reg(ins.ra)));
                ++ip;
                break;
            case Opcode::kFalloc:
                set(ins.rd,
                    create_thread(
                        static_cast<sim::ThreadCodeId>(ins.imm),
                        prog_.at(static_cast<sim::ThreadCodeId>(ins.imm))
                            .num_inputs));
                ++ip;
                break;
            case Opcode::kFallocN:
                set(ins.rd,
                    create_thread(static_cast<sim::ThreadCodeId>(ins.imm),
                                  static_cast<std::uint32_t>(reg(ins.ra))));
                ++ip;
                break;
            case Opcode::kDmaGet: {
                DTA_CHECK(ins.dma.has_value());
                const isa::DmaArgs& args = *ins.dma;
                Region& r = regions[args.region];
                r.valid = true;
                r.mem_base = reg(ins.ra);
                r.stride = args.stride;
                r.elem_bytes = args.elem_bytes;
                r.bytes = args.bytes;
                // Snapshot semantics: copy the bytes the MFC would move.
                r.snapshot.resize(args.bytes);
                if (args.stride == 0) {
                    mem_.read_bytes(r.mem_base, r.snapshot);
                } else {
                    const std::uint32_t count = args.element_count();
                    for (std::uint32_t i = 0; i < count; ++i) {
                        mem_.read_bytes(
                            r.mem_base +
                                static_cast<std::uint64_t>(i) * args.stride,
                            std::span<std::uint8_t>(
                                r.snapshot.data() +
                                    static_cast<std::size_t>(i) *
                                        args.elem_bytes,
                                args.elem_bytes));
                    }
                }
                ++stats.dma_commands;
                ++ip;
                break;
            }
            case Opcode::kDmaWait:
                ++ip;  // functional: transfers are instantaneous
                break;
            case Opcode::kRegSet: {
                DTA_CHECK(ins.dma.has_value());
                const isa::DmaArgs& args = *ins.dma;
                Region& r = regions[args.region];
                r.valid = true;
                r.mem_base = reg(ins.ra);
                r.stride = args.stride;
                r.elem_bytes = args.elem_bytes;
                r.bytes = args.bytes;
                // Output staging: starts zeroed; the program must write
                // before it reads (reading unwritten staging is undefined
                // in the timed machine, where the LS may hold stale data).
                r.snapshot.assign(args.bytes, 0);
                ++ip;
                break;
            }
            case Opcode::kDmaPut: {
                DTA_CHECK(ins.dma.has_value());
                const isa::DmaArgs& args = *ins.dma;
                // The put ships whatever region covers this staging window;
                // by convention (and in the workloads) the same region id
                // was REGSET with identical geometry, so its snapshot *is*
                // the staged data.
                Region& r = regions[args.region];
                DTA_SIM_REQUIRE(r.valid && r.bytes == args.bytes,
                                "DMAPUT without a matching REGSET region");
                const std::uint64_t base = reg(ins.ra);
                if (args.stride == 0) {
                    mem_.write_bytes(base, r.snapshot);
                } else {
                    const std::uint32_t count = args.element_count();
                    for (std::uint32_t i = 0; i < count; ++i) {
                        mem_.write_bytes(
                            base + static_cast<std::uint64_t>(i) * args.stride,
                            std::span<const std::uint8_t>(
                                r.snapshot.data() +
                                    static_cast<std::size_t>(i) *
                                        args.elem_bytes,
                                args.elem_bytes));
                    }
                }
                ++stats.dma_commands;
                ++ip;
                break;
            }
            case Opcode::kLsLoad:
            case Opcode::kLsStore: {
                const std::uint8_t addr_reg =
                    ins.op == Opcode::kLsStore ? ins.rb : ins.ra;
                const std::uint64_t vaddr =
                    reg(addr_reg) + static_cast<std::uint64_t>(ins.imm);
                DTA_SIM_REQUIRE(ins.region >= 0,
                                "interpreter supports region-translated LS "
                                "access only (raw LS addresses are a timing-"
                                "model concept)");
                Region& r = regions[static_cast<std::size_t>(ins.region)];
                DTA_SIM_REQUIRE(r.valid, "LS access through unfilled region");
                DTA_SIM_REQUIRE(vaddr >= r.mem_base,
                                "LS access below region base");
                const std::uint64_t delta = vaddr - r.mem_base;
                std::uint64_t off;
                if (r.stride == 0) {
                    DTA_SIM_REQUIRE(delta + 4 <= r.bytes,
                                    "LS access past region end");
                    off = delta;
                } else {
                    const std::uint64_t elem = delta / r.stride;
                    const std::uint64_t within = delta % r.stride;
                    DTA_SIM_REQUIRE(within + 4 <= r.elem_bytes,
                                    "strided LS access crosses element");
                    DTA_SIM_REQUIRE(elem < r.bytes / r.elem_bytes,
                                    "strided LS access past last element");
                    off = elem * r.elem_bytes + within;
                }
                if (ins.op == Opcode::kLsLoad) {
                    std::uint32_t v = 0;
                    for (int i = 0; i < 4; ++i) {
                        v |= static_cast<std::uint32_t>(
                                 r.snapshot[off + static_cast<std::size_t>(i)])
                             << (8 * i);
                    }
                    set(ins.rd, v);
                } else {
                    const auto v = static_cast<std::uint32_t>(reg(ins.ra));
                    for (int i = 0; i < 4; ++i) {
                        r.snapshot[off + static_cast<std::size_t>(i)] =
                            static_cast<std::uint8_t>(v >> (8 * i));
                    }
                }
                ++ip;
                break;
            }
            default:
                set(ins.rd,
                    isa::eval_compute(ins, reg(ins.ra), reg(ins.rb), handle));
                ++ip;
                break;
        }
    }
}

}  // namespace dta::core
