#include "core/trace.hpp"

#include <sstream>

namespace dta::core {

namespace {

/// Emits one event object, managing the leading comma.
class EventWriter {
public:
    explicit EventWriter(std::ostringstream& os) : os_(os) { os_ << "[\n"; }

    std::ostringstream& next() {
        if (!first_) {
            os_ << ",\n";
        }
        first_ = false;
        return os_;
    }

    void finish() { os_ << "\n]\n"; }

private:
    std::ostringstream& os_;
    bool first_ = true;
};

void emit_process_name(EventWriter& w, int pid, const char* name) {
    w.next() << R"(  {"name": "process_name", "ph": "M", "pid": )" << pid
             << R"(, "args": {"name": ")" << name << R"("}})";
}

/// Perfetto row metadata: name and pin the SPU tracks in PE-id order.  The
/// set of rows is derived from the spans so empty runs emit nothing.
void emit_spu_track_names(EventWriter& w,
                          const std::vector<ThreadSpan>& spans) {
    std::uint32_t max_pe = 0;
    if (spans.empty()) {
        return;
    }
    for (const ThreadSpan& s : spans) {
        max_pe = s.pe > max_pe ? s.pe : max_pe;
    }
    for (std::uint32_t pe = 0; pe <= max_pe; ++pe) {
        w.next() << R"(  {"name": "thread_name", "ph": "M", "pid": 0, "tid": )"
                 << pe << R"(, "args": {"name": "spu)" << pe << R"("}})";
        w.next() << R"(  {"name": "thread_sort_index", "ph": "M", "pid": 0, )"
                 << R"("tid": )" << pe << R"(, "args": {"sort_index": )" << pe
                 << "}}";
    }
}

void emit_thread_slices(EventWriter& w, const std::vector<ThreadSpan>& spans,
                        const std::vector<std::string>& code_names) {
    for (const ThreadSpan& s : spans) {
        const std::string name =
            s.code < code_names.size() ? code_names[s.code]
                                       : "code" + std::to_string(s.code);
        w.next() << R"(  {"name": ")" << name
                 << (s.resumed ? " (resume)" : "")
                 << R"(", "cat": "thread", "ph": "X", "ts": )" << s.begin
                 << R"(, "dur": )" << (s.end - s.begin)
                 << R"(, "pid": 0, "tid": )" << s.pe
                 << R"(, "args": {"slot": )" << s.slot << "}}";
    }
}

}  // namespace

std::string chrome_trace_json(const std::vector<ThreadSpan>& spans,
                              const std::vector<std::string>& code_names) {
    std::ostringstream os;
    EventWriter w(os);
    emit_thread_slices(w, spans, code_names);
    w.finish();
    return os.str();
}

std::string chrome_trace_json(const std::vector<ThreadSpan>& spans,
                              const std::vector<std::string>& code_names,
                              const sim::MetricsRegistry& metrics,
                              const std::vector<dma::DmaSpan>& dma_spans) {
    return chrome_trace_json(spans, code_names, metrics, dma_spans, {});
}

std::string chrome_trace_json(const std::vector<ThreadSpan>& spans,
                              const std::vector<std::string>& code_names,
                              const sim::MetricsRegistry& metrics,
                              const std::vector<dma::DmaSpan>& dma_spans,
                              const std::vector<TraceFlow>& flows) {
    return chrome_trace_json(spans, code_names, metrics, dma_spans, flows,
                             sim::HostProfile{});
}

std::string chrome_trace_json(const std::vector<ThreadSpan>& spans,
                              const std::vector<std::string>& code_names,
                              const sim::MetricsRegistry& metrics,
                              const std::vector<dma::DmaSpan>& dma_spans,
                              const std::vector<TraceFlow>& flows,
                              const sim::HostProfile& host) {
    return chrome_trace_json(spans, code_names, metrics, dma_spans, flows,
                             host, sim::WheelStats{});
}

std::string chrome_trace_json(const std::vector<ThreadSpan>& spans,
                              const std::vector<std::string>& code_names,
                              const sim::MetricsRegistry& metrics,
                              const std::vector<dma::DmaSpan>& dma_spans,
                              const std::vector<TraceFlow>& flows,
                              const sim::HostProfile& host,
                              const sim::WheelStats& wheel) {
    return chrome_trace_json(spans, code_names, metrics, dma_spans, flows,
                             host, wheel, sim::TelemetryResult{});
}

std::string chrome_trace_json(const std::vector<ThreadSpan>& spans,
                              const std::vector<std::string>& code_names,
                              const sim::MetricsRegistry& metrics,
                              const std::vector<dma::DmaSpan>& dma_spans,
                              const std::vector<TraceFlow>& flows,
                              const sim::HostProfile& host,
                              const sim::WheelStats& wheel,
                              const sim::TelemetryResult& telemetry) {
    std::ostringstream os;
    EventWriter w(os);
    emit_process_name(w, 0, "SPUs");
    emit_process_name(w, 1, "counters");
    emit_process_name(w, 2, "DMA");
    if (host.enabled) {
        emit_process_name(w, 3, "host");
    }
    if (wheel.enabled && !wheel.samples.empty()) {
        emit_process_name(w, 4, "wheel");
    }
    if (telemetry.enabled && !telemetry.frames.empty()) {
        emit_process_name(w, 5, "telemetry");
    }
    emit_spu_track_names(w, spans);
    emit_thread_slices(w, spans, code_names);

    // One counter track per gauge: Perfetto draws "ph":"C" events sharing a
    // (pid, name) as a stepped time-series.
    for (const auto& [name, series] : metrics.gauges()) {
        for (const sim::GaugeSample& s : series.samples()) {
            w.next() << R"(  {"name": ")" << name
                     << R"(", "cat": "gauge", "ph": "C", "ts": )" << s.cycle
                     << R"(, "pid": 1, "args": {"value": )" << s.value
                     << "}}";
        }
    }

    // DMA transfers as async begin/end pairs so concurrent commands on one
    // MFC stack instead of colliding on a thread track.
    std::uint64_t id = 0;
    for (const dma::DmaSpan& d : dma_spans) {
        const char* op = d.op == dma::MfcOp::kGet ? "GET" : "PUT";
        w.next() << R"(  {"name": ")" << op << ' ' << d.bytes
                 << R"(B", "cat": "dma", "ph": "b", "id": )" << id
                 << R"(, "ts": )" << d.begin << R"(, "pid": 2, "tid": )"
                 << d.pe << R"(, "args": {"tag": )" << d.tag
                 << R"(, "bytes": )" << d.bytes << "}}";
        w.next() << R"(  {"name": ")" << op << ' ' << d.bytes
                 << R"(B", "cat": "dma", "ph": "e", "id": )" << id
                 << R"(, "ts": )" << d.end << R"(, "pid": 2, "tid": )" << d.pe
                 << "}";
        ++id;
    }

    // Dataflow arrows: a flow starts inside the producer's slice ("ph":"s")
    // and ends at the consumer's dispatch ("ph":"f", "bp":"e" binds to the
    // enclosing slice even though the timestamp is its left edge).
    std::uint64_t flow_id = 0;
    for (const TraceFlow& f : flows) {
        const char* name = f.on_critical_path ? "critical-store" : "store";
        w.next() << R"(  {"name": ")" << name
                 << R"(", "cat": "dataflow", "ph": "s", "id": )" << flow_id
                 << R"(, "ts": )" << f.src_cycle << R"(, "pid": 0, "tid": )"
                 << f.src_pe << "}";
        w.next() << R"(  {"name": ")" << name
                 << R"(", "cat": "dataflow", "ph": "f", "bp": "e", "id": )"
                 << flow_id << R"(, "ts": )" << f.dst_cycle
                 << R"(, "pid": 0, "tid": )" << f.dst_pe << "}";
        ++flow_id;
    }

    // Host-side tracks: per (shard, phase), the host nanoseconds burnt in
    // each gauge-sampling interval, plotted against simulated time.  The
    // snapshots carry cumulative totals, so each point is a delta from the
    // previous one; phases a shard never touched are skipped entirely.
    if (host.enabled) {
        for (const sim::HostProfileShard& s : host.shards) {
            for (std::size_t p = 0; p < sim::kNumProfPhases; ++p) {
                if (s.phase_ns[p] == 0) {
                    continue;
                }
                std::uint64_t prev = 0;
                for (const sim::ProfSnapshot& snap : s.samples) {
                    w.next() << R"(  {"name": ")" << s.name << '/'
                             << sim::prof_phase_name(
                                    static_cast<sim::ProfPhase>(p))
                             << R"j( (ns)", "cat": "host", "ph": "C", "ts": )j"
                             << snap.cycle << R"(, "pid": 3, "args": )"
                             << R"({"value": )" << snap.ns[p] - prev << "}}";
                    prev = snap.ns[p];
                }
            }
        }
    }
    // Event-driven scheduler tracks: per shard, the armed-component count
    // (an occupancy gauge) plus pop and insert *rates* over each sampling
    // interval (the samples carry cumulative totals, so each point is a
    // delta from the shard's previous one).  Samples arrive merged and
    // sorted by (cycle, shard), so per-shard deltas need a cursor per
    // shard; runs without the wheel (or without metrics) add nothing.
    if (wheel.enabled && !wheel.samples.empty()) {
        std::uint32_t max_shard = 0;
        for (const sim::WheelStats::Sample& s : wheel.samples) {
            max_shard = s.shard > max_shard ? s.shard : max_shard;
        }
        struct Prev {
            std::uint64_t pops = 0;
            std::uint64_t inserts = 0;
        };
        std::vector<Prev> prev(max_shard + 1);
        for (const sim::WheelStats::Sample& s : wheel.samples) {
            Prev& p = prev[s.shard];
            w.next() << R"(  {"name": "shard)" << s.shard
                     << R"(/armed", "cat": "wheel", "ph": "C", "ts": )"
                     << s.cycle << R"(, "pid": 4, "args": {"value": )"
                     << s.occupancy << "}}";
            w.next() << R"(  {"name": "shard)" << s.shard
                     << R"(/pops", "cat": "wheel", "ph": "C", "ts": )"
                     << s.cycle << R"(, "pid": 4, "args": {"value": )"
                     << s.pops - p.pops << "}}";
            w.next() << R"(  {"name": "shard)" << s.shard
                     << R"(/inserts", "cat": "wheel", "ph": "C", "ts": )"
                     << s.cycle << R"(, "pid": 4, "args": {"value": )"
                     << s.inserts - p.inserts << "}}";
            p.pops = s.pops;
            p.inserts = s.inserts;
        }
    }
    // Live-telemetry tracks: machine-wide occupancy and queue-depth gauges
    // at the sampler's cadence, plus the retired-instruction count as a
    // per-interval delta (the frames carry cumulative totals).  Only
    // simulated-state fields are drawn — host_ns and the wheel counters
    // stay out so traces remain comparable across wheel modes.
    if (telemetry.enabled && !telemetry.frames.empty()) {
        const auto counter = [&w](const char* name, sim::Cycle ts,
                                  std::uint64_t value) {
            w.next() << R"(  {"name": ")" << name
                     << R"(", "cat": "telemetry", "ph": "C", "ts": )" << ts
                     << R"(, "pid": 5, "args": {"value": )" << value << "}}";
        };
        std::uint64_t prev_retired = 0;
        for (const sim::TelemetryFrame& f : telemetry.frames) {
            counter("spus_running", f.cycle, f.pes_running);
            counter("threads_ready", f.cycle, f.threads_ready);
            counter("threads_waitdma", f.cycle, f.threads_waitdma);
            counter("frames_live", f.cycle, f.frames_live);
            counter("mfc_commands", f.cycle, f.mfc_commands);
            counter("dma_bytes_in_flight", f.cycle, f.dma_bytes);
            counter("mem_queue", f.cycle, f.mem_queue);
            counter("noc_pending", f.cycle, f.noc_pending);
            counter("instrs_retired/interval", f.cycle,
                    f.instrs_retired - prev_retired);
            prev_retired = f.instrs_retired;
        }
    }
    w.finish();
    return os.str();
}

}  // namespace dta::core
