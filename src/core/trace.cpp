#include "core/trace.hpp"

#include <sstream>

namespace dta::core {

std::string chrome_trace_json(const std::vector<ThreadSpan>& spans,
                              const std::vector<std::string>& code_names) {
    std::ostringstream os;
    os << "[\n";
    bool first = true;
    for (const ThreadSpan& s : spans) {
        if (!first) {
            os << ",\n";
        }
        first = false;
        const std::string name =
            s.code < code_names.size() ? code_names[s.code]
                                       : "code" + std::to_string(s.code);
        os << R"(  {"name": ")" << name << (s.resumed ? " (resume)" : "")
           << R"(", "cat": "thread", "ph": "X", "ts": )" << s.begin
           << R"(, "dur": )" << (s.end - s.begin) << R"(, "pid": 0, "tid": )"
           << s.pe << R"(, "args": {"slot": )" << s.slot << "}}";
    }
    os << "\n]\n";
    return os.str();
}

}  // namespace dta::core
