/// \file interpreter.hpp
/// \brief Functional (untimed) reference executor for DTA programs.
///
/// Executes the same architectural semantics as the cycle-level Machine —
/// ALU via the shared isa/alu.hpp, dataflow thread synchronisation, DMA
/// staging with snapshot semantics — but with no timing model at all.  Its
/// purpose is differential testing: for any deterministic program, memory
/// after Interpreter::run() must equal memory after Machine::run().
///
/// Prefetch semantics are faithful: DMAGET snapshots the source bytes at
/// command time, and LSLOAD reads the snapshot (not live memory), so a
/// program that raced its own WRITEs against a prefetch would diverge from
/// a non-prefetching run in both engines alike.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <unordered_map>
#include <vector>

#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "sim/types.hpp"

namespace dta::core {

/// Summary statistics of a functional run.
struct InterpStats {
    std::uint64_t instructions = 0;
    std::uint64_t threads = 0;
    std::uint64_t dma_commands = 0;
    std::uint64_t frame_stores = 0;
};

/// The reference executor.
class Interpreter {
public:
    /// \p prog is validated and copied.
    explicit Interpreter(isa::Program prog,
                         const mem::MainMemoryConfig& mem_cfg = {});

    [[nodiscard]] mem::MainMemory& memory() { return mem_; }
    [[nodiscard]] const mem::MainMemory& memory() const { return mem_; }

    /// Seeds the entry thread with \p args (frame words 0..n-1).
    void launch(std::span<const std::uint64_t> args);

    /// Runs every thread to completion.  Throws sim::SimError on illegal
    /// programs (over-stores, unfilled regions, runaway execution) or when
    /// threads remain blocked forever (dataflow deadlock).
    InterpStats run(std::uint64_t max_instructions = 500'000'000ull);

private:
    struct Region {
        bool valid = false;
        std::uint64_t mem_base = 0;
        std::uint32_t stride = 0;
        std::uint32_t elem_bytes = 0;
        std::uint32_t bytes = 0;
        std::vector<std::uint8_t> snapshot;
    };

    struct Thread {
        sim::ThreadCodeId code = 0;
        std::uint32_t sc = 0;
        std::vector<std::uint64_t> frame;
        bool started = false;
    };

    /// Runs one ready thread from PF through STOP.
    void exec_thread(std::uint64_t handle, InterpStats& stats,
                     std::uint64_t max_instructions);
    std::uint64_t create_thread(sim::ThreadCodeId code, std::uint32_t sc);
    void store_to(std::uint64_t handle, std::uint32_t word,
                  std::uint64_t value);

    isa::Program prog_;
    mem::MainMemory mem_;
    std::unordered_map<std::uint64_t, Thread> threads_;
    std::deque<std::uint64_t> ready_;
    std::uint64_t next_handle_ = 1;
    bool launched_ = false;
};

}  // namespace dta::core
