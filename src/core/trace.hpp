/// \file trace.hpp
/// \brief Execution-trace records: which thread ran where, when — the raw
///        material for per-code profiles and Chrome-trace timelines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dma/mfc.hpp"
#include "sim/metrics.hpp"
#include "sim/prof.hpp"
#include "sim/telemetry.hpp"
#include "sim/types.hpp"
#include "sim/wheel.hpp"

namespace dta::core {

/// One contiguous occupancy of an SPU by a thread (bind to unbind).
struct ThreadSpan {
    sim::GlobalPeId pe = 0;
    sim::Cycle begin = 0;
    sim::Cycle end = 0;           ///< exclusive
    sim::ThreadCodeId code = 0;
    std::uint32_t slot = 0;
    bool resumed = false;         ///< continuation after Wait-for-DMA
};

/// One dataflow arrow for the Chrome-trace export: from a producer's frame
/// STORE (inside its PS-phase slice) to the consumer thread's dispatch (the
/// start of its first slice).  Produced by the critical-path analyzer
/// (stats/critpath); core only knows how to render them.
struct TraceFlow {
    sim::GlobalPeId src_pe = 0;
    sim::Cycle src_cycle = 0;
    sim::GlobalPeId dst_pe = 0;
    sim::Cycle dst_cycle = 0;
    bool on_critical_path = false;
};

/// Aggregate per-thread-code profile over a run.
struct CodeProfile {
    std::string name;
    std::uint64_t threads_started = 0;   ///< fresh binds (not resumes)
    std::uint64_t dispatches = 0;        ///< binds incl. resumes
    std::uint64_t pipeline_cycles = 0;   ///< cycles an SPU was bound to it
    std::uint64_t instructions = 0;
};

/// Renders a run's spans as a Chrome-trace ("chrome://tracing" /
/// Perfetto-compatible) JSON document: one row per SPU, one slice per
/// thread occupancy.  Timestamps are simulated cycles (reported as us).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<ThreadSpan>& spans,
    const std::vector<std::string>& code_names);

/// Full-fat variant: thread slices (pid 0) plus one Perfetto counter track
/// per sampled gauge (pid 1, "ph":"C") and one async slice per completed DMA
/// command (pid 2, "ph":"b"/"e", overlapping transfers render stacked).
/// Gauges come from \p metrics (no counter events when it is disabled or
/// empty); either span vector may be empty.
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<ThreadSpan>& spans,
    const std::vector<std::string>& code_names,
    const sim::MetricsRegistry& metrics,
    const std::vector<dma::DmaSpan>& dma_spans);

/// Like the full-fat variant, and additionally draws \p flows as Perfetto
/// flow-event arrows ("ph":"s"/"f") between the SPU slices (critical-path
/// edges are named so they can be filtered in the UI).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<ThreadSpan>& spans,
    const std::vector<std::string>& code_names,
    const sim::MetricsRegistry& metrics,
    const std::vector<dma::DmaSpan>& dma_spans,
    const std::vector<TraceFlow>& flows);

/// Like the flow variant, and additionally renders the host-side profile
/// (pid 3, "host") as one counter track per (shard, phase): the host
/// nanoseconds that phase consumed per gauge-sampling interval, plotted
/// against simulated time so host cost lines up under the simulated
/// activity that caused it.  \p host disabled or without samples adds
/// nothing (the output is then byte-identical to the flow variant).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<ThreadSpan>& spans,
    const std::vector<std::string>& code_names,
    const sim::MetricsRegistry& metrics,
    const std::vector<dma::DmaSpan>& dma_spans,
    const std::vector<TraceFlow>& flows, const sim::HostProfile& host);

/// Like the host variant, and additionally renders the event-driven
/// scheduler's counters (pid 4, "wheel") as counter tracks: armed
/// components (occupancy) plus per-sampling-interval pop and insert rates,
/// one track set per shard, plotted against simulated time.  \p wheel
/// disabled or without samples adds nothing (the output is then
/// byte-identical to the host variant — which is how `--no-wheel` runs and
/// the wheel-vs-dense determinism tests keep their traces comparable).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<ThreadSpan>& spans,
    const std::vector<std::string>& code_names,
    const sim::MetricsRegistry& metrics,
    const std::vector<dma::DmaSpan>& dma_spans,
    const std::vector<TraceFlow>& flows, const sim::HostProfile& host,
    const sim::WheelStats& wheel);

/// Like the wheel variant, and additionally renders the live-telemetry
/// timeline (pid 5, "telemetry") as counter tracks at the sampler's
/// cadence: SPU occupancy, ready / wait-DMA thread counts, live frames,
/// MFC queue depth, in-flight DMA bytes, memory queue depth, NoC backlog,
/// and the per-interval retired-instruction rate.  Only simulated-state
/// fields are drawn; \p telemetry disabled or without frames adds nothing
/// (the output is then byte-identical to the wheel variant).
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<ThreadSpan>& spans,
    const std::vector<std::string>& code_names,
    const sim::MetricsRegistry& metrics,
    const std::vector<dma::DmaSpan>& dma_spans,
    const std::vector<TraceFlow>& flows, const sim::HostProfile& host,
    const sim::WheelStats& wheel, const sim::TelemetryResult& telemetry);

}  // namespace dta::core
