/// \file topology.hpp
/// \brief Fabric endpoint layout shared by the PEs and the Machine.
///
/// Each node's bus fabric carries, in this order: the node's SPEs, the
/// node's DSE, the memory interface (only node 0's is backed by the real
/// memory controller; remote nodes reach memory through their bridge), and
/// — in multi-node machines — the inter-node bridge.
#pragma once

#include <cstdint>

#include "noc/packet.hpp"
#include "sched/messages.hpp"

namespace dta::core {

/// Endpoint numbering on one node's fabric.
struct FabricLayout {
    std::uint16_t spes = 8;
    bool multi_node = false;

    [[nodiscard]] noc::EndpointId spe_ep(std::uint16_t local_pe) const {
        return local_pe;
    }
    [[nodiscard]] noc::EndpointId dse_ep() const { return spes; }
    [[nodiscard]] noc::EndpointId mem_ep() const { return spes + 1u; }
    [[nodiscard]] noc::EndpointId bridge_ep() const { return spes + 2u; }
    [[nodiscard]] std::uint32_t endpoint_count() const {
        return spes + 2u + (multi_node ? 1u : 0u);
    }
    /// True when \p ep addresses an SPE.
    [[nodiscard]] bool is_spe(noc::EndpointId ep) const { return ep < spes; }
};

/// Node that hosts the (single) main-memory controller.
inline constexpr std::uint16_t kMemoryNode = 0;

}  // namespace dta::core
