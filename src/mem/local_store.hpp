/// \file local_store.hpp
/// \brief Per-PE local store (Table 2: 256 KB, 6-cycle latency, 3 ports).
///
/// The local store of each SPE holds (a) the frames managed by the LSE,
/// (b) the staging area DMA prefetches write into, and (c) — conceptually —
/// code; code fetch is not simulated as LS traffic (the SPU is modelled
/// with an ideal instruction fetch, as in CellSim's SPU model).
///
/// Three clients share the LS ports each cycle, matching the real SPE:
/// the SPU load/store pipe, the LSE (frame writes from the interconnect),
/// and the MFC (DMA data).  Requests are serviced FIFO per client with
/// round-robin arbitration across clients, up to `ports` per cycle.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "sim/types.hpp"

namespace dta::sim {
class StateSink;
class StateSource;
}  // namespace dta::sim

namespace dta::mem {

/// Who issued a local-store request (used for port arbitration & routing).
enum class LsClient : std::uint8_t { kSpu = 0, kLse = 1, kMfc = 2 };
inline constexpr std::size_t kNumLsClients = 3;

/// Configuration of one local store (defaults = Table 2; the paper prints
/// "156 kB" as the usable size of the 256 KB SPE local store once code is
/// resident — we keep the full 256 KB and let the frame/staging layout in
/// CoreConfig reserve the usable portion).
struct LocalStoreConfig {
    std::uint32_t size_bytes = 256 * 1024;
    std::uint32_t latency = 6;   ///< cycles from service to data available
    std::uint32_t ports = 3;     ///< requests serviced per cycle
    std::uint32_t max_request_bytes = 128;  ///< DMA writes one line per request
};

/// A timed request against the local store.
struct LsRequest {
    std::uint64_t id = 0;
    bool is_write = false;
    sim::LsAddr addr = 0;
    std::uint32_t size = 4;
    std::vector<std::uint8_t> data;  ///< payload for writes
    std::uint64_t meta = 0;
};

/// Completion of a timed local-store request.
struct LsResponse {
    std::uint64_t id = 0;
    bool is_write = false;
    sim::LsAddr addr = 0;
    std::vector<std::uint8_t> data;  ///< filled for reads
    std::uint64_t meta = 0;
};

/// One SPE's local store.
class LocalStore {
public:
    explicit LocalStore(const LocalStoreConfig& cfg);

    // --- functional access (tests / frame bootstrap) -----------------------
    void write_bytes(sim::LsAddr addr, std::span<const std::uint8_t> data);
    void read_bytes(sim::LsAddr addr, std::span<std::uint8_t> out) const;
    void write_u64(sim::LsAddr addr, std::uint64_t v);
    [[nodiscard]] std::uint64_t read_u64(sim::LsAddr addr) const;
    void write_u32(sim::LsAddr addr, std::uint32_t v);
    [[nodiscard]] std::uint32_t read_u32(sim::LsAddr addr) const;

    // --- timed access --------------------------------------------------------
    void enqueue(LsClient client, LsRequest req);
    void tick(sim::Cycle now);
    [[nodiscard]] bool pop_response(LsClient client, LsResponse& out);

    [[nodiscard]] bool quiescent() const;
    [[nodiscard]] const LocalStoreConfig& config() const { return cfg_; }

    /// Activity horizon folded into the owning PE's (the LS is not a
    /// top-level component): queued work is serviced every cycle, responses
    /// await the owner's next drain, in-flight accesses retire at done_at.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const {
        for (const auto& q : queues_) {
            if (!q.empty()) {
                return now + 1;
            }
        }
        for (const auto& q : responses_) {
            if (!q.empty()) {
                return now + 1;
            }
        }
        if (!in_flight_.empty()) {
            return in_flight_.front().done_at > now
                       ? in_flight_.front().done_at
                       : now + 1;
        }
        return sim::kCycleNever;
    }

    // --- statistics -------------------------------------------------------------
    [[nodiscard]] std::uint64_t accesses(LsClient client) const {
        return served_[static_cast<std::size_t>(client)];
    }
    /// Cycles in which all ports were busy and work was still queued.
    [[nodiscard]] std::uint64_t contended_cycles() const { return contended_; }

    // --- checkpoint/restore (driven by the owning PE's save_state) ----------
    void save_state(sim::StateSink& s) const;
    void load_state(sim::StateSource& s);

private:
    struct InFlight {
        sim::Cycle done_at = 0;
        LsClient client = LsClient::kSpu;
        LsRequest req;
    };

    void bounds_check(sim::LsAddr addr, std::uint64_t size) const;

    LocalStoreConfig cfg_;
    std::vector<std::uint8_t> bytes_;
    std::array<std::deque<LsRequest>, kNumLsClients> queues_;
    std::deque<InFlight> in_flight_;
    std::array<std::deque<LsResponse>, kNumLsClients> responses_;
    std::size_t rr_next_ = 0;  ///< round-robin arbitration cursor
    std::array<std::uint64_t, kNumLsClients> served_{};
    std::uint64_t contended_ = 0;
};

}  // namespace dta::mem
