/// \file main_memory.hpp
/// \brief The simulated main memory (Table 2: 512 MB, 150-cycle latency,
///        one port).
///
/// The memory is both *functional* (it stores real bytes, so workload
/// results can be checked against references) and *timed* (requests go
/// through a port-limited queue and complete after the configured access
/// latency).  Timed requests come from the interconnect glue in src/core;
/// the functional interface is used by the host to initialise inputs and
/// read back outputs, outside simulated time.
///
/// Timing model: up to \ref MainMemoryConfig::ports requests *start* per
/// cycle, each additionally holding its bank for \ref
/// MainMemoryConfig::bank_busy cycles (so back-to-back starts are spaced);
/// a started request completes \ref MainMemoryConfig::latency cycles later.
/// This approximates a pipelined DRAM behind one channel, which is how the
/// CellSim memory the paper used behaves.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "sim/component.hpp"
#include "sim/types.hpp"

namespace dta::mem {

/// Configuration of the main memory (defaults = Table 2 / Table 4).
struct MainMemoryConfig {
    std::uint64_t size_bytes = 512ull << 20;  ///< 512 MB
    std::uint32_t latency = 150;              ///< access latency, cycles
    std::uint32_t ports = 1;                  ///< requests started per cycle
    std::uint32_t bank_busy = 2;              ///< min cycles between starts on a port
    std::uint32_t max_request_bytes = 128;    ///< largest single access (one DMA line)
};

/// Kind of a timed memory request.
enum class MemOp : std::uint8_t { kRead, kWrite };

/// A timed request to main memory.
struct MemRequest {
    std::uint64_t id = 0;       ///< requester-chosen correlation id
    MemOp op = MemOp::kRead;
    sim::MemAddr addr = 0;
    std::uint32_t size = 4;     ///< bytes
    std::vector<std::uint8_t> data;  ///< payload for writes
    std::uint64_t meta = 0;     ///< opaque requester context
};

/// Completion of a timed request.
struct MemResponse {
    std::uint64_t id = 0;
    MemOp op = MemOp::kRead;
    sim::MemAddr addr = 0;
    std::vector<std::uint8_t> data;  ///< filled for reads
    std::uint64_t meta = 0;
};

/// The simulated DRAM.
class MainMemory final : public sim::Component {
public:
    explicit MainMemory(const MainMemoryConfig& cfg);

    // --- functional access (host side, zero simulated time) ---------------
    void write_bytes(sim::MemAddr addr, std::span<const std::uint8_t> data);
    void read_bytes(sim::MemAddr addr, std::span<std::uint8_t> out) const;
    void write_u32(sim::MemAddr addr, std::uint32_t v);
    [[nodiscard]] std::uint32_t read_u32(sim::MemAddr addr) const;
    void write_u64(sim::MemAddr addr, std::uint64_t v);
    [[nodiscard]] std::uint64_t read_u64(sim::MemAddr addr) const;

    // --- timed access -----------------------------------------------------
    /// Enqueues a request (the controller queue is unbounded; back pressure
    /// is applied upstream by the interconnect).
    void enqueue(MemRequest req);

    /// Advances one cycle: starts up to `ports` queued requests and retires
    /// those whose latency elapsed into the response queue.
    void tick(sim::Cycle now) override;

    /// Drains one completed response, if any.
    [[nodiscard]] bool pop_response(MemResponse& out);

    /// True when no request is queued or in flight.
    [[nodiscard]] bool quiescent() const override {
        return queue_.empty() && in_flight_.empty() && responses_.empty();
    }

    /// Horizon: completed responses await an external pop; queued requests
    /// start when the port frees; in-flight requests retire at done_at.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const override {
        if (!responses_.empty()) {
            return now + 1;
        }
        sim::Cycle h = sim::kIdleForever;
        if (!in_flight_.empty()) {
            h = in_flight_.front().done_at > now ? in_flight_.front().done_at
                                                 : now + 1;
        }
        if (!queue_.empty()) {
            const sim::Cycle start =
                port_free_at_ > now + 1 ? port_free_at_ : now + 1;
            h = start < h ? start : h;
        }
        return h;
    }

    [[nodiscard]] const MainMemoryConfig& config() const { return cfg_; }

    // --- statistics ---------------------------------------------------------
    [[nodiscard]] std::uint64_t reads_served() const { return reads_served_; }
    [[nodiscard]] std::uint64_t writes_served() const { return writes_served_; }
    [[nodiscard]] std::uint64_t bytes_read() const { return bytes_read_; }
    [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
    /// Peak depth the request queue reached (controller congestion metric).
    [[nodiscard]] std::size_t peak_queue_depth() const { return peak_queue_; }
    /// Requests waiting for a port right now (sampled as a gauge).
    [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }
    /// Requests started but not yet retired.
    [[nodiscard]] std::size_t requests_in_flight() const {
        return in_flight_.size();
    }

    // --- checkpoint/restore -------------------------------------------------
    /// Serializes the backing store (allocated pages only), both timed
    /// queues, in-flight accesses, and statistics.
    void save_state(sim::StateSink& s) const override;
    void load_state(sim::StateSource& s) override;

private:
    struct InFlight {
        sim::Cycle done_at = 0;
        MemRequest req;
    };

    /// Page granularity of the sparse backing store.
    static constexpr std::uint64_t kPageBytes = 64 * 1024;

    [[nodiscard]] std::uint8_t* page_for(sim::MemAddr addr);
    [[nodiscard]] const std::uint8_t* page_if_present(sim::MemAddr addr) const;
    void bounds_check(sim::MemAddr addr, std::uint64_t size) const;

    MainMemoryConfig cfg_;
    std::vector<std::vector<std::uint8_t>> pages_;  ///< lazily allocated
    std::deque<MemRequest> queue_;
    std::deque<InFlight> in_flight_;  ///< ordered by done_at (FIFO starts)
    std::deque<MemResponse> responses_;
    sim::Cycle port_free_at_ = 0;
    std::uint64_t reads_served_ = 0;
    std::uint64_t writes_served_ = 0;
    std::uint64_t bytes_read_ = 0;
    std::uint64_t bytes_written_ = 0;
    std::size_t peak_queue_ = 0;
};

}  // namespace dta::mem
