#include "mem/local_store.hpp"

#include <cstring>

#include "sim/check.hpp"

namespace dta::mem {

LocalStore::LocalStore(const LocalStoreConfig& cfg) : cfg_(cfg) {
    DTA_SIM_REQUIRE(cfg.size_bytes > 0, "local store size must be non-zero");
    DTA_SIM_REQUIRE(cfg.ports > 0, "local store needs at least one port");
    bytes_.assign(cfg.size_bytes, 0);
}

void LocalStore::bounds_check(sim::LsAddr addr, std::uint64_t size) const {
    DTA_SIM_REQUIRE(static_cast<std::uint64_t>(addr) + size <= cfg_.size_bytes,
                    "local-store access out of bounds: addr=" +
                        std::to_string(addr) + " size=" + std::to_string(size));
}

void LocalStore::write_bytes(sim::LsAddr addr,
                             std::span<const std::uint8_t> data) {
    bounds_check(addr, data.size());
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

void LocalStore::read_bytes(sim::LsAddr addr,
                            std::span<std::uint8_t> out) const {
    bounds_check(addr, out.size());
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void LocalStore::write_u64(sim::LsAddr addr, std::uint64_t v) {
    std::uint8_t buf[8];
    std::memcpy(buf, &v, 8);
    write_bytes(addr, buf);
}

std::uint64_t LocalStore::read_u64(sim::LsAddr addr) const {
    std::uint8_t buf[8];
    read_bytes(addr, buf);
    std::uint64_t v;
    std::memcpy(&v, buf, 8);
    return v;
}

void LocalStore::write_u32(sim::LsAddr addr, std::uint32_t v) {
    std::uint8_t buf[4];
    std::memcpy(buf, &v, 4);
    write_bytes(addr, buf);
}

std::uint32_t LocalStore::read_u32(sim::LsAddr addr) const {
    std::uint8_t buf[4];
    read_bytes(addr, buf);
    std::uint32_t v;
    std::memcpy(&v, buf, 4);
    return v;
}

void LocalStore::enqueue(LsClient client, LsRequest req) {
    DTA_SIM_REQUIRE(req.size > 0 && req.size <= cfg_.max_request_bytes,
                    "local-store request size out of range");
    bounds_check(req.addr, req.size);
    if (req.is_write) {
        DTA_SIM_REQUIRE(req.data.size() == req.size,
                        "local-store write payload size mismatch");
    }
    queues_[static_cast<std::size_t>(client)].push_back(std::move(req));
}

void LocalStore::tick(sim::Cycle now) {
    // Retire completed accesses (FIFO service + fixed latency => FIFO done).
    while (!in_flight_.empty() && in_flight_.front().done_at <= now) {
        InFlight fl = std::move(in_flight_.front());
        in_flight_.pop_front();
        LsResponse resp;
        resp.id = fl.req.id;
        resp.is_write = fl.req.is_write;
        resp.addr = fl.req.addr;
        resp.meta = fl.req.meta;
        if (fl.req.is_write) {
            write_bytes(fl.req.addr, fl.req.data);
        } else {
            resp.data.resize(fl.req.size);
            read_bytes(fl.req.addr, resp.data);
        }
        responses_[static_cast<std::size_t>(fl.client)].push_back(
            std::move(resp));
    }

    // Service up to `ports` queued requests, round-robin across clients.
    std::uint32_t used = 0;
    std::size_t tried = 0;
    while (used < cfg_.ports && tried < kNumLsClients) {
        auto& q = queues_[rr_next_];
        if (q.empty()) {
            rr_next_ = (rr_next_ + 1) % kNumLsClients;
            ++tried;
            continue;
        }
        in_flight_.push_back(InFlight{now + cfg_.latency,
                                      static_cast<LsClient>(rr_next_),
                                      std::move(q.front())});
        q.pop_front();
        ++served_[rr_next_];
        ++used;
        // After taking one request, move on so one client cannot hog all
        // ports while others wait.
        rr_next_ = (rr_next_ + 1) % kNumLsClients;
        tried = 0;
    }
    if (used == cfg_.ports) {
        for (const auto& q : queues_) {
            if (!q.empty()) {
                ++contended_;
                break;
            }
        }
    }
}

bool LocalStore::pop_response(LsClient client, LsResponse& out) {
    auto& q = responses_[static_cast<std::size_t>(client)];
    if (q.empty()) {
        return false;
    }
    out = std::move(q.front());
    q.pop_front();
    return true;
}

bool LocalStore::quiescent() const {
    if (!in_flight_.empty()) {
        return false;
    }
    for (const auto& q : queues_) {
        if (!q.empty()) return false;
    }
    for (const auto& q : responses_) {
        if (!q.empty()) return false;
    }
    return true;
}

}  // namespace dta::mem
