#include "mem/local_store.hpp"

#include <cstring>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace dta::mem {

namespace {

void save_ls_request(sim::StateSink& s, const LsRequest& r) {
    s.u64(r.id);
    s.flag(r.is_write);
    s.u32(r.addr);
    s.u32(r.size);
    sim::save_seq(s, r.data,
                  [](sim::StateSink& k, std::uint8_t b) { k.u8(b); });
    s.u64(r.meta);
}

void load_ls_request(sim::StateSource& s, LsRequest& r) {
    r.id = s.u64();
    r.is_write = s.flag();
    r.addr = s.u32();
    r.size = s.u32();
    sim::load_seq(s, r.data,
                  [](sim::StateSource& k, std::uint8_t& b) { b = k.u8(); });
    r.meta = s.u64();
}

}  // namespace

LocalStore::LocalStore(const LocalStoreConfig& cfg) : cfg_(cfg) {
    DTA_SIM_REQUIRE(cfg.size_bytes > 0, "local store size must be non-zero");
    DTA_SIM_REQUIRE(cfg.ports > 0, "local store needs at least one port");
    bytes_.assign(cfg.size_bytes, 0);
}

void LocalStore::bounds_check(sim::LsAddr addr, std::uint64_t size) const {
    DTA_SIM_REQUIRE(static_cast<std::uint64_t>(addr) + size <= cfg_.size_bytes,
                    "local-store access out of bounds: addr=" +
                        std::to_string(addr) + " size=" + std::to_string(size));
}

void LocalStore::write_bytes(sim::LsAddr addr,
                             std::span<const std::uint8_t> data) {
    bounds_check(addr, data.size());
    std::memcpy(bytes_.data() + addr, data.data(), data.size());
}

void LocalStore::read_bytes(sim::LsAddr addr,
                            std::span<std::uint8_t> out) const {
    bounds_check(addr, out.size());
    std::memcpy(out.data(), bytes_.data() + addr, out.size());
}

void LocalStore::write_u64(sim::LsAddr addr, std::uint64_t v) {
    std::uint8_t buf[8];
    std::memcpy(buf, &v, 8);
    write_bytes(addr, buf);
}

std::uint64_t LocalStore::read_u64(sim::LsAddr addr) const {
    std::uint8_t buf[8];
    read_bytes(addr, buf);
    std::uint64_t v;
    std::memcpy(&v, buf, 8);
    return v;
}

void LocalStore::write_u32(sim::LsAddr addr, std::uint32_t v) {
    std::uint8_t buf[4];
    std::memcpy(buf, &v, 4);
    write_bytes(addr, buf);
}

std::uint32_t LocalStore::read_u32(sim::LsAddr addr) const {
    std::uint8_t buf[4];
    read_bytes(addr, buf);
    std::uint32_t v;
    std::memcpy(&v, buf, 4);
    return v;
}

void LocalStore::enqueue(LsClient client, LsRequest req) {
    DTA_SIM_REQUIRE(req.size > 0 && req.size <= cfg_.max_request_bytes,
                    "local-store request size out of range");
    bounds_check(req.addr, req.size);
    if (req.is_write) {
        DTA_SIM_REQUIRE(req.data.size() == req.size,
                        "local-store write payload size mismatch");
    }
    queues_[static_cast<std::size_t>(client)].push_back(std::move(req));
}

void LocalStore::tick(sim::Cycle now) {
    // Retire completed accesses (FIFO service + fixed latency => FIFO done).
    while (!in_flight_.empty() && in_flight_.front().done_at <= now) {
        InFlight fl = std::move(in_flight_.front());
        in_flight_.pop_front();
        LsResponse resp;
        resp.id = fl.req.id;
        resp.is_write = fl.req.is_write;
        resp.addr = fl.req.addr;
        resp.meta = fl.req.meta;
        if (fl.req.is_write) {
            write_bytes(fl.req.addr, fl.req.data);
        } else {
            resp.data.resize(fl.req.size);
            read_bytes(fl.req.addr, resp.data);
        }
        responses_[static_cast<std::size_t>(fl.client)].push_back(
            std::move(resp));
    }

    // Service up to `ports` queued requests, round-robin across clients.
    std::uint32_t used = 0;
    std::size_t tried = 0;
    while (used < cfg_.ports && tried < kNumLsClients) {
        auto& q = queues_[rr_next_];
        if (q.empty()) {
            rr_next_ = (rr_next_ + 1) % kNumLsClients;
            ++tried;
            continue;
        }
        in_flight_.push_back(InFlight{now + cfg_.latency,
                                      static_cast<LsClient>(rr_next_),
                                      std::move(q.front())});
        q.pop_front();
        ++served_[rr_next_];
        ++used;
        // After taking one request, move on so one client cannot hog all
        // ports while others wait.
        rr_next_ = (rr_next_ + 1) % kNumLsClients;
        tried = 0;
    }
    if (used == cfg_.ports) {
        for (const auto& q : queues_) {
            if (!q.empty()) {
                ++contended_;
                break;
            }
        }
    }
}

bool LocalStore::pop_response(LsClient client, LsResponse& out) {
    auto& q = responses_[static_cast<std::size_t>(client)];
    if (q.empty()) {
        return false;
    }
    out = std::move(q.front());
    q.pop_front();
    return true;
}

void LocalStore::save_state(sim::StateSink& s) const {
    s.blob(bytes_.data(), bytes_.size());
    for (const auto& q : queues_) {
        sim::save_seq(s, q, save_ls_request);
    }
    sim::save_seq(s, in_flight_, [](sim::StateSink& k, const InFlight& fl) {
        k.u64(fl.done_at);
        k.u8(static_cast<std::uint8_t>(fl.client));
        save_ls_request(k, fl.req);
    });
    for (const auto& q : responses_) {
        sim::save_seq(s, q, [](sim::StateSink& k, const LsResponse& r) {
            k.u64(r.id);
            k.flag(r.is_write);
            k.u32(r.addr);
            sim::save_seq(k, r.data,
                          [](sim::StateSink& j, std::uint8_t b) { j.u8(b); });
            k.u64(r.meta);
        });
    }
    s.u64(rr_next_);
    for (const std::uint64_t v : served_) {
        s.u64(v);
    }
    s.u64(contended_);
}

void LocalStore::load_state(sim::StateSource& s) {
    s.blob(bytes_.data(), bytes_.size());
    for (auto& q : queues_) {
        sim::load_seq(s, q, load_ls_request);
    }
    sim::load_seq(s, in_flight_, [](sim::StateSource& k, InFlight& fl) {
        fl.done_at = k.u64();
        fl.client = static_cast<LsClient>(k.u8());
        load_ls_request(k, fl.req);
    });
    for (auto& q : responses_) {
        sim::load_seq(s, q, [](sim::StateSource& k, LsResponse& r) {
            r.id = k.u64();
            r.is_write = k.flag();
            r.addr = k.u32();
            sim::load_seq(k, r.data,
                          [](sim::StateSource& j, std::uint8_t& b) {
                              b = j.u8();
                          });
            r.meta = k.u64();
        });
    }
    rr_next_ = s.u64();
    for (std::uint64_t& v : served_) {
        v = s.u64();
    }
    contended_ = s.u64();
}

bool LocalStore::quiescent() const {
    if (!in_flight_.empty()) {
        return false;
    }
    for (const auto& q : queues_) {
        if (!q.empty()) return false;
    }
    for (const auto& q : responses_) {
        if (!q.empty()) return false;
    }
    return true;
}

}  // namespace dta::mem
