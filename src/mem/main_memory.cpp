#include "mem/main_memory.hpp"

#include <algorithm>
#include <cstring>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace dta::mem {

namespace {

void save_request(sim::StateSink& s, const MemRequest& r) {
    s.u64(r.id);
    s.u8(static_cast<std::uint8_t>(r.op));
    s.u64(r.addr);
    s.u32(r.size);
    sim::save_seq(s, r.data,
                  [](sim::StateSink& k, std::uint8_t b) { k.u8(b); });
    s.u64(r.meta);
}

void load_request(sim::StateSource& s, MemRequest& r) {
    r.id = s.u64();
    r.op = static_cast<MemOp>(s.u8());
    r.addr = s.u64();
    r.size = s.u32();
    sim::load_seq(s, r.data,
                  [](sim::StateSource& k, std::uint8_t& b) { b = k.u8(); });
    r.meta = s.u64();
}

}  // namespace

MainMemory::MainMemory(const MainMemoryConfig& cfg) : cfg_(cfg) {
    DTA_SIM_REQUIRE(cfg.size_bytes > 0, "main memory size must be non-zero");
    DTA_SIM_REQUIRE(cfg.ports > 0, "main memory needs at least one port");
    DTA_SIM_REQUIRE(cfg.max_request_bytes > 0 &&
                        cfg.max_request_bytes <= kPageBytes,
                    "invalid max_request_bytes");
    pages_.resize((cfg.size_bytes + kPageBytes - 1) / kPageBytes);
    set_name("mem");
}

void MainMemory::bounds_check(sim::MemAddr addr, std::uint64_t size) const {
    DTA_SIM_REQUIRE(addr + size <= cfg_.size_bytes && addr + size >= addr,
                    "main-memory access out of bounds: addr=" +
                        std::to_string(addr) + " size=" + std::to_string(size));
}

std::uint8_t* MainMemory::page_for(sim::MemAddr addr) {
    auto& page = pages_[addr / kPageBytes];
    if (page.empty()) {
        page.assign(kPageBytes, 0);
    }
    return page.data();
}

const std::uint8_t* MainMemory::page_if_present(sim::MemAddr addr) const {
    const auto& page = pages_[addr / kPageBytes];
    return page.empty() ? nullptr : page.data();
}

void MainMemory::write_bytes(sim::MemAddr addr,
                             std::span<const std::uint8_t> data) {
    bounds_check(addr, data.size());
    std::size_t written = 0;
    while (written < data.size()) {
        const sim::MemAddr a = addr + written;
        const std::uint64_t in_page = a % kPageBytes;
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(kPageBytes - in_page,
                                    data.size() - written));
        std::memcpy(page_for(a) + in_page, data.data() + written, chunk);
        written += chunk;
    }
}

void MainMemory::read_bytes(sim::MemAddr addr,
                            std::span<std::uint8_t> out) const {
    bounds_check(addr, out.size());
    std::size_t done = 0;
    while (done < out.size()) {
        const sim::MemAddr a = addr + done;
        const std::uint64_t in_page = a % kPageBytes;
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(kPageBytes - in_page, out.size() - done));
        if (const std::uint8_t* page = page_if_present(a)) {
            std::memcpy(out.data() + done, page + in_page, chunk);
        } else {
            std::memset(out.data() + done, 0, chunk);
        }
        done += chunk;
    }
}

void MainMemory::write_u32(sim::MemAddr addr, std::uint32_t v) {
    std::uint8_t buf[4];
    std::memcpy(buf, &v, 4);
    write_bytes(addr, buf);
}

std::uint32_t MainMemory::read_u32(sim::MemAddr addr) const {
    std::uint8_t buf[4];
    read_bytes(addr, buf);
    std::uint32_t v;
    std::memcpy(&v, buf, 4);
    return v;
}

void MainMemory::write_u64(sim::MemAddr addr, std::uint64_t v) {
    std::uint8_t buf[8];
    std::memcpy(buf, &v, 8);
    write_bytes(addr, buf);
}

std::uint64_t MainMemory::read_u64(sim::MemAddr addr) const {
    std::uint8_t buf[8];
    read_bytes(addr, buf);
    std::uint64_t v;
    std::memcpy(&v, buf, 8);
    return v;
}

void MainMemory::enqueue(MemRequest req) {
    DTA_SIM_REQUIRE(req.size > 0 && req.size <= cfg_.max_request_bytes,
                    "memory request size " + std::to_string(req.size) +
                        " exceeds max_request_bytes");
    bounds_check(req.addr, req.size);
    if (req.op == MemOp::kWrite) {
        DTA_SIM_REQUIRE(req.data.size() == req.size,
                        "write request payload size mismatch");
    }
    queue_.push_back(std::move(req));
    peak_queue_ = std::max(peak_queue_, queue_.size());
}

void MainMemory::tick(sim::Cycle now) {
    // Retire in-flight requests whose access latency elapsed.  Starts are
    // FIFO with a fixed latency, so completions are FIFO too.
    while (!in_flight_.empty() && in_flight_.front().done_at <= now) {
        InFlight fl = std::move(in_flight_.front());
        in_flight_.pop_front();
        MemResponse resp;
        resp.id = fl.req.id;
        resp.op = fl.req.op;
        resp.addr = fl.req.addr;
        resp.meta = fl.req.meta;
        if (fl.req.op == MemOp::kRead) {
            resp.data.resize(fl.req.size);
            read_bytes(fl.req.addr, resp.data);
            ++reads_served_;
            bytes_read_ += fl.req.size;
        } else {
            write_bytes(fl.req.addr, fl.req.data);
            ++writes_served_;
            bytes_written_ += fl.req.size;
        }
        responses_.push_back(std::move(resp));
    }

    // Start new requests if the channel is free.
    if (now < port_free_at_) {
        return;
    }
    std::uint32_t started = 0;
    while (!queue_.empty() && started < cfg_.ports) {
        in_flight_.push_back(
            InFlight{now + cfg_.latency, std::move(queue_.front())});
        queue_.pop_front();
        ++started;
    }
    if (started > 0) {
        port_free_at_ = now + cfg_.bank_busy;
    }
}

void MainMemory::save_state(sim::StateSink& s) const {
    // Backing store: only allocated pages, keyed by page index (ascending,
    // so the section is canonical).
    std::uint64_t live = 0;
    for (const auto& page : pages_) {
        live += page.empty() ? 0 : 1;
    }
    s.u64(live);
    for (std::size_t i = 0; i < pages_.size(); ++i) {
        if (!pages_[i].empty()) {
            s.u64(i);
            s.blob(pages_[i].data(), kPageBytes);
        }
    }
    sim::save_seq(s, queue_, save_request);
    sim::save_seq(s, in_flight_, [](sim::StateSink& k, const InFlight& fl) {
        k.u64(fl.done_at);
        save_request(k, fl.req);
    });
    sim::save_seq(s, responses_, [](sim::StateSink& k, const MemResponse& r) {
        k.u64(r.id);
        k.u8(static_cast<std::uint8_t>(r.op));
        k.u64(r.addr);
        sim::save_seq(k, r.data,
                      [](sim::StateSink& j, std::uint8_t b) { j.u8(b); });
        k.u64(r.meta);
    });
    s.u64(port_free_at_);
    s.u64(reads_served_);
    s.u64(writes_served_);
    s.u64(bytes_read_);
    s.u64(bytes_written_);
    s.u64(peak_queue_);
}

void MainMemory::load_state(sim::StateSource& s) {
    const std::uint64_t live = s.u64();
    for (std::uint64_t i = 0; i < live; ++i) {
        const std::uint64_t idx = s.u64();
        DTA_CHECK(idx < pages_.size());
        pages_[idx].resize(kPageBytes);
        s.blob(pages_[idx].data(), kPageBytes);
    }
    sim::load_seq(s, queue_, load_request);
    sim::load_seq(s, in_flight_, [](sim::StateSource& k, InFlight& fl) {
        fl.done_at = k.u64();
        load_request(k, fl.req);
    });
    sim::load_seq(s, responses_, [](sim::StateSource& k, MemResponse& r) {
        r.id = k.u64();
        r.op = static_cast<MemOp>(k.u8());
        r.addr = k.u64();
        sim::load_seq(k, r.data,
                      [](sim::StateSource& j, std::uint8_t& b) { b = j.u8(); });
        r.meta = k.u64();
    });
    port_free_at_ = s.u64();
    reads_served_ = s.u64();
    writes_served_ = s.u64();
    bytes_read_ = s.u64();
    bytes_written_ = s.u64();
    peak_queue_ = s.u64();
}

bool MainMemory::pop_response(MemResponse& out) {
    if (responses_.empty()) {
        return false;
    }
    out = std::move(responses_.front());
    responses_.pop_front();
    return true;
}

}  // namespace dta::mem
