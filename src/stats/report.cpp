#include "stats/report.hpp"

#include <iomanip>
#include <sstream>

namespace dta::stats {
namespace {

void pad(std::ostringstream& os, const std::string& s, std::size_t width) {
    os << s;
    for (std::size_t i = s.size(); i < width; ++i) {
        os << ' ';
    }
}

std::string fixed(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

}  // namespace

std::string pct(double fraction) { return fixed(fraction * 100.0, 1) + "%"; }

std::string speedup_str(std::uint64_t base, std::uint64_t improved) {
    if (improved == 0) {
        return "n/a";
    }
    return fixed(static_cast<double>(base) / static_cast<double>(improved)) +
           "x";
}

std::string breakdown_table(const std::vector<BreakdownRow>& rows) {
    static constexpr std::array<core::CycleBucket, 6> kOrder = {
        core::CycleBucket::kWorking,   core::CycleBucket::kIdle,
        core::CycleBucket::kMemStall,  core::CycleBucket::kLsStall,
        core::CycleBucket::kLseStall,  core::CycleBucket::kPrefetch,
    };
    std::ostringstream os;
    pad(os, "benchmark", 18);
    for (const auto b : kOrder) {
        pad(os, std::string(core::bucket_name(b)), 14);
    }
    os << '\n';
    for (const auto& row : rows) {
        pad(os, row.name, 18);
        for (const auto b : kOrder) {
            pad(os, pct(row.breakdown.fraction(b)), 14);
        }
        os << '\n';
    }
    return os.str();
}

std::string instruction_table(const std::vector<InstrRow>& rows) {
    std::ostringstream os;
    pad(os, "benchmark", 18);
    for (const char* col : {"Total", "LOAD", "STORE", "READ", "WRITE",
                            "LSLOAD/ST", "DMAGET"}) {
        pad(os, col, 12);
    }
    os << '\n';
    for (const auto& row : rows) {
        pad(os, row.name, 18);
        const auto& s = row.instrs;
        for (const std::uint64_t v :
             {s.total(), s.loads(), s.stores(), s.reads(), s.writes(),
              s.ls_accesses(), s.dma_commands()}) {
            pad(os, std::to_string(v), 12);
        }
        os << '\n';
    }
    return os.str();
}

std::string exec_time_table(const std::string& title,
                            const std::vector<SeriesPoint>& pts) {
    std::ostringstream os;
    os << title << '\n';
    pad(os, "PEs", 6);
    pad(os, "cycles(orig)", 16);
    pad(os, "cycles(pf)", 16);
    pad(os, "speedup", 10);
    pad(os, "scal(orig)", 12);
    pad(os, "scal(pf)", 12);
    os << '\n';
    const std::uint64_t base_np = pts.empty() ? 0 : pts.front().cycles_noprefetch;
    const std::uint64_t base_pf = pts.empty() ? 0 : pts.front().cycles_prefetch;
    for (const auto& p : pts) {
        pad(os, std::to_string(p.pes), 6);
        pad(os, std::to_string(p.cycles_noprefetch), 16);
        pad(os, std::to_string(p.cycles_prefetch), 16);
        pad(os, speedup_str(p.cycles_noprefetch, p.cycles_prefetch), 10);
        pad(os, speedup_str(base_np, p.cycles_noprefetch), 12);
        pad(os, speedup_str(base_pf, p.cycles_prefetch), 12);
        os << '\n';
    }
    return os.str();
}

std::string exec_time_csv(const std::vector<SeriesPoint>& pts) {
    std::ostringstream os;
    os << "pes,cycles_noprefetch,cycles_prefetch,speedup\n";
    for (const auto& p : pts) {
        os << p.pes << ',' << p.cycles_noprefetch << ',' << p.cycles_prefetch
           << ',';
        if (p.cycles_prefetch != 0) {
            os << fixed(static_cast<double>(p.cycles_noprefetch) /
                        static_cast<double>(p.cycles_prefetch));
        }
        os << '\n';
    }
    return os.str();
}

std::string profile_table(const std::vector<core::CodeProfile>& profile) {
    std::ostringstream os;
    pad(os, "thread code", 22);
    for (const char* col :
         {"threads", "dispatches", "cycles", "instrs", "cyc/disp"}) {
        pad(os, col, 12);
    }
    os << '\n';
    for (const auto& p : profile) {
        pad(os, p.name, 22);
        pad(os, std::to_string(p.threads_started), 12);
        pad(os, std::to_string(p.dispatches), 12);
        pad(os, std::to_string(p.pipeline_cycles), 12);
        pad(os, std::to_string(p.instructions), 12);
        pad(os,
            p.dispatches == 0
                ? "-"
                : fixed(static_cast<double>(p.pipeline_cycles) /
                            static_cast<double>(p.dispatches),
                        1),
            12);
        os << '\n';
    }
    return os.str();
}

std::string pipeline_usage_table(const std::vector<UsageRow>& rows) {
    std::ostringstream os;
    pad(os, "benchmark", 18);
    pad(os, "usage(orig)", 14);
    pad(os, "usage(pf)", 14);
    os << '\n';
    for (const auto& row : rows) {
        pad(os, row.name, 18);
        pad(os, pct(row.usage_noprefetch), 14);
        pad(os, pct(row.usage_prefetch), 14);
        os << '\n';
    }
    return os.str();
}

}  // namespace dta::stats
