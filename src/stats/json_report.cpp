#include "stats/json_report.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace dta::stats {

namespace {

/// Fixed-point double rendering: JSON has no NaN/Inf and default ostream
/// formatting flips to scientific notation, which some strict parsers'
/// consumers dislike for metrics.
std::string num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    return buf;
}

std::string indent_str(int n) { return std::string(static_cast<std::size_t>(n), ' '); }

void histogram_json(std::ostringstream& os, const sim::Histogram& h,
                    const std::string& pad) {
    os << "{\n"
       << pad << "  \"count\": " << h.count() << ",\n"
       << pad << "  \"sum\": " << h.sum() << ",\n"
       << pad << "  \"min\": " << (h.count() ? h.min() : 0) << ",\n"
       << pad << "  \"max\": " << h.max() << ",\n"
       << pad << "  \"mean\": " << num(h.mean()) << ",\n"
       << pad << "  \"p50\": " << num(h.percentile(50)) << ",\n"
       << pad << "  \"p90\": " << num(h.percentile(90)) << ",\n"
       << pad << "  \"p99\": " << num(h.percentile(99)) << ",\n"
       << pad << "  \"buckets\": {";
    bool first = true;
    for (std::size_t b = 0; b < sim::Histogram::kBuckets; ++b) {
        if (h.buckets()[b] == 0) {
            continue;
        }
        // Key = upper bound of the log2 bucket (0, 1, 3, 7, 15, ...).
        const std::uint64_t hi = b == 0 ? 0 : (b >= 64 ? ~0ull : (1ull << b) - 1);
        os << (first ? "" : ", ") << '"' << hi << "\": " << h.buckets()[b];
        first = false;
    }
    os << "}\n" << pad << "}";
}

void gauge_json(std::ostringstream& os, const sim::GaugeSeries& g,
                const std::string& pad) {
    os << "{\n"
       << pad << "  \"samples\": " << g.samples().size() << ",\n"
       << pad << "  \"last\": " << g.last() << ",\n"
       << pad << "  \"max\": " << g.max() << ",\n"
       << pad << "  \"series\": [";
    bool first = true;
    for (const sim::GaugeSample& s : g.samples()) {
        os << (first ? "" : ", ") << '[' << s.cycle << ", " << s.value << ']';
        first = false;
    }
    os << "]\n" << pad << "}";
}

}  // namespace

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(c));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string metrics_json(const sim::MetricsRegistry& reg, int indent) {
    const std::string pad = indent_str(indent);
    const std::string p1 = pad + "  ";
    const std::string p2 = pad + "    ";
    std::ostringstream os;
    os << "{\n" << p1 << "\"enabled\": " << (reg.enabled() ? "true" : "false")
       << ",\n";

    os << p1 << "\"counters\": {";
    bool first = true;
    for (const auto& [name, c] : reg.counters()) {
        os << (first ? "\n" : ",\n") << p2 << '"' << json_escape(name)
           << "\": " << c.value;
        first = false;
    }
    os << (first ? "" : "\n" + p1) << "},\n";

    os << p1 << "\"histograms\": {";
    first = true;
    for (const auto& [name, h] : reg.histograms()) {
        os << (first ? "\n" : ",\n") << p2 << '"' << json_escape(name)
           << "\": ";
        histogram_json(os, h, p2);
        first = false;
    }
    os << (first ? "" : "\n" + p1) << "},\n";

    os << p1 << "\"gauges\": {";
    first = true;
    for (const auto& [name, g] : reg.gauges()) {
        os << (first ? "\n" : ",\n") << p2 << '"' << json_escape(name)
           << "\": ";
        gauge_json(os, g, p2);
        first = false;
    }
    os << (first ? "" : "\n" + p1) << "}\n" << pad << "}";
    return os.str();
}

std::string run_report_json(const core::RunResult& r,
                            std::string_view benchmark,
                            bool include_host) {
    std::ostringstream os;
    os << "{\n";
    if (!benchmark.empty()) {
        os << "  \"benchmark\": \"" << json_escape(benchmark) << "\",\n";
    }
    os << "  \"cycles\": " << r.cycles << ",\n"
       << "  \"pes\": " << r.pes.size() << ",\n"
       << "  \"pipeline_usage\": " << num(r.pipeline_usage()) << ",\n"
       << "  \"slot_utilisation\": " << num(r.slot_utilisation()) << ",\n";

    const core::Breakdown bd = r.total_breakdown();
    os << "  \"breakdown\": {";
    for (std::size_t b = 0; b < core::kNumBuckets; ++b) {
        os << (b ? ", " : "") << '"'
           << core::bucket_name(static_cast<core::CycleBucket>(b))
           << "\": " << bd.cycles[b];
    }
    os << "},\n";

    const core::InstrStats is = r.total_instrs();
    os << "  \"instructions\": {\"total\": " << is.total()
       << ", \"loads\": " << is.loads() << ", \"stores\": " << is.stores()
       << ", \"reads\": " << is.reads() << ", \"writes\": " << is.writes()
       << ", \"ls_accesses\": " << is.ls_accesses()
       << ", \"dma_commands\": " << is.dma_commands() << "},\n";

    os << "  \"noc\": {\"packets\": " << r.noc.packets_delivered
       << ", \"bytes\": " << r.noc.bytes_transferred
       << ", \"bus_busy_cycles\": " << r.noc.bus_busy_cycles
       << ", \"inject_stalls\": " << r.noc.inject_stall_events << "},\n";

    os << "  \"memory\": {\"reads\": " << r.mem_reads
       << ", \"writes\": " << r.mem_writes
       << ", \"bytes_read\": " << r.mem_bytes_read
       << ", \"bytes_written\": " << r.mem_bytes_written
       << ", \"peak_queue\": " << r.mem_peak_queue << "},\n";

    os << "  \"dma\": {\"commands\": " << r.dma_commands
       << ", \"bytes\": " << r.dma_bytes
       << ", \"spans\": " << r.dma_spans.size() << "},\n";

    os << "  \"dse\": {\"requests\": " << r.dse_requests
       << ", \"queued\": " << r.dse_queued
       << ", \"peak_pending\": " << r.dse_peak_pending << "},\n";

    os << "  \"profile\": [";
    bool first = true;
    for (const core::CodeProfile& p : r.profile) {
        os << (first ? "\n" : ",\n") << "    {\"name\": \""
           << json_escape(p.name)
           << "\", \"threads_started\": " << p.threads_started
           << ", \"dispatches\": " << p.dispatches
           << ", \"pipeline_cycles\": " << p.pipeline_cycles
           << ", \"instructions\": " << p.instructions << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "],\n";

    // Host-side profile: present only when profiling ran, so prof-off
    // reports are byte-identical to pre-profiler ones (and a prof-on report
    // minus this section is byte-identical to a prof-off one — the
    // neutrality guarantee tests pin down).
    if (r.host_profile.enabled) {
        os << "  \"host_profile\": {\n    \"shards\": [";
        first = true;
        for (const sim::HostProfileShard& s : r.host_profile.shards) {
            os << (first ? "\n" : ",\n") << "      {\"name\": \""
               << json_escape(s.name) << "\", \"wall_ns\": " << s.wall_ns
               << ", \"coverage\": " << num(s.coverage()) << ", \"phases\": {";
            bool pfirst = true;
            for (std::size_t p = 0; p < sim::kNumProfPhases; ++p) {
                os << (pfirst ? "" : ", ") << '"'
                   << sim::prof_phase_name(static_cast<sim::ProfPhase>(p))
                   << "\": " << s.phase_ns[p];
                pfirst = false;
            }
            os << "}}";
            first = false;
        }
        os << (first ? "" : "\n    ") << "],\n    \"entries\": [";
        first = true;
        for (const sim::HostProfileEntry& e : r.host_profile.entries) {
            os << (first ? "\n" : ",\n") << "      {\"shard\": " << e.shard
               << ", \"component\": \"" << json_escape(e.component)
               << "\", \"phase\": \"" << sim::prof_phase_name(e.phase)
               << "\", \"ns\": " << e.ns << ", \"calls\": " << e.calls << "}";
            first = false;
        }
        os << (first ? "" : "\n    ") << "]\n  },\n";
    }

    // Live-telemetry timeline: present only when the sampler ran, so
    // telemetry-off reports are byte-identical to pre-telemetry ones (the
    // neutrality guarantee telemetry_neutrality_test pins down).  Only
    // simulated-state fields are serialised — host_ns and the wheel
    // counters, like RunResult::wheel itself, are host-rate and would break
    // byte-identity across wheel modes and thread counts.  The stall record
    // likewise carries only its deterministic scalars: the component list
    // and replay hint embed shard annotations that depend on the thread
    // count, so they go to the diagnostic stream and NDJSON only.
    if (r.telemetry.enabled) {
        os << "  \"telemetry\": {\n    \"interval\": " << r.telemetry.interval
           << ",\n    \"captured\": " << r.telemetry.captured
           << ",\n    \"dropped\": " << r.telemetry.dropped
           << ",\n    \"frames\": [";
        first = true;
        for (const sim::TelemetryFrame& f : r.telemetry.frames) {
            os << (first ? "\n" : ",\n") << "      {\"cycle\": " << f.cycle
               << ", \"running\": " << f.pes_running
               << ", \"ready\": " << f.threads_ready
               << ", \"waitdma\": " << f.threads_waitdma
               << ", \"frames_live\": " << f.frames_live
               << ", \"mfc_commands\": " << f.mfc_commands
               << ", \"dma_bytes\": " << f.dma_bytes
               << ", \"mem_queue\": " << f.mem_queue
               << ", \"noc_pending\": " << f.noc_pending
               << ", \"instrs_retired\": " << f.instrs_retired << "}";
            first = false;
        }
        os << (first ? "" : "\n    ") << "],\n    \"stalled\": "
           << (r.telemetry.stalled ? "true" : "false");
        if (r.telemetry.stalled) {
            os << ",\n    \"stall\": {\"cycle\": " << r.telemetry.stall.cycle
               << ", \"samples\": " << r.telemetry.stall.samples
               << ", \"stalled_cycles\": " << r.telemetry.stall.stalled_cycles
               << "}";
        }
        os << "\n  },\n";
    }

    // Host-side scheduler counters: opt-in (dta_run/dta_bench trend
    // tracking) and, like host_profile, never part of any byte-identity
    // comparison — the wheel stats differ between wheel and dense runs of
    // the same machine.
    if (include_host) {
        const sim::WheelStats& w = r.wheel;
        os << "  \"host\": {\"wheel\": {\"enabled\": "
           << (w.enabled ? "true" : "false") << ", \"pops\": " << w.pops
           << ", \"inserts\": " << w.inserts << ", \"rearms\": " << w.rearms
           << ", \"wakes\": " << w.wakes
           << ", \"active_cycles\": " << w.active_cycles
           << ", \"dense_cycles\": " << w.dense_cycles
           << ", \"dense_entries\": " << w.dense_entries
           << ", \"peak_occupancy\": " << w.peak_occupancy << "}},\n";
    }

    os << "  \"metrics\": " << metrics_json(r.metrics, 2) << "\n}\n";
    return os.str();
}

// ---------------------------------------------------------------------------
// Well-formedness checker
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view; consumes from pos_.
class JsonChecker {
public:
    explicit JsonChecker(std::string_view text) : text_(text) {}

    bool run() {
        skip_ws();
        if (!value()) {
            return false;
        }
        skip_ws();
        return pos_ == text_.size() && depth_ok_;
    }

private:
    static constexpr int kMaxDepth = 128;

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }
    [[nodiscard]] bool eat(char c) {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    [[nodiscard]] char peek() const {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) {
            return false;
        }
        pos_ += word.size();
        return true;
    }

    bool string() {
        if (!eat('"')) {
            return false;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                return true;
            }
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    return false;
                }
                const char e = text_[pos_++];
                if (e == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        if (pos_ >= text_.size() ||
                            !std::isxdigit(
                                static_cast<unsigned char>(text_[pos_]))) {
                            return false;
                        }
                        ++pos_;
                    }
                } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                           e != 'f' && e != 'n' && e != 'r' && e != 't') {
                    return false;
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return false;
            }
        }
        return false;  // unterminated
    }

    bool number() {
        const std::size_t start = pos_;
        (void)eat('-');
        while (std::isdigit(static_cast<unsigned char>(peek()))) {
            ++pos_;
        }
        if (eat('.')) {
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
            }
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') {
                ++pos_;
            }
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
            }
        }
        return pos_ > start && text_[pos_ - 1] != '-';
    }

    bool value() {
        if (++depth_ > kMaxDepth) {
            depth_ok_ = false;
            return false;
        }
        skip_ws();
        bool ok = false;
        switch (peek()) {
            case '{': ok = object(); break;
            case '[': ok = array(); break;
            case '"': ok = string(); break;
            case 't': ok = literal("true"); break;
            case 'f': ok = literal("false"); break;
            case 'n': ok = literal("null"); break;
            default: ok = number(); break;
        }
        --depth_;
        return ok;
    }

    bool object() {
        if (!eat('{')) {
            return false;
        }
        skip_ws();
        if (eat('}')) {
            return true;
        }
        while (true) {
            skip_ws();
            if (!string()) {
                return false;
            }
            skip_ws();
            if (!eat(':') || !value()) {
                return false;
            }
            skip_ws();
            if (eat('}')) {
                return true;
            }
            if (!eat(',')) {
                return false;
            }
        }
    }

    bool array() {
        if (!eat('[')) {
            return false;
        }
        skip_ws();
        if (eat(']')) {
            return true;
        }
        while (true) {
            if (!value()) {
                return false;
            }
            skip_ws();
            if (eat(']')) {
                return true;
            }
            if (!eat(',')) {
                return false;
            }
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    bool depth_ok_ = true;
};

}  // namespace

bool validate_json(std::string_view text) { return JsonChecker(text).run(); }

}  // namespace dta::stats
