#include "stats/bench_file.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "stats/json_report.hpp"
#include "stats/json_value.hpp"

namespace dta::stats {

namespace {

/// Full-precision double rendering (round-trips via strtod); %.4f would
/// destroy sub-millisecond timings.
std::string dbl(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

double median_of(std::vector<double> v) {
    if (v.empty()) {
        return 0.0;
    }
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid] : (v[mid - 1] + v[mid]) / 2.0;
}

double mad_of(const std::vector<double>& v, double center) {
    std::vector<double> dev;
    dev.reserve(v.size());
    for (const double x : v) {
        dev.push_back(std::fabs(x - center));
    }
    return median_of(std::move(dev));
}

double BenchCase::min_s() const {
    return host_seconds.empty()
               ? 0.0
               : *std::min_element(host_seconds.begin(), host_seconds.end());
}

double BenchCase::median_s() const { return median_of(host_seconds); }

double BenchCase::mad_s() const { return mad_of(host_seconds, median_s()); }

const BenchCase* BenchFile::find(std::string_view name) const {
    for (const BenchCase& c : cases) {
        if (c.name == name) {
            return &c;
        }
    }
    return nullptr;
}

std::string serialize_bench_file(const BenchFile& f) {
    std::ostringstream os;
    os << "{\n  \"schema\": \"" << BenchFile::kSchema << "\",\n"
       << "  \"label\": \"" << json_escape(f.label) << "\",\n"
       << "  \"env\": {\"git_sha\": \"" << json_escape(f.env.git_sha)
       << "\", \"compiler\": \"" << json_escape(f.env.compiler)
       << "\", \"build_type\": \"" << json_escape(f.env.build_type)
       << "\", \"host_threads\": " << f.env.host_threads << "},\n"
       << "  \"cases\": [";
    bool first = true;
    for (const BenchCase& c : f.cases) {
        os << (first ? "\n" : ",\n") << "    {\"name\": \""
           << json_escape(c.name) << "\", \"cycles\": " << c.cycles
           << ",\n     \"host_seconds\": [";
        bool sfirst = true;
        for (const double s : c.host_seconds) {
            os << (sfirst ? "" : ", ") << dbl(s);
            sfirst = false;
        }
        os << "],\n     \"min_s\": " << dbl(c.min_s())
           << ", \"median_s\": " << dbl(c.median_s())
           << ", \"mad_s\": " << dbl(c.mad_s());
        // Host-side wheel counters ride an optional "host" sub-object so
        // dense-only sessions (and older readers) see the original shape.
        if (c.wheel_pops > 0 || c.wheel_inserts > 0) {
            os << ",\n     \"host\": {\"wheel_pops\": " << c.wheel_pops
               << ", \"wheel_inserts\": " << c.wheel_inserts
               << ", \"wheel_dense_cycles\": " << c.wheel_dense_cycles
               << "}";
        }
        os << "}";
        first = false;
    }
    os << (first ? "" : "\n  ") << "]\n}\n";
    return os.str();
}

bool parse_bench_file(std::string_view text, BenchFile& out,
                      std::string& error) {
    const JsonParseResult r = parse_json(text);
    if (!r.ok) {
        error = "malformed JSON at byte " + std::to_string(r.offset) + ": " +
                r.error;
        return false;
    }
    const JsonValue& doc = r.value;
    if (!doc.is_object()) {
        error = "top level is not an object";
        return false;
    }
    const JsonValue* schema =
        doc.find("schema", JsonValue::Kind::kString);
    if (schema == nullptr || schema->as_string() != BenchFile::kSchema) {
        error = "missing or unsupported \"schema\" (want \"" +
                std::string(BenchFile::kSchema) + "\")";
        return false;
    }
    out = BenchFile{};
    if (const JsonValue* label = doc.find("label", JsonValue::Kind::kString);
        label != nullptr) {
        out.label = label->as_string();
    }
    const JsonValue* env = doc.find("env");
    if (env == nullptr || !env->is_object()) {
        error = "missing \"env\" object";
        return false;
    }
    if (const JsonValue* v = env->find("git_sha", JsonValue::Kind::kString);
        v != nullptr) {
        out.env.git_sha = v->as_string();
    }
    if (const JsonValue* v = env->find("compiler", JsonValue::Kind::kString);
        v != nullptr) {
        out.env.compiler = v->as_string();
    }
    if (const JsonValue* v =
            env->find("build_type", JsonValue::Kind::kString);
        v != nullptr) {
        out.env.build_type = v->as_string();
    }
    if (const JsonValue* v =
            env->find("host_threads", JsonValue::Kind::kNumber);
        v != nullptr) {
        out.env.host_threads = static_cast<std::uint32_t>(v->as_u64());
    }
    const JsonValue* cases = doc.find("cases");
    if (cases == nullptr || !cases->is_array()) {
        error = "missing \"cases\" array";
        return false;
    }
    for (std::size_t i = 0; i < cases->items().size(); ++i) {
        const JsonValue& jc = cases->items()[i];
        const std::string where = "cases[" + std::to_string(i) + "]";
        if (!jc.is_object()) {
            error = where + " is not an object";
            return false;
        }
        BenchCase c;
        const JsonValue* name = jc.find("name", JsonValue::Kind::kString);
        if (name == nullptr || name->as_string().empty()) {
            error = where + " has no \"name\"";
            return false;
        }
        c.name = name->as_string();
        const JsonValue* cycles =
            jc.find("cycles", JsonValue::Kind::kNumber);
        if (cycles == nullptr) {
            error = where + " (" + c.name + ") has no numeric \"cycles\"";
            return false;
        }
        c.cycles = cycles->as_u64();
        const JsonValue* secs = jc.find("host_seconds");
        if (secs == nullptr || !secs->is_array() || secs->items().empty()) {
            error = where + " (" + c.name +
                    ") has no non-empty \"host_seconds\" array";
            return false;
        }
        for (const JsonValue& s : secs->items()) {
            if (!s.is_number() || s.as_number() < 0.0) {
                error = where + " (" + c.name +
                        ") has a non-numeric or negative host_seconds entry";
                return false;
            }
            c.host_seconds.push_back(s.as_number());
        }
        // Optional host-side counters (absent in dense-only or older
        // files; never gated on, so parse is lenient).
        if (const JsonValue* h = jc.find("host");
            h != nullptr && h->is_object()) {
            if (const JsonValue* v =
                    h->find("wheel_pops", JsonValue::Kind::kNumber);
                v != nullptr) {
                c.wheel_pops = v->as_u64();
            }
            if (const JsonValue* v =
                    h->find("wheel_inserts", JsonValue::Kind::kNumber);
                v != nullptr) {
                c.wheel_inserts = v->as_u64();
            }
            if (const JsonValue* v =
                    h->find("wheel_dense_cycles", JsonValue::Kind::kNumber);
                v != nullptr) {
                c.wheel_dense_cycles = v->as_u64();
            }
        }
        out.cases.push_back(std::move(c));
    }
    return true;
}

}  // namespace dta::stats
