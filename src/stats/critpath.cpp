#include "stats/critpath.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "sim/check.hpp"

namespace dta::stats {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// One bound stretch of a thread on an SPU, as event indices into the
/// canonical log: [dispatch, end] where end is the kSuspend or kStop that
/// unbound it (kNone while open — only possible in a malformed log).
struct Seg {
    std::size_t dispatch = kNone;
    std::size_t end = kNone;
};

/// Everything pass 1 learns about one thread uid.
struct Thread {
    std::uint64_t parent = 0;
    std::uint32_t code = 0;
    std::size_t grant = kNone;
    std::size_t falloc_from = kNone;  ///< matched parent kFallocIssue
    std::vector<std::size_t> readies;
    std::vector<std::size_t> arrivals;  ///< kFrameStore, log order
    std::vector<Seg> segs;
};

struct StoreEdge {
    std::size_t issue = kNone;
    std::size_t arrival = kNone;
    std::uint64_t consumer = 0;
};

/// Last element of \p v that is < \p idx (indices are log-ordered), or
/// kNone.
std::size_t last_before(const std::vector<std::size_t>& v, std::size_t idx) {
    auto it = std::lower_bound(v.begin(), v.end(), idx);
    return it == v.begin() ? kNone : *(it - 1);
}

/// The segment of \p th containing event index \p idx, or nullptr.
const Seg* seg_containing(const Thread& th, std::size_t idx) {
    for (auto it = th.segs.rbegin(); it != th.segs.rend(); ++it) {
        if (it->dispatch <= idx && (it->end == kNone || idx <= it->end)) {
            return &*it;
        }
        if (it->end != kNone && it->end < idx) {
            return nullptr;  // idx lies between segments: not bound
        }
    }
    return nullptr;
}

/// Last *closed* segment of \p th whose end event index is < \p idx.
const Seg* closed_seg_before(const Thread& th, std::size_t idx) {
    for (auto it = th.segs.rbegin(); it != th.segs.rend(); ++it) {
        if (it->end != kNone && it->end < idx) {
            return &*it;
        }
    }
    return nullptr;
}

}  // namespace

std::string_view crit_category_name(CritCategory c) {
    switch (c) {
        case CritCategory::kCompute: return "compute";
        case CritCategory::kDmaWait: return "dma_wait";
        case CritCategory::kFrameWait: return "frame_wait";
        case CritCategory::kSchedWait: return "sched_wait";
        case CritCategory::kNocTransit: return "noc_transit";
        case CritCategory::kIdle: return "idle";
    }
    return "?";
}

CritPathReport analyze(const sim::EventFile& file) {
    const std::vector<sim::Event>& ev = file.events;
    CritPathReport r;
    r.cycles = file.cycles;
    r.pes = file.pes;
    r.code_names = file.code_names;
    r.code_on_path.assign(file.code_names.size(), 0);

    // ---- pass 1: threads, segments, and edge matching -------------------
    // FIFO matching keyed on exactly the payload both endpoints carry, so
    // reordered interleavings (different shard counts) match identically.
    std::map<std::uint64_t, Thread> threads;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::deque<std::size_t>>
        store_fifo;  ///< (producer uid, packed dest) -> kStoreIssue idxs
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint8_t>,
             std::deque<std::size_t>>
        falloc_fifo;  ///< (parent uid, code, rd) -> kFallocIssue idxs
    std::vector<StoreEdge> edges;
    std::unordered_map<std::size_t, std::size_t> arrival_issue;
    std::size_t last_stop = kNone;

    for (std::size_t i = 0; i < ev.size(); ++i) {
        const sim::Event& e = ev[i];
        switch (e.kind) {
            case sim::EventKind::kFallocIssue:
                falloc_fifo[{e.thread, e.arg, e.aux}].push_back(i);
                break;
            case sim::EventKind::kFrameGrant: {
                Thread& th = threads[e.thread];
                th.parent = e.other;
                th.code = sim::grant_code(e.arg);
                th.grant = i;
                auto it = falloc_fifo.find({e.other, th.code, e.aux});
                if (it != falloc_fifo.end() && !it->second.empty()) {
                    th.falloc_from = it->second.front();
                    it->second.pop_front();
                    ++r.falloc_edges;
                }
                break;
            }
            case sim::EventKind::kStoreIssue:
                store_fifo[{e.thread, e.arg}].push_back(i);
                break;
            case sim::EventKind::kFrameStore: {
                threads[e.thread].arrivals.push_back(i);
                auto it = store_fifo.find({e.other, e.arg});
                if (it != store_fifo.end() && !it->second.empty()) {
                    arrival_issue[i] = it->second.front();
                    edges.push_back({it->second.front(), i, e.thread});
                    it->second.pop_front();
                    ++r.store_edges;
                } else {
                    ++r.unmatched_stores;
                }
                break;
            }
            case sim::EventKind::kReady:
                threads[e.thread].readies.push_back(i);
                break;
            case sim::EventKind::kDispatch:
                threads[e.thread].segs.push_back({i, kNone});
                break;
            case sim::EventKind::kSuspend:
            case sim::EventKind::kStop: {
                Thread& th = threads[e.thread];
                DTA_SIM_REQUIRE(!th.segs.empty() &&
                                    th.segs.back().end == kNone,
                                "event log: unbind without a bound segment");
                th.segs.back().end = i;
                if (e.kind == sim::EventKind::kStop) {
                    last_stop = i;
                }
                break;
            }
            case sim::EventKind::kLinkHop:
                ++r.link_hops;
                break;
            default:
                break;  // kPhase / kDmaIssue / kDmaComplete / kFree
        }
    }
    r.threads = threads.size();

    // ---- pass 2: critical-path walk -------------------------------------
    // Backward from the final STOP, always following the latest cause.
    // `cur` is the frontier: everything in [cur, cycles) is attributed.
    // Every step moves `cur` monotonically toward 0 and attributes exactly
    // the distance moved, so the per-category totals telescope to the
    // end-to-end cycle count with no gap and no overlap.
    std::unordered_set<std::size_t> cp_issues;  ///< store issues on the path
    sim::Cycle cur = file.cycles;
    const auto attribute = [&](sim::Cycle at, CritCategory cat,
                               std::uint64_t thread, std::uint32_t code) {
        at = std::min(at, cur);
        if (cur > at) {
            r.on_path[static_cast<std::size_t>(cat)] += cur - at;
            r.path.push_back({at, cur, cat, thread, code});
            if (thread != 0 && code < r.code_on_path.size()) {
                r.code_on_path[code] += cur - at;
            }
        }
        cur = at;
    };

    if (last_stop != kNone) {
        attribute(ev[last_stop].cycle, CritCategory::kIdle, 0, 0);
        std::size_t xi = last_stop;
        std::size_t guard = 4 * ev.size() + 16;
        while (guard-- > 0) {
            // xi is an event inside a bound segment of its thread (a stop,
            // suspend, store issue, or falloc issue); cur == its cycle.
            const sim::Event& x = ev[xi];
            const Thread& th = threads.at(x.thread);
            const Seg* seg = seg_containing(th, xi);
            if (seg == nullptr || seg->dispatch == kNone) {
                break;
            }
            const sim::Event& d = ev[seg->dispatch];
            // Split the bound stretch: the emitting SPU's cumulative
            // memory-stall counter brackets exactly the cycles this
            // segment spent blocked on global memory (READs).
            const std::uint64_t span = cur > d.cycle ? cur - d.cycle : 0;
            std::uint64_t mem = x.stall >= d.stall ? x.stall - d.stall : 0;
            mem = std::min(mem, span);
            attribute(cur - (span - mem), CritCategory::kCompute, x.thread,
                      th.code);
            attribute(d.cycle, CritCategory::kDmaWait, x.thread, th.code);
            // Why did the dispatch happen only then?
            const std::size_t ready = last_before(th.readies, seg->dispatch);
            if (ready == kNone) {
                break;
            }
            attribute(ev[ready].cycle, CritCategory::kSchedWait, x.thread,
                      th.code);
            if (ev[ready].aux == 1) {
                // Wait-for-DMA resume: blocked since the suspend that
                // closed the previous segment.
                const Seg* prev = closed_seg_before(th, ready);
                if (prev == nullptr ||
                    ev[prev->end].kind != sim::EventKind::kSuspend) {
                    break;
                }
                attribute(ev[prev->end].cycle, CritCategory::kDmaWait,
                          x.thread, th.code);
                ++r.dma_edges;
                xi = prev->end;
                continue;
            }
            if (!th.arrivals.empty()) {
                // SC reached zero on the last incoming store; before that
                // the granted frame sat waiting for inputs.
                const std::size_t a = th.arrivals.back();
                attribute(ev[a].cycle, CritCategory::kFrameWait, x.thread,
                          th.code);
                auto it = arrival_issue.find(a);
                if (it == arrival_issue.end()) {
                    break;
                }
                attribute(ev[it->second].cycle, CritCategory::kNocTransit,
                          x.thread, th.code);
                cp_issues.insert(it->second);
                xi = it->second;  // continue inside the producer's segment
                continue;
            }
            // Ready straight from the grant (SC == 0): the chain continues
            // through the FALLOC that created this thread.
            if (th.grant == kNone) {
                break;
            }
            attribute(ev[th.grant].cycle, CritCategory::kFrameWait, x.thread,
                      th.code);
            if (th.falloc_from == kNone) {
                break;  // the entry thread: granted at cycle 0
            }
            attribute(ev[th.falloc_from].cycle, CritCategory::kSchedWait,
                      x.thread, th.code);
            xi = th.falloc_from;
        }
    }
    // Whatever precedes the walk's terminus (normally nothing: the entry
    // grant is at cycle 0).
    attribute(0, CritCategory::kIdle, 0, 0);
    std::uint64_t on_sum = 0;
    for (const std::uint64_t c : r.on_path) {
        on_sum += c;
    }
    DTA_CHECK_MSG(on_sum == file.cycles,
                  "critical-path attribution does not sum to the run length");

    // ---- pass 3: run-wide per-PE attribution ----------------------------
    // Each PE's [0, cycles) is carved at its dispatch/unbind marks; gaps
    // are classified by what the *next* dispatched thread was waiting for.
    // Store transit is never charged here (it always overlaps a PE-side
    // state), which is what keeps the sum exact: cycles x pes.
    std::vector<std::vector<std::size_t>> pe_marks(file.pes);
    for (std::size_t i = 0; i < ev.size(); ++i) {
        const sim::Event& e = ev[i];
        if (e.ordinal < file.pes &&
            (e.kind == sim::EventKind::kDispatch ||
             e.kind == sim::EventKind::kSuspend ||
             e.kind == sim::EventKind::kStop)) {
            pe_marks[e.ordinal].push_back(i);
        }
    }
    const auto charge = [&r](CritCategory cat, std::uint64_t n) {
        r.run_wide[static_cast<std::size_t>(cat)] += n;
    };
    for (std::uint32_t pe = 0; pe < file.pes; ++pe) {
        const std::vector<std::size_t>& marks = pe_marks[pe];
        sim::Cycle prev_end = 0;
        std::size_t m = 0;
        while (m < marks.size()) {
            const sim::Event& d = ev[marks[m]];
            DTA_SIM_REQUIRE(d.kind == sim::EventKind::kDispatch,
                            "event log: unbind mark without a dispatch");
            // Gap before this dispatch: [prev_end, ready) by cause,
            // [ready, dispatch) is the dispatch handshake.
            const Thread& th = threads.at(d.thread);
            const std::size_t ready = last_before(th.readies, marks[m]);
            sim::Cycle rc = ready != kNone ? ev[ready].cycle : prev_end;
            rc = std::clamp(rc, prev_end, d.cycle);
            CritCategory cause = CritCategory::kSchedWait;
            if (ready != kNone && ev[ready].aux == 1) {
                cause = CritCategory::kDmaWait;
            } else if (!th.arrivals.empty()) {
                cause = CritCategory::kFrameWait;
            }
            charge(cause, rc - prev_end);
            charge(CritCategory::kSchedWait, d.cycle - rc);
            if (m + 1 < marks.size()) {
                // Bound segment [dispatch, unbind]: the unbinding cycle
                // still belongs to it (same convention as ThreadSpan).
                const sim::Event& e = ev[marks[m + 1]];
                const std::uint64_t span = e.cycle + 1 - d.cycle;
                std::uint64_t mem =
                    e.stall >= d.stall ? e.stall - d.stall : 0;
                mem = std::min(mem, span);
                charge(CritCategory::kDmaWait, mem);
                charge(CritCategory::kCompute, span - mem);
                prev_end = e.cycle + 1;
                m += 2;
            } else {
                // Open segment at end of log (malformed): count as compute.
                charge(CritCategory::kCompute, file.cycles - d.cycle);
                prev_end = file.cycles;
                ++m;
            }
        }
        charge(CritCategory::kIdle, file.cycles - prev_end);
    }
    std::uint64_t wide_sum = 0;
    for (const std::uint64_t c : r.run_wide) {
        wide_sum += c;
    }
    DTA_CHECK_MSG(wide_sum == static_cast<std::uint64_t>(file.cycles) *
                                  file.pes,
                  "run-wide attribution does not sum to cycles x PEs");

    // ---- pass 4: slack and flows ----------------------------------------
    for (const auto& [uid, th] : threads) {
        (void)uid;
        if (th.arrivals.empty()) {
            continue;
        }
        const sim::Cycle last = ev[th.arrivals.back()].cycle;
        for (const std::size_t a : th.arrivals) {
            const std::uint64_t slack = last - ev[a].cycle;
            ++r.store_slack.edges;
            r.store_slack.total += slack;
            r.store_slack.max = std::max(r.store_slack.max, slack);
            if (slack == 0) {
                ++r.store_slack.zero_slack;
            }
        }
    }
    r.flows.reserve(edges.size());
    for (const StoreEdge& e : edges) {
        const Thread& consumer = threads.at(e.consumer);
        if (consumer.segs.empty()) {
            continue;
        }
        const sim::Event& issue = ev[e.issue];
        const sim::Event& disp = ev[consumer.segs.front().dispatch];
        core::TraceFlow f;
        f.src_pe = issue.ordinal;
        f.src_cycle = issue.cycle;
        f.dst_pe = disp.ordinal;
        f.dst_cycle = disp.cycle;
        f.on_critical_path = cp_issues.count(e.issue) != 0;
        r.flows.push_back(f);
    }
    return r;
}

namespace {

void emit_categories(std::ostringstream& os, const CritCycles& c,
                     const char* indent) {
    for (std::size_t i = 0; i < kNumCritCategories; ++i) {
        os << indent << '"'
           << crit_category_name(static_cast<CritCategory>(i)) << "\": "
           << c[i] << (i + 1 < kNumCritCategories ? ",\n" : "\n");
    }
}

}  // namespace

std::string critpath_json(const CritPathReport& r,
                          std::string_view benchmark) {
    constexpr std::size_t kMaxPathSteps = 512;
    std::ostringstream os;
    os << "{\n  \"report\": \"dta-critpath\",\n";
    if (!benchmark.empty()) {
        os << "  \"benchmark\": \"" << benchmark << "\",\n";
    }
    os << "  \"cycles\": " << r.cycles << ",\n"
       << "  \"pes\": " << r.pes << ",\n"
       << "  \"threads\": " << r.threads << ",\n"
       << "  \"edges\": {\"store\": " << r.store_edges
       << ", \"falloc\": " << r.falloc_edges << ", \"dma\": " << r.dma_edges
       << ", \"link_hops\": " << r.link_hops
       << ", \"unmatched_stores\": " << r.unmatched_stores << "},\n";
    os << "  \"on_path\": {\n";
    emit_categories(os, r.on_path, "    ");
    os << "  },\n  \"run_wide\": {\n";
    emit_categories(os, r.run_wide, "    ");
    os << "  },\n  \"code_on_path\": {";
    bool first = true;
    for (std::size_t c = 0; c < r.code_on_path.size(); ++c) {
        if (r.code_on_path[c] == 0) {
            continue;
        }
        os << (first ? "" : ", ") << '"'
           << (c < r.code_names.size() ? r.code_names[c]
                                       : "code" + std::to_string(c))
           << "\": " << r.code_on_path[c];
        first = false;
    }
    os << "},\n  \"store_slack\": {\"edges\": " << r.store_slack.edges
       << ", \"zero_slack\": " << r.store_slack.zero_slack
       << ", \"total\": " << r.store_slack.total
       << ", \"max\": " << r.store_slack.max << "},\n";
    os << "  \"path_steps\": " << r.path.size() << ",\n"
       << "  \"path_truncated\": "
       << (r.path.size() > kMaxPathSteps ? "true" : "false") << ",\n"
       << "  \"path\": [\n";
    const std::size_t n = std::min(r.path.size(), kMaxPathSteps);
    for (std::size_t i = 0; i < n; ++i) {
        const CritStep& s = r.path[i];
        os << "    {\"from\": " << s.from << ", \"to\": " << s.to
           << ", \"category\": \"" << crit_category_name(s.category)
           << "\", \"thread\": " << s.thread << ", \"code\": \""
           << (s.thread != 0 && s.code < r.code_names.size()
                   ? r.code_names[s.code]
                   : "")
           << "\"}" << (i + 1 < n ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string critpath_text(const CritPathReport& r, std::size_t top_k) {
    std::ostringstream os;
    os << "critical path over " << r.cycles << " cycles, " << r.pes
       << " PEs, " << r.threads << " threads (" << r.store_edges
       << " store edges, " << r.falloc_edges << " falloc edges, "
       << r.dma_edges << " DMA waits on path)\n";
    const auto table = [&](const char* title, const CritCycles& c,
                           std::uint64_t total) {
        os << title << ":\n";
        for (std::size_t i = 0; i < kNumCritCategories; ++i) {
            const double pct =
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(c[i]) /
                                 static_cast<double>(total);
            os << "  " << crit_category_name(static_cast<CritCategory>(i))
               << ": " << c[i] << " (" << static_cast<int>(pct + 0.5)
               << "%)\n";
        }
    };
    table("on-path attribution", r.on_path, r.cycles);
    table("run-wide attribution", r.run_wide,
          static_cast<std::uint64_t>(r.cycles) * r.pes);
    // Longest steps first; ties resolve to the earlier span so the listing
    // is deterministic.
    std::vector<const CritStep*> by_len;
    by_len.reserve(r.path.size());
    for (const CritStep& s : r.path) {
        by_len.push_back(&s);
    }
    std::stable_sort(by_len.begin(), by_len.end(),
                     [](const CritStep* a, const CritStep* b) {
                         const sim::Cycle la = a->to - a->from;
                         const sim::Cycle lb = b->to - b->from;
                         return la != lb ? la > lb : a->from < b->from;
                     });
    const std::size_t n = std::min(top_k, by_len.size());
    os << "top " << n << " critical-path steps:\n";
    for (std::size_t i = 0; i < n; ++i) {
        const CritStep& s = *by_len[i];
        os << "  [" << s.from << ", " << s.to << ") "
           << crit_category_name(s.category);
        if (s.thread != 0) {
            os << " thread pe" << (s.thread >> 32) << '#'
               << (s.thread & 0xffffffffull);
            if (s.code < r.code_names.size()) {
                os << " '" << r.code_names[s.code] << '\'';
            }
        }
        os << " (" << (s.to - s.from) << " cycles)\n";
    }
    return os.str();
}

}  // namespace dta::stats
