#include "stats/json_value.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dta::stats {

const JsonValue* JsonValue::find(std::string_view key) const {
    for (const Member& m : members_) {
        if (m.first == key) {
            return &m.second;
        }
    }
    return nullptr;
}

const JsonValue* JsonValue::find(std::string_view key, Kind kind) const {
    const JsonValue* v = find(key);
    return v != nullptr && v->kind() == kind ? v : nullptr;
}

JsonValue JsonValue::make_bool(bool v) {
    JsonValue j;
    j.kind_ = Kind::kBool;
    j.flag_ = v;
    return j;
}

JsonValue JsonValue::make_number(double v) {
    JsonValue j;
    j.kind_ = Kind::kNumber;
    j.number_ = v;
    return j;
}

JsonValue JsonValue::make_string(std::string v) {
    JsonValue j;
    j.kind_ = Kind::kString;
    j.string_ = std::move(v);
    return j;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
    JsonValue j;
    j.kind_ = Kind::kArray;
    j.items_ = std::move(items);
    return j;
}

JsonValue JsonValue::make_object(std::vector<JsonValue::Member> members) {
    JsonValue j;
    j.kind_ = Kind::kObject;
    j.members_ = std::move(members);
    return j;
}

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonParseResult run() {
        JsonParseResult r;
        skip_ws();
        if (!value(r.value)) {
            r.error = error_.empty() ? "malformed value" : error_;
            r.offset = pos_;
            return r;
        }
        skip_ws();
        if (pos_ != text_.size()) {
            r.error = "trailing characters after document";
            r.offset = pos_;
            return r;
        }
        r.ok = true;
        return r;
    }

private:
    static constexpr int kMaxDepth = 128;

    void skip_ws() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }
    [[nodiscard]] char peek() const {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }
    bool eat(char c) {
        if (peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }
    bool fail(const char* what) {
        if (error_.empty()) {
            error_ = what;
        }
        return false;
    }

    bool literal(std::string_view word) {
        if (text_.substr(pos_, word.size()) != word) {
            return fail("bad literal");
        }
        pos_ += word.size();
        return true;
    }

    bool string(std::string& out) {
        if (!eat('"')) {
            return fail("expected string");
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                return true;
            }
            if (c == '\\') {
                if (pos_ >= text_.size()) {
                    return fail("unterminated escape");
                }
                const char e = text_[pos_++];
                switch (e) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'n': out += '\n'; break;
                    case 'r': out += '\r'; break;
                    case 't': out += '\t'; break;
                    case 'u': {
                        unsigned cp = 0;
                        for (int i = 0; i < 4; ++i) {
                            if (pos_ >= text_.size()) {
                                return fail("bad \\u escape");
                            }
                            const char h = text_[pos_++];
                            cp <<= 4;
                            if (h >= '0' && h <= '9') {
                                cp |= static_cast<unsigned>(h - '0');
                            } else if (h >= 'a' && h <= 'f') {
                                cp |= static_cast<unsigned>(h - 'a' + 10);
                            } else if (h >= 'A' && h <= 'F') {
                                cp |= static_cast<unsigned>(h - 'A' + 10);
                            } else {
                                return fail("bad \\u escape");
                            }
                        }
                        // Encode the code point as UTF-8 (surrogate pairs
                        // are passed through as two 3-byte sequences; the
                        // reports this parser reads never emit them).
                        if (cp < 0x80) {
                            out += static_cast<char>(cp);
                        } else if (cp < 0x800) {
                            out += static_cast<char>(0xc0 | (cp >> 6));
                            out += static_cast<char>(0x80 | (cp & 0x3f));
                        } else {
                            out += static_cast<char>(0xe0 | (cp >> 12));
                            out += static_cast<char>(0x80 |
                                                     ((cp >> 6) & 0x3f));
                            out += static_cast<char>(0x80 | (cp & 0x3f));
                        }
                        break;
                    }
                    default: return fail("bad escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                return fail("raw control character in string");
            } else {
                out += c;
            }
        }
        return fail("unterminated string");
    }

    /// Consumes a digit run; returns how many digits it saw.
    std::size_t digits() {
        const std::size_t start = pos_;
        while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            ++pos_;
        }
        return pos_ - start;
    }

    bool number(double& out) {
        const std::size_t start = pos_;
        (void)eat('-');
        // Strict JSON grammar: at least one integer digit, no leading
        // zeros, and a digit after '.' and after the exponent marker —
        // ".5", "01", "1.", "-" and "1e" are errors, not whatever strtod
        // makes of them.
        const std::size_t int_start = pos_;
        const std::size_t int_digits = digits();
        if (int_digits == 0) {
            return fail("malformed number");
        }
        if (int_digits > 1 && text_[int_start] == '0') {
            return fail("malformed number");
        }
        if (eat('.') && digits() == 0) {
            return fail("malformed number");
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-') {
                ++pos_;
            }
            if (digits() == 0) {
                return fail("malformed number");
            }
        }
        const std::string tok(text_.substr(start, pos_ - start));
        char* end = nullptr;
        out = std::strtod(tok.c_str(), &end);
        if (end == nullptr || *end != '\0' || !std::isfinite(out)) {
            return fail("malformed number");
        }
        return true;
    }

    bool value(JsonValue& out) {
        if (++depth_ > kMaxDepth) {
            return fail("nesting too deep");
        }
        skip_ws();
        bool ok = false;
        switch (peek()) {
            case '{': ok = object(out); break;
            case '[': ok = array(out); break;
            case '"': {
                std::string s;
                ok = string(s);
                if (ok) {
                    out = JsonValue::make_string(std::move(s));
                }
                break;
            }
            case 't':
                ok = literal("true");
                out = JsonValue::make_bool(true);
                break;
            case 'f':
                ok = literal("false");
                out = JsonValue::make_bool(false);
                break;
            case 'n':
                ok = literal("null");
                out = JsonValue::make_null();
                break;
            default: {
                double d = 0.0;
                ok = number(d);
                if (ok) {
                    out = JsonValue::make_number(d);
                }
                break;
            }
        }
        --depth_;
        return ok;
    }

    bool object(JsonValue& out) {
        if (!eat('{')) {
            return fail("expected object");
        }
        std::vector<JsonValue::Member> members;
        skip_ws();
        if (eat('}')) {
            out = JsonValue::make_object(std::move(members));
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (!string(key)) {
                return false;
            }
            skip_ws();
            if (!eat(':')) {
                return fail("expected ':' after object key");
            }
            JsonValue v;
            if (!value(v)) {
                return false;
            }
            // Reject duplicate keys outright: with this parser fronting the
            // serve wire protocol, "last key silently wins" would let a
            // request smuggle a second "op"/"job" past any validator that
            // looked at the first.  O(n^2) per object is fine at the small
            // member counts our documents carry.
            for (const JsonValue::Member& m : members) {
                if (m.first == key) {
                    return fail("duplicate object key");
                }
            }
            members.emplace_back(std::move(key), std::move(v));
            skip_ws();
            if (eat('}')) {
                out = JsonValue::make_object(std::move(members));
                return true;
            }
            if (!eat(',')) {
                return fail("expected ',' or '}' in object");
            }
        }
    }

    bool array(JsonValue& out) {
        if (!eat('[')) {
            return fail("expected array");
        }
        std::vector<JsonValue> items;
        skip_ws();
        if (eat(']')) {
            out = JsonValue::make_array(std::move(items));
            return true;
        }
        while (true) {
            JsonValue v;
            if (!value(v)) {
                return false;
            }
            items.push_back(std::move(v));
            skip_ws();
            if (eat(']')) {
                out = JsonValue::make_array(std::move(items));
                return true;
            }
            if (!eat(',')) {
                return fail("expected ',' or ']' in array");
            }
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;
};

}  // namespace

JsonParseResult parse_json(std::string_view text) {
    return Parser(text).run();
}

namespace {

void escape_into(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void dump_into(std::string& out, const JsonValue& v) {
    switch (v.kind()) {
        case JsonValue::Kind::kNull: out += "null"; break;
        case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false";
            break;
        case JsonValue::Kind::kNumber: {
            const double d = v.as_number();
            char buf[40];
            // Integer-valued doubles inside the exact-integer range print
            // as integers (cycle counts, byte sizes); the rest round-trip
            // through %.17g.
            if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
                d >= -9.0e15 && d <= 9.0e15) {
                std::snprintf(buf, sizeof buf, "%lld",
                              static_cast<long long>(d));
            } else {
                std::snprintf(buf, sizeof buf, "%.17g", d);
            }
            out += buf;
            break;
        }
        case JsonValue::Kind::kString: escape_into(out, v.as_string()); break;
        case JsonValue::Kind::kArray: {
            out += '[';
            bool first = true;
            for (const JsonValue& item : v.items()) {
                if (!first) {
                    out += ',';
                }
                first = false;
                dump_into(out, item);
            }
            out += ']';
            break;
        }
        case JsonValue::Kind::kObject: {
            out += '{';
            bool first = true;
            for (const JsonValue::Member& m : v.members()) {
                if (!first) {
                    out += ',';
                }
                first = false;
                escape_into(out, m.first);
                out += ':';
                dump_into(out, m.second);
            }
            out += '}';
            break;
        }
    }
}

}  // namespace

std::string dump_json(const JsonValue& v) {
    std::string out;
    dump_into(out, v);
    return out;
}

}  // namespace dta::stats
