/// \file json_value.hpp
/// \brief A small owning JSON document model with a recursive-descent
///        parser — the read side that stats/json_report.hpp (write-only)
///        never needed until dta_benchdiff had to *consume* bench reports.
///
/// Scope is deliberately narrow: UTF-8 pass-through, numbers as double
/// (with the exact integer range of double, plenty for ns counts and
/// cycle totals), objects as ordered key/value vectors preserving input
/// order.
///
/// The parser is strict — it now also fronts the serve wire protocol
/// (src/serve/), which makes its input attacker-adjacent for the first
/// time: trailing garbage after the top-level value, duplicate object
/// keys (previously resolved to the first occurrence, silently), and
/// non-grammar numbers (".5", "1.", "1e") are all hard errors.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dta::stats {

/// One parsed JSON value.  A tree of these owns all its storage.
class JsonValue {
public:
    enum class Kind : std::uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
    [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
    [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
    [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
    [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
    [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

    [[nodiscard]] bool as_bool() const { return flag_; }
    [[nodiscard]] double as_number() const { return number_; }
    [[nodiscard]] std::uint64_t as_u64() const {
        return number_ < 0 ? 0 : static_cast<std::uint64_t>(number_);
    }
    [[nodiscard]] const std::string& as_string() const { return string_; }
    [[nodiscard]] const std::vector<JsonValue>& items() const {
        return items_;
    }
    [[nodiscard]] const std::vector<Member>& members() const {
        return members_;
    }

    /// First member with key \p key, or null if absent (also on
    /// non-objects, so lookups chain without intermediate checks).
    [[nodiscard]] const JsonValue* find(std::string_view key) const;
    /// find() that also requires the member to have \p kind.
    [[nodiscard]] const JsonValue* find(std::string_view key,
                                        Kind kind) const;

    static JsonValue make_null() { return JsonValue(); }
    static JsonValue make_bool(bool v);
    static JsonValue make_number(double v);
    static JsonValue make_string(std::string v);
    static JsonValue make_array(std::vector<JsonValue> items);
    static JsonValue make_object(std::vector<Member> members);

private:
    Kind kind_ = Kind::kNull;
    bool flag_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/// Parse outcome: either a document or a one-line error with the byte
/// offset where parsing stopped.
struct JsonParseResult {
    bool ok = false;
    JsonValue value;
    std::string error;       ///< empty when ok
    std::size_t offset = 0;  ///< byte position of the failure
};

/// Parses one complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error).
[[nodiscard]] JsonParseResult parse_json(std::string_view text);

/// Serialises \p v back to compact JSON (no whitespace).  Integer-valued
/// numbers print without a decimal point; everything else uses shortest
/// round-trip formatting.  dump(parse_json(x).value) is parseable by
/// parse_json — the serve client uses this to embed user-supplied job
/// specs into request frames.
[[nodiscard]] std::string dump_json(const JsonValue& v);

}  // namespace dta::stats
