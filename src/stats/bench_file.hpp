/// \file bench_file.hpp
/// \brief The `dta-bench-v1` benchmark-report format: what tools/dta_bench
///        writes, tools/dta_benchdiff compares, and CI archives per PR.
///
/// One file is one bench session: an environment block (git sha, compiler,
/// build type, host threads — enough provenance to refuse apples-to-oranges
/// comparisons) plus one case per (workload, config) with the simulated
/// cycle count and every repeat's host wall-clock seconds.  Robust
/// statistics (min / median / MAD) are stored for human readers but always
/// recomputed from the samples on parse, so a hand-edited summary can never
/// disagree with its own data.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dta::stats {

/// Environment provenance captured at bench time.
struct BenchEnv {
    std::string git_sha;     ///< "unknown" when not in a git checkout
    std::string compiler;    ///< e.g. "g++ 13.2.0" (__VERSION__)
    std::string build_type;  ///< CMAKE_BUILD_TYPE baked in at compile time
    std::uint32_t host_threads = 0;  ///< hardware_concurrency at bench time
};

/// One benchmarked (workload, config) point.
struct BenchCase {
    std::string name;            ///< e.g. "fig5/mmul/orig"
    std::uint64_t cycles = 0;    ///< simulated cycles (identical per repeat)
    std::vector<double> host_seconds;  ///< one wall-clock sample per repeat

    /// Host-side scheduler counters from one wheel-on run of the case
    /// (all zero when every sample ran dense, or for pre-existing files).
    /// Trend data only — like RunResult::wheel these describe the
    /// simulator, not the machine, so the dta_benchdiff regression gate
    /// never reads them.
    std::uint64_t wheel_pops = 0;
    std::uint64_t wheel_inserts = 0;
    std::uint64_t wheel_dense_cycles = 0;

    [[nodiscard]] double min_s() const;
    [[nodiscard]] double median_s() const;
    /// Median absolute deviation of the samples around their median — the
    /// robust spread estimate the diff thresholds are scaled by.
    [[nodiscard]] double mad_s() const;
};

/// One bench session (one BENCH_<label>.json file).
struct BenchFile {
    static constexpr std::string_view kSchema = "dta-bench-v1";

    std::string label;
    BenchEnv env;
    std::vector<BenchCase> cases;

    [[nodiscard]] const BenchCase* find(std::string_view name) const;
};

/// Median of \p v (0 when empty).  Exposed for the bench driver itself.
[[nodiscard]] double median_of(std::vector<double> v);
/// Median absolute deviation of \p v around \p center.
[[nodiscard]] double mad_of(const std::vector<double>& v, double center);

/// Renders \p f as a schema-conforming JSON document.
[[nodiscard]] std::string serialize_bench_file(const BenchFile& f);

/// Parses and schema-validates one bench file.  Returns false with a
/// one-line \p error naming the offending field on any violation: wrong or
/// missing schema tag, non-object env, case without name / cycles /
/// non-empty host_seconds, or malformed JSON.
bool parse_bench_file(std::string_view text, BenchFile& out,
                      std::string& error);

}  // namespace dta::stats
