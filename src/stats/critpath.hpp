/// \file critpath.hpp
/// \brief Dynamic-dataflow reconstruction and critical-path cycle
///        attribution over a thread-lifecycle event log (sim/events.hpp).
///
/// The analyzer rebuilds the run's dataflow DAG — nodes are bound thread
/// segments, edges are frame stores (producer STORE -> consumer SC
/// decrement), FALLOC parent links (parent issue -> child grant), and DMA
/// completions (suspend -> resume) — then walks the latest-cause chain
/// backward from the final STOP.  Every cycle of the end-to-end run lands
/// in exactly one category:
///
///   compute      bound SPU cycles not blocked on global memory
///   dma_wait     waiting on global-memory transfers: blocking READ stalls
///                while bound, and Wait-for-DMA suspensions
///   frame_wait   a granted frame waiting for its input stores (and, for
///                virtual frames, for a physical slot to materialize into)
///   sched_wait   FALLOC in flight at the DSE, and ready-to-dispatch
///                handshakes
///   noc_transit  a frame store in flight from producer to consumer LSE
///   idle         after the final STOP (machine drain), and PEs with
///                nothing runnable in the run-wide view
///
/// Two attributions are computed: **on-path** (the critical-path walk; sums
/// to exactly the end-to-end cycle count) and **run-wide** (every PE's
/// every cycle, classified from its event timeline; sums to exactly
/// cycles x PEs).  noc_transit only surfaces on the path: run-wide, a
/// store's transit always overlaps some PE-side state and double-charging
/// it would break the exact-sum invariant.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/trace.hpp"
#include "sim/events.hpp"

namespace dta::stats {

/// Attribution categories (see file comment).
enum class CritCategory : std::uint8_t {
    kCompute,
    kDmaWait,
    kFrameWait,
    kSchedWait,
    kNocTransit,
    kIdle,
};
inline constexpr std::size_t kNumCritCategories = 6;
[[nodiscard]] std::string_view crit_category_name(CritCategory c);

/// Cycles per category; sums to a known total by construction.
using CritCycles = std::array<std::uint64_t, kNumCritCategories>;

/// One step of the critical-path walk (end-to-start order): the half-open
/// cycle span [from, to) attributed to \p category while following thread
/// \p thread (0 for the trailing idle span).
struct CritStep {
    sim::Cycle from = 0;
    sim::Cycle to = 0;
    CritCategory category = CritCategory::kIdle;
    std::uint64_t thread = 0;
    std::uint32_t code = 0;  ///< thread code id (0 when thread == 0)
};

/// Slack statistics over one edge class: how much earlier than needed each
/// input arrived (0 = the arrival that fired the consumer).
struct SlackStats {
    std::uint64_t edges = 0;
    std::uint64_t zero_slack = 0;  ///< arrivals on their consumer's last gasp
    std::uint64_t total = 0;
    std::uint64_t max = 0;
};

/// Everything the analyzer derives from one event file.
struct CritPathReport {
    sim::Cycle cycles = 0;   ///< end-to-end run length
    std::uint32_t pes = 0;
    std::uint64_t threads = 0;
    std::uint64_t store_edges = 0;    ///< matched issue->arrival pairs
    std::uint64_t falloc_edges = 0;   ///< matched issue->grant pairs
    std::uint64_t dma_edges = 0;      ///< suspend->resume pairs on the walk
    std::uint64_t link_hops = 0;      ///< kLinkHop events (node crossings)
    std::uint64_t unmatched_stores = 0;  ///< arrivals with no issue (0 in a
                                         ///< well-formed log)

    /// Critical-path attribution; sums to exactly `cycles`.
    CritCycles on_path{};
    /// Run-wide attribution; sums to exactly `cycles * pes`.
    CritCycles run_wide{};
    /// The walk itself, end-to-start.
    std::vector<CritStep> path;
    /// On-path cycles per thread code (aligned with code_names).
    std::vector<std::uint64_t> code_on_path;
    std::vector<std::string> code_names;
    /// Store-edge slack (how hot the dataflow edges run).
    SlackStats store_slack;
    /// Dataflow arrows for the Chrome-trace export: one per store edge
    /// whose consumer dispatched, critical-path edges marked.
    std::vector<core::TraceFlow> flows;
};

/// Runs the full analysis.  Throws sim::SimError when the log violates the
/// event-contract invariants it depends on (e.g. a dispatch for a thread
/// that was never granted).
[[nodiscard]] CritPathReport analyze(const sim::EventFile& file);

/// Serialises a report as a deterministic JSON document (stable key order,
/// integers only — byte-identical across runs that produced identical
/// logs).  \p benchmark names the workload in the header ("" omits it).
[[nodiscard]] std::string critpath_json(const CritPathReport& r,
                                        std::string_view benchmark = "");

/// Human-readable summary: the attribution tables plus the top_k longest
/// critical-path steps.
[[nodiscard]] std::string critpath_text(const CritPathReport& r,
                                        std::size_t top_k = 10);

}  // namespace dta::stats
