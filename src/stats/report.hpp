/// \file report.hpp
/// \brief Table / series formatting for the benchmark harnesses: renders
///        the paper's figures and tables as aligned text and CSV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/breakdown.hpp"
#include "core/machine.hpp"

namespace dta::stats {

/// One bar of a Fig. 5-style breakdown chart.
struct BreakdownRow {
    std::string name;
    core::Breakdown breakdown;
};

/// Renders the Fig. 5 execution-time breakdown as percentages per category
/// (paper view: six categories, pipeline hazards folded into Working).
[[nodiscard]] std::string breakdown_table(
    const std::vector<BreakdownRow>& rows);

/// One row of a Table 5-style dynamic instruction-count table.
struct InstrRow {
    std::string name;
    core::InstrStats instrs;
};

/// Renders Table 5 (Total / LOAD / STORE / READ / WRITE) plus the
/// prefetch-era columns (LS accesses, DMA commands).
[[nodiscard]] std::string instruction_table(const std::vector<InstrRow>& rows);

/// A measured point of an execution-time / scalability series.
struct SeriesPoint {
    std::uint32_t pes = 0;
    std::uint64_t cycles_noprefetch = 0;
    std::uint64_t cycles_prefetch = 0;
};

/// Renders a Fig. 6/7/8-style table: execution time for both variants per
/// PE count, the prefetch speedup, and each variant's self-relative
/// scalability (time(1 PE) / time(p PEs)).
[[nodiscard]] std::string exec_time_table(const std::string& title,
                                          const std::vector<SeriesPoint>& pts);

/// Renders the same series as CSV (for plotting).
[[nodiscard]] std::string exec_time_csv(const std::vector<SeriesPoint>& pts);

/// Renders Fig. 9: pipeline usage (% cycles with >= 1 issue) per benchmark
/// with and without prefetching.
struct UsageRow {
    std::string name;
    double usage_noprefetch = 0.0;
    double usage_prefetch = 0.0;
};
[[nodiscard]] std::string pipeline_usage_table(
    const std::vector<UsageRow>& rows);

/// Renders the per-thread-code profile of a run (threads started, SPU
/// cycles held, instructions, cycles per dispatch).
[[nodiscard]] std::string profile_table(
    const std::vector<core::CodeProfile>& profile);

/// x / y formatted as a ratio ("11.18x"); y == 0 yields "n/a".
[[nodiscard]] std::string speedup_str(std::uint64_t base,
                                      std::uint64_t improved);

/// Fixed-width percentage ("94.2%").
[[nodiscard]] std::string pct(double fraction);

}  // namespace dta::stats
