/// \file json_report.hpp
/// \brief Machine-readable run reports: serialises a RunResult (including
///        the metrics registry) to JSON for dashboards and regression
///        tooling, plus a dependency-free well-formedness checker used by
///        the tests and the CLI.
#pragma once

#include <string>
#include <string_view>

#include "core/machine.hpp"
#include "sim/metrics.hpp"

namespace dta::stats {

/// Escapes a string for embedding in a JSON document (quotes, backslashes,
/// control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Serialises just the metrics registry: one object per counter, histogram
/// (count/sum/min/max/mean/p50/p90/p99 + non-empty log2 buckets) and gauge
/// (last/max + the sampled [cycle, value] series).
[[nodiscard]] std::string metrics_json(const sim::MetricsRegistry& reg,
                                       int indent = 0);

/// Serialises a whole run: cycle count, aggregate breakdown and instruction
/// mix, fabric / memory / DMA / DSE totals, the per-thread-code profile,
/// and — when the run collected them — the metrics registry.
/// \p benchmark names the workload in the report header ("" omits it).
/// \p include_host additionally emits the "host" section (timing-wheel
/// scheduler counters).  Off by default because those counters describe the
/// host-side scheduler, not the machine: every byte-identity comparison
/// (wheel-vs-dense differential, neutrality tests) uses the default.
[[nodiscard]] std::string run_report_json(const core::RunResult& r,
                                          std::string_view benchmark = "",
                                          bool include_host = false);

/// Minimal recursive-descent JSON well-formedness check (structure only, no
/// schema).  Exists so tests and the CLI can validate emitted documents
/// without an external JSON dependency.
[[nodiscard]] bool validate_json(std::string_view text);

}  // namespace dta::stats
