#include "noc/interconnect.hpp"

#include <algorithm>
#include <utility>

#include "sim/audit.hpp"
#include "sim/check.hpp"

namespace dta::noc {

Interconnect::Interconnect(const InterconnectConfig& cfg,
                           std::uint32_t num_endpoints)
    : cfg_(cfg) {
    DTA_SIM_REQUIRE(cfg.num_buses > 0, "interconnect needs at least one bus");
    DTA_SIM_REQUIRE(cfg.bytes_per_cycle > 0, "bus bandwidth must be non-zero");
    DTA_SIM_REQUIRE(num_endpoints > 0, "interconnect needs endpoints");
    inject_.resize(num_endpoints);
    inbox_.resize(num_endpoints);
    sinks_.assign(num_endpoints, nullptr);
    bus_free_at_.assign(cfg.num_buses, 0);
    set_name("noc");
}

void Interconnect::bind_endpoint(EndpointId dst, sim::Port<Packet>* sink) {
    DTA_CHECK(dst < sinks_.size());
    sinks_[dst] = sink;
}

std::uint32_t Interconnect::transfer_cycles(const Packet& pkt) const {
    const std::uint32_t sz = pkt.size_bytes == 0 ? 1 : pkt.size_bytes;
    return (sz + cfg_.bytes_per_cycle - 1) / cfg_.bytes_per_cycle;
}

bool Interconnect::can_inject(EndpointId src) const {
    DTA_CHECK(src < inject_.size());
    return inject_[src].size() < cfg_.inject_queue_depth;
}

bool Interconnect::try_inject(EndpointId src, Packet pkt, sim::Cycle now) {
    DTA_CHECK(src < inject_.size());
    DTA_CHECK_MSG(pkt.dst < inbox_.size(), "packet addressed off the fabric");
    if (inject_[src].size() >= cfg_.inject_queue_depth) {
        ++stats_.inject_stall_events;
        return false;
    }
    pkt.src = src;
    pkt.enq_at = now;
    inject_[src].push_back(std::move(pkt));
    ++inject_pending_;
    ++stats_.packets_injected;
    if (waker_ != nullptr) {
        waker_->wake(waker_comp_);
    }
    return true;
}

std::size_t Interconnect::pending() const {
    std::size_t n = in_transit_.size() + inject_pending_;
    for (const auto& q : inbox_) {
        n += q.size();
    }
    return n;
}

void Interconnect::tick(sim::Cycle now) {
    if (inject_pending_ == 0 && in_transit_.empty()) {
        return;  // empty fabric: nothing to mature, nothing to grant
    }
    // 1. Mature in-flight packets into destination inboxes.
    while (!in_transit_.empty() && in_transit_.top().deliver_at <= now) {
        // priority_queue::top is const; copy (packets are small except DMA
        // lines, which are <= 128 bytes).
        InTransit it = in_transit_.top();
        in_transit_.pop();
        if (pkt_latency_ != nullptr) {
            pkt_latency_->record(now - it.pkt.enq_at);
        }
        if (sinks_[it.pkt.dst] != nullptr) {
            sinks_[it.pkt.dst]->push(std::move(it.pkt));
        } else {
            inbox_[it.pkt.dst].push_back(std::move(it.pkt));
        }
        ++stats_.packets_delivered;
    }

    // 2. Grant free buses to waiting injection queues, round-robin.
    for (std::uint32_t bus = 0; bus < cfg_.num_buses; ++bus) {
        if (inject_pending_ == 0) {
            break;
        }
        if (bus_free_at_[bus] > now) {
            continue;
        }
        // Find the next endpoint with pending traffic.
        bool granted = false;
        for (std::size_t probe = 0; probe < inject_.size(); ++probe) {
            const std::size_t ep = (rr_next_ + probe) % inject_.size();
            if (inject_[ep].empty()) {
                continue;
            }
            Packet pkt = std::move(inject_[ep].front());
            inject_[ep].pop_front();
            --inject_pending_;
            const std::uint32_t occupancy = transfer_cycles(pkt);
            bus_free_at_[bus] = now + occupancy;
            stats_.bus_busy_cycles += occupancy;
            stats_.bytes_transferred += pkt.size_bytes;
            in_transit_.push(InTransit{now + occupancy + cfg_.hop_latency,
                                       seq_++, std::move(pkt)});
            rr_next_ = (ep + 1) % inject_.size();
            granted = true;
            break;
        }
        if (!granted) {
            break;  // nothing pending anywhere; remaining buses stay idle
        }
    }
}

bool Interconnect::pop_delivered(EndpointId dst, Packet& out) {
    DTA_CHECK(dst < inbox_.size());
    auto& q = inbox_[dst];
    if (q.empty()) {
        return false;
    }
    out = std::move(q.front());
    q.pop_front();
    return true;
}

void Interconnect::audit(const sim::AuditCtx& ctx) const {
    std::size_t queued = 0;
    for (const auto& q : inject_) {
        queued += q.size();
        if (q.size() > cfg_.inject_queue_depth) {
            ctx.fail("packet-conservation",
                     "an injection queue holds " + std::to_string(q.size()) +
                         " packets, over the depth of " +
                         std::to_string(cfg_.inject_queue_depth));
        }
    }
    if (queued != inject_pending_) {
        ctx.fail("packet-conservation",
                 "inject_pending says " + std::to_string(inject_pending_) +
                     " but the injection queues hold " +
                     std::to_string(queued) + " packets");
    }
    // Conservation: a packet is counted delivered when it matures into a
    // sink or inbox, so injected must equal delivered plus what is still on
    // a bus or waiting for one.
    if (stats_.packets_injected !=
        stats_.packets_delivered + in_transit_.size() + inject_pending_) {
        ctx.fail("packet-conservation",
                 "injected " + std::to_string(stats_.packets_injected) +
                     " != delivered " +
                     std::to_string(stats_.packets_delivered) +
                     " + on-bus " + std::to_string(in_transit_.size()) +
                     " + queued " + std::to_string(inject_pending_));
    }
}

void Interconnect::save_state(sim::StateSink& s) const {
    for (const auto& q : inject_) {
        sim::save_seq(s, q, save_packet);
    }
    for (const sim::Cycle free_at : bus_free_at_) {
        s.u64(free_at);
    }
    // Drain a copy of the priority queue: entries come out in (deliver_at,
    // seq) order, which load_state re-pushes verbatim.
    auto pq = in_transit_;
    s.u64(pq.size());
    while (!pq.empty()) {
        const InTransit& it = pq.top();
        s.u64(it.deliver_at);
        s.u64(it.seq);
        save_packet(s, it.pkt);
        pq.pop();
    }
    for (const auto& q : inbox_) {
        sim::save_seq(s, q, save_packet);
    }
    s.u64(rr_next_);
    s.u64(seq_);
    s.u64(stats_.packets_injected);
    s.u64(stats_.packets_delivered);
    s.u64(stats_.bytes_transferred);
    s.u64(stats_.bus_busy_cycles);
    s.u64(stats_.inject_stall_events);
}

void Interconnect::load_state(sim::StateSource& s) {
    inject_pending_ = 0;
    for (auto& q : inject_) {
        sim::load_seq(s, q, load_packet);
        inject_pending_ += q.size();
    }
    for (sim::Cycle& free_at : bus_free_at_) {
        free_at = s.u64();
    }
    DTA_CHECK(in_transit_.empty());
    const std::uint64_t n = s.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        InTransit it;
        it.deliver_at = s.u64();
        it.seq = s.u64();
        load_packet(s, it.pkt);
        in_transit_.push(std::move(it));
    }
    for (auto& q : inbox_) {
        sim::load_seq(s, q, load_packet);
    }
    rr_next_ = s.u64();
    seq_ = s.u64();
    stats_.packets_injected = s.u64();
    stats_.packets_delivered = s.u64();
    stats_.bytes_transferred = s.u64();
    stats_.bus_busy_cycles = s.u64();
    stats_.inject_stall_events = s.u64();
}

bool Interconnect::quiescent() const {
    if (!in_transit_.empty() || inject_pending_ != 0) {
        return false;
    }
    for (const auto& q : inbox_) {
        if (!q.empty()) return false;
    }
    return true;
}

sim::Cycle Interconnect::next_activity(sim::Cycle now) const {
    sim::Cycle h = sim::kIdleForever;
    // Undelivered inbox packets wait on an external pop; conservatively
    // assume the consumer retries next cycle (only unbound endpoints).
    for (const auto& q : inbox_) {
        if (!q.empty()) {
            return now + 1;
        }
    }
    if (!in_transit_.empty()) {
        h = std::min(h, std::max(in_transit_.top().deliver_at, now + 1));
    }
    if (inject_pending_ != 0) {
        sim::Cycle grant = sim::kIdleForever;
        for (const sim::Cycle free_at : bus_free_at_) {
            grant = std::min(grant, free_at);
        }
        h = std::min(h, std::max(grant, now + 1));
    }
    return h;
}

}  // namespace dta::noc
