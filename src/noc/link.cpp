#include "noc/link.hpp"

#include <utility>

#include "sim/check.hpp"

namespace dta::noc {

Link::Link(const LinkConfig& cfg) : cfg_(cfg) {
    DTA_SIM_REQUIRE(cfg.bytes_per_cycle > 0, "link bandwidth must be non-zero");
    DTA_SIM_REQUIRE(cfg.queue_depth > 0, "link queue must hold packets");
    set_name("link");
}

bool Link::try_send(Packet pkt) {
    if (!can_send()) {
        return false;
    }
    queue_.push_back(std::move(pkt));
    return true;
}

void Link::tick(sim::Cycle now) {
    if (channel_ != nullptr) {
        // Channel mode: packets already crossed at serialisation time; the
        // sender merely stops vouching for them once they mature (the
        // receiver's channel-backed router is non-quiescent from then on).
        while (!tx_pending_.empty() && tx_pending_.front() <= now) {
            tx_pending_.pop_front();
        }
    } else {
        while (!in_transit_.empty() && in_transit_.front().deliver_at <= now) {
            delivered_.push_back(std::move(in_transit_.front().pkt));
            in_transit_.pop_front();
        }
    }
    if (queue_.empty() || wire_free_at_ > now) {
        return;
    }
    Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    const std::uint32_t sz = pkt.size_bytes == 0 ? 1 : pkt.size_bytes;
    const std::uint32_t occupancy =
        (sz + cfg_.bytes_per_cycle - 1) / cfg_.bytes_per_cycle;
    wire_free_at_ = now + occupancy;
    ++carried_;
    bytes_ += pkt.size_bytes;
    const sim::Cycle deliver_at = now + occupancy + cfg_.latency;
    if (channel_ != nullptr) {
        tx_pending_.push_back(deliver_at);
        const sim::ProfScope ps(prof_, sim::ProfBuffer::kShardSlot,
                                sim::ProfPhase::kChannelSerialize);
        const bool ok =
            channel_->try_push(deliver_at + drain_bias_, std::move(pkt));
        DTA_CHECK_MSG(ok, "cross-shard link channel overflow");
        return;
    }
    in_transit_.push_back(InTransit{deliver_at, std::move(pkt)});
}

void Link::save_state(sim::StateSink& s) const {
    sim::save_seq(s, queue_, save_packet);
    sim::save_seq(s, in_transit_, [](sim::StateSink& k, const InTransit& it) {
        k.u64(it.deliver_at);
        save_packet(k, it.pkt);
    });
    sim::save_seq(s, delivered_, save_packet);
    sim::save_seq(s, tx_pending_,
                  [](sim::StateSink& k, sim::Cycle c) { k.u64(c); });
    s.u64(wire_free_at_);
    s.u64(carried_);
    s.u64(bytes_);
}

void Link::load_state(sim::StateSource& s) {
    sim::load_seq(s, queue_, load_packet);
    sim::load_seq(s, in_transit_, [](sim::StateSource& k, InTransit& it) {
        it.deliver_at = k.u64();
        load_packet(k, it.pkt);
    });
    sim::load_seq(s, delivered_, load_packet);
    sim::load_seq(s, tx_pending_,
                  [](sim::StateSource& k, sim::Cycle& c) { c = k.u64(); });
    wire_free_at_ = s.u64();
    carried_ = s.u64();
    bytes_ = s.u64();
}

bool Link::pop_delivered(Packet& out) {
    if (delivered_.empty()) {
        return false;
    }
    out = std::move(delivered_.front());
    delivered_.pop_front();
    return true;
}

}  // namespace dta::noc
