/// \file packet.hpp
/// \brief The payload-agnostic packet the interconnect moves around.
///
/// The NoC layer knows nothing about the DTA protocol; packet *kinds* are
/// small integers defined by the protocol layer (src/sched/messages.hpp).
/// Three scalar payload words cover every control message; bulk DMA data
/// rides in the byte vector and is what the size accounting charges.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/snapshot.hpp"

namespace dta::noc {

/// Index of an endpoint attached to one Interconnect (bus-local).
using EndpointId = std::uint32_t;

/// A message in flight on the interconnect.
///
/// `dst` is the next hop on the *current* fabric (an SPE, the DSE, the
/// memory interface, or the inter-node bridge).  For multi-node machines the
/// final destination is carried in (`dst_node`, `dst_final`): the machine
/// glue sets `dst` to the local bridge when `dst_node` differs from the
/// fabric's node, and the receiving bridge re-injects with
/// `dst = dst_final`.  Single-node machines simply keep `dst == dst_final`.
struct Packet {
    EndpointId src = 0;
    EndpointId dst = 0;
    std::uint16_t dst_node = 0;   ///< node of the final destination
    EndpointId dst_final = 0;     ///< endpoint id on the destination node
    std::uint16_t kind = 0;       ///< protocol-defined discriminator
    std::uint32_t size_bytes = 8; ///< wire size (drives bus occupancy)
    std::uint64_t a = 0;          ///< payload word (e.g. address)
    std::uint64_t b = 0;          ///< payload word (e.g. value)
    std::uint64_t c = 0;          ///< payload word (e.g. correlation id)
    std::uint64_t enq_at = 0;     ///< fabric-internal: injection cycle
    std::vector<std::uint8_t> data;  ///< bulk payload (DMA lines)
};

/// Checkpoint serialization of a packet (field by field; every layer that
/// carries packets — fabrics, links, routers, channels — shares these).
inline void save_packet(sim::StateSink& s, const Packet& p) {
    s.u32(p.src);
    s.u32(p.dst);
    s.u16(p.dst_node);
    s.u32(p.dst_final);
    s.u16(p.kind);
    s.u32(p.size_bytes);
    s.u64(p.a);
    s.u64(p.b);
    s.u64(p.c);
    s.u64(p.enq_at);
    s.u64(p.data.size());
    s.blob(p.data.data(), p.data.size());
}

inline void load_packet(sim::StateSource& s, Packet& p) {
    p.src = s.u32();
    p.dst = s.u32();
    p.dst_node = s.u16();
    p.dst_final = s.u32();
    p.kind = s.u16();
    p.size_bytes = s.u32();
    p.a = s.u64();
    p.b = s.u64();
    p.c = s.u64();
    p.enq_at = s.u64();
    p.data.resize(s.u64());
    s.blob(p.data.data(), p.data.size());
}

}  // namespace dta::noc
