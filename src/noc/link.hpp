/// \file link.hpp
/// \brief Inter-node point-to-point link (the slower between-node network of
///        the DTA clustering concept — Section 2: "communication between
///        nodes is slower as we rely on a more complex interconnection
///        network").
///
/// A Link is unidirectional; the machine instantiates one per direction.
/// Packets are serialised at the link bandwidth and arrive after the link
/// latency; ordering is FIFO.
#pragma once

#include <cstdint>
#include <deque>

#include "noc/packet.hpp"
#include "sim/channel.hpp"
#include "sim/component.hpp"
#include "sim/prof.hpp"
#include "sim/types.hpp"

namespace dta::noc {

/// Configuration of one inter-node link.
struct LinkConfig {
    std::uint32_t latency = 40;         ///< propagation delay, cycles
    std::uint32_t bytes_per_cycle = 16; ///< serialisation bandwidth
    std::uint32_t queue_depth = 32;     ///< sender-side buffer
};

/// A unidirectional inter-node channel.
///
/// Two delivery modes share the serialiser and its timing:
///  * **port mode** (default): matured packets collect in `delivered_` and
///    the owning router pops and forwards them — the single-threaded path.
///  * **channel mode** (`attach_channel`): the link is a shard-crossing
///    edge; each packet is published into a lock-free SPSC channel *at
///    serialisation time*, stamped with the cycle the receiver may observe
///    it (deliver_at plus a drain bias reproducing the single-threaded
///    router tick order: +1 only on the ring's wrap-around edge, where the
///    receiving router ticks before the sending one).  The sender keeps the
///    deliver_at of every in-flight packet (`tx_pending_`) so quiescence
///    and the horizon stay exactly what port mode reports.
class Link final : public sim::Component {
public:
    using TxChannel = sim::SpscChannel<Packet>;

    explicit Link(const LinkConfig& cfg);

    [[nodiscard]] bool can_send() const {
        return queue_.size() < cfg_.queue_depth;
    }
    /// Returns false if the sender-side buffer is full.
    [[nodiscard]] bool try_send(Packet pkt);

    /// Switches to channel mode: serialised packets are published to
    /// \p channel with drain cycle deliver_at + \p drain_bias.
    void attach_channel(TxChannel* channel, std::uint32_t drain_bias) {
        channel_ = channel;
        drain_bias_ = drain_bias;
    }

    /// Charges channel publication time to \p prof (phase
    /// channel_serialize); null disables.  The buffer must belong to the
    /// shard that ticks this link.
    void set_prof(sim::ProfBuffer* prof) { prof_ = prof; }

    void tick(sim::Cycle now) override;

    [[nodiscard]] bool pop_delivered(Packet& out);
    [[nodiscard]] bool quiescent() const override {
        if (channel_ != nullptr) {
            return queue_.empty() && tx_pending_.empty();
        }
        return queue_.empty() && in_transit_.empty() && delivered_.empty();
    }

    /// Horizon: delivered packets await an external pop next cycle; the
    /// serialiser starts the next queued packet when the wire frees; an
    /// in-flight packet matures at its deliver_at.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const override {
        sim::Cycle h = sim::kIdleForever;
        if (channel_ != nullptr) {
            if (!tx_pending_.empty()) {
                h = tx_pending_.front() > now ? tx_pending_.front() : now + 1;
            }
        } else {
            if (!delivered_.empty()) {
                return now + 1;
            }
            if (!in_transit_.empty()) {
                h = in_transit_.front().deliver_at > now
                        ? in_transit_.front().deliver_at
                        : now + 1;
            }
        }
        if (!queue_.empty()) {
            const sim::Cycle start =
                wire_free_at_ > now + 1 ? wire_free_at_ : now + 1;
            h = start < h ? start : h;
        }
        return h;
    }

    [[nodiscard]] std::uint64_t packets_carried() const { return carried_; }
    [[nodiscard]] std::uint64_t bytes_carried() const { return bytes_; }
    [[nodiscard]] const LinkConfig& config() const { return cfg_; }

    // --- checkpoint/restore -------------------------------------------------
    /// Serializes sender queue, on-wire packets (port mode) or their
    /// deliver_at stamps (channel mode; the channel body is its own
    /// section), delivered-but-unpopped packets, and statistics.
    void save_state(sim::StateSink& s) const override;
    void load_state(sim::StateSource& s) override;

private:
    struct InTransit {
        sim::Cycle deliver_at = 0;
        Packet pkt;
    };

    LinkConfig cfg_;
    std::deque<Packet> queue_;
    std::deque<InTransit> in_transit_;  ///< FIFO: serialised in order
    std::deque<Packet> delivered_;
    sim::Cycle wire_free_at_ = 0;
    std::uint64_t carried_ = 0;
    std::uint64_t bytes_ = 0;

    // channel mode (shard-crossing edge)
    TxChannel* channel_ = nullptr;
    std::uint32_t drain_bias_ = 0;
    std::deque<sim::Cycle> tx_pending_;  ///< deliver_at of on-wire packets
    sim::ProfBuffer* prof_ = nullptr;    ///< host-time profiler (optional)
};

}  // namespace dta::noc
