/// \file interconnect.hpp
/// \brief Intra-node bus fabric (Table 4: 4 buses × 8 bytes/cycle).
///
/// Models the Cell EIB the way CellSim does: a small set of equal buses; a
/// packet occupies one bus for ceil(size / bytes_per_cycle) cycles and is
/// delivered a fixed hop latency after its transfer completes.  Endpoints
/// inject into bounded per-endpoint queues (full queue = back pressure that
/// stalls the producer) and drain their inbox each cycle.  Arbitration is
/// round-robin across endpoints, oldest-first within an endpoint, so the
/// fabric is fair and deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "noc/packet.hpp"
#include "sim/component.hpp"
#include "sim/metrics.hpp"
#include "sim/port.hpp"
#include "sim/types.hpp"

namespace dta::sim {
class AuditCtx;
}

namespace dta::noc {

/// Configuration of one node's bus fabric (defaults = Table 4).
struct InterconnectConfig {
    std::uint32_t num_buses = 4;
    std::uint32_t bytes_per_cycle = 8;  ///< per-bus bandwidth
    std::uint32_t hop_latency = 5;      ///< fixed propagation delay, cycles
    std::uint32_t inject_queue_depth = 16;  ///< per-endpoint injection slots
};

/// Aggregate fabric statistics.
struct InterconnectStats {
    std::uint64_t packets_injected = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t bytes_transferred = 0;
    std::uint64_t bus_busy_cycles = 0;   ///< summed over all buses
    std::uint64_t inject_stall_events = 0;  ///< try_inject refused (queue full)
};

/// One node's bus fabric.
class Interconnect final : public sim::Component {
public:
    Interconnect(const InterconnectConfig& cfg, std::uint32_t num_endpoints);

    /// True if \p src has a free injection slot this cycle.
    [[nodiscard]] bool can_inject(EndpointId src) const;

    /// Injects a packet at cycle \p now; returns false (and leaves \p pkt
    /// untouched) when the endpoint's injection queue is full.  \p now is
    /// the caller's current cycle — under the event-driven scheduler the
    /// fabric may not have ticked this cycle, so the injection timestamp
    /// cannot be derived from its own clock.
    [[nodiscard]] bool try_inject(EndpointId src, Packet pkt, sim::Cycle now);

    /// Re-arms scheduler entry \p component on every successful injection
    /// (the fabric sleeps between grants; an injection is new input).
    void set_waker(sim::Waker* w, std::uint32_t component) {
        waker_ = w;
        waker_comp_ = component;
    }

    /// Binds endpoint \p dst to \p sink: matured packets are pushed there
    /// directly during tick() instead of parking in the internal inbox.
    /// This is how cross-layer wiring is declared once at construction.
    void bind_endpoint(EndpointId dst, sim::Port<Packet>* sink);

    /// Arbitrates buses and matures in-flight packets into bound sinks
    /// (or the inboxes of unbound endpoints).
    void tick(sim::Cycle now) override;

    /// Pops the next delivered packet for \p dst, if any (unbound endpoints
    /// only — bound endpoints receive deliveries through their sink port).
    [[nodiscard]] bool pop_delivered(EndpointId dst, Packet& out);

    /// True when no packet is queued, in transfer, or awaiting pickup.
    [[nodiscard]] bool quiescent() const override;

    /// Horizon: matured-but-unfetched inbox packets and pending injections
    /// need a next-cycle retry; otherwise the earliest of the next bus
    /// grant and the next in-flight delivery.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const override;

    [[nodiscard]] const InterconnectStats& stats() const { return stats_; }
    [[nodiscard]] const InterconnectConfig& config() const { return cfg_; }
    [[nodiscard]] std::uint32_t num_endpoints() const {
        return static_cast<std::uint32_t>(inject_.size());
    }

    /// Packets anywhere in the fabric (queued, on a bus, or undelivered) —
    /// the congestion gauge the Machine's sampler records per fabric.
    [[nodiscard]] std::size_t pending() const;

    /// Invariant audit (sim/audit.hpp): packet conservation — every packet
    /// injected is either delivered, on a bus, or still queued, and the
    /// aggregate injection counter matches the per-endpoint queues.
    /// Read-only; reports violations through \p ctx.
    void audit(const sim::AuditCtx& ctx) const;

    /// Resolves the noc.packet_latency histogram (injection → inbox
    /// delivery, aggregated over every fabric); no-op when \p reg is
    /// disabled.
    void attach_metrics(sim::MetricsRegistry& reg) {
        pkt_latency_ = reg.histogram("noc.packet_latency");
    }

    // --- checkpoint/restore -------------------------------------------------
    /// Serializes queued, on-bus, and delivered-but-unfetched packets plus
    /// arbitration cursors and statistics.  The priority queue is drained
    /// in (deliver_at, seq) order, so the section is canonical.
    void save_state(sim::StateSink& s) const override;
    void load_state(sim::StateSource& s) override;

private:
    struct InTransit {
        sim::Cycle deliver_at = 0;
        std::uint64_t seq = 0;  ///< tie-break for deterministic ordering
        Packet pkt;
        friend bool operator>(const InTransit& x, const InTransit& y) {
            if (x.deliver_at != y.deliver_at) return x.deliver_at > y.deliver_at;
            return x.seq > y.seq;
        }
    };

    [[nodiscard]] std::uint32_t transfer_cycles(const Packet& pkt) const;

    InterconnectConfig cfg_;
    std::vector<std::deque<Packet>> inject_;   ///< per-endpoint injection queues
    std::vector<sim::Cycle> bus_free_at_;      ///< per-bus availability
    std::priority_queue<InTransit, std::vector<InTransit>, std::greater<>>
        in_transit_;
    std::vector<std::deque<Packet>> inbox_;    ///< per-endpoint delivered packets
    std::vector<sim::Port<Packet>*> sinks_;    ///< per-endpoint bound consumers
    std::size_t rr_next_ = 0;
    std::size_t inject_pending_ = 0;  ///< total packets across inject_ queues
    std::uint64_t seq_ = 0;
    InterconnectStats stats_;
    sim::Histogram* pkt_latency_ = nullptr;  ///< null when metrics are off
    sim::Waker* waker_ = nullptr;            ///< event-driven wake hook
    std::uint32_t waker_comp_ = 0;
};

}  // namespace dta::noc
