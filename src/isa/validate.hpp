/// \file validate.hpp
/// \brief Static validation of ThreadCode / Program against the DTA rules.
///
/// The DTA execution model imposes a block discipline (Section 2 of the
/// paper): frame reads happen in PL, frame writes in PS, no frame access in
/// EX, and — with the paper's extension — DMA programming only in PF.  The
/// validator enforces this before a program ever reaches the simulator, so
/// runtime checks can assume well-formed code.
#pragma once

#include "isa/program.hpp"

namespace dta::isa {

/// Throws dta::sim::SimError describing the first violation found.
void validate_thread_code(const ThreadCode& tc);

/// Validates every thread code plus cross-thread properties (FALLOC target
/// ids in range, entry id valid).
void validate_program(const Program& prog);

}  // namespace dta::isa
