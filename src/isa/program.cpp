#include "isa/program.hpp"

#include "sim/check.hpp"

namespace dta::isa {

const ThreadCode& Program::at(sim::ThreadCodeId id) const {
    DTA_SIM_REQUIRE(id < codes.size(),
                    "FALLOC references unknown thread code id " +
                        std::to_string(id) + " in program '" + name + "'");
    return codes[id];
}

std::size_t Program::static_instruction_count() const {
    std::size_t n = 0;
    for (const auto& tc : codes) {
        n += tc.code.size();
    }
    return n;
}

}  // namespace dta::isa
