#include "isa/asmtext.hpp"

#include <charconv>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "isa/validate.hpp"
#include "sim/check.hpp"

namespace dta::isa {
namespace {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

const char* block_marker(CodeBlock b) {
    switch (b) {
        case CodeBlock::kPf: return ".pf";
        case CodeBlock::kPl: return ".pl";
        case CodeBlock::kEx: return ".ex";
        case CodeBlock::kPs: return ".ps";
    }
    return ".?";
}

std::string reg_str(std::uint8_t r) { return "r" + std::to_string(r); }

/// Renders one instruction in the parse-friendly syntax.  Branch targets
/// are rendered as "L<index>"; the caller guarantees a matching label line.
std::string write_instr(const Instruction& ins) {
    std::ostringstream os;
    const auto& oi = ins.info();
    os << oi.name;
    switch (ins.op) {
        case Opcode::kNop:
        case Opcode::kFfree:
        case Opcode::kStop:
        case Opcode::kDmaWait:
            break;
        case Opcode::kMovI:
            os << ' ' << reg_str(ins.rd) << ", " << ins.imm;
            break;
        case Opcode::kSelf:
            os << ' ' << reg_str(ins.rd);
            break;
        case Opcode::kMov:
            os << ' ' << reg_str(ins.rd) << ", " << reg_str(ins.ra);
            break;
        case Opcode::kLoad:
            os << ' ' << reg_str(ins.rd) << ", frame[" << ins.imm << ']';
            break;
        case Opcode::kLoadX:
            os << ' ' << reg_str(ins.rd) << ", frame[" << reg_str(ins.ra)
               << '+' << ins.imm << ']';
            break;
        case Opcode::kStore:
            os << ' ' << reg_str(ins.ra) << ", frame(" << reg_str(ins.rb)
               << ")[" << ins.imm << ']';
            break;
        case Opcode::kStoreX:
            os << ' ' << reg_str(ins.ra) << ", frame(" << reg_str(ins.rb)
               << ")[" << reg_str(ins.rd) << '+' << ins.imm << ']';
            break;
        case Opcode::kRead:
            os << ' ' << reg_str(ins.rd) << ", mem[" << reg_str(ins.ra) << '+'
               << ins.imm << ']';
            if (ins.region != kNoRegion) os << " @region" << ins.region;
            break;
        case Opcode::kWrite:
            os << ' ' << reg_str(ins.ra) << ", mem[" << reg_str(ins.rb) << '+'
               << ins.imm << ']';
            break;
        case Opcode::kLsLoad:
            os << ' ' << reg_str(ins.rd) << ", ls[" << reg_str(ins.ra) << '+'
               << ins.imm << ']';
            if (ins.region != kNoRegion) os << " @region" << ins.region;
            break;
        case Opcode::kLsStore:
            os << ' ' << reg_str(ins.ra) << ", ls[" << reg_str(ins.rb) << '+'
               << ins.imm << ']';
            if (ins.region != kNoRegion) os << " @region" << ins.region;
            break;
        case Opcode::kFalloc:
            os << ' ' << reg_str(ins.rd) << ", code=" << ins.imm;
            break;
        case Opcode::kFallocN:
            os << ' ' << reg_str(ins.rd) << ", code=" << ins.imm
               << ", sc=" << reg_str(ins.ra);
            break;
        case Opcode::kDmaGet:
        case Opcode::kDmaPut:
        case Opcode::kRegSet: {
            DTA_CHECK(ins.dma.has_value());
            const DmaArgs& a = *ins.dma;
            os << ' ' << reg_str(ins.ra) << ", ls+" << a.ls_offset
               << ", bytes=" << a.bytes
               << ", region=" << static_cast<int>(a.region);
            if (a.stride != 0) {
                os << ", stride=" << a.stride << ", elem=" << a.elem_bytes;
            }
            break;
        }
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
            os << ' ' << reg_str(ins.ra) << ", " << reg_str(ins.rb) << ", L"
               << ins.imm;
            break;
        case Opcode::kJmp:
            os << " L" << ins.imm;
            break;
        default:  // generic rrr / rri compute forms
            os << ' ' << reg_str(ins.rd) << ", " << reg_str(ins.ra);
            if (oi.reads_rb) {
                os << ", " << reg_str(ins.rb);
            } else {
                os << ", " << ins.imm;
            }
            break;
    }
    return os.str();
}

}  // namespace

std::string to_assembly(const ThreadCode& tc) {
    std::ostringstream os;
    os << "thread \"" << tc.name << "\" inputs=" << tc.num_inputs << '\n';
    for (const RegionAnnotation& ann : tc.annotations) {
        os << "  region bytes=" << ann.bytes << " reg=r"
           << static_cast<int>(ann.addr_reg);
        if (ann.stride != 0) {
            os << " stride=" << ann.stride << " elem=" << ann.elem_bytes;
        }
        os << " {\n";
        for (const Instruction& ins : ann.addr_code) {
            os << "    " << write_instr(ins) << '\n';
        }
        os << "  }\n";
    }
    std::set<std::int64_t> targets;
    for (const Instruction& ins : tc.code) {
        if (ins.info().is_branch) {
            targets.insert(ins.imm);
        }
    }
    CodeBlock last = CodeBlock::kPs;
    bool first = true;
    for (std::uint32_t ip = 0; ip < tc.size(); ++ip) {
        const CodeBlock b = tc.block_of(ip);
        if (first || b != last) {
            os << "  " << block_marker(b) << '\n';
            last = b;
            first = false;
        }
        if (targets.count(static_cast<std::int64_t>(ip)) != 0) {
            os << "  L" << ip << ":\n";
        }
        os << "    " << write_instr(tc.code[ip]) << '\n';
    }
    os << "end\n";
    return os.str();
}

std::string to_assembly(const Program& prog) {
    std::ostringstream os;
    os << "program \"" << prog.name << "\" entry=" << prog.entry << "\n\n";
    for (const ThreadCode& tc : prog.codes) {
        os << to_assembly(tc) << '\n';
    }
    return os.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Cursor {
    std::string_view text;
    std::size_t pos = 0;
    int line = 0;

    /// Next non-empty, comment-stripped, trimmed line; empty at EOF.
    std::string next_line() {
        while (pos < text.size()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string_view::npos) {
                eol = text.size();
            }
            std::string raw(text.substr(pos, eol - pos));
            pos = eol + 1;
            ++line;
            const std::size_t hash = raw.find('#');
            if (hash != std::string::npos) {
                raw.erase(hash);
            }
            const auto b = raw.find_first_not_of(" \t\r");
            if (b == std::string::npos) {
                continue;
            }
            const auto e = raw.find_last_not_of(" \t\r");
            return raw.substr(b, e - b + 1);
        }
        return {};
    }
};

[[noreturn]] void fail(int line, const std::string& why) {
    DTA_SIM_ERROR("assembly parse error at line " + std::to_string(line) +
                  ": " + why);
}

/// "k=v" extraction out of a token list; returns whether found.
bool kv(const std::vector<std::string>& toks, const std::string& key,
        std::string& out) {
    const std::string prefix = key + "=";
    for (const auto& t : toks) {
        if (t.rfind(prefix, 0) == 0) {
            out = t.substr(prefix.size());
            return true;
        }
    }
    return false;
}

std::int64_t parse_int(const std::string& s, int line) {
    std::int64_t v = 0;
    const char* b = s.data();
    const char* e = s.data() + s.size();
    const auto [p, ec] = std::from_chars(b, e, v);
    if (ec != std::errc() || p != e) {
        fail(line, "expected integer, got '" + s + "'");
    }
    return v;
}

std::uint8_t parse_reg(const std::string& s, int line) {
    if (s.size() < 2 || s[0] != 'r') {
        fail(line, "expected register, got '" + s + "'");
    }
    const std::int64_t idx = parse_int(s.substr(1), line);
    if (idx < 0 || idx >= kNumRegs) {
        fail(line, "register out of range: '" + s + "'");
    }
    return static_cast<std::uint8_t>(idx);
}

/// Splits "a, b, c" on commas and trims each piece.
std::vector<std::string> split_operands(const std::string& s) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= s.size()) {
        std::size_t comma = s.find(',', start);
        if (comma == std::string::npos) {
            comma = s.size();
        }
        std::string piece = s.substr(start, comma - start);
        const auto b = piece.find_first_not_of(" \t");
        if (b != std::string::npos) {
            const auto e = piece.find_last_not_of(" \t");
            out.push_back(piece.substr(b, e - b + 1));
        }
        start = comma + 1;
        if (comma == s.size()) {
            break;
        }
    }
    return out;
}

/// Parses "frame[3]", "frame[r4+3]", "frame(r9)[1]", "frame(r9)[r4+1]",
/// "mem[r8+4]", "ls[r8+4]".
struct AddrOperand {
    bool has_frame_reg = false;
    std::uint8_t frame_reg = 0;
    bool has_index_reg = false;
    std::uint8_t index_reg = 0;
    std::int64_t offset = 0;
};

AddrOperand parse_addr(const std::string& s, const std::string& kind,
                       int line) {
    AddrOperand a;
    std::size_t at = kind.size();
    if (s.rfind(kind, 0) != 0) {
        fail(line, "expected " + kind + " operand, got '" + s + "'");
    }
    if (at < s.size() && s[at] == '(') {
        const std::size_t close = s.find(')', at);
        if (close == std::string::npos) fail(line, "unclosed '(' in '" + s + "'");
        a.has_frame_reg = true;
        a.frame_reg = parse_reg(s.substr(at + 1, close - at - 1), line);
        at = close + 1;
    }
    if (at >= s.size() || s[at] != '[') {
        fail(line, "expected '[' in '" + s + "'");
    }
    const std::size_t close = s.find(']', at);
    if (close == std::string::npos) fail(line, "unclosed '[' in '" + s + "'");
    std::string inner = s.substr(at + 1, close - at - 1);
    const std::size_t plus = inner.find('+');
    if (!inner.empty() && inner[0] == 'r' && plus != std::string::npos) {
        a.has_index_reg = true;
        a.index_reg = parse_reg(inner.substr(0, plus), line);
        a.offset = parse_int(inner.substr(plus + 1), line);
    } else {
        a.offset = parse_int(inner, line);
    }
    return a;
}

/// The label-fixup record for a branch instruction.
struct Fixup {
    std::size_t instr_index;
    std::string label;
    int line;
};

Opcode opcode_by_name(const std::string& name, int line) {
    for (std::size_t i = 0; i < op_count(); ++i) {
        const auto op = static_cast<Opcode>(i);
        if (op_name(op) == name) {
            return op;
        }
    }
    fail(line, "unknown mnemonic '" + name + "'");
}

/// Parses one instruction line (no labels / markers).  Branch targets are
/// recorded as fixups against label names.
Instruction parse_instr(const std::string& text, int line,
                        std::vector<Fixup>* fixups, std::size_t instr_index) {
    const std::size_t sp = text.find(' ');
    const std::string mnem = text.substr(0, sp);
    std::string rest = sp == std::string::npos ? "" : text.substr(sp + 1);
    // Peel "@regionN" before comma splitting (it is space-separated).
    std::int16_t region = kNoRegion;
    const std::size_t at = rest.find("@region");
    if (at != std::string::npos) {
        region = static_cast<std::int16_t>(
            parse_int(rest.substr(at + 7), line));
        rest.erase(at);
    }
    auto ops = split_operands(rest);
    const Opcode op = opcode_by_name(mnem, line);
    const auto& oi = op_info(op);
    Instruction ins;
    ins.op = op;
    ins.region = region;

    const auto need = [&](std::size_t n) {
        if (ops.size() != n) {
            fail(line, mnem + " expects " + std::to_string(n) +
                           " operands, got " + std::to_string(ops.size()));
        }
    };

    switch (op) {
        case Opcode::kNop:
        case Opcode::kFfree:
        case Opcode::kStop:
        case Opcode::kDmaWait:
            need(0);
            break;
        case Opcode::kSelf:
            need(1);
            ins.rd = parse_reg(ops[0], line);
            break;
        case Opcode::kMovI:
            need(2);
            ins.rd = parse_reg(ops[0], line);
            ins.imm = parse_int(ops[1], line);
            break;
        case Opcode::kMov:
            need(2);
            ins.rd = parse_reg(ops[0], line);
            ins.ra = parse_reg(ops[1], line);
            break;
        case Opcode::kLoad:
        case Opcode::kLoadX: {
            need(2);
            ins.rd = parse_reg(ops[0], line);
            const AddrOperand a = parse_addr(ops[1], "frame", line);
            ins.op = a.has_index_reg ? Opcode::kLoadX : Opcode::kLoad;
            ins.ra = a.index_reg;
            ins.imm = a.offset;
            break;
        }
        case Opcode::kStore:
        case Opcode::kStoreX: {
            need(2);
            ins.ra = parse_reg(ops[0], line);
            const AddrOperand a = parse_addr(ops[1], "frame", line);
            if (!a.has_frame_reg) {
                fail(line, "store needs a frame(rN) handle");
            }
            ins.op = a.has_index_reg ? Opcode::kStoreX : Opcode::kStore;
            ins.rb = a.frame_reg;
            ins.rd = a.index_reg;
            ins.imm = a.offset;
            break;
        }
        case Opcode::kRead: {
            need(2);
            ins.rd = parse_reg(ops[0], line);
            const AddrOperand a = parse_addr(ops[1], "mem", line);
            ins.ra = a.index_reg;
            ins.imm = a.offset;
            break;
        }
        case Opcode::kWrite: {
            need(2);
            ins.ra = parse_reg(ops[0], line);
            const AddrOperand a = parse_addr(ops[1], "mem", line);
            ins.rb = a.index_reg;
            ins.imm = a.offset;
            break;
        }
        case Opcode::kLsLoad: {
            need(2);
            ins.rd = parse_reg(ops[0], line);
            const AddrOperand a = parse_addr(ops[1], "ls", line);
            ins.ra = a.index_reg;
            ins.imm = a.offset;
            break;
        }
        case Opcode::kLsStore: {
            need(2);
            ins.ra = parse_reg(ops[0], line);
            const AddrOperand a = parse_addr(ops[1], "ls", line);
            ins.rb = a.index_reg;
            ins.imm = a.offset;
            break;
        }
        case Opcode::kFalloc:
        case Opcode::kFallocN: {
            ins.rd = parse_reg(ops.at(0), line);
            std::string v;
            if (!kv(ops, "code", v)) fail(line, "falloc needs code=<id>");
            ins.imm = parse_int(v, line);
            if (op == Opcode::kFallocN) {
                if (!kv(ops, "sc", v)) fail(line, "fallocn needs sc=<reg>");
                ins.ra = parse_reg(v, line);
            }
            break;
        }
        case Opcode::kDmaGet:
        case Opcode::kDmaPut:
        case Opcode::kRegSet: {
            ins.ra = parse_reg(ops.at(0), line);
            DmaArgs args;
            std::string v;
            if (ops.size() < 2 || ops[1].rfind("ls+", 0) != 0) {
                fail(line, mnem + " needs 'ls+<offset>' second operand");
            }
            args.ls_offset = static_cast<std::uint32_t>(
                parse_int(ops[1].substr(3), line));
            if (!kv(ops, "bytes", v)) fail(line, mnem + " needs bytes=<n>");
            args.bytes = static_cast<std::uint32_t>(parse_int(v, line));
            if (!kv(ops, "region", v)) fail(line, mnem + " needs region=<n>");
            args.region = static_cast<std::uint8_t>(parse_int(v, line));
            if (kv(ops, "stride", v)) {
                args.stride = static_cast<std::uint32_t>(parse_int(v, line));
                if (!kv(ops, "elem", v)) {
                    fail(line, "strided " + mnem + " needs elem=<n>");
                }
                args.elem_bytes =
                    static_cast<std::uint32_t>(parse_int(v, line));
            }
            ins.region = static_cast<std::int16_t>(args.region);
            ins.dma = args;
            break;
        }
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
            need(3);
            ins.ra = parse_reg(ops[0], line);
            ins.rb = parse_reg(ops[1], line);
            DTA_CHECK(fixups != nullptr);
            fixups->push_back(Fixup{instr_index, ops[2], line});
            break;
        case Opcode::kJmp:
            need(1);
            DTA_CHECK(fixups != nullptr);
            fixups->push_back(Fixup{instr_index, ops[0], line});
            break;
        default:
            // Generic compute forms: rrr or rri.
            need(oi.reads_rb ? 3 : 3);
            ins.rd = parse_reg(ops[0], line);
            ins.ra = parse_reg(ops[1], line);
            if (oi.reads_rb) {
                ins.rb = parse_reg(ops[2], line);
            } else {
                ins.imm = parse_int(ops[2], line);
            }
            break;
    }
    return ins;
}

/// Parses one "thread ... end" section; the header line is already read.
ThreadCode parse_thread(Cursor& cur, const std::string& header) {
    // header: thread "<name>" inputs=<n>
    const std::size_t q1 = header.find('"');
    const std::size_t q2 = header.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos) {
        fail(cur.line, "thread header needs a quoted name");
    }
    ThreadCode tc;
    tc.name = header.substr(q1 + 1, q2 - q1 - 1);
    std::string v;
    auto toks = split_operands(header.substr(q2 + 1));
    // 'inputs=N' may be space-separated; re-split on spaces too.
    {
        std::istringstream is(header.substr(q2 + 1));
        std::string t;
        toks.clear();
        while (is >> t) {
            toks.push_back(t);
        }
    }
    if (!kv(toks, "inputs", v)) fail(cur.line, "thread header needs inputs=");
    tc.num_inputs = static_cast<std::uint32_t>(parse_int(v, cur.line));

    std::map<std::string, std::uint32_t> labels;
    std::vector<Fixup> fixups;
    int block_ordinal = -1;

    const auto open_block = [&](CodeBlock b, int line) {
        const int ord = static_cast<int>(b);
        if (ord <= block_ordinal) {
            fail(line, "blocks must appear in .pf < .pl < .ex < .ps order");
        }
        const auto here = static_cast<std::uint32_t>(tc.code.size());
        for (int blk = block_ordinal + 1; blk <= ord; ++blk) {
            switch (static_cast<CodeBlock>(blk)) {
                case CodeBlock::kPf: break;
                case CodeBlock::kPl: tc.pl_begin = here; break;
                case CodeBlock::kEx: tc.ex_begin = here; break;
                case CodeBlock::kPs: tc.ps_begin = here; break;
            }
        }
        block_ordinal = ord;
    };

    while (true) {
        const std::string ln = cur.next_line();
        if (ln.empty()) {
            fail(cur.line, "unexpected EOF inside thread '" + tc.name + "'");
        }
        if (ln == "end") {
            break;
        }
        if (ln.rfind("region", 0) == 0) {
            if (block_ordinal >= 0) {
                fail(cur.line, "regions must precede code blocks");
            }
            RegionAnnotation ann;
            std::istringstream is(ln.substr(6));
            std::vector<std::string> rtoks;
            std::string t;
            while (is >> t) {
                rtoks.push_back(t);
            }
            if (!kv(rtoks, "bytes", v)) fail(cur.line, "region needs bytes=");
            ann.bytes = static_cast<std::uint32_t>(parse_int(v, cur.line));
            if (!kv(rtoks, "reg", v)) fail(cur.line, "region needs reg=");
            ann.addr_reg = parse_reg(v, cur.line);
            if (kv(rtoks, "stride", v)) {
                ann.stride = static_cast<std::uint32_t>(parse_int(v, cur.line));
                if (!kv(rtoks, "elem", v)) fail(cur.line, "region needs elem=");
                ann.elem_bytes =
                    static_cast<std::uint32_t>(parse_int(v, cur.line));
            }
            if (rtoks.empty() || rtoks.back() != "{") {
                fail(cur.line, "region header must end with '{'");
            }
            while (true) {
                const std::string body = cur.next_line();
                if (body.empty()) fail(cur.line, "unexpected EOF in region");
                if (body == "}") break;
                Instruction ins = parse_instr(body, cur.line, nullptr, 0);
                ins.block = CodeBlock::kPf;
                ann.addr_code.push_back(ins);
            }
            tc.annotations.push_back(std::move(ann));
            continue;
        }
        if (ln == ".pf") { open_block(CodeBlock::kPf, cur.line); continue; }
        if (ln == ".pl") { open_block(CodeBlock::kPl, cur.line); continue; }
        if (ln == ".ex") { open_block(CodeBlock::kEx, cur.line); continue; }
        if (ln == ".ps") { open_block(CodeBlock::kPs, cur.line); continue; }
        if (ln.back() == ':') {
            const std::string name = ln.substr(0, ln.size() - 1);
            if (!labels.emplace(name, static_cast<std::uint32_t>(tc.code.size()))
                     .second) {
                fail(cur.line, "label '" + name + "' defined twice");
            }
            continue;
        }
        if (block_ordinal < 0) {
            fail(cur.line, "instruction before any block marker");
        }
        Instruction ins =
            parse_instr(ln, cur.line, &fixups, tc.code.size());
        ins.block = static_cast<CodeBlock>(block_ordinal);
        tc.code.push_back(ins);
    }
    // Close unopened trailing blocks exactly like CodeBuilder::finish:
    // every block never opened after the last one starts at end-of-code.
    const auto end = static_cast<std::uint32_t>(tc.code.size());
    for (int blk = block_ordinal + 1; blk <= static_cast<int>(CodeBlock::kPs);
         ++blk) {
        switch (static_cast<CodeBlock>(blk)) {
            case CodeBlock::kPf: break;
            case CodeBlock::kPl: tc.pl_begin = end; break;
            case CodeBlock::kEx: tc.ex_begin = end; break;
            case CodeBlock::kPs: tc.ps_begin = end; break;
        }
    }
    // Resolve labels.
    for (const Fixup& fx : fixups) {
        const auto it = labels.find(fx.label);
        if (it == labels.end()) {
            fail(fx.line, "undefined label '" + fx.label + "'");
        }
        tc.code[fx.instr_index].imm = it->second;
    }
    validate_thread_code(tc);
    return tc;
}

}  // namespace

Program parse_program(std::string_view text) {
    Cursor cur{text};
    Program prog;
    const std::string header = cur.next_line();
    if (header.rfind("program", 0) != 0) {
        fail(cur.line, "file must start with 'program \"name\" entry=<id>'");
    }
    const std::size_t q1 = header.find('"');
    const std::size_t q2 = header.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos) {
        fail(cur.line, "program header needs a quoted name");
    }
    prog.name = header.substr(q1 + 1, q2 - q1 - 1);
    {
        std::istringstream is(header.substr(q2 + 1));
        std::vector<std::string> toks;
        std::string t;
        while (is >> t) {
            toks.push_back(t);
        }
        std::string v;
        if (!kv(toks, "entry", v)) fail(cur.line, "program needs entry=<id>");
        prog.entry = static_cast<sim::ThreadCodeId>(parse_int(v, cur.line));
    }
    while (true) {
        const std::string ln = cur.next_line();
        if (ln.empty()) {
            break;
        }
        if (ln.rfind("thread", 0) != 0) {
            fail(cur.line, "expected 'thread' section, got '" + ln + "'");
        }
        prog.codes.push_back(parse_thread(cur, ln));
    }
    validate_program(prog);
    return prog;
}

}  // namespace dta::isa
