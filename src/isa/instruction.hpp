/// \file instruction.hpp
/// \brief The instruction IR executed by the simulated SPU.
///
/// Instructions are a structured IR, not a binary encoding: this mirrors how
/// UNISIM-based simulators model ISAs, and lets DMA commands carry their full
/// Table-3 parameter set (LS address, MEM address, size, tag) without bit
/// packing.  Code size statistics therefore count instructions, not bytes.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/opcode.hpp"

namespace dta::isa {

/// A register name.  The machine has 32 general-purpose 64-bit registers per
/// thread context; r0 is hard-wired to zero (writes are ignored).
struct Reg {
    std::uint8_t idx = 0;
    constexpr Reg() = default;
    constexpr explicit Reg(std::uint8_t i) : idx(i) {}
    friend constexpr bool operator==(Reg, Reg) = default;
};

/// Number of architectural registers per thread context.
inline constexpr std::uint8_t kNumRegs = 32;

/// Convenience register constants r(0) .. r(31).
constexpr Reg r(std::uint8_t i) { return Reg{i}; }

/// The DTA code blocks of a thread (Fig. 3 of the paper).  PF is the block
/// this paper adds; PL/EX/PS are the original DTA pre-load / execute /
/// post-store blocks.
enum class CodeBlock : std::uint8_t { kPf, kPl, kEx, kPs };

/// Human-readable name of a code block.
[[nodiscard]] constexpr std::string_view block_name(CodeBlock b) {
    switch (b) {
        case CodeBlock::kPf: return "PF";
        case CodeBlock::kPl: return "PL";
        case CodeBlock::kEx: return "EX";
        case CodeBlock::kPs: return "PS";
    }
    return "??";
}

/// Marker meaning "no prefetch region attached".
inline constexpr std::int16_t kNoRegion = -1;

/// The Table-3 parameter set of one MFC DMA command, attached to a kDmaGet
/// instruction.  The main-memory source address comes from register ra at
/// execution time; everything else is static.
struct DmaArgs {
    std::uint8_t region = 0;      ///< region-table entry this get fills
    std::uint32_t ls_offset = 0;  ///< destination offset in the thread's LS staging area
    std::uint32_t bytes = 0;      ///< total payload bytes to transfer
    std::uint32_t stride = 0;     ///< 0 = contiguous; else byte distance between elements
    std::uint32_t elem_bytes = 0; ///< element size for strided transfers

    /// Number of discrete elements the MFC must fetch.
    [[nodiscard]] std::uint32_t element_count() const {
        if (stride == 0 || elem_bytes == 0) {
            return 1;
        }
        return bytes / elem_bytes;
    }

    friend bool operator==(const DmaArgs&, const DmaArgs&) = default;
};

/// One instruction of a DTA thread.
struct Instruction {
    Opcode op = Opcode::kNop;
    std::uint8_t rd = 0;              ///< destination register
    std::uint8_t ra = 0;              ///< first source register
    std::uint8_t rb = 0;              ///< second source register
    std::int64_t imm = 0;             ///< immediate / branch target / frame offset
    CodeBlock block = CodeBlock::kEx; ///< code block this instruction belongs to
    std::int16_t region = kNoRegion;  ///< prefetch-region link (annotation or runtime table index)
    std::optional<DmaArgs> dma;       ///< present iff op == kDmaGet

    /// Static properties of this instruction's opcode.
    [[nodiscard]] const OpInfo& info() const { return op_info(op); }
};

}  // namespace dta::isa
