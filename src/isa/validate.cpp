#include "isa/validate.hpp"

#include <string>

#include "sim/check.hpp"

namespace dta::isa {
namespace {

[[noreturn]] void fail(const ThreadCode& tc, std::uint32_t ip,
                       const std::string& why) {
    DTA_SIM_ERROR("invalid thread code '" + tc.name + "' @" +
                  std::to_string(ip) + ": " + why);
}

void check_registers(const ThreadCode& tc, std::uint32_t ip,
                     const Instruction& ins) {
    const OpInfo& oi = ins.info();
    if ((oi.writes_rd || oi.reads_rd) && ins.rd >= kNumRegs) {
        fail(tc, ip, "rd out of range");
    }
    if (oi.reads_ra && ins.ra >= kNumRegs) fail(tc, ip, "ra out of range");
    if (oi.reads_rb && ins.rb >= kNumRegs) fail(tc, ip, "rb out of range");
}

/// [begin, end) of the block that contains instruction index ip.
std::pair<std::uint32_t, std::uint32_t> block_range(const ThreadCode& tc,
                                                    CodeBlock b) {
    switch (b) {
        case CodeBlock::kPf: return {0, tc.pl_begin};
        case CodeBlock::kPl: return {tc.pl_begin, tc.ex_begin};
        case CodeBlock::kEx: return {tc.ex_begin, tc.ps_begin};
        case CodeBlock::kPs: return {tc.ps_begin, tc.size()};
    }
    return {0, 0};
}

void check_block_legality(const ThreadCode& tc, std::uint32_t ip,
                          const Instruction& ins) {
    const CodeBlock b = ins.block;
    switch (ins.op) {
        case Opcode::kLoad:
        case Opcode::kLoadX:
            if (b != CodeBlock::kPf && b != CodeBlock::kPl) {
                fail(tc, ip, "frame LOAD allowed only in PF/PL blocks");
            }
            break;
        case Opcode::kStore:
        case Opcode::kStoreX:
            if (b != CodeBlock::kPs) {
                fail(tc, ip, "frame STORE allowed only in the PS block");
            }
            break;
        case Opcode::kRead:
        case Opcode::kWrite:
            if (b != CodeBlock::kEx) {
                fail(tc, ip, "main-memory READ/WRITE allowed only in EX");
            }
            break;
        case Opcode::kLsLoad:
        case Opcode::kLsStore:
            if (b != CodeBlock::kPl && b != CodeBlock::kEx) {
                fail(tc, ip, "local-store access allowed only in PL/EX");
            }
            break;
        case Opcode::kDmaGet:
            if (b != CodeBlock::kPf) {
                fail(tc, ip, "DMAGET allowed only in the PF block");
            }
            break;
        case Opcode::kDmaWait:
            if (b != CodeBlock::kPf && b != CodeBlock::kPs) {
                fail(tc, ip,
                     "DMAWAIT allowed only in PF (prefetch) or PS "
                     "(write-back drain)");
            }
            break;
        case Opcode::kRegSet:
            if (b == CodeBlock::kPs) {
                fail(tc, ip, "REGSET must precede the accesses it serves "
                             "(PF/PL/EX only)");
            }
            break;
        case Opcode::kDmaPut:
            if (b != CodeBlock::kPs) {
                fail(tc, ip, "DMAPUT allowed only in the PS block");
            }
            break;
        case Opcode::kFalloc:
        case Opcode::kFallocN:
            if (b == CodeBlock::kPf) {
                fail(tc, ip, "FALLOC not allowed in the PF block");
            }
            break;
        case Opcode::kFfree:
            if (b != CodeBlock::kPs) {
                fail(tc, ip, "FFREE allowed only in the PS block");
            }
            break;
        case Opcode::kStop:
            if (ip + 1 != tc.size()) {
                fail(tc, ip, "STOP must be the final instruction");
            }
            break;
        default:
            break;  // compute / branch ops are legal everywhere
    }
}

void check_dma(const ThreadCode& tc, std::uint32_t ip, const Instruction& ins) {
    if (ins.op != Opcode::kDmaGet && ins.op != Opcode::kDmaPut &&
        ins.op != Opcode::kRegSet) {
        return;
    }
    const std::string what(ins.info().name);
    if (!ins.dma.has_value()) fail(tc, ip, what + " without DmaArgs");
    const DmaArgs& a = *ins.dma;
    if (a.bytes == 0) fail(tc, ip, what + " of zero bytes");
    if (ins.region != static_cast<std::int16_t>(a.region)) {
        fail(tc, ip, what + " region field mismatch");
    }
    if (a.stride != 0) {
        if (a.elem_bytes == 0) {
            fail(tc, ip, "strided " + what + " with elem_bytes=0");
        }
        if (a.elem_bytes > a.stride) {
            fail(tc, ip, "strided " + what + " with elem_bytes > stride");
        }
        if (a.bytes % a.elem_bytes != 0) {
            fail(tc, ip, "strided " + what + " size not a multiple of "
                         "elem_bytes");
        }
    }
}

}  // namespace

void validate_thread_code(const ThreadCode& tc) {
    const std::uint32_t n = tc.size();
    if (n == 0) {
        DTA_SIM_ERROR("thread code '" + tc.name + "' is empty");
    }
    if (!(tc.pl_begin <= tc.ex_begin && tc.ex_begin <= tc.ps_begin &&
          tc.ps_begin <= n)) {
        DTA_SIM_ERROR("thread code '" + tc.name +
                      "' has non-monotonic block boundaries");
    }
    if (tc.code.back().op != Opcode::kStop) {
        DTA_SIM_ERROR("thread code '" + tc.name + "' does not end in STOP");
    }

    bool saw_dmaget = false;
    bool saw_dmaput = false;
    bool saw_pf_wait = false;
    bool saw_ps_wait = false;
    std::uint32_t stop_count = 0;
    for (std::uint32_t ip = 0; ip < n; ++ip) {
        const Instruction& ins = tc.code[ip];
        if (ins.block != tc.block_of(ip)) {
            fail(tc, ip, "instruction block tag disagrees with block ranges");
        }
        check_registers(tc, ip, ins);
        check_block_legality(tc, ip, ins);
        check_dma(tc, ip, ins);
        if (ins.op == Opcode::kStop) ++stop_count;
        if (ins.op == Opcode::kDmaGet) saw_dmaget = true;
        if (ins.op == Opcode::kDmaPut) saw_dmaput = true;
        if (ins.op == Opcode::kDmaWait) {
            if (ins.block == CodeBlock::kPf) {
                saw_pf_wait = true;
                if (ip + 1 != tc.pl_begin) {
                    fail(tc, ip, "PF DMAWAIT must be the last PF instruction");
                }
            } else {
                saw_ps_wait = true;
            }
        }
        if (ins.info().is_branch) {
            const auto [lo, hi] = block_range(tc, ins.block);
            const auto target = ins.imm;
            // A target equal to the block's end boundary is the natural
            // "exit the loop, fall into the next block" idiom and is legal;
            // anything past it (or before the block) is not.
            if (target < lo || target > hi ||
                target >= static_cast<std::int64_t>(n)) {
                fail(tc, ip, "branch target leaves its code block");
            }
        }
        if (ins.region != kNoRegion &&
            (ins.op == Opcode::kRead || ins.op == Opcode::kLsLoad ||
             ins.op == Opcode::kLsStore)) {
            // READ annotations reference the compiler annotations; LSLOAD /
            // LSSTORE regions reference the runtime region table, whose
            // entries are created by DMAGETs.  Both must be small indices.
            if (ins.region < 0 ||
                (ins.op == Opcode::kRead &&
                 static_cast<std::size_t>(ins.region) >=
                     tc.annotations.size())) {
                fail(tc, ip, "region annotation index out of range");
            }
        }
    }
    if (stop_count != 1) {
        DTA_SIM_ERROR("thread code '" + tc.name +
                      "' must contain exactly one STOP");
    }
    if (saw_dmaget && !saw_pf_wait) {
        DTA_SIM_ERROR("thread code '" + tc.name +
                      "' prefetches but never waits for the DMA");
    }
    if (saw_dmaput && !saw_ps_wait) {
        DTA_SIM_ERROR("thread code '" + tc.name +
                      "' writes back via DMA but never drains it");
    }

    // Annotations must themselves be sane.
    for (std::size_t i = 0; i < tc.annotations.size(); ++i) {
        const RegionAnnotation& ann = tc.annotations[i];
        const std::string where =
            "annotation " + std::to_string(i) + " of '" + tc.name + "'";
        if (ann.bytes == 0) DTA_SIM_ERROR(where + ": zero bytes");
        if (ann.addr_reg >= kNumRegs) DTA_SIM_ERROR(where + ": bad addr_reg");
        if (ann.stride != 0 &&
            (ann.elem_bytes == 0 || ann.bytes % ann.elem_bytes != 0)) {
            DTA_SIM_ERROR(where + ": inconsistent strided shape");
        }
        for (const Instruction& ins : ann.addr_code) {
            const OpInfo& oi = ins.info();
            const bool ok = oi.port == IssuePort::kCompute ||
                            ins.op == Opcode::kLoad;
            if (!ok || oi.is_branch) {
                DTA_SIM_ERROR(where +
                              ": addr_code may only contain straight-line "
                              "ALU ops and frame LOADs");
            }
        }
    }
}

void validate_program(const Program& prog) {
    if (prog.codes.empty()) {
        DTA_SIM_ERROR("program '" + prog.name + "' has no thread codes");
    }
    if (prog.entry >= prog.codes.size()) {
        DTA_SIM_ERROR("program '" + prog.name + "' entry id out of range");
    }
    for (const auto& tc : prog.codes) {
        validate_thread_code(tc);
        for (std::uint32_t ip = 0; ip < tc.size(); ++ip) {
            const Instruction& ins = tc.code[ip];
            if (ins.op == Opcode::kFalloc || ins.op == Opcode::kFallocN) {
                if (static_cast<std::size_t>(ins.imm) >= prog.codes.size()) {
                    DTA_SIM_ERROR("'" + tc.name + "' @" + std::to_string(ip) +
                                  ": FALLOC target code id out of range");
                }
            }
        }
    }
}

}  // namespace dta::isa
