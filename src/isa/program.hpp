/// \file program.hpp
/// \brief ThreadCode (one DTA thread's code) and Program (a TLP activity).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.hpp"
#include "sim/types.hpp"

namespace dta::isa {

/// Compiler-side annotation describing one global-data region a thread
/// touches.  In the original (no-prefetch) code every READ that targets the
/// region carries the region's index in Instruction::region; the prefetch
/// pass (src/xform) uses this description to synthesise the PF block
/// (Section 3 of the paper: "the compiler has to recognise when a thread
/// uses different types of global data").
struct RegionAnnotation {
    /// Instructions that compute the region's main-memory base address into
    /// register \ref addr_reg.  They may LOAD from the thread's frame (the
    /// frame is complete before the PF block runs) and use ALU ops; the pass
    /// clones them into the PF block.
    std::vector<Instruction> addr_code;
    std::uint8_t addr_reg = 0;    ///< register addr_code leaves the base in
    std::uint32_t bytes = 0;      ///< total bytes to stage
    std::uint32_t stride = 0;     ///< 0 = contiguous, else strided (one MFC command)
    std::uint32_t elem_bytes = 0; ///< element size when strided
};

/// The code of one DTA thread, divided into the PF/PL/EX/PS blocks.
/// Block layout in \ref code is always  [0,pl_begin) = PF,
/// [pl_begin,ex_begin) = PL, [ex_begin,ps_begin) = EX, [ps_begin,end) = PS.
struct ThreadCode {
    std::string name;               ///< for traces and disassembly
    std::uint32_t num_inputs = 0;   ///< default Synchronisation Counter value
    std::vector<Instruction> code;  ///< all instructions, block-ordered
    std::uint32_t pl_begin = 0;     ///< first PL instruction (== PF length)
    std::uint32_t ex_begin = 0;     ///< first EX instruction
    std::uint32_t ps_begin = 0;     ///< first PS instruction
    std::vector<RegionAnnotation> annotations;  ///< for the prefetch pass

    [[nodiscard]] bool has_prefetch_block() const { return pl_begin > 0; }
    [[nodiscard]] std::uint32_t size() const {
        return static_cast<std::uint32_t>(code.size());
    }
    /// Block of instruction index \p ip (must be in range).
    [[nodiscard]] CodeBlock block_of(std::uint32_t ip) const {
        if (ip < pl_begin) return CodeBlock::kPf;
        if (ip < ex_begin) return CodeBlock::kPl;
        if (ip < ps_begin) return CodeBlock::kEx;
        return CodeBlock::kPs;
    }
};

/// A whole TLP activity: the set of thread codes plus the entry thread that
/// the host (the PPE, in CellDTA) offloads to the DTA hardware.
struct Program {
    std::string name;
    std::vector<ThreadCode> codes;
    sim::ThreadCodeId entry = 0;  ///< code id of the bootstrap thread

    /// Adds a thread code; returns its id for use in FALLOC immediates.
    sim::ThreadCodeId add(ThreadCode tc) {
        codes.push_back(std::move(tc));
        return static_cast<sim::ThreadCodeId>(codes.size() - 1);
    }

    [[nodiscard]] const ThreadCode& at(sim::ThreadCodeId id) const;

    /// Total instruction count over all thread codes (static code size).
    [[nodiscard]] std::size_t static_instruction_count() const;
};

}  // namespace dta::isa
