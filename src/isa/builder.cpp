#include "isa/builder.hpp"

#include <utility>

#include "isa/validate.hpp"
#include "sim/check.hpp"

namespace dta::isa {

CodeBuilder::CodeBuilder(std::string name, std::uint32_t num_inputs) {
    tc_.name = std::move(name);
    tc_.num_inputs = num_inputs;
}

CodeBuilder& CodeBuilder::block(CodeBlock b) {
    const int ordinal = static_cast<int>(b);
    DTA_SIM_REQUIRE(ordinal > last_block_,
                    "code blocks must be opened in PF<PL<EX<PS order in '" +
                        tc_.name + "'");
    // Every not-yet-opened block boundary up to and including b starts here.
    const auto here = size();
    for (int blk = last_block_ + 1; blk <= ordinal; ++blk) {
        switch (static_cast<CodeBlock>(blk)) {
            case CodeBlock::kPf: break;  // PF implicitly starts at 0
            case CodeBlock::kPl: tc_.pl_begin = here; break;
            case CodeBlock::kEx: tc_.ex_begin = here; break;
            case CodeBlock::kPs: tc_.ps_begin = here; break;
        }
    }
    last_block_ = ordinal;
    in_block_ = true;
    return *this;
}

std::int16_t CodeBuilder::annotate(RegionAnnotation ann) {
    DTA_SIM_REQUIRE(tc_.annotations.size() < 127,
                    "too many prefetch regions in '" + tc_.name + "'");
    tc_.annotations.push_back(std::move(ann));
    return static_cast<std::int16_t>(tc_.annotations.size() - 1);
}

Label CodeBuilder::new_label() {
    label_pos_.push_back(-1);
    return Label{static_cast<std::uint32_t>(label_pos_.size() - 1)};
}

CodeBuilder& CodeBuilder::bind(Label l) {
    DTA_CHECK(l.id < label_pos_.size());
    DTA_SIM_REQUIRE(label_pos_[l.id] < 0,
                    "label bound twice in '" + tc_.name + "'");
    label_pos_[l.id] = static_cast<std::int64_t>(size());
    return *this;
}

CodeBuilder& CodeBuilder::emit(Instruction ins) {
    DTA_SIM_REQUIRE(in_block_, "instruction emitted outside any code block in '" +
                                   tc_.name + "'");
    ins.block = static_cast<CodeBlock>(last_block_);
    tc_.code.push_back(ins);
    return *this;
}

// --- compute ---------------------------------------------------------------

namespace {
Instruction rrr(Opcode op, Reg rd, Reg ra, Reg rb) {
    Instruction i;
    i.op = op;
    i.rd = rd.idx;
    i.ra = ra.idx;
    i.rb = rb.idx;
    return i;
}
Instruction rri(Opcode op, Reg rd, Reg ra, std::int64_t imm) {
    Instruction i;
    i.op = op;
    i.rd = rd.idx;
    i.ra = ra.idx;
    i.imm = imm;
    return i;
}
}  // namespace

CodeBuilder& CodeBuilder::nop() { return emit({}); }
CodeBuilder& CodeBuilder::movi(Reg rd, std::int64_t imm) {
    return emit(rri(Opcode::kMovI, rd, r(0), imm));
}
CodeBuilder& CodeBuilder::mov(Reg rd, Reg ra) {
    return emit(rrr(Opcode::kMov, rd, ra, r(0)));
}
CodeBuilder& CodeBuilder::add(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kAdd, rd, ra, rb));
}
CodeBuilder& CodeBuilder::sub(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kSub, rd, ra, rb));
}
CodeBuilder& CodeBuilder::mul(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kMul, rd, ra, rb));
}
CodeBuilder& CodeBuilder::div(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kDiv, rd, ra, rb));
}
CodeBuilder& CodeBuilder::rem(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kRem, rd, ra, rb));
}
CodeBuilder& CodeBuilder::and_(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kAnd, rd, ra, rb));
}
CodeBuilder& CodeBuilder::or_(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kOr, rd, ra, rb));
}
CodeBuilder& CodeBuilder::xor_(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kXor, rd, ra, rb));
}
CodeBuilder& CodeBuilder::shl(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kShl, rd, ra, rb));
}
CodeBuilder& CodeBuilder::shr(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kShr, rd, ra, rb));
}
CodeBuilder& CodeBuilder::addi(Reg rd, Reg ra, std::int64_t imm) {
    return emit(rri(Opcode::kAddI, rd, ra, imm));
}
CodeBuilder& CodeBuilder::muli(Reg rd, Reg ra, std::int64_t imm) {
    return emit(rri(Opcode::kMulI, rd, ra, imm));
}
CodeBuilder& CodeBuilder::andi(Reg rd, Reg ra, std::int64_t imm) {
    return emit(rri(Opcode::kAndI, rd, ra, imm));
}
CodeBuilder& CodeBuilder::ori(Reg rd, Reg ra, std::int64_t imm) {
    return emit(rri(Opcode::kOrI, rd, ra, imm));
}
CodeBuilder& CodeBuilder::xori(Reg rd, Reg ra, std::int64_t imm) {
    return emit(rri(Opcode::kXorI, rd, ra, imm));
}
CodeBuilder& CodeBuilder::shli(Reg rd, Reg ra, std::int64_t imm) {
    return emit(rri(Opcode::kShlI, rd, ra, imm));
}
CodeBuilder& CodeBuilder::shri(Reg rd, Reg ra, std::int64_t imm) {
    return emit(rri(Opcode::kShrI, rd, ra, imm));
}
CodeBuilder& CodeBuilder::slt(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kSlt, rd, ra, rb));
}
CodeBuilder& CodeBuilder::slti(Reg rd, Reg ra, std::int64_t imm) {
    return emit(rri(Opcode::kSltI, rd, ra, imm));
}
CodeBuilder& CodeBuilder::seq(Reg rd, Reg ra, Reg rb) {
    return emit(rrr(Opcode::kSeq, rd, ra, rb));
}
CodeBuilder& CodeBuilder::self(Reg rd) {
    return emit(rrr(Opcode::kSelf, rd, r(0), r(0)));
}

// --- control flow ------------------------------------------------------------

CodeBuilder& CodeBuilder::branch_to(Opcode op, Reg ra, Reg rb, Label target) {
    DTA_CHECK(target.id < label_pos_.size());
    Instruction i;
    i.op = op;
    i.ra = ra.idx;
    i.rb = rb.idx;
    // imm temporarily holds the label id; patched in finish().
    i.imm = static_cast<std::int64_t>(target.id);
    return emit(i);
}

CodeBuilder& CodeBuilder::beq(Reg ra, Reg rb, Label t) {
    return branch_to(Opcode::kBeq, ra, rb, t);
}
CodeBuilder& CodeBuilder::bne(Reg ra, Reg rb, Label t) {
    return branch_to(Opcode::kBne, ra, rb, t);
}
CodeBuilder& CodeBuilder::blt(Reg ra, Reg rb, Label t) {
    return branch_to(Opcode::kBlt, ra, rb, t);
}
CodeBuilder& CodeBuilder::bge(Reg ra, Reg rb, Label t) {
    return branch_to(Opcode::kBge, ra, rb, t);
}
CodeBuilder& CodeBuilder::jmp(Label t) {
    return branch_to(Opcode::kJmp, r(0), r(0), t);
}

// --- memory / threads / DMA --------------------------------------------------

CodeBuilder& CodeBuilder::load(Reg rd, std::int64_t word_offset) {
    return emit(rri(Opcode::kLoad, rd, r(0), word_offset));
}
CodeBuilder& CodeBuilder::store(Reg rs, Reg rframe, std::int64_t word_offset) {
    Instruction i;
    i.op = Opcode::kStore;
    i.ra = rs.idx;
    i.rb = rframe.idx;
    i.imm = word_offset;
    return emit(i);
}
CodeBuilder& CodeBuilder::loadx(Reg rd, Reg ridx, std::int64_t word_offset) {
    return emit(rri(Opcode::kLoadX, rd, ridx, word_offset));
}
CodeBuilder& CodeBuilder::storex(Reg rs, Reg rframe, Reg ridx,
                                 std::int64_t word_offset) {
    Instruction i;
    i.op = Opcode::kStoreX;
    i.ra = rs.idx;
    i.rb = rframe.idx;
    i.rd = ridx.idx;
    i.imm = word_offset;
    return emit(i);
}
CodeBuilder& CodeBuilder::read(Reg rd, Reg ra, std::int64_t byte_offset,
                               std::int16_t region) {
    Instruction i = rri(Opcode::kRead, rd, ra, byte_offset);
    i.region = region;
    return emit(i);
}
CodeBuilder& CodeBuilder::write(Reg rs, Reg rb, std::int64_t byte_offset) {
    Instruction i;
    i.op = Opcode::kWrite;
    i.ra = rs.idx;
    i.rb = rb.idx;
    i.imm = byte_offset;
    return emit(i);
}
CodeBuilder& CodeBuilder::lsload(Reg rd, Reg ra, std::int64_t byte_offset,
                                 std::int16_t region) {
    Instruction i = rri(Opcode::kLsLoad, rd, ra, byte_offset);
    i.region = region;
    return emit(i);
}
CodeBuilder& CodeBuilder::lsstore(Reg rs, Reg rb, std::int64_t byte_offset,
                                  std::int16_t region) {
    Instruction i;
    i.op = Opcode::kLsStore;
    i.ra = rs.idx;
    i.rb = rb.idx;
    i.imm = byte_offset;
    i.region = region;
    return emit(i);
}
CodeBuilder& CodeBuilder::falloc(Reg rd, sim::ThreadCodeId code) {
    return emit(rri(Opcode::kFalloc, rd, r(0), static_cast<std::int64_t>(code)));
}
CodeBuilder& CodeBuilder::fallocn(Reg rd, Reg sc, sim::ThreadCodeId code) {
    return emit(rri(Opcode::kFallocN, rd, sc, static_cast<std::int64_t>(code)));
}
CodeBuilder& CodeBuilder::ffree() {
    Instruction i;
    i.op = Opcode::kFfree;
    return emit(i);
}
CodeBuilder& CodeBuilder::stop() {
    Instruction i;
    i.op = Opcode::kStop;
    return emit(i);
}
CodeBuilder& CodeBuilder::dmaget(Reg ra, DmaArgs args) {
    Instruction i;
    i.op = Opcode::kDmaGet;
    i.ra = ra.idx;
    i.region = static_cast<std::int16_t>(args.region);
    i.dma = args;
    return emit(i);
}
CodeBuilder& CodeBuilder::dmawait() {
    Instruction i;
    i.op = Opcode::kDmaWait;
    return emit(i);
}
CodeBuilder& CodeBuilder::regset(Reg ra, DmaArgs args) {
    Instruction i;
    i.op = Opcode::kRegSet;
    i.ra = ra.idx;
    i.region = static_cast<std::int16_t>(args.region);
    i.dma = args;
    return emit(i);
}
CodeBuilder& CodeBuilder::dmaput(Reg ra, DmaArgs args) {
    Instruction i;
    i.op = Opcode::kDmaPut;
    i.ra = ra.idx;
    i.region = static_cast<std::int16_t>(args.region);
    i.dma = args;
    return emit(i);
}

// --- finalisation --------------------------------------------------------------

ThreadCode CodeBuilder::finish(bool validate) && {
    // Unopened trailing blocks start at end-of-code.
    const auto end = size();
    for (int blk = last_block_ + 1; blk <= static_cast<int>(CodeBlock::kPs);
         ++blk) {
        switch (static_cast<CodeBlock>(blk)) {
            case CodeBlock::kPf: break;
            case CodeBlock::kPl: tc_.pl_begin = end; break;
            case CodeBlock::kEx: tc_.ex_begin = end; break;
            case CodeBlock::kPs: tc_.ps_begin = end; break;
        }
    }
    // Patch branch targets: imm currently holds the label id.
    for (auto& ins : tc_.code) {
        if (!ins.info().is_branch) {
            continue;
        }
        const auto label_id = static_cast<std::size_t>(ins.imm);
        DTA_CHECK(label_id < label_pos_.size());
        DTA_SIM_REQUIRE(label_pos_[label_id] >= 0,
                        "unbound label in '" + tc_.name + "'");
        ins.imm = label_pos_[label_id];
    }
    if (validate) {
        validate_thread_code(tc_);
    }
    return std::move(tc_);
}

ThreadCode CodeBuilder::build() && { return std::move(*this).finish(true); }
ThreadCode CodeBuilder::build_unchecked() && {
    return std::move(*this).finish(false);
}

}  // namespace dta::isa
