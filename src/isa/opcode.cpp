#include "isa/opcode.hpp"

#include <array>

#include "sim/check.hpp"

namespace dta::isa {
namespace {

constexpr OpInfo make(std::string_view name, IssuePort port, LatencyClass lat,
                      bool wr_rd, bool rd_ra, bool rd_rb, bool branch = false,
                      bool rd_rd = false) {
    return OpInfo{name, port, lat, wr_rd, rd_ra, rd_rb, branch, rd_rd};
}

// Order must match the Opcode enumeration exactly; verified below.
constexpr std::array kOpTable = {
    // compute
    make("nop", IssuePort::kCompute, LatencyClass::kAlu, false, false, false),
    make("movi", IssuePort::kCompute, LatencyClass::kAlu, true, false, false),
    make("mov", IssuePort::kCompute, LatencyClass::kAlu, true, true, false),
    make("add", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("sub", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("mul", IssuePort::kCompute, LatencyClass::kMulDiv, true, true, true),
    make("div", IssuePort::kCompute, LatencyClass::kMulDiv, true, true, true),
    make("rem", IssuePort::kCompute, LatencyClass::kMulDiv, true, true, true),
    make("and", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("or", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("xor", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("shl", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("shr", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("addi", IssuePort::kCompute, LatencyClass::kAlu, true, true, false),
    make("muli", IssuePort::kCompute, LatencyClass::kMulDiv, true, true, false),
    make("andi", IssuePort::kCompute, LatencyClass::kAlu, true, true, false),
    make("ori", IssuePort::kCompute, LatencyClass::kAlu, true, true, false),
    make("xori", IssuePort::kCompute, LatencyClass::kAlu, true, true, false),
    make("shli", IssuePort::kCompute, LatencyClass::kAlu, true, true, false),
    make("shri", IssuePort::kCompute, LatencyClass::kAlu, true, true, false),
    make("slt", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("slti", IssuePort::kCompute, LatencyClass::kAlu, true, true, false),
    make("seq", IssuePort::kCompute, LatencyClass::kAlu, true, true, true),
    make("self", IssuePort::kCompute, LatencyClass::kAlu, true, false, false),
    // control flow
    make("beq", IssuePort::kCompute, LatencyClass::kBranch, false, true, true, true),
    make("bne", IssuePort::kCompute, LatencyClass::kBranch, false, true, true, true),
    make("blt", IssuePort::kCompute, LatencyClass::kBranch, false, true, true, true),
    make("bge", IssuePort::kCompute, LatencyClass::kBranch, false, true, true, true),
    make("jmp", IssuePort::kCompute, LatencyClass::kBranch, false, false, false, true),
    // frame memory
    make("load", IssuePort::kMemory, LatencyClass::kLocal, true, false, false),
    make("store", IssuePort::kMemory, LatencyClass::kPosted, false, true, true),
    make("loadx", IssuePort::kMemory, LatencyClass::kLocal, true, true, false),
    make("storex", IssuePort::kMemory, LatencyClass::kPosted, false, true, true,
         false, /*rd_rd=*/true),
    // main memory
    make("read", IssuePort::kMemory, LatencyClass::kDynamic, true, true, false),
    make("write", IssuePort::kMemory, LatencyClass::kPosted, false, true, true),
    // local store
    make("lsload", IssuePort::kMemory, LatencyClass::kLocal, true, true, false),
    make("lsstore", IssuePort::kMemory, LatencyClass::kPosted, false, true, true),
    // thread management
    make("falloc", IssuePort::kMemory, LatencyClass::kDynamic, true, false, false),
    make("fallocn", IssuePort::kMemory, LatencyClass::kDynamic, true, true, false),
    make("ffree", IssuePort::kMemory, LatencyClass::kControl, false, false, false),
    make("stop", IssuePort::kControl, LatencyClass::kControl, false, false, false),
    // DMA
    make("dmaget", IssuePort::kMemory, LatencyClass::kPosted, false, true, false),
    make("dmawait", IssuePort::kControl, LatencyClass::kControl, false, false, false),
    make("regset", IssuePort::kCompute, LatencyClass::kAlu, false, true, false),
    make("dmaput", IssuePort::kMemory, LatencyClass::kPosted, false, true, false),
};

static_assert(kOpTable.size() ==
                  static_cast<std::size_t>(Opcode::kDmaPut) + 1,
              "opcode table out of sync with Opcode enum");

}  // namespace

const OpInfo& op_info(Opcode op) {
    const auto idx = static_cast<std::size_t>(op);
    DTA_CHECK_MSG(idx < kOpTable.size(), "opcode out of range");
    return kOpTable[idx];
}

std::string_view op_name(Opcode op) { return op_info(op).name; }

std::size_t op_count() { return kOpTable.size(); }

}  // namespace dta::isa
