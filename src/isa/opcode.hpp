/// \file opcode.hpp
/// \brief Opcodes of the DTA instruction set and their static properties.
///
/// The ISA is a compact RISC-style register machine extended with the DTA
/// thread-management instructions of Table 1 of the paper (FALLOC, FFREE,
/// STOP, frame LOAD/STORE) plus the main-memory accesses the paper names
/// READ/WRITE, the local-store accesses used for prefetched data, and the
/// DMA programming instructions of Table 3 (DMAGET/DMAWAIT).
#pragma once

#include <cstdint>
#include <string_view>

namespace dta::isa {

/// Every instruction the simulated SPU can execute.
enum class Opcode : std::uint8_t {
    // --- compute (ALU) ------------------------------------------------
    kNop,
    kMovI,   ///< rd = imm
    kMov,    ///< rd = ra
    kAdd,    ///< rd = ra + rb
    kSub,    ///< rd = ra - rb
    kMul,    ///< rd = ra * rb           (long-latency unit)
    kDiv,    ///< rd = ra / rb (0 if rb==0; long-latency unit)
    kRem,    ///< rd = ra % rb (0 if rb==0)
    kAnd,    ///< rd = ra & rb
    kOr,     ///< rd = ra | rb
    kXor,    ///< rd = ra ^ rb
    kShl,    ///< rd = ra << (rb & 63)
    kShr,    ///< rd = ra >> (rb & 63)   (logical)
    kAddI,   ///< rd = ra + imm
    kMulI,   ///< rd = ra * imm          (long-latency unit)
    kAndI,   ///< rd = ra & imm
    kOrI,    ///< rd = ra | imm
    kXorI,   ///< rd = ra ^ imm
    kShlI,   ///< rd = ra << (imm & 63)
    kShrI,   ///< rd = ra >> (imm & 63)  (logical)
    kSlt,    ///< rd = (signed) ra < rb
    kSltI,   ///< rd = (signed) ra < imm
    kSeq,    ///< rd = ra == rb
    kSelf,   ///< rd = packed frame handle of the executing thread

    // --- control flow (within a thread) --------------------------------
    kBeq,    ///< if (ra == rb) goto imm
    kBne,    ///< if (ra != rb) goto imm
    kBlt,    ///< if ((signed) ra < rb) goto imm
    kBge,    ///< if ((signed) ra >= rb) goto imm
    kJmp,    ///< goto imm

    // --- frame memory (DTA LOAD/STORE of Table 1) ----------------------
    kLoad,   ///< rd = own_frame[imm]           (64-bit word)
    kStore,  ///< frame(rb)[imm] = ra           (64-bit word, decrements SC)
    kLoadX,  ///< rd = own_frame[ra + imm]      (register-indexed LOAD)
    kStoreX, ///< frame(rb)[rd + imm] = ra      (register-indexed STORE)

    // --- main memory (the paper's READ/WRITE) --------------------------
    kRead,   ///< rd = zext(mem32[ra + imm])    (blocking round trip)
    kWrite,  ///< mem32[rb + imm] = lo32(ra)    (posted)

    // --- local store (prefetched global data) --------------------------
    kLsLoad,  ///< rd = zext(ls32[translate(ra + imm)])
    kLsStore, ///< ls32[translate(rb + imm)] = lo32(ra)

    // --- thread management (Table 1) ------------------------------------
    kFalloc,  ///< rd = frame handle for code imm (SC = code's input count)
    kFallocN, ///< rd = frame handle for code imm with SC = ra
    kFfree,   ///< release the executing thread's own frame
    kStop,    ///< thread complete; must be the last instruction

    // --- DMA prefetch (Table 3 / Section 3) -----------------------------
    kDmaGet,  ///< enqueue MFC get: main mem [ra ..] -> LS staging (DmaArgs)
    kDmaWait, ///< suspend until all of this thread's tags complete (last PF
              ///< instruction, or in PS to drain DMAPUT write-backs)

    // --- DMA write-back (this repo's extension of the mechanism) ----------
    kRegSet,  ///< fill a region-table entry without a transfer: lets LSSTORE
              ///< stage *output* data in the LS (ra = main-memory base)
    kDmaPut,  ///< enqueue MFC put: LS staging -> main mem [ra ..] (DmaArgs);
              ///< the post-store analogue of DMAGET
};

/// Issue port an opcode occupies — the SPU is dual-issue with one memory
/// pipe and one compute pipe per cycle (Section 4.1 of the paper).
enum class IssuePort : std::uint8_t {
    kCompute,  ///< ALU / branch pipe
    kMemory,   ///< LS / main-memory / scheduler-request pipe
    kControl,  ///< single-issue, serialising (STOP, DMAWAIT)
};

/// Coarse latency class; the concrete cycle counts come from CoreConfig.
enum class LatencyClass : std::uint8_t {
    kAlu,      ///< single-cycle integer op
    kMulDiv,   ///< long-latency integer unit
    kBranch,   ///< resolves at issue; taken branches pay the flush penalty
    kLocal,    ///< local-store access (frame LOAD, LSLOAD/LSSTORE)
    kDynamic,  ///< completion driven by an asynchronous reply (READ, FALLOC)
    kPosted,   ///< fire-and-forget through a store/command queue
    kControl,  ///< STOP / DMAWAIT / FFREE handshakes
};

/// Static description of an opcode.
struct OpInfo {
    std::string_view name;    ///< mnemonic for the disassembler
    IssuePort port;           ///< which issue pipe it occupies
    LatencyClass latency;     ///< coarse latency class
    bool writes_rd;           ///< defines register rd
    bool reads_ra;            ///< uses register ra
    bool reads_rb;            ///< uses register rb
    bool is_branch;           ///< participates in control flow
    bool reads_rd = false;    ///< uses rd as a *source* (indexed STORE)
};

/// Returns the static description of \p op.
[[nodiscard]] const OpInfo& op_info(Opcode op);

/// Mnemonic of \p op.
[[nodiscard]] std::string_view op_name(Opcode op);

/// Total number of opcodes (for iteration in tests).
[[nodiscard]] std::size_t op_count();

}  // namespace dta::isa
