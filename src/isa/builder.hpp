/// \file builder.hpp
/// \brief Assembler-style fluent builder for ThreadCode.
///
/// The benchmarks of the paper were hand-coded in DTA assembly; CodeBuilder
/// is the programmatic equivalent.  Typical use:
///
/// \code
///   CodeBuilder b{"worker", /*num_inputs=*/2};
///   b.block(CodeBlock::kPl)
///       .load(r(1), 0)            // first input word
///       .load(r(2), 1);           // second input word
///   b.block(CodeBlock::kEx)
///       .add(r(3), r(1), r(2));
///   b.block(CodeBlock::kPs)
///       .store(r(3), r(2), 0)     // send result to consumer's frame
///       .ffree()
///       .stop();
///   ThreadCode tc = std::move(b).build();
/// \endcode
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace dta::isa {

/// A forward-referenceable branch target.
struct Label {
    std::uint32_t id = 0;
};

/// Builds one ThreadCode with label resolution and block bookkeeping.
class CodeBuilder {
public:
    CodeBuilder(std::string name, std::uint32_t num_inputs);

    /// Opens a code block; blocks must be opened in PF < PL < EX < PS order,
    /// each at most once.  Instructions may only be emitted inside a block.
    CodeBuilder& block(CodeBlock b);

    /// Registers a prefetch-region annotation; returns its region id for use
    /// in \ref read.
    std::int16_t annotate(RegionAnnotation ann);

    // --- labels ---------------------------------------------------------
    [[nodiscard]] Label new_label();
    CodeBuilder& bind(Label l);

    // --- compute ----------------------------------------------------------
    CodeBuilder& nop();
    CodeBuilder& movi(Reg rd, std::int64_t imm);
    CodeBuilder& mov(Reg rd, Reg ra);
    CodeBuilder& add(Reg rd, Reg ra, Reg rb);
    CodeBuilder& sub(Reg rd, Reg ra, Reg rb);
    CodeBuilder& mul(Reg rd, Reg ra, Reg rb);
    CodeBuilder& div(Reg rd, Reg ra, Reg rb);
    CodeBuilder& rem(Reg rd, Reg ra, Reg rb);
    CodeBuilder& and_(Reg rd, Reg ra, Reg rb);
    CodeBuilder& or_(Reg rd, Reg ra, Reg rb);
    CodeBuilder& xor_(Reg rd, Reg ra, Reg rb);
    CodeBuilder& shl(Reg rd, Reg ra, Reg rb);
    CodeBuilder& shr(Reg rd, Reg ra, Reg rb);
    CodeBuilder& addi(Reg rd, Reg ra, std::int64_t imm);
    CodeBuilder& muli(Reg rd, Reg ra, std::int64_t imm);
    CodeBuilder& andi(Reg rd, Reg ra, std::int64_t imm);
    CodeBuilder& ori(Reg rd, Reg ra, std::int64_t imm);
    CodeBuilder& xori(Reg rd, Reg ra, std::int64_t imm);
    CodeBuilder& shli(Reg rd, Reg ra, std::int64_t imm);
    CodeBuilder& shri(Reg rd, Reg ra, std::int64_t imm);
    CodeBuilder& slt(Reg rd, Reg ra, Reg rb);
    CodeBuilder& slti(Reg rd, Reg ra, std::int64_t imm);
    CodeBuilder& seq(Reg rd, Reg ra, Reg rb);
    CodeBuilder& self(Reg rd);

    // --- control flow -----------------------------------------------------
    CodeBuilder& beq(Reg ra, Reg rb, Label target);
    CodeBuilder& bne(Reg ra, Reg rb, Label target);
    CodeBuilder& blt(Reg ra, Reg rb, Label target);
    CodeBuilder& bge(Reg ra, Reg rb, Label target);
    CodeBuilder& jmp(Label target);

    // --- frame memory -------------------------------------------------------
    /// rd = own_frame[word_offset]
    CodeBuilder& load(Reg rd, std::int64_t word_offset);
    /// frame(rframe)[word_offset] = rs  — the DTA STORE of Table 1.
    CodeBuilder& store(Reg rs, Reg rframe, std::int64_t word_offset);
    /// rd = own_frame[ridx + word_offset]  (register-indexed LOAD)
    CodeBuilder& loadx(Reg rd, Reg ridx, std::int64_t word_offset);
    /// frame(rframe)[ridx + word_offset] = rs  (register-indexed STORE)
    CodeBuilder& storex(Reg rs, Reg rframe, Reg ridx,
                        std::int64_t word_offset);

    // --- main memory ---------------------------------------------------------
    /// rd = mem32[ra + byte_offset]; \p region links to an annotation for the
    /// prefetch pass (kNoRegion = never decoupled, e.g. data-dependent index).
    CodeBuilder& read(Reg rd, Reg ra, std::int64_t byte_offset,
                      std::int16_t region = kNoRegion);
    /// mem32[rb + byte_offset] = lo32(rs)
    CodeBuilder& write(Reg rs, Reg rb, std::int64_t byte_offset);

    // --- local store -----------------------------------------------------------
    /// rd = ls32[ra + byte_offset], translated via region table entry \p region
    /// (region < 0 means ra holds a raw LS address).
    CodeBuilder& lsload(Reg rd, Reg ra, std::int64_t byte_offset,
                        std::int16_t region = kNoRegion);
    /// ls32[rb + byte_offset] = lo32(rs)
    CodeBuilder& lsstore(Reg rs, Reg rb, std::int64_t byte_offset,
                         std::int16_t region = kNoRegion);

    // --- thread management --------------------------------------------------
    /// rd = handle of a fresh frame for thread code \p code (SC = its input count).
    CodeBuilder& falloc(Reg rd, sim::ThreadCodeId code);
    /// Like falloc but with an explicit SC taken from register \p sc.
    CodeBuilder& fallocn(Reg rd, Reg sc, sim::ThreadCodeId code);
    CodeBuilder& ffree();
    CodeBuilder& stop();

    // --- DMA -----------------------------------------------------------------
    /// Enqueue an MFC get command; main-memory base address in \p ra.
    CodeBuilder& dmaget(Reg ra, DmaArgs args);
    CodeBuilder& dmawait();
    /// Fill a region-table entry (no transfer) so LSSTORE can stage output.
    CodeBuilder& regset(Reg ra, DmaArgs args);
    /// Enqueue an MFC put command (LS staging -> main memory at ra).
    CodeBuilder& dmaput(Reg ra, DmaArgs args);

    /// Resolves labels, fixes block boundaries, validates and returns the code.
    [[nodiscard]] ThreadCode build() &&;
    /// Same but skips validation (used to unit-test the validator itself).
    [[nodiscard]] ThreadCode build_unchecked() &&;

    /// Number of instructions emitted so far.
    [[nodiscard]] std::uint32_t size() const {
        return static_cast<std::uint32_t>(tc_.code.size());
    }

private:
    CodeBuilder& emit(Instruction ins);
    CodeBuilder& branch_to(Opcode op, Reg ra, Reg rb, Label target);
    [[nodiscard]] ThreadCode finish(bool validate) &&;

    ThreadCode tc_;
    bool in_block_ = false;
    int last_block_ = -1;                 ///< last opened block ordinal
    std::vector<std::int64_t> label_pos_; ///< bound position per label, -1 if unbound
};

}  // namespace dta::isa
