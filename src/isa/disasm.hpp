/// \file disasm.hpp
/// \brief Human-readable rendering of instructions and thread codes.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace dta::isa {

/// One-line rendering, e.g. "add r3, r1, r2" or
/// "dmaget r5 -> ls+0x100, 4096B, region 0".
[[nodiscard]] std::string disassemble(const Instruction& ins);

/// Multi-line listing of a whole thread code, with block headers and
/// instruction indices (branch targets reference those indices).
[[nodiscard]] std::string disassemble(const ThreadCode& tc);

/// Listing of every thread code in the program.
[[nodiscard]] std::string disassemble(const Program& prog);

}  // namespace dta::isa
