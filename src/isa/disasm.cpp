#include "isa/disasm.hpp"

#include <sstream>

namespace dta::isa {
namespace {

std::string reg_str(std::uint8_t idx) { return "r" + std::to_string(idx); }

}  // namespace

std::string disassemble(const Instruction& ins) {
    const OpInfo& oi = ins.info();
    std::ostringstream os;
    os << oi.name;
    switch (ins.op) {
        case Opcode::kNop:
        case Opcode::kFfree:
        case Opcode::kStop:
        case Opcode::kDmaWait:
            break;
        case Opcode::kMovI:
            os << ' ' << reg_str(ins.rd) << ", " << ins.imm;
            break;
        case Opcode::kSelf:
            os << ' ' << reg_str(ins.rd);
            break;
        case Opcode::kLoad:
            os << ' ' << reg_str(ins.rd) << ", frame[" << ins.imm << ']';
            break;
        case Opcode::kStore:
            os << ' ' << reg_str(ins.ra) << " -> frame(" << reg_str(ins.rb)
               << ")[" << ins.imm << ']';
            break;
        case Opcode::kLoadX:
            os << ' ' << reg_str(ins.rd) << ", frame[" << reg_str(ins.ra)
               << '+' << ins.imm << ']';
            break;
        case Opcode::kStoreX:
            os << ' ' << reg_str(ins.ra) << " -> frame(" << reg_str(ins.rb)
               << ")[" << reg_str(ins.rd) << '+' << ins.imm << ']';
            break;
        case Opcode::kRead:
            os << ' ' << reg_str(ins.rd) << ", mem[" << reg_str(ins.ra) << '+'
               << ins.imm << ']';
            if (ins.region != kNoRegion) os << " @region" << ins.region;
            break;
        case Opcode::kWrite:
            os << ' ' << reg_str(ins.ra) << " -> mem[" << reg_str(ins.rb)
               << '+' << ins.imm << ']';
            break;
        case Opcode::kLsLoad:
            os << ' ' << reg_str(ins.rd) << ", ls[" << reg_str(ins.ra) << '+'
               << ins.imm << ']';
            if (ins.region != kNoRegion) os << " via region" << ins.region;
            break;
        case Opcode::kLsStore:
            os << ' ' << reg_str(ins.ra) << " -> ls[" << reg_str(ins.rb) << '+'
               << ins.imm << ']';
            if (ins.region != kNoRegion) os << " via region" << ins.region;
            break;
        case Opcode::kFalloc:
            os << ' ' << reg_str(ins.rd) << ", code " << ins.imm;
            break;
        case Opcode::kFallocN:
            os << ' ' << reg_str(ins.rd) << ", code " << ins.imm
               << ", sc=" << reg_str(ins.ra);
            break;
        case Opcode::kDmaGet:
        case Opcode::kDmaPut:
        case Opcode::kRegSet:
            os << ' ' << reg_str(ins.ra);
            if (ins.dma) {
                os << " -> ls+" << ins.dma->ls_offset << ", " << ins.dma->bytes
                   << "B";
                if (ins.dma->stride != 0) {
                    os << " (stride " << ins.dma->stride << ", elem "
                       << ins.dma->elem_bytes << "B)";
                }
                os << ", region " << static_cast<int>(ins.dma->region);
            }
            break;
        case Opcode::kBeq:
        case Opcode::kBne:
        case Opcode::kBlt:
        case Opcode::kBge:
            os << ' ' << reg_str(ins.ra) << ", " << reg_str(ins.rb) << ", @"
               << ins.imm;
            break;
        case Opcode::kJmp:
            os << " @" << ins.imm;
            break;
        default:
            // Generic rrr / rri compute forms.
            os << ' ' << reg_str(ins.rd) << ", " << reg_str(ins.ra);
            if (oi.reads_rb) {
                os << ", " << reg_str(ins.rb);
            } else {
                os << ", " << ins.imm;
            }
            break;
    }
    return os.str();
}

std::string disassemble(const ThreadCode& tc) {
    std::ostringstream os;
    os << "thread '" << tc.name << "' (inputs=" << tc.num_inputs
       << ", regions=" << tc.annotations.size() << ")\n";
    CodeBlock last = CodeBlock::kPs;
    bool first = true;
    for (std::uint32_t ip = 0; ip < tc.size(); ++ip) {
        const CodeBlock b = tc.block_of(ip);
        if (first || b != last) {
            os << "  ." << block_name(b) << ":\n";
            last = b;
            first = false;
        }
        os << "    " << ip << ":\t" << disassemble(tc.code[ip]) << '\n';
    }
    return os.str();
}

std::string disassemble(const Program& prog) {
    std::ostringstream os;
    os << "program '" << prog.name << "' (entry=" << prog.entry << ")\n";
    for (std::size_t i = 0; i < prog.codes.size(); ++i) {
        os << "[code " << i << "] " << disassemble(prog.codes[i]);
    }
    return os.str();
}

}  // namespace dta::isa
