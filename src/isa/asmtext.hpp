/// \file asmtext.hpp
/// \brief Textual DTA assembly: a serialiser and parser with a round-trip
///        guarantee (`parse_program(to_assembly(p))` reproduces `p`
///        instruction for instruction).
///
/// Format sketch (written by to_assembly, accepted by parse_program):
///
///     program "mmul(32)" entry=1
///
///     thread "worker" inputs=2
///       region bytes=128 reg=r30 {
///         load r28, frame[0]
///         muli r28, r28, 128
///         addi r30, r28, 65536
///       }
///       .pl
///         load r1, frame[0]
///       .ex
///       L4:
///         read r13, mem[r11+0] @region0
///         blt r10, r3, L4
///       .ps
///         ffree
///         stop
///     end
///
/// `#` starts a comment.  Blocks (.pf/.pl/.ex/.ps) may be omitted when
/// empty.  Branch targets are labels (`Lname:` definitions); strided
/// regions add `stride=<n> elem=<n>`; DMA commands are written as
/// `dmaget r5, ls+256, bytes=4096, region=1[, stride=128, elem=4]`.
#pragma once

#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace dta::isa {

/// Serialises a whole program (incl. region annotations) to assembly text.
[[nodiscard]] std::string to_assembly(const Program& prog);

/// Serialises one thread code.
[[nodiscard]] std::string to_assembly(const ThreadCode& tc);

/// Parses assembly text into a validated Program.  Throws sim::SimError
/// with a line number on any syntax or semantic error.
[[nodiscard]] Program parse_program(std::string_view text);

}  // namespace dta::isa
