/// \file alu.hpp
/// \brief The architectural (value) semantics of the compute and branch
///        opcodes, shared by the timed SPU pipeline and the functional
///        reference interpreter so the two can never drift apart.
#pragma once

#include <cstdint>

#include "isa/instruction.hpp"
#include "sim/check.hpp"

namespace dta::isa {

/// Evaluates a compute-class instruction (everything op_info(...).port ==
/// kCompute except branches).  \p self is the value SELF materialises (the
/// executing thread's frame handle).
[[nodiscard]] inline std::uint64_t eval_compute(const Instruction& ins,
                                                std::uint64_t a,
                                                std::uint64_t b,
                                                std::uint64_t self) {
    const auto imm = static_cast<std::uint64_t>(ins.imm);
    switch (ins.op) {
        case Opcode::kNop: return 0;
        case Opcode::kMovI: return imm;
        case Opcode::kMov: return a;
        case Opcode::kAdd: return a + b;
        case Opcode::kSub: return a - b;
        case Opcode::kMul: return a * b;
        case Opcode::kDiv: return b == 0 ? 0 : a / b;
        case Opcode::kRem: return b == 0 ? 0 : a % b;
        case Opcode::kAnd: return a & b;
        case Opcode::kOr: return a | b;
        case Opcode::kXor: return a ^ b;
        case Opcode::kShl: return a << (b & 63);
        case Opcode::kShr: return a >> (b & 63);
        case Opcode::kAddI: return a + imm;
        case Opcode::kMulI: return a * imm;
        case Opcode::kAndI: return a & imm;
        case Opcode::kOrI: return a | imm;
        case Opcode::kXorI: return a ^ imm;
        case Opcode::kShlI: return a << (imm & 63);
        case Opcode::kShrI: return a >> (imm & 63);
        case Opcode::kSlt:
            return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b)
                       ? 1
                       : 0;
        case Opcode::kSltI:
            return static_cast<std::int64_t>(a) < ins.imm ? 1 : 0;
        case Opcode::kSeq: return a == b ? 1 : 0;
        case Opcode::kSelf: return self;
        default:
            DTA_CHECK_MSG(false, "eval_compute on non-compute opcode");
    }
    return 0;
}

/// Evaluates a branch predicate (kJmp is unconditionally taken).
[[nodiscard]] inline bool eval_branch(const Instruction& ins, std::uint64_t a,
                                      std::uint64_t b) {
    switch (ins.op) {
        case Opcode::kBeq: return a == b;
        case Opcode::kBne: return a != b;
        case Opcode::kBlt:
            return static_cast<std::int64_t>(a) < static_cast<std::int64_t>(b);
        case Opcode::kBge:
            return static_cast<std::int64_t>(a) >=
                   static_cast<std::int64_t>(b);
        case Opcode::kJmp: return true;
        default:
            DTA_CHECK_MSG(false, "eval_branch on non-branch opcode");
    }
    return false;
}

}  // namespace dta::isa
