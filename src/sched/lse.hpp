/// \file lse.hpp
/// \brief The Local Scheduler Element — one per processing element.
///
/// The LSE owns this PE's frame memory (a region of the local store),
/// tracks each frame's Synchronisation Counter and lifetime state (Fig. 4
/// of the paper, including the Program-DMA / Wait-for-DMA states this paper
/// introduces), keeps the ready queue, and exchanges scheduler messages
/// with the node's DSE and with remote LSEs.
///
/// Frame stores — local or remote — are written into the local store
/// through the LSE's LS client port and the SC is decremented only when the
/// write completes, so a thread can never start before its inputs are
/// physically in frame memory.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "isa/instruction.hpp"
#include "mem/local_store.hpp"
#include "sched/messages.hpp"
#include "sim/events.hpp"
#include "sim/metrics.hpp"
#include "sim/types.hpp"

namespace dta::sim {
class AuditCtx;
}

namespace dta::sched {

/// Lifetime states of a frame / thread (Fig. 4).
enum class FrameState : std::uint8_t {
    kFree,
    kWaitStores,  ///< allocated, SC > 0
    kReady,       ///< SC == 0 (or DMA finished), queued for the pipeline
    kRunning,     ///< bound to the SPU
    kWaitDma,     ///< suspended in the paper's new Wait-for-DMA state
};

/// Runtime region-table entry: the hardware support that lets LSLOAD
/// translate a main-memory address into the LS staging copy (Section 3:
/// "the hardware is designed so that prefetch on such complex structures
/// are facilitated").  Filled by DMAGET; saved/restored across Wait-for-DMA.
struct RegionEntry {
    bool valid = false;
    std::uint64_t mem_base = 0;  ///< first main-memory byte covered
    std::uint32_t mem_stride = 0;    ///< 0 = contiguous copy
    std::uint32_t mem_elem_bytes = 0;///< element size when strided
    std::uint32_t ls_base = 0;   ///< absolute LS address of the staged copy
    std::uint32_t bytes = 0;     ///< staged bytes
};

/// Number of region-table entries per thread context.
inline constexpr std::size_t kNumRegions = 8;

/// Register file + region table snapshot saved across Wait-for-DMA.
struct ThreadSnapshot {
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    std::array<RegionEntry, kNumRegions> regions{};
};

/// Checkpoint serialization of a region-table entry (shared by the LSE's
/// suspended-thread snapshots and the SPU's live region table).
inline void save_region(sim::StateSink& s, const RegionEntry& r) {
    s.flag(r.valid);
    s.u64(r.mem_base);
    s.u32(r.mem_stride);
    s.u32(r.mem_elem_bytes);
    s.u32(r.ls_base);
    s.u32(r.bytes);
}

inline void load_region(sim::StateSource& s, RegionEntry& r) {
    r.valid = s.flag();
    r.mem_base = s.u64();
    r.mem_stride = s.u32();
    r.mem_elem_bytes = s.u32();
    r.ls_base = s.u32();
    r.bytes = s.u32();
}

inline void save_thread_snapshot(sim::StateSink& s, const ThreadSnapshot& t) {
    for (const std::uint64_t v : t.regs) {
        s.u64(v);
    }
    for (const RegionEntry& r : t.regions) {
        save_region(s, r);
    }
}

inline void load_thread_snapshot(sim::StateSource& s, ThreadSnapshot& t) {
    for (std::uint64_t& v : t.regs) {
        v = s.u64();
    }
    for (RegionEntry& r : t.regions) {
        load_region(s, r);
    }
}

/// Configuration of one LSE / frame memory (per PE).
struct LseConfig {
    std::uint32_t frames = 16;          ///< frame slots per PE
    std::uint32_t frame_words = 32;     ///< 64-bit words per frame (256 B)
    std::uint32_t dispatch_latency = 4; ///< SPU<->LSE next-thread handshake
    std::uint32_t frame_area_base = 0;  ///< LS byte address of frame 0
    std::uint32_t staging_base = 16 * 256;     ///< LS byte address of staging area
    std::uint32_t staging_bytes_per_frame = 8 * 1024;

    /// Virtual frame pointers — the DTA-C feature the paper cites as the
    /// fix for bitcnt's scheduler pressure but explicitly leaves out of
    /// CellDTA ("a possible solution is to use virtual frame pointers, but
    /// we did not include this feature in the current version").  When
    /// enabled, FALLOC always succeeds: if no physical frame is free the
    /// LSE hands out a *virtual* frame whose stores are buffered in an
    /// LS-backed overflow area; when a physical frame frees, the oldest
    /// complete virtual frame is materialised into it (its buffered words
    /// are written to real frame memory) and becomes dispatchable.
    bool virtual_frames = false;
    /// Runaway bound on outstanding virtual frames per LSE.
    std::uint32_t max_virtual_frames = 65536;

    [[nodiscard]] std::uint32_t frame_bytes() const { return frame_words * 8; }

    /// Builds a packed layout: \p frames frame slots at LS address 0
    /// followed immediately by \p staging bytes of DMA staging per frame.
    [[nodiscard]] static LseConfig with(std::uint32_t frames,
                                        std::uint32_t staging) {
        LseConfig cfg;
        cfg.frames = frames;
        cfg.staging_bytes_per_frame = staging;
        cfg.frame_area_base = 0;
        cfg.staging_base = frames * cfg.frame_bytes();
        return cfg;
    }
};

/// Completed FALLOC, delivered back to the SPU.
struct FallocDone {
    std::uint8_t rd = 0;            ///< destination register of the FALLOC
    sim::FrameHandle handle;
};

/// A thread handed to the SPU for execution.
struct Dispatch {
    std::uint32_t slot = 0;
    sim::ThreadCodeId code = 0;
    std::uint32_t resume_ip = 0;   ///< 0 for a fresh thread, post-PF otherwise
    bool has_snapshot = false;     ///< true when resuming after Wait-for-DMA
    ThreadSnapshot snapshot;
};

/// Statistics of one LSE.
struct LseStats {
    std::uint64_t frames_allocated = 0;
    std::uint64_t frames_freed = 0;
    std::uint64_t local_stores = 0;
    std::uint64_t remote_stores_in = 0;
    std::uint64_t remote_stores_out = 0;  ///< kRemoteStore messages emitted
    std::uint64_t dispatches = 0;
    std::uint64_t dma_suspends = 0;     ///< threads that entered Wait-for-DMA
    std::uint64_t dma_immediate = 0;    ///< DMAWAITs that found DMA already done
    std::uint32_t peak_live_frames = 0;
    std::uint64_t virtual_allocations = 0;  ///< FALLOCs served virtually
    std::uint32_t peak_virtual_frames = 0;
};

/// The Local Scheduler Element of one PE.
class Lse {
public:
    Lse(const LseConfig& cfg, const Topology& topo, sim::GlobalPeId self,
        mem::LocalStore& ls);

    // ---- SPU-facing interface (same-PE, no NoC) -------------------------
    /// Issues a FALLOC request into the scheduler; rd tags the reply and
    /// \p parent (the issuing thread's uid) rides along so the grant can
    /// record its parent link.
    void falloc(std::uint8_t rd, sim::ThreadCodeId code, std::uint32_t sc,
                std::uint64_t parent = 0);
    /// Pops a completed FALLOC, if any.
    [[nodiscard]] bool pop_falloc_response(FallocDone& out);

    /// STORE to a frame owned by *this* PE (bypasses the NoC).  \p producer
    /// is the storing thread's uid (0 from tests / bootstrap).
    void store_local(sim::FrameHandle h, std::uint32_t word_off,
                     std::uint64_t value, std::uint64_t producer = 0);
    /// STORE to a remote frame: emits a kRemoteStore scheduler message.
    void store_remote(sim::FrameHandle h, std::uint32_t word_off,
                      std::uint64_t value, std::uint64_t producer = 0);

    /// FFREE executed by the running thread in \p slot.  The slot becomes
    /// immediately reusable (the frame data is dead once PL has run); the
    /// SPU remembers that its thread freed the frame and passes that fact
    /// to \ref stop_thread, because the slot may be reallocated to a new
    /// thread before the old one reaches STOP.
    void ffree(std::uint32_t slot);
    /// STOP executed by the running thread; frees the frame unless the
    /// thread already did so itself via FFREE.
    void stop_thread(std::uint32_t slot, bool already_freed);

    /// A DMAGET was issued on behalf of \p slot.
    void mark_dma_issued(std::uint32_t slot);
    /// MFC completion for a command owned by \p slot.
    void dma_completed(std::uint32_t slot);
    /// Outstanding DMA commands of \p slot (DMAWAIT checks this).
    [[nodiscard]] std::uint32_t dma_pending(std::uint32_t slot) const;
    /// DMAWAIT with transfers still outstanding: park the thread
    /// (Wait-for-DMA) and remember where and with what context to resume.
    void suspend_for_dma(std::uint32_t slot, std::uint32_t resume_ip,
                         const ThreadSnapshot& snap);

    /// SPU asks for the next ready thread; reply after dispatch_latency.
    void request_dispatch(sim::Cycle now);
    [[nodiscard]] bool dispatch_requested() const { return dispatch_pending_; }
    /// Cycle a pending dispatch handshake completes (PE horizon input).
    [[nodiscard]] sim::Cycle dispatch_ready_at() const {
        return dispatch_ready_at_;
    }
    /// Pops the dispatched thread once the handshake latency elapsed and a
    /// ready thread exists.
    [[nodiscard]] bool pop_dispatch(sim::Cycle now, Dispatch& out);

    /// The SPU finished the PF block without suspending (DMA already done)
    /// or resumed; keeps state bookkeeping in sync.
    void thread_running(std::uint32_t slot);

    // ---- NoC-facing interface (PE glue feeds decoded packets) ------------
    void on_falloc_fwd(sim::ThreadCodeId code, std::uint32_t sc, FallocCtx ctx,
                       std::uint64_t parent = 0);
    void on_falloc_resp(sim::FrameHandle h, FallocCtx ctx);
    void on_remote_store(sim::FrameHandle h, std::uint32_t word_off,
                         std::uint64_t value, std::uint64_t producer = 0);

    /// Drains one outgoing scheduler message, if any.
    [[nodiscard]] bool pop_outgoing(SchedMsg& out);
    /// True when no outgoing scheduler message waits for transport.
    [[nodiscard]] bool outgoing_empty() const { return outbox_.empty(); }
    /// True when a completed FALLOC waits for the SPU to apply it (PE
    /// horizon input: the next tick delivers it to a register).
    [[nodiscard]] bool falloc_response_pending() const {
        return !falloc_done_.empty();
    }

    /// Processes local-store completions (SC decrements) once per cycle.
    void tick(sim::Cycle now);

    /// Fast-forward bookkeeping: off-tick handlers (inbox decode, DMA
    /// completions) stamp events with the *previous* cycle's now_, exactly
    /// as after a real tick at to - 1. Skipped cycles mutate nothing else.
    void skip(sim::Cycle from, sim::Cycle to) {
        (void)from;
        now_ = to - 1;
    }

    // ---- host / machine bootstrap ------------------------------------------
    /// Directly allocates a frame (no messages); used to seed the entry
    /// thread.  Returns the slot.
    std::uint32_t bootstrap_frame(sim::ThreadCodeId code, std::uint32_t sc);
    /// Functionally writes an input word into a bootstrapped frame.
    void write_frame_word(std::uint32_t slot, std::uint32_t word_off,
                          std::uint64_t value);
    /// Marks a bootstrapped frame ready (SC forced to zero).
    void make_ready(std::uint32_t slot);

    // ---- queries ---------------------------------------------------------------
    [[nodiscard]] std::uint32_t ready_count() const {
        return static_cast<std::uint32_t>(ready_.size());
    }
    [[nodiscard]] std::uint32_t waitdma_count() const { return waitdma_count_; }
    [[nodiscard]] std::uint32_t live_frames() const { return live_frames_; }
    /// Outstanding virtual frames (always 0 without virtual_frames).
    [[nodiscard]] std::uint32_t virtual_frames_live() const {
        return static_cast<std::uint32_t>(virtual_.size());
    }
    [[nodiscard]] sim::ThreadCodeId code_of(std::uint32_t slot) const;
    /// Run-unique thread id of the frame in \p slot (physical or virtual).
    /// Slots are reused; uids are not — lifecycle events key on them.
    [[nodiscard]] std::uint64_t uid_of(std::uint32_t slot) const;
    /// LS byte address of word 0 of \p slot's frame.
    [[nodiscard]] std::uint32_t frame_ls_base(std::uint32_t slot) const;
    /// LS byte address of \p slot's DMA staging area.
    [[nodiscard]] std::uint32_t staging_ls_base(std::uint32_t slot) const;
    [[nodiscard]] const LseConfig& config() const { return cfg_; }
    [[nodiscard]] const LseStats& stats() const { return stats_; }

    /// Resolves this LSE's latency histograms (no-op when \p reg is
    /// disabled): sched.falloc_wait (FALLOC issue → handle back),
    /// sched.dispatch_wait (frame ready → bound to the SPU), and
    /// sched.dma_suspend (Wait-for-DMA park duration).
    void attach_metrics(sim::MetricsRegistry& reg);
    /// Points lifecycle-event emission at \p log (nullptr keeps it off; the
    /// hot paths then cost one cached-pointer null test each).
    void attach_events(sim::EventLog* log) { events_ = log; }
    /// True when nothing is live, queued, in flight, or pending.
    [[nodiscard]] bool quiescent() const;

    /// Invariant audit (sim/audit.hpp): frame-slot lifecycle FSM, SC /
    /// store-in-flight conservation, free- and ready-queue consistency,
    /// virtual-frame bookkeeping, and the allocation ledger.  Read-only;
    /// reports violations through \p ctx.
    void audit(const sim::AuditCtx& ctx) const;

    // --- checkpoint/restore (driven by the owning PE's save_state) ----------
    /// Serializes every frame (including suspended-thread snapshots),
    /// queues, the virtual-frame table (sorted by id for canonical bytes),
    /// uid sequencing, and statistics.
    void save_state(sim::StateSink& s) const;
    void load_state(sim::StateSource& s);

private:
    struct Frame {
        FrameState state = FrameState::kFree;
        sim::ThreadCodeId code = 0;
        std::uint64_t uid = 0;  ///< run-unique thread id (survives the slot)
        std::uint32_t sc = 0;
        std::uint32_t dma_pending = 0;
        std::uint32_t resume_ip = 0;
        bool has_snapshot = false;
        ThreadSnapshot snapshot;
        std::uint32_t stores_in_flight = 0;  ///< LS writes not yet completed
        sim::Cycle ready_at = 0;    ///< when the frame last became kReady
        sim::Cycle suspend_at = 0;  ///< when the thread entered kWaitDma
    };

    /// A not-yet-physical frame: its stores accumulate in a buffer until a
    /// physical slot frees, then are replayed into real frame memory.
    struct BufferedStore {
        std::uint32_t word_off = 0;
        std::uint64_t value = 0;
        std::uint64_t producer = 0;  ///< storing thread's uid
    };

    struct VirtualFrame {
        sim::ThreadCodeId code = 0;
        std::uint64_t uid = 0;  ///< carried into the physical frame
        std::uint32_t sc = 0;   ///< stores still expected
        std::vector<BufferedStore> stores;
        bool complete = false;  ///< SC reached zero; queued to materialise
    };

    [[nodiscard]] Frame& frame_at(std::uint32_t slot);
    [[nodiscard]] const Frame& frame_at(std::uint32_t slot) const;
    std::uint32_t allocate_slot(sim::ThreadCodeId code, std::uint32_t sc,
                                std::uint64_t parent = 0,
                                std::uint8_t rd = 0);
    void release_slot(std::uint32_t slot, bool notify_dse);
    /// \p replay marks virtual-frame materialization writes, whose arrival
    /// events were already emitted at buffering time.
    void enqueue_frame_write(std::uint32_t slot, std::uint32_t word_off,
                             std::uint64_t value, std::uint64_t producer = 0,
                             bool replay = false);
    void sc_arrived(std::uint32_t slot, std::uint32_t word_off,
                    std::uint64_t producer, bool replay);
    [[nodiscard]] bool is_virtual(std::uint32_t slot) const {
        return slot >= cfg_.frames;
    }
    void store_virtual(std::uint32_t vid, std::uint32_t word_off,
                       std::uint64_t value, std::uint64_t producer);
    /// Run-unique thread id: PE index in the high half, per-LSE sequence in
    /// the low.  Stays below 2^48 (so it fits the pack_carried_uid wire
    /// encoding) as long as the machine has < 2^16 PEs and an LSE allocates
    /// < 2^32 threads in one run.
    [[nodiscard]] std::uint64_t next_uid() {
        return (static_cast<std::uint64_t>(self_) << 32) | ++uid_seq_;
    }
    void emit_ready(std::uint64_t uid, sim::ThreadCodeId code, bool resume);
    /// Binds the oldest complete virtual frame to a free physical slot.
    void materialize_next();

    LseConfig cfg_;
    Topology topo_;
    sim::GlobalPeId self_;
    mem::LocalStore& ls_;
    std::vector<Frame> frames_;
    std::deque<std::uint32_t> free_slots_;
    std::deque<std::uint32_t> ready_;
    std::deque<SchedMsg> outbox_;
    std::deque<FallocDone> falloc_done_;
    bool dispatch_pending_ = false;
    sim::Cycle dispatch_ready_at_ = 0;
    std::uint32_t live_frames_ = 0;
    std::uint32_t waitdma_count_ = 0;
    std::uint64_t ls_write_seq_ = 1;
    std::uint64_t uid_seq_ = 0;  ///< per-LSE thread-uid sequence (always on)
    // virtual-frame machinery (empty unless cfg_.virtual_frames)
    std::unordered_map<std::uint32_t, VirtualFrame> virtual_;
    std::deque<std::uint32_t> materialize_queue_;  ///< complete virtual ids
    std::uint32_t next_virtual_id_ = 0;            ///< offset past cfg_.frames
    LseStats stats_;

    // observability (all optional; null when metrics / events are off)
    sim::Cycle now_ = 0;  ///< last tick time, for off-tick event stamps
    sim::EventLog* events_ = nullptr;
    /// Producer uid of each in-flight frame write, enqueue order (the LS
    /// completes a client's requests FIFO).  Touched only when events are
    /// on — keeps the uid out of the LsRequest/LsResponse hot structs.
    std::deque<std::uint64_t> write_producers_;
    sim::Histogram* falloc_wait_ = nullptr;
    sim::Histogram* dispatch_wait_ = nullptr;
    sim::Histogram* dma_suspend_ = nullptr;
    /// FALLOC issue cycles keyed by destination register, popped FIFO when
    /// the handle comes back (responses for one register stay in order).
    std::map<std::uint8_t, std::deque<sim::Cycle>> falloc_issue_;
};

}  // namespace dta::sched
