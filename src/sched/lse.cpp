#include "sched/lse.hpp"

#include <algorithm>
#include <utility>

#include "sim/audit.hpp"
#include "sim/check.hpp"

namespace dta::sched {

Lse::Lse(const LseConfig& cfg, const Topology& topo, sim::GlobalPeId self,
         mem::LocalStore& ls)
    : cfg_(cfg), topo_(topo), self_(self), ls_(ls) {
    DTA_SIM_REQUIRE(cfg.frames > 0, "LSE needs at least one frame");
    DTA_SIM_REQUIRE(cfg.frame_words > 0, "frames must hold at least one word");
    // Remote stores carry the word offset in 16 wire bits (the upper bits
    // of the payload word carry the producer uid — see pack_carried_uid).
    DTA_SIM_REQUIRE(cfg.frame_words <= 0x10000,
                    "frames larger than 65536 words are not representable "
                    "in the remote-store wire format");
    const std::uint64_t frame_area_end =
        static_cast<std::uint64_t>(cfg.frame_area_base) +
        static_cast<std::uint64_t>(cfg.frames) * cfg.frame_bytes();
    DTA_SIM_REQUIRE(frame_area_end <= ls.config().size_bytes,
                    "frame area exceeds the local store");
    const std::uint64_t staging_end =
        static_cast<std::uint64_t>(cfg.staging_base) +
        static_cast<std::uint64_t>(cfg.frames) * cfg.staging_bytes_per_frame;
    DTA_SIM_REQUIRE(staging_end <= ls.config().size_bytes,
                    "staging area exceeds the local store");
    DTA_SIM_REQUIRE(cfg.staging_base >= frame_area_end,
                    "staging area overlaps the frame area");
    frames_.resize(cfg.frames);
    for (std::uint32_t i = 0; i < cfg.frames; ++i) {
        free_slots_.push_back(i);
    }
}

Lse::Frame& Lse::frame_at(std::uint32_t slot) {
    DTA_CHECK_MSG(slot < frames_.size(), "frame slot out of range");
    return frames_[slot];
}

const Lse::Frame& Lse::frame_at(std::uint32_t slot) const {
    DTA_CHECK_MSG(slot < frames_.size(), "frame slot out of range");
    return frames_[slot];
}

std::uint32_t Lse::frame_ls_base(std::uint32_t slot) const {
    DTA_CHECK(slot < frames_.size());
    return cfg_.frame_area_base + slot * cfg_.frame_bytes();
}

std::uint32_t Lse::staging_ls_base(std::uint32_t slot) const {
    DTA_CHECK(slot < frames_.size());
    return cfg_.staging_base + slot * cfg_.staging_bytes_per_frame;
}

sim::ThreadCodeId Lse::code_of(std::uint32_t slot) const {
    return frame_at(slot).code;
}

std::uint64_t Lse::uid_of(std::uint32_t slot) const {
    if (is_virtual(slot)) {
        const auto it = virtual_.find(slot);
        return it != virtual_.end() ? it->second.uid : 0;
    }
    return frame_at(slot).uid;
}

void Lse::emit_ready(std::uint64_t uid, sim::ThreadCodeId code, bool resume) {
    if (events_ != nullptr) {
        sim::Event e;
        e.cycle = now_;
        e.kind = sim::EventKind::kReady;
        e.ordinal = self_;
        e.thread = uid;
        e.arg = code;
        e.aux = resume ? 1 : 0;
        events_->push(e);
    }
}

void Lse::attach_metrics(sim::MetricsRegistry& reg) {
    falloc_wait_ = reg.histogram("sched.falloc_wait");
    dispatch_wait_ = reg.histogram("sched.dispatch_wait");
    dma_suspend_ = reg.histogram("sched.dma_suspend");
}

// ---- allocation -------------------------------------------------------------

std::uint32_t Lse::allocate_slot(sim::ThreadCodeId code, std::uint32_t sc,
                                 std::uint64_t parent, std::uint8_t rd) {
    const std::uint64_t uid = next_uid();
    if (free_slots_.empty()) {
        // Virtual frame pointers: never refuse a FALLOC.  The frame exists
        // only as a store buffer until a physical slot frees.
        DTA_CHECK_MSG(cfg_.virtual_frames,
                      "DSE granted a FALLOC to an LSE with no free frames");
        DTA_SIM_REQUIRE(virtual_.size() < cfg_.max_virtual_frames,
                        "virtual-frame population exceeded max_virtual_frames");
        const std::uint32_t vid = cfg_.frames + next_virtual_id_++;
        VirtualFrame vf;
        vf.code = code;
        vf.uid = uid;
        vf.sc = sc;
        if (sc == 0) {
            vf.complete = true;
            materialize_queue_.push_back(vid);
        }
        virtual_.emplace(vid, std::move(vf));
        ++stats_.virtual_allocations;
        stats_.peak_virtual_frames =
            std::max(stats_.peak_virtual_frames,
                     static_cast<std::uint32_t>(virtual_.size()));
        if (events_ != nullptr) {
            sim::Event e;
            e.cycle = now_;
            e.kind = sim::EventKind::kFrameGrant;
            e.ordinal = self_;
            e.thread = uid;
            e.other = parent;
            e.arg = sim::pack_grant(code, /*is_virtual=*/true);
            e.aux = rd;
            events_->push(e);
        }
        return vid;
    }
    const std::uint32_t slot = free_slots_.front();
    free_slots_.pop_front();
    Frame& f = frames_[slot];
    f = Frame{};
    f.code = code;
    f.uid = uid;
    f.sc = sc;
    f.state = sc == 0 ? FrameState::kReady : FrameState::kWaitStores;
    if (events_ != nullptr) {
        sim::Event e;
        e.cycle = now_;
        e.kind = sim::EventKind::kFrameGrant;
        e.ordinal = self_;
        e.thread = uid;
        e.other = parent;
        e.arg = sim::pack_grant(code, /*is_virtual=*/false);
        e.aux = rd;
        events_->push(e);
    }
    if (f.state == FrameState::kReady) {
        f.ready_at = now_;
        ready_.push_back(slot);
        emit_ready(uid, code, /*resume=*/false);
    }
    ++live_frames_;
    stats_.peak_live_frames = std::max(stats_.peak_live_frames, live_frames_);
    ++stats_.frames_allocated;
    return slot;
}

void Lse::release_slot(std::uint32_t slot, bool notify_dse) {
    Frame& f = frame_at(slot);
    DTA_CHECK_MSG(f.state != FrameState::kFree, "double frame free");
    if (events_ != nullptr) {
        sim::Event e;
        e.cycle = now_;
        e.kind = sim::EventKind::kFree;
        e.ordinal = self_;
        e.thread = f.uid;
        events_->push(e);
    }
    f.state = FrameState::kFree;
    free_slots_.push_back(slot);
    DTA_CHECK(live_frames_ > 0);
    --live_frames_;
    ++stats_.frames_freed;
    if (notify_dse) {
        SchedMsg msg;
        msg.kind = MsgKind::kFrameFree;
        msg.dst_node = topo_.node_of(self_);
        msg.dst_is_dse = true;
        msg.a = self_;
        outbox_.push_back(msg);
    }
    // A freed slot can immediately host the oldest complete virtual frame.
    materialize_next();
}

void Lse::store_virtual(std::uint32_t vid, std::uint32_t word_off,
                        std::uint64_t value, std::uint64_t producer) {
    const auto it = virtual_.find(vid);
    DTA_SIM_REQUIRE(it != virtual_.end(),
                    "STORE to an unknown or already-complete virtual frame");
    VirtualFrame& vf = it->second;
    DTA_SIM_REQUIRE(!vf.complete,
                    "more STOREs than the virtual frame's SC expects");
    DTA_SIM_REQUIRE(word_off < cfg_.frame_words,
                    "virtual frame STORE offset out of range");
    vf.stores.push_back(BufferedStore{word_off, value, producer});
    DTA_CHECK(vf.sc > 0);
    --vf.sc;
    // The arrival event fires at buffering time — that is when the SC
    // decrements — so the materialization replay stays event-silent.
    if (events_ != nullptr) {
        sim::Event e;
        e.cycle = now_;
        e.kind = sim::EventKind::kFrameStore;
        e.ordinal = self_;
        e.thread = vf.uid;
        e.other = producer;
        e.arg = sim::pack_store_dest(self_, vid, word_off);
        e.aux = static_cast<std::uint8_t>(std::min<std::uint32_t>(vf.sc, 255));
        events_->push(e);
    }
    if (vf.sc == 0) {
        vf.complete = true;
        materialize_queue_.push_back(vid);
        materialize_next();
    }
}

void Lse::materialize_next() {
    while (!materialize_queue_.empty() && !free_slots_.empty()) {
        const std::uint32_t vid = materialize_queue_.front();
        materialize_queue_.pop_front();
        const auto it = virtual_.find(vid);
        DTA_CHECK(it != virtual_.end());
        VirtualFrame vf = std::move(it->second);
        virtual_.erase(it);

        const std::uint32_t slot = free_slots_.front();
        free_slots_.pop_front();
        Frame& f = frames_[slot];
        f = Frame{};
        f.code = vf.code;
        f.uid = vf.uid;  // same thread, now physical
        ++live_frames_;
        stats_.peak_live_frames =
            std::max(stats_.peak_live_frames, live_frames_);
        ++stats_.frames_allocated;
        if (vf.stores.empty()) {
            f.state = FrameState::kReady;
            f.ready_at = now_;
            ready_.push_back(slot);
            emit_ready(f.uid, f.code, /*resume=*/false);
            continue;
        }
        // Replay the buffered stores into real frame memory; the thread
        // becomes ready when the last write completes (the normal SC path).
        f.sc = static_cast<std::uint32_t>(vf.stores.size());
        f.state = FrameState::kWaitStores;
        for (const BufferedStore& s : vf.stores) {
            enqueue_frame_write(slot, s.word_off, s.value, s.producer,
                                /*replay=*/true);
        }
    }
}

// ---- SPU-facing ----------------------------------------------------------------

void Lse::falloc(std::uint8_t rd, sim::ThreadCodeId code, std::uint32_t sc,
                 std::uint64_t parent) {
    if (falloc_wait_ != nullptr) {
        falloc_issue_[rd].push_back(now_);
    }
    SchedMsg msg;
    msg.kind = MsgKind::kFallocReq;
    msg.dst_node = topo_.node_of(self_);
    msg.dst_is_dse = true;
    msg.a = pack_carried_uid(code, parent);
    msg.b = sc;
    msg.c = FallocCtx{topo_.node_of(self_), topo_.local_pe_of(self_), rd, 0}
                .pack();
    outbox_.push_back(msg);
}

bool Lse::pop_falloc_response(FallocDone& out) {
    if (falloc_done_.empty()) {
        return false;
    }
    out = falloc_done_.front();
    falloc_done_.pop_front();
    return true;
}

void Lse::enqueue_frame_write(std::uint32_t slot, std::uint32_t word_off,
                              std::uint64_t value, std::uint64_t producer,
                              bool replay) {
    Frame& f = frame_at(slot);
    DTA_SIM_REQUIRE(f.state == FrameState::kWaitStores,
                    "STORE to a frame that is not waiting for stores (slot " +
                        std::to_string(slot) + ")");
    DTA_SIM_REQUIRE(word_off < cfg_.frame_words,
                    "frame STORE offset " + std::to_string(word_off) +
                        " out of range");
    DTA_SIM_REQUIRE(f.sc > f.stores_in_flight,
                    "more STOREs than the synchronisation counter expects");
    mem::LsRequest rq;
    rq.id = ls_write_seq_++;
    rq.is_write = true;
    rq.addr = frame_ls_base(slot) + word_off * 8;
    rq.size = 8;
    rq.data.resize(8);
    std::uint64_t v = value;
    for (int i = 0; i < 8; ++i) {
        rq.data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
    }
    // meta carries (slot, word offset, replay flag) to the completion; only
    // sc_arrived reads it back.  The producer uid is tracing-only state and
    // must not grow the request struct, so it waits in a side FIFO: the LS
    // serves each client's queue in order with a fixed latency, hence
    // completions come back in enqueue order.
    rq.meta = slot | (static_cast<std::uint64_t>(word_off) << 32) |
              (replay ? (1ull << 63) : 0ull);
    if (events_ != nullptr) {
        write_producers_.push_back(producer);
    }
    ++f.stores_in_flight;
    ls_.enqueue(mem::LsClient::kLse, std::move(rq));
}

void Lse::store_local(sim::FrameHandle h, std::uint32_t word_off,
                      std::uint64_t value, std::uint64_t producer) {
    DTA_CHECK_MSG(h.global_pe == self_, "store_local on a remote handle");
    if (is_virtual(h.slot)) {
        store_virtual(h.slot, word_off, value, producer);
    } else {
        enqueue_frame_write(h.slot, word_off, value, producer);
    }
    ++stats_.local_stores;
}

void Lse::store_remote(sim::FrameHandle h, std::uint32_t word_off,
                       std::uint64_t value, std::uint64_t producer) {
    DTA_CHECK_MSG(h.global_pe != self_, "store_remote on a local handle");
    SchedMsg msg;
    msg.kind = MsgKind::kRemoteStore;
    msg.dst_node = topo_.node_of(h.global_pe);
    msg.dst_is_dse = false;
    msg.dst_pe = topo_.local_pe_of(h.global_pe);
    msg.a = h.pack();
    msg.b = value;
    msg.c = pack_carried_uid(word_off, producer);
    outbox_.push_back(msg);
    ++stats_.remote_stores_out;
}

void Lse::ffree(std::uint32_t slot) {
    Frame& f = frame_at(slot);
    DTA_SIM_REQUIRE(f.state == FrameState::kRunning,
                    "FFREE outside a running thread");
    release_slot(slot, /*notify_dse=*/true);
}

void Lse::stop_thread(std::uint32_t slot, bool already_freed) {
    if (already_freed) {
        // The slot was released at FFREE time and may already host a new
        // thread; nothing to do here.
        return;
    }
    Frame& f = frame_at(slot);
    DTA_SIM_REQUIRE(f.state == FrameState::kRunning,
                    "STOP from a thread that is not running");
    release_slot(slot, /*notify_dse=*/true);
}

void Lse::mark_dma_issued(std::uint32_t slot) {
    Frame& f = frame_at(slot);
    DTA_SIM_REQUIRE(f.state == FrameState::kRunning,
                    "DMAGET outside a running thread");
    ++f.dma_pending;
}

void Lse::dma_completed(std::uint32_t slot) {
    Frame& f = frame_at(slot);
    DTA_CHECK_MSG(f.dma_pending > 0, "DMA completion with none outstanding");
    --f.dma_pending;
    if (f.dma_pending == 0 && f.state == FrameState::kWaitDma) {
        f.state = FrameState::kReady;
        DTA_CHECK(waitdma_count_ > 0);
        --waitdma_count_;
        f.ready_at = now_;
        if (dma_suspend_ != nullptr) {
            dma_suspend_->record(now_ - f.suspend_at);
        }
        ready_.push_back(slot);
        emit_ready(f.uid, f.code, /*resume=*/true);
    }
}

std::uint32_t Lse::dma_pending(std::uint32_t slot) const {
    return frame_at(slot).dma_pending;
}

void Lse::suspend_for_dma(std::uint32_t slot, std::uint32_t resume_ip,
                          const ThreadSnapshot& snap) {
    Frame& f = frame_at(slot);
    DTA_SIM_REQUIRE(f.state == FrameState::kRunning,
                    "DMAWAIT suspend outside a running thread");
    DTA_CHECK_MSG(f.dma_pending > 0, "suspend_for_dma with nothing pending");
    f.state = FrameState::kWaitDma;
    f.resume_ip = resume_ip;
    f.snapshot = snap;
    f.has_snapshot = true;
    f.suspend_at = now_;
    ++waitdma_count_;
    ++stats_.dma_suspends;
}

void Lse::request_dispatch(sim::Cycle now) {
    DTA_CHECK_MSG(!dispatch_pending_, "dispatch requested twice");
    dispatch_pending_ = true;
    dispatch_ready_at_ = now + cfg_.dispatch_latency;
}

bool Lse::pop_dispatch(sim::Cycle now, Dispatch& out) {
    if (!dispatch_pending_ || now < dispatch_ready_at_ || ready_.empty()) {
        return false;
    }
    const std::uint32_t slot = ready_.front();
    ready_.pop_front();
    Frame& f = frame_at(slot);
    DTA_CHECK(f.state == FrameState::kReady);
    if (dispatch_wait_ != nullptr) {
        dispatch_wait_->record(now - f.ready_at);
    }
    f.state = FrameState::kRunning;
    out.slot = slot;
    out.code = f.code;
    out.resume_ip = f.resume_ip;
    out.has_snapshot = f.has_snapshot;
    if (f.has_snapshot) {
        out.snapshot = f.snapshot;
        f.has_snapshot = false;
    }
    dispatch_pending_ = false;
    ++stats_.dispatches;
    return true;
}

void Lse::thread_running(std::uint32_t slot) {
    DTA_CHECK(frame_at(slot).state == FrameState::kRunning);
}

// ---- NoC-facing -------------------------------------------------------------

void Lse::on_falloc_fwd(sim::ThreadCodeId code, std::uint32_t sc,
                        FallocCtx ctx, std::uint64_t parent) {
    const std::uint32_t slot = allocate_slot(code, sc, parent, ctx.rd);
    SchedMsg msg;
    msg.kind = MsgKind::kFallocResp;
    msg.dst_node = ctx.node;
    msg.dst_is_dse = false;
    msg.dst_pe = ctx.pe;
    msg.a = sim::FrameHandle{self_, slot}.pack();
    msg.c = ctx.pack();
    outbox_.push_back(msg);
}

void Lse::on_falloc_resp(sim::FrameHandle h, FallocCtx ctx) {
    DTA_CHECK_MSG(ctx.node == topo_.node_of(self_) &&
                      ctx.pe == topo_.local_pe_of(self_),
                  "FALLOC response routed to the wrong LSE");
    if (falloc_wait_ != nullptr) {
        const auto it = falloc_issue_.find(ctx.rd);
        if (it != falloc_issue_.end() && !it->second.empty()) {
            falloc_wait_->record(now_ - it->second.front());
            it->second.pop_front();
        }
    }
    falloc_done_.push_back(FallocDone{ctx.rd, h});
}

void Lse::on_remote_store(sim::FrameHandle h, std::uint32_t word_off,
                          std::uint64_t value, std::uint64_t producer) {
    DTA_CHECK_MSG(h.global_pe == self_, "remote store routed to wrong LSE");
    if (is_virtual(h.slot)) {
        store_virtual(h.slot, word_off, value, producer);
    } else {
        enqueue_frame_write(h.slot, word_off, value, producer);
    }
    ++stats_.remote_stores_in;
}

bool Lse::pop_outgoing(SchedMsg& out) {
    if (outbox_.empty()) {
        return false;
    }
    out = outbox_.front();
    outbox_.pop_front();
    return true;
}

void Lse::tick(sim::Cycle now) {
    now_ = now;
    // Frame writes that completed in the LS decrement the SC now.
    mem::LsResponse resp;
    while (ls_.pop_response(mem::LsClient::kLse, resp)) {
        std::uint64_t producer = 0;
        if (events_ != nullptr) {
            DTA_CHECK_MSG(!write_producers_.empty(),
                          "frame-write completion without a queued producer");
            producer = write_producers_.front();
            write_producers_.pop_front();
        }
        sc_arrived(static_cast<std::uint32_t>(resp.meta & 0xffffffffu),
                   static_cast<std::uint32_t>((resp.meta >> 32) & 0x7fffffffu),
                   producer, (resp.meta >> 63) != 0);
    }
}

void Lse::sc_arrived(std::uint32_t slot, std::uint32_t word_off,
                     std::uint64_t producer, bool replay) {
    Frame& f = frame_at(slot);
    DTA_CHECK_MSG(f.state == FrameState::kWaitStores,
                  "SC decrement on a frame not waiting for stores");
    DTA_CHECK(f.stores_in_flight > 0);
    --f.stores_in_flight;
    DTA_CHECK_MSG(f.sc > 0, "synchronisation counter underflow");
    --f.sc;
    if (events_ != nullptr && !replay) {
        sim::Event e;
        e.cycle = now_;
        e.kind = sim::EventKind::kFrameStore;
        e.ordinal = self_;
        e.thread = f.uid;
        e.other = producer;
        e.arg = sim::pack_store_dest(self_, slot, word_off);
        e.aux = static_cast<std::uint8_t>(std::min<std::uint32_t>(f.sc, 255));
        events_->push(e);
    }
    if (f.sc == 0) {
        f.state = FrameState::kReady;
        f.ready_at = now_;
        ready_.push_back(slot);
        emit_ready(f.uid, f.code, /*resume=*/false);
    }
}

// ---- bootstrap ---------------------------------------------------------------

std::uint32_t Lse::bootstrap_frame(sim::ThreadCodeId code, std::uint32_t sc) {
    return allocate_slot(code, sc);
}

void Lse::write_frame_word(std::uint32_t slot, std::uint32_t word_off,
                           std::uint64_t value) {
    DTA_SIM_REQUIRE(word_off < cfg_.frame_words,
                    "bootstrap frame write out of range");
    ls_.write_u64(frame_ls_base(slot) + word_off * 8, value);
}

void Lse::make_ready(std::uint32_t slot) {
    Frame& f = frame_at(slot);
    DTA_CHECK_MSG(f.state == FrameState::kWaitStores ||
                      f.state == FrameState::kReady,
                  "make_ready on a frame in the wrong state");
    if (f.state == FrameState::kWaitStores) {
        f.sc = 0;
        f.state = FrameState::kReady;
        f.ready_at = now_;
        ready_.push_back(slot);
        emit_ready(f.uid, f.code, /*resume=*/false);
    }
}

bool Lse::quiescent() const {
    return live_frames_ == 0 && ready_.empty() && outbox_.empty() &&
           falloc_done_.empty() && waitdma_count_ == 0 && virtual_.empty() &&
           materialize_queue_.empty();
}

// ---- invariant audit --------------------------------------------------------

void Lse::audit(const sim::AuditCtx& ctx) const {
    // Frame-slot lifecycle FSM + SC conservation, one pass over the slots.
    std::uint32_t live = 0;
    std::uint32_t ready = 0;
    std::uint32_t waitdma = 0;
    std::uint32_t free_count = 0;
    for (std::uint32_t slot = 0; slot < frames_.size(); ++slot) {
        const Frame& f = frames_[slot];
        if (f.state == FrameState::kFree) {
            ++free_count;
            continue;
        }
        ++live;
        ready += f.state == FrameState::kReady ? 1 : 0;
        waitdma += f.state == FrameState::kWaitDma ? 1 : 0;
        if (f.state == FrameState::kWaitStores) {
            if (f.sc == 0) {
                ctx.fail("frame-fsm",
                         "slot " + std::to_string(slot) +
                             " waits for stores with SC already zero",
                         f.uid);
            }
            if (f.stores_in_flight > f.sc) {
                ctx.fail("sc-conservation",
                         "slot " + std::to_string(slot) + " has " +
                             std::to_string(f.stores_in_flight) +
                             " stores in flight but the SC expects only " +
                             std::to_string(f.sc),
                         f.uid);
            }
        } else {
            if (f.sc != 0) {
                ctx.fail("sc-conservation",
                         "slot " + std::to_string(slot) + " is past "
                             "kWaitStores with a non-zero SC (" +
                             std::to_string(f.sc) + ")",
                         f.uid);
            }
            if (f.stores_in_flight != 0) {
                ctx.fail("sc-conservation",
                         "slot " + std::to_string(slot) + " is past "
                             "kWaitStores with " +
                             std::to_string(f.stores_in_flight) +
                             " stores still in flight",
                         f.uid);
            }
        }
        if (f.state == FrameState::kWaitDma && f.dma_pending == 0) {
            ctx.fail("frame-fsm",
                     "slot " + std::to_string(slot) +
                         " parked in Wait-for-DMA with no DMA outstanding",
                     f.uid);
        }
    }
    if (live != live_frames_) {
        ctx.fail("frame-accounting",
                 "live_frames counter says " + std::to_string(live_frames_) +
                     " but " + std::to_string(live) + " slots are occupied");
    }
    if (waitdma != waitdma_count_) {
        ctx.fail("frame-accounting",
                 "waitdma counter says " + std::to_string(waitdma_count_) +
                     " but " + std::to_string(waitdma) +
                     " slots are in Wait-for-DMA");
    }
    if (stats_.frames_allocated - stats_.frames_freed != live_frames_) {
        ctx.fail("frame-accounting",
                 "allocation ledger (allocated " +
                     std::to_string(stats_.frames_allocated) + " - freed " +
                     std::to_string(stats_.frames_freed) +
                     ") disagrees with live_frames " +
                     std::to_string(live_frames_));
    }
    // Free-slot queue: exactly the kFree slots, each once (a duplicate or a
    // non-free entry is a double-free / double-grant in the making).
    if (free_count != free_slots_.size()) {
        ctx.fail("frame-accounting",
                 "free-slot queue holds " + std::to_string(free_slots_.size()) +
                     " entries but " + std::to_string(free_count) +
                     " slots are kFree");
    }
    std::vector<bool> in_free(frames_.size(), false);
    for (const std::uint32_t slot : free_slots_) {
        if (slot >= frames_.size()) {
            ctx.fail("frame-accounting", "free-slot queue holds out-of-range "
                                         "slot " + std::to_string(slot));
        }
        if (frames_[slot].state != FrameState::kFree) {
            ctx.fail("use-after-free",
                     "slot " + std::to_string(slot) +
                         " sits in the free queue while occupied (double-"
                         "grant hazard)",
                     frames_[slot].uid);
        }
        if (in_free[slot]) {
            ctx.fail("double-free", "slot " + std::to_string(slot) +
                                        " appears twice in the free queue");
        }
        in_free[slot] = true;
    }
    // Ready queue: exactly the kReady slots, each once.
    if (ready != ready_.size()) {
        ctx.fail("frame-fsm",
                 "ready queue holds " + std::to_string(ready_.size()) +
                     " entries but " + std::to_string(ready) +
                     " slots are kReady");
    }
    std::vector<bool> in_ready(frames_.size(), false);
    for (const std::uint32_t slot : ready_) {
        if (slot >= frames_.size()) {
            ctx.fail("frame-fsm", "ready queue holds out-of-range slot " +
                                      std::to_string(slot));
        }
        if (frames_[slot].state != FrameState::kReady) {
            ctx.fail("frame-fsm",
                     "ready queue holds slot " + std::to_string(slot) +
                         " whose frame is not kReady",
                     frames_[slot].uid);
        }
        if (in_ready[slot]) {
            ctx.fail("frame-fsm", "slot " + std::to_string(slot) +
                                      " appears twice in the ready queue");
        }
        in_ready[slot] = true;
    }
    // Virtual frames: ids past the physical range, completion flag in step
    // with the SC, buffered stores within the frame, and the materialize
    // queue holding exactly the complete ones (in some order) — the ordering
    // itself is FIFO by completion, which membership + FIFO pops preserve.
    if (!cfg_.virtual_frames && !virtual_.empty()) {
        ctx.fail("virtual-frames",
                 "virtual frames exist with virtual_frames disabled");
    }
    std::size_t complete = 0;
    for (const auto& [vid, vf] : virtual_) {
        if (!is_virtual(vid)) {
            ctx.fail("virtual-frames",
                     "virtual id " + std::to_string(vid) +
                         " collides with the physical slot range",
                     vf.uid);
        }
        if (vf.complete != (vf.sc == 0)) {
            ctx.fail("virtual-frames",
                     "virtual frame " + std::to_string(vid) +
                         " complete flag out of step with its SC (" +
                         std::to_string(vf.sc) + ")",
                     vf.uid);
        }
        if (vf.stores.size() > cfg_.frame_words) {
            ctx.fail("virtual-frames",
                     "virtual frame " + std::to_string(vid) + " buffered " +
                         std::to_string(vf.stores.size()) +
                         " stores into a " + std::to_string(cfg_.frame_words) +
                         "-word frame",
                     vf.uid);
        }
        for (const BufferedStore& s : vf.stores) {
            if (s.word_off >= cfg_.frame_words) {
                ctx.fail("virtual-frames",
                         "virtual frame " + std::to_string(vid) +
                             " buffered a store past the frame (word " +
                             std::to_string(s.word_off) + ")",
                         vf.uid);
            }
        }
        complete += vf.complete ? 1 : 0;
    }
    if (complete != materialize_queue_.size()) {
        ctx.fail("virtual-frames",
                 "materialize queue holds " +
                     std::to_string(materialize_queue_.size()) +
                     " entries but " + std::to_string(complete) +
                     " virtual frames are complete");
    }
    for (const std::uint32_t vid : materialize_queue_) {
        const auto it = virtual_.find(vid);
        if (it == virtual_.end()) {
            ctx.fail("virtual-frames",
                     "materialize queue references unknown virtual frame " +
                         std::to_string(vid));
        }
        if (!it->second.complete) {
            ctx.fail("virtual-frames",
                     "materialize queue holds incomplete virtual frame " +
                         std::to_string(vid),
                     it->second.uid);
        }
    }
    // A complete virtual frame may never coexist with a free physical slot:
    // release_slot / store_virtual materialise eagerly.
    if (!materialize_queue_.empty() && !free_slots_.empty()) {
        ctx.fail("virtual-frames",
                 "complete virtual frames queued while physical slots are "
                 "free (materialization stalled)");
    }
    // Events-only side FIFO mirrors the in-flight frame writes one-to-one.
    if (events_ != nullptr) {
        std::uint64_t in_flight = 0;
        for (const Frame& f : frames_) {
            in_flight += f.stores_in_flight;
        }
        if (write_producers_.size() != in_flight) {
            ctx.fail("frame-accounting",
                     "producer side-FIFO holds " +
                         std::to_string(write_producers_.size()) +
                         " entries but " + std::to_string(in_flight) +
                         " frame writes are in flight");
        }
    }
    // LS layout: the frame and staging areas must still fit the local store
    // (they are constructor-checked; re-checked here against corruption).
    const std::uint64_t frame_end =
        static_cast<std::uint64_t>(cfg_.frame_area_base) +
        static_cast<std::uint64_t>(cfg_.frames) * cfg_.frame_bytes();
    const std::uint64_t staging_end =
        static_cast<std::uint64_t>(cfg_.staging_base) +
        static_cast<std::uint64_t>(cfg_.frames) * cfg_.staging_bytes_per_frame;
    if (frame_end > ls_.config().size_bytes ||
        staging_end > ls_.config().size_bytes) {
        ctx.fail("ls-range", "frame or staging area exceeds the local store");
    }
}

void Lse::save_state(sim::StateSink& s) const {
    s.u64(frames_.size());
    for (const Frame& f : frames_) {
        s.u8(static_cast<std::uint8_t>(f.state));
        s.u32(f.code);
        s.u64(f.uid);
        s.u32(f.sc);
        s.u32(f.dma_pending);
        s.u32(f.resume_ip);
        s.flag(f.has_snapshot);
        save_thread_snapshot(s, f.snapshot);
        s.u32(f.stores_in_flight);
        s.u64(f.ready_at);
        s.u64(f.suspend_at);
    }
    sim::save_seq(s, free_slots_,
                  [](sim::StateSink& k, std::uint32_t v) { k.u32(v); });
    sim::save_seq(s, ready_,
                  [](sim::StateSink& k, std::uint32_t v) { k.u32(v); });
    sim::save_seq(s, outbox_, save_sched_msg);
    sim::save_seq(s, falloc_done_, [](sim::StateSink& k, const FallocDone& d) {
        k.u8(d.rd);
        k.u64(d.handle.pack());
    });
    s.flag(dispatch_pending_);
    s.u64(dispatch_ready_at_);
    s.u32(live_frames_);
    s.u32(waitdma_count_);
    s.u64(ls_write_seq_);
    s.u64(uid_seq_);
    // Virtual-frame table in ascending-id order for canonical bytes (the
    // unordered_map's iteration order is not deterministic across runs).
    std::vector<std::uint32_t> vids;
    vids.reserve(virtual_.size());
    for (const auto& [vid, vf] : virtual_) {
        vids.push_back(vid);
    }
    std::sort(vids.begin(), vids.end());
    s.u64(vids.size());
    for (const std::uint32_t vid : vids) {
        const VirtualFrame& vf = virtual_.at(vid);
        s.u32(vid);
        s.u32(vf.code);
        s.u64(vf.uid);
        s.u32(vf.sc);
        sim::save_seq(s, vf.stores,
                      [](sim::StateSink& k, const BufferedStore& b) {
                          k.u32(b.word_off);
                          k.u64(b.value);
                          k.u64(b.producer);
                      });
        s.flag(vf.complete);
    }
    sim::save_seq(s, materialize_queue_,
                  [](sim::StateSink& k, std::uint32_t v) { k.u32(v); });
    s.u32(next_virtual_id_);
    s.u64(stats_.frames_allocated);
    s.u64(stats_.frames_freed);
    s.u64(stats_.local_stores);
    s.u64(stats_.remote_stores_in);
    s.u64(stats_.remote_stores_out);
    s.u64(stats_.dispatches);
    s.u64(stats_.dma_suspends);
    s.u64(stats_.dma_immediate);
    s.u32(stats_.peak_live_frames);
    s.u64(stats_.virtual_allocations);
    s.u32(stats_.peak_virtual_frames);
    s.u64(now_);
    sim::save_seq(s, write_producers_,
                  [](sim::StateSink& k, std::uint64_t v) { k.u64(v); });
    s.u64(falloc_issue_.size());
    for (const auto& [rd, issues] : falloc_issue_) {
        s.u8(rd);
        sim::save_seq(s, issues,
                      [](sim::StateSink& k, sim::Cycle c) { k.u64(c); });
    }
}

void Lse::load_state(sim::StateSource& s) {
    const std::uint64_t nframes = s.u64();
    DTA_CHECK_MSG(nframes == frames_.size(),
                  "snapshot frame count does not match the configuration");
    for (Frame& f : frames_) {
        f.state = static_cast<FrameState>(s.u8());
        f.code = s.u32();
        f.uid = s.u64();
        f.sc = s.u32();
        f.dma_pending = s.u32();
        f.resume_ip = s.u32();
        f.has_snapshot = s.flag();
        load_thread_snapshot(s, f.snapshot);
        f.stores_in_flight = s.u32();
        f.ready_at = s.u64();
        f.suspend_at = s.u64();
    }
    sim::load_seq(s, free_slots_,
                  [](sim::StateSource& k, std::uint32_t& v) { v = k.u32(); });
    sim::load_seq(s, ready_,
                  [](sim::StateSource& k, std::uint32_t& v) { v = k.u32(); });
    sim::load_seq(s, outbox_, load_sched_msg);
    sim::load_seq(s, falloc_done_, [](sim::StateSource& k, FallocDone& d) {
        d.rd = k.u8();
        d.handle = sim::FrameHandle::unpack(k.u64());
    });
    dispatch_pending_ = s.flag();
    dispatch_ready_at_ = s.u64();
    live_frames_ = s.u32();
    waitdma_count_ = s.u32();
    ls_write_seq_ = s.u64();
    uid_seq_ = s.u64();
    virtual_.clear();
    const std::uint64_t nvirtual = s.u64();
    for (std::uint64_t i = 0; i < nvirtual; ++i) {
        const std::uint32_t vid = s.u32();
        VirtualFrame vf;
        vf.code = s.u32();
        vf.uid = s.u64();
        vf.sc = s.u32();
        sim::load_seq(s, vf.stores,
                      [](sim::StateSource& k, BufferedStore& b) {
                          b.word_off = k.u32();
                          b.value = k.u64();
                          b.producer = k.u64();
                      });
        vf.complete = s.flag();
        virtual_.emplace(vid, std::move(vf));
    }
    sim::load_seq(s, materialize_queue_,
                  [](sim::StateSource& k, std::uint32_t& v) { v = k.u32(); });
    next_virtual_id_ = s.u32();
    stats_.frames_allocated = s.u64();
    stats_.frames_freed = s.u64();
    stats_.local_stores = s.u64();
    stats_.remote_stores_in = s.u64();
    stats_.remote_stores_out = s.u64();
    stats_.dispatches = s.u64();
    stats_.dma_suspends = s.u64();
    stats_.dma_immediate = s.u64();
    stats_.peak_live_frames = s.u32();
    stats_.virtual_allocations = s.u64();
    stats_.peak_virtual_frames = s.u32();
    now_ = s.u64();
    sim::load_seq(s, write_producers_,
                  [](sim::StateSource& k, std::uint64_t& v) { v = k.u64(); });
    falloc_issue_.clear();
    const std::uint64_t nissue = s.u64();
    for (std::uint64_t i = 0; i < nissue; ++i) {
        const std::uint8_t rd = s.u8();
        std::deque<sim::Cycle>& issues = falloc_issue_[rd];
        sim::load_seq(s, issues,
                      [](sim::StateSource& k, sim::Cycle& c) { c = k.u64(); });
    }
}

}  // namespace dta::sched
