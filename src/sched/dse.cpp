#include "sched/dse.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace dta::sched {

Dse::Dse(const Topology& topo, std::uint16_t node, std::uint32_t frames_per_pe,
         bool virtual_frames)
    : topo_(topo), node_(node), virtual_frames_(virtual_frames) {
    DTA_SIM_REQUIRE(node < topo.nodes, "DSE node id out of range");
    free_.assign(topo.spes_per_node, frames_per_pe);
    set_name("dse" + std::to_string(node));
}

void Dse::tick(sim::Cycle now) {
    noc::Packet pkt;
    while (rx_.pop(pkt)) {
        switch (static_cast<MsgKind>(pkt.kind)) {
            case MsgKind::kFallocReq:
                on_falloc_req(pkt.a, static_cast<std::uint32_t>(pkt.b),
                              FallocCtx::unpack(pkt.c), now);
                break;
            case MsgKind::kFrameFree:
                on_frame_free(static_cast<sim::GlobalPeId>(pkt.a), now);
                break;
            default:
                DTA_CHECK_MSG(false, "DSE got unexpected packet kind " +
                                         std::to_string(pkt.kind));
        }
    }
}

bool Dse::try_grant(const Pending& req) {
    for (std::uint16_t probe = 0; probe < topo_.spes_per_node; ++probe) {
        const std::uint16_t pe =
            static_cast<std::uint16_t>((rr_next_ + probe) % topo_.spes_per_node);
        if (!virtual_frames_ && free_[pe] == 0) {
            continue;
        }
        if (free_[pe] > 0) {
            --free_[pe];
        }
        rr_next_ = static_cast<std::uint16_t>((pe + 1) % topo_.spes_per_node);
        SchedMsg msg;
        msg.kind = MsgKind::kFallocFwd;
        msg.dst_node = node_;
        msg.dst_is_dse = false;
        msg.dst_pe = pe;
        msg.a = req.code;
        msg.b = req.sc;
        msg.c = req.ctx.pack();
        outbox_.push(msg);
        ++stats_.granted_local;
        return true;
    }
    return false;
}

void Dse::on_falloc_req(std::uint64_t code, std::uint32_t sc, FallocCtx ctx,
                        sim::Cycle now) {
    ++stats_.requests;
    Pending req{code, sc, ctx, now};
    if (try_grant(req)) {
        return;
    }
    // Node full: forward to the neighbour node unless the request already
    // visited every node, in which case it parks here until a frame frees.
    if (topo_.nodes > 1 && ctx.hops + 1 < topo_.nodes) {
        ++req.ctx.hops;
        SchedMsg msg;
        msg.kind = MsgKind::kFallocReq;
        msg.dst_node = static_cast<std::uint16_t>((node_ + 1) % topo_.nodes);
        msg.dst_is_dse = true;
        msg.a = req.code;
        msg.b = req.sc;
        msg.c = req.ctx.pack();
        outbox_.push(msg);
        ++stats_.forwarded;
        return;
    }
    pending_.push_back(req);
    ++stats_.queued;
    stats_.peak_pending = std::max(stats_.peak_pending, pending_.size());
}

void Dse::on_frame_free(sim::GlobalPeId pe, sim::Cycle now) {
    DTA_CHECK_MSG(topo_.node_of(pe) == node_,
                  "kFrameFree routed to the wrong DSE");
    const std::uint16_t local = topo_.local_pe_of(pe);
    ++free_[local];
    // Serve parked requests oldest-first.
    while (!pending_.empty()) {
        if (!try_grant(pending_.front())) {
            break;
        }
        if (queue_wait_ != nullptr) {
            queue_wait_->record(now - pending_.front().queued_at);
        }
        pending_.pop_front();
    }
}

void Dse::steal_frame(sim::GlobalPeId pe) {
    DTA_CHECK(topo_.node_of(pe) == node_);
    const std::uint16_t local = topo_.local_pe_of(pe);
    DTA_SIM_REQUIRE(free_[local] > 0, "bootstrap frame on a full PE");
    --free_[local];
}

bool Dse::pop_outgoing(SchedMsg& out) {
    if (outbox_.empty()) {
        return false;
    }
    out = outbox_.front();
    outbox_.pop_front();
    return true;
}

void Dse::save_state(sim::StateSink& s) const {
    rx_.save_state(s, noc::save_packet);
    sim::save_seq(s, free_,
                  [](sim::StateSink& k, std::uint32_t n) { k.u32(n); });
    sim::save_seq(s, pending_, [](sim::StateSink& k, const Pending& p) {
        k.u64(p.code);
        k.u32(p.sc);
        k.u64(p.ctx.pack());
        k.u64(p.queued_at);
    });
    outbox_.save_state(s, save_sched_msg);
    s.u16(rr_next_);
    s.u64(stats_.requests);
    s.u64(stats_.granted_local);
    s.u64(stats_.forwarded);
    s.u64(stats_.queued);
    s.u64(stats_.peak_pending);
}

void Dse::load_state(sim::StateSource& s) {
    rx_.load_state(s, noc::load_packet);
    sim::load_seq(s, free_,
                  [](sim::StateSource& k, std::uint32_t& n) { n = k.u32(); });
    sim::load_seq(s, pending_, [](sim::StateSource& k, Pending& p) {
        p.code = k.u64();
        p.sc = k.u32();
        p.ctx = FallocCtx::unpack(k.u64());
        p.queued_at = k.u64();
    });
    outbox_.load_state(s, load_sched_msg);
    rr_next_ = s.u16();
    stats_.requests = s.u64();
    stats_.granted_local = s.u64();
    stats_.forwarded = s.u64();
    stats_.queued = s.u64();
    stats_.peak_pending = s.u64();
}

}  // namespace dta::sched
