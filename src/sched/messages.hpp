/// \file messages.hpp
/// \brief The DTA scheduler / memory wire protocol carried over the NoC.
///
/// Section 2 of the paper: "Scheduler elements communicate among themselves
/// by sending messages.  These messages can signal the allocation of a new
/// frame (FALLOC-Request and FALLOC-Response messages), releasing a frame
/// (FFREE message) and storing the data in remote frames."  This header
/// gives those messages (plus the memory / DMA traffic) concrete wire kinds
/// and payload packing over noc::Packet's three scalar words.
#pragma once

#include <cstdint>

#include "sim/snapshot.hpp"
#include "sim/types.hpp"

namespace dta::sched {

/// Discriminator values for noc::Packet::kind.
enum class MsgKind : std::uint16_t {
    kInvalid = 0,
    // -- SPU <-> main memory (the paper's READ / WRITE instructions) -----
    kMemReadReq,   ///< a=address, b=packed requester, c=context (slot/reg)
    kMemReadResp,  ///< a=address, b=value, c=context
    kMemWriteReq,  ///< a=address, b=value
    // -- MFC <-> main memory (DMA lines) ----------------------------------
    kDmaLineReq,   ///< a=address, b=line id, c=packed requester (+size in data? no: bytes in low c)
    kDmaLineResp,  ///< a=line id, data = payload bytes
    kDmaPutReq,    ///< a=address, b=line id, c=packed requester, data = payload
    kDmaPutAck,    ///< a=line id
    // -- distributed scheduler ------------------------------------------------
    kFallocReq,    ///< a=code id | parent uid << 16, b=SC, c=FallocCtx
    kFallocFwd,    ///< DSE -> chosen LSE; same payload as kFallocReq
    kFallocResp,   ///< a=packed FrameHandle, c=FallocCtx
    kFrameFree,    ///< LSE -> home DSE; a=global PE id whose frame freed
    kRemoteStore,  ///< a=packed FrameHandle, b=value,
                   ///< c=frame word offset | producer uid << 16
};

/// Thread-lifecycle tracing needs the requesting/producing thread's uid at
/// the *receiving* end of kFallocReq/kFallocFwd and kRemoteStore, but
/// growing noc::Packet by a word measurably slows the whole simulator even
/// with tracing off (the fabric FIFOs copy packets on every hop).  The uid
/// therefore rides in the spare upper bits of an existing payload word:
/// code ids and frame word offsets are 16-bit quantities (enforced at
/// machine/LSE construction), and a uid — (pe << 32) | sequence — fits the
/// remaining 48 bits whenever pe < 2^16 (enforced when event collection is
/// on).  With tracing off the uid is 0 and the packed word equals the
/// plain value, so the wire traffic is bit-identical to an uninstrumented
/// build.
[[nodiscard]] constexpr std::uint64_t pack_carried_uid(std::uint64_t low16,
                                                       std::uint64_t uid) {
    return low16 | (uid << 16);
}
[[nodiscard]] constexpr std::uint32_t carried_low16(std::uint64_t word) {
    return static_cast<std::uint32_t>(word & 0xffff);
}
[[nodiscard]] constexpr std::uint64_t carried_uid(std::uint64_t word) {
    return word >> 16;
}

/// Wire sizes (bytes) used for bus-occupancy accounting.  Control messages
/// are two bus beats (16 B, one header + one payload beat); DMA line data
/// additionally carries its payload.
inline constexpr std::uint32_t kCtrlMsgBytes = 16;
inline constexpr std::uint32_t kMemReadRespBytes = 16;

/// Packs (node, global PE or endpoint ordinal) requester identities.
struct GlobalEndpoint {
    std::uint16_t node = 0;
    std::uint32_t ep = 0;  ///< endpoint id on that node's fabric

    [[nodiscard]] std::uint64_t pack() const {
        return (static_cast<std::uint64_t>(node) << 32) | ep;
    }
    [[nodiscard]] static GlobalEndpoint unpack(std::uint64_t v) {
        return GlobalEndpoint{static_cast<std::uint16_t>(v >> 32),
                              static_cast<std::uint32_t>(v & 0xffffffffu)};
    }
    friend bool operator==(const GlobalEndpoint&, const GlobalEndpoint&) =
        default;
};

/// Context travelling with a FALLOC through the scheduler: who asked, which
/// destination register tags the reply, and how many DSE-to-DSE forwards
/// already happened (to stop ring-around when every node is full).
struct FallocCtx {
    std::uint16_t node = 0;    ///< requester's node
    std::uint16_t pe = 0;      ///< requester's PE index within its node
    std::uint8_t rd = 0;       ///< destination register of the FALLOC
    std::uint8_t hops = 0;     ///< DSE forwarding count

    [[nodiscard]] std::uint64_t pack() const {
        return (static_cast<std::uint64_t>(node) << 32) |
               (static_cast<std::uint64_t>(pe) << 16) |
               (static_cast<std::uint64_t>(rd) << 8) | hops;
    }
    [[nodiscard]] static FallocCtx unpack(std::uint64_t v) {
        return FallocCtx{static_cast<std::uint16_t>(v >> 32),
                         static_cast<std::uint16_t>((v >> 16) & 0xffff),
                         static_cast<std::uint8_t>((v >> 8) & 0xff),
                         static_cast<std::uint8_t>(v & 0xff)};
    }
    friend bool operator==(const FallocCtx&, const FallocCtx&) = default;
};

/// Machine topology as the scheduler sees it; lets scheduler elements map a
/// global PE index to (node, local PE).
struct Topology {
    std::uint16_t nodes = 1;
    std::uint16_t spes_per_node = 8;

    [[nodiscard]] std::uint32_t total_pes() const {
        return static_cast<std::uint32_t>(nodes) * spes_per_node;
    }
    [[nodiscard]] std::uint16_t node_of(sim::GlobalPeId pe) const {
        return static_cast<std::uint16_t>(pe / spes_per_node);
    }
    [[nodiscard]] std::uint16_t local_pe_of(sim::GlobalPeId pe) const {
        return static_cast<std::uint16_t>(pe % spes_per_node);
    }
    [[nodiscard]] sim::GlobalPeId global_pe(std::uint16_t node,
                                            std::uint16_t local) const {
        return static_cast<sim::GlobalPeId>(node) * spes_per_node + local;
    }
};

/// A scheduler-layer message queued for transmission; the PE / machine glue
/// turns it into a noc::Packet (choosing fabric endpoints and wire size).
struct SchedMsg {
    MsgKind kind = MsgKind::kInvalid;
    std::uint16_t dst_node = 0;
    bool dst_is_dse = false;   ///< else a PE (its LSE)
    std::uint16_t dst_pe = 0;  ///< valid when !dst_is_dse
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
};

/// Checkpoint serialization of a queued scheduler message.
inline void save_sched_msg(sim::StateSink& s, const SchedMsg& m) {
    s.u16(static_cast<std::uint16_t>(m.kind));
    s.u16(m.dst_node);
    s.flag(m.dst_is_dse);
    s.u16(m.dst_pe);
    s.u64(m.a);
    s.u64(m.b);
    s.u64(m.c);
}

inline void load_sched_msg(sim::StateSource& s, SchedMsg& m) {
    m.kind = static_cast<MsgKind>(s.u16());
    m.dst_node = s.u16();
    m.dst_is_dse = s.flag();
    m.dst_pe = s.u16();
    m.a = s.u64();
    m.b = s.u64();
    m.c = s.u64();
}

}  // namespace dta::sched
