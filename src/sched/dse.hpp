/// \file dse.hpp
/// \brief The Distributed Scheduler Element — one per node.
///
/// The DSE distributes FALLOC requests over the PEs of its node (round-
/// robin over PEs with free frames, which balances the workload as Section
/// 2 requires), forwards requests to a neighbouring node when its own node
/// is out of frames, and queues them when every node is full — the queueing
/// is what the paper's bitcnt benchmark observes as LSE stalls ("this
/// benchmark is forking a vast amount of threads in a small amount of time
/// and the LSE can't keep up").
///
/// Frame accounting is message-based: the count for a PE is decremented
/// when a FALLOC is forwarded there and incremented when the owning LSE's
/// kFrameFree notification arrives, so the view is conservative (a frame is
/// never granted twice) even though it can be momentarily stale.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "noc/packet.hpp"
#include "sched/messages.hpp"
#include "sim/component.hpp"
#include "sim/metrics.hpp"
#include "sim/port.hpp"
#include "sim/types.hpp"

namespace dta::sched {

/// Statistics of one DSE.
struct DseStats {
    std::uint64_t requests = 0;       ///< FALLOC requests received
    std::uint64_t granted_local = 0;  ///< placed on a PE of this node
    std::uint64_t forwarded = 0;      ///< sent to the next node's DSE
    std::uint64_t queued = 0;         ///< had to wait for a frame
    std::size_t peak_pending = 0;
};

/// The Distributed Scheduler Element of one node.
class Dse final : public sim::Component {
public:
    /// \p virtual_frames: when the LSEs hand out virtual frame pointers a
    /// FALLOC can never fail, so the DSE stops gating on frame counts and
    /// becomes a pure load balancer (round-robin over its PEs).
    Dse(const Topology& topo, std::uint16_t node, std::uint32_t frames_per_pe,
        bool virtual_frames = false);

    /// The fabric's DSE endpoint is bound here; tick() decodes and handles
    /// the delivered scheduler packets.
    [[nodiscard]] sim::Port<noc::Packet>& rx_port() { return rx_; }

    /// Drains the rx port: kFallocReq and kFrameFree packets delivered by
    /// the fabric this cycle are decoded and handled.
    void tick(sim::Cycle now) override;

    /// Handles a kFallocReq (from a local LSE or a remote DSE); \p now
    /// stamps requests that park so their queue wait can be measured.
    /// \p code is the packet's full `a` word — code id plus the carried
    /// parent uid (see pack_carried_uid) — forwarded opaquely: the DSE's
    /// placement policy never looks at either half.
    void on_falloc_req(std::uint64_t code, std::uint32_t sc, FallocCtx ctx,
                       sim::Cycle now = 0);

    /// Handles a kFrameFree notification.
    void on_frame_free(sim::GlobalPeId pe, sim::Cycle now = 0);

    /// Used by the machine to account frames it seeds directly (the entry
    /// thread's bootstrap frame).
    void steal_frame(sim::GlobalPeId pe);

    /// Drains one outgoing message (kFallocFwd to a local LSE, or a
    /// kFallocReq forwarded to the next node's DSE).
    [[nodiscard]] bool pop_outgoing(SchedMsg& out);
    [[nodiscard]] bool has_outgoing() const { return !outbox_.empty(); }
    /// The outbox as a port, so the event-driven scheduler can bind a waker
    /// to it (the node router sleeps until a message shows up).
    [[nodiscard]] sim::Port<SchedMsg>& outbox_port() { return outbox_; }

    /// Requests parked waiting for a free frame.
    [[nodiscard]] std::size_t pending() const { return pending_.size(); }
    [[nodiscard]] bool quiescent() const override {
        return pending_.empty() && outbox_.empty() && rx_.empty();
    }

    /// Horizon: undelivered rx packets and undrained outbox messages need a
    /// next-cycle retry; parked requests wait on an external kFrameFree.
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const override {
        return (!rx_.empty() || !outbox_.empty()) ? now + 1
                                                  : sim::kIdleForever;
    }
    [[nodiscard]] const DseStats& stats() const { return stats_; }

    /// Resolves the sched.dse_queue_wait histogram (cycles a FALLOC request
    /// spends parked waiting for a free frame); no-op when \p reg is
    /// disabled.
    void attach_metrics(sim::MetricsRegistry& reg) {
        queue_wait_ = reg.histogram("sched.dse_queue_wait");
    }
    [[nodiscard]] std::uint32_t free_frames(std::uint16_t local_pe) const {
        return free_[local_pe];
    }

    // --- checkpoint/restore -------------------------------------------------
    /// Serializes undrained rx packets, the frame ledger, parked requests,
    /// outgoing messages, the round-robin cursor, and statistics.
    void save_state(sim::StateSink& s) const override;
    void load_state(sim::StateSource& s) override;

private:
    struct Pending {
        std::uint64_t code = 0;  ///< code id | parent uid << 16, opaque here
        std::uint32_t sc = 0;
        FallocCtx ctx;
        sim::Cycle queued_at = 0;
    };

    /// Tries to place a request on a local PE; returns false if full.
    bool try_grant(const Pending& req);

    Topology topo_;
    std::uint16_t node_;
    bool virtual_frames_;
    sim::Port<noc::Packet> rx_;        ///< fabric DSE-endpoint deliveries
    std::vector<std::uint32_t> free_;  ///< free-frame count per local PE
    std::deque<Pending> pending_;
    sim::Port<SchedMsg> outbox_;
    std::uint16_t rr_next_ = 0;
    DseStats stats_;
    sim::Histogram* queue_wait_ = nullptr;  ///< null when metrics are off
};

}  // namespace dta::sched
