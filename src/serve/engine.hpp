/// \file engine.hpp
/// \brief The sweep server's socket-free core: a bounded job queue, a
///        worker pool running simulations, the result cache, and the
///        request dispatcher.  src/serve/server.hpp adds the Unix-socket
///        transport; the protocol tests drive this class directly.
///
/// Request payloads are strict JSON (stats/json_value).  Operations:
///
///   {"op":"ping"}                  -> one meta frame {"ok":true,...}
///   {"op":"stats"}                 -> one meta frame with queue depth,
///                                     cache counters, rates
///   {"op":"shutdown"}              -> one meta frame; sets the flag
///   {"op":"run","jobs":[{...}]}    -> a batch header frame, then per job
///                                     one meta frame and — when ok — one
///                                     raw report frame (byte-exact
///                                     run_report_json output, cached or
///                                     fresh)
///
/// Backpressure is explicit: when the bounded queue cannot take a job,
/// its meta frame answers {"ok":false,"busy":true} immediately — the
/// client decides whether to retry; the server never blocks the
/// connection on a full queue.
///
/// With verify_hits = N, every Nth cache hit is re-run and byte-compared
/// against the stored report (a mismatch is reported as a job error and
/// the entry replaced) — the cheap standing self-check that memoization
/// never changes results.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/job.hpp"
#include "sim/metrics.hpp"

namespace dta::serve {

struct EngineConfig {
    std::uint32_t workers = 2;        ///< simulation threads
    std::uint32_t queue_capacity = 64;  ///< pending-job bound (backpressure)
    std::string cache_dir;            ///< empty = caching off
    std::uint64_t cache_max_bytes = 0;  ///< 0 = unbounded
    std::uint32_t verify_hits = 0;    ///< re-run every Nth hit; 0 = never
    std::uint32_t default_threads = 1;  ///< host threads per job
};

class Engine {
public:
    explicit Engine(const EngineConfig& cfg);
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Dispatches one request payload; returns the reply frames in order.
    /// Sets \p shutdown on {"op":"shutdown"}.  Malformed JSON or an
    /// unknown op yields a single {"ok":false,...} meta frame — the
    /// connection survives.
    [[nodiscard]] std::vector<std::string> handle_request(
        const std::string& payload, bool& shutdown);

    /// The stats reply document (also written by dta_serve --metrics-out).
    [[nodiscard]] std::string stats_json();

private:
    struct Pending {
        const PreparedJob* job = nullptr;
        JobResult result;
        bool done = false;
    };

    /// Enqueues \p p for the worker pool; false when the queue is full.
    bool try_submit(std::shared_ptr<Pending> p);
    void wait(const std::shared_ptr<Pending>& p);
    void worker_loop();

    void count(const char* name, std::uint64_t n = 1);
    std::vector<std::string> run_batch(const stats::JsonValue& doc);

    EngineConfig cfg_;
    std::unique_ptr<ResultCache> cache_;  ///< null = caching off
    sim::MetricsRegistry metrics_;

    std::mutex mu_;  ///< guards queue_, cache_, metrics_, totals
    std::condition_variable queue_cv_;  ///< workers: work available
    std::condition_variable done_cv_;   ///< requesters: a job finished
    std::queue<std::shared_ptr<Pending>> queue_;
    std::vector<std::thread> workers_;
    bool stopping_ = false;

    // Rate bookkeeping (under mu_).
    std::uint64_t jobs_completed_ = 0;
    std::uint64_t cycles_simulated_ = 0;
    double busy_seconds_ = 0.0;  ///< summed wall time inside run_job
    std::chrono::steady_clock::time_point started_;
};

}  // namespace dta::serve
