/// \file job.hpp
/// \brief Job specifications for the sweep server: parse a JSON job into a
///        runnable, cache-keyed unit of work.
///
/// A job names either one of the paper workloads (`mmul`, `zoom`,
/// `bitcnt` — with the same `ci`/`paper` scale presets dta_bench uses, and
/// per-parameter overrides) or a raw DTA assembly program (`asm`, inline
/// text or a file path).  Machine shape overrides mirror dta_run's flags.
/// Optionally a job warm-starts from a `.dtasnap` snapshot instead of
/// launching fresh — PR `checkpoint/restore` guarantees the resumed run's
/// report is byte-identical to a cold run, so warm and cold runs share one
/// cache key.
///
/// The cache key is FNV-1a 64 over: a format tag, the structural config
/// fingerprint (core/machine.hpp, shard count pinned to 1 — results are
/// byte-identical across host thread counts, so the host parallelism must
/// not fragment the cache), the workload name and prefetch flag, every
/// workload parameter that shapes the memory image, and the entry
/// arguments.  Observer knobs (checkpointing, host threads) are excluded:
/// they never change the report bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "stats/json_value.hpp"

namespace dta::serve {

/// A job parsed and bound to a config + program, ready to run.
struct PreparedJob {
    std::string id;    ///< echo'd in the reply meta
    std::string name;  ///< report benchmark label
    std::uint64_t key = 0;
    core::MachineConfig cfg;
    isa::Program prog;
    /// Places input data and launches (or restores) the machine.
    std::function<void(core::Machine&)> setup;
    /// Output check against the host reference; null for asm jobs.
    std::function<bool(const mem::MainMemory&, std::string*)> check;
    bool warm_start = false;  ///< setup restores from a snapshot
    /// Periodic snapshots during the run (result-neutral; key-excluded).
    sim::Cycle checkpoint_every = 0;
    std::string checkpoint_prefix;
};

/// A finished job.
struct JobResult {
    bool ok = false;
    std::string error;   ///< one line when !ok
    std::string report;  ///< raw stats::run_report_json bytes when ok
    std::uint64_t cycles = 0;
};

/// Parses one JSON job object into a PreparedJob.  On failure returns
/// false with a one-line reason (unknown workload, bad parameter, missing
/// program...).  \p default_threads seeds cfg.host_threads unless the job
/// overrides it.
[[nodiscard]] bool prepare_job(const stats::JsonValue& spec,
                               std::uint32_t default_threads,
                               PreparedJob& out, std::string& error);

/// Runs a prepared job to completion.  Machine-level failures (deadlock,
/// bad snapshot, impossible shape) come back as ok=false with the
/// SimError line — the server must outlive any job.
[[nodiscard]] JobResult run_job(const PreparedJob& job);

}  // namespace dta::serve
