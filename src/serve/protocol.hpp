/// \file protocol.hpp
/// \brief Wire framing for the sweep server (docs/SERVING.md): every
///        message is one length-prefixed frame — a u32 little-endian
///        payload length followed by that many bytes.
///
/// The payload of a request or reply *meta* frame is one JSON document
/// (parsed with the strict stats/json_value parser); a reply's *report*
/// frame is raw bytes, passed through untouched so a cached result can be
/// byte-compared against a fresh run with plain memcmp/cmp.
///
/// Framing is defined over plain file descriptors, not sockets, so the
/// protocol tests can drive it through a pipe.  All reads and writes are
/// EINTR-safe and handle short transfers.  A frame longer than
/// kMaxFrameBytes is refused before any allocation: the reader drains
/// nothing and reports kOversized, and the server drops the connection
/// (length-prefixed protocols must bound the prefix or a 4-byte header
/// becomes a 4 GiB allocation request).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dta::serve {

/// Hard ceiling on one frame's payload (requests and reports alike).
inline constexpr std::uint32_t kMaxFrameBytes = 16u * 1024 * 1024;

enum class FrameStatus : std::uint8_t {
    kOk,         ///< one complete frame read
    kEof,        ///< clean end of stream at a frame boundary
    kError,      ///< I/O error or truncated frame (EOF mid-frame)
    kOversized,  ///< declared length exceeds kMaxFrameBytes
};

/// Reads one frame from \p fd into \p out (replacing its contents).
[[nodiscard]] FrameStatus read_frame(int fd, std::string& out);

/// Writes one frame to \p fd; false on I/O error or oversized payload.
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

/// Connects to a Unix-domain socket at \p path, retrying for up to
/// \p retry_ms milliseconds (covers the daemon's startup window).
/// Returns the connected fd, or -1 with a one-line reason in \p error.
[[nodiscard]] int connect_unix(const std::string& path, int retry_ms,
                               std::string& error);

}  // namespace dta::serve
