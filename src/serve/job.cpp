#include "serve/job.hpp"

#include <fstream>
#include <limits>
#include <memory>
#include <sstream>

#include "isa/asmtext.hpp"
#include "sim/check.hpp"
#include "sim/snapshot.hpp"
#include "stats/json_report.hpp"
#include "workloads/bitcnt.hpp"
#include "workloads/mmul.hpp"
#include "workloads/zoom.hpp"

namespace dta::serve {

namespace {

using stats::JsonValue;

/// Every key a job object may carry; anything else is a typo we refuse
/// rather than silently ignore (a misspelled "perfect_cache" must not
/// quietly benchmark the wrong machine).
constexpr const char* kKnownKeys[] = {
    "id",           "workload",        "scale",
    "prefetch",     "spes",            "nodes",
    "threads",      "mem_latency",     "frames",
    "staging",      "vfp",             "perfect_cache",
    "max_cycles",   "n",               "factor",
    "wthreads",     "unroll",          "iterations",
    "seed",         "program_text",    "program_file",
    "args",         "snapshot",        "checkpoint_every",
    "checkpoint_prefix",
};

bool known_key(const std::string& k) {
    for (const char* s : kKnownKeys) {
        if (k == s) {
            return true;
        }
    }
    return false;
}

/// Fetches an unsigned integer member; false (with a reason) on a
/// non-number, negative, fractional or out-of-range value.  Absent
/// members leave \p out untouched and succeed.
template <typename T>
bool get_uint(const JsonValue& spec, const char* key, T& out,
              std::string& error, std::uint64_t lo = 0,
              std::uint64_t hi = std::numeric_limits<T>::max()) {
    const JsonValue* v = spec.find(key);
    if (v == nullptr) {
        return true;
    }
    if (!v->is_number()) {
        error = std::string("job field '") + key + "' must be a number";
        return false;
    }
    const double d = v->as_number();
    if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d)) ||
        static_cast<std::uint64_t>(d) < lo ||
        static_cast<std::uint64_t>(d) > hi) {
        error = std::string("job field '") + key + "' out of range [" +
                std::to_string(lo) + ", " + std::to_string(hi) + "]";
        return false;
    }
    out = static_cast<T>(d);
    return true;
}

bool get_bool(const JsonValue& spec, const char* key, bool& out,
              std::string& error) {
    const JsonValue* v = spec.find(key);
    if (v == nullptr) {
        return true;
    }
    if (!v->is_bool()) {
        error = std::string("job field '") + key + "' must be a boolean";
        return false;
    }
    out = v->as_bool();
    return true;
}

bool get_string(const JsonValue& spec, const char* key, std::string& out,
                std::string& error) {
    const JsonValue* v = spec.find(key);
    if (v == nullptr) {
        return true;
    }
    if (!v->is_string()) {
        error = std::string("job field '") + key + "' must be a string";
        return false;
    }
    out = v->as_string();
    return true;
}

/// Shared machine-shape overrides (the dta_run flag set).
struct Overrides {
    std::uint16_t spes = 8;
    std::uint16_t nodes = 0;        // 0 = factory default
    std::uint32_t threads;          // host threads; seeded by caller
    std::uint32_t mem_latency = 0;  // 0 = factory default
    std::uint32_t frames = 0;
    std::uint32_t staging = 0;
    bool vfp = false;
    bool vfp_set = false;
    bool perfect_cache = false;
    std::uint64_t max_cycles = 0;
};

bool parse_overrides(const JsonValue& spec, Overrides& o,
                     std::string& error) {
    if (!get_uint(spec, "spes", o.spes, error, 1) ||
        !get_uint(spec, "nodes", o.nodes, error, 1) ||
        !get_uint(spec, "threads", o.threads, error, 0, 4096) ||
        !get_uint(spec, "mem_latency", o.mem_latency, error, 1) ||
        !get_uint(spec, "frames", o.frames, error, 1) ||
        !get_uint(spec, "staging", o.staging, error, 1) ||
        !get_uint(spec, "max_cycles", o.max_cycles, error, 1) ||
        !get_bool(spec, "perfect_cache", o.perfect_cache, error)) {
        return false;
    }
    o.vfp_set = spec.find("vfp") != nullptr;
    return get_bool(spec, "vfp", o.vfp, error);
}

void apply_overrides(core::MachineConfig& cfg, const Overrides& o) {
    if (o.nodes != 0) {
        cfg.nodes = o.nodes;
    }
    cfg.host_threads = o.threads;
    if (o.mem_latency != 0) {
        cfg.memory.latency = o.mem_latency;
    }
    if (o.frames != 0 || o.staging != 0) {
        cfg.lse = sched::LseConfig::with(
            o.frames != 0 ? o.frames : cfg.lse.frames,
            o.staging != 0 ? o.staging : cfg.lse.staging_bytes_per_frame);
    }
    if (o.vfp_set) {
        cfg.lse.virtual_frames = o.vfp;
    }
    if (o.max_cycles != 0) {
        cfg.max_cycles = o.max_cycles;
    }
}

/// Builds the workload-specific half of a PreparedJob.  The workload
/// object lives in a shared_ptr captured by the setup/check closures.
template <typename W>
void bind_workload(PreparedJob& out, typename W::Params p, bool prefetch,
                   const std::string& snapshot) {
    auto wl = std::make_shared<const W>(p);
    out.prog = prefetch ? wl->prefetch_program() : wl->program();
    if (snapshot.empty()) {
        out.setup = [wl](core::Machine& m) {
            wl->init_memory(m.memory());
            const auto args = wl->entry_args();
            m.launch(args);
        };
    } else {
        out.setup = [snapshot](core::Machine& m) { m.restore(snapshot); };
        out.warm_start = true;
    }
    out.check = [wl](const mem::MainMemory& mem, std::string* why) {
        return wl->check(mem, why);
    };
}

/// The cache key: a format tag, the structural machine+program
/// fingerprint with the shard count pinned to 1, and everything that
/// shapes the memory image or entry arguments.
std::uint64_t job_key(const core::MachineConfig& cfg,
                      const isa::Program& prog, const std::string& workload,
                      bool prefetch, std::uint64_t p0, std::uint64_t p1,
                      std::uint64_t p2, std::uint64_t p3, std::uint64_t seed,
                      const std::vector<std::uint64_t>& args) {
    sim::StateSink s;
    s.str("dta-serve-key-v1");
    s.u64(core::structural_fingerprint(cfg, /*shard_count=*/1, prog));
    s.str(workload);
    s.flag(prefetch);
    s.u64(p0);
    s.u64(p1);
    s.u64(p2);
    s.u64(p3);
    s.u64(seed);
    s.u64(args.size());
    for (const std::uint64_t a : args) {
        s.u64(a);
    }
    return sim::fnv1a64(s.data().data(), s.size());
}

}  // namespace

bool prepare_job(const JsonValue& spec, std::uint32_t default_threads,
                 PreparedJob& out, std::string& error) {
    if (!spec.is_object()) {
        error = "job must be a JSON object";
        return false;
    }
    for (const JsonValue::Member& m : spec.members()) {
        if (!known_key(m.first)) {
            error = "unknown job field '" + m.first + "'";
            return false;
        }
    }
    std::string workload;
    std::string scale = "ci";
    bool prefetch = false;
    std::string snapshot;
    if (!get_string(spec, "workload", workload, error) ||
        !get_string(spec, "scale", scale, error) ||
        !get_bool(spec, "prefetch", prefetch, error) ||
        !get_string(spec, "id", out.id, error) ||
        !get_string(spec, "snapshot", snapshot, error) ||
        !get_uint(spec, "checkpoint_every", out.checkpoint_every, error, 1) ||
        !get_string(spec, "checkpoint_prefix", out.checkpoint_prefix,
                    error)) {
        return false;
    }
    if (workload.empty()) {
        error = "job field 'workload' is required "
                "(mmul, zoom, bitcnt or asm)";
        return false;
    }
    if (scale != "ci" && scale != "paper") {
        error = "job field 'scale' must be \"ci\" or \"paper\"";
        return false;
    }
    const bool paper = scale == "paper";

    Overrides o;
    o.threads = default_threads;
    if (!parse_overrides(spec, o, error)) {
        return false;
    }

    // The report's benchmark label is canonical — a function of the job's
    // content, never of the caller's 'id' — so one cache entry serves any
    // id that maps to the same key with identical bytes.
    out.name = scale + "/" + workload + (prefetch ? "/pf" : "/orig");
    if (out.id.empty()) {
        out.id = out.name;
    }

    if (workload == "mmul") {
        workloads::MatMul::Params p;
        p.n = paper ? 32 : 16;
        p.threads =
            paper ? workloads::MatMul::threads_for(o.spes) : 16;
        if (!get_uint(spec, "n", p.n, error, 1) ||
            !get_uint(spec, "wthreads", p.threads, error, 1) ||
            !get_uint(spec, "unroll", p.unroll, error, 1) ||
            !get_uint(spec, "seed", p.seed, error)) {
            return false;
        }
        out.cfg = workloads::MatMul::machine_config(o.spes);
        apply_overrides(out.cfg, o);
        bind_workload<workloads::MatMul>(out, p, prefetch, snapshot);
        out.key = job_key(out.cfg, out.prog, workload, prefetch, p.n,
                          p.threads, p.unroll, 0, p.seed, {});
    } else if (workload == "zoom") {
        workloads::Zoom::Params p;
        p.n = paper ? 32 : 16;
        p.factor = paper ? 8 : 4;
        p.threads = paper ? workloads::Zoom::threads_for(o.spes) : 16;
        if (!get_uint(spec, "n", p.n, error, 1) ||
            !get_uint(spec, "factor", p.factor, error, 1) ||
            !get_uint(spec, "wthreads", p.threads, error, 1) ||
            !get_uint(spec, "unroll", p.unroll, error, 1) ||
            !get_uint(spec, "seed", p.seed, error)) {
            return false;
        }
        out.cfg = workloads::Zoom::machine_config(o.spes);
        apply_overrides(out.cfg, o);
        bind_workload<workloads::Zoom>(out, p, prefetch, snapshot);
        out.key = job_key(out.cfg, out.prog, workload, prefetch, p.n,
                          p.threads, p.unroll, p.factor, p.seed, {});
    } else if (workload == "bitcnt") {
        workloads::BitCount::Params p;
        p.iterations = paper ? 10000 : 1024;
        if (!get_uint(spec, "iterations", p.iterations, error, 1)) {
            return false;
        }
        out.cfg = workloads::BitCount::machine_config(o.spes);
        apply_overrides(out.cfg, o);
        bind_workload<workloads::BitCount>(out, p, prefetch, snapshot);
        out.key = job_key(out.cfg, out.prog, workload, prefetch,
                          p.iterations, 0, 0, 0, 0, {});
    } else if (workload == "asm") {
        std::string text;
        std::string file;
        if (!get_string(spec, "program_text", text, error) ||
            !get_string(spec, "program_file", file, error)) {
            return false;
        }
        if (text.empty() == file.empty()) {
            error = "asm job needs exactly one of 'program_text' and "
                    "'program_file'";
            return false;
        }
        if (!file.empty()) {
            std::ifstream in(file);
            if (!in) {
                error = "cannot open program file '" + file + "'";
                return false;
            }
            std::ostringstream buf;
            buf << in.rdbuf();
            text = buf.str();
        }
        std::vector<std::uint64_t> args;
        if (const JsonValue* av = spec.find("args"); av != nullptr) {
            if (!av->is_array()) {
                error = "job field 'args' must be an array of numbers";
                return false;
            }
            for (const JsonValue& item : av->items()) {
                if (!item.is_number() || item.as_number() < 0) {
                    error = "job field 'args' must be an array of "
                            "non-negative numbers";
                    return false;
                }
                args.push_back(item.as_u64());
            }
        }
        try {
            out.prog = isa::parse_program(text);
        } catch (const sim::SimError& e) {
            error = std::string("program parse error: ") + e.what();
            return false;
        }
        out.cfg = o.perfect_cache
                      ? core::MachineConfig::perfect_cache(o.spes)
                      : core::MachineConfig::cell_dta(o.spes);
        apply_overrides(out.cfg, o);
        if (snapshot.empty()) {
            out.setup = [args](core::Machine& m) { m.launch(args); };
        } else {
            out.setup = [snapshot](core::Machine& m) {
                m.restore(snapshot);
            };
            out.warm_start = true;
        }
        out.key = job_key(out.cfg, out.prog, workload, prefetch, 0, 0, 0, 0,
                          0, args);
        out.name = out.prog.name.empty() ? "asm" : out.prog.name;
    } else {
        error = "unknown workload '" + workload +
                "' (mmul, zoom, bitcnt or asm)";
        return false;
    }
    return true;
}

JobResult run_job(const PreparedJob& job) {
    JobResult r;
    try {
        core::Machine machine(job.cfg, job.prog);
        if (job.checkpoint_every > 0) {
            machine.set_checkpoints(job.checkpoint_every,
                                    job.checkpoint_prefix.empty()
                                        ? job.name
                                        : job.checkpoint_prefix);
        }
        job.setup(machine);
        const core::RunResult res = machine.run();
        if (job.check) {
            std::string why;
            if (!job.check(machine.memory(), &why)) {
                r.error = "incorrect result: " + why;
                return r;
            }
        }
        r.report = stats::run_report_json(res, job.name,
                                          /*include_host=*/false);
        r.cycles = res.cycles;
        r.ok = true;
    } catch (const sim::SimError& e) {
        r.error = e.what();
    } catch (const sim::CheckError& e) {
        r.error = std::string("internal error: ") + e.what();
    }
    return r;
}

}  // namespace dta::serve
