#include "serve/engine.hpp"

#include <utility>

#include "stats/json_value.hpp"

namespace dta::serve {

using stats::JsonValue;

namespace {

/// Builds a meta frame from members (compact, via the strict serialiser —
/// ids and error strings are escaped properly).
std::string meta_frame(std::vector<JsonValue::Member> members) {
    return stats::dump_json(JsonValue::make_object(std::move(members)));
}

std::string error_frame(const std::string& what) {
    return meta_frame({{"ok", JsonValue::make_bool(false)},
                       {"error", JsonValue::make_string(what)}});
}

/// Pulls the "cycles" field back out of a stored report (cache hits reply
/// without re-running, but the meta frame still reports cycles).
std::uint64_t report_cycles(const std::string& report) {
    const stats::JsonParseResult r = stats::parse_json(report);
    if (!r.ok) {
        return 0;
    }
    const JsonValue* c = r.value.find("cycles", JsonValue::Kind::kNumber);
    return c != nullptr ? c->as_u64() : 0;
}

}  // namespace

Engine::Engine(const EngineConfig& cfg)
    : cfg_(cfg), started_(std::chrono::steady_clock::now()) {
    metrics_.enable();
    if (!cfg_.cache_dir.empty()) {
        cache_ = std::make_unique<ResultCache>(cfg_.cache_dir,
                                               cfg_.cache_max_bytes);
    }
    workers_.reserve(cfg_.workers);
    for (std::uint32_t w = 0; w < cfg_.workers; ++w) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

Engine::~Engine() {
    {
        const std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    queue_cv_.notify_all();
    for (std::thread& t : workers_) {
        t.join();
    }
}

void Engine::count(const char* name, std::uint64_t n) {
    // Caller holds mu_ (MetricsRegistry is not thread-safe).
    metrics_.counter(name)->add(n);
}

bool Engine::try_submit(std::shared_ptr<Pending> p) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (queue_.size() >= cfg_.queue_capacity || workers_.empty()) {
        count("serve.busy_rejects");
        return false;
    }
    queue_.push(std::move(p));
    count("serve.jobs.submitted");
    queue_cv_.notify_one();
    return true;
}

void Engine::wait(const std::shared_ptr<Pending>& p) {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return p->done; });
}

void Engine::worker_loop() {
    while (true) {
        std::shared_ptr<Pending> p;
        {
            std::unique_lock<std::mutex> lock(mu_);
            queue_cv_.wait(lock,
                           [&] { return stopping_ || !queue_.empty(); });
            if (stopping_) {
                return;
            }
            p = std::move(queue_.front());
            queue_.pop();
        }
        const auto t0 = std::chrono::steady_clock::now();
        JobResult result = run_job(*p->job);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        {
            const std::lock_guard<std::mutex> lock(mu_);
            busy_seconds_ += secs;
            ++jobs_completed_;
            count("serve.jobs.completed");
            if (result.ok) {
                cycles_simulated_ += result.cycles;
            } else {
                count("serve.jobs.failed");
            }
            p->result = std::move(result);
            p->done = true;
        }
        done_cv_.notify_all();
    }
}

std::vector<std::string> Engine::handle_request(const std::string& payload,
                                                bool& shutdown) {
    const stats::JsonParseResult parsed = stats::parse_json(payload);
    if (!parsed.ok) {
        const std::lock_guard<std::mutex> lock(mu_);
        count("serve.requests.malformed");
        return {error_frame("malformed request: " + parsed.error +
                            " at byte " + std::to_string(parsed.offset))};
    }
    const JsonValue* op =
        parsed.value.find("op", JsonValue::Kind::kString);
    if (op == nullptr) {
        const std::lock_guard<std::mutex> lock(mu_);
        count("serve.requests.malformed");
        return {error_frame("request needs a string 'op' field")};
    }
    if (op->as_string() == "ping") {
        return {meta_frame({{"ok", JsonValue::make_bool(true)},
                            {"op", JsonValue::make_string("pong")}})};
    }
    if (op->as_string() == "stats") {
        return {stats_json()};
    }
    if (op->as_string() == "shutdown") {
        shutdown = true;
        return {meta_frame({{"ok", JsonValue::make_bool(true)},
                            {"op", JsonValue::make_string("shutdown")}})};
    }
    if (op->as_string() == "run") {
        return run_batch(parsed.value);
    }
    const std::lock_guard<std::mutex> lock(mu_);
    count("serve.requests.malformed");
    return {error_frame("unknown op '" + op->as_string() + "'")};
}

std::vector<std::string> Engine::run_batch(const JsonValue& doc) {
    const JsonValue* jobs = doc.find("jobs", JsonValue::Kind::kArray);
    if (jobs == nullptr) {
        const std::lock_guard<std::mutex> lock(mu_);
        count("serve.requests.malformed");
        return {error_frame("run request needs a 'jobs' array")};
    }

    // Per-job state through the batch.  A job is resolved by exactly one
    // of: a prepare/busy error, a cached report, or a Pending handed to
    // the worker pool.
    struct Slot {
        PreparedJob job;
        std::string error;            ///< prepare failure
        bool busy = false;            ///< queue full
        bool cached = false;
        bool verify = false;          ///< cached + this hit is re-run
        std::string cached_report;
        std::shared_ptr<Pending> pending;
    };
    std::vector<Slot> slots(jobs->items().size());

    for (std::size_t i = 0; i < slots.size(); ++i) {
        Slot& s = slots[i];
        s.job.id = "job" + std::to_string(i);
        std::string err;
        if (!prepare_job(jobs->items()[i], cfg_.default_threads, s.job,
                         err)) {
            s.error = err;
            continue;
        }
        if (cache_ != nullptr && !s.job.warm_start) {
            const std::lock_guard<std::mutex> lock(mu_);
            if (auto hit = cache_->lookup(s.job.key)) {
                s.cached = true;
                s.cached_report = std::move(*hit);
                if (cfg_.verify_hits > 0 &&
                    cache_->stats().hits % cfg_.verify_hits == 0) {
                    s.verify = true;
                }
                if (!s.verify) {
                    continue;
                }
            }
        }
        // Miss (or a hit due for verification): run it.
        s.pending = std::make_shared<Pending>();
        s.pending->job = &s.job;
        if (!try_submit(s.pending)) {
            s.pending.reset();
            s.busy = true;
            if (s.verify) {
                // Verification is best-effort: under pressure, serve the
                // hit and skip the re-run rather than reject the job.
                s.busy = false;
                s.verify = false;
            }
        }
    }

    std::vector<std::string> frames;
    frames.push_back(meta_frame(
        {{"ok", JsonValue::make_bool(true)},
         {"op", JsonValue::make_string("run")},
         {"jobs",
          JsonValue::make_number(static_cast<double>(slots.size()))}}));

    for (Slot& s : slots) {
        std::vector<JsonValue::Member> meta;
        meta.emplace_back("id", JsonValue::make_string(s.job.id));
        if (!s.error.empty()) {
            meta.emplace_back("ok", JsonValue::make_bool(false));
            meta.emplace_back("error", JsonValue::make_string(s.error));
            frames.push_back(meta_frame(std::move(meta)));
            continue;
        }
        if (s.busy) {
            meta.emplace_back("ok", JsonValue::make_bool(false));
            meta.emplace_back("busy", JsonValue::make_bool(true));
            meta.emplace_back(
                "error", JsonValue::make_string("queue full, retry later"));
            frames.push_back(meta_frame(std::move(meta)));
            continue;
        }
        if (s.pending != nullptr) {
            wait(s.pending);
        }
        if (s.cached && !s.verify) {
            meta.emplace_back("ok", JsonValue::make_bool(true));
            meta.emplace_back("cached", JsonValue::make_bool(true));
            meta.emplace_back(
                "cycles", JsonValue::make_number(static_cast<double>(
                              report_cycles(s.cached_report))));
            frames.push_back(meta_frame(std::move(meta)));
            frames.push_back(std::move(s.cached_report));
            continue;
        }
        const JobResult& r = s.pending->result;
        if (s.verify) {
            const std::lock_guard<std::mutex> lock(mu_);
            count("serve.cache.verify_reruns");
            if (r.ok && r.report == s.cached_report) {
                meta.emplace_back("ok", JsonValue::make_bool(true));
                meta.emplace_back("cached", JsonValue::make_bool(true));
                meta.emplace_back("verified", JsonValue::make_bool(true));
                meta.emplace_back(
                    "cycles",
                    JsonValue::make_number(static_cast<double>(r.cycles)));
                frames.push_back(meta_frame(std::move(meta)));
                frames.push_back(std::move(s.cached_report));
                continue;
            }
            // The memoized bytes and a fresh run disagree — never serve
            // the stale entry; replace it (when the fresh run is good) and
            // surface the mismatch.
            count("serve.cache.verify_mismatches");
            if (r.ok && cache_ != nullptr) {
                (void)cache_->store(s.job.key, r.report);
            }
            meta.emplace_back("ok", JsonValue::make_bool(false));
            meta.emplace_back(
                "error",
                JsonValue::make_string(
                    r.ok ? "cache verification mismatch (entry replaced)"
                         : "cache verification re-run failed: " + r.error));
            frames.push_back(meta_frame(std::move(meta)));
            continue;
        }
        if (!r.ok) {
            meta.emplace_back("ok", JsonValue::make_bool(false));
            meta.emplace_back("error", JsonValue::make_string(r.error));
            frames.push_back(meta_frame(std::move(meta)));
            continue;
        }
        if (cache_ != nullptr) {
            const std::lock_guard<std::mutex> lock(mu_);
            (void)cache_->store(s.job.key, r.report);
        }
        meta.emplace_back("ok", JsonValue::make_bool(true));
        meta.emplace_back("cached", JsonValue::make_bool(false));
        meta.emplace_back("cycles", JsonValue::make_number(
                                        static_cast<double>(r.cycles)));
        frames.push_back(meta_frame(std::move(meta)));
        frames.push_back(r.report);
    }
    return frames;
}

std::string Engine::stats_json() {
    const std::lock_guard<std::mutex> lock(mu_);
    const double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_)
            .count();
    std::vector<JsonValue::Member> m;
    m.emplace_back("ok", JsonValue::make_bool(true));
    m.emplace_back("op", JsonValue::make_string("stats"));
    m.emplace_back("uptime_s", JsonValue::make_number(uptime));
    m.emplace_back("workers", JsonValue::make_number(
                                  static_cast<double>(cfg_.workers)));
    m.emplace_back("queue_depth", JsonValue::make_number(static_cast<double>(
                                      queue_.size())));
    m.emplace_back("queue_capacity",
                   JsonValue::make_number(
                       static_cast<double>(cfg_.queue_capacity)));

    std::vector<JsonValue::Member> cache;
    if (cache_ != nullptr) {
        const CacheStats& cs = cache_->stats();
        cache.emplace_back("hits", JsonValue::make_number(
                                       static_cast<double>(cs.hits)));
        cache.emplace_back("misses", JsonValue::make_number(
                                         static_cast<double>(cs.misses)));
        cache.emplace_back("stores", JsonValue::make_number(
                                         static_cast<double>(cs.stores)));
        cache.emplace_back(
            "evictions",
            JsonValue::make_number(static_cast<double>(cs.evictions)));
        cache.emplace_back("corrupt", JsonValue::make_number(
                                          static_cast<double>(cs.corrupt)));
        cache.emplace_back(
            "entries", JsonValue::make_number(
                           static_cast<double>(cache_->entry_count())));
        cache.emplace_back(
            "bytes", JsonValue::make_number(
                         static_cast<double>(cache_->total_bytes())));
    }
    m.emplace_back("cache", JsonValue::make_object(std::move(cache)));

    std::vector<JsonValue::Member> rates;
    rates.emplace_back(
        "jobs_per_s",
        JsonValue::make_number(
            uptime > 0.0 ? static_cast<double>(jobs_completed_) / uptime
                         : 0.0));
    rates.emplace_back(
        "mcycles_per_s",
        JsonValue::make_number(
            busy_seconds_ > 0.0
                ? static_cast<double>(cycles_simulated_) / busy_seconds_ /
                      1e6
                : 0.0));
    m.emplace_back("rates", JsonValue::make_object(std::move(rates)));

    std::vector<JsonValue::Member> counters;
    for (const auto& [name, c] : metrics_.counters()) {
        counters.emplace_back(
            name,
            JsonValue::make_number(static_cast<double>(c.value)));
    }
    m.emplace_back("counters", JsonValue::make_object(std::move(counters)));
    return meta_frame(std::move(m));
}

}  // namespace dta::serve
