/// \file server.hpp
/// \brief Unix-domain-socket transport around serve::Engine: bind, listen,
///        one thread per connection, frame in / frames out, orderly
///        shutdown on request or signal.
///
/// A connection is a sequence of request frames; each gets its reply
/// frames written back in order.  A malformed JSON payload earns an error
/// frame and the connection survives; a framing violation (oversized or
/// truncated frame) drops the connection — once the byte stream is
/// desynchronised there is no safe way to find the next frame boundary.
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/engine.hpp"

namespace dta::serve {

class Server {
public:
    /// Binds and listens on \p socket_path (removing a stale socket file
    /// first).  Throws sim::SimError when the path is too long or the
    /// bind fails.
    Server(std::string socket_path, const EngineConfig& cfg);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Accept loop; returns after a shutdown request (or stop()).  Joins
    /// every connection thread before returning.
    void serve_forever();

    /// Signal-safe stop: closes the listening socket, which unblocks
    /// accept().  Connections finish their in-flight request.
    void stop();

    [[nodiscard]] Engine& engine() { return engine_; }

private:
    void handle_connection(int fd);

    std::string path_;
    Engine engine_;
    int listen_fd_ = -1;
    std::atomic<bool> stopping_{false};
    std::vector<std::thread> connections_;
};

}  // namespace dta::serve
