#include "serve/server.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/protocol.hpp"
#include "sim/check.hpp"

namespace dta::serve {

Server::Server(std::string socket_path, const EngineConfig& cfg)
    : path_(std::move(socket_path)), engine_(cfg) {
    // A client disconnecting mid-reply must not kill the daemon with
    // SIGPIPE; write() then fails with EPIPE and the connection thread
    // exits cleanly.
    std::signal(SIGPIPE, SIG_IGN);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    DTA_SIM_REQUIRE(path_.size() < sizeof(addr.sun_path),
                    "socket path '" + path_ + "' too long (max " +
                        std::to_string(sizeof(addr.sun_path) - 1) +
                        " bytes)");
    std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);

    ::unlink(path_.c_str());  // stale socket from a crashed daemon
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DTA_SIM_REQUIRE(listen_fd_ >= 0,
                    std::string("socket: ") + std::strerror(errno));
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        const std::string why = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        DTA_SIM_ERROR("cannot listen on '" + path_ + "': " + why);
    }
}

Server::~Server() {
    stop();
    for (std::thread& t : connections_) {
        if (t.joinable()) {
            t.join();
        }
    }
    ::unlink(path_.c_str());
}

void Server::stop() {
    if (!stopping_.exchange(true)) {
        // shutdown() unblocks a blocked accept(); close() alone does not
        // on every platform.
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
    }
}

void Server::serve_forever() {
    while (!stopping_.load()) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) {
                continue;
            }
            break;  // listening socket closed by stop()
        }
        connections_.emplace_back([this, fd] { handle_connection(fd); });
    }
    for (std::thread& t : connections_) {
        if (t.joinable()) {
            t.join();
        }
    }
    connections_.clear();
}

void Server::handle_connection(int fd) {
    std::string payload;
    while (true) {
        const FrameStatus st = read_frame(fd, payload);
        if (st != FrameStatus::kOk) {
            if (st == FrameStatus::kOversized) {
                // Tell the peer why before dropping the stream.
                (void)write_frame(
                    fd,
                    "{\"ok\":false,\"error\":\"frame exceeds " +
                        std::to_string(kMaxFrameBytes) + " bytes\"}");
            }
            break;
        }
        bool shutdown = false;
        const std::vector<std::string> replies =
            engine_.handle_request(payload, shutdown);
        bool write_ok = true;
        for (const std::string& r : replies) {
            if (!write_frame(fd, r)) {
                write_ok = false;
                break;
            }
        }
        if (shutdown) {
            stop();
            break;
        }
        if (!write_ok) {
            break;
        }
    }
    ::close(fd);
}

}  // namespace dta::serve
