#include "serve/cache.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <vector>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace dta::serve {

namespace fs = std::filesystem;

namespace {

constexpr char kMagic[8] = {'D', 'T', 'A', 'R', 'E', 'S', '1', '\0'};

std::string key_hex(std::uint64_t key) {
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return false;
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    bool ok = size >= 0;
    if (ok) {
        out.resize(static_cast<std::size_t>(size));
        ok = out.empty() ||
             std::fread(out.data(), 1, out.size(), f) == out.size();
    }
    std::fclose(f);
    return ok;
}

}  // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t max_bytes)
    : dir_(std::move(dir)), max_bytes_(max_bytes) {
    std::error_code ec;
    fs::create_directories(dir_, ec);
    DTA_SIM_REQUIRE(!ec && fs::is_directory(dir_, ec),
                    "cannot create cache directory '" + dir_ + "'");
    // Seed the index (and the LRU order) from what is already on disk.
    // Entries are validated lazily at lookup; here only the name and size
    // need to parse.
    struct Seen {
        std::uint64_t key;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Seen> seen;
    for (const auto& de : fs::directory_iterator(dir_, ec)) {
        const std::string name = de.path().filename().string();
        if (name.size() != 16 + 7 || name.substr(16) != ".dtares") {
            continue;
        }
        char* end = nullptr;
        const std::uint64_t key =
            std::strtoull(name.substr(0, 16).c_str(), &end, 16);
        if (end == nullptr || *end != '\0') {
            continue;
        }
        std::error_code fe;
        const auto sz = de.file_size(fe);
        const auto mt = de.last_write_time(fe);
        if (!fe) {
            seen.push_back({key, sz, mt});
        }
    }
    std::sort(seen.begin(), seen.end(),
              [](const Seen& a, const Seen& b) { return a.mtime < b.mtime; });
    for (const Seen& s : seen) {
        entries_[s.key] = Entry{s.bytes, next_tick_++};
        total_bytes_ += s.bytes;
    }
}

std::string ResultCache::entry_path(std::uint64_t key) const {
    return dir_ + "/" + key_hex(key) + ".dtares";
}

void ResultCache::touch(std::uint64_t key) {
    entries_[key].tick = next_tick_++;
}

void ResultCache::drop(std::uint64_t key, bool corrupt) {
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        total_bytes_ -= std::min(total_bytes_, it->second.bytes);
        entries_.erase(it);
    }
    std::remove(entry_path(key).c_str());
    if (corrupt) {
        ++stats_.corrupt;
    }
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++stats_.misses;
        return std::nullopt;
    }
    std::vector<std::uint8_t> file;
    if (!read_file(entry_path(key), file)) {
        drop(key, /*corrupt=*/true);
        ++stats_.misses;
        return std::nullopt;
    }
    // Validate the whole envelope before trusting one byte of payload.
    const std::size_t header = sizeof kMagic + 4 + 8 + 4 + 8;
    bool ok = file.size() >= header &&
              std::equal(kMagic, kMagic + sizeof kMagic, file.begin());
    if (ok) {
        sim::StateSource s(file.data() + sizeof kMagic,
                           file.size() - sizeof kMagic);
        const std::uint32_t version = s.u32();
        const std::uint64_t stored_key = s.u64();
        const std::uint32_t crc = s.u32();
        const std::uint64_t len = s.u64();
        ok = version == kCacheFormatVersion && stored_key == key &&
             len == file.size() - header;
        if (ok) {
            const std::uint8_t* payload = file.data() + header;
            ok = sim::crc32(payload, static_cast<std::size_t>(len)) == crc;
            if (ok) {
                ++stats_.hits;
                touch(key);
                return std::string(reinterpret_cast<const char*>(payload),
                                   static_cast<std::size_t>(len));
            }
        }
    }
    drop(key, /*corrupt=*/true);
    ++stats_.misses;
    return std::nullopt;
}

bool ResultCache::store(std::uint64_t key, std::string_view payload) {
    sim::StateSink out;
    out.blob(kMagic, sizeof kMagic);
    out.u32(kCacheFormatVersion);
    out.u64(key);
    out.u32(sim::crc32(payload.data(), payload.size()));
    out.u64(payload.size());
    out.blob(payload.data(), payload.size());

    const std::string path = entry_path(key);
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        return false;
    }
    const bool wrote =
        std::fwrite(out.data().data(), 1, out.size(), f) == out.size();
    const bool ok = wrote && std::fclose(f) == 0;
    if (!wrote) {
        std::fclose(f);
    }
    if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        total_bytes_ -= std::min(total_bytes_, it->second.bytes);
    }
    entries_[key] = Entry{payload.size(), next_tick_++};
    total_bytes_ += payload.size();
    ++stats_.stores;
    evict_over_budget();
    return true;
}

void ResultCache::evict_over_budget() {
    if (max_bytes_ == 0) {
        return;
    }
    while (total_bytes_ > max_bytes_ && entries_.size() > 1) {
        auto oldest = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (it->second.tick < oldest->second.tick) {
                oldest = it;
            }
        }
        const std::uint64_t key = oldest->first;
        drop(key, /*corrupt=*/false);
        ++stats_.evictions;
    }
}

}  // namespace dta::serve
