/// \file cache.hpp
/// \brief On-disk content-addressed result cache for the sweep server.
///
/// Entries are keyed by a 64-bit job key (the structural config
/// fingerprint of core/machine.hpp with the shard count pinned to 1 —
/// results are byte-identical across host thread counts — salted with the
/// workload identity and parameters; see serve/job.hpp) and store the
/// run's raw JSON report bytes verbatim, so a cache hit can be
/// byte-compared against a fresh run.
///
/// One entry per file at `<dir>/<key as 16 hex digits>.dtares`:
///
///     magic "DTARES1\0" | u32 format version | u64 key
///     u32 CRC32(payload) | u64 payload length | payload
///
/// Writes are atomic (tmp + rename, the SnapshotWriter idiom), so a crash
/// mid-store never leaves a torn entry.  A corrupt or short entry is
/// treated as a miss, deleted, and counted — never served.  When a byte
/// budget is set, least-recently-used entries are evicted at store time
/// (recency is an in-memory tick, seeded from file mtimes at startup so
/// restarts approximate the prior order).
///
/// Not thread-safe; the Engine serialises access under its own mutex.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace dta::serve {

inline constexpr std::uint32_t kCacheFormatVersion = 1;

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;
    std::uint64_t corrupt = 0;  ///< entries dropped on failed validation
};

class ResultCache {
public:
    /// Opens (creating if needed) the cache under \p dir.  \p max_bytes
    /// bounds the payload total, 0 = unbounded.  Throws sim::SimError when
    /// the directory cannot be created.
    explicit ResultCache(std::string dir, std::uint64_t max_bytes = 0);

    /// The stored report for \p key, or nullopt (miss, or entry corrupt).
    [[nodiscard]] std::optional<std::string> lookup(std::uint64_t key);

    /// Stores \p payload under \p key (overwriting), then evicts LRU
    /// entries while over budget.  False on I/O failure (the run's reply
    /// is unaffected; the result just is not memoized).
    bool store(std::uint64_t key, std::string_view payload);

    [[nodiscard]] const CacheStats& stats() const { return stats_; }
    [[nodiscard]] std::uint64_t entry_count() const {
        return entries_.size();
    }
    [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }

    /// The entry file path for \p key (tests poke entries directly).
    [[nodiscard]] std::string entry_path(std::uint64_t key) const;

private:
    struct Entry {
        std::uint64_t bytes = 0;
        std::uint64_t tick = 0;  ///< larger = more recently used
    };

    void touch(std::uint64_t key);
    void drop(std::uint64_t key, bool corrupt);
    void evict_over_budget();

    std::string dir_;
    std::uint64_t max_bytes_;
    std::uint64_t next_tick_ = 1;
    std::uint64_t total_bytes_ = 0;
    std::map<std::uint64_t, Entry> entries_;
    CacheStats stats_;
};

}  // namespace dta::serve
