#include "serve/protocol.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace dta::serve {

namespace {

/// Reads exactly \p n bytes; 1 = ok, 0 = clean EOF before any byte,
/// -1 = error or EOF mid-read.
int read_exact(int fd, void* buf, std::size_t n) {
    auto* p = static_cast<std::uint8_t*>(buf);
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r == 0) {
            return got == 0 ? 0 : -1;
        }
        if (r < 0) {
            if (errno == EINTR) {
                continue;
            }
            return -1;
        }
        got += static_cast<std::size_t>(r);
    }
    return 1;
}

bool write_exact(int fd, const void* buf, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(buf);
    std::size_t put = 0;
    while (put < n) {
        const ssize_t r = ::write(fd, p + put, n - put);
        if (r < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        put += static_cast<std::size_t>(r);
    }
    return true;
}

}  // namespace

FrameStatus read_frame(int fd, std::string& out) {
    std::uint8_t hdr[4];
    const int h = read_exact(fd, hdr, sizeof hdr);
    if (h == 0) {
        return FrameStatus::kEof;
    }
    if (h < 0) {
        return FrameStatus::kError;
    }
    const std::uint32_t len = static_cast<std::uint32_t>(hdr[0]) |
                              (static_cast<std::uint32_t>(hdr[1]) << 8) |
                              (static_cast<std::uint32_t>(hdr[2]) << 16) |
                              (static_cast<std::uint32_t>(hdr[3]) << 24);
    if (len > kMaxFrameBytes) {
        return FrameStatus::kOversized;
    }
    out.resize(len);
    if (len > 0 && read_exact(fd, out.data(), len) != 1) {
        return FrameStatus::kError;
    }
    return FrameStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
    if (payload.size() > kMaxFrameBytes) {
        return false;
    }
    const auto len = static_cast<std::uint32_t>(payload.size());
    const std::uint8_t hdr[4] = {
        static_cast<std::uint8_t>(len),
        static_cast<std::uint8_t>(len >> 8),
        static_cast<std::uint8_t>(len >> 16),
        static_cast<std::uint8_t>(len >> 24),
    };
    return write_exact(fd, hdr, sizeof hdr) &&
           write_exact(fd, payload.data(), payload.size());
}

int connect_unix(const std::string& path, int retry_ms, std::string& error) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long (" + std::to_string(path.size()) +
                " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) +
                ")";
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(retry_ms);
    int last_errno = 0;
    do {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            error = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr) == 0) {
            return fd;
        }
        last_errno = errno;
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    } while (std::chrono::steady_clock::now() < deadline);
    error = "cannot connect to '" + path +
            "': " + std::strerror(last_errno);
    return -1;
}

}  // namespace dta::serve
