#include "sim/snapshot.hpp"

#include <array>
#include <cstdio>

namespace dta::sim {

namespace {

constexpr char kMagic[8] = {'D', 'T', 'A', 'S', 'N', 'A', 'P', '1'};

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
        }
        t[i] = c;
    }
    return t;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < size; ++i) {
        c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    return c ^ 0xffffffffu;
}

std::uint64_t fnv1a64(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

StateSink& SnapshotWriter::section(const std::string& name) {
    for (const auto& [n, sink] : sections_) {
        DTA_SIM_REQUIRE(n != name,
                        "duplicate snapshot section '" + name + "'");
    }
    sections_.emplace_back(name, StateSink{});
    return sections_.back().second;
}

void SnapshotWriter::write(const std::string& path) const {
    StateSink out;
    out.blob(kMagic, sizeof(kMagic));
    out.u32(kSnapshotFormatVersion);
    out.u64(fingerprint_);
    out.u64(cycle_);
    out.u32(static_cast<std::uint32_t>(sections_.size()));
    for (const auto& [name, sink] : sections_) {
        out.str(name);
        out.u64(sink.size());
        out.u32(crc32(sink.data().data(), sink.size()));
        out.blob(sink.data().data(), sink.size());
    }
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    DTA_SIM_REQUIRE(f != nullptr,
                    "cannot open '" + tmp + "' for snapshot write");
    const std::size_t wrote =
        std::fwrite(out.data().data(), 1, out.size(), f);
    const bool ok = wrote == out.size() && std::fclose(f) == 0;
    if (!ok) {
        std::remove(tmp.c_str());
        DTA_SIM_ERROR("short write while saving snapshot '" + path + "'");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        DTA_SIM_ERROR("cannot move snapshot into place at '" + path + "'");
    }
}

SnapshotReader::SnapshotReader(const std::string& path) : path_(path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    DTA_SIM_REQUIRE(f != nullptr, "cannot open snapshot '" + path + "'");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size > 0) {
        file_.resize(static_cast<std::size_t>(size));
        if (std::fread(file_.data(), 1, file_.size(), f) != file_.size()) {
            std::fclose(f);
            DTA_SIM_ERROR("cannot read snapshot '" + path + "'");
        }
    }
    std::fclose(f);

    StateSource s(file_.data(), file_.size());
    DTA_SIM_REQUIRE(s.remaining() >= sizeof(kMagic),
                    "'" + path + "' is not a DTA snapshot (too short)");
    char magic[8];
    s.blob(magic, sizeof(magic));
    DTA_SIM_REQUIRE(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                    "'" + path + "' is not a DTA snapshot (bad magic)");
    version_ = s.u32();
    DTA_SIM_REQUIRE(
        version_ == kSnapshotFormatVersion,
        "snapshot '" + path + "' has format version " +
            std::to_string(version_) + " but this build reads version " +
            std::to_string(kSnapshotFormatVersion));
    fingerprint_ = s.u64();
    cycle_ = s.u64();
    const std::uint32_t count = s.u32();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::string name = s.str();
        const std::uint64_t len = s.u64();
        const std::uint32_t crc = s.u32();
        DTA_SIM_REQUIRE(s.remaining() >= len,
                        "snapshot '" + path + "' truncated in section '" +
                            name + "'");
        const std::size_t off = file_.size() - s.remaining();
        DTA_SIM_REQUIRE(
            crc32(file_.data() + off, static_cast<std::size_t>(len)) == crc,
            "snapshot '" + path + "' section '" + name +
                "' fails its CRC check (corrupted file)");
        const bool fresh =
            sections_
                .emplace(name,
                         std::make_pair(off, static_cast<std::size_t>(len)))
                .second;
        DTA_SIM_REQUIRE(fresh, "snapshot '" + path +
                                   "' has duplicate section '" + name + "'");
        s.skip(static_cast<std::size_t>(len));
    }
    s.finish();
}

StateSource SnapshotReader::section(const std::string& name) const {
    const auto it = sections_.find(name);
    DTA_SIM_REQUIRE(it != sections_.end(),
                    "snapshot '" + path_ + "' has no section '" + name +
                        "' (machine layout mismatch)");
    return StateSource(file_.data() + it->second.first, it->second.second);
}

std::vector<std::string> SnapshotReader::section_names() const {
    std::vector<std::string> names;
    names.reserve(sections_.size());
    for (const auto& [name, span] : sections_) {
        names.push_back(name);
    }
    return names;
}

}  // namespace dta::sim
