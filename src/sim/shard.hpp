/// \file shard.hpp
/// \brief One host thread's slice of the machine: a contiguous group of
///        components ticked by a private clock between epoch barriers.
///
/// A Shard owns an ordered component list (the same relative order those
/// components have in the single-threaded scheduler list) plus the inbound
/// cross-shard channels feeding it.  Between barriers it free-runs — tick,
/// quiescence check, fingerprint-gated idle fast-forward — exactly like the
/// single-threaded Machine::run() loop, but bounded by the epoch horizon.
///
/// Accounting invariant: every cycle in [0, acct_next_) has been accounted
/// exactly once on every component, either by tick() or by skip().  The
/// epoch runner relies on this to make the merged RunResult bit-identical
/// to the single-threaded reference: a shard that goes quiescent *pauses*
/// (freezes acct_next_) instead of burning idle cycles past the eventual
/// global end, and is caught up to the exact end cycle once that end is
/// known (see EpochRunner).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/channel.hpp"
#include "sim/component.hpp"
#include "sim/prof.hpp"
#include "sim/types.hpp"
#include "sim/wheel.hpp"

namespace dta::sim {

/// A schedulable slice of the machine.
class Shard {
public:
    /// Machine-provided callbacks, so the shard stays generic.
    struct Hooks {
        /// Shard-local activity fingerprint (same counters the
        /// single-threaded loop sums machine-wide; the coordinator adds the
        /// per-shard values to recover the global fingerprint).
        std::function<std::uint64_t()> fingerprint;
        /// Gauge sampler; invoked at every multiple of sample_interval the
        /// shard accounts (null when metrics are off).
        std::function<void(Cycle)> sample;
        Cycle sample_interval = 0;  ///< 0 disables sampling
        /// Shard-local invariant audit (sim/audit.hpp); invoked at every
        /// multiple of audit_interval the shard ticks.  Not replayed over
        /// fast-forwarded spans: no component state changes on a skipped
        /// cycle, so an audit that passed when the span began would pass at
        /// every cycle inside it.
        std::function<void(Cycle)> audit;
        Cycle audit_interval = 0;  ///< 0 disables auditing
        /// Progress reporter; invoked once per run_until call (i.e. about
        /// once per epoch) with the shard's clock.  The callee does its own
        /// interval thresholding and must touch only shard-local state.
        std::function<void(Cycle)> progress;
        bool fast_forward = true;
        /// Host-time profiling buffer (sim/prof.hpp); null = profiling off
        /// (every site then costs one null check).  Strictly shard-local:
        /// only this shard's host thread writes it mid-run.
        ProfBuffer* prof = nullptr;
    };

    Shard(std::string name, std::vector<Component*> components,
          std::vector<ChannelBase*> inbound, Hooks hooks)
        : name_(std::move(name)),
          components_(std::move(components)),
          inbound_(std::move(inbound)),
          hooks_(std::move(hooks)) {}

    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    /// Free-runs the shard up to (exclusive) \p bound, the next epoch
    /// boundary.  Returns early when the shard goes quiescent (pauses).
    void run_until(Cycle bound);

    /// Accounts the remaining cycles [acct_next_, to) by skipping — called
    /// by the coordinator once the global end cycle is known.  Valid only
    /// while the shard is quiescent (guaranteed when paused).
    void catch_up(Cycle to);

    /// Switches run_until to the event-driven scheduler (sim/wheel.hpp).
    /// \p inbound_consumers maps each inbound channel (same order as the
    /// ctor's inbound list) to the scheduler index of its consuming router;
    /// at every window entry the oldest entry's drain stamp re-arms that
    /// router, which is what replaces "tick every cycle so the router polls
    /// its channel".  Call once, before the first run_until.
    void enable_wheel(std::vector<std::uint32_t> inbound_consumers);
    /// The shard's scheduler (null when running the dense loop) — the
    /// Machine binds component wake hooks to it, and samples it.
    [[nodiscard]] WheelScheduler* wheel() const { return wheel_.get(); }

    /// Earliest cycle at which this shard could next act, as visible at the
    /// epoch barrier: the wheel's earliest entry (the shard's own clock
    /// under the dense loop or degraded dense mode), folded with the oldest
    /// inbound-channel drain stamp; kIdleForever when paused or stuck.  The
    /// coordinator takes the minimum over shards to stretch the next epoch
    /// bound across globally-idle stretches (sim/epoch.cpp).
    [[nodiscard]] Cycle lookahead_hint() const;

    /// Next unaccounted cycle; the shard's private clock.
    [[nodiscard]] Cycle acct_next() const { return acct_next_; }
    /// Paused: quiescent with empty inbound channels; awaits wake().
    [[nodiscard]] bool paused() const { return paused_; }
    /// Stuck: non-quiescent but idle forever absent cross-shard input.
    [[nodiscard]] bool stuck() const { return stuck_; }
    void wake() { paused_ = false; }

    /// Resets the private clock after a snapshot restore: \p at is the next
    /// unaccounted cycle, \p ticked / \p skipped the host-effort split so
    /// far (restored so merged RunResult counters stay exact).  The
    /// fingerprint gate re-arms, exactly as at the start of a fresh run.
    void restore_clock(Cycle at, Cycle ticked, Cycle skipped) {
        acct_next_ = at;
        ticked_ = ticked;
        skipped_ = skipped;
        paused_ = false;
        stuck_ = false;
        prev_fp_ = ~0ull;
    }

    [[nodiscard]] bool inbound_empty() const {
        for (const ChannelBase* ch : inbound_) {
            if (!ch->empty()) {
                return false;
            }
        }
        return true;
    }

    [[nodiscard]] std::uint64_t fingerprint() const {
        return hooks_.fingerprint ? hooks_.fingerprint() : 0;
    }

    [[nodiscard]] const std::string& name() const { return name_; }
    [[nodiscard]] const std::vector<Component*>& components() const {
        return components_;
    }
    /// The profiling buffer (null when profiling is off); the epoch runner
    /// charges barrier waits and the shard's wall clock through it.
    [[nodiscard]] ProfBuffer* prof() const { return hooks_.prof; }
    /// Cycles advanced by ticking / by skipping (host-effort split; the
    /// simulated results are identical either way).
    [[nodiscard]] Cycle cycles_ticked() const { return ticked_; }
    [[nodiscard]] Cycle cycles_skipped() const { return skipped_; }
    /// The epoch the shard's clock is in (diagnostics).
    [[nodiscard]] Cycle epoch_of(Cycle epoch_len) const {
        return epoch_len == 0 || acct_next_ == 0
                   ? 0
                   : (acct_next_ - 1) / epoch_len;
    }

private:
    void fast_forward_span(Cycle from, Cycle to);
    void run_until_wheel(Cycle bound);
    /// Advances the clock over the inactive span [from, to): state is
    /// frozen, so only the dense loop's per-cycle side effects (gauge
    /// samples) are replayed; component skip() bookkeeping stays lazy.
    void wheel_span(Cycle from, Cycle to);
    [[nodiscard]] bool all_quiescent() const;

    std::string name_;
    std::vector<Component*> components_;
    std::vector<ChannelBase*> inbound_;
    Hooks hooks_;

    std::unique_ptr<WheelScheduler> wheel_;  ///< null = dense loop
    std::vector<std::uint32_t> inbound_consumers_;

    Cycle acct_next_ = 0;
    bool paused_ = false;
    bool stuck_ = false;
    std::uint64_t prev_fp_ = ~0ull;  ///< gate: last ticked cycle's fingerprint
    Cycle ticked_ = 0;
    Cycle skipped_ = 0;
};

}  // namespace dta::sim
