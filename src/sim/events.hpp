/// \file events.hpp
/// \brief Thread-lifecycle event log: compact per-shard ring of fixed-size
///        event structs, deterministically mergeable like metrics.
///
/// Where the metrics layer (PR 1) aggregates — histograms and counters that
/// say *how much* — the event log records *which*: every DTA thread's
/// lifecycle as a sequence of timestamped events (FALLOC issue, frame grant,
/// each incoming frame store with its producer, ready, dispatch, phase
/// boundaries, DMA issue/complete, Wait-for-DMA suspend/resume, STOP, frame
/// free).  The offline critical-path analyzer (stats/critpath) reconstructs
/// the dynamic dataflow DAG from this log alone.
///
/// Collection follows the PR-1 discipline: components hold a raw
/// `EventLog*` resolved once at attach time, nullptr when collection is
/// off, so every instrumented hot path costs exactly one cached-pointer
/// null test when disabled.  Threads are identified by a run-unique 64-bit
/// id assigned by the owning LSE at frame-allocation time (slot numbers are
/// reused; uids are not), so producer/consumer edges survive slot reuse and
/// virtual-frame materialization.  A uid is (pe << 32) | sequence and stays
/// below 2^48 on any machine event collection admits (<= 65535 PEs), which
/// lets scheduler messages carry it in the spare upper bits of an existing
/// payload word instead of growing the hot packet structs — see
/// sched::pack_carried_uid.
///
/// Storage is a ring of fixed-size chunks: pushes append into the current
/// chunk and a full chunk links a fresh one, so logging never moves
/// previously written events and never triggers a large reallocation spike
/// mid-run.  Each shard owns a private log; after the run the Machine
/// concatenates the shard logs and canonicalizes by a stable sort on
/// (cycle, ordinal) — each (cycle, ordinal) pair is emitted by exactly one
/// component living on exactly one shard, so within a group the concatenated
/// order is already the emission order and the stable sort reproduces the
/// single-threaded log byte for byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"

namespace dta::sim {

class StateSink;
class StateSource;

/// What happened.  One enumerator per lifecycle transition; the payload
/// convention for `thread` / `other` / `arg` / `aux` is documented per kind.
enum class EventKind : std::uint8_t {
    /// A running thread executed FALLOC/FALLOCN.  thread = issuer uid,
    /// arg = child thread-code id, aux = destination register rd.
    kFallocIssue,
    /// An LSE granted a frame (physical slot or virtual frame).
    /// thread = new uid, other = parent uid (0 for the entry frame),
    /// arg = pack_grant(code, virtual), aux = requester's rd.
    kFrameGrant,
    /// A producer executed STORE/STOREX into another frame.  thread =
    /// producer uid, arg = pack_store_dest(dest global PE, dest slot,
    /// word offset), aux = 1 if the destination is remote.
    kStoreIssue,
    /// A frame store arrived at the destination LSE and decremented the
    /// synchronization counter.  thread = consumer uid, other = producer
    /// uid, arg = pack_store_dest(consumer global PE, slot as issued,
    /// word offset), aux = min(SC remaining after decrement, 255).
    kFrameStore,
    /// A frame became ready for dispatch.  thread = uid, arg = code id,
    /// aux = 0 for the initial SC-reached-zero (or SC==0 grant) transition,
    /// 1 for a Wait-for-DMA resume.
    kReady,
    /// The SPU bound the thread and began executing.  thread = uid,
    /// arg = pack_grant(code, 0) | slot<<40, aux = 1 when resuming from
    /// Wait-for-DMA.
    kDispatch,
    /// The SPU crossed a code-block boundary inside a bound thread.
    /// thread = uid, arg = aux = the new block (isa::CodeBlock value).
    kPhase,
    /// The thread programmed an MFC DMA command.  thread = uid,
    /// arg = transfer bytes, aux = tag.
    kDmaIssue,
    /// The MFC signalled tag completion.  thread = owner uid, aux = tag.
    kDmaComplete,
    /// DMAWAIT found outstanding tags and the thread entered Wait-for-DMA
    /// (frame suspended, SPU freed).  thread = uid.
    kSuspend,
    /// The thread executed STOP.  thread = uid.
    kStop,
    /// The LSE released the frame slot.  thread = uid.
    kFree,
    /// A remote frame store crossed a node boundary (router bridge hop).
    /// thread = producer uid, arg = destination global PE.  Emitted by
    /// NodeRouter with ordinal = num_pes + node.
    kLinkHop,
};
inline constexpr std::size_t kNumEventKinds = 13;

[[nodiscard]] std::string_view event_kind_name(EventKind k);
/// Inverse of event_kind_name; returns false for unknown mnemonics.
[[nodiscard]] bool event_kind_from_name(std::string_view name, EventKind& out);

/// One lifecycle event.  48 bytes; trivially copyable.
struct Event {
    Cycle cycle = 0;            ///< stamp from the emitting component's clock
    std::uint64_t thread = 0;   ///< subject thread uid (see EventKind docs)
    std::uint64_t other = 0;    ///< related uid (parent / producer) or 0
    std::uint64_t arg = 0;      ///< kind-specific payload
    /// Cumulative memory-stall cycles of the emitting SPU at emission time
    /// (Breakdown kMemStall).  Only SPU-context events carry it; the
    /// analyzer uses deltas between consecutive events of one bound segment
    /// to split the segment into compute vs. blocked-on-memory exactly.
    std::uint64_t stall = 0;
    std::uint32_t ordinal = 0;  ///< emitting component (global PE id, or
                                ///< num_pes + node for routers)
    EventKind kind = EventKind::kFallocIssue;
    std::uint8_t aux = 0;       ///< kind-specific small payload
};

// Payload packing helpers (kept here so emitters and the analyzer cannot
// drift apart).
[[nodiscard]] inline std::uint64_t pack_store_dest(std::uint32_t pe,
                                                   std::uint32_t slot,
                                                   std::uint32_t word_off) {
    return (static_cast<std::uint64_t>(word_off) << 48) |
           (static_cast<std::uint64_t>(slot & 0xffffffffu) << 16) |
           (pe & 0xffffu);
}
[[nodiscard]] inline std::uint32_t store_dest_pe(std::uint64_t a) {
    return static_cast<std::uint32_t>(a & 0xffffu);
}
[[nodiscard]] inline std::uint32_t store_dest_slot(std::uint64_t a) {
    return static_cast<std::uint32_t>((a >> 16) & 0xffffffffu);
}
[[nodiscard]] inline std::uint32_t store_dest_off(std::uint64_t a) {
    return static_cast<std::uint32_t>(a >> 48);
}
[[nodiscard]] inline std::uint64_t pack_grant(std::uint32_t code,
                                              bool is_virtual) {
    return code | (is_virtual ? (1ull << 32) : 0ull);
}
[[nodiscard]] inline std::uint32_t grant_code(std::uint64_t a) {
    return static_cast<std::uint32_t>(a & 0xffffffffu);
}
[[nodiscard]] inline bool grant_virtual(std::uint64_t a) {
    return (a & (1ull << 32)) != 0;
}

/// Append-only chunked event ring.  Copyable (how a finished run's events
/// travel inside RunResult).
class EventLog {
public:
    static constexpr std::size_t kChunkEvents = 4096;

    void push(const Event& e) {
        if (chunks_.empty() || chunks_.back().size() == kChunkEvents) {
            chunks_.emplace_back();
            chunks_.back().reserve(kChunkEvents);
        }
        chunks_.back().push_back(e);
        ++size_;
    }

    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    template <typename F>
    void for_each(F&& f) const {
        for (const auto& c : chunks_) {
            for (const Event& e : c) {
                f(e);
            }
        }
    }

    /// All events in push order, flattened.
    [[nodiscard]] std::vector<Event> flatten() const;

    /// Concatenates \p other's events after this log's (shard merge step 1).
    void append_from(const EventLog& other);

    /// Stable-sorts the log by (cycle, ordinal) into one chunk.  After
    /// appending every shard's log, this reproduces the single-threaded
    /// emission order exactly (see file comment).
    void canonicalize();

    /// Snapshot every event in push order, field by field (Event has
    /// padding, so no struct memcpy).
    void save_state(StateSink& s) const;
    /// Inverse of save_state into an empty log.
    void load_state(StateSource& s);

private:
    std::vector<std::vector<Event>> chunks_;
    std::size_t size_ = 0;
};

/// A parsed event file: the log plus the run framing the analyzer needs.
struct EventFile {
    Cycle cycles = 0;                     ///< end-to-end run cycles
    std::uint32_t pes = 0;                ///< total PE count
    std::vector<std::string> code_names;  ///< thread-code id -> name
    std::vector<Event> events;            ///< canonical (cycle, ordinal) order
};

/// Writes the DTAEV1 text format: a small header (cycles, PE count, thread
/// code names) followed by one line per event.  Text keeps the format
/// diff-able and byte-identical across platforms, which the determinism
/// tests compare directly.
void write_events(std::ostream& out, const EventLog& log, Cycle cycles,
                  std::uint32_t pes,
                  const std::vector<std::string>& code_names);

/// Parses DTAEV1; throws sim::SimError on malformed input.
[[nodiscard]] EventFile read_events(std::istream& in);

}  // namespace dta::sim
