/// \file snapshot.hpp
/// \brief Versioned, self-describing binary snapshot container plus the
///        byte-level reader/writer every component serialises through.
///
/// This is the third pillar of the component contract (sim/component.hpp):
/// next to tick/quiescence/horizon, every stateful component implements
/// `save_state(StateSink&)` / `load_state(StateSource&)`.  The Machine
/// collects one *section per component* (keyed by the component's unique
/// name) into a snapshot file:
///
///     magic "DTASNAP1" | u32 format version | u64 config fingerprint
///     u64 snapshot cycle | u32 section count
///     per section: name | u64 payload length | u32 CRC32 | payload
///
/// Everything is little-endian and written field by field — never by
/// memcpy'ing structs — so padding bytes and host endianness can not leak
/// into the format.  Each section carries its own CRC32; the reader
/// validates magic, version and CRCs up front and reports problems as
/// clean sim::SimError one-liners (a truncated or corrupted snapshot is a
/// user-input problem, not a simulator bug).  The config fingerprint is an
/// FNV-1a 64 hash over the serialised MachineConfig echo (plus the loaded
/// program), so restoring into a structurally different machine fails fast
/// with both fingerprints in the message.
///
/// Determinism: a snapshot is a pure function of simulated history.  All
/// unordered containers are serialised in a canonical (sorted) order by
/// their owners, so saving twice at the same cycle yields byte-identical
/// files.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/types.hpp"

namespace dta::sim {

/// Current snapshot format version.  Bump on any incompatible layout
/// change; the reader rejects mismatches with a clean SimError (see
/// docs/CHECKPOINT.md for the versioning policy).
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over \p size bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

/// FNV-1a 64-bit hash (config fingerprints).
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t size);

/// Little-endian byte-stream writer components serialise into.
class StateSink {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }
    void u32(std::uint32_t v) {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }
    void u64(std::uint64_t v) {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void flag(bool v) { u8(v ? 1 : 0); }
    void blob(const void* p, std::size_t n) {
        if (n == 0) {
            return;
        }
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }
    void str(const std::string& s) {
        u32(static_cast<std::uint32_t>(s.size()));
        blob(s.data(), s.size());
    }

    [[nodiscard]] const std::vector<std::uint8_t>& data() const {
        return buf_;
    }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Little-endian byte-stream reader over one snapshot section.  Underflow
/// and trailing bytes are both reported as SimError: a section that does
/// not parse exactly means the snapshot and the simulator disagree about
/// the component's layout.
class StateSource {
public:
    StateSource(const std::uint8_t* data, std::size_t size)
        : p_(data), size_(size) {}

    [[nodiscard]] std::uint8_t u8() {
        need(1);
        return p_[off_++];
    }
    [[nodiscard]] std::uint16_t u16() {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (static_cast<std::uint16_t>(u8())
                                           << 8));
    }
    [[nodiscard]] std::uint32_t u32() {
        const std::uint32_t lo = u16();
        return lo | (static_cast<std::uint32_t>(u16()) << 16);
    }
    [[nodiscard]] std::uint64_t u64() {
        const std::uint64_t lo = u32();
        return lo | (static_cast<std::uint64_t>(u32()) << 32);
    }
    [[nodiscard]] std::int64_t i64() {
        return static_cast<std::int64_t>(u64());
    }
    [[nodiscard]] bool flag() { return u8() != 0; }
    void blob(void* p, std::size_t n) {
        if (n == 0) {
            return;
        }
        need(n);
        std::memcpy(p, p_ + off_, n);
        off_ += n;
    }
    [[nodiscard]] std::string str() {
        const std::uint32_t n = u32();
        need(n);
        std::string s(reinterpret_cast<const char*>(p_ + off_), n);
        off_ += n;
        return s;
    }

    void skip(std::size_t n) {
        need(n);
        off_ += n;
    }

    [[nodiscard]] std::size_t remaining() const { return size_ - off_; }
    /// Every loader calls this last: a partially-consumed section means
    /// layout drift between writer and reader.
    void finish() const {
        DTA_SIM_REQUIRE(off_ == size_,
                        "snapshot section has " +
                            std::to_string(size_ - off_) +
                            " unconsumed bytes (format drift)");
    }

private:
    void need(std::size_t n) const {
        DTA_SIM_REQUIRE(off_ + n <= size_,
                        "snapshot section truncated (wanted " +
                            std::to_string(n) + " bytes, " +
                            std::to_string(size_ - off_) + " left)");
    }

    const std::uint8_t* p_;
    std::size_t size_;
    std::size_t off_ = 0;
};

/// Serialises a sized sequence: u64 count, then \p f per element.
template <typename C, typename F>
void save_seq(StateSink& s, const C& c, F&& f) {
    s.u64(static_cast<std::uint64_t>(c.size()));
    for (const auto& e : c) {
        f(s, e);
    }
}

/// Inverse of save_seq into any push_back-able container.
template <typename C, typename F>
void load_seq(StateSource& s, C& c, F&& f) {
    c.clear();
    const std::uint64_t n = s.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        typename C::value_type e{};
        f(s, e);
        c.push_back(std::move(e));
    }
}

/// Accumulates named sections and writes the container file atomically
/// (tmp + rename), so a crash mid-write never leaves a torn snapshot at
/// the target path.
class SnapshotWriter {
public:
    SnapshotWriter(std::uint64_t config_fingerprint, Cycle cycle)
        : fingerprint_(config_fingerprint), cycle_(cycle) {}

    /// Starts a new section; serialise into the returned sink.  Section
    /// names must be unique (the component-name invariant).
    [[nodiscard]] StateSink& section(const std::string& name);

    /// Finalises and writes the file; throws SimError on I/O failure.
    void write(const std::string& path) const;

private:
    std::uint64_t fingerprint_;
    Cycle cycle_;
    std::vector<std::pair<std::string, StateSink>> sections_;
};

/// Parses and validates a snapshot file (magic, version, per-section
/// CRCs); every failure is a clean SimError naming the file.
class SnapshotReader {
public:
    explicit SnapshotReader(const std::string& path);

    [[nodiscard]] std::uint64_t config_fingerprint() const {
        return fingerprint_;
    }
    [[nodiscard]] Cycle cycle() const { return cycle_; }
    [[nodiscard]] std::uint32_t version() const { return version_; }

    [[nodiscard]] bool has_section(const std::string& name) const {
        return sections_.find(name) != sections_.end();
    }
    /// A reader over section \p name; throws SimError when absent.
    [[nodiscard]] StateSource section(const std::string& name) const;
    /// All section names, sorted (diagnostics / tests).
    [[nodiscard]] std::vector<std::string> section_names() const;

private:
    std::string path_;
    std::vector<std::uint8_t> file_;
    std::uint64_t fingerprint_ = 0;
    Cycle cycle_ = 0;
    std::uint32_t version_ = 0;
    std::map<std::string, std::pair<std::size_t, std::size_t>>
        sections_;  ///< name -> (offset, length) into file_
};

}  // namespace dta::sim
