// log.hpp is header-only; this translation unit exists so the dta_sim
// library always has at least one object file and to pin the vtable-free
// Logger's inline definitions into one place for faster incremental builds.
#include "sim/log.hpp"
