#include "sim/telemetry.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "sim/check.hpp"

namespace dta::sim {

TelemetrySampler::TelemetrySampler(const TelemetryConfig& cfg) : cfg_(cfg) {
    DTA_SIM_REQUIRE(cfg_.interval > 0, "telemetry interval must be positive");
    DTA_SIM_REQUIRE(cfg_.ring_capacity > 0,
                    "telemetry ring capacity must be positive");
    ring_.resize(cfg_.ring_capacity);
    if (!cfg_.stream_path.empty()) {
        // A FIFO open blocks until the reader side opens — exactly the
        // hand-off `dta_run --telemetry-fifo p & dta_top p` wants.
        stream_ = std::fopen(cfg_.stream_path.c_str(), "w");
        DTA_SIM_REQUIRE(stream_ != nullptr, "cannot open telemetry stream '" +
                                                cfg_.stream_path + "'");
    }
}

TelemetrySampler::~TelemetrySampler() {
    if (stream_ != nullptr) {
        std::fclose(stream_);
    }
}

void TelemetrySampler::record(const TelemetryFrame& frame, bool quiescent) {
    latest_ = frame;
    ++captured_;
    if (size_ == ring_.size()) {
        ring_[head_] = frame;  // overwrite the oldest
        head_ = (head_ + 1) % ring_.size();
        ++dropped_;
    } else {
        ring_[(head_ + size_) % ring_.size()] = frame;
        ++size_;
    }
    if (cfg_.watchdog_samples != 0 && !stalled_) {
        watchdog(frame, quiescent);
    }
    if (stream_ != nullptr) {
        const std::string line = ndjson_line(frame);
        std::fwrite(line.data(), 1, line.size(), stream_);
        std::fflush(stream_);  // the reader tails a live run
    }
}

void TelemetrySampler::watchdog(const TelemetryFrame& frame, bool quiescent) {
    if (frame.activity_fp != last_fp_ || quiescent) {
        last_fp_ = frame.activity_fp;
        last_progress_cycle_ = frame.cycle;
        frozen_samples_ = 0;
        return;
    }
    ++frozen_samples_;
    if (frozen_samples_ < cfg_.watchdog_samples) {
        return;
    }
    stalled_ = true;
    stall_.cycle = frame.cycle;
    stall_.samples = frozen_samples_;
    stall_.stalled_cycles = frame.cycle - last_progress_cycle_;
    if (stall_info_) {
        stall_info_(stall_);
    }
    std::FILE* out = diag_ != nullptr ? diag_ : stderr;
    std::fprintf(out,
                 "telemetry watchdog: no retirement progress for %" PRIu32
                 " samples (%" PRIu64 " cycles) at cycle %" PRIu64
                 "; stuck: %s; queues: mfc=%" PRIu32 " mem=%" PRIu32
                 " noc=%" PRIu32 " ready=%" PRIu32 " waitdma=%" PRIu32 "%s%s\n",
                 stall_.samples, stall_.stalled_cycles, stall_.cycle,
                 stall_.components.empty() ? "(none)"
                                          : stall_.components.c_str(),
                 frame.mfc_commands, frame.mem_queue, frame.noc_pending,
                 frame.threads_ready, frame.threads_waitdma,
                 stall_.replay.empty() ? "" : "\nreplay: ",
                 stall_.replay.c_str());
    std::fflush(out);
    if (stream_ != nullptr) {
        const std::string line = ndjson_stall_line(stall_);
        std::fwrite(line.data(), 1, line.size(), stream_);
        std::fflush(stream_);
    }
}

TelemetryResult TelemetrySampler::result() const {
    TelemetryResult r;
    r.enabled = true;
    r.interval = cfg_.interval;
    r.frames.reserve(size_);
    for (std::size_t i = 0; i < size_; ++i) {
        r.frames.push_back(ring_[(head_ + i) % ring_.size()]);
    }
    r.captured = captured_;
    r.dropped = dropped_;
    r.stalled = stalled_;
    r.stall = stall_;
    return r;
}

std::string TelemetrySampler::ndjson_line(const TelemetryFrame& f) {
    char buf[512];
    const int n = std::snprintf(
        buf, sizeof buf,
        "{\"type\":\"frame\",\"cycle\":%" PRIu64 ",\"running\":%" PRIu32
        ",\"ready\":%" PRIu32 ",\"waitdma\":%" PRIu32
        ",\"frames_live\":%" PRIu32 ",\"mfc_commands\":%" PRIu32
        ",\"dma_bytes\":%" PRIu64 ",\"mem_queue\":%" PRIu32
        ",\"noc_pending\":%" PRIu32 ",\"instrs_retired\":%" PRIu64
        ",\"host_ns\":%" PRIu64 ",\"wheel_armed\":%" PRIu64
        ",\"wheel_pops\":%" PRIu64 "}\n",
        f.cycle, f.pes_running, f.threads_ready, f.threads_waitdma,
        f.frames_live, f.mfc_commands, f.dma_bytes, f.mem_queue,
        f.noc_pending, f.instrs_retired, f.host_ns, f.wheel_armed,
        f.wheel_pops);
    DTA_CHECK(n > 0 && static_cast<std::size_t>(n) < sizeof buf);
    return std::string(buf, static_cast<std::size_t>(n));
}

std::string TelemetrySampler::ndjson_stall_line(const TelemetryStall& s) {
    // Component names and the replay hint are free-form text: escape the
    // characters JSON cares about.
    const auto esc = [](const std::string& in) {
        std::string out;
        out.reserve(in.size());
        for (const char c : in) {
            if (c == '"' || c == '\\') {
                out += '\\';
                out += c;
            } else if (c == '\n') {
                out += "\\n";
            } else {
                out += c;
            }
        }
        return out;
    };
    std::string line = "{\"type\":\"stall\",\"cycle\":";
    line += std::to_string(s.cycle);
    line += ",\"samples\":";
    line += std::to_string(s.samples);
    line += ",\"stalled_cycles\":";
    line += std::to_string(s.stalled_cycles);
    line += ",\"components\":\"";
    line += esc(s.components);
    line += "\",\"replay\":\"";
    line += esc(s.replay);
    line += "\"}\n";
    return line;
}

}  // namespace dta::sim
