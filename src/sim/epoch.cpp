#include "sim/epoch.hpp"

#include <algorithm>
#include <barrier>
#include <thread>
#include <utility>

#include "sim/check.hpp"

namespace dta::sim {

EpochRunner::EpochRunner(std::vector<Shard*> shards, Config cfg, FailFn fail)
    : shards_(std::move(shards)), cfg_(cfg), fail_(std::move(fail)) {
    DTA_SIM_REQUIRE(!shards_.empty(), "epoch runner needs at least one shard");
    DTA_SIM_REQUIRE(cfg_.epoch > 0, "epoch length must be at least one cycle");
    DTA_SIM_REQUIRE(static_cast<bool>(fail_), "epoch runner needs a fail hook");
}

Cycle EpochRunner::next_bound(Cycle from, Cycle target) const {
    Cycle nb = std::min(target, cfg_.max_cycles);
    if (cfg_.checkpoint_every > 0) {
        const Cycle cut =
            (from / cfg_.checkpoint_every + 1) * cfg_.checkpoint_every;
        nb = std::min(nb, cut);
    }
    if (cfg_.sample_every > 0) {
        // Sample cuts land at k * sample_every + 1: the barrier then sees
        // the post-tick state of sample cycle k * sample_every.
        const Cycle cut =
            ((from + cfg_.sample_every - 1) / cfg_.sample_every) *
                cfg_.sample_every +
            1;
        nb = std::min(nb, cut);
    }
    if (cfg_.stop_at > from) {
        nb = std::min(nb, cfg_.stop_at);
    }
    return nb;
}

void EpochRunner::record_error() noexcept {
    const std::lock_guard<std::mutex> lock(err_mu_);
    if (!error_) {
        error_ = std::current_exception();
    }
}

template <typename Barrier>
void EpochRunner::participate(std::size_t index, Barrier& barrier) {
    Shard* shard = shards_[index];
    ProfBuffer* const pb = shard->prof();
    const std::uint64_t wall0 = pb != nullptr ? prof_now_ns() : 0;
    while (true) {
        switch (phase_) {
            case Phase::kRun:
                try {
                    shard->run_until(bound_);
                } catch (...) {
                    record_error();
                }
                break;
            case Phase::kCatchUp:
                try {
                    shard->catch_up(end_);
                } catch (...) {
                    record_error();
                }
                break;
            case Phase::kExit:
                return;  // not reached: exit is taken below
        }
        {
            const ProfScope ps(pb, ProfBuffer::kShardSlot,
                               ProfPhase::kBarrierWait);
            barrier.arrive_and_wait();
        }
        if (phase_ == Phase::kExit) {
            if (pb != nullptr) {
                pb->set_wall_ns(prof_now_ns() - wall0);
            }
            return;
        }
    }
}

void EpochRunner::coordinate() noexcept {
    try {
        {
            const std::lock_guard<std::mutex> lock(err_mu_);
            if (error_) {
                phase_ = Phase::kExit;
                return;
            }
        }
        if (phase_ == Phase::kCatchUp) {
            // Every shard just skipped up to end_; the run is complete.
            phase_ = Phase::kExit;
            return;
        }
        bool all_paused = true;
        bool all_blocked = true;
        bool channels_clear = true;
        Cycle max_next = 0;
        for (const Shard* s : shards_) {
            all_paused = all_paused && s->paused();
            all_blocked = all_blocked && (s->paused() || s->stuck());
            channels_clear = channels_clear && s->inbound_empty();
            max_next = std::max(max_next, s->acct_next());
        }
        // A sample cut whose bound coincides with the run's final cycle
        // count still owes its frame: the single-threaded loops sample
        // inside the tick of the last cycle, before quiescence ends the
        // run.  (Sample cuts strictly before the end fire further below,
        // while the run is live.)
        const auto sample_at_end = [this](Cycle end) {
            if (cfg_.on_sample && cfg_.sample_every > 0 && end == bound_ &&
                end >= 1 && (end - 1) % cfg_.sample_every == 0) {
                cfg_.on_sample(end - 1);
            }
        };
        if (all_paused && channels_clear) {
            // Global quiescence.  max_next - 1 is the first cycle at which
            // every component was quiescent at once — exactly the cycle the
            // single-threaded loop would have stopped at; shards behind it
            // catch up so every component accounts the same cycle range.
            end_ = max_next;
            sample_at_end(end_);
            phase_ = Phase::kCatchUp;
            return;
        }
        if (cfg_.stop_at > 0 && bound_ >= cfg_.stop_at) {
            // An early-stop run (snapshot-and-exit): the bound was clamped
            // so this barrier landed exactly on stop_at.  Settle every
            // shard's accounting to it and end the run there.
            end_ = cfg_.stop_at;
            sample_at_end(end_);
            phase_ = Phase::kCatchUp;
            return;
        }
        if (cfg_.on_sample && cfg_.sample_every > 0 && bound_ >= 1 &&
            (bound_ - 1) % cfg_.sample_every == 0) {
            // A telemetry sample cut: every participant is parked, so the
            // hook reads the globally-consistent post-tick state of cycle
            // bound_ - 1 — the same state the single-threaded loops sample.
            cfg_.on_sample(bound_ - 1);
        }
        if (cfg_.on_cut && cfg_.checkpoint_every > 0 &&
            bound_ % cfg_.checkpoint_every == 0) {
            // A checkpoint cut: every participant is parked in the barrier,
            // so the machine sees a globally-consistent state.  The machine
            // was not quiescent at any cycle <= bound_ (the branch above
            // would have ended the run), so catching lagging shards up to
            // the cut cannot move the eventual end cycle.
            cfg_.on_cut(bound_);
        }
        for (Shard* s : shards_) {
            if (s->paused() && !s->inbound_empty()) {
                s->wake();
            }
        }
        if (all_blocked && channels_clear) {
            // Someone is non-quiescent, nobody can ever act again, and no
            // packet is in flight to change that: certain deadlock.
            fail_(Fail::kIdleForever, bound_ - 1, 0);
        }
        std::uint64_t fp = 0;
        for (const Shard* s : shards_) {
            fp += s->fingerprint();
        }
        if (fp != last_fp_) {
            last_fp_ = fp;
            last_progress_ = bound_;
        } else if (bound_ - last_progress_ > cfg_.no_progress_limit) {
            fail_(Fail::kNoProgress, bound_ - 1, bound_ - last_progress_);
        }
        if (bound_ >= cfg_.max_cycles) {
            fail_(Fail::kMaxCycles, bound_, 0);
        }
        // Cross-shard lookahead: every shard reports the earliest cycle it
        // could act (its wheel's earliest entry, or its clock under the
        // dense loop, folded with inbound drain stamps).  Nothing anywhere
        // can happen before the minimum, and a packet sent at cycle t >=
        // that minimum drains at t + link latency + 1 >= minimum + epoch —
        // so the next barrier can land at minimum + epoch instead of
        // bound + epoch, collapsing globally-idle stretches that the
        // per-epoch lockstep would otherwise cross one epoch at a time.
        Cycle target = bound_;
        Cycle lookahead = kCycleNever;
        for (const Shard* s : shards_) {
            lookahead = std::min(lookahead, s->lookahead_hint());
        }
        if (lookahead != kCycleNever) {
            target = std::max(target, std::min(lookahead, cfg_.max_cycles));
        }
        bound_ = next_bound(bound_, target + cfg_.epoch);
    } catch (...) {
        record_error();
        phase_ = Phase::kExit;
    }
}

Cycle EpochRunner::run() {
    struct Coordinate {
        EpochRunner* runner;
        void operator()() noexcept { runner->coordinate(); }
    };

    bound_ = next_bound(cfg_.start, cfg_.start + cfg_.epoch);
    last_progress_ = cfg_.start;
    std::barrier<Coordinate> barrier(
        static_cast<std::ptrdiff_t>(shards_.size()), Coordinate{this});

    std::vector<std::thread> workers;
    workers.reserve(shards_.size() - 1);
    for (std::size_t i = 1; i < shards_.size(); ++i) {
        workers.emplace_back(
            [this, &barrier, i] { participate(i, barrier); });
    }
    participate(0, barrier);
    for (std::thread& w : workers) {
        w.join();
    }
    if (error_) {
        std::rethrow_exception(error_);
    }
    return end_;
}

}  // namespace dta::sim
