#include "sim/prof.hpp"

#include <algorithm>
#include <cstdio>

namespace dta::sim {

const char* prof_phase_name(ProfPhase p) {
    switch (p) {
        case ProfPhase::kTick: return "tick";
        case ProfPhase::kNextActivity: return "next_activity";
        case ProfPhase::kQuiescence: return "quiescence";
        case ProfPhase::kFastforwardScan: return "fastforward_scan";
        case ProfPhase::kBarrierWait: return "barrier_wait";
        case ProfPhase::kChannelSerialize: return "channel_serialize";
        case ProfPhase::kChannelDrain: return "channel_drain";
        case ProfPhase::kAudit: return "audit";
        case ProfPhase::kSample: return "sample";
        case ProfPhase::kWheelPop: return "wheel_pop";
        case ProfPhase::kWheelInsert: return "wheel_insert";
        case ProfPhase::kRearm: return "rearm";
        case ProfPhase::kCount: break;
    }
    return "?";
}

void ProfBuffer::snapshot(Cycle cycle) {
    ProfSnapshot s;
    s.cycle = cycle;
    for (const auto& row : rows_) {
        for (std::size_t p = 0; p < kNumProfPhases; ++p) {
            s.ns[p] += row[p].ns;
        }
    }
    snapshots_.push_back(s);
}

std::uint64_t ProfBuffer::phase_ns(ProfPhase p) const {
    std::uint64_t total = 0;
    for (const auto& row : rows_) {
        total += row[static_cast<std::size_t>(p)].ns;
    }
    return total;
}

std::uint64_t ProfBuffer::total_ns() const {
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < kNumProfPhases; ++p) {
        total += phase_ns(static_cast<ProfPhase>(p));
    }
    return total;
}

double HostProfileShard::coverage() const {
    if (wall_ns == 0) {
        return 0.0;
    }
    std::uint64_t accounted = 0;
    for (const std::uint64_t ns : phase_ns) {
        accounted += ns;
    }
    return static_cast<double>(accounted) / static_cast<double>(wall_ns);
}

std::uint64_t HostProfile::total_ns() const {
    std::uint64_t total = 0;
    for (const HostProfileShard& s : shards) {
        for (const std::uint64_t ns : s.phase_ns) {
            total += ns;
        }
    }
    return total;
}

std::uint64_t HostProfile::total_wall_ns() const {
    std::uint64_t total = 0;
    for (const HostProfileShard& s : shards) {
        total += s.wall_ns;
    }
    return total;
}

std::string HostProfile::table(std::size_t top) const {
    std::vector<const HostProfileEntry*> by_time;
    by_time.reserve(entries.size());
    for (const HostProfileEntry& e : entries) {
        by_time.push_back(&e);
    }
    std::stable_sort(by_time.begin(), by_time.end(),
                     [](const HostProfileEntry* a, const HostProfileEntry* b) {
                         return a->ns > b->ns;
                     });
    const double total = static_cast<double>(total_ns());
    std::string out;
    char line[160];
    std::snprintf(line, sizeof line, "%-8s %-12s %-18s %12s %7s %12s\n",
                  "shard", "component", "phase", "self ms", "%", "calls");
    out += line;
    const std::size_t n = std::min(top, by_time.size());
    for (std::size_t i = 0; i < n; ++i) {
        const HostProfileEntry& e = *by_time[i];
        std::snprintf(line, sizeof line,
                      "%-8u %-12s %-18s %12.3f %6.1f%% %12llu\n", e.shard,
                      e.component.c_str(), prof_phase_name(e.phase),
                      static_cast<double>(e.ns) / 1e6,
                      total > 0.0
                          ? 100.0 * static_cast<double>(e.ns) / total
                          : 0.0,
                      static_cast<unsigned long long>(e.calls));
        out += line;
    }
    if (by_time.size() > n) {
        std::snprintf(line, sizeof line, "  ... %zu more rows\n",
                      by_time.size() - n);
        out += line;
    }
    for (const HostProfileShard& s : shards) {
        std::uint64_t accounted = 0;
        for (const std::uint64_t ns : s.phase_ns) {
            accounted += ns;
        }
        std::snprintf(line, sizeof line,
                      "%s: %.3f ms accounted of %.3f ms wall "
                      "(coverage %.1f%%)\n",
                      s.name.c_str(), static_cast<double>(accounted) / 1e6,
                      static_cast<double>(s.wall_ns) / 1e6,
                      100.0 * s.coverage());
        out += line;
    }
    return out;
}

void merge_prof_buffer(HostProfile& out, std::uint32_t shard,
                       const std::string& shard_name, const ProfBuffer& buf,
                       const std::vector<std::string>& component_names) {
    out.enabled = true;
    HostProfileShard rollup;
    rollup.name = shard_name;
    rollup.wall_ns = buf.wall_ns();
    rollup.samples = buf.snapshots();
    const auto& rows = buf.rows();
    for (std::size_t r = 0; r < rows.size(); ++r) {
        for (std::size_t p = 0; p < kNumProfPhases; ++p) {
            const ProfAcc& a = rows[r][p];
            rollup.phase_ns[p] += a.ns;
            if (a.ns == 0 && a.calls == 0) {
                continue;
            }
            HostProfileEntry e;
            e.shard = shard;
            e.component = r == ProfBuffer::kShardSlot
                              ? "-"
                              : component_names[r - 1];
            e.phase = static_cast<ProfPhase>(p);
            e.ns = a.ns;
            e.calls = a.calls;
            out.entries.push_back(std::move(e));
        }
    }
    out.shards.push_back(std::move(rollup));
}

}  // namespace dta::sim
