/// \file wheel.hpp
/// \brief Event-driven scheduler core: a hierarchical timing wheel plus the
///        per-component scheduling state that turns "tick every component
///        every cycle" into "visit each component only when it can act".
///
/// The dense loop (kept alive behind `--no-wheel` / DTA_NO_WHEEL as the
/// differential oracle) ticks all N components at every cycle and consults
/// `next_activity()` only when the machine-wide fingerprint freezes.  The
/// wheel inverts that: after every tick a component is *re-armed* at its own
/// declared horizon and sleeps until then, and inbound traffic re-arms
/// sleepers through the wake contract (sim/component.hpp).  Results are
/// fingerprint-exact by construction:
///
///  * Per-component accounting cursors.  `acct_[i]` is component i's next
///    unaccounted cycle.  When i is visited at cycle h after sleeping, the
///    span [acct_[i], h) is bulk-applied with `skip()` *first* — the wake
///    contract guarantees a sleeping component received no input inside the
///    span, so its state is frozen and skip() is bit-identical to ticking.
///  * Dense-order wakes.  Components are visited in ascending scheduler-
///    list index within a cycle, the dense loop's relative order.  A push
///    into a *later*-indexed component joins the current cycle (the dense
///    loop would tick it after the producer this cycle); a push into an
///    earlier-indexed one arms it for the next cycle — exactly the
///    wrap-edge rule docs/ARCHITECTURE.md derives for the ring.
///  * Degradation to dense.  When nearly every component reports horizon
///    now+1 (a fully busy machine), per-cycle pop/re-arm is pure overhead:
///    after kDenseEnterStreak consecutive such cycles the scheduler flips
///    to plain dense ticking, and re-evaluates every kDenseExitPeriod
///    cycles — horizons are a pure function of simulated state, so the mode
///    switches are deterministic and (by the skip ≡ tick contract) both
///    modes produce identical results.
///
/// The wheel itself is a 2-level calendar: 256 one-cycle L0 slots, 256
/// 256-cycle L1 slots (64Ki-cycle span), and an overflow list.  Entries are
/// lazily deleted: `due_[i]` is the single source of truth, and stale
/// entries (left behind when a wake re-armed a component earlier) are
/// filtered on collection.  A wake only ever *lowers* a component's due
/// cycle, so the earliest live entry is never hidden behind a ghost.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/component.hpp"
#include "sim/port.hpp"
#include "sim/prof.hpp"
#include "sim/types.hpp"

namespace dta::sim {

/// Host-side counters of the wheel's own behaviour.  Travels in
/// RunResult::wheel and is *excluded* from the JSON run report and every
/// byte-identity comparison, exactly like RunResult::host_profile: the
/// simulated results are byte-identical with the wheel on or off, and these
/// counters describe the scheduler, not the machine.
struct WheelStats {
    bool enabled = false;
    std::uint64_t pops = 0;     ///< component visits taken from the wheel
    std::uint64_t inserts = 0;  ///< wheel enqueues (arms, re-arms, wakes)
    std::uint64_t rearms = 0;   ///< post-tick next_activity() reschedules
    std::uint64_t wakes = 0;    ///< inbound-traffic wakes that re-armed
    std::uint64_t active_cycles = 0;   ///< cycles with >= 1 due component
    std::uint64_t dense_cycles = 0;    ///< cycles run in degraded dense mode
    std::uint64_t dense_entries = 0;   ///< wheel -> dense transitions
    std::uint64_t peak_occupancy = 0;  ///< most components armed at once

    /// One point of the Perfetto "wheel" counter track, captured at the
    /// machine's gauge cadence.
    struct Sample {
        Cycle cycle = 0;
        std::uint32_t shard = 0;
        std::uint64_t occupancy = 0;  ///< components armed (finite due)
        std::uint64_t pops = 0;       ///< cumulative pops at this cycle
        std::uint64_t inserts = 0;    ///< cumulative inserts at this cycle
    };
    std::vector<Sample> samples;

    /// Folds shard \p shard's stats in (counters add; samples concatenate
    /// and are re-sorted by (cycle, shard) for a deterministic merge).
    void merge_from(const WheelStats& o, std::uint32_t shard);

    /// Average components visited per accounted cycle (the headline ratio:
    /// dense ticking visits N on every cycle).
    [[nodiscard]] double pops_per_cycle(Cycle cycles) const {
        return cycles == 0 ? 0.0
                           : static_cast<double>(pops) /
                                 static_cast<double>(cycles);
    }
};

/// The calendar queue: maps future cycles to component ids.  Standalone so
/// bench/microbench.cpp can drive insert/advance/collect at 1e6-op scale
/// without a machine around it.
class TimingWheel {
public:
    TimingWheel() { l0_.resize(kSlots); l1_.resize(kSlots); }

    /// Stores \p id at cycle \p at.  \p at must be >= the current position.
    void insert(Cycle at, std::uint32_t id);

    /// Advances the wheel to \p at and moves every id stored there into
    /// \p out (appended; caller clears).  Cycles between the previous
    /// position and \p at must hold no *live* entries (the caller only
    /// advances to its own earliest due cycle or to a bound below it);
    /// stale ids from lazily-deleted entries may be returned and must be
    /// filtered by the caller against its due table.
    void collect(Cycle at, std::vector<std::uint32_t>& out);

    /// Earliest cycle holding any entry (live or stale); kCycleNever when
    /// empty.  Because a wake only moves a component *earlier*, the minimum
    /// over all entries is always a live one.
    [[nodiscard]] Cycle next_due() const;

    /// Drops every entry and repositions the wheel at \p at (dense-mode
    /// exit rebuilds from fresh horizons).
    void reset(Cycle at);

    [[nodiscard]] std::size_t entries() const { return entries_; }

private:
    static constexpr std::uint32_t kSlots = 256;
    static constexpr std::uint32_t kPageShift = 8;    ///< L0 span: 256 cycles
    static constexpr std::uint32_t kEpochShift = 16;  ///< L1 span: 64Ki

    struct Entry {
        Cycle at = 0;
        std::uint32_t id = 0;
    };

    [[nodiscard]] static Cycle page_of(Cycle c) { return c >> kPageShift; }
    [[nodiscard]] static Cycle epoch_of(Cycle c) { return c >> kEpochShift; }

    /// Moves the wheel's notion of "now" to \p at, cascading L1 pages into
    /// L0 and overflow epochs into L1 as they come into range.
    void advance(Cycle at);
    void refill_l1_from_overflow();
    void refill_l0_from_l1();

    Cycle pos_ = 0;  ///< cycles < pos_ are in the past
    std::vector<std::vector<std::uint32_t>> l0_;  ///< current page, 1-cycle slots
    std::vector<std::vector<Entry>> l1_;  ///< current epoch, 256-cycle slots
    std::vector<Entry> overflow_;         ///< beyond the current epoch
    std::size_t entries_ = 0;
    std::size_t l0_count_ = 0;
    std::size_t l1_count_ = 0;
};

/// Per-run-loop scheduler: owns the due/accounting cursors for an ordered
/// component list and drives visits through the wheel.  One instance per
/// run loop — the single-threaded Machine or one per Shard — so wakes never
/// cross host threads.
class WheelScheduler final : public Waker {
public:
    /// Binds the scheduler to \p components (the run loop's scheduler list,
    /// in dense tick order).  Call once before start().
    void attach(const std::vector<Component*>& components);

    /// Arms every component at cycle \p now and activates the wake hook.
    void start(Cycle now);

    [[nodiscard]] bool started() const { return started_; }
    [[nodiscard]] bool dense_mode() const { return dense_; }

    /// No component is armed at any finite cycle: every horizon came back
    /// kIdleForever.  (Not meaningful in dense mode, which visits everyone
    /// regardless.)  This is exactly the condition under which the dense
    /// loop's horizon scan declares idle-forever deadlock — checked on
    /// armed_ rather than the wheel's entry count because lazily-deleted
    /// ghosts can keep the wheel non-empty after the last live entry died.
    [[nodiscard]] bool idle() const { return armed_ == 0; }

    /// Components currently armed at a finite cycle (the live-telemetry
    /// occupancy feed; same counter the sample() series records).
    [[nodiscard]] std::uint64_t armed() const { return armed_; }

    /// Earliest cycle at which any component is scheduled, given the run
    /// loop just finished cycle \p now; now + 1 in dense mode.  May name a
    /// cycle whose entries are all stale (the visit then pops nothing and
    /// the loop advances) — never later than the true earliest live entry.
    [[nodiscard]] Cycle next_due(Cycle now) const {
        return dense_ ? now + 1 : wheel_.next_due();
    }

    /// Runs one cycle: visits every component due at \p at in ascending
    /// list index (catch-up skip, tick, re-arm), folding in same-cycle
    /// wakes.  In dense mode ticks the whole list instead.  Returns the
    /// number of components ticked.  \p pb / \p t thread the run loop's
    /// chained profiling timer through (null pb disables).
    std::uint32_t run_cycle(Cycle at, ProfBuffer* pb, std::uint64_t& t);

    /// Bulk-accounts [acct_i, to) on every component lagging behind \p to —
    /// the run loop's final catch-up (and the sharded loop's epoch-end
    /// catch-up).  After this every component has accounted [0, to).
    void catch_up(Cycle to);

    /// External re-arm at an absolute cycle (inbound cross-shard channel
    /// entries peeked at run_until entry).  Unlike wake(), never same-cycle.
    void wake_at(std::uint32_t component, Cycle at);

    /// Waker: inbound traffic landed in \p component's queue.  Joins the
    /// current cycle when the dense order still permits it (producer index
    /// below consumer index), else arms for the next cycle.
    void wake(std::uint32_t component) override;

    /// Charges wake-path wheel insertions to the kWheelInsert phase (they
    /// fire inside a producer's tick; the orphan-child mechanism keeps the
    /// enclosing kTick charge exclusive).  Null disables.
    void set_prof(ProfBuffer* pb) { pb_ = pb; }

    [[nodiscard]] const WheelStats& stats() const { return stats_; }
    /// Appends one Perfetto counter-track point (gauge cadence).
    void sample(Cycle now) {
        stats_.samples.push_back(
            {now, 0, armed_, stats_.pops, stats_.inserts});
    }

private:
    static constexpr std::uint32_t kNoCursor = 0xffffffffu;
    /// Consecutive fully-busy cycles before degrading to dense ticking.
    static constexpr std::uint32_t kDenseEnterStreak = 8;
    /// Dense-mode horizon re-evaluation period (cycles).
    static constexpr Cycle kDenseExitPeriod = 64;

    std::uint32_t run_dense_cycle(Cycle at, ProfBuffer* pb, std::uint64_t& t);
    void enter_dense(Cycle at);
    void maybe_exit_dense(Cycle at);
    void arm(std::uint32_t i, Cycle at);
    void heap_push(std::uint32_t i);
    std::uint32_t heap_pop();

    std::vector<Component*> comps_;
    std::vector<Cycle> due_;   ///< scheduled visit; kIdleForever = unarmed
    std::vector<Cycle> acct_;  ///< next unaccounted cycle, per component
    TimingWheel wheel_;
    std::vector<std::uint32_t> active_;   ///< min-heap: indices due at now_
    std::vector<std::uint32_t> scratch_;  ///< collect() buffer
    std::uint64_t armed_ = 0;             ///< components with finite due_

    bool started_ = false;
    bool dense_ = false;
    bool in_cycle_ = false;
    Cycle now_ = 0;                   ///< cycle being (or last) processed
    Cycle last_cycle_ = kCycleNever;  ///< previous run_cycle argument
    std::uint32_t cursor_ = kNoCursor;  ///< component being ticked
    std::uint32_t hot_streak_ = 0;    ///< consecutive fully-busy cycles
    Cycle dense_since_ = 0;           ///< cycle dense mode was entered
    ProfBuffer* pb_ = nullptr;        ///< wake-path kWheelInsert charges

    WheelStats stats_;
};

}  // namespace dta::sim
