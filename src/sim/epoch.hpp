/// \file epoch.hpp
/// \brief Conservative-lookahead epoch barrier: drives one Shard per host
///        thread and synchronises them at fixed simulated-time boundaries.
///
/// The lookahead comes from the inter-node Link: a packet serialised at
/// cycle t is observable by its receiver no earlier than t + occupancy +
/// latency >= t + latency + 1.  With the epoch length E = latency + 1,
/// anything a shard produces during epoch k drains in epoch k+1 or later —
/// so shards free-run a whole epoch without looking at each other, and the
/// barrier (plus the SPSC channels filled along the way) is the only
/// synchronisation.  The completion step of the barrier runs the
/// coordinator: wake paused shards whose inbound channels filled, detect
/// global termination / deadlock, advance the boundary.
///
/// Termination reproduces the single-threaded loop bit-exactly: each shard
/// pauses at its first quiescent cycle q_s; when every shard is paused and
/// every channel empty, the global end is max(q_s) — the first cycle at
/// which the whole machine is quiescent — and shards are caught up (by
/// skipping) to exactly that cycle, so per-cycle accounting such as the
/// PEs' idle-bucket charges covers precisely the same [0, end] range the
/// reference loop accounts.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/shard.hpp"
#include "sim/types.hpp"

namespace dta::sim {

/// Runs a set of shards to global quiescence under an epoch barrier.
class EpochRunner {
public:
    /// Why a run cannot continue; the FailFn maps these to the machine's
    /// SimError diagnostics (and must throw).
    enum class Fail {
        kNoProgress,   ///< activity fingerprint frozen past the limit
        kIdleForever,  ///< every shard paused or stuck, channels empty
        kMaxCycles,    ///< boundary reached max_cycles without quiescence
    };
    using FailFn = std::function<void(Fail, Cycle now, Cycle stalled)>;

    struct Config {
        Cycle epoch = 1;  ///< conservative lookahead (link latency + 1)
        Cycle max_cycles = 0;
        Cycle no_progress_limit = 0;
        /// First cycle of the run (non-zero after a snapshot restore; the
        /// shards' clocks must already sit at it).
        Cycle start = 0;
        /// Stop the run at this exact barrier even though the machine is
        /// not quiescent (0 = run to quiescence).  Epoch bounds are clamped
        /// so a barrier lands exactly on it.
        Cycle stop_at = 0;
        /// Clamp epoch bounds so a barrier lands on every multiple of this
        /// interval (0 = none) and invoke on_cut there, with every
        /// participant parked in the barrier — the machine checkpoints the
        /// globally-consistent state.  The hook may catch shards up to the
        /// cut cycle; by the epoch lookahead bound no in-flight channel
        /// entry drains before it, so accounting stays exact.
        Cycle checkpoint_every = 0;
        std::function<void(Cycle)> on_cut;
        /// Clamp epoch bounds so a barrier lands one past every multiple of
        /// this interval (0 = none) and invoke on_sample(bound - 1) there —
        /// the post-tick state of the sample cycle, with every participant
        /// parked.  The machine's live-telemetry capture rides this: frames
        /// read the same globally-consistent state the single-threaded
        /// loops sample at `cycle % interval == 0` after the tick.
        Cycle sample_every = 0;
        std::function<void(Cycle)> on_sample;
    };

    EpochRunner(std::vector<Shard*> shards, Config cfg, FailFn fail);

    /// Blocks until global quiescence; spawns shards.size()-1 worker
    /// threads (the calling thread drives shard 0).  Returns the run's
    /// cycle count (global end + 1).  Rethrows the first exception any
    /// shard or the coordinator raised.
    [[nodiscard]] Cycle run();

    /// The epoch length in effect (diagnostics).
    [[nodiscard]] Cycle epoch_length() const { return cfg_.epoch; }

private:
    enum class Phase { kRun, kCatchUp, kExit };
    template <typename Barrier>
    void participate(std::size_t index, Barrier& barrier);
    void coordinate() noexcept;
    void record_error() noexcept;
    /// The next epoch boundary after \p from towards \p target, clamped to
    /// max_cycles, the next checkpoint cut, and stop_at.
    [[nodiscard]] Cycle next_bound(Cycle from, Cycle target) const;

    std::vector<Shard*> shards_;
    Config cfg_;
    FailFn fail_;

    // Coordinator state: written only inside the barrier's completion step,
    // read by participants after the barrier releases them (the barrier's
    // synchronisation makes these plain members race-free).
    Phase phase_ = Phase::kRun;
    Cycle bound_ = 0;  ///< current epoch boundary (exclusive)
    Cycle end_ = 0;    ///< final cycle count once known
    std::uint64_t last_fp_ = ~0ull;
    Cycle last_progress_ = 0;

    std::mutex err_mu_;
    std::exception_ptr error_;
};

}  // namespace dta::sim
