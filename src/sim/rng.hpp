/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation for workload inputs.
///
/// The *simulator* never consumes randomness — determinism of the timing
/// model is a tested invariant.  Randomness is used only to generate
/// workload input data (matrices, images, bitcount operands), and must be
/// reproducible across platforms, so we implement SplitMix64 and
/// xoshiro256** ourselves instead of relying on unspecified standard-library
/// distributions.
#pragma once

#include <array>
#include <cstdint>

namespace dta::sim {

class StateSink;
class StateSource;

/// SplitMix64 — used to seed xoshiro and for cheap one-off streams.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Checkpoint/restore of the generator position (sim/snapshot.hpp);
    /// template so this header stays standalone.
    template <typename Sink>
    void save_state(Sink& s) const {
        s.u64(state_);
    }
    template <typename Source>
    void load_state(Source& s) {
        state_ = s.u64();
    }

private:
    std::uint64_t state_;
};

/// xoshiro256** 1.0 — the workhorse generator for workload inputs.
class Xoshiro256 {
public:
    explicit Xoshiro256(std::uint64_t seed) {
        SplitMix64 sm(seed);
        for (auto& s : state_) {
            s = sm.next();
        }
    }

    std::uint64_t next() {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform value in [0, bound); bound must be non-zero.
    std::uint64_t next_below(std::uint64_t bound) { return next() % bound; }

    /// Uniform 32-bit value.
    std::uint32_t next_u32() { return static_cast<std::uint32_t>(next() >> 32); }

    /// Checkpoint/restore of the generator position (sim/snapshot.hpp).
    template <typename Sink>
    void save_state(Sink& s) const {
        for (const std::uint64_t v : state_) {
            s.u64(v);
        }
    }
    template <typename Source>
    void load_state(Source& s) {
        for (std::uint64_t& v : state_) {
            v = s.u64();
        }
    }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace dta::sim
