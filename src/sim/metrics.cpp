#include "sim/metrics.hpp"

#include <algorithm>
#include <bit>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace dta::sim {

std::size_t Histogram::bucket_of(std::uint64_t v) {
    return static_cast<std::size_t>(std::bit_width(v));
}

void Histogram::record(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

double Histogram::percentile(double p) const {
    if (count_ == 0) {
        return 0.0;
    }
    p = std::clamp(p, 0.0, 100.0);
    const double target = p / 100.0 * static_cast<double>(count_);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (buckets_[b] == 0) {
            continue;
        }
        const std::uint64_t prev = cum;
        cum += buckets_[b];
        if (static_cast<double>(cum) < target) {
            continue;
        }
        // The rank falls in bucket b: values in [2^(b-1), 2^b - 1] (bucket 0
        // holds only the value 0).  Interpolate linearly inside the bucket,
        // then clamp to the exact observed range.
        const double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
        const double hi =
            b == 0 ? 0.0
                   : static_cast<double>(b >= 64 ? ~0ull
                                                 : (1ull << b) - 1);
        const double frac =
            buckets_[b] == 0
                ? 0.0
                : (target - static_cast<double>(prev)) /
                      static_cast<double>(buckets_[b]);
        const double est = lo + frac * (hi - lo);
        return std::clamp(est, static_cast<double>(min()),
                          static_cast<double>(max_));
    }
    return static_cast<double>(max_);
}

void Histogram::merge(const Histogram& other) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
        buckets_[b] += other.buckets_[b];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void GaugeSeries::merge_add(const GaugeSeries& other) {
    if (other.samples_.empty()) {
        return;
    }
    if (samples_.empty()) {
        *this = other;
        return;
    }
    DTA_CHECK_MSG(samples_.size() == other.samples_.size(),
                  "gauge merge: shard series lengths differ");
    max_ = 0;
    for (std::size_t i = 0; i < samples_.size(); ++i) {
        DTA_CHECK_MSG(samples_[i].cycle == other.samples_[i].cycle,
                      "gauge merge: shard series sampled at different cycles");
        samples_[i].value += other.samples_[i].value;
        max_ = std::max(max_, samples_[i].value);
    }
}

void Histogram::save_state(StateSink& s) const {
    for (std::size_t b = 0; b < kBuckets; ++b) {
        s.u64(buckets_[b]);
    }
    s.u64(count_);
    s.u64(sum_);
    s.u64(min_);
    s.u64(max_);
}

void Histogram::load_state(StateSource& s) {
    for (std::size_t b = 0; b < kBuckets; ++b) {
        buckets_[b] = s.u64();
    }
    count_ = s.u64();
    sum_ = s.u64();
    min_ = s.u64();
    max_ = s.u64();
}

void GaugeSeries::save_state(StateSink& s) const {
    save_seq(s, samples_, [](StateSink& k, const GaugeSample& g) {
        k.u64(g.cycle);
        k.i64(g.value);
    });
    s.i64(max_);
}

void GaugeSeries::load_state(StateSource& s) {
    load_seq(s, samples_, [](StateSource& k, GaugeSample& g) {
        g.cycle = k.u64();
        g.value = k.i64();
    });
    max_ = s.i64();
}

void MetricsRegistry::save_state(StateSink& s) const {
    save_seq(s, counters_, [](StateSink& k, const auto& e) {
        k.str(e.first);
        k.u64(e.second.value);
    });
    s.u64(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        s.str(name);
        h.save_state(s);
    }
    s.u64(gauges_.size());
    for (const auto& [name, g] : gauges_) {
        s.str(name);
        g.save_state(s);
    }
}

void MetricsRegistry::load_state(StateSource& s) {
    // In-place find-or-create: components resolved instrument pointers at
    // attach time, and node-based map storage keeps them valid.
    const std::uint64_t nc = s.u64();
    for (std::uint64_t i = 0; i < nc; ++i) {
        const std::string name = s.str();
        counters_[name].value = s.u64();
    }
    const std::uint64_t nh = s.u64();
    for (std::uint64_t i = 0; i < nh; ++i) {
        const std::string name = s.str();
        histograms_[name].load_state(s);
    }
    const std::uint64_t ng = s.u64();
    for (std::uint64_t i = 0; i < ng; ++i) {
        const std::string name = s.str();
        gauges_[name].load_state(s);
    }
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
    for (const auto& [name, c] : other.counters_) {
        counters_[name].value += c.value;
    }
    for (const auto& [name, h] : other.histograms_) {
        histograms_[name].merge(h);
    }
    for (const auto& [name, g] : other.gauges_) {
        gauges_[name].merge_add(g);
    }
}

Counter* MetricsRegistry::counter(const std::string& name) {
    if (!enabled_) {
        return nullptr;
    }
    return &counters_[name];
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
    if (!enabled_) {
        return nullptr;
    }
    return &histograms_[name];
}

GaugeSeries* MetricsRegistry::gauge(const std::string& name) {
    if (!enabled_) {
        return nullptr;
    }
    return &gauges_[name];
}

}  // namespace dta::sim
