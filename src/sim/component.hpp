/// \file component.hpp
/// \brief The uniform clocked-component interface.
///
/// Every timed layer of the machine (SPU pipelines, MFCs, bus fabrics,
/// inter-node links, main memory, schedulers) implements `Component` so the
/// machine can drive them from one scheduler loop instead of hand-rolled
/// per-type loops, and — crucially — can *skip* cycles nobody needs.
///
/// ## The horizon contract
///
/// `next_activity(now)` is queried right after `tick(now)` and must return
/// the earliest cycle strictly greater than `now` at which this component's
/// `tick` could change observable state **assuming it receives no new
/// input**, or `kIdleForever` if no internally-scheduled event is pending.
///
/// "Assuming no new input" is what makes the contract local: a component
/// waiting on an in-flight request (a DMA line crossing the NoC, a read
/// queued at the memory controller) reports `kIdleForever`, because the
/// component currently *carrying* that request reports a finite horizon.
/// The machine takes the minimum across all registered components, so the
/// carrier bounds the global jump. A component must be conservative in two
/// situations:
///
///  1. Any non-empty queue it drains on a best-effort basis each tick
///     (an outbox waiting for fabric credit, a port it retries) forces a
///     horizon of `now + 1`: the retry itself is observable activity.
///  2. Any tick that *mutates* state unconditionally (posting a dispatch
///     request, starting a decode) must not be skipped; report `now + 1`
///     until the mutation has happened.
///
/// When the machine jumps from cycle `c` to cycle `h`, it calls
/// `skip(c + 1, h)` on every component so per-cycle bookkeeping that the
/// per-cycle loop would have produced (idle/prefetch breakdown charges,
/// stale-by-one timestamp reads) is applied in bulk. Results must be
/// bit-identical to ticking every cycle in `[from, to)`.
///
/// ## The re-arm/wake contract (event-driven scheduler)
///
/// The timing-wheel core (sim/wheel.hpp) leans on the horizon contract
/// *per component* instead of globally: after every tick the component is
/// re-armed at exactly `next_activity(now)` and is not visited before then.
/// The "assuming no new input" escape hatch is closed by wakes: every queue
/// a component drains carries a `Waker` binding (Port<T>::set_waker, or the
/// equivalent hook on the fabric and the cross-shard channels), so the
/// moment a producer pushes, the sleeping consumer is re-armed — at the
/// current cycle if the dense tick order would still reach it this cycle
/// (producer index below consumer index in the scheduler list), else at the
/// next one. Two consequences for implementers:
///
///  1. `next_activity()` must cover every queue whose *drain* the component
///     performs, even queues filled by other components mid-cycle: after
///     the wake delivers the first visit, the component's own horizon keeps
///     it hot until the queue empties (rule 1 above). A pull-model queue
///     examined in tick() but owned by another object (e.g. a router
///     draining its node's outboxes) counts as "its" queue here.
///  2. A sleeping component's accounting is applied lazily: when a wake or
///     re-arm lands it at cycle `h`, the wheel first calls
///     `skip(acct, h)` for the slept span and only then `tick(h)`. skip()
///     must therefore be safe mid-run on *any* quiescent-between-events
///     state, not only the globally-frozen states the dense fast-forward
///     produces.
///
/// ## The serialization contract (checkpoint/restore)
///
/// The third pillar next to tick/quiescence/horizon: `save_state()` /
/// `load_state()` capture and reinstate *everything* a component carries
/// between cycles — queues, in-flight requests, pipeline registers,
/// statistics counters — through the byte streams in sim/snapshot.hpp.
/// The Machine snapshots only at consistent points (between cycles, with
/// all skip-accounting settled), so implementations never see a
/// mid-cycle state. Rules:
///
///  1. Round trip is exact: save at cycle N, load into a freshly
///     constructed twin, and every subsequent tick must be bit-identical
///     to the original run — including statistics, event-log output, and
///     deadlock diagnostics. Wiring (pointers to peers, config) is NOT
///     serialized; it comes from construction.
///  2. Serialize field by field, never by memcpy of structs (padding),
///     and iterate unordered containers in a canonical sorted order so
///     saving twice yields byte-identical snapshots.
///  3. Loaders consume their section exactly; the caller verifies with
///     StateSource::finish(), turning any layout drift into a clean
///     error instead of silent corruption.
#pragma once

#include <string>

#include "sim/types.hpp"

namespace dta::sim {

/// Sentinel horizon: no internally-scheduled activity, ever.
inline constexpr Cycle kIdleForever = kCycleNever;

class StateSink;
class StateSource;

class Component {
 public:
    Component() = default;
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component&) = default;
    Component& operator=(const Component&) = default;
    Component(Component&&) = default;
    Component& operator=(Component&&) = default;

    /// Advance one cycle. Called at most once per simulated cycle, with
    /// strictly increasing `now` (skipped cycles are never ticked).
    virtual void tick(Cycle now) = 0;

    /// True when the component holds no in-flight work at all.
    [[nodiscard]] virtual bool quiescent() const = 0;

    /// Earliest cycle > now at which tick() could change observable state
    /// absent new input; kIdleForever if none. See the horizon contract.
    [[nodiscard]] virtual Cycle next_activity(Cycle now) const = 0;

    /// Account for cycles [from, to) that will never be ticked. Default:
    /// nothing to do (pure event-driven components need no per-cycle work).
    virtual void skip(Cycle from, Cycle to) {
        (void)from;
        (void)to;
    }

    /// Serialize all inter-cycle state into \p s (see the serialization
    /// contract above). Default: stateless between cycles.
    virtual void save_state(StateSink& s) const { (void)s; }

    /// Inverse of save_state() on a freshly constructed, fully wired
    /// component. Must consume the section exactly.
    virtual void load_state(StateSource& s) { (void)s; }

    /// Diagnostic label, e.g. "pe3", "noc0", "mem". Used in deadlock
    /// reports to say *which* components were non-quiescent.
    [[nodiscard]] const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

 private:
    std::string name_;
};

}  // namespace dta::sim
