/// \file component.hpp
/// \brief The uniform clocked-component interface.
///
/// Every timed layer of the machine (SPU pipelines, MFCs, bus fabrics,
/// inter-node links, main memory, schedulers) implements `Component` so the
/// machine can drive them from one scheduler loop instead of hand-rolled
/// per-type loops, and — crucially — can *skip* cycles nobody needs.
///
/// ## The horizon contract
///
/// `next_activity(now)` is queried right after `tick(now)` and must return
/// the earliest cycle strictly greater than `now` at which this component's
/// `tick` could change observable state **assuming it receives no new
/// input**, or `kIdleForever` if no internally-scheduled event is pending.
///
/// "Assuming no new input" is what makes the contract local: a component
/// waiting on an in-flight request (a DMA line crossing the NoC, a read
/// queued at the memory controller) reports `kIdleForever`, because the
/// component currently *carrying* that request reports a finite horizon.
/// The machine takes the minimum across all registered components, so the
/// carrier bounds the global jump. A component must be conservative in two
/// situations:
///
///  1. Any non-empty queue it drains on a best-effort basis each tick
///     (an outbox waiting for fabric credit, a port it retries) forces a
///     horizon of `now + 1`: the retry itself is observable activity.
///  2. Any tick that *mutates* state unconditionally (posting a dispatch
///     request, starting a decode) must not be skipped; report `now + 1`
///     until the mutation has happened.
///
/// When the machine jumps from cycle `c` to cycle `h`, it calls
/// `skip(c + 1, h)` on every component so per-cycle bookkeeping that the
/// per-cycle loop would have produced (idle/prefetch breakdown charges,
/// stale-by-one timestamp reads) is applied in bulk. Results must be
/// bit-identical to ticking every cycle in `[from, to)`.
#pragma once

#include <string>

#include "sim/types.hpp"

namespace dta::sim {

/// Sentinel horizon: no internally-scheduled activity, ever.
inline constexpr Cycle kIdleForever = kCycleNever;

class Component {
 public:
    Component() = default;
    explicit Component(std::string name) : name_(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component&) = default;
    Component& operator=(const Component&) = default;
    Component(Component&&) = default;
    Component& operator=(Component&&) = default;

    /// Advance one cycle. Called at most once per simulated cycle, with
    /// strictly increasing `now` (skipped cycles are never ticked).
    virtual void tick(Cycle now) = 0;

    /// True when the component holds no in-flight work at all.
    [[nodiscard]] virtual bool quiescent() const = 0;

    /// Earliest cycle > now at which tick() could change observable state
    /// absent new input; kIdleForever if none. See the horizon contract.
    [[nodiscard]] virtual Cycle next_activity(Cycle now) const = 0;

    /// Account for cycles [from, to) that will never be ticked. Default:
    /// nothing to do (pure event-driven components need no per-cycle work).
    virtual void skip(Cycle from, Cycle to) {
        (void)from;
        (void)to;
    }

    /// Diagnostic label, e.g. "pe3", "noc0", "mem". Used in deadlock
    /// reports to say *which* components were non-quiescent.
    [[nodiscard]] const std::string& name() const { return name_; }
    void set_name(std::string n) { name_ = std::move(n); }

 private:
    std::string name_;
};

}  // namespace dta::sim
