/// \file metrics.hpp
/// \brief Run-wide structured metrics: named counters, log2-bucketed latency
///        histograms, and sampled gauge time-series.
///
/// The simulator's scalar totals (RunResult counters) say *how much* work a
/// run did; this layer says *where the cycles went*: the distribution of DMA
/// tag latencies, how long threads sat ready before dispatch, how deep the
/// memory-controller queue ran over time.  One MetricsRegistry is owned by
/// the Machine and shared by every component; collection is off by default
/// and costs a single branch per would-be record when disabled.
///
/// Components resolve their instruments once (at attach time) and keep raw
/// pointers; the registry stores instruments in node-based maps so those
/// pointers stay valid for the registry's lifetime.  The registry is
/// copyable, which is how a finished run's metrics travel inside RunResult.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace dta::sim {

class StateSink;
class StateSource;

/// A monotonically increasing named count.
struct Counter {
    std::uint64_t value = 0;

    void add(std::uint64_t n = 1) { value += n; }
};

/// A log2-bucketed distribution of non-negative samples (latencies, sizes).
///
/// Bucket b collects the values whose bit width is b: bucket 0 holds only 0,
/// bucket 1 holds 1, bucket 2 holds 2..3, bucket 3 holds 4..7, and so on.
/// Exact count/sum/min/max are kept alongside, so means are exact and
/// percentile estimates are clamped to the true range.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 65;  ///< bit widths 0..64

    void record(std::uint64_t v);

    [[nodiscard]] std::uint64_t count() const { return count_; }
    [[nodiscard]] std::uint64_t sum() const { return sum_; }
    /// Smallest / largest recorded value (0 when empty).
    [[nodiscard]] std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
    [[nodiscard]] std::uint64_t max() const { return max_; }
    [[nodiscard]] double mean() const {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) /
                                 static_cast<double>(count_);
    }

    /// Estimates the \p p-th percentile (p in [0, 100]) by linear
    /// interpolation inside the bucket where the rank falls; the estimate is
    /// clamped to [min, max], so p=0 and p=100 are exact.
    [[nodiscard]] double percentile(double p) const;

    /// Folds \p other into this histogram (for cross-run aggregation).
    void merge(const Histogram& other);

    [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets() const {
        return buckets_;
    }

    /// Bucket index a value lands in (its bit width).
    [[nodiscard]] static std::size_t bucket_of(std::uint64_t v);

    void save_state(StateSink& s) const;
    void load_state(StateSource& s);

private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

/// One sampled point of a gauge.
struct GaugeSample {
    Cycle cycle = 0;
    std::int64_t value = 0;
};

/// A gauge sampled periodically into a time series (queue depths,
/// in-flight transfer counts).  The Machine's sampler drives \ref sample;
/// consumers render the series as Perfetto counter tracks.
class GaugeSeries {
public:
    void sample(Cycle cycle, std::int64_t value) {
        samples_.push_back(GaugeSample{cycle, value});
        if (value > max_) {
            max_ = value;
        }
    }

    [[nodiscard]] const std::vector<GaugeSample>& samples() const {
        return samples_;
    }
    [[nodiscard]] std::int64_t max() const { return max_; }
    [[nodiscard]] std::int64_t last() const {
        return samples_.empty() ? 0 : samples_.back().value;
    }

    /// Point-wise sum with \p other (shard-local series of the same gauge,
    /// sampled at identical cycles).  Requires cycle-aligned series of
    /// equal length unless one side is empty; max_ is recomputed from the
    /// summed values, matching what sampling the sums would have produced.
    void merge_add(const GaugeSeries& other);

    void save_state(StateSink& s) const;
    void load_state(StateSource& s);

private:
    std::vector<GaugeSample> samples_;
    std::int64_t max_ = 0;
};

/// The per-machine registry of named instruments.
///
/// Disabled by default: every accessor returns nullptr, so instrumented
/// components skip their record calls with one pointer test.  Enable before
/// components attach (the Machine does this from its constructor when
/// MachineConfig::collect_metrics is set).
class MetricsRegistry {
public:
    void enable(bool on = true) { enabled_ = on; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Finds or creates an instrument; returns nullptr while disabled.
    /// Returned pointers stay valid for the registry's lifetime (node-based
    /// storage), but do not survive copying the registry.
    [[nodiscard]] Counter* counter(const std::string& name);
    [[nodiscard]] Histogram* histogram(const std::string& name);
    [[nodiscard]] GaugeSeries* gauge(const std::string& name);

    /// Folds a shard-local registry into this one: counters add, histograms
    /// merge, gauge series sum point-wise.  The result is bit-identical to
    /// what one shared registry would have collected, because every
    /// instrument's merge is order-independent (commutative sums) and the
    /// shards sample gauges at identical, aligned cycles.
    void merge_from(const MetricsRegistry& other);

    // Sorted, deterministic iteration for exporters.
    [[nodiscard]] const std::map<std::string, Counter>& counters() const {
        return counters_;
    }
    [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
        return histograms_;
    }
    [[nodiscard]] const std::map<std::string, GaugeSeries>& gauges() const {
        return gauges_;
    }

    /// Serialize every instrument (sorted map order keeps it canonical).
    void save_state(StateSink& s) const;
    /// Loads instruments *in place* (find-or-create, never clears the
    /// maps), so pointers components resolved at attach time stay valid.
    void load_state(StateSource& s);

private:
    bool enabled_ = false;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, GaugeSeries> gauges_;
};

}  // namespace dta::sim
