#include "sim/audit.hpp"

#include <cstdio>

#include "sim/check.hpp"

namespace dta::sim {

void AuditCtx::fail(const std::string& invariant, const std::string& detail,
                    std::uint64_t thread_uid) const {
    std::string msg = "audit violation [component=" + component_ +
                      ", invariant=" + invariant +
                      ", cycle=" + std::to_string(now_);
    if (thread_uid != 0) {
        char buf[2 + 16 + 1];
        std::snprintf(buf, sizeof(buf), "%llx",
                      static_cast<unsigned long long>(thread_uid));
        msg += ", thread=0x";
        msg += buf;
    }
    msg += "]: " + detail;
    throw SimError(msg);
}

void Auditor::run(Cycle now) const {
    for (const Check& c : checks_) {
        c.fn(AuditCtx(c.component, now));
    }
}

void Auditor::run_final(Cycle now) const {
    run(now);
    for (const Check& c : final_) {
        c.fn(AuditCtx(c.component, now));
    }
}

}  // namespace dta::sim
