#include "sim/check.hpp"

#include <sstream>

namespace dta::sim::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
    std::ostringstream os;
    os << "DTA_CHECK failed: (" << expr << ") at " << file << ':' << line;
    if (!msg.empty()) {
        os << " — " << msg;
    }
    throw CheckError(os.str());
}

void sim_failed(const char* file, int line, const std::string& msg) {
    std::ostringstream os;
    os << "simulation error: " << msg << " (" << file << ':' << line << ')';
    throw SimError(os.str());
}

}  // namespace dta::sim::detail
