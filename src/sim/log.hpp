/// \file log.hpp
/// \brief Lightweight, optional tracing for simulator components.
///
/// Tracing is off by default (zero overhead beyond a branch); tests and the
/// pipeline_trace example enable it to observe per-cycle behaviour.  Output
/// goes to a caller-supplied sink so tests can capture it.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/types.hpp"

namespace dta::sim {

/// Severity / verbosity classes for trace messages.
enum class LogLevel : int {
    kOff = 0,
    kInfo = 1,   ///< machine-level milestones (activity started, finished)
    kDebug = 2,  ///< component events (packet sent, frame allocated)
    kTrace = 3,  ///< per-cycle pipeline detail
};

/// A trace sink shared by all components of one Machine instance.
class Logger {
public:
    using Sink = std::function<void(std::string_view)>;

    Logger() = default;

    /// Installs a sink and verbosity; a null sink disables output entirely.
    void configure(LogLevel level, Sink sink) {
        level_ = sink ? level : LogLevel::kOff;
        sink_ = std::move(sink);
    }

    [[nodiscard]] bool enabled(LogLevel level) const {
        return static_cast<int>(level) <= static_cast<int>(level_);
    }

    /// Emits one line: "[cycle] component: message".  Serialised: shards of
    /// a multi-threaded run share one Logger, so concurrent emits must not
    /// interleave inside the sink (line order across shards is host-timing
    /// dependent either way; simulated results never are).
    void log(LogLevel level, Cycle cycle, std::string_view component,
             std::string_view message) const {
        if (!enabled(level) || !sink_) {
            return;
        }
        std::ostringstream os;
        os << '[' << cycle << "] " << component << ": " << message;
        const std::lock_guard<std::mutex> lock(mu_);
        sink_(os.str());
    }

private:
    LogLevel level_ = LogLevel::kOff;
    Sink sink_;
    mutable std::mutex mu_;
};

}  // namespace dta::sim
