/// \file telemetry.hpp
/// \brief Live telemetry: periodic machine-wide occupancy frames in a
///        bounded ring, an NDJSON stream for `dta_top`, and a
///        progress/stall watchdog.
///
/// Where the metrics layer (sim/metrics.hpp) accumulates per-instrument
/// series for post-mortem reports, telemetry captures *whole-machine*
/// snapshots — one TelemetryFrame per sample cycle — cheap enough to tail
/// while a paper-scale run is still going.  The discipline is the same as
/// every other observer in this tree:
///
///  * **Off by default.**  With `TelemetryConfig::enabled` false the run
///    loop pays exactly one null-pointer test per cycle.
///  * **Pure observer.**  Frames are read-only captures of simulated
///    state; results (JSON report, event log, memory image) are
///    byte-identical with telemetry on or off
///    (tests/integration/telemetry_neutrality_test.cpp).
///  * **Deterministic.**  The simulated fields of a frame are sampled at
///    aligned cycles in every run-loop mode — post-tick of each sample
///    cycle in the dense and wheel loops, replayed over fast-forwarded
///    spans (state is frozen there by the horizon contract), and at
///    epoch-barrier cuts with every shard parked under the sharded loop —
///    so the frame sequence is byte-identical across host thread counts
///    and wheel on/off.  Host-side fields (wall-clock rate, wheel
///    occupancy) ride only the NDJSON stream, never the JSON report,
///    exactly like `RunResult::wheel`.
///
/// The watchdog runs on the same frames: if the machine-wide activity
/// fingerprint is frozen for `watchdog_samples` consecutive samples while
/// the machine is not quiescent, it emits ONE structured diagnostic naming
/// the stalled components (the deadlock-dump names), the current queue
/// depths, and — when checkpoints are enabled — the exact `dta_run
/// --restore` command replaying from the nearest pre-stall snapshot.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace dta::sim {

/// Telemetry knobs.  An *observer* config: deliberately excluded from the
/// structural config echo / snapshot fingerprint (core/machine.cpp), so a
/// snapshot taken in a quiet run can be replayed with telemetry on.
struct TelemetryConfig {
    bool enabled = false;
    /// Simulated cycles between frames.
    std::uint64_t interval = 8192;
    /// Bounded frame ring: once full, the oldest frame is dropped (the
    /// JSON timeline keeps the most recent window; `dropped` counts).
    std::size_t ring_capacity = 4096;
    /// Stall after this many consecutive no-progress samples while
    /// non-quiescent (0 disables the watchdog).
    std::uint32_t watchdog_samples = 16;
    /// NDJSON stream destination ("" = none): a path, typically a FIFO
    /// created with mkfifo(1) and tailed by tools/dta_top.
    std::string stream_path;
};

/// One machine-wide sample.  The fields up to and including
/// `activity_fp` are simulated values — deterministic across host thread
/// counts and wheel on/off, and the only fields the JSON run report
/// serialises.  The `host_*` / `wheel_*` tail describes the *simulator*
/// (like `RunResult::wheel`) and rides only the NDJSON stream and the
/// Perfetto host tracks.
struct TelemetryFrame {
    std::uint64_t cycle = 0;
    std::uint32_t pes_running = 0;      ///< SPUs with a bound thread
    std::uint32_t threads_ready = 0;    ///< LSE ready queues, summed
    std::uint32_t threads_waitdma = 0;  ///< threads parked in Wait-for-DMA
    std::uint32_t frames_live = 0;      ///< physical + virtual frames
    std::uint32_t mfc_commands = 0;     ///< DMA commands in flight, all MFCs
    std::uint64_t dma_bytes = 0;        ///< DMA line bytes in flight
    std::uint32_t mem_queue = 0;        ///< memory-controller queue depth
    std::uint32_t noc_pending = 0;      ///< packets in flight, all fabrics
    std::uint64_t instrs_retired = 0;   ///< cumulative, machine-wide
    std::uint64_t activity_fp = 0;      ///< machine activity fingerprint

    // --- host-side (stream/trace only; never in the JSON report) --------
    std::uint64_t host_ns = 0;       ///< monotonic host clock at capture
    std::uint64_t wheel_armed = 0;   ///< components armed on the wheel
    std::uint64_t wheel_pops = 0;    ///< cumulative wheel pops
};

/// The watchdog's one-shot diagnostic (latched on first trigger).
struct TelemetryStall {
    std::uint64_t cycle = 0;         ///< sample cycle that tripped it
    std::uint32_t samples = 0;       ///< consecutive no-progress samples
    std::uint64_t stalled_cycles = 0;  ///< cycles since last progress
    std::string components;          ///< deadlock-dump component names
    std::string replay;              ///< `dta_run --restore ...` hint ("" if
                                     ///< checkpoints are off)
};

/// What a run hands back in `RunResult::telemetry`.
struct TelemetryResult {
    bool enabled = false;
    std::uint64_t interval = 0;
    std::vector<TelemetryFrame> frames;  ///< ring contents, oldest first
    std::uint64_t captured = 0;          ///< frames captured in total
    std::uint64_t dropped = 0;           ///< frames evicted from the ring
    bool stalled = false;
    TelemetryStall stall;
};

/// The sampler: bounded ring + watchdog + NDJSON writer.  The machine owns
/// one and calls `record()` with a fully-populated frame at each sample
/// cycle; all capture (reading component state) stays in the machine,
/// which knows the topology.  Thread-safety contract: `record()` is only
/// ever called with the machine externally synchronised — from the
/// single-threaded run loops, or from the epoch coordinator's completion
/// step with every shard parked in the barrier — so no locking is needed.
class TelemetrySampler {
public:
    /// \p stall_info, when set, supplies the machine-level parts of the
    /// watchdog diagnostic (stalled component names + restore hint) at
    /// trigger time.
    using StallInfoFn = std::function<void(TelemetryStall&)>;

    explicit TelemetrySampler(const TelemetryConfig& cfg);
    ~TelemetrySampler();

    TelemetrySampler(const TelemetrySampler&) = delete;
    TelemetrySampler& operator=(const TelemetrySampler&) = delete;

    void set_stall_info(StallInfoFn fn) { stall_info_ = std::move(fn); }
    /// Redirects the watchdog's one-line diagnostic (default: stderr).
    void set_diag_stream(std::FILE* f) { diag_ = f; }

    /// Records one frame: ring append (drop-oldest), watchdog evaluation
    /// against `frame.activity_fp`, and one NDJSON line when streaming.
    /// \p quiescent is the machine's quiescence at the sample cycle — a
    /// quiescent machine is finishing, not stalled.
    void record(const TelemetryFrame& frame, bool quiescent);

    [[nodiscard]] std::uint64_t interval() const { return cfg_.interval; }
    [[nodiscard]] std::uint64_t captured() const { return captured_; }
    [[nodiscard]] bool stalled() const { return stalled_; }
    /// Latest frame (zeroed default before the first sample) — feeds the
    /// `--progress` heartbeat's retire-rate / busiest-component fields.
    [[nodiscard]] const TelemetryFrame& latest() const { return latest_; }

    /// Drains the ring (oldest first) into a result struct.
    [[nodiscard]] TelemetryResult result() const;

    /// One NDJSON line for \p frame — also used by the stream writer.
    /// Contains both the simulated fields and the host-side tail.
    [[nodiscard]] static std::string ndjson_line(const TelemetryFrame& f);
    /// The NDJSON stall line.
    [[nodiscard]] static std::string ndjson_stall_line(
        const TelemetryStall& s);

private:
    void watchdog(const TelemetryFrame& frame, bool quiescent);

    TelemetryConfig cfg_;
    std::vector<TelemetryFrame> ring_;  ///< circular, `head_` = oldest
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t captured_ = 0;
    std::uint64_t dropped_ = 0;
    TelemetryFrame latest_;

    // Watchdog state.
    std::uint64_t last_fp_ = ~0ull;
    std::uint64_t last_progress_cycle_ = 0;
    std::uint32_t frozen_samples_ = 0;
    bool stalled_ = false;
    TelemetryStall stall_;
    StallInfoFn stall_info_;
    std::FILE* diag_ = nullptr;  ///< nullptr = stderr

    std::FILE* stream_ = nullptr;  ///< NDJSON sink (owned)
};

}  // namespace dta::sim
