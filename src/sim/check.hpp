/// \file check.hpp
/// \brief Invariant checking for the simulator.
///
/// The simulator distinguishes two failure classes:
///   * \ref dta::sim::SimError — a *model* error: the simulated program or
///     machine configuration violated an architectural rule (e.g. a frame
///     store past the end of a frame).  These are thrown as exceptions so
///     tests can assert on them.
///   * DTA_CHECK failures — *simulator* bugs: internal invariants that can
///     only break if the C++ code itself is wrong.  Also thrown (rather than
///     aborting) so that property tests can drive the simulator hard without
///     taking the test binary down.
#pragma once

#include <stdexcept>
#include <string>

namespace dta::sim {

/// Error raised when the simulated program or configuration is invalid.
class SimError : public std::runtime_error {
public:
    explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

/// Internal-invariant failure; indicates a bug in the simulator itself.
class CheckError : public std::logic_error {
public:
    explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
[[noreturn]] void sim_failed(const char* file, int line, const std::string& msg);
}  // namespace detail

}  // namespace dta::sim

/// Internal invariant; failure means the simulator itself is buggy.
#define DTA_CHECK(expr)                                                        \
    do {                                                                       \
        if (!(expr)) {                                                         \
            ::dta::sim::detail::check_failed(#expr, __FILE__, __LINE__, "");   \
        }                                                                      \
    } while (false)

/// Internal invariant with a formatted context message.
#define DTA_CHECK_MSG(expr, msg)                                               \
    do {                                                                       \
        if (!(expr)) {                                                         \
            ::dta::sim::detail::check_failed(#expr, __FILE__, __LINE__,        \
                                             (msg));                           \
        }                                                                      \
    } while (false)

/// Architectural / model error: the simulated program did something illegal.
#define DTA_SIM_ERROR(msg) ::dta::sim::detail::sim_failed(__FILE__, __LINE__, (msg))

/// Architectural precondition on simulated behaviour.
#define DTA_SIM_REQUIRE(expr, msg)                                             \
    do {                                                                       \
        if (!(expr)) {                                                         \
            DTA_SIM_ERROR(msg);                                                \
        }                                                                      \
    } while (false)
