#include "sim/events.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace dta::sim {

namespace {

constexpr std::string_view kKindNames[kNumEventKinds] = {
    "falloc",   "grant",    "store_iss", "store_arr", "ready",
    "dispatch", "phase",    "dma_iss",   "dma_done",  "suspend",
    "stop",     "free",     "hop",
};

}  // namespace

std::string_view event_kind_name(EventKind k) {
    const auto i = static_cast<std::size_t>(k);
    return i < kNumEventKinds ? kKindNames[i] : "?";
}

bool event_kind_from_name(std::string_view name, EventKind& out) {
    for (std::size_t i = 0; i < kNumEventKinds; ++i) {
        if (kKindNames[i] == name) {
            out = static_cast<EventKind>(i);
            return true;
        }
    }
    return false;
}

std::vector<Event> EventLog::flatten() const {
    std::vector<Event> all;
    all.reserve(size_);
    for_each([&](const Event& e) { all.push_back(e); });
    return all;
}

void EventLog::append_from(const EventLog& other) {
    other.for_each([&](const Event& e) { push(e); });
}

void EventLog::canonicalize() {
    std::vector<Event> all = flatten();
    std::stable_sort(all.begin(), all.end(),
                     [](const Event& a, const Event& b) {
                         return a.cycle != b.cycle ? a.cycle < b.cycle
                                                   : a.ordinal < b.ordinal;
                     });
    chunks_.clear();
    chunks_.push_back(std::move(all));
    size_ = chunks_.back().size();
}

void EventLog::save_state(StateSink& s) const {
    s.u64(size_);
    for_each([&](const Event& e) {
        s.u64(e.cycle);
        s.u64(e.thread);
        s.u64(e.other);
        s.u64(e.arg);
        s.u64(e.stall);
        s.u32(e.ordinal);
        s.u8(static_cast<std::uint8_t>(e.kind));
        s.u8(e.aux);
    });
}

void EventLog::load_state(StateSource& s) {
    DTA_CHECK(empty());
    const std::uint64_t n = s.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Event e;
        e.cycle = s.u64();
        e.thread = s.u64();
        e.other = s.u64();
        e.arg = s.u64();
        e.stall = s.u64();
        e.ordinal = s.u32();
        e.kind = static_cast<EventKind>(s.u8());
        e.aux = s.u8();
        push(e);
    }
}

void write_events(std::ostream& out, const EventLog& log, Cycle cycles,
                  std::uint32_t pes,
                  const std::vector<std::string>& code_names) {
    out << "DTAEV1\n";
    out << "cycles " << cycles << '\n';
    out << "pes " << pes << '\n';
    for (std::size_t i = 0; i < code_names.size(); ++i) {
        out << "code " << i << ' ' << code_names[i] << '\n';
    }
    out << "events " << log.size() << '\n';
    log.for_each([&](const Event& e) {
        out << e.cycle << ' ' << event_kind_name(e.kind) << ' ' << e.ordinal
            << ' ' << static_cast<unsigned>(e.aux) << ' ' << e.thread << ' '
            << e.other << ' ' << e.arg << ' ' << e.stall << '\n';
    });
}

EventFile read_events(std::istream& in) {
    EventFile f;
    std::string line;
    DTA_SIM_REQUIRE(std::getline(in, line) && line == "DTAEV1",
                    "event file: missing DTAEV1 header");
    std::size_t count = 0;
    bool have_count = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "cycles") {
            ls >> f.cycles;
        } else if (key == "pes") {
            ls >> f.pes;
        } else if (key == "code") {
            std::size_t id = 0;
            ls >> id;
            std::string name;
            std::getline(ls, name);
            if (!name.empty() && name.front() == ' ') {
                name.erase(0, 1);
            }
            if (f.code_names.size() <= id) {
                f.code_names.resize(id + 1);
            }
            f.code_names[id] = name;
        } else if (key == "events") {
            ls >> count;
            have_count = true;
            break;
        } else {
            DTA_SIM_REQUIRE(false, "event file: unknown header key '" + key +
                                       "'");
        }
    }
    DTA_SIM_REQUIRE(have_count, "event file: missing events count");
    f.events.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        DTA_SIM_REQUIRE(std::getline(in, line),
                        "event file: truncated at event " + std::to_string(i));
        std::istringstream ls(line);
        Event e;
        std::string kind;
        unsigned aux = 0;
        ls >> e.cycle >> kind >> e.ordinal >> aux >> e.thread >> e.other >>
            e.arg >> e.stall;
        DTA_SIM_REQUIRE(!ls.fail(), "event file: malformed event line '" +
                                        line + "'");
        DTA_SIM_REQUIRE(event_kind_from_name(kind, e.kind),
                        "event file: unknown event kind '" + kind + "'");
        e.aux = static_cast<std::uint8_t>(aux);
        f.events.push_back(e);
    }
    return f;
}

}  // namespace dta::sim
