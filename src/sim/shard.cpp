#include "sim/shard.hpp"

#include <algorithm>

#include "sim/check.hpp"

namespace dta::sim {

bool Shard::all_quiescent() const {
    for (const Component* c : components_) {
        if (!c->quiescent()) {
            return false;
        }
    }
    return true;
}

void Shard::fast_forward_span(Cycle from, Cycle to) {
    const ProfScope prof(hooks_.prof, ProfBuffer::kShardSlot,
                         ProfPhase::kFastforwardScan);
    for (Component* c : components_) {
        c->skip(from, to);
    }
    skipped_ += to - from;
    // Replay the gauge samples the per-cycle loop would have taken; no
    // component state changes on a skipped cycle, so every sample in the
    // span reads the current values (same replay as the single-threaded
    // Machine::fast_forward_span).
    if (hooks_.sample && hooks_.sample_interval > 0) {
        const Cycle step = hooks_.sample_interval;
        for (Cycle c = ((from + step - 1) / step) * step; c < to; c += step) {
            const ProfScope ps(hooks_.prof, ProfBuffer::kShardSlot,
                               ProfPhase::kSample);
            hooks_.sample(c);
        }
    }
    acct_next_ = to;
}

void Shard::enable_wheel(std::vector<std::uint32_t> inbound_consumers) {
    DTA_SIM_REQUIRE(wheel_ == nullptr, "enable_wheel() called twice");
    DTA_SIM_REQUIRE(inbound_consumers.size() == inbound_.size(),
                    "one consumer index per inbound channel");
    wheel_ = std::make_unique<WheelScheduler>();
    wheel_->attach(components_);
    wheel_->set_prof(hooks_.prof);
    inbound_consumers_ = std::move(inbound_consumers);
}

Cycle Shard::lookahead_hint() const {
    Cycle h = kIdleForever;
    if (!paused_ && !stuck_) {
        h = wheel_ != nullptr && wheel_->started() && !wheel_->dense_mode()
                ? wheel_->next_due(acct_next_)
                : acct_next_;
    }
    for (const ChannelBase* ch : inbound_) {
        Cycle d = 0;
        if (ch->peek_drain(&d)) {
            h = std::min(h, std::max(d, acct_next_));
        }
    }
    return h;
}

void Shard::wheel_span(Cycle from, Cycle to) {
    const ProfScope prof(hooks_.prof, ProfBuffer::kShardSlot,
                         ProfPhase::kFastforwardScan);
    skipped_ += to - from;
    // Replay the gauge samples the dense loop would have taken.  Lagging
    // sleepers are fine: gauges read architectural state, which skip()
    // cannot change (it only settles accounting like breakdown buckets).
    if (hooks_.sample && hooks_.sample_interval > 0) {
        const Cycle step = hooks_.sample_interval;
        for (Cycle c = ((from + step - 1) / step) * step; c < to; c += step) {
            const ProfScope ps(hooks_.prof, ProfBuffer::kShardSlot,
                               ProfPhase::kSample);
            hooks_.sample(c);
        }
    }
    acct_next_ = to;
}

void Shard::run_until_wheel(Cycle bound) {
    WheelScheduler& sched = *wheel_;
    ProfBuffer* const pb = hooks_.prof;
    stuck_ = false;
    if (hooks_.progress) {
        hooks_.progress(acct_next_);
    }
    std::uint64_t t = 0;
    if (pb != nullptr) {
        pb->take_orphan_child_ns();
        t = prof_now_ns();
    }
    const auto charge = [&](std::uint32_t slot, ProfPhase phase) {
        const std::uint64_t t2 = prof_now_ns();
        pb->add(slot, phase, t2 - t - pb->take_orphan_child_ns());
        t = t2;
    };
    if (!sched.started()) {
        sched.start(acct_next_);
    }
    // Window-entry channel arming: every entry visible now was published at
    // least one epoch ago (drain >= the window's start by the lookahead
    // bound), and entries the producer pushes *during* this window drain
    // beyond its end — so the oldest entry's stamp re-arms the consuming
    // router exactly once per window, and the router's own horizon chains
    // to later entries after each drain.
    for (std::size_t i = 0; i < inbound_.size(); ++i) {
        Cycle d = 0;
        if (inbound_[i]->peek_drain(&d)) {
            sched.wake_at(inbound_consumers_[i], std::max(d, acct_next_));
        }
    }
    while (!paused_ && acct_next_ < bound) {
        const Cycle now = acct_next_;
        if (!sched.dense_mode() && sched.idle()) {
            // Every horizon is kIdleForever: locally indistinguishable from
            // machine-wide deadlock (another shard may owe us a packet), so
            // flag it and coast to the barrier; the coordinator decides.
            stuck_ = true;
            wheel_span(now, bound);
            if (pb != nullptr) {
                charge(ProfBuffer::kShardSlot, ProfPhase::kNextActivity);
            }
            break;
        }
        const Cycle due = sched.dense_mode() ? now : sched.next_due(now);
        DTA_CHECK_MSG(due >= now, "wheel entry behind the shard clock");
        if (due > now) {
            wheel_span(now, std::min(due, bound));
            if (pb != nullptr) {
                charge(ProfBuffer::kShardSlot, ProfPhase::kNextActivity);
            }
            continue;
        }
        sched.run_cycle(now, pb, t);
        if (hooks_.sample && hooks_.sample_interval > 0 &&
            now % hooks_.sample_interval == 0) {
            hooks_.sample(now);
            if (pb != nullptr) {
                charge(ProfBuffer::kShardSlot, ProfPhase::kSample);
            }
        }
        if (hooks_.audit && hooks_.audit_interval > 0 &&
            now % hooks_.audit_interval == 0) {
            hooks_.audit(now);
            if (pb != nullptr) {
                charge(ProfBuffer::kShardSlot, ProfPhase::kAudit);
            }
        }
        ++ticked_;
        acct_next_ = now + 1;
        const bool quiet = all_quiescent();
        if (pb != nullptr) {
            charge(ProfBuffer::kShardSlot, ProfPhase::kQuiescence);
        }
        if (quiet) {
            paused_ = true;
            return;
        }
    }
}

void Shard::run_until(Cycle bound) {
    if (wheel_ != nullptr) {
        run_until_wheel(bound);
        return;
    }
    ProfBuffer* const pb = hooks_.prof;
    stuck_ = false;
    if (hooks_.progress) {
        hooks_.progress(acct_next_);
    }
    // Fully-chained timing: one clock read per segment boundary and zero
    // un-attributed gaps inside the loop — every nanosecond between two
    // boundaries is charged to exactly one (slot, phase).  Scopes opened
    // deeper in the call tree (channel serialisation/drain inside a tick,
    // the fast-forward scan) register as orphan child time and are
    // subtracted from the enclosing segment, keeping attribution
    // exclusive.  This chaining — rather than one RAII scope per segment —
    // is what makes per-shard coverage hold up even on an oversubscribed
    // host, where a preemption inside an instrumentation gap would charge
    // a whole scheduling quantum to nothing.
    std::uint64_t t = 0;
    if (pb != nullptr) {
        // Discard orphan time from scopes that closed before this chain
        // started (the barrier wait in EpochRunner::participate, a
        // catch-up's fast-forward scan): their spans are outside every
        // charge taken below, so subtracting them would underflow.
        pb->take_orphan_child_ns();
        t = prof_now_ns();
    }
    const auto charge = [&](std::uint32_t slot, ProfPhase phase) {
        const std::uint64_t t2 = prof_now_ns();
        pb->add(slot, phase, t2 - t - pb->take_orphan_child_ns());
        t = t2;
    };
    while (!paused_ && acct_next_ < bound) {
        const Cycle now = acct_next_;
        if (pb == nullptr) {
            for (Component* c : components_) {
                c->tick(now);
            }
        } else {
            for (std::size_t i = 0; i < components_.size(); ++i) {
                components_[i]->tick(now);
                charge(static_cast<std::uint32_t>(i + 1), ProfPhase::kTick);
            }
        }
        if (hooks_.sample && hooks_.sample_interval > 0 &&
            now % hooks_.sample_interval == 0) {
            hooks_.sample(now);
            if (pb != nullptr) {
                charge(ProfBuffer::kShardSlot, ProfPhase::kSample);
            }
        }
        if (hooks_.audit && hooks_.audit_interval > 0 &&
            now % hooks_.audit_interval == 0) {
            hooks_.audit(now);
            if (pb != nullptr) {
                charge(ProfBuffer::kShardSlot, ProfPhase::kAudit);
            }
        }
        ++ticked_;
        acct_next_ = now + 1;
        // Quiescent with empty inbound channels (channel emptiness is part
        // of the receiving router's quiescent()): this cycle is a candidate
        // for the global end.  Freeze the clock; the coordinator wakes us
        // if a cross-shard packet shows up, or catches us up to the exact
        // end once every shard agrees.
        const bool quiet = all_quiescent();
        if (pb != nullptr) {
            charge(ProfBuffer::kShardSlot, ProfPhase::kQuiescence);
        }
        if (quiet) {
            paused_ = true;
            return;
        }
        const std::uint64_t fp = fingerprint();
        // Same gating as the single-threaded loop: horizons are consulted
        // only when the tick just taken made no shard-local progress.
        if (hooks_.fast_forward && fp == prev_fp_) {
            Cycle h = kIdleForever;
            for (const Component* c : components_) {
                h = std::min(h, c->next_activity(now));
                if (h <= acct_next_) {
                    break;  // can't skip anything; stop asking
                }
            }
            if (h == kIdleForever) {
                // Frozen without input.  Locally that is indistinguishable
                // from a machine-wide deadlock — another shard may still
                // owe us a packet — so flag it and coast to the barrier;
                // the coordinator decides (idle-forever deadlock iff every
                // shard is paused or stuck and every channel is empty).
                stuck_ = true;
                h = bound;
            }
            DTA_CHECK_MSG(h > now, "component horizon not in the future");
            h = std::min(h, bound);
            if (h > acct_next_) {
                fast_forward_span(acct_next_, h);
            }
        }
        prev_fp_ = fp;
        // The fingerprint, the horizon scan, and the loop tail all belong
        // to the idle-detection machinery; the fast-forward scan inside
        // (its own scope) was already claimed and is subtracted as orphan
        // child time.
        if (pb != nullptr) {
            charge(ProfBuffer::kShardSlot, ProfPhase::kNextActivity);
        }
    }
}

void Shard::catch_up(Cycle to) {
    if (wheel_ != nullptr) {
        // The shard clock reaching `to` is NOT enough under the wheel:
        // sleepers' per-component accounting lags acct_next_, so the
        // scheduler must settle every component even when this shard is
        // the one that defined the global end cycle.
        {
            const ProfScope prof(hooks_.prof, ProfBuffer::kShardSlot,
                                 ProfPhase::kFastforwardScan);
            wheel_->catch_up(to);
        }
        if (acct_next_ < to) {
            wheel_span(acct_next_, to);
        }
        return;
    }
    if (acct_next_ >= to) {
        return;
    }
    fast_forward_span(acct_next_, to);
}

}  // namespace dta::sim
