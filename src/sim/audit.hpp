/// \file audit.hpp
/// \brief Machine-wide invariant auditor.
///
/// The simulator's correctness rests on a web of distributed counters and
/// state machines: per-thread synchronisation counters, the frame-slot
/// lifecycle FSM, MFC line/tag accounting, NoC packet conservation.  The
/// scattered DTA_CHECKs guard single call sites; the auditor complements
/// them with *cross-component* checks registered once at machine
/// construction and evaluated at a configurable cadence.
///
/// A check is a callable that inspects one component (or a set of them) and
/// calls AuditCtx::fail when an invariant does not hold.  Checks must not
/// mutate simulator state and must build failure strings only on the failure
/// path — the hot path is predicate evaluation.  Violations raise a
/// sim::SimError naming the component, the invariant, the cycle, and (when
/// one is implicated) the thread uid, so a fuzzer or test can pin the exact
/// state that broke.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace dta::sim {

/// Cadence / enablement knobs for the auditor (part of MachineConfig).
struct AuditConfig {
    /// Master switch.  Off by default: a disabled auditor costs one branch
    /// per simulated cycle and nothing else.
    bool enabled = false;
    /// Cycles between audit sweeps.  0 means auto: every cycle in debug
    /// builds, every 64th cycle in release builds (sampled audits still
    /// catch persistent corruption; transient windows need a debug build).
    Cycle interval = 0;

    [[nodiscard]] Cycle effective_interval() const {
        if (interval != 0) {
            return interval;
        }
#ifndef NDEBUG
        return 1;
#else
        return 64;
#endif
    }
};

/// Handed to every check; identifies the component under audit and the
/// current cycle, and is the only sanctioned way to report a violation.
class AuditCtx {
public:
    AuditCtx(const std::string& component, Cycle now)
        : component_(component), now_(now) {}

    [[nodiscard]] const std::string& component() const { return component_; }
    [[nodiscard]] Cycle now() const { return now_; }

    /// Raises sim::SimError with a message of the form
    ///   audit violation [component=..., invariant=..., cycle=..., thread=0x...]: detail
    /// (the thread field is omitted when \p thread_uid is 0).
    [[noreturn]] void fail(const std::string& invariant,
                           const std::string& detail,
                           std::uint64_t thread_uid = 0) const;

private:
    const std::string& component_;
    Cycle now_;
};

/// Registry of invariant checks.  Regular checks run at every audit sweep;
/// final checks additionally run once after the machine has quiesced (they
/// may assert drained-state properties that do not hold mid-run, e.g.
/// "every granted frame was freed").
class Auditor {
public:
    using CheckFn = std::function<void(const AuditCtx&)>;

    void add(std::string component, CheckFn fn) {
        checks_.push_back({std::move(component), std::move(fn)});
    }
    void add_final(std::string component, CheckFn fn) {
        final_.push_back({std::move(component), std::move(fn)});
    }

    /// Runs every regular check.  Throws sim::SimError on the first
    /// violation.
    void run(Cycle now) const;

    /// Runs every regular check, then every final check.
    void run_final(Cycle now) const;

    [[nodiscard]] std::size_t check_count() const { return checks_.size(); }
    [[nodiscard]] std::size_t final_check_count() const { return final_.size(); }
    [[nodiscard]] bool empty() const {
        return checks_.empty() && final_.empty();
    }

private:
    struct Check {
        std::string component;
        CheckFn fn;
    };
    std::vector<Check> checks_;
    std::vector<Check> final_;
};

}  // namespace dta::sim
