/// \file types.hpp
/// \brief Fundamental scalar types shared by every simulator module.
#pragma once

#include <cstdint>
#include <limits>

namespace dta::sim {

/// Global simulation time, in core clock cycles.
using Cycle = std::uint64_t;

/// Sentinel for "not yet known" completion times (e.g. a register that is
/// pending on a main-memory round trip whose latency is dynamic).
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/// Byte address into the simulated main memory (512 MB fits easily).
using MemAddr = std::uint64_t;

/// Byte address into a processing element's local store.
using LsAddr = std::uint32_t;

/// Identifies a node (cluster of processing elements) in the machine.
using NodeId = std::uint16_t;

/// Identifies a processing element *within* its node.
using PeId = std::uint16_t;

/// Flat index of a processing element across the whole machine.
using GlobalPeId = std::uint32_t;

/// Index of a thread-code object inside a dta::isa::Program.
using ThreadCodeId = std::uint32_t;

/// Opaque handle to an allocated frame: identifies the owning PE and the
/// frame slot within that PE's frame memory.  A frame handle doubles as the
/// identity of the DTA thread that owns the frame.
struct FrameHandle {
    std::uint32_t global_pe = 0;  ///< flat PE index of the frame's owner
    std::uint32_t slot = 0;       ///< frame slot within the owner's LSE

    friend bool operator==(const FrameHandle&, const FrameHandle&) = default;

    /// Packs the handle into a 64-bit register value (what FALLOC returns).
    [[nodiscard]] std::uint64_t pack() const {
        return (static_cast<std::uint64_t>(global_pe) << 32) | slot;
    }
    /// Reconstructs a handle from a packed register value.
    [[nodiscard]] static FrameHandle unpack(std::uint64_t v) {
        return FrameHandle{static_cast<std::uint32_t>(v >> 32),
                           static_cast<std::uint32_t>(v & 0xffffffffu)};
    }
};

}  // namespace dta::sim
