/// \file port.hpp
/// \brief Typed single-reader FIFO ports and a fixed-slot object pool.
///
/// `Port<T>` is the one sanctioned way to move data between components:
/// the producer holds a `Port<T>*` bound once at machine construction and
/// pushes; the owning consumer drains in its own tick. This replaces the
/// seed's anonymous glue deques (`memif_outbox_`, `bridge_out_`,
/// `link_arrivals_`) whose routing was re-derived every cycle inside
/// `Machine`.
///
/// `Pool<T>` replaces the hand-rolled in-flight context free-list: slots
/// are handed out by index (cheap to stuff into a packet's metadata word)
/// and checked against double-free / use-after-free.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "sim/check.hpp"

namespace dta::sim {

class StateSink;
class StateSource;

/// Wake sink for the event-driven scheduler (sim/wheel.hpp): a `Port<T>`
/// with a waker bound reports every push so the scheduler can re-arm the
/// sleeping consumer.  The dense loop binds no wakers and pays one
/// predictable branch per push.
class Waker {
 public:
    virtual ~Waker() = default;
    /// Input just landed in a queue owned by scheduler entry \p component.
    virtual void wake(std::uint32_t component) = 0;
};

/// An unbounded FIFO with exactly one consumer (its owner). Producers may
/// be many; ordering is push order, which the machine's fixed component
/// order makes deterministic.
template <typename T>
class Port {
 public:
    void push(T v) {
        q_.push_back(std::move(v));
        if (waker_ != nullptr) {
            waker_->wake(waker_comp_);
        }
    }

    /// Routes push notifications to \p w as scheduler entry \p component.
    /// Bound once at machine construction, before the run loop starts.
    void set_waker(Waker* w, std::uint32_t component) {
        waker_ = w;
        waker_comp_ = component;
    }

    /// Pop the oldest element into \p out; false when empty.
    [[nodiscard]] bool pop(T& out) {
        if (q_.empty()) {
            return false;
        }
        out = std::move(q_.front());
        q_.pop_front();
        return true;
    }

    /// Peek the oldest element (for try-then-commit consumers that may
    /// have to leave it queued, e.g. when downstream refuses injection).
    [[nodiscard]] const T& front() const { return q_.front(); }
    void pop_front() { q_.pop_front(); }

    [[nodiscard]] bool empty() const { return q_.empty(); }
    [[nodiscard]] std::size_t size() const { return q_.size(); }

    /// Snapshot the queued elements in FIFO order; \p f serialises one
    /// element. The waker binding is wiring and is not saved.
    template <typename F>
    void save_state(StateSink& s, F&& f) const {
        save_seq(s, q_, f);
    }

    /// Inverse of save_state; requires the port to be freshly constructed
    /// (or empty). Loading bypasses the waker on purpose: restore happens
    /// before the scheduler starts, and start() arms every component.
    template <typename F>
    void load_state(StateSource& s, F&& f) {
        DTA_CHECK(q_.empty());
        load_seq(s, q_, f);
    }

 private:
    std::deque<T> q_;
    Waker* waker_ = nullptr;
    std::uint32_t waker_comp_ = 0;
};

/// Fixed-type slab allocator handing out stable indices. Slots are reused
/// LIFO; `outstanding()` supports quiescence checks.
template <typename T>
class Pool {
 public:
    /// Claim a slot holding \p v; returns its index.
    [[nodiscard]] std::uint64_t alloc(T v) {
        std::uint64_t idx;
        if (!free_.empty()) {
            idx = free_.back();
            free_.pop_back();
        } else {
            idx = slots_.size();
            slots_.emplace_back();
        }
        Slot& s = slots_[idx];
        DTA_CHECK(!s.in_use);
        s.value = std::move(v);
        s.in_use = true;
        ++outstanding_;
        return idx;
    }

    [[nodiscard]] T& at(std::uint64_t idx) {
        DTA_CHECK(idx < slots_.size() && slots_[idx].in_use);
        return slots_[idx].value;
    }

    void release(std::uint64_t idx) {
        DTA_CHECK(idx < slots_.size() && slots_[idx].in_use);
        slots_[idx].in_use = false;
        free_.push_back(idx);
        --outstanding_;
    }

    [[nodiscard]] std::uint64_t outstanding() const { return outstanding_; }

    /// Snapshot slots (flag + value when live) and the LIFO free list
    /// verbatim, so restored alloc() hands out the same indices the
    /// original run would have.
    template <typename F>
    void save_state(StateSink& s, F&& f) const {
        save_seq(s, slots_, [&](StateSink& k, const Slot& slot) {
            k.flag(slot.in_use);
            if (slot.in_use) {
                f(k, slot.value);
            }
        });
        save_seq(s, free_,
                 [](StateSink& k, std::uint64_t idx) { k.u64(idx); });
    }

    template <typename F>
    void load_state(StateSource& s, F&& f) {
        DTA_CHECK(slots_.empty() && outstanding_ == 0);
        load_seq(s, slots_, [&](StateSource& k, Slot& slot) {
            slot.in_use = k.flag();
            if (slot.in_use) {
                f(k, slot.value);
                ++outstanding_;
            }
        });
        load_seq(s, free_,
                 [](StateSource& k, std::uint64_t& idx) { idx = k.u64(); });
    }

 private:
    struct Slot {
        T value{};
        bool in_use = false;
    };
    std::vector<Slot> slots_;
    std::vector<std::uint64_t> free_;
    std::uint64_t outstanding_ = 0;
};

}  // namespace dta::sim
