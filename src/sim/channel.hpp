/// \file channel.hpp
/// \brief Lock-free single-producer/single-consumer channel for cross-shard
///        packet exchange (the multi-threaded variant of sim::Port).
///
/// A cross-shard edge of the machine graph (an inter-node Link whose sender
/// and receiver live on different shards) serialises packets into one of
/// these instead of a plain deque.  Each entry carries the cycle at which
/// the *receiver* may observe it (`drain_at`), which the sender computes
/// deterministically at serialisation time — so the channel contents are a
/// pure function of simulated history, never of host thread timing.
///
/// Safety under the epoch barrier (see docs/ARCHITECTURE.md): packets
/// serialised during epoch k have `drain_at` of epoch k+1 or later, so the
/// consumer never needs an entry the producer is still in the middle of
/// publishing.  The ring is sized by the machine from the link latency; a
/// full ring therefore indicates a wiring bug, not back-pressure, and
/// producers treat push failure as fatal.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "sim/check.hpp"
#include "sim/types.hpp"

namespace dta::sim {

class StateSink;
class StateSource;

/// Type-erased view of a channel: what the epoch coordinator needs in order
/// to decide wake-up and termination (all shard threads are parked at the
/// barrier when it runs, so these reads are race-free by construction).
class ChannelBase {
public:
    ChannelBase() = default;
    ChannelBase(const ChannelBase&) = delete;
    ChannelBase& operator=(const ChannelBase&) = delete;
    virtual ~ChannelBase() = default;

    [[nodiscard]] virtual bool empty() const = 0;
    [[nodiscard]] virtual std::size_t size() const = 0;
    /// Drain cycle of the oldest entry, if any — consumer-side safe, and
    /// barrier-safe for the coordinator.  The event-driven shard loop arms
    /// the consuming router off this at window entry, and the epoch
    /// coordinator folds it into its cross-shard lookahead.
    [[nodiscard]] virtual bool peek_drain(Cycle* drain_at) const = 0;
};

/// Bounded lock-free SPSC ring.  Exactly one thread pushes (the shard that
/// owns the sending Link) and exactly one thread pops (the shard that owns
/// the receiving NodeRouter); `empty()`/`size()` may additionally be read
/// by the coordinator while both are quiesced at the barrier.
template <typename T>
class SpscChannel final : public ChannelBase {
public:
    /// \p capacity is rounded up to a power of two.
    explicit SpscChannel(std::size_t capacity) {
        std::size_t cap = 16;
        while (cap < capacity) {
            cap *= 2;
        }
        ring_.resize(cap);
        mask_ = cap - 1;
    }

    /// Producer side.  Entries must be pushed in non-decreasing drain_at
    /// order (link serialisation is FIFO, so this holds by construction).
    [[nodiscard]] bool try_push(Cycle drain_at, T value) {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail - head_.load(std::memory_order_acquire) > mask_) {
            return false;  // full
        }
        Entry& e = ring_[tail & mask_];
        e.drain_at = drain_at;
        e.value = std::move(value);
        tail_.store(tail + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side: drain cycle of the oldest entry, if any.
    [[nodiscard]] bool peek_drain(Cycle* drain_at) const override {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire)) {
            return false;
        }
        *drain_at = ring_[head & mask_].drain_at;
        return true;
    }

    /// Consumer side: pops the oldest entry.
    [[nodiscard]] bool try_pop(T& out) {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        if (head == tail_.load(std::memory_order_acquire)) {
            return false;
        }
        out = std::move(ring_[head & mask_].value);
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    [[nodiscard]] bool empty() const override {
        return head_.load(std::memory_order_acquire) ==
               tail_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::size_t size() const override {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire);
    }
    [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

    /// Snapshot in-flight entries oldest-first. Only called while every
    /// shard thread is parked at the epoch barrier, so the plain reads of
    /// both cursors are race-free.
    template <typename F>
    void save_state(StateSink& s, F&& f) const {
        const std::size_t head = head_.load(std::memory_order_acquire);
        const std::size_t tail = tail_.load(std::memory_order_acquire);
        s.u64(tail - head);
        for (std::size_t i = head; i != tail; ++i) {
            const Entry& e = ring_[i & mask_];
            s.u64(e.drain_at);
            f(s, e.value);
        }
    }

    /// Inverse of save_state on a freshly constructed (empty) channel.
    template <typename F>
    void load_state(StateSource& s, F&& f) {
        DTA_CHECK(empty());
        const std::uint64_t n = s.u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            const Cycle drain_at = s.u64();
            T value{};
            f(s, value);
            DTA_CHECK(try_push(drain_at, std::move(value)));
        }
    }

private:
    struct Entry {
        Cycle drain_at = 0;
        T value{};
    };

    std::vector<Entry> ring_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
    alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace dta::sim
