#include "sim/wheel.hpp"

#include <algorithm>
#include <functional>

#include "sim/check.hpp"

namespace dta::sim {

void WheelStats::merge_from(const WheelStats& o, std::uint32_t shard) {
    enabled = enabled || o.enabled;
    pops += o.pops;
    inserts += o.inserts;
    rearms += o.rearms;
    wakes += o.wakes;
    active_cycles += o.active_cycles;
    dense_cycles += o.dense_cycles;
    dense_entries += o.dense_entries;
    peak_occupancy = std::max(peak_occupancy, o.peak_occupancy);
    for (Sample s : o.samples) {
        s.shard = shard;
        samples.push_back(s);
    }
    std::stable_sort(samples.begin(), samples.end(),
                     [](const Sample& a, const Sample& b) {
                         return a.cycle != b.cycle ? a.cycle < b.cycle
                                                   : a.shard < b.shard;
                     });
}

// ---------------------------------------------------------------------------
// TimingWheel

void TimingWheel::insert(Cycle at, std::uint32_t id) {
    DTA_CHECK_MSG(at >= pos_, "timing wheel insert in the past");
    ++entries_;
    if (page_of(at) == page_of(pos_)) {
        l0_[at & (kSlots - 1)].push_back(id);
        ++l0_count_;
    } else if (epoch_of(at) == epoch_of(pos_)) {
        l1_[page_of(at) & (kSlots - 1)].push_back({at, id});
        ++l1_count_;
    } else {
        overflow_.push_back({at, id});
    }
}

void TimingWheel::refill_l1_from_overflow() {
    // Entries whose epoch has come into range cascade down; later ones
    // stay.  An entry already behind the new position is a stale ghost and
    // is dropped outright.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < overflow_.size(); ++i) {
        const Entry e = overflow_[i];
        if (epoch_of(e.at) > epoch_of(pos_)) {
            overflow_[kept++] = e;
        } else if (e.at < pos_) {
            --entries_;
        } else if (page_of(e.at) == page_of(pos_)) {
            l0_[e.at & (kSlots - 1)].push_back(e.id);
            ++l0_count_;
        } else {
            l1_[page_of(e.at) & (kSlots - 1)].push_back(e);
            ++l1_count_;
        }
    }
    overflow_.resize(kept);
}

void TimingWheel::refill_l0_from_l1() {
    // Cascade the current page's entries down.  The slot may also hold
    // entries for a future lap of L1 (same slot index, different page) —
    // those stay — and stale ghosts from pages already passed, dropped here.
    auto& slot = l1_[page_of(pos_) & (kSlots - 1)];
    std::size_t kept = 0;
    for (const Entry& e : slot) {
        if (e.at < pos_) {
            --entries_;
            --l1_count_;
        } else if (page_of(e.at) == page_of(pos_)) {
            l0_[e.at & (kSlots - 1)].push_back(e.id);
            ++l0_count_;
            --l1_count_;
        } else {
            slot[kept++] = e;
        }
    }
    slot.resize(kept);
}

void TimingWheel::advance(Cycle at) {
    DTA_CHECK_MSG(at >= pos_, "timing wheel moved backwards");
    if (page_of(at) == page_of(pos_)) {
        // Slots jumped over hold only stale ids (the caller never advances
        // past a live entry); drop them so a later lap of the page ring and
        // next_due() never see them.
        for (Cycle c = pos_; c < at && l0_count_ > 0; ++c) {
            auto& slot = l0_[c & (kSlots - 1)];
            entries_ -= slot.size();
            l0_count_ -= slot.size();
            slot.clear();
        }
        pos_ = at;
        return;
    }
    // Entering a new page: anything still in L0 is stale by the same
    // argument, so the whole level can be dropped before cascading in.
    for (auto& slot : l0_) {
        entries_ -= slot.size();
        slot.clear();
    }
    l0_count_ = 0;
    const bool new_epoch = epoch_of(at) != epoch_of(pos_);
    pos_ = at;
    if (new_epoch) {
        // One level up: L1 leftovers behind the new position are stale.
        // Entries for future epochs may legitimately sit in L1 slots
        // (insert files by page-within-epoch), so filter rather than clear.
        for (auto& slot : l1_) {
            std::size_t kept = 0;
            for (const Entry& e : slot) {
                if (e.at >= pos_) {
                    slot[kept++] = e;
                }
            }
            entries_ -= slot.size() - kept;
            l1_count_ -= slot.size() - kept;
            slot.resize(kept);
        }
        refill_l1_from_overflow();
    } else {
        // Same epoch, new page: ghosts in L1 slots for the pages jumped
        // over would otherwise linger a full L1 lap and pollute next_due().
        for (auto& slot : l1_) {
            std::size_t kept = 0;
            for (const Entry& e : slot) {
                if (e.at >= pos_) {
                    slot[kept++] = e;
                } else {
                    --entries_;
                    --l1_count_;
                }
            }
            slot.resize(kept);
        }
    }
    refill_l0_from_l1();
}

void TimingWheel::collect(Cycle at, std::vector<std::uint32_t>& out) {
    advance(at);
    auto& slot = l0_[at & (kSlots - 1)];
    for (const std::uint32_t id : slot) {
        out.push_back(id);
    }
    entries_ -= slot.size();
    l0_count_ -= slot.size();
    slot.clear();
}

Cycle TimingWheel::next_due() const {
    if (entries_ == 0) {
        return kCycleNever;
    }
    if (l0_count_ > 0) {
        // Every L0 entry sits in [pos_, end of page] (stale ids are purged
        // on advance), so the probe terminates within the page.
        const Cycle page_end = ((page_of(pos_) + 1) << kPageShift);
        for (Cycle c = pos_; c < page_end; ++c) {
            if (!l0_[c & (kSlots - 1)].empty()) {
                return c;
            }
        }
        DTA_CHECK_MSG(false, "timing wheel L0 count out of sync");
    }
    Cycle best = kCycleNever;
    if (l1_count_ > 0) {
        for (const auto& slot : l1_) {
            for (const Entry& e : slot) {
                best = std::min(best, e.at);
            }
        }
    }
    for (const Entry& e : overflow_) {
        best = std::min(best, e.at);
    }
    return best;
}

void TimingWheel::reset(Cycle at) {
    for (auto& slot : l0_) {
        slot.clear();
    }
    for (auto& slot : l1_) {
        slot.clear();
    }
    overflow_.clear();
    entries_ = 0;
    l0_count_ = 0;
    l1_count_ = 0;
    pos_ = at;
}

// ---------------------------------------------------------------------------
// WheelScheduler

void WheelScheduler::attach(const std::vector<Component*>& components) {
    comps_ = components;
    due_.assign(comps_.size(), kIdleForever);
    acct_.assign(comps_.size(), 0);
    active_.reserve(comps_.size());
    scratch_.reserve(comps_.size());
}

void WheelScheduler::start(Cycle now) {
    DTA_CHECK_MSG(!comps_.empty(), "wheel scheduler started unattached");
    wheel_.reset(now);
    for (std::uint32_t i = 0; i < comps_.size(); ++i) {
        due_[i] = now;
        acct_[i] = now;
        wheel_.insert(now, i);
    }
    armed_ = comps_.size();
    stats_.enabled = true;
    stats_.inserts += comps_.size();
    stats_.peak_occupancy = std::max(stats_.peak_occupancy, armed_);
    started_ = true;
}

void WheelScheduler::heap_push(std::uint32_t i) {
    active_.push_back(i);
    std::push_heap(active_.begin(), active_.end(),
                   std::greater<std::uint32_t>());
}

std::uint32_t WheelScheduler::heap_pop() {
    std::pop_heap(active_.begin(), active_.end(),
                  std::greater<std::uint32_t>());
    const std::uint32_t i = active_.back();
    active_.pop_back();
    return i;
}

void WheelScheduler::arm(std::uint32_t i, Cycle at) {
    if (due_[i] == kIdleForever) {
        ++armed_;
        stats_.peak_occupancy = std::max(stats_.peak_occupancy, armed_);
    }
    due_[i] = at;
    wheel_.insert(at, i);
    ++stats_.inserts;
}

void WheelScheduler::wake(std::uint32_t component) {
    if (!started_ || dense_) {
        return;  // pre-run launch() pushes; dense mode visits everyone anyway
    }
    // Dense-order rule: while cycle now_ is in flight, a consumer with a
    // higher list index than the producer under the cursor has not been
    // visited yet this cycle — the dense loop would have it observe the push
    // at now_.  Anyone else sees it at now_ + 1.
    const Cycle at =
        (in_cycle_ && component > cursor_) ? now_ : now_ + 1;
    if (due_[component] <= at) {
        return;  // already scheduled at least that early
    }
    ++stats_.wakes;
    const ProfScope prof(pb_, ProfBuffer::kShardSlot,
                         ProfPhase::kWheelInsert);
    if (in_cycle_ && at == now_) {
        if (due_[component] == kIdleForever) {
            ++armed_;
            stats_.peak_occupancy = std::max(stats_.peak_occupancy, armed_);
        }
        due_[component] = at;
        heap_push(component);
    } else {
        arm(component, at);
    }
}

void WheelScheduler::wake_at(std::uint32_t component, Cycle at) {
    if (dense_) {
        return;
    }
    if (due_[component] <= at) {
        return;
    }
    ++stats_.wakes;
    const ProfScope prof(pb_, ProfBuffer::kShardSlot,
                         ProfPhase::kWheelInsert);
    arm(component, at);
}

std::uint32_t WheelScheduler::run_cycle(Cycle at, ProfBuffer* pb,
                                        std::uint64_t& t) {
    if (dense_) {
        return run_dense_cycle(at, pb, t);
    }
    now_ = at;
    in_cycle_ = true;
    scratch_.clear();
    wheel_.collect(at, scratch_);
    for (const std::uint32_t i : scratch_) {
        if (due_[i] == at) {
            heap_push(i);
        }
        // due_[i] != at: a stale entry from a wake that re-armed earlier.
    }
    if (pb != nullptr) {
        const std::uint64_t t2 = prof_now_ns();
        pb->add(ProfBuffer::kShardSlot, ProfPhase::kWheelPop,
                t2 - t - pb->take_orphan_child_ns());
        t = t2;
    }
    std::uint32_t ticked = 0;
    while (!active_.empty()) {
        const std::uint32_t i = heap_pop();
        if (due_[i] != at) {
            continue;  // superseded while queued (double wake)
        }
        cursor_ = i;
        Component* const c = comps_[i];
        if (acct_[i] < at) {
            c->skip(acct_[i], at);
        }
        c->tick(at);
        acct_[i] = at + 1;
        if (pb != nullptr) {
            const std::uint64_t t2 = prof_now_ns();
            pb->add(i + 1, ProfPhase::kTick,
                    t2 - t - pb->take_orphan_child_ns());
            t = t2;
        }
        const Cycle h = c->next_activity(at);
        DTA_CHECK_MSG(h > at, "component horizon not in the future");
        ++stats_.rearms;
        --armed_;  // finite due_ consumed by this visit
        due_[i] = kIdleForever;
        if (h != kIdleForever) {
            arm(i, h);
        }
        if (pb != nullptr) {
            const std::uint64_t t2 = prof_now_ns();
            pb->add(ProfBuffer::kShardSlot, ProfPhase::kRearm,
                    t2 - t - pb->take_orphan_child_ns());
            t = t2;
        }
        ++ticked;
    }
    cursor_ = kNoCursor;
    in_cycle_ = false;
    stats_.pops += ticked;
    if (ticked > 0) {
        ++stats_.active_cycles;
    }
    // Degradation hysteresis: a machine where most components are due on
    // consecutive cycles pays more for pop/re-arm than it saves.
    const bool hot = static_cast<std::size_t>(ticked) * 2 >= comps_.size();
    if (hot && last_cycle_ != kCycleNever && at == last_cycle_ + 1) {
        if (++hot_streak_ >= kDenseEnterStreak) {
            enter_dense(at);
        }
    } else {
        hot_streak_ = hot ? 1 : 0;
    }
    last_cycle_ = at;
    return ticked;
}

std::uint32_t WheelScheduler::run_dense_cycle(Cycle at, ProfBuffer* pb,
                                              std::uint64_t& t) {
    for (std::uint32_t i = 0; i < comps_.size(); ++i) {
        comps_[i]->tick(at);
        acct_[i] = at + 1;
        if (pb != nullptr) {
            const std::uint64_t t2 = prof_now_ns();
            pb->add(i + 1, ProfPhase::kTick,
                    t2 - t - pb->take_orphan_child_ns());
            t = t2;
        }
    }
    ++stats_.dense_cycles;
    last_cycle_ = at;
    if ((at - dense_since_) % kDenseExitPeriod == kDenseExitPeriod - 1) {
        maybe_exit_dense(at);
    }
    return static_cast<std::uint32_t>(comps_.size());
}

void WheelScheduler::enter_dense(Cycle at) {
    // Cycle `at` is fully processed; bring every sleeper's accounting up to
    // at + 1 so dense ticking can proceed uniformly from the next cycle.
    for (std::uint32_t i = 0; i < comps_.size(); ++i) {
        if (acct_[i] < at + 1) {
            comps_[i]->skip(acct_[i], at + 1);
            acct_[i] = at + 1;
        }
    }
    dense_ = true;
    dense_since_ = at + 1;
    hot_streak_ = 0;
    ++stats_.dense_entries;
}

void WheelScheduler::maybe_exit_dense(Cycle at) {
    // Exit when well under half the machine wants the very next cycle.
    // Pending input is covered: a component with queued work reports
    // now + 1 itself (the horizon contract), so rebuilding purely from
    // horizons cannot strand a queue.
    std::size_t busy = 0;
    for (const Component* c : comps_) {
        if (c->next_activity(at) == at + 1) {
            ++busy;
        }
    }
    if (busy * 4 >= comps_.size()) {
        return;
    }
    wheel_.reset(at + 1);
    armed_ = 0;
    for (std::uint32_t i = 0; i < comps_.size(); ++i) {
        const Cycle h = comps_[i]->next_activity(at);
        due_[i] = kIdleForever;
        if (h != kIdleForever) {
            arm(i, h);
        }
    }
    dense_ = false;
    hot_streak_ = 0;
    last_cycle_ = at;
}

void WheelScheduler::catch_up(Cycle to) {
    if (!started_) {
        return;
    }
    for (std::uint32_t i = 0; i < comps_.size(); ++i) {
        if (acct_[i] < to) {
            comps_[i]->skip(acct_[i], to);
            acct_[i] = to;
        }
    }
}

}  // namespace dta::sim
