/// \file prof.hpp
/// \brief Host-time profiler: where does the simulator's *wall clock* go?
///
/// PR 1/4 made the simulated machine observable; this layer does the same
/// for the simulator itself.  Host nanoseconds are attributed per
/// (shard, component, phase) — which shard spent how long ticking pe3,
/// scanning horizons, waiting at the epoch barrier, serialising cross-shard
/// packets — exactly the data an event-driven scheduler core or a sweep
/// scheduler needs before it can be designed or validated.
///
/// Design rules, in priority order:
///  1. **Off is free.**  Every instrumentation site is guarded by one null
///     check on a shard-local ProfBuffer pointer; no clock is read.
///  2. **On is neutral.**  Profiling only reads the host clock; it never
///     touches simulated state, so RunResult (minus its host_profile
///     section) is byte-identical with profiling on or off.
///  3. **Exclusive attribution.**  Scopes nest (a Link serialising into a
///     cross-shard channel inside its own tick); a child's time is
///     subtracted from its enclosing scope so phase totals add up — per
///     shard they sum to the shard's measured wall clock minus loop
///     control, which the coverage figure reports honestly.
///
/// Buffers are strictly shard-local (each host thread writes only its own)
/// and merged deterministically after the join, like PR 3's metrics.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace dta::sim {

/// Where a host nanosecond was spent.  kTick is attributed per component;
/// the rest describe the run loop itself and land on the shard row.
enum class ProfPhase : std::uint8_t {
    kTick,              ///< inside a Component::tick call
    kNextActivity,      ///< the idle-horizon scan across components
    kQuiescence,        ///< the per-cycle quiescence sweep
    kFastforwardScan,   ///< skip() bookkeeping over a fast-forwarded span
    kBarrierWait,       ///< blocked at the epoch barrier (sharded runs)
    kChannelSerialize,  ///< publishing packets into cross-shard channels
    kChannelDrain,      ///< draining inbound cross-shard channels
    kAudit,             ///< invariant audit sweeps
    kSample,            ///< gauge sampling / metrics snapshots
    kWheelPop,          ///< collecting the due set from the timing wheel
    kWheelInsert,       ///< wheel enqueues from wakes and external re-arms
    kRearm,             ///< post-tick horizon query + reschedule
    kCount
};

inline constexpr std::size_t kNumProfPhases =
    static_cast<std::size_t>(ProfPhase::kCount);

/// Stable lower-case name ("tick", "barrier_wait", ...) used in reports.
[[nodiscard]] const char* prof_phase_name(ProfPhase p);

/// Monotonic host clock in nanoseconds.
[[nodiscard]] inline std::uint64_t prof_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// One (slot, phase) accumulator.
struct ProfAcc {
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
};

/// Cumulative per-phase totals captured mid-run (rendered as host counter
/// tracks next to the simulated Perfetto tracks).
struct ProfSnapshot {
    Cycle cycle = 0;
    std::array<std::uint64_t, kNumProfPhases> ns{};
};

class ProfScope;

/// One shard's (host thread's) accumulation buffer.  Row 0 is the shard
/// itself (loop phases); row i + 1 is the shard's i-th component.  Strictly
/// single-threaded: only the owning host thread may touch it mid-run.
class ProfBuffer {
public:
    static constexpr std::uint32_t kShardSlot = 0;

    ProfBuffer() = default;
    ProfBuffer(const ProfBuffer&) = delete;
    ProfBuffer& operator=(const ProfBuffer&) = delete;
    ProfBuffer(ProfBuffer&&) = default;
    ProfBuffer& operator=(ProfBuffer&&) = default;

    /// Sizes the buffer for \p num_components component rows (plus the
    /// shard row).  Must be called before any add().
    void reset(std::size_t num_components) {
        rows_.assign(num_components + 1, {});
    }

    void add(std::uint32_t slot, ProfPhase phase, std::uint64_t ns,
             std::uint64_t calls = 1) {
        ProfAcc& a = rows_[slot][static_cast<std::size_t>(phase)];
        a.ns += ns;
        a.calls += calls;
    }

    /// Time spent in scopes that opened with no enclosing scope (e.g. a
    /// channel-serialize scope inside a manually-timed component tick).
    /// The manual timer subtracts it to keep attribution exclusive.
    [[nodiscard]] std::uint64_t take_orphan_child_ns() {
        const std::uint64_t v = orphan_child_ns_;
        orphan_child_ns_ = 0;
        return v;
    }

    /// Records the cumulative per-phase totals at \p cycle (for the host
    /// Perfetto tracks; sampled at the machine's gauge cadence).
    void snapshot(Cycle cycle);

    void set_wall_ns(std::uint64_t ns) { wall_ns_ = ns; }
    [[nodiscard]] std::uint64_t wall_ns() const { return wall_ns_; }

    [[nodiscard]] const std::vector<
        std::array<ProfAcc, kNumProfPhases>>& rows() const {
        return rows_;
    }
    [[nodiscard]] const std::vector<ProfSnapshot>& snapshots() const {
        return snapshots_;
    }

    /// Sum of a phase across every row.
    [[nodiscard]] std::uint64_t phase_ns(ProfPhase p) const;
    /// Sum of every accumulator (the profiler's account of the wall clock).
    [[nodiscard]] std::uint64_t total_ns() const;

private:
    friend class ProfScope;

    std::vector<std::array<ProfAcc, kNumProfPhases>> rows_;
    std::vector<ProfSnapshot> snapshots_;
    std::uint64_t wall_ns_ = 0;
    ProfScope* top_ = nullptr;          ///< innermost open scope
    std::uint64_t orphan_child_ns_ = 0; ///< scope time with no open parent
};

/// RAII scoped timer.  A null buffer makes construction and destruction a
/// single branch each — the off-cost of every instrumentation site.
class ProfScope {
public:
    ProfScope(ProfBuffer* buf, std::uint32_t slot, ProfPhase phase)
        : buf_(buf), slot_(slot), phase_(phase) {
        if (buf_ == nullptr) {
            return;
        }
        parent_ = buf_->top_;
        buf_->top_ = this;
        t0_ = prof_now_ns();
    }

    ProfScope(const ProfScope&) = delete;
    ProfScope& operator=(const ProfScope&) = delete;

    ~ProfScope() {
        if (buf_ == nullptr) {
            return;
        }
        const std::uint64_t dur = prof_now_ns() - t0_;
        buf_->top_ = parent_;
        // Exclusive (self) time: nested scopes already claimed child_ns_.
        buf_->add(slot_, phase_, dur - child_ns_);
        if (parent_ != nullptr) {
            parent_->child_ns_ += dur;
        } else {
            buf_->orphan_child_ns_ += dur;
        }
    }

private:
    ProfBuffer* buf_;
    std::uint32_t slot_;
    ProfPhase phase_;
    ProfScope* parent_ = nullptr;
    std::uint64_t t0_ = 0;
    std::uint64_t child_ns_ = 0;
};

// ---------------------------------------------------------------------------
// Merged result (travels inside RunResult)
// ---------------------------------------------------------------------------

/// One (shard, component, phase) line of the merged profile.
struct HostProfileEntry {
    std::uint32_t shard = 0;
    std::string component;  ///< "-" for shard-level (loop) phases
    ProfPhase phase = ProfPhase::kTick;
    std::uint64_t ns = 0;
    std::uint64_t calls = 0;
};

/// Per-shard rollup: wall clock, per-phase totals, and the sampled series.
struct HostProfileShard {
    std::string name;
    std::uint64_t wall_ns = 0;
    std::array<std::uint64_t, kNumProfPhases> phase_ns{};
    std::vector<ProfSnapshot> samples;

    /// Fraction of the measured wall clock the phase accumulators explain.
    [[nodiscard]] double coverage() const;
};

/// A finished run's host-side profile (empty / disabled by default).
struct HostProfile {
    bool enabled = false;
    std::vector<HostProfileShard> shards;
    /// Per-(shard, component, phase) lines with ns > 0, sorted by
    /// (shard, component, phase) — a deterministic order for reports.
    std::vector<HostProfileEntry> entries;

    [[nodiscard]] std::uint64_t total_ns() const;
    [[nodiscard]] std::uint64_t total_wall_ns() const;

    /// Formats the sorted self-time table `dta_run --prof` prints: entries
    /// by descending ns (top \p top rows), then per-shard coverage lines.
    [[nodiscard]] std::string table(std::size_t top = 30) const;
};

/// Folds one shard's buffer into the merged profile.  \p component_names
/// must align with the buffer's component rows (row i + 1 = name i).
void merge_prof_buffer(HostProfile& out, std::uint32_t shard,
                       const std::string& shard_name, const ProfBuffer& buf,
                       const std::vector<std::string>& component_names);

}  // namespace dta::sim
