#include "xform/prefetch_pass.hpp"

#include <optional>
#include <vector>

#include "isa/validate.hpp"
#include "sched/lse.hpp"
#include "sim/check.hpp"

namespace dta::xform {

using isa::CodeBlock;
using isa::Instruction;
using isa::Opcode;
using isa::ThreadCode;

namespace {

std::uint32_t align_up(std::uint32_t v, std::uint32_t align) {
    return (v + align - 1) / align * align;
}

}  // namespace

ThreadCode add_prefetch(const ThreadCode& tc, const PrefetchOptions& opt,
                        PrefetchReport* report) {
    DTA_SIM_REQUIRE(!tc.has_prefetch_block(),
                    "prefetch pass applied to '" + tc.name +
                        "', which already has a PF block");

    // 1. Which annotations are actually referenced by READs?
    std::vector<bool> used(tc.annotations.size(), false);
    std::uint32_t annotated_reads = 0;
    std::uint32_t plain_reads = 0;
    for (const Instruction& ins : tc.code) {
        if (ins.op != Opcode::kRead) {
            continue;
        }
        if (ins.region == isa::kNoRegion) {
            ++plain_reads;
            continue;
        }
        used[static_cast<std::size_t>(ins.region)] = true;
        ++annotated_reads;
    }
    if (annotated_reads == 0) {
        // "In the case when there are no main memory accesses, threads will
        // remain unchanged as in the original DTA."
        if (report) {
            *report = PrefetchReport{};
            report->reads_left = plain_reads;
        }
        return tc;
    }

    // 2. Assign staging offsets and runtime region indices.
    std::vector<std::optional<std::uint8_t>> region_of(tc.annotations.size());
    std::vector<std::uint32_t> stage_off(tc.annotations.size(), 0);
    std::uint32_t cursor = 0;
    std::uint8_t next_region = 0;
    for (std::size_t i = 0; i < tc.annotations.size(); ++i) {
        if (!used[i]) {
            continue;
        }
        DTA_SIM_REQUIRE(next_region < sched::kNumRegions,
                        "'" + tc.name + "' prefetches more regions than the "
                        "region table holds");
        const auto& ann = tc.annotations[i];
        stage_off[i] = cursor;
        region_of[i] = next_region++;
        cursor = align_up(cursor + ann.bytes, opt.staging_align);
        DTA_SIM_REQUIRE(cursor <= opt.staging_bytes,
                        "'" + tc.name + "' prefetch regions exceed the " +
                            std::to_string(opt.staging_bytes) +
                            "-byte staging area");
    }

    // 3. Emit the PF block: per region, the cloned address slice plus one
    //    DMAGET; a single DMAWAIT closes the block.
    ThreadCode out;
    out.name = tc.name + "+pf";
    out.num_inputs = tc.num_inputs;
    out.annotations = tc.annotations;
    for (std::size_t i = 0; i < tc.annotations.size(); ++i) {
        if (!region_of[i]) {
            continue;
        }
        const auto& ann = tc.annotations[i];
        for (Instruction ins : ann.addr_code) {
            ins.block = CodeBlock::kPf;
            out.code.push_back(ins);
        }
        Instruction get;
        get.op = Opcode::kDmaGet;
        get.ra = ann.addr_reg;
        get.block = CodeBlock::kPf;
        isa::DmaArgs args;
        args.region = *region_of[i];
        args.ls_offset = stage_off[i];
        args.bytes = ann.bytes;
        args.stride = ann.stride;
        args.elem_bytes = ann.elem_bytes;
        get.region = static_cast<std::int16_t>(args.region);
        get.dma = args;
        out.code.push_back(get);
    }
    Instruction wait;
    wait.op = Opcode::kDmaWait;
    wait.block = CodeBlock::kPf;
    out.code.push_back(wait);

    const auto pf_len = static_cast<std::uint32_t>(out.code.size());
    out.pl_begin = pf_len;
    out.ex_begin = tc.ex_begin + pf_len;
    out.ps_begin = tc.ps_begin + pf_len;

    // 4. Copy the body, rewriting annotated READs and shifting branches.
    std::uint32_t decoupled = 0;
    for (Instruction ins : tc.code) {
        if (ins.info().is_branch) {
            ins.imm += pf_len;
        }
        if (ins.op == Opcode::kRead && ins.region != isa::kNoRegion) {
            const auto ann_idx = static_cast<std::size_t>(ins.region);
            DTA_CHECK(region_of[ann_idx].has_value());
            ins.op = Opcode::kLsLoad;
            ins.region =
                static_cast<std::int16_t>(*region_of[ann_idx]);
            ++decoupled;
        }
        out.code.push_back(ins);
    }

    isa::validate_thread_code(out);
    if (report) {
        report->regions_prefetched = next_region;
        report->reads_decoupled = decoupled;
        report->reads_left = plain_reads;
        report->pf_instructions = pf_len;
    }
    return out;
}

isa::Program add_prefetch(const isa::Program& prog,
                          const PrefetchOptions& opt) {
    isa::Program out;
    out.name = prog.name + "+pf";
    out.entry = prog.entry;
    out.codes.reserve(prog.codes.size());
    for (const ThreadCode& tc : prog.codes) {
        out.codes.push_back(add_prefetch(tc, opt));
    }
    isa::validate_program(out);
    return out;
}

PrefetchReport analyze_prefetch(const isa::Program& prog,
                                const PrefetchOptions& opt) {
    PrefetchReport total;
    for (const ThreadCode& tc : prog.codes) {
        PrefetchReport r;
        (void)add_prefetch(tc, opt, &r);
        total.regions_prefetched += r.regions_prefetched;
        total.reads_decoupled += r.reads_decoupled;
        total.reads_left += r.reads_left;
        total.pf_instructions += r.pf_instructions;
    }
    return total;
}

}  // namespace dta::xform
