/// \file prefetch_pass.hpp
/// \brief The compiler side of the paper's mechanism (Section 3): given
///        thread code whose global READs carry region annotations, emit the
///        PF code block and rewrite the annotated READs into local-store
///        accesses.
///
/// "For each thread that contains generic memory accesses, one new code
/// block (PreFetch or PF code block) will be created that will initiate the
/// transfer from main memory to local memory. [...] all READ instructions
/// that the thread contained are replaced by the compiler with [local]
/// instructions that now access the prefetched data in the local memory."
///
/// READs *without* an annotation are left untouched — this is bitcnt's
/// data-dependent table lookup case, where "it is faster to leave one
/// memory access inside the thread rather than prefetch all elements of the
/// array when only one will be used".
#pragma once

#include <cstdint>

#include "isa/program.hpp"

namespace dta::xform {

/// Tuning/validation knobs of the pass.
struct PrefetchOptions {
    /// Per-thread staging capacity; must match the machine's
    /// LseConfig::staging_bytes_per_frame or the run will fault.
    std::uint32_t staging_bytes = 8 * 1024;
    /// Alignment of each region's staging placement.
    std::uint32_t staging_align = 16;
};

/// Result summary of transforming one thread code.
struct PrefetchReport {
    std::uint32_t regions_prefetched = 0;
    std::uint32_t reads_decoupled = 0;   ///< READs rewritten to LSLOAD
    std::uint32_t reads_left = 0;        ///< unannotated READs kept
    std::uint32_t pf_instructions = 0;   ///< size of the emitted PF block
};

/// Transforms one thread code; \p report (optional) receives a summary.
/// Codes with no annotated READs are returned unchanged, as the paper
/// requires.  Throws sim::SimError if the regions do not fit the staging
/// area or the code already has a PF block.
[[nodiscard]] isa::ThreadCode add_prefetch(const isa::ThreadCode& tc,
                                           const PrefetchOptions& opt = {},
                                           PrefetchReport* report = nullptr);

/// Transforms every thread code of a program.
[[nodiscard]] isa::Program add_prefetch(const isa::Program& prog,
                                        const PrefetchOptions& opt = {});

/// Aggregate of \ref PrefetchReport over a whole program.
[[nodiscard]] PrefetchReport analyze_prefetch(const isa::Program& prog,
                                              const PrefetchOptions& opt = {});

}  // namespace dta::xform
