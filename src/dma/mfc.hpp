/// \file mfc.hpp
/// \brief The Memory Flow Controller — the per-SPE DMA engine the paper's
///        prefetch mechanism programs (Tables 3 & 4).
///
/// Commands carry the Table-3 parameter set: LS address, MEM address, data
/// size and a tag id that the LSE later uses to learn that the transfer
/// completed.  Strided transfers are a single command (Section 3: a strided
/// array access "could generate too many transactions [on a split-transaction
/// network] and DMA performs it in one transaction").
///
/// Timing model, matching Table 4:
///  * a bounded command queue (depth 16);
///  * one command is decoded at a time, taking `command_latency` (30) cycles;
///  * a decoded GET splits into line requests of at most `line_bytes` (128)
///    each (one request per element when strided); the enclosing PE ships
///    them over the NoC to the memory controller and feeds the returned data
///    back in;
///  * returned lines are written to the local store through the MFC's LS
///    client port (so DMA traffic really contends with the SPU and LSE);
///  * when every line of a command has been written, a completion with the
///    command's tag is published.
///
/// PUT commands (LS -> main memory) are implemented for completeness: lines
/// are read from the LS and handed out with payload attached.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "mem/local_store.hpp"
#include "sim/component.hpp"
#include "sim/metrics.hpp"
#include "sim/types.hpp"

namespace dta::sim {
class AuditCtx;
}

namespace dta::dma {

/// Configuration of one MFC (defaults = Table 4).
struct MfcConfig {
    std::uint32_t queue_depth = 16;      ///< command queue size
    std::uint32_t command_latency = 30;  ///< decode latency per command
    std::uint32_t line_bytes = 128;      ///< largest single bus transfer
    std::uint32_t max_outstanding_lines = 8;  ///< in-flight line requests
};

/// Transfer direction.
enum class MfcOp : std::uint8_t { kGet, kPut };

/// One DMA command (Table 3 parameters + bookkeeping).
struct MfcCommand {
    MfcOp op = MfcOp::kGet;
    std::uint32_t tag = 0;        ///< Table 3 "Tag ID"
    sim::MemAddr mem_addr = 0;    ///< Table 3 "MEM address"
    sim::LsAddr ls_addr = 0;      ///< Table 3 "LS address"
    std::uint32_t bytes = 0;      ///< Table 3 "Data size"
    std::uint32_t stride = 0;     ///< 0 = contiguous
    std::uint32_t elem_bytes = 0; ///< element size when strided
    std::uint64_t owner = 0;      ///< opaque owner context (frame handle)
};

/// A line-granularity memory request produced by a decoded command.
struct MfcLineRequest {
    std::uint64_t line_id = 0;  ///< MFC-internal correlation id
    MfcOp op = MfcOp::kGet;
    sim::MemAddr mem_addr = 0;
    std::uint32_t bytes = 0;
    std::vector<std::uint8_t> data;  ///< payload for PUT lines
};

/// Published when the last line of a command lands.
struct MfcCompletion {
    std::uint32_t tag = 0;
    std::uint64_t owner = 0;
};

/// One completed DMA command's lifetime (program → tag-complete), recorded
/// when a span sink is installed; rendered as timeline slices by
/// core/trace.cpp.
struct DmaSpan {
    std::uint32_t pe = 0;
    std::uint32_t tag = 0;
    MfcOp op = MfcOp::kGet;
    std::uint32_t bytes = 0;
    sim::Cycle begin = 0;
    sim::Cycle end = 0;  ///< exclusive
};

/// One SPE's DMA engine.
class Mfc final : public sim::Component {
public:
    /// \p ls is the local store DMA data is staged in/out of; not owned.
    Mfc(const MfcConfig& cfg, mem::LocalStore& ls);

    /// True if the command queue has a free slot.
    [[nodiscard]] bool can_enqueue() const {
        return queue_.size() < cfg_.queue_depth;
    }

    /// Enqueues a command; returns false when the queue is full.
    [[nodiscard]] bool try_enqueue(MfcCommand cmd);

    /// Advances decode, line issue, and LS write-back by one cycle.
    void tick(sim::Cycle now) override;

    /// Horizon: emitted-but-unfetched lines and fresh completions need the
    /// owning PE next cycle; a decode in progress matures at
    /// decode_done_at_; lines in flight wait on external data (reported by
    /// whichever component carries them).
    [[nodiscard]] sim::Cycle next_activity(sim::Cycle now) const override;

    /// Skipped cycles only need the stale-by-one event timestamp updated:
    /// off-tick calls (ack_put_line) observe the previous cycle's now_,
    /// exactly as they would after a real tick at to - 1.
    void skip(sim::Cycle from, sim::Cycle to) override {
        (void)from;
        now_ = to - 1;
    }

    /// Hands the next issued line request to the caller (who owns NoC
    /// transport); respects the outstanding-line limit.
    [[nodiscard]] bool pop_line_request(MfcLineRequest& out);

    /// Delivers the data for a previously popped GET line request.
    void deliver_line_data(std::uint64_t line_id,
                           std::span<const std::uint8_t> data);

    /// Acknowledges a PUT line reaching memory.
    void ack_put_line(std::uint64_t line_id);

    /// Pops the next command completion, if any.
    [[nodiscard]] bool pop_completion(MfcCompletion& out);

    /// True when no command or line is pending anywhere in the engine.
    [[nodiscard]] bool quiescent() const override;

    /// Invariant audit (sim/audit.hpp): line/tag accounting — the in-flight
    /// counter, line table, free-slot list, and per-command line ledgers
    /// must stay mutually consistent, and every in-flight line must target
    /// a valid LS range.  Read-only; reports violations through \p ctx.
    void audit(const sim::AuditCtx& ctx) const;

    [[nodiscard]] const MfcConfig& config() const { return cfg_; }

    // --- observability ------------------------------------------------------
    /// Resolves this MFC's instruments (no-op when \p reg is disabled):
    /// dma.tag_latency histogram and dma.* counters.
    void attach_metrics(sim::MetricsRegistry& reg);
    /// Installs a sink receiving one DmaSpan per completed command;
    /// \p pe labels the spans with the owning PE.
    void set_span_sink(std::vector<DmaSpan>* sink, std::uint32_t pe) {
        span_sink_ = sink;
        span_pe_ = pe;
    }

    // --- statistics ---------------------------------------------------------
    [[nodiscard]] std::uint64_t commands_completed() const {
        return commands_completed_;
    }
    [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }
    [[nodiscard]] std::uint64_t enqueue_rejections() const {
        return rejections_;
    }
    [[nodiscard]] std::size_t queued_commands() const {
        return queue_.size() + (decoding_ ? 1 : 0);
    }
    /// Line requests issued to the NoC/memory and not yet finished.
    [[nodiscard]] std::uint32_t lines_in_flight() const {
        return lines_in_flight_;
    }
    /// Commands anywhere in the engine: queued, decoding, or transferring.
    [[nodiscard]] std::size_t commands_in_flight() const;

    // --- checkpoint/restore -------------------------------------------------
    /// Serializes the command queue, the decode in progress, every active
    /// command's line ledger, emitted-but-unfetched lines, the in-flight
    /// line table, completions, and statistics — a snapshot taken mid-DMA
    /// restores with the transfer still in flight.
    void save_state(sim::StateSink& s) const override;
    void load_state(sim::StateSource& s) override;

private:
    struct ActiveCommand {
        MfcCommand cmd;
        sim::Cycle enqueued_at = 0;        ///< cycle the SPU programmed it
        std::uint32_t lines_total = 0;
        std::uint32_t lines_emitted = 0;   ///< line requests generated
        std::uint32_t lines_finished = 0;  ///< data written to LS / acked
        bool done() const { return lines_finished == lines_total; }
    };

    struct LineInfo {
        std::size_t active_idx = 0;  ///< index into active_ (stable via ids)
        sim::LsAddr ls_addr = 0;
        std::uint32_t bytes = 0;
    };

    void start_decode(sim::Cycle now);
    void emit_lines();
    /// Publishes the completion (and metrics) when every line landed.
    void finish_if_done(std::size_t active_idx, sim::Cycle now);
    [[nodiscard]] static std::uint32_t count_lines(const MfcCommand& cmd,
                                                   std::uint32_t line_bytes);

    MfcConfig cfg_;
    mem::LocalStore& ls_;
    std::deque<MfcCommand> queue_;
    std::deque<sim::Cycle> queue_times_;  ///< enqueue cycle, parallel to queue_
    bool decoding_ = false;
    sim::Cycle decode_done_at_ = 0;
    MfcCommand decode_cmd_;
    sim::Cycle decode_cmd_enq_at_ = 0;
    std::vector<ActiveCommand> active_;    ///< indexed by slot; freed lazily
    std::deque<std::size_t> free_slots_;
    std::deque<MfcLineRequest> ready_lines_;  ///< emitted, waiting for pickup
    std::uint64_t next_line_id_ = 1;
    std::vector<std::pair<std::uint64_t, LineInfo>> line_table_;  ///< in-flight
    std::uint32_t lines_in_flight_ = 0;
    std::deque<MfcCompletion> completions_;
    std::uint64_t commands_completed_ = 0;
    std::uint64_t bytes_ = 0;
    std::uint64_t rejections_ = 0;

    // observability (all optional; null when metrics are off)
    sim::Cycle now_ = 0;  ///< last tick time, for off-tick event stamps
    sim::Histogram* tag_latency_ = nullptr;
    sim::Counter* commands_ctr_ = nullptr;
    sim::Counter* bytes_ctr_ = nullptr;
    std::vector<DmaSpan>* span_sink_ = nullptr;
    std::uint32_t span_pe_ = 0;
};

}  // namespace dta::dma
