#include "dma/mfc.hpp"

#include <algorithm>
#include <utility>

#include "sim/audit.hpp"
#include "sim/check.hpp"
#include "sim/snapshot.hpp"

namespace dta::dma {
namespace {

/// Internal line phases are implicit in which container a line sits in; the
/// line table only tracks lines between emission and completion.
enum class LinePhase : std::uint8_t { kGet, kPut };

void save_command(sim::StateSink& s, const MfcCommand& c) {
    s.u8(static_cast<std::uint8_t>(c.op));
    s.u32(c.tag);
    s.u64(c.mem_addr);
    s.u32(c.ls_addr);
    s.u32(c.bytes);
    s.u32(c.stride);
    s.u32(c.elem_bytes);
    s.u64(c.owner);
}

void load_command(sim::StateSource& s, MfcCommand& c) {
    c.op = static_cast<MfcOp>(s.u8());
    c.tag = s.u32();
    c.mem_addr = s.u64();
    c.ls_addr = s.u32();
    c.bytes = s.u32();
    c.stride = s.u32();
    c.elem_bytes = s.u32();
    c.owner = s.u64();
}

}  // namespace

Mfc::Mfc(const MfcConfig& cfg, mem::LocalStore& ls) : cfg_(cfg), ls_(ls) {
    DTA_SIM_REQUIRE(cfg.queue_depth > 0, "MFC queue depth must be non-zero");
    DTA_SIM_REQUIRE(cfg.line_bytes > 0 &&
                        cfg.line_bytes <= ls.config().max_request_bytes,
                    "MFC line size incompatible with local store");
    DTA_SIM_REQUIRE(cfg.max_outstanding_lines > 0,
                    "MFC needs at least one outstanding line");
    set_name("mfc");
}

sim::Cycle Mfc::next_activity(sim::Cycle now) const {
    // Outputs waiting for the owning PE to drain them: retry next cycle.
    if (!completions_.empty() || !ready_lines_.empty()) {
        return now + 1;
    }
    if (decoding_) {
        return decode_done_at_ > now ? decode_done_at_ : now + 1;
    }
    if (!queue_.empty()) {
        return now + 1;  // start_decode would run on the next tick
    }
    // Lines in flight (line_table_) and fully-emitted active commands wait
    // on external data/acks; the carrier's horizon bounds the jump.
    return sim::kIdleForever;
}

std::uint32_t Mfc::count_lines(const MfcCommand& cmd,
                               std::uint32_t line_bytes) {
    if (cmd.stride != 0) {
        return cmd.bytes / cmd.elem_bytes;
    }
    return (cmd.bytes + line_bytes - 1) / line_bytes;
}

bool Mfc::try_enqueue(MfcCommand cmd) {
    DTA_SIM_REQUIRE(cmd.bytes > 0, "MFC command transfers zero bytes");
    if (cmd.stride != 0) {
        DTA_SIM_REQUIRE(cmd.elem_bytes > 0 && cmd.bytes % cmd.elem_bytes == 0,
                        "strided MFC command with inconsistent element size");
        DTA_SIM_REQUIRE(cmd.elem_bytes <= cfg_.line_bytes,
                        "strided MFC element larger than one line");
        DTA_SIM_REQUIRE(cmd.elem_bytes <= cmd.stride,
                        "strided MFC elements overlap");
    }
    // The staged data is packed contiguously in the LS (gather semantics).
    DTA_SIM_REQUIRE(static_cast<std::uint64_t>(cmd.ls_addr) + cmd.bytes <=
                        ls_.config().size_bytes,
                    "MFC command overflows the local store");
    if (!can_enqueue()) {
        ++rejections_;
        return false;
    }
    queue_.push_back(cmd);
    queue_times_.push_back(now_);
    return true;
}

std::size_t Mfc::commands_in_flight() const {
    std::size_t n = queue_.size() + (decoding_ ? 1 : 0);
    for (const auto& ac : active_) {
        if (ac.lines_total != 0 && !ac.done()) {
            ++n;
        }
    }
    return n;
}

void Mfc::attach_metrics(sim::MetricsRegistry& reg) {
    tag_latency_ = reg.histogram("dma.tag_latency");
    commands_ctr_ = reg.counter("dma.commands");
    bytes_ctr_ = reg.counter("dma.bytes");
}

void Mfc::finish_if_done(std::size_t active_idx, sim::Cycle now) {
    ActiveCommand& ac = active_[active_idx];
    if (!ac.done()) {
        return;
    }
    completions_.push_back(MfcCompletion{ac.cmd.tag, ac.cmd.owner});
    ++commands_completed_;
    if (tag_latency_ != nullptr) {
        tag_latency_->record(now - ac.enqueued_at);
    }
    if (commands_ctr_ != nullptr) {
        commands_ctr_->add();
    }
    if (bytes_ctr_ != nullptr) {
        bytes_ctr_->add(ac.cmd.bytes);
    }
    if (span_sink_ != nullptr) {
        span_sink_->push_back(DmaSpan{span_pe_, ac.cmd.tag, ac.cmd.op,
                                      ac.cmd.bytes, ac.enqueued_at, now + 1});
    }
    ac.lines_total = 0;  // mark slot reusable
    free_slots_.push_back(active_idx);
}

void Mfc::start_decode(sim::Cycle now) {
    if (decoding_ || queue_.empty()) {
        return;
    }
    decode_cmd_ = queue_.front();
    queue_.pop_front();
    decode_cmd_enq_at_ = queue_times_.front();
    queue_times_.pop_front();
    decoding_ = true;
    decode_done_at_ = now + cfg_.command_latency;
}

void Mfc::emit_lines() {
    // Walk active commands in slot order of arrival; emission order within a
    // command is sequential.  We iterate over all slots but only ones with
    // unemitted lines do work; the command count is tiny (<= queue depth).
    for (std::size_t idx = 0; idx < active_.size(); ++idx) {
        ActiveCommand& ac = active_[idx];
        if (ac.lines_total == 0 || ac.lines_emitted == ac.lines_total) {
            continue;
        }
        while (ac.lines_emitted < ac.lines_total &&
               lines_in_flight_ < cfg_.max_outstanding_lines) {
            const std::uint32_t i = ac.lines_emitted++;
            ++lines_in_flight_;
            MfcLineRequest line;
            line.line_id = next_line_id_++;
            line.op = ac.cmd.op;
            LineInfo info;
            info.active_idx = idx;
            if (ac.cmd.stride != 0) {
                line.mem_addr = ac.cmd.mem_addr +
                                static_cast<sim::MemAddr>(i) * ac.cmd.stride;
                line.bytes = ac.cmd.elem_bytes;
                info.ls_addr = ac.cmd.ls_addr + i * ac.cmd.elem_bytes;
            } else {
                const std::uint32_t off = i * cfg_.line_bytes;
                line.mem_addr = ac.cmd.mem_addr + off;
                line.bytes = std::min(cfg_.line_bytes, ac.cmd.bytes - off);
                info.ls_addr = ac.cmd.ls_addr + off;
            }
            info.bytes = line.bytes;
            line_table_.emplace_back(line.line_id, info);
            if (ac.cmd.op == MfcOp::kGet) {
                ready_lines_.push_back(std::move(line));
            } else {
                // PUT: fetch the payload from the LS first.
                mem::LsRequest rq;
                rq.id = line.line_id;
                rq.is_write = false;
                rq.addr = info.ls_addr;
                rq.size = line.bytes;
                rq.meta = line.line_id;
                ls_.enqueue(mem::LsClient::kMfc, std::move(rq));
            }
        }
        if (lines_in_flight_ >= cfg_.max_outstanding_lines) {
            break;
        }
    }
}

void Mfc::tick(sim::Cycle now) {
    now_ = now;
    // 1. Drain LS responses belonging to the MFC.
    mem::LsResponse resp;
    while (ls_.pop_response(mem::LsClient::kMfc, resp)) {
        const auto it = std::find_if(
            line_table_.begin(), line_table_.end(),
            [&](const auto& e) { return e.first == resp.meta; });
        DTA_CHECK_MSG(it != line_table_.end(), "MFC got LS response for unknown line");
        const LineInfo info = it->second;
        ActiveCommand& ac = active_[info.active_idx];
        if (resp.is_write) {
            // GET line landed in the LS: the line is finished.
            line_table_.erase(it);
            DTA_CHECK(lines_in_flight_ > 0);
            --lines_in_flight_;
            ++ac.lines_finished;
            bytes_ += info.bytes;
            finish_if_done(info.active_idx, now);
        } else {
            // PUT line payload read from LS: ready to ship to memory.
            MfcLineRequest line;
            line.line_id = resp.meta;
            line.op = MfcOp::kPut;
            const std::uint32_t i_bytes = info.bytes;
            // Recover the memory address from the command layout.
            const MfcCommand& cmd = ac.cmd;
            const std::uint32_t ls_delta = info.ls_addr - cmd.ls_addr;
            if (cmd.stride != 0) {
                const std::uint32_t idx = ls_delta / cmd.elem_bytes;
                line.mem_addr =
                    cmd.mem_addr + static_cast<sim::MemAddr>(idx) * cmd.stride;
            } else {
                line.mem_addr = cmd.mem_addr + ls_delta;
            }
            line.bytes = i_bytes;
            line.data = std::move(resp.data);
            ready_lines_.push_back(std::move(line));
            // A PUT line is not finished here: it completes only when
            // memory acknowledges it (ack_put_line), which is where the
            // command-completion check runs for PUTs.
        }
    }

    // 2. Finish decoding the current command.
    if (decoding_ && now >= decode_done_at_) {
        decoding_ = false;
        ActiveCommand ac;
        ac.cmd = decode_cmd_;
        ac.enqueued_at = decode_cmd_enq_at_;
        ac.lines_total = count_lines(decode_cmd_, cfg_.line_bytes);
        DTA_CHECK(ac.lines_total > 0);
        if (!free_slots_.empty()) {
            const std::size_t slot = free_slots_.front();
            free_slots_.pop_front();
            active_[slot] = std::move(ac);
        } else {
            active_.push_back(std::move(ac));
        }
    }

    // 3. Begin decoding the next queued command.
    start_decode(now);

    // 4. Emit line requests up to the outstanding limit.
    emit_lines();
}

bool Mfc::pop_line_request(MfcLineRequest& out) {
    if (ready_lines_.empty()) {
        return false;
    }
    out = std::move(ready_lines_.front());
    ready_lines_.pop_front();
    return true;
}

void Mfc::deliver_line_data(std::uint64_t line_id,
                            std::span<const std::uint8_t> data) {
    const auto it = std::find_if(
        line_table_.begin(), line_table_.end(),
        [&](const auto& e) { return e.first == line_id; });
    DTA_CHECK_MSG(it != line_table_.end(), "data delivered for unknown DMA line");
    const LineInfo& info = it->second;
    DTA_SIM_REQUIRE(data.size() == info.bytes, "DMA line data size mismatch");
    mem::LsRequest rq;
    rq.id = line_id;
    rq.is_write = true;
    rq.addr = info.ls_addr;
    rq.size = info.bytes;
    rq.data.assign(data.begin(), data.end());
    rq.meta = line_id;
    ls_.enqueue(mem::LsClient::kMfc, std::move(rq));
}

void Mfc::ack_put_line(std::uint64_t line_id) {
    const auto it = std::find_if(
        line_table_.begin(), line_table_.end(),
        [&](const auto& e) { return e.first == line_id; });
    DTA_CHECK_MSG(it != line_table_.end(), "ack for unknown DMA PUT line");
    const LineInfo info = it->second;
    line_table_.erase(it);
    DTA_CHECK(lines_in_flight_ > 0);
    --lines_in_flight_;
    ActiveCommand& ac = active_[info.active_idx];
    ++ac.lines_finished;
    bytes_ += info.bytes;
    finish_if_done(info.active_idx, now_);
}

bool Mfc::pop_completion(MfcCompletion& out) {
    if (completions_.empty()) {
        return false;
    }
    out = completions_.front();
    completions_.pop_front();
    return true;
}

void Mfc::audit(const sim::AuditCtx& ctx) const {
    if (queue_.size() != queue_times_.size()) {
        ctx.fail("queue-accounting",
                 "command queue and enqueue-time queue diverged (" +
                     std::to_string(queue_.size()) + " vs " +
                     std::to_string(queue_times_.size()) + ")");
    }
    if (queue_.size() > cfg_.queue_depth) {
        ctx.fail("queue-accounting",
                 "command queue holds " + std::to_string(queue_.size()) +
                     " commands, over the depth of " +
                     std::to_string(cfg_.queue_depth));
    }
    if (lines_in_flight_ != line_table_.size()) {
        ctx.fail("line-accounting",
                 "lines_in_flight says " + std::to_string(lines_in_flight_) +
                     " but the line table holds " +
                     std::to_string(line_table_.size()) + " lines");
    }
    if (lines_in_flight_ > cfg_.max_outstanding_lines) {
        ctx.fail("line-accounting",
                 std::to_string(lines_in_flight_) +
                     " lines in flight, over the limit of " +
                     std::to_string(cfg_.max_outstanding_lines));
    }
    // Per-command line ledger: the in-flight lines of slot i are exactly
    // lines_emitted - lines_finished, and the counters never run backwards
    // or past the total.
    std::vector<std::uint32_t> table_lines(active_.size(), 0);
    for (const auto& [line_id, info] : line_table_) {
        if (info.active_idx >= active_.size()) {
            ctx.fail("line-accounting",
                     "line " + std::to_string(line_id) +
                         " references unknown command slot " +
                         std::to_string(info.active_idx));
        }
        if (active_[info.active_idx].lines_total == 0) {
            ctx.fail("tag-accounting",
                     "line " + std::to_string(line_id) +
                         " belongs to an already-completed command slot "
                         "(tag reuse hazard)");
        }
        if (static_cast<std::uint64_t>(info.ls_addr) + info.bytes >
            ls_.config().size_bytes) {
            ctx.fail("ls-range", "in-flight line " + std::to_string(line_id) +
                                     " targets LS bytes past the local store");
        }
        ++table_lines[info.active_idx];
    }
    for (std::size_t idx = 0; idx < active_.size(); ++idx) {
        const ActiveCommand& ac = active_[idx];
        if (ac.lines_total == 0) {
            continue;  // free slot
        }
        if (ac.lines_emitted > ac.lines_total ||
            ac.lines_finished > ac.lines_emitted) {
            ctx.fail("line-accounting",
                     "command slot " + std::to_string(idx) +
                         " ledger out of order: emitted " +
                         std::to_string(ac.lines_emitted) + ", finished " +
                         std::to_string(ac.lines_finished) + ", total " +
                         std::to_string(ac.lines_total));
        }
        if (table_lines[idx] != ac.lines_emitted - ac.lines_finished) {
            ctx.fail("line-accounting",
                     "command slot " + std::to_string(idx) + " has " +
                         std::to_string(table_lines[idx]) +
                         " lines in the table but its ledger says " +
                         std::to_string(ac.lines_emitted - ac.lines_finished));
        }
    }
    // Free-slot list: exactly the completed slots, each once.
    std::size_t completed_slots = 0;
    for (const ActiveCommand& ac : active_) {
        completed_slots += ac.lines_total == 0 ? 1 : 0;
    }
    if (completed_slots != free_slots_.size()) {
        ctx.fail("tag-accounting",
                 "free-slot list holds " + std::to_string(free_slots_.size()) +
                     " entries but " + std::to_string(completed_slots) +
                     " command slots are free");
    }
    std::vector<bool> seen(active_.size(), false);
    for (const std::size_t idx : free_slots_) {
        if (idx >= active_.size()) {
            ctx.fail("tag-accounting", "free-slot list holds out-of-range "
                                       "slot " + std::to_string(idx));
        }
        if (active_[idx].lines_total != 0) {
            ctx.fail("tag-accounting",
                     "slot " + std::to_string(idx) +
                         " sits in the free list while its command is "
                         "still transferring");
        }
        if (seen[idx]) {
            ctx.fail("tag-accounting", "slot " + std::to_string(idx) +
                                           " appears twice in the free list");
        }
        seen[idx] = true;
    }
}

void Mfc::save_state(sim::StateSink& s) const {
    sim::save_seq(s, queue_, save_command);
    sim::save_seq(s, queue_times_,
                  [](sim::StateSink& k, sim::Cycle c) { k.u64(c); });
    s.flag(decoding_);
    s.u64(decode_done_at_);
    save_command(s, decode_cmd_);
    s.u64(decode_cmd_enq_at_);
    sim::save_seq(s, active_, [](sim::StateSink& k, const ActiveCommand& ac) {
        save_command(k, ac.cmd);
        k.u64(ac.enqueued_at);
        k.u32(ac.lines_total);
        k.u32(ac.lines_emitted);
        k.u32(ac.lines_finished);
    });
    sim::save_seq(s, free_slots_,
                  [](sim::StateSink& k, std::size_t idx) { k.u64(idx); });
    sim::save_seq(s, ready_lines_,
                  [](sim::StateSink& k, const MfcLineRequest& ln) {
                      k.u64(ln.line_id);
                      k.u8(static_cast<std::uint8_t>(ln.op));
                      k.u64(ln.mem_addr);
                      k.u32(ln.bytes);
                      k.u64(ln.data.size());
                      k.blob(ln.data.data(), ln.data.size());
                  });
    s.u64(next_line_id_);
    sim::save_seq(s, line_table_, [](sim::StateSink& k, const auto& e) {
        k.u64(e.first);
        k.u64(e.second.active_idx);
        k.u32(e.second.ls_addr);
        k.u32(e.second.bytes);
    });
    s.u32(lines_in_flight_);
    sim::save_seq(s, completions_,
                  [](sim::StateSink& k, const MfcCompletion& c) {
                      k.u32(c.tag);
                      k.u64(c.owner);
                  });
    s.u64(commands_completed_);
    s.u64(bytes_);
    s.u64(rejections_);
    s.u64(now_);
}

void Mfc::load_state(sim::StateSource& s) {
    sim::load_seq(s, queue_, load_command);
    sim::load_seq(s, queue_times_,
                  [](sim::StateSource& k, sim::Cycle& c) { c = k.u64(); });
    decoding_ = s.flag();
    decode_done_at_ = s.u64();
    load_command(s, decode_cmd_);
    decode_cmd_enq_at_ = s.u64();
    sim::load_seq(s, active_, [](sim::StateSource& k, ActiveCommand& ac) {
        load_command(k, ac.cmd);
        ac.enqueued_at = k.u64();
        ac.lines_total = k.u32();
        ac.lines_emitted = k.u32();
        ac.lines_finished = k.u32();
    });
    sim::load_seq(s, free_slots_,
                  [](sim::StateSource& k, std::size_t& idx) { idx = k.u64(); });
    sim::load_seq(s, ready_lines_,
                  [](sim::StateSource& k, MfcLineRequest& ln) {
                      ln.line_id = k.u64();
                      ln.op = static_cast<MfcOp>(k.u8());
                      ln.mem_addr = k.u64();
                      ln.bytes = k.u32();
                      ln.data.resize(k.u64());
                      k.blob(ln.data.data(), ln.data.size());
                  });
    next_line_id_ = s.u64();
    sim::load_seq(s, line_table_, [](sim::StateSource& k, auto& e) {
        e.first = k.u64();
        e.second.active_idx = k.u64();
        e.second.ls_addr = k.u32();
        e.second.bytes = k.u32();
    });
    lines_in_flight_ = s.u32();
    sim::load_seq(s, completions_,
                  [](sim::StateSource& k, MfcCompletion& c) {
                      c.tag = k.u32();
                      c.owner = k.u64();
                  });
    commands_completed_ = s.u64();
    bytes_ = s.u64();
    rejections_ = s.u64();
    now_ = s.u64();
}

bool Mfc::quiescent() const {
    if (!queue_.empty() || decoding_ || !ready_lines_.empty() ||
        !line_table_.empty() || !completions_.empty()) {
        return false;
    }
    for (const auto& ac : active_) {
        if (ac.lines_total != 0 && !ac.done()) {
            return false;
        }
    }
    return true;
}

}  // namespace dta::dma
