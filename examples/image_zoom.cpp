/// \file image_zoom.cpp
/// \brief The paper's zoom benchmark as an application: magnify a picture
///        region on the DTA machine and write the input/output as PGM files
///        you can open in any image viewer.
///
/// Usage: image_zoom [out.pgm] — writes zoom_in.pgm and the given output
/// (default zoom_out.pgm) in the current directory.

#include <cstdio>
#include <fstream>
#include <vector>

#include "stats/report.hpp"
#include "workloads/harness.hpp"
#include "workloads/zoom.hpp"

using namespace dta;

namespace {

void write_pgm(const std::string& path, const std::vector<std::uint32_t>& px,
               std::uint32_t n) {
    std::ofstream f(path, std::ios::binary);
    f << "P5\n" << n << ' ' << n << "\n255\n";
    for (std::uint32_t i = 0; i < n * n; ++i) {
        f.put(static_cast<char>(px[i] & 0xff));
    }
}

}  // namespace

int main(int argc, char** argv) {
    const std::string out_path = argc > 1 ? argv[1] : "zoom_out.pgm";

    workloads::Zoom::Params params;  // 32x32 input, factor 8 => 128x128 out
    const workloads::Zoom wl(params);
    const auto cfg = core::MachineConfig::cell_dta(8);

    const auto run = workloads::run_workload(wl, cfg, /*prefetch=*/true);
    std::printf("zoom(%u) factor %u: %llu cycles on 8 SPEs, result %s\n",
                params.n, params.factor,
                static_cast<unsigned long long>(run.result.cycles),
                run.correct ? "OK" : run.detail.c_str());

    write_pgm("zoom_in.pgm", wl.input(), params.n);
    write_pgm(out_path, wl.reference(), wl.out_n());
    std::printf("wrote zoom_in.pgm (%ux%u) and %s (%ux%u)\n", params.n,
                params.n, out_path.c_str(), wl.out_n(), wl.out_n());

    std::puts("\n== SPU time breakdown (prefetch) ==");
    std::fputs(
        stats::breakdown_table({{"zoom", run.result.total_breakdown()}})
            .c_str(),
        stdout);
    return run.correct ? 0 : 1;
}
