/// \file asm_and_interp.cpp
/// \brief Authoring DTA programs as text and cross-checking the timed
///        machine against the functional reference interpreter.
///
/// Parses a textual DTA program (a tree of threads computing a dot product
/// through frame-memory dataflow), prints its disassembly, runs it on both
/// engines and verifies they agree — the differential-testing workflow the
/// test suite uses, in example form.
///
/// Usage: asm_and_interp

#include <cstdio>

#include "core/interpreter.hpp"
#include "core/machine.hpp"
#include "isa/asmtext.hpp"
#include "isa/disasm.hpp"

using namespace dta;

namespace {

// A dot product of two 4-element vectors: main forks four multiplier
// threads, each sending x[i]*y[i] to a register-indexed slot of a summing
// collector, which writes the result to main memory.
constexpr const char* kSource = R"(# dot product, textual DTA assembly
program "dot4" entry=2

thread "mulper" inputs=4
  .pl
    load r1, frame[0]    # x[i]
    load r2, frame[1]    # y[i]
    load r3, frame[2]    # collector handle
    load r4, frame[3]    # slot index
  .ex
    mul r5, r1, r2
  .ps
    storex r5, frame(r3)[r4+0]
    ffree
    stop
end

thread "collector" inputs=4
  .pl
    load r1, frame[0]
    load r2, frame[1]
    load r3, frame[2]
    load r4, frame[3]
  .ex
    add r5, r1, r2
    add r5, r5, r3
    add r5, r5, r4
    movi r6, 32768
    write r5, mem[r6+0]
  .ps
    ffree
    stop
end

thread "main" inputs=0
  .ex
    movi r10, 4          # element count
  .ps
    falloc r1, code=1    # the collector
    movi r2, 0           # i
  fork:
    falloc r3, code=0
    # x[i] = i+1, y[i] = 2*(i+1)
    addi r4, r2, 1
    store r4, frame(r3)[0]
    shli r5, r4, 1
    store r5, frame(r3)[1]
    store r1, frame(r3)[2]
    store r2, frame(r3)[3]
    addi r2, r2, 1
    blt r2, r10, fork
    ffree
    stop
end
)";

}  // namespace

int main() {
    const isa::Program prog = isa::parse_program(kSource);
    std::puts("== parsed program ==");
    std::fputs(isa::disassemble(prog).c_str(), stdout);

    // Engine 1: the functional reference interpreter (no timing).
    core::Interpreter interp(prog);
    interp.launch({});
    const auto istats = interp.run();
    const std::uint32_t iref = interp.memory().read_u32(32768);

    // Engine 2: the cycle-level machine.
    core::Machine machine(core::MachineConfig::cell_dta(4), prog);
    machine.launch({});
    const auto res = machine.run();
    const std::uint32_t mval = machine.memory().read_u32(32768);

    // dot([1..4], [2,4,6,8]) = 2*(1+4+9+16) = 60.
    std::printf("\ninterpreter: %u (%llu instructions, %llu threads)\n", iref,
                static_cast<unsigned long long>(istats.instructions),
                static_cast<unsigned long long>(istats.threads));
    std::printf("machine    : %u (%llu cycles on 4 SPEs)\n", mval,
                static_cast<unsigned long long>(res.cycles));
    std::printf("round trip : %s\n",
                isa::parse_program(isa::to_assembly(prog)).codes.size() ==
                        prog.codes.size()
                    ? "OK"
                    : "MISMATCH");
    return (iref == 60 && mval == 60) ? 0 : 1;
}
