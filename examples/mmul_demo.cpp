/// \file mmul_demo.cpp
/// \brief Matrix multiply on CellDTA, with and without DMA prefetching —
///        the paper's headline experiment (Fig. 7) in one executable.
///
/// Runs mmul(32) on 8 SPEs at 150-cycle memory latency twice (original DTA
/// code, then the prefetch-pass output), verifies both results against the
/// host reference, and prints the execution-time comparison, the SPU time
/// breakdown and the dynamic instruction mix.
///
/// Usage: mmul_demo [n] [threads] [spes]

#include <cstdio>
#include <cstdlib>

#include "isa/disasm.hpp"
#include "stats/report.hpp"
#include "workloads/harness.hpp"
#include "workloads/mmul.hpp"

using namespace dta;

int main(int argc, char** argv) {
    workloads::MatMul::Params params;
    std::uint16_t spes = 8;
    if (argc > 1) params.n = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (argc > 2) {
        params.threads = static_cast<std::uint32_t>(std::atoi(argv[2]));
    }
    if (argc > 3) spes = static_cast<std::uint16_t>(std::atoi(argv[3]));

    const workloads::MatMul wl(params);
    const auto cfg = core::MachineConfig::cell_dta(spes);

    std::printf("mmul(%u), %u worker threads, %u SPEs, mem latency %u\n\n",
                params.n, params.threads, spes, cfg.memory.latency);

    const auto orig = workloads::run_workload(wl, cfg, /*prefetch=*/false);
    const auto pf = workloads::run_workload(wl, cfg, /*prefetch=*/true);

    std::printf("original DTA : %llu cycles, result %s\n",
                static_cast<unsigned long long>(orig.result.cycles),
                orig.correct ? "OK" : orig.detail.c_str());
    std::printf("with prefetch: %llu cycles, result %s\n",
                static_cast<unsigned long long>(pf.result.cycles),
                pf.correct ? "OK" : pf.detail.c_str());
    std::printf("speedup      : %s\n\n",
                stats::speedup_str(orig.result.cycles, pf.result.cycles)
                    .c_str());

    std::puts("== SPU time breakdown ==");
    std::fputs(stats::breakdown_table(
                   {{"mmul orig", orig.result.total_breakdown()},
                    {"mmul prefetch", pf.result.total_breakdown()}})
                   .c_str(),
               stdout);

    std::puts("\n== dynamic instructions ==");
    std::fputs(stats::instruction_table(
                   {{"mmul orig", orig.result.total_instrs()},
                    {"mmul prefetch", pf.result.total_instrs()}})
                   .c_str(),
               stdout);

    std::printf("\npipeline usage: %s (orig) vs %s (prefetch)\n",
                stats::pct(orig.result.pipeline_usage()).c_str(),
                stats::pct(pf.result.pipeline_usage()).c_str());
    return (orig.correct && pf.correct) ? 0 : 1;
}
