/// \file pipeline_trace.cpp
/// \brief Observe the machine's internals: runs a tiny fork-join program
///        with debug tracing enabled and prints every scheduler event
///        (thread binds, Wait-for-DMA suspensions) plus the final per-PE
///        statistics.  Useful to understand the thread lifetime of Fig. 4.
///
/// Usage: pipeline_trace

#include <cstdio>
#include <string>

#include "core/machine.hpp"
#include "isa/builder.hpp"
#include "stats/report.hpp"

using namespace dta;
using isa::CodeBlock;
using isa::r;

int main() {
    constexpr sim::MemAddr kData = 0x2000;
    constexpr sim::MemAddr kResult = 0x3000;

    isa::Program prog;
    prog.name = "trace-demo";

    // Worker with a PF block: prefetches 4 words of global data, sums them,
    // writes the sum.  Exercises Program-DMA -> Wait-for-DMA -> resume.
    isa::CodeBuilder w("pf_worker", /*num_inputs=*/1);
    w.block(CodeBlock::kPf)
        .movi(r(10), kData);
    isa::DmaArgs args;
    args.region = 0;
    args.ls_offset = 0;
    args.bytes = 16;
    w.dmaget(r(10), args).dmawait();
    w.block(CodeBlock::kPl).load(r(1), 0);  // which result slot to write
    w.block(CodeBlock::kEx)
        .movi(r(2), kData)
        .movi(r(4), 0);
    for (int i = 0; i < 4; ++i) {
        w.lsload(r(3), r(2), i * 4, 0).add(r(4), r(4), r(3));
    }
    w.shli(r(5), r(1), 2)
        .addi(r(5), r(5), kResult)
        .write(r(4), r(5), 0);
    w.block(CodeBlock::kPs).ffree().stop();
    const auto worker = prog.add(std::move(w).build());

    isa::CodeBuilder m("main", /*num_inputs=*/0);
    m.block(CodeBlock::kPs)
        .falloc(r(1), worker)
        .movi(r(2), 0)
        .store(r(2), r(1), 0)
        .falloc(r(3), worker)
        .movi(r(4), 1)
        .store(r(4), r(3), 0)
        .ffree()
        .stop();
    prog.entry = prog.add(std::move(m).build());

    core::Machine machine(core::MachineConfig::cell_dta(2), prog);
    machine.memory().write_u32(kData + 0, 1);
    machine.memory().write_u32(kData + 4, 2);
    machine.memory().write_u32(kData + 8, 3);
    machine.memory().write_u32(kData + 12, 4);
    machine.set_log_sink(sim::LogLevel::kDebug, [](std::string_view line) {
        std::printf("%.*s\n", static_cast<int>(line.size()), line.data());
    });
    machine.launch({});
    const auto res = machine.run();

    std::printf("\nresults: %u and %u (expected 10 and 10)\n",
                machine.memory().read_u32(kResult),
                machine.memory().read_u32(kResult + 4));
    std::printf("cycles: %llu, DMA commands: %llu, DMA bytes: %llu\n",
                static_cast<unsigned long long>(res.cycles),
                static_cast<unsigned long long>(res.dma_commands),
                static_cast<unsigned long long>(res.dma_bytes));
    for (std::size_t i = 0; i < res.pes.size(); ++i) {
        std::printf("PE%zu breakdown:\n%s", i,
                    stats::breakdown_table(
                        {{"pe" + std::to_string(i), res.pes[i].breakdown}})
                        .c_str());
    }
    const bool ok = machine.memory().read_u32(kResult) == 10 &&
                    machine.memory().read_u32(kResult + 4) == 10;
    return ok ? 0 : 1;
}
