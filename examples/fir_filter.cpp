/// \file fir_filter.cpp
/// \brief A signal-processing application on DTA: FIR-filter a signal with
///        and without DMA prefetching and print the before/after timing —
///        demonstrating the public API on a workload the paper never ran.
///
/// Usage: fir_filter [samples] [taps] [spes]

#include <cstdio>
#include <cstdlib>

#include "stats/report.hpp"
#include "workloads/fir.hpp"
#include "workloads/harness.hpp"

using namespace dta;

int main(int argc, char** argv) {
    workloads::Fir::Params params;
    std::uint16_t spes = 8;
    if (argc > 1) {
        params.samples = static_cast<std::uint32_t>(std::atoi(argv[1]));
    }
    if (argc > 2) params.taps = static_cast<std::uint32_t>(std::atoi(argv[2]));
    if (argc > 3) spes = static_cast<std::uint16_t>(std::atoi(argv[3]));
    params.threads = workloads::Fir::threads_for(spes);
    if (params.samples % params.threads != 0) {
        params.threads = 1;
    }

    const workloads::Fir wl(params);
    const auto cfg = workloads::Fir::machine_config(spes);
    std::printf("FIR: %u samples, %u taps, %u workers on %u SPEs\n\n",
                params.samples, params.taps, params.threads, spes);

    const auto orig = workloads::run_workload(wl, cfg, false);
    const auto pf = workloads::run_workload(wl, cfg, true);
    std::printf("original DTA : %llu cycles (%s)\n",
                static_cast<unsigned long long>(orig.result.cycles),
                orig.correct ? "OK" : orig.detail.c_str());
    std::printf("with prefetch: %llu cycles (%s)\n",
                static_cast<unsigned long long>(pf.result.cycles),
                pf.correct ? "OK" : pf.detail.c_str());
    std::printf("speedup      : %s\n\n",
                stats::speedup_str(orig.result.cycles, pf.result.cycles)
                    .c_str());
    std::fputs(stats::breakdown_table(
                   {{"fir orig", orig.result.total_breakdown()},
                    {"fir prefetch", pf.result.total_breakdown()}})
                   .c_str(),
               stdout);
    return (orig.correct && pf.correct) ? 0 : 1;
}
