/// \file quickstart.cpp
/// \brief Hello-DTA: the producer/consumer pattern of Fig. 1 of the paper.
///
/// A main thread FALLOCs a consumer thread and STOREs two operands into its
/// frame; the consumer's Synchronisation Counter reaches zero, it runs, adds
/// the operands and WRITEs the sum to main memory, where the host reads it
/// back.  Demonstrates: building thread code with CodeBuilder, wiring a
/// Program, launching a Machine, and reading the run statistics.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/machine.hpp"
#include "isa/builder.hpp"
#include "isa/disasm.hpp"
#include "stats/report.hpp"

using namespace dta;
using isa::CodeBlock;
using isa::r;

int main() {
    constexpr sim::MemAddr kResult = 0x1000;

    isa::Program prog;
    prog.name = "quickstart";

    // The consumer waits for two frame words (SC = 2), adds them, and
    // writes the sum to main memory.
    isa::CodeBuilder consumer("consumer", /*num_inputs=*/2);
    consumer.block(CodeBlock::kPl)
        .load(r(1), 0)
        .load(r(2), 1);
    consumer.block(CodeBlock::kEx)
        .add(r(3), r(1), r(2))
        .movi(r(4), kResult)
        .write(r(3), r(4), 0);
    consumer.block(CodeBlock::kPs).ffree().stop();
    const auto consumer_id = prog.add(std::move(consumer).build());

    // The producer allocates the consumer's frame and post-stores the
    // operands — dataflow at thread level.
    isa::CodeBuilder producer("producer", /*num_inputs=*/0);
    producer.block(CodeBlock::kPs)
        .falloc(r(5), consumer_id)
        .movi(r(1), 20)
        .store(r(1), r(5), 0)
        .movi(r(2), 22)
        .store(r(2), r(5), 1)
        .ffree()
        .stop();
    prog.entry = prog.add(std::move(producer).build());

    std::puts("== program ==");
    std::fputs(isa::disassemble(prog).c_str(), stdout);

    core::Machine machine(core::MachineConfig::cell_dta(/*num_spes=*/2), prog);
    machine.launch({});
    const core::RunResult res = machine.run();

    std::printf("\nresult at 0x%llx: %u (expected 42)\n",
                static_cast<unsigned long long>(kResult),
                machine.memory().read_u32(kResult));
    std::printf("cycles: %llu, instructions: %llu, threads: %llu\n",
                static_cast<unsigned long long>(res.cycles),
                static_cast<unsigned long long>(res.total_instrs().total()),
                static_cast<unsigned long long>(res.pes[0].threads_executed +
                                                res.pes[1].threads_executed));
    std::puts("\n== SPU time breakdown ==");
    std::fputs(stats::breakdown_table({{"quickstart", res.total_breakdown()}})
                   .c_str(),
               stdout);
    return machine.memory().read_u32(kResult) == 42 ? 0 : 1;
}
