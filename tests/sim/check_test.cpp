// Unit tests for the two-tier error model: CheckError (simulator bugs) vs
// SimError (illegal simulated behaviour).
#include "sim/check.hpp"

#include <gtest/gtest.h>

namespace dta::sim {
namespace {

TEST(Check, PassingCheckDoesNothing) {
    EXPECT_NO_THROW(DTA_CHECK(1 + 1 == 2));
    EXPECT_NO_THROW(DTA_CHECK_MSG(true, "never seen"));
}

TEST(Check, FailingCheckThrowsCheckError) {
    EXPECT_THROW(DTA_CHECK(false), CheckError);
}

TEST(Check, FailureMessageNamesExpressionAndLocation) {
    try {
        DTA_CHECK_MSG(2 > 3, "context info");
        FAIL() << "should have thrown";
    } catch (const CheckError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("2 > 3"), std::string::npos);
        EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
        EXPECT_NE(what.find("context info"), std::string::npos);
    }
}

TEST(Check, SimErrorCarriesMessage) {
    try {
        DTA_SIM_ERROR("frame exhausted");
        FAIL() << "should have thrown";
    } catch (const SimError& e) {
        EXPECT_NE(std::string(e.what()).find("frame exhausted"),
                  std::string::npos);
    }
}

TEST(Check, SimRequirePassesAndFails) {
    EXPECT_NO_THROW(DTA_SIM_REQUIRE(true, "fine"));
    EXPECT_THROW(DTA_SIM_REQUIRE(false, "bad config"), SimError);
}

TEST(Check, ErrorTypesAreDistinct) {
    // SimError is a runtime_error; CheckError is a logic_error — tests and
    // callers can tell "my program is wrong" from "the simulator is wrong".
    EXPECT_THROW(
        { throw SimError("x"); }, std::runtime_error);
    EXPECT_THROW(
        { throw CheckError("x"); }, std::logic_error);
}

}  // namespace
}  // namespace dta::sim
