// Unit tests for the Logger sink/verbosity behaviour.
#include "sim/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dta::sim {
namespace {

TEST(Logger, OffByDefault) {
    Logger log;
    EXPECT_FALSE(log.enabled(LogLevel::kInfo));
    // No sink: logging must be a no-op, not a crash.
    log.log(LogLevel::kInfo, 1, "x", "y");
}

TEST(Logger, RespectsLevelOrdering) {
    Logger log;
    std::vector<std::string> lines;
    log.configure(LogLevel::kDebug,
                  [&](std::string_view s) { lines.emplace_back(s); });
    EXPECT_TRUE(log.enabled(LogLevel::kInfo));
    EXPECT_TRUE(log.enabled(LogLevel::kDebug));
    EXPECT_FALSE(log.enabled(LogLevel::kTrace));
    log.log(LogLevel::kInfo, 10, "comp", "hello");
    log.log(LogLevel::kTrace, 11, "comp", "too detailed");
    ASSERT_EQ(lines.size(), 1u);
}

TEST(Logger, FormatsCycleComponentMessage) {
    Logger log;
    std::string line;
    log.configure(LogLevel::kTrace, [&](std::string_view s) { line = s; });
    log.log(LogLevel::kTrace, 1234, "pe3", "bind thread");
    EXPECT_EQ(line, "[1234] pe3: bind thread");
}

TEST(Logger, NullSinkDisables) {
    Logger log;
    log.configure(LogLevel::kTrace, nullptr);
    EXPECT_FALSE(log.enabled(LogLevel::kInfo));
}

}  // namespace
}  // namespace dta::sim
