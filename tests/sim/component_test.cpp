// Unit tests for the Component horizon contract: next_activity(now), queried
// right after tick(now), must be the earliest cycle > now at which tick could
// change observable state assuming no new external input — kIdleForever when
// the component only waits on someone else.  The fast-forward scheduler
// relies on these answers being exact, so each state of the four leaf timing
// models (MainMemory, Interconnect, Link, Mfc) is pinned here.
#include <gtest/gtest.h>

#include "dma/mfc.hpp"
#include "mem/local_store.hpp"
#include "mem/main_memory.hpp"
#include "noc/interconnect.hpp"
#include "noc/link.hpp"
#include "sim/component.hpp"

namespace dta {
namespace {

// ---- MainMemory: Table 2 defaults (latency 150, 1 port, bank_busy 2) ------

TEST(MainMemoryHorizon, IdleIsForever) {
    mem::MainMemory m{mem::MainMemoryConfig{}};
    EXPECT_TRUE(m.quiescent());
    EXPECT_EQ(m.next_activity(0), sim::kIdleForever);
}

TEST(MainMemoryHorizon, FollowsRequestLifetime) {
    mem::MainMemory m{mem::MainMemoryConfig{}};

    mem::MemRequest req;
    req.id = 7;
    req.op = mem::MemOp::kRead;
    req.addr = 0x100;
    req.size = 4;
    m.enqueue(req);
    // Queued: the port is free, so the request starts on the next tick.
    EXPECT_EQ(m.next_activity(0), 1u);

    m.tick(1);  // starts; retires at 1 + latency
    EXPECT_EQ(m.next_activity(1), 1u + m.config().latency);

    m.tick(1 + m.config().latency);  // retires into the response queue
    EXPECT_EQ(m.next_activity(1 + m.config().latency),
              2u + m.config().latency);  // response awaits an external pop

    mem::MemResponse resp;
    ASSERT_TRUE(m.pop_response(resp));
    EXPECT_EQ(resp.id, 7u);
    EXPECT_EQ(m.next_activity(1 + m.config().latency), sim::kIdleForever);
    EXPECT_TRUE(m.quiescent());
}

TEST(MainMemoryHorizon, SecondRequestWaitsForBankBusy) {
    mem::MainMemory m{mem::MainMemoryConfig{}};
    for (std::uint64_t id = 0; id < 2; ++id) {
        mem::MemRequest req;
        req.id = id;
        req.addr = 0x200 + id * 64;
        m.enqueue(req);
    }
    m.tick(1);  // one port: only the first starts; port busy until 1+bank_busy
    // The queued second request starts when the port frees — before the
    // in-flight first retires (150 cycles out).
    EXPECT_EQ(m.next_activity(1), 1u + m.config().bank_busy);
}

// ---- Interconnect: Table 4 defaults (4 buses x 8 B, hop latency 5) ---------

TEST(InterconnectHorizon, IdleIsForever) {
    noc::Interconnect ic{noc::InterconnectConfig{}, 2};
    EXPECT_TRUE(ic.quiescent());
    EXPECT_EQ(ic.next_activity(0), sim::kIdleForever);
}

TEST(InterconnectHorizon, FollowsPacketLifetime) {
    const noc::InterconnectConfig cfg;
    noc::Interconnect ic{cfg, 2};

    noc::Packet pkt;
    pkt.dst = 1;
    pkt.size_bytes = 8;  // occupies one bus for exactly one cycle
    ASSERT_TRUE(ic.try_inject(0, pkt, 0));
    // Pending injection: a free bus grants on the next tick.
    EXPECT_EQ(ic.next_activity(0), 1u);

    ic.tick(1);  // granted: delivery at 1 + occupancy(1) + hop_latency
    const sim::Cycle deliver_at = 1 + 1 + cfg.hop_latency;
    EXPECT_EQ(ic.next_activity(1), deliver_at);

    ic.tick(deliver_at);  // matures into the (unbound) endpoint inbox
    EXPECT_EQ(ic.next_activity(deliver_at), deliver_at + 1);

    noc::Packet out;
    ASSERT_TRUE(ic.pop_delivered(1, out));
    EXPECT_EQ(ic.next_activity(deliver_at), sim::kIdleForever);
    EXPECT_TRUE(ic.quiescent());
}

TEST(InterconnectHorizon, OccupancyScalesWithPacketSize) {
    const noc::InterconnectConfig cfg;
    noc::Interconnect ic{cfg, 2};
    noc::Packet pkt;
    pkt.dst = 1;
    pkt.size_bytes = 128;  // a DMA line: 16 cycles at 8 B/cycle
    ASSERT_TRUE(ic.try_inject(0, pkt, 0));
    ic.tick(1);
    EXPECT_EQ(ic.next_activity(1), 1u + 128 / cfg.bytes_per_cycle +
                                       cfg.hop_latency);
}

// ---- Link: inter-node defaults (latency 40, 16 B/cycle) --------------------

TEST(LinkHorizon, IdleIsForever) {
    noc::Link link{noc::LinkConfig{}};
    EXPECT_TRUE(link.quiescent());
    EXPECT_EQ(link.next_activity(0), sim::kIdleForever);
}

TEST(LinkHorizon, FollowsPacketLifetime) {
    const noc::LinkConfig cfg;
    noc::Link link{cfg};

    noc::Packet pkt;
    pkt.size_bytes = 16;  // serialises in one cycle
    ASSERT_TRUE(link.try_send(pkt));
    EXPECT_EQ(link.next_activity(0), 1u);  // wire free: starts next tick

    link.tick(1);  // on the wire: arrives at 1 + occupancy(1) + latency
    const sim::Cycle deliver_at = 1 + 1 + cfg.latency;
    EXPECT_EQ(link.next_activity(1), deliver_at);

    link.tick(deliver_at);  // matured, waiting for the router to pop it
    EXPECT_EQ(link.next_activity(deliver_at), deliver_at + 1);

    noc::Packet out;
    ASSERT_TRUE(link.pop_delivered(out));
    EXPECT_EQ(link.next_activity(deliver_at), sim::kIdleForever);
    EXPECT_TRUE(link.quiescent());
}

TEST(LinkHorizon, SecondPacketWaitsForWire) {
    const noc::LinkConfig cfg;
    noc::Link link{cfg};
    noc::Packet big;
    big.size_bytes = 64;  // 4 cycles on the wire
    ASSERT_TRUE(link.try_send(big));
    noc::Packet small;
    small.size_bytes = 8;
    ASSERT_TRUE(link.try_send(small));
    link.tick(1);  // big starts; wire busy until 5
    // Horizon is the wire freeing for the queued packet (5), not the big
    // packet's arrival (45).
    EXPECT_EQ(link.next_activity(1), 5u);
}

// ---- Mfc: Table 4 defaults (decode 30 cycles, 128 B lines) -----------------

TEST(MfcHorizon, FollowsCommandLifetime) {
    mem::LocalStore ls{mem::LocalStoreConfig{}};
    dma::Mfc mfc{dma::MfcConfig{}, ls};
    EXPECT_TRUE(mfc.quiescent());
    EXPECT_EQ(mfc.next_activity(0), sim::kIdleForever);

    dma::MfcCommand cmd;
    cmd.op = dma::MfcOp::kGet;
    cmd.tag = 3;
    cmd.mem_addr = 0x1000;
    cmd.ls_addr = 0x100;
    cmd.bytes = 16;  // one line
    ASSERT_TRUE(mfc.try_enqueue(cmd));
    // Queued: decode starts on the next tick.
    EXPECT_EQ(mfc.next_activity(0), 1u);

    ls.tick(1);
    mfc.tick(1);  // decode begins, finishing command_latency cycles later
    const sim::Cycle decoded_at = 1 + mfc.config().command_latency;
    EXPECT_EQ(mfc.next_activity(1), decoded_at);

    ls.tick(decoded_at);
    mfc.tick(decoded_at);  // decoded; the line request is ready for pickup
    EXPECT_EQ(mfc.next_activity(decoded_at), decoded_at + 1);

    dma::MfcLineRequest line;
    ASSERT_TRUE(mfc.pop_line_request(line));
    EXPECT_EQ(line.bytes, 16u);
    // The line is in flight: the MFC itself only waits on external data (the
    // NoC/memory horizon bounds the jump).
    EXPECT_EQ(mfc.next_activity(decoded_at), sim::kIdleForever);

    // Return the data; the LS write-back then completes the tag.  While the
    // completion sits unfetched the horizon must stay at now + 1.
    const std::vector<std::uint8_t> data(line.bytes, 0xAB);
    mfc.deliver_line_data(line.line_id, data);
    dma::MfcCompletion comp;
    bool completed = false;
    for (sim::Cycle now = decoded_at + 1; now < decoded_at + 32; ++now) {
        ls.tick(now);
        mfc.tick(now);
        // Until the LS write-back drains, the MFC waits on the local store
        // (the carrier component), so the horizon may be kIdleForever here;
        // once the completion is published it must be now + 1.
        const sim::Cycle h = mfc.next_activity(now);
        if (mfc.pop_completion(comp)) {
            EXPECT_EQ(h, now + 1);  // completion was awaiting the PE
            completed = true;
            break;
        }
    }
    ASSERT_TRUE(completed);
    EXPECT_EQ(comp.tag, 3u);
    EXPECT_TRUE(mfc.quiescent());
}

TEST(MfcHorizon, QueuedCommandBehindDecodeKeepsDecodeHorizon) {
    mem::LocalStore ls{mem::LocalStoreConfig{}};
    dma::Mfc mfc{dma::MfcConfig{}, ls};
    dma::MfcCommand cmd;
    cmd.op = dma::MfcOp::kGet;
    cmd.mem_addr = 0x1000;
    cmd.ls_addr = 0x100;
    cmd.bytes = 16;
    ASSERT_TRUE(mfc.try_enqueue(cmd));
    ASSERT_TRUE(mfc.try_enqueue(cmd));
    ls.tick(1);
    mfc.tick(1);  // first command decoding; second parked behind it
    // Nothing can happen before the decoder frees.
    EXPECT_EQ(mfc.next_activity(1), 1u + mfc.config().command_latency);
}

}  // namespace
}  // namespace dta
