// Unit tests for the deterministic RNGs: cross-platform reproducibility is
// what workload inputs (and therefore every reference result) depend on.
#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dta::sim {
namespace {

TEST(SplitMix64, KnownSequenceFromSeedZero) {
    // Reference values from the published SplitMix64 algorithm.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
    EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro256, Deterministic) {
    Xoshiro256 a(42);
    Xoshiro256 b(42);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next(), b.next());
    }
}

TEST(Xoshiro256, SeedsProduceDistinctStreams) {
    Xoshiro256 a(1);
    Xoshiro256 b(9999);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 2);
}

TEST(Xoshiro256, NextBelowRespectsBound) {
    Xoshiro256 rng(7);
    for (int i = 0; i < 10000; ++i) {
        ASSERT_LT(rng.next_below(17), 17u);
    }
}

TEST(Xoshiro256, NextBelowCoversRange) {
    Xoshiro256 rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(rng.next_below(8));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, U32HasHighBitsVariety) {
    Xoshiro256 rng(11);
    std::set<std::uint32_t> tops;
    for (int i = 0; i < 256; ++i) {
        tops.insert(rng.next_u32() >> 28);
    }
    EXPECT_GT(tops.size(), 8u);
}

}  // namespace
}  // namespace dta::sim
