// Property test of the Component horizon contract (sim/component.hpp): the
// event-driven scheduler visits a component only at the cycles it promises
// via next_activity(), so a horizon that *under-promises* (claims idleness
// past a cycle where tick() would have changed state) silently corrupts an
// event-driven run.  For every fuzz machine shape we drive each leaf timing
// model twice with an identical randomised stimulus schedule:
//
//   * densely  — tick every cycle, drain outputs as they appear;
//   * lazily   — tick only at the promised horizon (skip() over the slept
//                span first, exactly like sim::WheelScheduler), re-arming
//                from next_activity() after every visit and waking on input.
//
// The observable output logs (cycle-stamped pops and admission refusals)
// must be byte-identical.  A too-late horizon delays or drops an output and
// the logs diverge; a too-early horizon only costs extra visits, which the
// contract permits.  This is the per-component analogue of the whole-machine
// wheel/dense differentials in shard_determinism_test and tools/dta_fuzz.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dma/mfc.hpp"
#include "mem/local_store.hpp"
#include "mem/main_memory.hpp"
#include "noc/interconnect.hpp"
#include "noc/link.hpp"
#include "sim/component.hpp"

namespace dta {
namespace {

/// Deterministic 64-bit LCG (same constants as the microbench driver).
class Rng {
 public:
    explicit Rng(std::uint64_t seed) : state_(seed * 0x9e3779b97f4a7c15ull) {}
    std::uint64_t next() {
        state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
        return state_ >> 16;
    }
    /// Uniform in [0, bound).
    std::uint64_t below(std::uint64_t bound) { return next() % bound; }

 private:
    std::uint64_t state_;
};

/// Arrival gap with the mix the machine produces: mostly back-to-back
/// bursts, some short pauses, an occasional idle span longer than any
/// single-component latency (the regime where lazy skipping actually jumps).
sim::Cycle next_gap(Rng& rng) {
    const std::uint64_t r = rng.below(100);
    if (r < 60) {
        return rng.below(3);  // burst: 0-2 cycles apart
    }
    if (r < 90) {
        return 3 + rng.below(48);
    }
    return 400 + rng.below(400);  // longer than mem latency + decode
}

/// Drives one harness both ways and requires byte-identical output logs.
/// A harness wraps one leaf model (or a cooperating pair) and provides:
///   deliver(c)        inject stimulus scheduled for cycle c (pre-tick);
///                     returns true when anything arrived (a wake edge)
///   tick_all(c) / skip_all(from, to) / horizon(c) / quiescent()
///   drain(c, log)     pop every output, appending cycle-stamped records
template <typename Harness>
void expect_horizon_exact(std::uint64_t seed, sim::Cycle n_cycles,
                          const typename Harness::Config& cfg) {
    Harness dense(cfg, seed);
    std::string dense_log;
    for (sim::Cycle c = 1; c <= n_cycles; ++c) {
        (void)dense.deliver(c, dense_log);
        dense.tick_all(c);
        dense.drain(c, dense_log);
    }
    EXPECT_TRUE(dense.quiescent()) << "stimulus did not drain densely";

    Harness lazy(cfg, seed);
    std::string lazy_log;
    sim::Cycle last = 0;
    sim::Cycle due = sim::kIdleForever;
    std::uint64_t visits = 0;
    for (sim::Cycle c = 1; c <= n_cycles; ++c) {
        if (lazy.deliver(c, lazy_log)) {
            due = std::min(due, c);  // wake: input lands before tick(c)
        }
        if (c < due) {
            continue;  // the component promised nothing happens here
        }
        if (last + 1 < c) {
            lazy.skip_all(last + 1, c);  // account the slept span [last+1, c)
        }
        lazy.tick_all(c);
        ++visits;
        lazy.drain(c, lazy_log);
        due = lazy.horizon(c);
        ASSERT_GT(due, c) << "horizon must be strictly in the future";
        last = c;
    }
    EXPECT_TRUE(lazy.quiescent()) << "stimulus did not drain lazily";
    EXPECT_EQ(dense_log, lazy_log)
        << "lazy (horizon-driven) run diverged from the dense reference: "
        << "some next_activity() under-promised";
    // The harness configs all contain idle spans, so a contract-honouring
    // model must actually skip work (guards against kludging the property
    // by always answering now + 1 *and* proves the test exercised skips).
    EXPECT_LT(visits, n_cycles);
}

void append(std::string& log, sim::Cycle c, const char* what,
            std::uint64_t x) {
    log += std::to_string(c);
    log += what;
    log += std::to_string(x);
    log += ';';
}

// ---- MainMemory ------------------------------------------------------------

class MemHarness {
 public:
    using Config = mem::MainMemoryConfig;

    MemHarness(const Config& cfg, std::uint64_t seed) : mem_(cfg) {
        Rng rng(seed);
        sim::Cycle at = 1;
        for (std::uint64_t id = 0; id < 160; ++id) {
            mem::MemRequest rq;
            rq.id = id;
            rq.op = rng.below(4) == 0 ? mem::MemOp::kWrite : mem::MemOp::kRead;
            rq.addr = rng.below(1 << 20) * 8;
            rq.size = static_cast<std::uint32_t>(
                8u << rng.below(4));  // 8..64 B, within max_request_bytes
            if (rq.op == mem::MemOp::kWrite) {
                rq.data.assign(rq.size, static_cast<std::uint8_t>(id));
            }
            schedule_.emplace_back(at, std::move(rq));
            at += next_gap(rng);
        }
    }

    bool deliver(sim::Cycle c, std::string&) {
        bool any = false;
        while (cursor_ < schedule_.size() && schedule_[cursor_].first == c) {
            mem_.enqueue(schedule_[cursor_].second);
            ++cursor_;
            any = true;
        }
        return any;
    }
    void tick_all(sim::Cycle c) { mem_.tick(c); }
    void skip_all(sim::Cycle from, sim::Cycle to) { mem_.skip(from, to); }
    [[nodiscard]] sim::Cycle horizon(sim::Cycle c) const {
        return mem_.next_activity(c);
    }
    [[nodiscard]] bool quiescent() const { return mem_.quiescent(); }
    void drain(sim::Cycle c, std::string& log) {
        mem::MemResponse resp;
        while (mem_.pop_response(resp)) {
            append(log, c, ":mem:", resp.id);
        }
    }

 private:
    mem::MainMemory mem_;
    std::vector<std::pair<sim::Cycle, mem::MemRequest>> schedule_;
    std::size_t cursor_ = 0;
};

TEST(HorizonContract, MainMemoryAcrossFuzzShapes) {
    for (const std::uint32_t latency : {1u, 40u, 150u, 300u}) {
        for (const std::uint32_t ports : {1u, 2u}) {
            for (const std::uint32_t bank_busy : {1u, 2u, 8u}) {
                mem::MainMemoryConfig cfg;
                cfg.latency = latency;
                cfg.ports = ports;
                cfg.bank_busy = bank_busy;
                SCOPED_TRACE("latency=" + std::to_string(latency) +
                             " ports=" + std::to_string(ports) +
                             " bank_busy=" + std::to_string(bank_busy));
                for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                    expect_horizon_exact<MemHarness>(seed, 40'000, cfg);
                }
            }
        }
    }
}

// ---- Interconnect ----------------------------------------------------------

class IcHarness {
 public:
    using Config = noc::InterconnectConfig;
    static constexpr noc::EndpointId kEndpoints = 5;

    IcHarness(const Config& cfg, std::uint64_t seed)
        : ic_(cfg, kEndpoints) {
        Rng rng(seed);
        sim::Cycle at = 1;
        for (std::uint64_t seq = 0; seq < 200; ++seq) {
            noc::Packet p;
            p.src = static_cast<noc::EndpointId>(rng.below(kEndpoints));
            p.dst = static_cast<noc::EndpointId>(rng.below(kEndpoints));
            p.dst_final = p.dst;
            const std::uint32_t sizes[] = {8, 16, 64, 128};
            p.size_bytes = sizes[rng.below(4)];
            p.a = seq;
            schedule_.emplace_back(at, std::move(p));
            at += next_gap(rng);
        }
    }

    bool deliver(sim::Cycle c, std::string& log) {
        bool any = false;
        while (cursor_ < schedule_.size() && schedule_[cursor_].first == c) {
            noc::Packet& p = schedule_[cursor_].second;
            // Admission is part of the observable record: a refusal in one
            // run but not the other is itself a divergence.
            if (!ic_.try_inject(p.src, p, c)) {
                append(log, c, ":rej:", p.a);
            }
            ++cursor_;
            any = true;
        }
        return any;
    }
    void tick_all(sim::Cycle c) { ic_.tick(c); }
    void skip_all(sim::Cycle from, sim::Cycle to) { ic_.skip(from, to); }
    [[nodiscard]] sim::Cycle horizon(sim::Cycle c) const {
        return ic_.next_activity(c);
    }
    [[nodiscard]] bool quiescent() const { return ic_.quiescent(); }
    void drain(sim::Cycle c, std::string& log) {
        noc::Packet out;
        for (noc::EndpointId ep = 0; ep < kEndpoints; ++ep) {
            while (ic_.pop_delivered(ep, out)) {
                append(log, c, ":pkt:", out.a * 100 + ep);
            }
        }
    }

 private:
    noc::Interconnect ic_;
    std::vector<std::pair<sim::Cycle, noc::Packet>> schedule_;
    std::size_t cursor_ = 0;
};

TEST(HorizonContract, InterconnectAcrossFuzzShapes) {
    for (const std::uint32_t buses : {1u, 4u}) {
        for (const std::uint32_t hop : {1u, 5u, 20u}) {
            for (const std::uint32_t depth : {2u, 16u}) {
                noc::InterconnectConfig cfg;
                cfg.num_buses = buses;
                cfg.hop_latency = hop;
                cfg.inject_queue_depth = depth;
                SCOPED_TRACE("buses=" + std::to_string(buses) +
                             " hop=" + std::to_string(hop) +
                             " depth=" + std::to_string(depth));
                for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                    expect_horizon_exact<IcHarness>(seed, 40'000, cfg);
                }
            }
        }
    }
}

// ---- Link ------------------------------------------------------------------

class LinkHarness {
 public:
    using Config = noc::LinkConfig;

    LinkHarness(const Config& cfg, std::uint64_t seed) : link_(cfg) {
        Rng rng(seed);
        sim::Cycle at = 1;
        for (std::uint64_t seq = 0; seq < 200; ++seq) {
            noc::Packet p;
            const std::uint32_t sizes[] = {8, 16, 64, 128};
            p.size_bytes = sizes[rng.below(4)];
            p.a = seq;
            schedule_.emplace_back(at, std::move(p));
            at += next_gap(rng);
        }
    }

    bool deliver(sim::Cycle c, std::string& log) {
        bool any = false;
        while (cursor_ < schedule_.size() && schedule_[cursor_].first == c) {
            noc::Packet& p = schedule_[cursor_].second;
            if (!link_.try_send(p)) {
                append(log, c, ":rej:", p.a);
            }
            ++cursor_;
            any = true;
        }
        return any;
    }
    void tick_all(sim::Cycle c) { link_.tick(c); }
    void skip_all(sim::Cycle from, sim::Cycle to) { link_.skip(from, to); }
    [[nodiscard]] sim::Cycle horizon(sim::Cycle c) const {
        return link_.next_activity(c);
    }
    [[nodiscard]] bool quiescent() const { return link_.quiescent(); }
    void drain(sim::Cycle c, std::string& log) {
        noc::Packet out;
        while (link_.pop_delivered(out)) {
            append(log, c, ":pkt:", out.a);
        }
    }

 private:
    noc::Link link_;
    std::vector<std::pair<sim::Cycle, noc::Packet>> schedule_;
    std::size_t cursor_ = 0;
};

TEST(HorizonContract, LinkAcrossFuzzShapes) {
    for (const std::uint32_t latency : {1u, 40u, 100u}) {
        for (const std::uint32_t bpc : {8u, 16u}) {
            noc::LinkConfig cfg;
            cfg.latency = latency;
            cfg.bytes_per_cycle = bpc;
            SCOPED_TRACE("latency=" + std::to_string(latency) +
                         " bpc=" + std::to_string(bpc));
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                expect_horizon_exact<LinkHarness>(seed, 40'000, cfg);
            }
        }
    }
}

// ---- LocalStore ------------------------------------------------------------

class LsHarness {
 public:
    using Config = mem::LocalStoreConfig;

    LsHarness(const Config& cfg, std::uint64_t seed) : ls_(cfg) {
        Rng rng(seed);
        sim::Cycle at = 1;
        for (std::uint64_t id = 0; id < 160; ++id) {
            mem::LsRequest rq;
            rq.id = id;
            rq.is_write = rng.below(2) == 0;
            rq.addr = static_cast<sim::LsAddr>(rng.below(2048) * 64);
            rq.size = static_cast<std::uint32_t>(4u << rng.below(4));
            if (rq.is_write) {
                rq.data.assign(rq.size, static_cast<std::uint8_t>(id));
            }
            const auto client =
                static_cast<mem::LsClient>(rng.below(mem::kNumLsClients));
            schedule_.emplace_back(at, std::make_pair(client, std::move(rq)));
            at += next_gap(rng);
        }
    }

    bool deliver(sim::Cycle c, std::string&) {
        bool any = false;
        while (cursor_ < schedule_.size() && schedule_[cursor_].first == c) {
            auto& [client, rq] = schedule_[cursor_].second;
            ls_.enqueue(client, rq);
            ++cursor_;
            any = true;
        }
        return any;
    }
    void tick_all(sim::Cycle c) { ls_.tick(c); }
    // LocalStore is pure event-driven (not a Component subclass): no
    // per-cycle accounting, so a skipped span needs no replay.
    void skip_all(sim::Cycle, sim::Cycle) {}
    [[nodiscard]] sim::Cycle horizon(sim::Cycle c) const {
        return ls_.next_activity(c);
    }
    [[nodiscard]] bool quiescent() const { return ls_.quiescent(); }
    void drain(sim::Cycle c, std::string& log) {
        mem::LsResponse resp;
        for (std::size_t cl = 0; cl < mem::kNumLsClients; ++cl) {
            while (ls_.pop_response(static_cast<mem::LsClient>(cl), resp)) {
                append(log, c, ":ls:", resp.id * 10 + cl);
            }
        }
    }

 private:
    mem::LocalStore ls_;
    std::vector<std::pair<sim::Cycle, std::pair<mem::LsClient, mem::LsRequest>>>
        schedule_;
    std::size_t cursor_ = 0;
};

TEST(HorizonContract, LocalStoreAcrossFuzzShapes) {
    for (const std::uint32_t latency : {1u, 6u, 24u}) {
        for (const std::uint32_t ports : {1u, 3u}) {
            mem::LocalStoreConfig cfg;
            cfg.latency = latency;
            cfg.ports = ports;
            SCOPED_TRACE("latency=" + std::to_string(latency) +
                         " ports=" + std::to_string(ports));
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                expect_horizon_exact<LsHarness>(seed, 40'000, cfg);
            }
        }
    }
}

// ---- Mfc + LocalStore (cooperating pair) -----------------------------------

/// The MFC cannot run without its local store, so the pair is event-driven
/// as a unit: the horizon is the min over both, exactly as the wheel sees
/// two independently-armed components.  Line data comes back reactively: a
/// popped line request schedules deliver_line_data() a pseudo-random delay
/// later, mimicking the NoC round trip.  Both runs derive those delays from
/// the same per-line counter, so identical pop orders (the property under
/// test) yield identical delivery schedules.
class MfcHarness {
 public:
    struct Config {
        dma::MfcConfig mfc;
        mem::LocalStoreConfig ls;
    };

    MfcHarness(const Config& cfg, std::uint64_t seed)
        : ls_(cfg.ls), mfc_(cfg.mfc, ls_), delay_rng_(seed ^ 0xdadau) {
        Rng rng(seed);
        sim::Cycle at = 1;
        for (std::uint64_t n = 0; n < 80; ++n) {
            dma::MfcCommand cmd;
            cmd.op = dma::MfcOp::kGet;
            cmd.tag = static_cast<std::uint32_t>(n % 16);
            cmd.owner = n;
            cmd.mem_addr = rng.below(1 << 16) * 128;
            cmd.ls_addr = static_cast<sim::LsAddr>(rng.below(512) * 128);
            cmd.bytes = static_cast<std::uint32_t>(
                16u << rng.below(5));  // 16..256 B: 1..2 lines
            schedule_.emplace_back(at, cmd);
            at += next_gap(rng);
        }
    }

    bool deliver(sim::Cycle c, std::string& log) {
        bool any = false;
        while (cursor_ < schedule_.size() && schedule_[cursor_].first == c) {
            if (!mfc_.try_enqueue(schedule_[cursor_].second)) {
                append(log, c, ":rej:", schedule_[cursor_].second.owner);
            }
            ++cursor_;
            any = true;
        }
        while (!returns_.empty() && returns_.front().first <= c) {
            const std::uint64_t line = returns_.front().second;
            returns_.erase(returns_.begin());
            mfc_.deliver_line_data(
                line, std::vector<std::uint8_t>(line_bytes_[line], 0xAB));
            any = true;
        }
        return any;
    }
    void tick_all(sim::Cycle c) {
        ls_.tick(c);
        mfc_.tick(c);
    }
    void skip_all(sim::Cycle from, sim::Cycle to) {
        mfc_.skip(from, to);  // the LS is pure event-driven (no skip hook)
    }
    [[nodiscard]] sim::Cycle horizon(sim::Cycle c) const {
        const sim::Cycle pair =
            std::min(ls_.next_activity(c), mfc_.next_activity(c));
        // A pending line return is scheduled input, not component state:
        // fold it in like the machine's channel-drain lookahead does.
        return returns_.empty() ? pair
                                : std::min(pair, returns_.front().first);
    }
    [[nodiscard]] bool quiescent() const {
        return ls_.quiescent() && mfc_.quiescent() && returns_.empty();
    }
    void drain(sim::Cycle c, std::string& log) {
        dma::MfcLineRequest line;
        while (mfc_.pop_line_request(line)) {
            append(log, c, ":line:", line.line_id);
            line_bytes_[line.line_id] = line.bytes;
            const sim::Cycle delay = 5 + delay_rng_.below(300);
            returns_.emplace_back(c + delay, line.line_id);
            std::sort(returns_.begin(), returns_.end());
        }
        dma::MfcCompletion comp;
        while (mfc_.pop_completion(comp)) {
            append(log, c, ":done:", comp.owner * 100 + comp.tag);
        }
    }

 private:
    mem::LocalStore ls_;
    dma::Mfc mfc_;
    Rng delay_rng_;
    std::vector<std::pair<sim::Cycle, dma::MfcCommand>> schedule_;
    std::size_t cursor_ = 0;
    std::vector<std::pair<sim::Cycle, std::uint64_t>> returns_;
    std::vector<std::uint32_t> line_bytes_ = std::vector<std::uint32_t>(4096);
};

TEST(HorizonContract, MfcWithLocalStoreAcrossFuzzShapes) {
    for (const std::uint32_t decode : {1u, 30u, 100u}) {
        for (const std::uint32_t queue : {2u, 16u}) {
            MfcHarness::Config cfg;
            cfg.mfc.command_latency = decode;
            cfg.mfc.queue_depth = queue;
            SCOPED_TRACE("decode=" + std::to_string(decode) +
                         " queue=" + std::to_string(queue));
            for (std::uint64_t seed = 1; seed <= 3; ++seed) {
                expect_horizon_exact<MfcHarness>(seed, 60'000, cfg);
            }
        }
    }
}

}  // namespace
}  // namespace dta
