// The SPSC cross-shard channel: single-producer/single-consumer ring with
// cycle-stamped entries.  Ordering, capacity, wrap-around, and a real
// two-thread stress run.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "sim/channel.hpp"

namespace dta::sim {
namespace {

TEST(SpscChannel, StartsEmpty) {
    SpscChannel<int> ch(16);
    EXPECT_TRUE(ch.empty());
    EXPECT_EQ(ch.size(), 0u);
    Cycle drain = 0;
    EXPECT_FALSE(ch.peek_drain(&drain));
    int v = 0;
    EXPECT_FALSE(ch.try_pop(v));
}

TEST(SpscChannel, FifoOrderAndStamps) {
    SpscChannel<int> ch(16);
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(ch.try_push(static_cast<Cycle>(100 + i), i));
    }
    EXPECT_EQ(ch.size(), 10u);
    for (int i = 0; i < 10; ++i) {
        Cycle drain = 0;
        ASSERT_TRUE(ch.peek_drain(&drain));
        EXPECT_EQ(drain, static_cast<Cycle>(100 + i));
        int v = -1;
        ASSERT_TRUE(ch.try_pop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_TRUE(ch.empty());
}

TEST(SpscChannel, CapacityRoundsUpAndRejectsWhenFull) {
    SpscChannel<int> ch(10);  // rounds up to 16
    int pushed = 0;
    while (ch.try_push(static_cast<Cycle>(pushed), pushed)) {
        ++pushed;
    }
    EXPECT_EQ(pushed, 16);
    EXPECT_FALSE(ch.try_push(99, 99));
    int v = 0;
    ASSERT_TRUE(ch.try_pop(v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(ch.try_push(99, 99));  // slot freed
}

TEST(SpscChannel, WrapsAroundManyTimes) {
    SpscChannel<std::uint64_t> ch(4);
    std::uint64_t next_pop = 0;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        while (!ch.try_push(i, i)) {
            std::uint64_t v = 0;
            ASSERT_TRUE(ch.try_pop(v));
            EXPECT_EQ(v, next_pop++);
        }
    }
    std::uint64_t v = 0;
    while (ch.try_pop(v)) {
        EXPECT_EQ(v, next_pop++);
    }
    EXPECT_EQ(next_pop, 1000u);
}

TEST(SpscChannel, TwoThreadStress) {
    constexpr std::uint64_t kCount = 50'000;
    SpscChannel<std::uint64_t> ch(64);
    std::vector<std::uint64_t> got;
    got.reserve(kCount);

    std::thread consumer([&ch, &got] {
        while (got.size() < kCount) {
            std::uint64_t v = 0;
            if (ch.try_pop(v)) {
                got.push_back(v);
            } else {
                std::this_thread::yield();  // oversubscribed hosts
            }
        }
    });
    for (std::uint64_t i = 0; i < kCount; ++i) {
        while (!ch.try_push(i, i)) {
            std::this_thread::yield();
        }
    }
    consumer.join();

    ASSERT_EQ(got.size(), kCount);
    for (std::uint64_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(got[i], i) << "reordered at " << i;
    }
    EXPECT_TRUE(ch.empty());
}

}  // namespace
}  // namespace dta::sim
