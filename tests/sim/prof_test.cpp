// Host-time profiler units: accumulation, exclusive scope attribution,
// orphan-child bookkeeping, snapshots, and the deterministic merge.
#include "sim/prof.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dta::sim {
namespace {

ProfPhase tick() { return ProfPhase::kTick; }

TEST(ProfBuffer, AddAccumulatesNsAndCalls) {
    ProfBuffer b;
    b.reset(2);
    b.add(0, ProfPhase::kQuiescence, 100);
    b.add(1, tick(), 40);
    b.add(1, tick(), 60, 2);
    EXPECT_EQ(b.rows().size(), 3u);  // shard row + 2 components
    const auto& acc =
        b.rows()[1][static_cast<std::size_t>(ProfPhase::kTick)];
    EXPECT_EQ(acc.ns, 100u);
    EXPECT_EQ(acc.calls, 3u);
    EXPECT_EQ(b.phase_ns(tick()), 100u);
    EXPECT_EQ(b.phase_ns(ProfPhase::kQuiescence), 100u);
    EXPECT_EQ(b.total_ns(), 200u);
}

TEST(ProfScope, NullBufferIsANoop) {
    ProfScope s(nullptr, 0, tick());
    // Nothing to assert beyond "does not crash": the null path must be
    // safe because every instrumentation site runs it when profiling is
    // off.
}

TEST(ProfScope, RecordsTimeAndCall) {
    ProfBuffer b;
    b.reset(1);
    {
        ProfScope s(&b, 1, tick());
        // Burn a few clock reads so the duration is visibly non-zero.
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 100; ++i) {
            sink = sink + prof_now_ns();
        }
    }
    const auto& acc = b.rows()[1][static_cast<std::size_t>(tick())];
    EXPECT_EQ(acc.calls, 1u);
    EXPECT_GT(acc.ns, 0u);
}

TEST(ProfScope, NestedChildTimeIsExcludedFromParent) {
    ProfBuffer b;
    b.reset(2);
    std::uint64_t child_ns = 0;
    {
        ProfScope outer(&b, ProfBuffer::kShardSlot,
                        ProfPhase::kQuiescence);
        {
            ProfScope inner(&b, 1, tick());
            volatile std::uint64_t sink = 0;
            for (int i = 0; i < 1000; ++i) {
                sink = sink + prof_now_ns();
            }
        }
        child_ns = b.rows()[1][static_cast<std::size_t>(tick())].ns;
    }
    const std::uint64_t outer_self =
        b.rows()[0][static_cast<std::size_t>(ProfPhase::kQuiescence)].ns;
    EXPECT_GT(child_ns, 0u);
    // Exclusive attribution: the parent's self time does not re-count the
    // child's duration, so the sum of the two is the true elapsed span —
    // the parent's self time must be (much) smaller than the child's.
    EXPECT_LT(outer_self, child_ns);
    // The child was claimed by its parent, not the orphan bucket; the
    // outer scope itself is top-level, so ITS full duration (covering the
    // child) lands there for an enclosing manual timer to subtract.
    EXPECT_GE(b.take_orphan_child_ns(), child_ns);
}

TEST(ProfScope, TopLevelScopeBecomesOrphanChildTime) {
    ProfBuffer b;
    b.reset(1);
    {
        ProfScope lone(&b, 1, ProfPhase::kChannelSerialize);
        volatile std::uint64_t sink = 0;
        for (int i = 0; i < 100; ++i) {
            sink = sink + prof_now_ns();
        }
    }
    // A scope with no parent reports its full duration as orphan child
    // time, which the manual per-component tick timer subtracts.
    const std::uint64_t orphan = b.take_orphan_child_ns();
    EXPECT_GT(orphan, 0u);
    EXPECT_GE(orphan,
              b.rows()[1][static_cast<std::size_t>(
                  ProfPhase::kChannelSerialize)].ns);
    EXPECT_EQ(b.take_orphan_child_ns(), 0u);  // take() drains
}

TEST(ProfBuffer, SnapshotsAreCumulative) {
    ProfBuffer b;
    b.reset(1);
    b.add(1, tick(), 100);
    b.snapshot(10);
    b.add(1, tick(), 50);
    b.add(0, ProfPhase::kBarrierWait, 30);
    b.snapshot(20);
    ASSERT_EQ(b.snapshots().size(), 2u);
    EXPECT_EQ(b.snapshots()[0].cycle, 10u);
    EXPECT_EQ(b.snapshots()[0].ns[static_cast<std::size_t>(tick())], 100u);
    EXPECT_EQ(b.snapshots()[1].ns[static_cast<std::size_t>(tick())], 150u);
    EXPECT_EQ(b.snapshots()[1].ns[static_cast<std::size_t>(
                  ProfPhase::kBarrierWait)],
              30u);
}

TEST(PhaseNames, AreStableAndDistinct) {
    std::vector<std::string> seen;
    for (std::size_t p = 0; p < kNumProfPhases; ++p) {
        const std::string name = prof_phase_name(static_cast<ProfPhase>(p));
        EXPECT_FALSE(name.empty());
        for (const std::string& other : seen) {
            EXPECT_NE(name, other);
        }
        seen.push_back(name);
    }
    EXPECT_EQ(std::string(prof_phase_name(ProfPhase::kTick)), "tick");
    EXPECT_EQ(std::string(prof_phase_name(ProfPhase::kBarrierWait)),
              "barrier_wait");
}

TEST(Merge, FoldsRowsSkipsZerosAndComputesCoverage) {
    ProfBuffer b;
    b.reset(2);
    b.add(ProfBuffer::kShardSlot, ProfPhase::kNextActivity, 200, 4);
    b.add(1, tick(), 600, 10);
    // Component 2 (row 2) stays all-zero: it must not produce entries.
    b.set_wall_ns(1000);
    b.snapshot(64);

    HostProfile out;
    merge_prof_buffer(out, 0, "shard0", b, {"pe0", "pe1"});
    out.enabled = true;

    ASSERT_EQ(out.shards.size(), 1u);
    const HostProfileShard& sh = out.shards[0];
    EXPECT_EQ(sh.name, "shard0");
    EXPECT_EQ(sh.wall_ns, 1000u);
    EXPECT_EQ(sh.phase_ns[static_cast<std::size_t>(tick())], 600u);
    ASSERT_EQ(sh.samples.size(), 1u);
    EXPECT_DOUBLE_EQ(sh.coverage(), 0.8);  // (200 + 600) / 1000

    ASSERT_EQ(out.entries.size(), 2u);
    // Shard-level phases report component "-".
    bool saw_shard_row = false;
    bool saw_pe0 = false;
    for (const HostProfileEntry& e : out.entries) {
        if (e.component == "-") {
            saw_shard_row = true;
            EXPECT_EQ(e.phase, ProfPhase::kNextActivity);
            EXPECT_EQ(e.ns, 200u);
            EXPECT_EQ(e.calls, 4u);
        }
        if (e.component == "pe0") {
            saw_pe0 = true;
            EXPECT_EQ(e.ns, 600u);
        }
        EXPECT_NE(e.component, "pe1");  // zero row skipped
    }
    EXPECT_TRUE(saw_shard_row);
    EXPECT_TRUE(saw_pe0);
    EXPECT_EQ(out.total_ns(), 800u);
    EXPECT_EQ(out.total_wall_ns(), 1000u);

    // The self-time table names the hot entry first and reports coverage.
    const std::string table = out.table();
    EXPECT_NE(table.find("pe0"), std::string::npos);
    EXPECT_NE(table.find("tick"), std::string::npos);
    EXPECT_NE(table.find("coverage"), std::string::npos);
    EXPECT_LT(table.find("pe0"), table.find("next_activity"));
}

TEST(Merge, MultipleShardsAccumulate) {
    HostProfile out;
    ProfBuffer a;
    a.reset(1);
    a.add(1, tick(), 100);
    a.set_wall_ns(150);
    ProfBuffer b;
    b.reset(1);
    b.add(1, tick(), 300);
    b.set_wall_ns(400);
    merge_prof_buffer(out, 0, "shard0", a, {"x"});
    merge_prof_buffer(out, 1, "shard1", b, {"y"});
    ASSERT_EQ(out.shards.size(), 2u);
    EXPECT_EQ(out.total_ns(), 400u);
    EXPECT_EQ(out.total_wall_ns(), 550u);
    EXPECT_EQ(out.entries.size(), 2u);
    EXPECT_EQ(out.entries[0].shard, 0u);
    EXPECT_EQ(out.entries[1].shard, 1u);
}

}  // namespace
}  // namespace dta::sim
