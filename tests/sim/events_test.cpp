// Event-log unit tests: payload packing, chunked storage, the shard-merge
// canonicalization, and the DTAEV1 text round trip.
#include "sim/events.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/check.hpp"

namespace dta::sim {
namespace {

Event make(Cycle cycle, std::uint32_t ordinal, EventKind kind,
           std::uint64_t thread) {
    Event e;
    e.cycle = cycle;
    e.ordinal = ordinal;
    e.kind = kind;
    e.thread = thread;
    return e;
}

TEST(Events, KindNamesRoundTrip) {
    for (std::size_t k = 0; k < kNumEventKinds; ++k) {
        const auto kind = static_cast<EventKind>(k);
        EventKind back = EventKind::kFallocIssue;
        ASSERT_TRUE(event_kind_from_name(event_kind_name(kind), back))
            << "kind " << k;
        EXPECT_EQ(back, kind);
    }
    EventKind out = EventKind::kFallocIssue;
    EXPECT_FALSE(event_kind_from_name("no_such_kind", out));
}

TEST(Events, PayloadPacking) {
    const std::uint64_t d = pack_store_dest(513, 0xabcdef, 1023);
    EXPECT_EQ(store_dest_pe(d), 513u);
    EXPECT_EQ(store_dest_slot(d), 0xabcdefu);
    EXPECT_EQ(store_dest_off(d), 1023u);

    EXPECT_EQ(grant_code(pack_grant(42, false)), 42u);
    EXPECT_FALSE(grant_virtual(pack_grant(42, false)));
    EXPECT_TRUE(grant_virtual(pack_grant(42, true)));
    EXPECT_EQ(grant_code(pack_grant(42, true)), 42u);
}

TEST(Events, ChunkedStorageKeepsPushOrder) {
    EventLog log;
    const std::size_t n = EventLog::kChunkEvents * 2 + 17;
    for (std::size_t i = 0; i < n; ++i) {
        log.push(make(i, 0, EventKind::kReady, i + 1));
    }
    EXPECT_EQ(log.size(), n);
    const std::vector<Event> flat = log.flatten();
    ASSERT_EQ(flat.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(flat[i].thread, i + 1) << "event " << i;
    }
}

// Two shard logs whose (cycle, ordinal) groups interleave must merge into
// exactly the order a single-threaded run would have emitted: sorted by
// (cycle, ordinal), push order preserved within a group.
TEST(Events, MergeReproducesSingleThreadedOrder) {
    EventLog shard0;  // ordinals 0 and 1
    shard0.push(make(0, 0, EventKind::kFrameGrant, 1));
    shard0.push(make(0, 0, EventKind::kReady, 1));  // same group, after
    shard0.push(make(5, 1, EventKind::kDispatch, 1));
    EventLog shard1;  // ordinal 2
    shard1.push(make(0, 2, EventKind::kFrameGrant, 2));
    shard1.push(make(3, 2, EventKind::kDispatch, 2));

    EventLog merged;
    merged.append_from(shard1);  // worst-case append order
    merged.append_from(shard0);
    merged.canonicalize();

    const std::vector<Event> flat = merged.flatten();
    ASSERT_EQ(flat.size(), 5u);
    EXPECT_EQ(flat[0].kind, EventKind::kFrameGrant);  // (0,0) grant first
    EXPECT_EQ(flat[0].thread, 1u);
    EXPECT_EQ(flat[1].kind, EventKind::kReady);  // (0,0) push order kept
    EXPECT_EQ(flat[2].thread, 2u);               // (0,2)
    EXPECT_EQ(flat[3].cycle, 3u);                // (3,2)
    EXPECT_EQ(flat[4].cycle, 5u);                // (5,1)
}

TEST(Events, Dtaev1RoundTrip) {
    EventLog log;
    Event e;
    e.cycle = 123456789;
    e.thread = (7ull << 32) | 42;
    e.other = (1ull << 32) | 1;
    e.arg = pack_store_dest(7, 3, 12);
    e.stall = 987654321;
    e.ordinal = 7;
    e.kind = EventKind::kFrameStore;
    e.aux = 255;
    log.push(e);
    log.push(make(123456790, 9, EventKind::kStop, e.thread));

    std::ostringstream out;
    write_events(out, log, 123456791, 16, {"main", "worker"});

    std::istringstream in(out.str());
    const EventFile file = read_events(in);
    EXPECT_EQ(file.cycles, 123456791u);
    EXPECT_EQ(file.pes, 16u);
    ASSERT_EQ(file.code_names.size(), 2u);
    EXPECT_EQ(file.code_names[0], "main");
    EXPECT_EQ(file.code_names[1], "worker");
    ASSERT_EQ(file.events.size(), 2u);
    const Event& r = file.events[0];
    EXPECT_EQ(r.cycle, e.cycle);
    EXPECT_EQ(r.thread, e.thread);
    EXPECT_EQ(r.other, e.other);
    EXPECT_EQ(r.arg, e.arg);
    EXPECT_EQ(r.stall, e.stall);
    EXPECT_EQ(r.ordinal, e.ordinal);
    EXPECT_EQ(r.kind, e.kind);
    EXPECT_EQ(r.aux, e.aux);
    EXPECT_EQ(file.events[1].kind, EventKind::kStop);
}

TEST(Events, MalformedInputThrows) {
    std::istringstream bad_magic("NOTDTA\n");
    EXPECT_THROW(read_events(bad_magic), SimError);
    std::istringstream bad_kind(
        "DTAEV1\ncycles 10\npes 1\nevents 1\n0 bogus 0 0 1 0 0 0\n");
    EXPECT_THROW(read_events(bad_kind), SimError);
}

}  // namespace
}  // namespace dta::sim
