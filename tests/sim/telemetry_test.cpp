// TelemetrySampler mechanics: bounded-ring eviction order, the one-shot
// stall watchdog (trigger, latch, reset-on-progress, quiescence immunity),
// and the NDJSON line formats dta_top parses.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "sim/check.hpp"
#include "sim/telemetry.hpp"

namespace dta::sim {
namespace {

TelemetryFrame frame_at(std::uint64_t cycle, std::uint64_t fp) {
    TelemetryFrame f;
    f.cycle = cycle;
    f.activity_fp = fp;
    f.instrs_retired = fp;  // any monotone stand-in
    return f;
}

TEST(Telemetry, ConfigMustBeSane) {
    TelemetryConfig bad;
    bad.interval = 0;
    EXPECT_THROW(TelemetrySampler{bad}, SimError);
    bad = TelemetryConfig{};
    bad.ring_capacity = 0;
    EXPECT_THROW(TelemetrySampler{bad}, SimError);
}

TEST(Telemetry, RingKeepsNewestAndCountsDrops) {
    TelemetryConfig cfg;
    cfg.ring_capacity = 4;
    cfg.watchdog_samples = 0;
    TelemetrySampler s(cfg);
    for (std::uint64_t i = 0; i < 10; ++i) {
        s.record(frame_at(i * 100, i), false);
    }
    const TelemetryResult r = s.result();
    EXPECT_TRUE(r.enabled);
    EXPECT_EQ(r.captured, 10u);
    EXPECT_EQ(r.dropped, 6u);
    ASSERT_EQ(r.frames.size(), 4u);
    // Oldest-first drain of the newest window.
    EXPECT_EQ(r.frames.front().cycle, 600u);
    EXPECT_EQ(r.frames.back().cycle, 900u);
    EXPECT_EQ(s.latest().cycle, 900u);
}

TEST(Telemetry, RingBelowCapacityKeepsEverything) {
    TelemetryConfig cfg;
    cfg.ring_capacity = 8;
    TelemetrySampler s(cfg);
    s.record(frame_at(0, 1), false);
    s.record(frame_at(100, 2), false);
    const TelemetryResult r = s.result();
    EXPECT_EQ(r.dropped, 0u);
    ASSERT_EQ(r.frames.size(), 2u);
    EXPECT_EQ(r.frames[0].cycle, 0u);
    EXPECT_EQ(r.frames[1].cycle, 100u);
}

TEST(Telemetry, WatchdogFiresOnceAfterNSamples) {
    TelemetryConfig cfg;
    cfg.watchdog_samples = 3;
    TelemetrySampler s(cfg);
    std::FILE* diag = std::tmpfile();
    ASSERT_NE(diag, nullptr);
    s.set_diag_stream(diag);
    int stall_info_calls = 0;
    s.set_stall_info([&stall_info_calls](TelemetryStall& st) {
        ++stall_info_calls;
        st.components = "lse0 [shard 0, epoch 1]";
    });
    // Progress, then a frozen fingerprint; the reference sample (sample 0
    // of the freeze) does not count, the next 3 do.
    s.record(frame_at(0, 7), false);
    s.record(frame_at(100, 9), false);
    for (std::uint64_t i = 2; i < 10; ++i) {
        s.record(frame_at(i * 100, 9), false);
    }
    EXPECT_TRUE(s.stalled());
    EXPECT_EQ(stall_info_calls, 1) << "diagnostic must latch after firing";
    const TelemetryResult r = s.result();
    EXPECT_TRUE(r.stalled);
    EXPECT_EQ(r.stall.cycle, 400u);  // 3rd frozen sample after cycle 100
    EXPECT_EQ(r.stall.samples, 3u);
    EXPECT_EQ(r.stall.stalled_cycles, 300u);
    EXPECT_EQ(r.stall.components, "lse0 [shard 0, epoch 1]");
    // Exactly one diagnostic line reached the stream.
    std::rewind(diag);
    std::string text;
    char buf[256];
    while (std::fgets(buf, sizeof buf, diag) != nullptr) {
        text += buf;
    }
    std::fclose(diag);
    std::size_t hits = 0;
    for (std::size_t at = text.find("telemetry watchdog:");
         at != std::string::npos;
         at = text.find("telemetry watchdog:", at + 1)) {
        ++hits;
    }
    EXPECT_EQ(hits, 1u) << text;
    EXPECT_NE(text.find("lse0"), std::string::npos) << text;
}

TEST(Telemetry, WatchdogResetsWhenProgressResumes) {
    TelemetryConfig cfg;
    cfg.watchdog_samples = 3;
    TelemetrySampler s(cfg);
    std::uint64_t cycle = 0;
    const auto freeze = [&](std::uint64_t fp, int n) {
        for (int i = 0; i < n; ++i) {
            s.record(frame_at(cycle, fp), false);
            cycle += 100;
        }
    };
    freeze(5, 3);   // 2 frozen samples — below the threshold
    freeze(6, 3);   // progress resets the streak, then 2 frozen again
    freeze(7, 3);
    EXPECT_FALSE(s.stalled());
}

TEST(Telemetry, WatchdogIgnoresQuiescentMachine) {
    TelemetryConfig cfg;
    cfg.watchdog_samples = 2;
    TelemetrySampler s(cfg);
    // A finished machine has a frozen fingerprint but is quiescent: a
    // drained run is completion, not a stall.
    for (std::uint64_t i = 0; i < 8; ++i) {
        s.record(frame_at(i * 100, 42), /*quiescent=*/true);
    }
    EXPECT_FALSE(s.stalled());
}

TEST(Telemetry, WatchdogDisabledByZeroSamples) {
    TelemetryConfig cfg;
    cfg.watchdog_samples = 0;
    TelemetrySampler s(cfg);
    for (std::uint64_t i = 0; i < 20; ++i) {
        s.record(frame_at(i * 100, 42), false);
    }
    EXPECT_FALSE(s.stalled());
}

TEST(Telemetry, NdjsonFrameLine) {
    TelemetryFrame f;
    f.cycle = 12800;
    f.pes_running = 3;
    f.threads_ready = 5;
    f.threads_waitdma = 2;
    f.frames_live = 9;
    f.mfc_commands = 4;
    f.dma_bytes = 512;
    f.mem_queue = 1;
    f.noc_pending = 6;
    f.instrs_retired = 777;
    f.host_ns = 1234;
    f.wheel_armed = 11;
    f.wheel_pops = 999;
    const std::string line = TelemetrySampler::ndjson_line(f);
    EXPECT_EQ(line,
              "{\"type\":\"frame\",\"cycle\":12800,\"running\":3,"
              "\"ready\":5,\"waitdma\":2,\"frames_live\":9,"
              "\"mfc_commands\":4,\"dma_bytes\":512,\"mem_queue\":1,"
              "\"noc_pending\":6,\"instrs_retired\":777,\"host_ns\":1234,"
              "\"wheel_armed\":11,\"wheel_pops\":999}\n");
}

TEST(Telemetry, NdjsonStallLineEscapes) {
    TelemetryStall st;
    st.cycle = 500;
    st.samples = 4;
    st.stalled_cycles = 400;
    st.components = "mfc0 \"queue\"\nlse1 c:\\x";
    st.replay = "dta_run p.dta --restore snap";
    const std::string line = TelemetrySampler::ndjson_stall_line(st);
    EXPECT_EQ(line,
              "{\"type\":\"stall\",\"cycle\":500,\"samples\":4,"
              "\"stalled_cycles\":400,"
              "\"components\":\"mfc0 \\\"queue\\\"\\nlse1 c:\\\\x\","
              "\"replay\":\"dta_run p.dta --restore snap\"}\n");
}

TEST(Telemetry, StreamWritesOneLinePerFrame) {
    // A plain file stands in for the FIFO: same fopen/fwrite path.
    TelemetryConfig cfg;
    cfg.watchdog_samples = 0;
    const std::string path = ::testing::TempDir() + "telemetry_stream.ndjson";
    cfg.stream_path = path;
    {
        TelemetrySampler s(cfg);
        s.record(frame_at(0, 1), false);
        s.record(frame_at(100, 2), false);
    }
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    int lines = 0;
    char buf[512];
    std::string first;
    while (std::fgets(buf, sizeof buf, f) != nullptr) {
        if (lines == 0) {
            first = buf;
        }
        ++lines;
    }
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_EQ(lines, 2);
    EXPECT_NE(first.find("\"type\":\"frame\""), std::string::npos);
    EXPECT_NE(first.find("\"cycle\":0"), std::string::npos);
}

TEST(Telemetry, UnwritableStreamPathIsRefused) {
    TelemetryConfig cfg;
    cfg.stream_path = "/nonexistent-dir/telemetry.ndjson";
    EXPECT_THROW(TelemetrySampler{cfg}, SimError);
}

}  // namespace
}  // namespace dta::sim
