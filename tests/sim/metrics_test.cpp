// Histogram bucketing / percentiles, gauge series, and registry gating.
#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "sim/check.hpp"

namespace dta::sim {
namespace {

TEST(Histogram, BucketOfIsBitWidth) {
    EXPECT_EQ(Histogram::bucket_of(0), 0u);
    EXPECT_EQ(Histogram::bucket_of(1), 1u);
    EXPECT_EQ(Histogram::bucket_of(2), 2u);
    EXPECT_EQ(Histogram::bucket_of(3), 2u);
    EXPECT_EQ(Histogram::bucket_of(4), 3u);
    EXPECT_EQ(Histogram::bucket_of(7), 3u);
    EXPECT_EQ(Histogram::bucket_of(8), 4u);
    EXPECT_EQ(Histogram::bucket_of(~0ull), 64u);
}

TEST(Histogram, TracksExactScalars) {
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    h.record(10);
    h.record(20);
    h.record(300);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 330u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 300u);
    EXPECT_DOUBLE_EQ(h.mean(), 110.0);
}

TEST(Histogram, PercentilesAreMonotoneAndClamped) {
    Histogram h;
    for (std::uint64_t v = 1; v <= 1000; ++v) {
        h.record(v);
    }
    const double p50 = h.percentile(50);
    const double p90 = h.percentile(90);
    const double p99 = h.percentile(99);
    EXPECT_LE(p50, p90);
    EXPECT_LE(p90, p99);
    // Estimates stay in the true range and p0/p100 are exact.
    EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 1000.0);
    // A log2 sketch of uniform 1..1000 puts the median within its bucket
    // (512..1023 covers the true 500); allow full-bucket error.
    EXPECT_GE(p50, 256.0);
    EXPECT_LE(p50, 1000.0);
}

TEST(Histogram, SingleValuePercentilesAreExact) {
    Histogram h;
    h.record(42);
    EXPECT_DOUBLE_EQ(h.percentile(0), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(50), 42.0);
    EXPECT_DOUBLE_EQ(h.percentile(100), 42.0);
}

TEST(Histogram, MergeMatchesCombinedRecording) {
    Histogram a;
    Histogram b;
    Histogram combined;
    for (std::uint64_t v : {1ull, 5ull, 9ull, 100ull}) {
        a.record(v);
        combined.record(v);
    }
    for (std::uint64_t v : {0ull, 7ull, 4000ull}) {
        b.record(v);
        combined.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum(), combined.sum());
    EXPECT_EQ(a.min(), combined.min());
    EXPECT_EQ(a.max(), combined.max());
    EXPECT_EQ(a.buckets(), combined.buckets());
}

TEST(GaugeSeries, KeepsOrderedSamplesAndMax) {
    GaugeSeries g;
    EXPECT_EQ(g.last(), 0);
    g.sample(0, 3);
    g.sample(256, 7);
    g.sample(512, 2);
    ASSERT_EQ(g.samples().size(), 3u);
    EXPECT_EQ(g.samples()[1].cycle, 256u);
    EXPECT_EQ(g.samples()[1].value, 7);
    EXPECT_EQ(g.max(), 7);
    EXPECT_EQ(g.last(), 2);
}

TEST(GaugeSeries, MergeAddSumsPointwiseAndRecomputesMax) {
    GaugeSeries a;
    a.sample(0, 10);
    a.sample(256, 2);
    a.sample(512, 1);
    GaugeSeries b;
    b.sample(0, -8);
    b.sample(256, 3);
    b.sample(512, 4);
    a.merge_add(b);
    ASSERT_EQ(a.samples().size(), 3u);
    EXPECT_EQ(a.samples()[0].value, 2);
    EXPECT_EQ(a.samples()[1].value, 5);
    EXPECT_EQ(a.samples()[2].value, 5);
    // max_ is recomputed from the sums: the pre-merge peak of 10 at cycle 0
    // collapses to 2, so the merged max must be 5, not 10.
    EXPECT_EQ(a.max(), 5);
    EXPECT_EQ(a.last(), 5);
}

TEST(GaugeSeries, MergeAddWithEmptySideIsIdentity) {
    GaugeSeries a;
    a.sample(0, 3);
    a.sample(256, 7);
    const GaugeSeries empty;
    // Empty other: no-op.
    a.merge_add(empty);
    ASSERT_EQ(a.samples().size(), 2u);
    EXPECT_EQ(a.max(), 7);
    // Empty self: adopts the other series wholesale, max included.
    GaugeSeries c;
    c.merge_add(a);
    ASSERT_EQ(c.samples().size(), 2u);
    EXPECT_EQ(c.samples()[1].cycle, 256u);
    EXPECT_EQ(c.max(), 7);
    EXPECT_EQ(c.last(), 7);
}

TEST(GaugeSeries, MergeAddRejectsMisalignedShardSeries) {
    // Shards sample the same gauge at identical cycles by construction; a
    // length or cycle mismatch is a simulator bug, not user error.
    GaugeSeries a;
    a.sample(0, 1);
    a.sample(256, 1);
    GaugeSeries shorter;
    shorter.sample(0, 1);
    EXPECT_THROW(a.merge_add(shorter), CheckError);

    GaugeSeries skewed;
    skewed.sample(0, 1);
    skewed.sample(128, 1);  // same length, different sample cycle
    GaugeSeries base;
    base.sample(0, 1);
    base.sample(256, 1);
    EXPECT_THROW(base.merge_add(skewed), CheckError);
}

TEST(MetricsRegistry, DisabledReturnsNull) {
    MetricsRegistry reg;
    EXPECT_FALSE(reg.enabled());
    EXPECT_EQ(reg.counter("x"), nullptr);
    EXPECT_EQ(reg.histogram("x"), nullptr);
    EXPECT_EQ(reg.gauge("x"), nullptr);
    EXPECT_TRUE(reg.counters().empty());
}

TEST(MetricsRegistry, EnabledHandsOutStableNamedInstruments) {
    MetricsRegistry reg;
    reg.enable();
    Counter* c = reg.counter("dma.commands");
    ASSERT_NE(c, nullptr);
    c->add(3);
    // Same name resolves to the same instrument, also after other
    // insertions (node-based storage).
    (void)reg.counter("aaa");
    (void)reg.counter("zzz");
    EXPECT_EQ(reg.counter("dma.commands"), c);
    EXPECT_EQ(c->value, 3u);

    Histogram* h = reg.histogram("lat");
    ASSERT_NE(h, nullptr);
    h->record(17);
    EXPECT_EQ(reg.histograms().at("lat").count(), 1u);
}

TEST(MetricsRegistry, CopyCarriesData) {
    MetricsRegistry reg;
    reg.enable();
    reg.counter("n")->add(9);
    reg.gauge("g")->sample(128, 4);
    const MetricsRegistry copy = reg;  // the RunResult path
    EXPECT_EQ(copy.counters().at("n").value, 9u);
    EXPECT_EQ(copy.gauges().at("g").last(), 4);
}

}  // namespace
}  // namespace dta::sim
