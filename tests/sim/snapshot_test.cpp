// The snapshot container and byte-stream layer: primitive round-trips,
// the save_seq/load_seq helpers, the writer/reader container format
// (magic, version, fingerprint, per-section CRCs), and the failure modes —
// every one a clean sim::SimError, never an abort: a damaged snapshot is a
// user-input problem.
#include "sim/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "sim/check.hpp"

namespace dta::sim {
namespace {

std::string tmp_path(const std::string& name) {
    return testing::TempDir() + "snapshot_test_" + name;
}

TEST(StateStream, PrimitivesRoundTrip) {
    StateSink s;
    s.u8(0xab);
    s.u16(0xbeef);
    s.u32(0xdeadbeefu);
    s.u64(0x0123456789abcdefull);
    s.i64(-42);
    s.flag(true);
    s.flag(false);
    s.str("hello");
    s.str("");
    const std::uint8_t raw[3] = {1, 2, 3};
    s.blob(raw, sizeof(raw));

    StateSource r(s.data().data(), s.size());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_TRUE(r.flag());
    EXPECT_FALSE(r.flag());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.str(), "");
    std::uint8_t back[3] = {};
    r.blob(back, sizeof(back));
    EXPECT_EQ(back[2], 3);
    r.finish();  // consumed exactly
}

TEST(StateStream, LittleEndianLayout) {
    StateSink s;
    s.u32(0x01020304u);
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s.data()[0], 0x04);  // least-significant byte first
    EXPECT_EQ(s.data()[3], 0x01);
}

TEST(StateStream, SequenceRoundTrip) {
    const std::deque<std::uint32_t> in = {5, 10, 15};
    StateSink s;
    save_seq(s, in, [](StateSink& k, std::uint32_t v) { k.u32(v); });
    StateSource r(s.data().data(), s.size());
    std::deque<std::uint32_t> out;
    load_seq(r, out, [](StateSource& k, std::uint32_t& v) { v = k.u32(); });
    r.finish();
    EXPECT_EQ(in, out);
}

TEST(StateStream, UnderflowIsSimError) {
    StateSink s;
    s.u16(7);
    StateSource r(s.data().data(), s.size());
    (void)r.u8();
    EXPECT_THROW((void)r.u32(), SimError);  // only one byte left
}

TEST(StateStream, UnconsumedBytesAreFormatDrift) {
    StateSink s;
    s.u64(1);
    s.u64(2);
    StateSource r(s.data().data(), s.size());
    (void)r.u64();
    EXPECT_THROW(r.finish(), SimError);
}

TEST(Snapshot, WriterReaderRoundTrip) {
    const std::string path = tmp_path("roundtrip.dtasnap");
    SnapshotWriter w(0x1122334455667788ull, 4096);
    w.section("alpha").u32(11);
    {
        StateSink& s = w.section("beta");
        s.u64(22);
        s.str("payload");
    }
    w.write(path);

    const SnapshotReader r(path);
    EXPECT_EQ(r.config_fingerprint(), 0x1122334455667788ull);
    EXPECT_EQ(r.cycle(), 4096u);
    EXPECT_EQ(r.version(), kSnapshotFormatVersion);
    EXPECT_TRUE(r.has_section("alpha"));
    EXPECT_FALSE(r.has_section("gamma"));
    const std::vector<std::string> names = r.section_names();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "alpha");  // sorted
    EXPECT_EQ(names[1], "beta");
    {
        StateSource s = r.section("alpha");
        EXPECT_EQ(s.u32(), 11u);
        s.finish();
    }
    {
        StateSource s = r.section("beta");
        EXPECT_EQ(s.u64(), 22u);
        EXPECT_EQ(s.str(), "payload");
        s.finish();
    }
    EXPECT_THROW((void)r.section("gamma"), SimError);
    std::remove(path.c_str());
}

TEST(Snapshot, SameStateSavesIdenticalBytes) {
    const std::string pa = tmp_path("ident_a.dtasnap");
    const std::string pb = tmp_path("ident_b.dtasnap");
    for (const std::string& p : {pa, pb}) {
        SnapshotWriter w(7, 123);
        w.section("x").u64(99);
        w.write(p);
    }
    const auto slurp = [](const std::string& p) {
        std::ifstream f(p, std::ios::binary);
        return std::string(std::istreambuf_iterator<char>(f), {});
    };
    EXPECT_EQ(slurp(pa), slurp(pb));
    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

TEST(Snapshot, MissingFileIsSimError) {
    EXPECT_THROW(SnapshotReader r(tmp_path("nonexistent.dtasnap")), SimError);
}

TEST(Snapshot, BadMagicIsSimError) {
    const std::string path = tmp_path("badmagic.dtasnap");
    {
        std::ofstream f(path, std::ios::binary);
        f << "NOTASNAPnonsense payload";
    }
    EXPECT_THROW(SnapshotReader r(path), SimError);
    std::remove(path.c_str());
}

TEST(Snapshot, TruncationIsSimError) {
    const std::string path = tmp_path("trunc.dtasnap");
    {
        SnapshotWriter w(1, 2);
        w.section("s").u64(3);
        w.write(path);
    }
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    in.close();
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() - 4));
    }
    EXPECT_THROW(SnapshotReader r(path), SimError);
    std::remove(path.c_str());
}

TEST(Snapshot, PayloadCorruptionTripsCrc) {
    const std::string path = tmp_path("corrupt.dtasnap");
    {
        SnapshotWriter w(1, 2);
        w.section("s").u64(0);
        w.write(path);
    }
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    in.close();
    bytes[bytes.size() - 3] ^= 0x40;  // flip a payload bit
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    EXPECT_THROW(SnapshotReader r(path), SimError);
    std::remove(path.c_str());
}

TEST(Snapshot, VersionMismatchIsSimError) {
    const std::string path = tmp_path("version.dtasnap");
    {
        SnapshotWriter w(1, 2);
        w.section("s").u64(0);
        w.write(path);
    }
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    in.close();
    bytes[8] = char(0x7f);  // the u32 version field follows the 8-byte magic
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    try {
        const SnapshotReader r(path);
        FAIL() << "version mismatch accepted";
    } catch (const SimError& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(Snapshot, Crc32KnownVector) {
    // IEEE CRC-32 of "123456789" is the classic check value.
    EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
}

TEST(Snapshot, Fnv1a64KnownVector) {
    EXPECT_EQ(fnv1a64("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
}

}  // namespace
}  // namespace dta::sim
