// The strict JSON parser behind bench files and the serve wire protocol:
// hardened grammar (trailing garbage, duplicate keys, non-grammar
// numbers are hard errors) and the dump_json round trip the serve client
// relies on to canonicalise user job specs.
#include "stats/json_value.hpp"

#include <gtest/gtest.h>

#include <string>

namespace dta::stats {
namespace {

TEST(JsonParse, AcceptsCompleteDocuments) {
    EXPECT_TRUE(parse_json("null").ok);
    EXPECT_TRUE(parse_json("true").ok);
    EXPECT_TRUE(parse_json("[1,2,3]").ok);
    EXPECT_TRUE(parse_json("  {\"a\": 1}  ").ok);
    EXPECT_TRUE(parse_json("-0.5e3").ok);
    EXPECT_TRUE(parse_json("\"\\u0041\\n\"").ok);
}

TEST(JsonParse, TrailingGarbageIsAnError) {
    const JsonParseResult r = parse_json("{\"op\":\"ping\"}x");
    EXPECT_FALSE(r.ok);
    // The offset points at the offending byte so wire-protocol error
    // frames can name it.
    EXPECT_EQ(r.offset, 13u);

    EXPECT_FALSE(parse_json("1 2").ok);
    EXPECT_FALSE(parse_json("[] []").ok);
    // Trailing whitespace alone stays fine.
    EXPECT_TRUE(parse_json("1 \n\t ").ok);
}

TEST(JsonParse, DuplicateObjectKeysAreAnError) {
    EXPECT_FALSE(parse_json("{\"op\":\"ping\",\"op\":\"stats\"}").ok);
    // Same key at different nesting levels is fine.
    EXPECT_TRUE(parse_json("{\"a\":{\"a\":1},\"b\":{\"a\":2}}").ok);
}

TEST(JsonParse, NonGrammarNumbersAreErrors) {
    EXPECT_FALSE(parse_json(".5").ok);
    EXPECT_FALSE(parse_json("1.").ok);
    EXPECT_FALSE(parse_json("1e").ok);
    EXPECT_FALSE(parse_json("+1").ok);
    EXPECT_FALSE(parse_json("01").ok);
    EXPECT_FALSE(parse_json("-").ok);
    EXPECT_TRUE(parse_json("0").ok);
    EXPECT_TRUE(parse_json("-0").ok);
    EXPECT_TRUE(parse_json("1e+9").ok);
}

TEST(JsonParse, TruncatedDocumentsAreErrors) {
    EXPECT_FALSE(parse_json("").ok);
    EXPECT_FALSE(parse_json("{\"a\":").ok);
    EXPECT_FALSE(parse_json("[1,").ok);
    EXPECT_FALSE(parse_json("\"unterminated").ok);
}

TEST(JsonDump, RoundTripsThroughTheParser) {
    const std::string doc =
        "{\"name\":\"ci/mmul/orig\",\"cycles\":91513,\"ok\":true,"
        "\"ratio\":0.25,\"tags\":[\"a\",\"b\"],\"none\":null}";
    const JsonParseResult first = parse_json(doc);
    ASSERT_TRUE(first.ok);
    const std::string dumped = dump_json(first.value);
    const JsonParseResult second = parse_json(dumped);
    ASSERT_TRUE(second.ok) << second.error;
    // Compact form is already canonical: dumping again is a fixed point.
    EXPECT_EQ(dump_json(second.value), dumped);
    // Integer-valued numbers keep their integer spelling.
    EXPECT_NE(dumped.find("\"cycles\":91513"), std::string::npos);
}

TEST(JsonDump, EscapesControlCharactersAndQuotes) {
    const std::string dumped =
        dump_json(JsonValue::make_string("a\"b\\c\n\x01"));
    const JsonParseResult back = parse_json(dumped);
    ASSERT_TRUE(back.ok) << back.error;
    EXPECT_EQ(back.value.as_string(), "a\"b\\c\n\x01");
}

TEST(JsonFind, KindFilteredLookup) {
    const JsonParseResult r = parse_json("{\"n\":3,\"s\":\"x\"}");
    ASSERT_TRUE(r.ok);
    EXPECT_NE(r.value.find("n", JsonValue::Kind::kNumber), nullptr);
    EXPECT_EQ(r.value.find("n", JsonValue::Kind::kString), nullptr);
    EXPECT_EQ(r.value.find("missing"), nullptr);
    // find() on a non-object returns null instead of asserting, so
    // lookups chain without intermediate checks.
    EXPECT_EQ(JsonValue::make_number(1).find("x"), nullptr);
}

}  // namespace
}  // namespace dta::stats
