// Critical-path analyzer tests: exact cycle attribution on the paper
// workloads (on-path sums to the run length, run-wide sums to cycles x PEs,
// with zero rounding slack), dataflow-edge matching, and the paper's
// headline effect — prefetching moves DMA wait off the critical path.
#include "stats/critpath.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>

#include "core/machine.hpp"
#include "sim/events.hpp"
#include "workloads/bitcnt.hpp"
#include "workloads/harness.hpp"
#include "workloads/mmul.hpp"
#include "workloads/zoom.hpp"

namespace dta::stats {
namespace {

template <typename Workload>
CritPathReport analyzed(const Workload& w, core::MachineConfig cfg,
                        bool prefetch) {
    cfg.collect_events = true;
    const workloads::RunOutcome out =
        workloads::run_workload(w, cfg, prefetch);
    EXPECT_TRUE(out.correct) << out.detail;
    sim::EventFile file;
    file.cycles = out.result.cycles;
    file.pes = cfg.total_pes();
    file.code_names = out.result.code_names;
    file.events = out.result.events.flatten();
    return analyze(file);
}

std::uint64_t sum(const CritCycles& c) {
    return std::accumulate(c.begin(), c.end(), std::uint64_t{0});
}

std::uint64_t at(const CritCycles& c, CritCategory cat) {
    return c[static_cast<std::size_t>(cat)];
}

/// Both attributions must account for every cycle exactly — no rounding,
/// no double counting, no gap.
void expect_exact(const CritPathReport& r) {
    EXPECT_EQ(sum(r.on_path), r.cycles);
    EXPECT_EQ(sum(r.run_wide),
              static_cast<std::uint64_t>(r.cycles) * r.pes);
    // noc_transit is an on-path-only category by construction.
    EXPECT_EQ(at(r.run_wide, CritCategory::kNocTransit), 0u);
    EXPECT_EQ(r.unmatched_stores, 0u);
    // The walk is a contiguous, descending cover of [0, cycles).
    sim::Cycle hi = r.cycles;
    for (const CritStep& s : r.path) {
        EXPECT_EQ(s.to, hi) << "gap in the walk";
        EXPECT_LT(s.from, s.to);
        hi = s.from;
    }
    EXPECT_EQ(hi, 0u);
}

TEST(CritPath, MatMulExactAttribution) {
    workloads::MatMul::Params p;
    p.n = 16;
    p.threads = 16;
    const workloads::MatMul w(p);
    const auto cfg = workloads::MatMul::machine_config(8);
    for (const bool prefetch : {false, true}) {
        SCOPED_TRACE(prefetch ? "prefetch" : "original");
        const CritPathReport r = analyzed(w, cfg, prefetch);
        expect_exact(r);
        EXPECT_GT(r.threads, 1u);
        EXPECT_GT(r.store_edges, 0u);
        EXPECT_GT(r.falloc_edges, 0u);
    }
}

TEST(CritPath, ZoomExactAttribution) {
    workloads::Zoom::Params p;
    p.n = 16;
    p.factor = 4;
    p.threads = 16;
    const workloads::Zoom w(p);
    const auto cfg = workloads::Zoom::machine_config(8);
    for (const bool prefetch : {false, true}) {
        SCOPED_TRACE(prefetch ? "prefetch" : "original");
        expect_exact(analyzed(w, cfg, prefetch));
    }
}

TEST(CritPath, BitCountExactAttribution) {
    workloads::BitCount::Params p;
    p.iterations = 320;
    const workloads::BitCount w(p);
    const auto cfg = workloads::BitCount::machine_config(8);
    for (const bool prefetch : {false, true}) {
        SCOPED_TRACE(prefetch ? "prefetch" : "original");
        expect_exact(analyzed(w, cfg, prefetch));
    }
}

// Virtual frame pointers re-grant a slot the moment FFREE releases it,
// while the freeing thread is still executing its PS block — the uid
// cached at bind time must keep the STOP attributed to the right thread
// and the attribution exact.
TEST(CritPath, VirtualFramesExactAttribution) {
    workloads::MatMul::Params p;
    p.n = 16;
    p.threads = 16;
    const workloads::MatMul w(p);
    auto cfg = workloads::MatMul::machine_config(8);
    cfg.lse = sched::LseConfig::with(4, cfg.lse.staging_bytes_per_frame);
    cfg.lse.virtual_frames = true;
    for (const bool prefetch : {false, true}) {
        SCOPED_TRACE(prefetch ? "prefetch" : "original");
        const CritPathReport r = analyzed(w, cfg, prefetch);
        expect_exact(r);
        EXPECT_GT(r.threads, 1u);
    }
}

// Section 4's headline: the prefetch pass converts blocking READs into
// DMAs that overlap other threads' execution, so the share of the critical
// path spent waiting on global memory must drop.
TEST(CritPath, PrefetchMovesDmaWaitOffCriticalPath) {
    workloads::MatMul::Params p;
    p.n = 16;
    p.threads = 16;
    const workloads::MatMul w(p);
    const auto cfg = workloads::MatMul::machine_config(8);
    const CritPathReport orig = analyzed(w, cfg, false);
    const CritPathReport pf = analyzed(w, cfg, true);
    const std::uint64_t orig_wait = at(orig.on_path, CritCategory::kDmaWait);
    const std::uint64_t pf_wait = at(pf.on_path, CritCategory::kDmaWait);
    EXPECT_LT(pf_wait, orig_wait)
        << "prefetch should shorten on-path DMA wait (orig " << orig_wait
        << ", prefetch " << pf_wait << ")";
}

// The JSON serializer is deterministic and well-formed enough to diff.
TEST(CritPath, JsonAndTextAreStable) {
    workloads::BitCount::Params p;
    p.iterations = 64;
    const workloads::BitCount w(p);
    const auto cfg = workloads::BitCount::machine_config(2);
    const CritPathReport a = analyzed(w, cfg, false);
    const CritPathReport b = analyzed(w, cfg, false);
    EXPECT_EQ(critpath_json(a, "bitcnt"), critpath_json(b, "bitcnt"));
    const std::string json = critpath_json(a, "bitcnt");
    EXPECT_NE(json.find("\"report\": \"dta-critpath\""), std::string::npos);
    EXPECT_NE(json.find("\"benchmark\": \"bitcnt\""), std::string::npos);
    EXPECT_NE(json.find("\"on_path\""), std::string::npos);
    EXPECT_NE(json.find("\"run_wide\""), std::string::npos);
    const std::string text = critpath_text(a, 5);
    EXPECT_NE(text.find("on-path attribution"), std::string::npos);
    EXPECT_NE(text.find("top 5 critical-path steps"), std::string::npos);
}

}  // namespace
}  // namespace dta::stats
