// JSON run-report serialisation and the well-formedness checker.
#include "stats/json_report.hpp"

#include <gtest/gtest.h>

#include "workloads/harness.hpp"
#include "workloads/mmul.hpp"

namespace dta::stats {
namespace {

TEST(ValidateJson, AcceptsWellFormedDocuments) {
    EXPECT_TRUE(validate_json("{}"));
    EXPECT_TRUE(validate_json("[]"));
    EXPECT_TRUE(validate_json("  {\"a\": [1, 2.5, -3, 1e9], \"b\": "
                              "{\"c\": null, \"d\": [true, false]}}  "));
    EXPECT_TRUE(validate_json(R"({"s": "esc \" \\ \n A"})"));
}

TEST(ValidateJson, RejectsMalformedDocuments) {
    EXPECT_FALSE(validate_json(""));
    EXPECT_FALSE(validate_json("{"));
    EXPECT_FALSE(validate_json("{\"a\": }"));
    EXPECT_FALSE(validate_json("{\"a\": 1,}"));
    EXPECT_FALSE(validate_json("[1 2]"));
    EXPECT_FALSE(validate_json("{\"a\": 1} trailing"));
    EXPECT_FALSE(validate_json(R"({"bad": "\x"})"));
    EXPECT_FALSE(validate_json("{\"unterminated: 1}"));
}

TEST(JsonEscape, EscapesControlAndQuoteCharacters) {
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("x\ny"), "x\\ny");
    EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(MetricsJson, SerialisesAllInstrumentKinds) {
    sim::MetricsRegistry reg;
    reg.enable();
    reg.counter("dma.commands")->add(7);
    sim::Histogram* h = reg.histogram("dma.tag_latency");
    h->record(100);
    h->record(200);
    reg.gauge("mem.queue_depth")->sample(256, 3);

    const std::string json = metrics_json(reg);
    EXPECT_TRUE(validate_json(json)) << json;
    EXPECT_NE(json.find("\"dma.commands\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"sum\": 300"), std::string::npos);
    EXPECT_NE(json.find("\"series\": [[256, 3]]"), std::string::npos);
}

TEST(MetricsJson, EmptyRegistryIsStillValid) {
    const sim::MetricsRegistry reg;
    const std::string json = metrics_json(reg);
    EXPECT_TRUE(validate_json(json)) << json;
    EXPECT_NE(json.find("\"enabled\": false"), std::string::npos);
}

TEST(RunReport, RoundTripsARealMetricsRun) {
    workloads::MatMul::Params p;
    p.n = 8;
    p.threads = 4;
    const workloads::MatMul wl(p);
    auto cfg = workloads::MatMul::machine_config(2);
    cfg.collect_metrics = true;
    const auto outcome = workloads::run_workload(wl, cfg, true);
    ASSERT_TRUE(outcome.correct) << outcome.detail;

    const std::string json = run_report_json(outcome.result, "mmul");
    EXPECT_TRUE(validate_json(json)) << json;
    EXPECT_NE(json.find("\"benchmark\": \"mmul\""), std::string::npos);
    EXPECT_NE(json.find("\"cycles\": "), std::string::npos);
    EXPECT_NE(json.find("\"breakdown\": "), std::string::npos);
    // The instrumented hot paths all fired on a prefetch workload.
    EXPECT_NE(json.find("\"dma.tag_latency\""), std::string::npos);
    EXPECT_NE(json.find("\"sched.dispatch_wait\""), std::string::npos);
    EXPECT_NE(json.find("\"noc.packet_latency\""), std::string::npos);
    const auto& hs = outcome.result.metrics.histograms();
    EXPECT_GT(hs.at("dma.tag_latency").count(), 0u);
    EXPECT_GT(hs.at("sched.dispatch_wait").count(), 0u);
    EXPECT_GT(hs.at("noc.packet_latency").count(), 0u);
    EXPECT_GT(hs.at("sched.dma_suspend").count(), 0u);
}

TEST(RunReport, MetricsOffProducesValidReportWithoutInstruments) {
    workloads::MatMul::Params p;
    p.n = 8;
    p.threads = 4;
    const workloads::MatMul wl(p);
    const auto outcome =
        workloads::run_workload(wl, workloads::MatMul::machine_config(2),
                                true);
    ASSERT_TRUE(outcome.correct) << outcome.detail;
    const std::string json = run_report_json(outcome.result);
    EXPECT_TRUE(validate_json(json)) << json;
    EXPECT_NE(json.find("\"enabled\": false"), std::string::npos);
    EXPECT_TRUE(outcome.result.metrics.histograms().empty());
    EXPECT_TRUE(outcome.result.dma_spans.empty());
}

}  // namespace
}  // namespace dta::stats
