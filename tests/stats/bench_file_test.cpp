// The dta-bench-v1 file format: robust statistics, serialize/parse round
// trip, schema validation, and the underlying JSON parser's edge cases.
#include "stats/bench_file.hpp"

#include <gtest/gtest.h>

#include <string>

#include "stats/json_value.hpp"

namespace dta::stats {
namespace {

TEST(RobustStats, MedianAndMad) {
    EXPECT_DOUBLE_EQ(median_of({}), 0.0);
    EXPECT_DOUBLE_EQ(median_of({3.0}), 3.0);
    EXPECT_DOUBLE_EQ(median_of({1.0, 9.0}), 5.0);
    EXPECT_DOUBLE_EQ(median_of({9.0, 1.0, 5.0}), 5.0);
    // MAD around the median: deviations {4, 0, 4} -> median 4.
    EXPECT_DOUBLE_EQ(mad_of({1.0, 5.0, 9.0}, 5.0), 4.0);
    EXPECT_DOUBLE_EQ(mad_of({2.0, 2.0, 2.0}, 2.0), 0.0);
}

TEST(BenchCase, StatsComputedFromSamples) {
    BenchCase c;
    c.host_seconds = {0.3, 0.1, 0.2};
    EXPECT_DOUBLE_EQ(c.min_s(), 0.1);
    EXPECT_DOUBLE_EQ(c.median_s(), 0.2);
    EXPECT_DOUBLE_EQ(c.mad_s(), 0.1);
    BenchCase empty;
    EXPECT_DOUBLE_EQ(empty.min_s(), 0.0);
    EXPECT_DOUBLE_EQ(empty.median_s(), 0.0);
}

BenchFile sample_file() {
    BenchFile f;
    f.label = "unit";
    f.env.git_sha = "abc123";
    f.env.compiler = "g++ \"quoted\"";  // exercises escaping
    f.env.build_type = "Release";
    f.env.host_threads = 4;
    BenchCase c;
    c.name = "ci/mmul/orig";
    c.cycles = 91513;
    c.host_seconds = {0.021, 0.019, 0.020};
    f.cases.push_back(c);
    c = BenchCase{};
    c.name = "ci/mmul/pf";
    c.cycles = 9570;
    c.host_seconds = {0.007};
    f.cases.push_back(c);
    return f;
}

TEST(BenchFileIo, RoundTripPreservesEverything) {
    const BenchFile f = sample_file();
    const std::string doc = serialize_bench_file(f);
    BenchFile g;
    std::string err;
    ASSERT_TRUE(parse_bench_file(doc, g, err)) << err;
    EXPECT_EQ(g.label, f.label);
    EXPECT_EQ(g.env.git_sha, f.env.git_sha);
    EXPECT_EQ(g.env.compiler, f.env.compiler);
    EXPECT_EQ(g.env.build_type, f.env.build_type);
    EXPECT_EQ(g.env.host_threads, f.env.host_threads);
    ASSERT_EQ(g.cases.size(), 2u);
    EXPECT_EQ(g.cases[0].name, "ci/mmul/orig");
    EXPECT_EQ(g.cases[0].cycles, 91513u);
    ASSERT_EQ(g.cases[0].host_seconds.size(), 3u);
    EXPECT_DOUBLE_EQ(g.cases[0].host_seconds[1], 0.019);
    EXPECT_NE(g.find("ci/mmul/pf"), nullptr);
    EXPECT_EQ(g.find("nope"), nullptr);
}

TEST(BenchFileIo, StatsAreRecomputedNotTrusted) {
    // A hand-edited summary cannot disagree with its own samples: min_s /
    // median_s / mad_s in the document are ignored on parse.
    const std::string doc = R"({
      "schema": "dta-bench-v1", "label": "x",
      "env": {"git_sha": "s", "compiler": "c", "build_type": "R",
              "host_threads": 1},
      "cases": [{"name": "a", "cycles": 10,
                 "host_seconds": [0.1, 0.3, 0.2],
                 "min_s": 99.0, "median_s": 99.0, "mad_s": 99.0}]
    })";
    BenchFile f;
    std::string err;
    ASSERT_TRUE(parse_bench_file(doc, f, err)) << err;
    EXPECT_DOUBLE_EQ(f.cases[0].median_s(), 0.2);
    EXPECT_DOUBLE_EQ(f.cases[0].min_s(), 0.1);
}

TEST(BenchFileIo, RejectsSchemaViolations) {
    BenchFile f;
    std::string err;
    EXPECT_FALSE(parse_bench_file("not json", f, err));
    EXPECT_NE(err.find("malformed"), std::string::npos);
    EXPECT_FALSE(parse_bench_file("[1, 2]", f, err));
    EXPECT_FALSE(parse_bench_file(
        R"({"schema": "dta-bench-v2", "env": {}, "cases": []})", f, err));
    EXPECT_NE(err.find("schema"), std::string::npos);
    EXPECT_FALSE(parse_bench_file(
        R"({"schema": "dta-bench-v1", "cases": []})", f, err));
    EXPECT_NE(err.find("env"), std::string::npos);
    EXPECT_FALSE(parse_bench_file(
        R"({"schema": "dta-bench-v1", "env": {}})", f, err));
    EXPECT_NE(err.find("cases"), std::string::npos);
    // A case must carry a name, numeric cycles, and non-empty samples.
    EXPECT_FALSE(parse_bench_file(
        R"({"schema": "dta-bench-v1", "env": {},
            "cases": [{"cycles": 1, "host_seconds": [0.1]}]})",
        f, err));
    EXPECT_NE(err.find("name"), std::string::npos);
    EXPECT_FALSE(parse_bench_file(
        R"({"schema": "dta-bench-v1", "env": {},
            "cases": [{"name": "a", "host_seconds": [0.1]}]})",
        f, err));
    EXPECT_NE(err.find("cycles"), std::string::npos);
    EXPECT_FALSE(parse_bench_file(
        R"({"schema": "dta-bench-v1", "env": {},
            "cases": [{"name": "a", "cycles": 1, "host_seconds": []}]})",
        f, err));
    EXPECT_NE(err.find("host_seconds"), std::string::npos);
    EXPECT_FALSE(parse_bench_file(
        R"({"schema": "dta-bench-v1", "env": {},
            "cases": [{"name": "a", "cycles": 1,
                       "host_seconds": [0.1, -0.5]}]})",
        f, err));
    EXPECT_NE(err.find("negative"), std::string::npos);
}

TEST(JsonValue, ParsesScalarsContainersAndEscapes) {
    const JsonParseResult r = parse_json(
        R"({"s": "a\"b\nA", "n": -2.5e2, "t": true, "f": false,
            "z": null, "arr": [1, [2]], "obj": {"k": 3}})");
    ASSERT_TRUE(r.ok) << r.error;
    const JsonValue& v = r.value;
    EXPECT_EQ(v.find("s")->as_string(), "a\"b\nA");
    EXPECT_DOUBLE_EQ(v.find("n")->as_number(), -250.0);
    EXPECT_TRUE(v.find("t")->as_bool());
    EXPECT_FALSE(v.find("f")->as_bool());
    EXPECT_TRUE(v.find("z")->is_null());
    ASSERT_EQ(v.find("arr")->items().size(), 2u);
    EXPECT_DOUBLE_EQ(v.find("arr")->items()[1].items()[0].as_number(), 2.0);
    EXPECT_DOUBLE_EQ(v.find("obj")->find("k")->as_number(), 3.0);
    EXPECT_EQ(v.find("missing"), nullptr);
    // Kind-filtered lookup.
    EXPECT_EQ(v.find("s", JsonValue::Kind::kNumber), nullptr);
    EXPECT_NE(v.find("n", JsonValue::Kind::kNumber), nullptr);
}

TEST(JsonValue, RejectsMalformedInput) {
    EXPECT_FALSE(parse_json("").ok);
    EXPECT_FALSE(parse_json("{").ok);
    EXPECT_FALSE(parse_json("[1,]").ok);
    EXPECT_FALSE(parse_json("{\"a\": 1,}").ok);
    EXPECT_FALSE(parse_json("\"unterminated").ok);
    EXPECT_FALSE(parse_json("truish").ok);
    EXPECT_FALSE(parse_json("1 2").ok);  // trailing garbage
    EXPECT_FALSE(parse_json("{\"a\" 1}").ok);
    const JsonParseResult r = parse_json("[1, nope]");
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
}

TEST(JsonValue, DepthIsBounded) {
    std::string deep;
    for (int i = 0; i < 200; ++i) {
        deep += '[';
    }
    deep += '1';
    for (int i = 0; i < 200; ++i) {
        deep += ']';
    }
    EXPECT_FALSE(parse_json(deep).ok);  // kMaxDepth = 128
}

}  // namespace
}  // namespace dta::stats
